//===- bench/micro_primitives.cpp - Primitive overhead microbenchmarks ---===//
//
// google-benchmark microbenchmarks behind the paper's overhead claims
// (Section 6.2: SL overhead <= 0.64x, RL overhead 0.89x-6.14x, driven by
// the per-iteration cost of au_extract / au_serialize / au_NN /
// au_write_back and the checkpoint/restore latency of Table 2).
//
//===----------------------------------------------------------------------===//

#include "apps/flappy/Flappy.h"
#include "core/Runtime.h"

#include <benchmark/benchmark.h>

using namespace au;
using namespace au::apps;

static void BM_Extract(benchmark::State &State) {
  Runtime RT(Mode::TR);
  std::vector<float> Vals(State.range(0), 1.0f);
  for (auto _ : State) {
    RT.extract("X", Vals.size(), Vals.data());
    RT.db().reset("X");
  }
  State.SetBytesProcessed(State.iterations() * State.range(0) *
                          sizeof(float));
}
BENCHMARK(BM_Extract)->Arg(1)->Arg(32)->Arg(1024);

static void BM_Serialize(benchmark::State &State) {
  Runtime RT(Mode::TR);
  std::vector<std::string> Names;
  for (int I = 0; I < State.range(0); ++I)
    Names.push_back("v" + std::to_string(I));
  for (auto _ : State) {
    for (const std::string &N : Names)
      RT.extract(N, 1.0f);
    std::string Combined = RT.serialize(Names);
    RT.db().reset(Combined);
  }
}
BENCHMARK(BM_Serialize)->Arg(5)->Arg(20);

static void BM_NnPredictDnn(benchmark::State &State) {
  Runtime RT(Mode::TR);
  ModelConfig C;
  C.Name = "m";
  C.HiddenLayers = {32, 32};
  RT.config(C);
  // One TR iteration to materialize the model, then switch to TS.
  std::vector<float> Vals(State.range(0), 0.5f);
  RT.extract("F", Vals.size(), Vals.data());
  RT.nn("m", "F", {{"Y", 1}});
  float L = 0.5f;
  RT.writeBack("Y", 1, &L);
  static_cast<SlModel *>(RT.getModel("m"))->train(1, 1);
  RT.switchMode(Mode::TS);

  for (auto _ : State) {
    RT.extract("F", Vals.size(), Vals.data());
    RT.nn("m", "F", {{"Y", 1}});
    float Out = 0.0f;
    RT.writeBack("Y", 1, &Out);
    benchmark::DoNotOptimize(Out);
  }
}
BENCHMARK(BM_NnPredictDnn)->Arg(8)->Arg(32)->Arg(256);

static void BM_CheckpointRestore(benchmark::State &State) {
  Runtime RT(Mode::TR);
  FlappyEnv Env;
  Env.reset(1 << 8);
  RT.checkpoints().registerObject(&Env);
  for (int I = 0; I < 64; ++I)
    RT.extract("S", static_cast<float>(I));
  for (auto _ : State) {
    RT.checkpoint();
    RT.restore();
  }
}
BENCHMARK(BM_CheckpointRestore);

static void BM_GameLoopPlain(benchmark::State &State) {
  FlappyEnv Env;
  Env.reset(2 << 8);
  Rng R(1);
  for (auto _ : State) {
    if (Env.terminal())
      Env.reset(2 << 8);
    Env.step(Env.heuristicAction(R));
  }
}
BENCHMARK(BM_GameLoopPlain);

static void BM_GameLoopAutonomized(benchmark::State &State) {
  // The full annotated loop body: extract + serialize + au_NN + write-back
  // + act, the paper's RL "execution time" per iteration.
  FlappyEnv Env;
  Env.reset(3 << 8);
  Runtime RT(Mode::TR);
  ModelConfig C;
  C.Name = "agent";
  C.Algo = Algorithm::QLearn;
  C.HiddenLayers = {32, 32};
  RT.config(C);
  std::vector<std::string> Names = {"birdY", "birdV", "pipeDx", "gap1Y",
                                    "diffY"};
  for (auto _ : State) {
    if (Env.terminal())
      Env.reset(3 << 8);
    std::vector<Feature> Fs = Env.features();
    for (const std::string &N : Names)
      RT.extract(N, featureValue(Fs, N));
    std::string Ext = RT.serialize(Names);
    RT.nn("agent", Ext, 0.1f, false, {"output", 2});
    int Action = 0;
    RT.writeBack("output", 2, &Action);
    Env.step(Action);
  }
}
BENCHMARK(BM_GameLoopAutonomized);

BENCHMARK_MAIN();
