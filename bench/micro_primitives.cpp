//===- bench/micro_primitives.cpp - Primitive overhead microbenchmarks ---===//
//
// Microbenchmarks behind the paper's overhead claims (Section 6.2: SL
// overhead <= 0.64x, RL overhead 0.89x-6.14x, driven by the per-iteration
// cost of au_extract / au_serialize / au_NN / au_write_back and the
// checkpoint/restore latency of Table 2).
//
// Each primitive is measured through both keying APIs — the string API and
// the interned-handle hot path of DESIGN.md §7 — and checkpointing is
// measured with the O(Δ) dirty tracking against the full-copy path. Prints
// one JSON line per case (the same shape as bench/nn_kernels):
//
//   {"bench": "...", "api": "string|handle", "ns_per_iter": ...}
//   {"bench": "...", "speedup_handle_vs_string": ...}
//
// so BENCH_primitives.json baselines can be diffed across PRs.
//
//===----------------------------------------------------------------------===//

#include "apps/flappy/Flappy.h"
#include "apps/mario/Mario.h"
#include "core/Runtime.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace au;
using namespace au::apps;

namespace {

volatile float Sink; // Defeats dead-code elimination.

/// Times Fn (already warmed) and returns the best (minimum) ns per
/// iteration over several batches. The minimum filters out scheduler and
/// frequency noise, which on a shared single-core box dwarfs the ns-scale
/// primitives being measured.
double timeNs(const std::function<void()> &Fn, int Batches = 7,
              double BatchSeconds = 0.08) {
  // Warm-up: intern names, warm slot capacities, fault in pages, and give
  // the frequency governor time to ramp before the first batch.
  Timer W;
  do {
    Fn();
  } while (W.seconds() < 0.02);
  double Best = 1e300;
  for (int B = 0; B < Batches; ++B) {
    int Iters = 0;
    Timer T;
    do {
      Fn();
      ++Iters;
    } while (Iters < 3 || T.seconds() < BatchSeconds);
    Best = std::min(Best, T.seconds() * 1e9 / Iters);
  }
  return Best;
}

/// Times \p Fn with \p Inner repetitions folded inside one call, so the
/// ns-scale primitives are not swamped by the std::function dispatch.
double timeNsInner(int Inner, const std::function<void()> &Fn) {
  return timeNs(Fn) / Inner;
}

void printCase(const std::string &Bench, const char *Api, double NsPerIter) {
  std::printf("{\"bench\": \"%s\", \"api\": \"%s\", \"ns_per_iter\": %.1f}\n",
              Bench.c_str(), Api, NsPerIter);
  std::fflush(stdout);
}

void printSpeedup(const std::string &Bench, const char *Key, double Slow,
                  double Fast) {
  std::printf("{\"bench\": \"%s\", \"%s\": %.2f}\n", Bench.c_str(), Key,
              Slow / Fast);
  std::fflush(stdout);
}

//===----------------------------------------------------------------------===//
// BM_Extract: au_extract of N floats accumulating a 64-deep trace that is
// then consumed once (the Fig. 8 loop extracts between serialize points),
// string vs handle.
//===----------------------------------------------------------------------===//

void benchExtract(size_t N) {
  const std::string Bench = "BM_Extract(" + std::to_string(N) + ")";
  std::vector<float> Vals(N, 1.0f);

  // N == 1 measures the scalar extract call — the form the annotated game
  // drivers use per feature variable — N > 1 the pointer/size form.
  Runtime StrRT(Mode::TR);
  double Str = timeNsInner(64, [&] {
    for (int R = 0; R < 64; ++R) {
      if (N == 1)
        StrRT.extract("playerX", Vals[0]);
      else
        StrRT.extract("playerX", Vals.size(), Vals.data());
    }
    StrRT.db().reset("playerX"); // Consume the accumulated trace.
  });
  printCase(Bench, "string", Str);

  Runtime HdlRT(Mode::TR);
  NameId X = HdlRT.intern("playerX");
  double Hdl = timeNsInner(64, [&] {
    for (int R = 0; R < 64; ++R) {
      if (N == 1)
        HdlRT.extract(X, Vals[0]);
      else
        HdlRT.extract(X, Vals.size(), Vals.data());
    }
    HdlRT.db().reset(X);
  });
  printCase(Bench, "handle", Hdl);
  printSpeedup(Bench, "speedup_handle_vs_string", Str, Hdl);
}

//===----------------------------------------------------------------------===//
// BM_Serialize: K scalar extracts + au_serialize + reset, string vs handle.
//===----------------------------------------------------------------------===//

void benchSerialize(int K) {
  const std::string Bench = "BM_Serialize(" + std::to_string(K) + ")";
  std::vector<std::string> Names;
  for (int I = 0; I < K; ++I)
    Names.push_back("feature" + std::to_string(I));

  Runtime StrRT(Mode::TR);
  double Str = timeNsInner(64, [&] {
    for (int R = 0; R < 64; ++R) {
      for (const std::string &Nm : Names)
        StrRT.extract(Nm, 1.0f);
      std::string Combined = StrRT.serialize(Names);
      StrRT.db().reset(Combined);
    }
  });
  printCase(Bench, "string", Str);

  Runtime HdlRT(Mode::TR);
  std::vector<NameId> Ids;
  for (const std::string &Nm : Names)
    Ids.push_back(HdlRT.intern(Nm));
  double Hdl = timeNsInner(64, [&] {
    for (int R = 0; R < 64; ++R) {
      for (NameId Id : Ids)
        HdlRT.extract(Id, 1.0f);
      NameId Combined = HdlRT.serialize(Ids);
      HdlRT.db().reset(Combined);
    }
  });
  printCase(Bench, "handle", Hdl);
  printSpeedup(Bench, "speedup_handle_vs_string", Str, Hdl);
}

//===----------------------------------------------------------------------===//
// BM_NnPredictDnn: the full TS-mode extract + au_NN + au_write_back body.
//===----------------------------------------------------------------------===//

/// Builds a trained {32,32} DNN over \p N features in \p RT and switches it
/// to TS mode.
void trainTinyDnn(Runtime &RT, size_t N) {
  ModelConfig C;
  C.Name = "m";
  C.HiddenLayers = {32, 32};
  RT.config(C);
  std::vector<float> Vals(N, 0.5f);
  RT.extract("F", Vals.size(), Vals.data());
  RT.nn("m", "F", {{"Y", 1}});
  float L = 0.5f;
  RT.writeBack("Y", 1, &L);
  static_cast<SlModel *>(RT.getModel("m"))->train(1, 1);
  RT.switchMode(Mode::TS);
}

void benchNnPredict(size_t N) {
  const std::string Bench = "BM_NnPredictDnn(" + std::to_string(N) + ")";
  std::vector<float> Vals(N, 0.5f);

  Runtime StrRT(Mode::TR);
  trainTinyDnn(StrRT, N);
  double Str = timeNs([&] {
    StrRT.extract("F", Vals.size(), Vals.data());
    StrRT.nn("m", "F", {{"Y", 1}});
    float Out = 0.0f;
    StrRT.writeBack("Y", 1, &Out);
    Sink = Out;
  });
  printCase(Bench, "string", Str);

  Runtime HdlRT(Mode::TR);
  trainTinyDnn(HdlRT, N);
  NameId M = HdlRT.intern("m"), F = HdlRT.intern("F");
  WriteBackHandle Y{HdlRT.intern("Y"), 1};
  double Hdl = timeNs([&] {
    HdlRT.extract(F, Vals.size(), Vals.data());
    HdlRT.nn(M, F, {Y});
    float Out = 0.0f;
    HdlRT.writeBack(Y.Name, 1, &Out);
    Sink = Out;
  });
  printCase(Bench, "handle", Hdl);
  printSpeedup(Bench, "speedup_handle_vs_string", Str, Hdl);
}

//===----------------------------------------------------------------------===//
// BM_Checkpoint: Mario-sized program state, small dirty set per iteration.
// Compares the O(Δ) dirty-tracking path against the forced full-copy path.
//===----------------------------------------------------------------------===//

/// Registers a Mario-sized state: the env object, a world-sized POD region
/// and NumEntries pi lists of EntryLen floats. Returns the pi slot handles.
std::vector<NameId> setupMarioState(Runtime &RT, MarioEnv &Env,
                                    std::vector<float> &World,
                                    size_t NumEntries, size_t EntryLen) {
  Env.reset(0x4d00);
  RT.checkpoints().registerObject(&Env);
  RT.checkpoints().registerRegion(World.data(),
                                  World.size() * sizeof(float));
  std::vector<NameId> Ids;
  std::vector<float> Row(EntryLen, 0.25f);
  for (size_t I = 0; I != NumEntries; ++I) {
    NameId Id = RT.intern("state" + std::to_string(I));
    RT.db().append(Id, Row.data(), Row.size());
    Ids.push_back(Id);
  }
  return Ids;
}

void benchCheckpoint() {
  const size_t NumEntries = 200, EntryLen = 256, WorldFloats = 4096;
  const std::string Bench = "BM_Checkpoint(mario,dirty=2)";
  std::vector<float> Row(EntryLen, 0.5f);

  auto RunLoop = [&](Runtime &RT, const std::vector<NameId> &Ids) {
    return timeNs([&] {
      // Small dirty set: two mutated lists out of NumEntries.
      RT.db().set(Ids[0], Row.data(), Row.size());
      RT.db().set(Ids[1], Row.data(), Row.size());
      RT.checkpoint();
    });
  };

  Runtime FullRT(Mode::TR);
  MarioEnv FullEnv;
  std::vector<float> FullWorld(WorldFloats, 1.0f);
  std::vector<NameId> FullIds =
      setupMarioState(FullRT, FullEnv, FullWorld, NumEntries, EntryLen);
  FullRT.checkpoints().setDirtyTracking(false);
  double Full = RunLoop(FullRT, FullIds);
  printCase(Bench, "full", Full);

  Runtime DirtyRT(Mode::TR);
  MarioEnv DirtyEnv;
  std::vector<float> DirtyWorld(WorldFloats, 1.0f);
  std::vector<NameId> DirtyIds =
      setupMarioState(DirtyRT, DirtyEnv, DirtyWorld, NumEntries, EntryLen);
  double Dirty = RunLoop(DirtyRT, DirtyIds);
  printCase(Bench, "dirty", Dirty);
  printSpeedup(Bench, "speedup_dirty_vs_full", Full, Dirty);

  // Restore latency back to one snapshot with the same small dirty set.
  const std::string RBench = "BM_Restore(mario,dirty=2)";
  FullRT.checkpoint();
  double FullR = timeNs([&] {
    FullRT.db().set(FullIds[0], Row.data(), Row.size());
    FullRT.db().set(FullIds[1], Row.data(), Row.size());
    FullRT.restore();
  });
  printCase(RBench, "full", FullR);
  DirtyRT.checkpoint();
  double DirtyR = timeNs([&] {
    DirtyRT.db().set(DirtyIds[0], Row.data(), Row.size());
    DirtyRT.db().set(DirtyIds[1], Row.data(), Row.size());
    DirtyRT.restore();
  });
  printCase(RBench, "dirty", DirtyR);
  printSpeedup(RBench, "speedup_dirty_vs_full", FullR, DirtyR);
}

//===----------------------------------------------------------------------===//
// BM_GameLoop: the full annotated RL loop body vs the plain game loop (the
// paper's Table 3 execution-overhead ratio), string vs handle.
//===----------------------------------------------------------------------===//

void benchGameLoop() {
  {
    FlappyEnv Env;
    Env.reset(2 << 8);
    Rng R(1);
    double Plain = timeNs([&] {
      if (Env.terminal())
        Env.reset(2 << 8);
      Env.step(Env.heuristicAction(R));
    });
    printCase("BM_GameLoop", "plain", Plain);
  }

  const std::vector<std::string> Names = {"birdY", "birdV", "pipeDx",
                                          "gap1Y", "diffY"};
  auto MakeRuntime = [&](Runtime &RT) {
    ModelConfig C;
    C.Name = "agent";
    C.Algo = Algorithm::QLearn;
    C.HiddenLayers = {32, 32};
    RT.config(C);
  };

  {
    FlappyEnv Env;
    Env.reset(3 << 8);
    Runtime RT(Mode::TR);
    MakeRuntime(RT);
    double Str = timeNs([&] {
      if (Env.terminal())
        Env.reset(3 << 8);
      std::vector<Feature> Fs = Env.features();
      for (const std::string &Nm : Names)
        RT.extract(Nm, featureValue(Fs, Nm));
      std::string Ext = RT.serialize(Names);
      RT.nn("agent", Ext, 0.1f, false, {"output", 2});
      int Action = 0;
      RT.writeBack("output", 2, &Action);
      Env.step(Action);
    });
    printCase("BM_GameLoop", "string", Str);
  }

  {
    FlappyEnv Env;
    Env.reset(3 << 8);
    Runtime RT(Mode::TR);
    MakeRuntime(RT);
    NameId Agent = RT.intern("agent");
    WriteBackHandle Output{RT.intern("output"), 2};
    std::vector<NameId> Ids;
    for (const std::string &Nm : Names)
      Ids.push_back(RT.intern(Nm));
    double Hdl = timeNs([&] {
      if (Env.terminal())
        Env.reset(3 << 8);
      std::vector<Feature> Fs = Env.features();
      for (size_t I = 0; I != Ids.size(); ++I)
        RT.extract(Ids[I], featureValue(Fs, Names[I]));
      NameId Ext = RT.serialize(Ids);
      RT.nn(Agent, Ext, 0.1f, false, Output);
      int Action = 0;
      RT.writeBack(Output.Name, 2, &Action);
      Env.step(Action);
    });
    printCase("BM_GameLoop", "handle", Hdl);
  }
}

} // namespace

int main() {
  benchExtract(1);
  benchExtract(32);
  benchExtract(1024);
  benchSerialize(5);
  benchSerialize(20);
  benchNnPredict(8);
  benchNnPredict(32);
  benchCheckpoint();
  benchGameLoop();
  return 0;
}
