//===- bench/fig12_canny_datasets.cpp - Reproduces Fig. 12 ---------------===//
//
// Fig. 12 of the paper: per-dataset Canny prediction scores of the
// Baseline / Raw / Med / Min versions over 10 held-out test images.
//
// Expected shape: Min tops (or ties) every dataset; Raw improves on the
// baseline but trails Med and Min.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/canny/Canny.h"
#include "support/Statistics.h"
#include "support/Table.h"

using namespace au;
using namespace au::apps;
using analysis::SlPick;

int main() {
  int NumTrain = static_cast<int>(bench::scaled(60, 12));
  int Epochs = static_cast<int>(bench::scaled(60, 10));

  bench::banner("Fig. 12: Canny prediction scores on 10 datasets");
  CannyExperiment Exp(NumTrain, /*NumTest=*/10, /*Seed=*/4100);

  std::vector<double> Scores[3];
  for (SlPick Pick : {SlPick::Raw, SlPick::Med, SlPick::Min}) {
    Exp.train(Pick, Epochs);
    Scores[static_cast<int>(Pick)] = Exp.perSceneScores(Pick);
  }

  Table Out({"Dataset", "Baseline", "Raw", "Med", "Min"});
  std::vector<double> Base;
  for (int I = 0; I < 10; ++I) {
    CannyScene S = makeCannyScene(4100 + 10000 + I);
    double B = cannyScore(cannyDetect(S.Input, CannyParams()), S.Truth);
    Base.push_back(B);
    Out.addRow({"img" + fmt(static_cast<long long>(I)), fmt(B, 3),
                fmt(Scores[static_cast<int>(SlPick::Raw)][I], 3),
                fmt(Scores[static_cast<int>(SlPick::Med)][I], 3),
                fmt(Scores[static_cast<int>(SlPick::Min)][I], 3)});
  }
  Out.addRow({"mean", fmt(mean(Base), 3),
              fmt(mean(Scores[static_cast<int>(SlPick::Raw)]), 3),
              fmt(mean(Scores[static_cast<int>(SlPick::Med)]), 3),
              fmt(mean(Scores[static_cast<int>(SlPick::Min)]), 3)});
  Out.print();

  double MinGain = mean(Scores[static_cast<int>(SlPick::Min)]) / mean(Base);
  std::printf("\nMin improvement over baseline: %+.1f%% (paper: ~+70%% for "
              "Canny Min)\n", (MinGain - 1.0) * 100.0);
  return 0;
}
