//===- bench/fig15_16_pruning.cpp - Reproduces Figs. 15 and 16 -----------===//
//
// Figs. 15/16 of the paper (TORCS case study): Algorithm 2's two pruning
// rules in action on the profiled sensor traces —
//   Fig. 15: `roll` tracks `posX` almost exactly (EucDist ~ 0), so it is
//            pruned as redundant by epsilon1 = 0;
//   Fig. 16: `accX` barely changes (variance ~ 0.007 < epsilon2 = 0.01),
//            so it is pruned as unchanging.
// The harness prints the actual trace metrics, the pruning decisions and
// the surviving TORCS feature set (the paper extracts twenty).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/FeatureExtraction.h"
#include "apps/torcs/Torcs.h"
#include "support/Statistics.h"
#include "support/Table.h"

using namespace au;
using namespace au::apps;

int main() {
  bench::banner("Figs. 15/16: TORCS trace pruning (epsilon1=0.05, "
                "epsilon2=0.01)");

  TorcsEnv Env;
  analysis::Tracer T;
  Env.profile(T, 400);

  // The raw trace metrics behind the two figures.
  std::vector<double> PosX = minMaxScale(T.trace("posX"));
  std::vector<double> Roll = minMaxScale(T.trace("roll"));
  std::vector<double> AccX = minMaxScale(T.trace("accX"));
  std::printf("EucDist(posX, roll) = %.6f   (Fig. 15: ~0 -> redundant)\n",
              euclideanDistance(PosX, Roll) /
                  std::max<size_t>(1, PosX.size()));
  std::printf("Variance(accX)      = %.6f   (Fig. 16: ~0.007 -> "
              "unchanging)\n\n",
              variance(AccX));

  analysis::RlExtractionStats Stats;
  std::vector<std::string> Features = analysis::extractRlFeaturesCombined(
      T, Env.targetVariables(), /*Epsilon1=*/0.05, /*Epsilon2=*/0.01,
      &Stats);

  std::printf("Candidates considered: %d\n", Stats.NumCandidates);
  std::printf("Pruned as redundant (epsilon1): %d\n", Stats.PrunedRedundant);
  std::printf("Pruned as unchanging (epsilon2): %d\n\n",
              Stats.PrunedUnchanging);

  Table Pairs({"Kept", "Pruned as redundant"});
  for (const auto &[Kept, Pruned] : Stats.RedundantPairs)
    Pairs.addRow(std::vector<std::string>{Kept, Pruned});
  Pairs.print();

  std::printf("\nPruned as unchanging:");
  for (const std::string &V : Stats.UnchangingVars)
    std::printf(" %s", V.c_str());
  std::printf("\n\nSurviving feature variables (%zu):",
              Features.size());
  for (const std::string &V : Features)
    std::printf(" %s", V.c_str());
  std::printf("\n");
  return 0;
}
