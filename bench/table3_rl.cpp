//===- bench/table3_rl.cpp - Reproduces Table 3 (RL rows) ----------------===//
//
// Table 3 of the paper, reinforcement-learning rows: the scripted player
// reference ("Players"), the Raw pixel/CNN baseline (DeepMind-style) and
// the All version (program variables selected by Algorithm 2) for the five
// interactive programs, with training time, per-iteration execution time
// and the progress / success-rate scores averaged over 10 runs.
//
// Budgets are tuned per game, as RL training schedules always are. Raw
// gets a small iteration budget because each of its iterations costs two
// orders of magnitude more wall-clock than All's — this mirrors the
// paper's regime, where Raw exhausts a 24-hour budget ("t/o") that All
// finishes well inside.
//
// Expected shape (paper): All reaches close-to-human scores within the
// budget while Raw lags far behind, and All's per-iteration overhead is
// far below Raw's.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/arkanoid/Arkanoid.h"
#include "apps/breakout/Breakout.h"
#include "apps/common/RlHarness.h"
#include "apps/flappy/Flappy.h"
#include "apps/mario/Mario.h"
#include "apps/torcs/Torcs.h"
#include "support/Table.h"

using namespace au;
using namespace au::apps;

namespace {
/// Per-game training schedule for the All variant.
struct EnvSchedule {
  long AllSteps;
  std::vector<int> Hidden;
  int MaxEpisodeSteps;
};

std::string scorePair(const RlEvalResult &R) {
  return fmtPercent(R.MeanProgress) + "/" + fmtPercent(R.SuccessRate);
}

void addRows(Table &Out, GameEnv &Env, const EnvSchedule &Sched,
             long RawSteps) {
  RlTrainOptions Base;
  Base.Seed = 77;
  Base.MaxEpisodeSteps = Sched.MaxEpisodeSteps;
  double BaseStep = baselineStepSeconds(Env, Base, 4);
  RlEvalResult Players = evalHeuristic(Env, Base, 10);

  // All: program variables via Algorithm 2.
  RlTrainOptions AllOpt = Base;
  AllOpt.FeatureNames = selectRlFeatures(Env);
  AllOpt.TrainSteps = Sched.AllSteps;
  AllOpt.Hidden = Sched.Hidden;
  AllOpt.QCfg.EpsilonDecaySteps = static_cast<int>(Sched.AllSteps * 0.5);
  AllOpt.QCfg.TrainInterval = 2;
  Runtime RtAll(Mode::TR);
  RlTrainResult AllTrain = trainRl(Env, RtAll, AllOpt);
  RlEvalResult AllEval = evalRl(Env, RtAll, AllOpt, 10);

  // Raw: rendered frames through the DeepMind-style CNN. Episodes are
  // capped at 500 iterations to bound the (much slower) evaluation.
  RlTrainOptions RawOpt = Base;
  RawOpt.Variant = RlVariant::Raw;
  RawOpt.FrameSide = 16;
  RawOpt.TrainSteps = RawSteps;
  RawOpt.MaxEpisodeSteps = 500;
  RawOpt.QCfg.EpsilonDecaySteps = static_cast<int>(RawSteps * 0.5);
  RawOpt.QCfg.TrainInterval = 2;
  Runtime RtRaw(Mode::TR);
  RlTrainResult RawTrain = trainRl(Env, RtRaw, RawOpt);
  RlEvalResult RawEval = evalRl(Env, RtRaw, RawOpt, 10);

  Out.addRow({std::string("[RL] ^ ") + Env.name(),
              fmt(BaseStep * 1e6, 3), scorePair(Players),
              fmt(RawTrain.TrainSeconds, 1),
              fmt(RawEval.MeanStepSeconds * 1e6, 1), scorePair(RawEval),
              fmt(AllTrain.TrainSeconds, 1),
              fmt(AllEval.MeanStepSeconds * 1e6, 1), scorePair(AllEval),
              fmt(AllEval.MeanStepSeconds / BaseStep, 2)});
}
} // namespace

int main() {
  long RawSteps = bench::scaled(4000, 400);

  bench::banner("Table 3 (RL rows): players vs Raw vs All");
  std::printf("(Raw trained %ld iterations — each costs ~2 orders of\n"
              " magnitude more than All's, so this is already more\n"
              " wall-clock than All receives, mirroring the paper's 't/o'\n"
              " regime; scores are progress%%/success%% over 10 runs; exec\n"
              " times in microseconds per game-loop iteration)\n\n",
              RawSteps);

  Table Out({"Program", "Base Exec(us)", "Players", "Raw Train(s)",
             "Raw Exec(us)", "Raw Score", "All Train(s)", "All Exec(us)",
             "All Score", "All Overhead(x)"});

  FlappyEnv Flappy;
  addRows(Out, Flappy, {bench::scaled(40000, 2000), {32, 32}, 500},
          RawSteps);
  MarioEnv Mario;
  addRows(Out, Mario, {bench::scaled(40000, 2000), {32, 32}, 500}, RawSteps);
  ArkanoidEnv Arkanoid;
  addRows(Out, Arkanoid, {bench::scaled(80000, 4000), {64, 32}, 2000},
          RawSteps);
  TorcsEnv Torcs;
  addRows(Out, Torcs, {bench::scaled(16000, 1000), {32, 32}, 500}, RawSteps);
  BreakoutEnv Breakout;
  addRows(Out, Breakout, {bench::scaled(80000, 4000), {32, 32}, 2000},
          RawSteps);
  Out.print();

  std::printf("\nNote: compare shapes with the paper — All close to or above "
              "Players,\nRaw far behind at equal budget, Raw per-iteration "
              "cost >> All.\n");
  return 0;
}
