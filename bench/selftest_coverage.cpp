//===- bench/selftest_coverage.cpp - Section 2 self-testing study --------===//
//
// The paper's "Autonomization for Software Self-Testing" experiment
// (Section 2): adding a +30 reward for new code coverage (Fig. 2 line 38)
// turns the Mario agent into a test generator. We compare branch coverage
// reached within the same interaction budget by
//   (a) the coverage-rewarded agent,
//   (b) the plain score-rewarded agent,
//   (c) random (monkey) testing,
//   (d) the scripted near-optimal player.
//
// Expected shape (paper): the coverage agent reaches high coverage quickly
// (~65% in 30s of play); the score agent and random play plateau lower.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/common/RlHarness.h"
#include "apps/mario/Mario.h"
#include "support/Table.h"

using namespace au;
using namespace au::apps;

namespace {
/// Plays random / heuristic actions and samples coverage over time.
std::vector<std::pair<long, double>> playScripted(MarioEnv &Env, bool Random,
                                                  long Budget,
                                                  long SampleEvery) {
  Env.resetCoverage();
  Rng R(91);
  std::vector<std::pair<long, double>> Curve;
  long Steps = 0;
  uint64_t Episode = 0;
  while (Steps < Budget) {
    Env.reset((0x7100ull << 8) | (Episode++ & 0xff));
    int EpSteps = 0;
    while (!Env.terminal() && EpSteps++ < 400 && Steps < Budget) {
      int A = Random ? static_cast<int>(R.uniformInt(5))
                     : Env.heuristicAction(R);
      Env.step(A);
      if (++Steps % SampleEvery == 0)
        Curve.emplace_back(Steps, Env.coverageFraction());
    }
  }
  return Curve;
}

/// Trains an agent (optionally coverage-rewarded) and samples coverage.
std::vector<std::pair<long, double>>
trainAgent(MarioEnv &Env, bool CoverageReward, long Budget,
           long SampleEvery) {
  Env.resetCoverage();
  Env.setCoverageReward(CoverageReward);
  Runtime RT(Mode::TR);
  RlTrainOptions Opt;
  Opt.FeatureNames = selectRlFeatures(Env);
  Opt.TrainSteps = SampleEvery;
  Opt.MaxEpisodeSteps = 400;
  Opt.Seed = 0x7100;
  Opt.QCfg.EpsilonDecaySteps = static_cast<int>(Budget * 0.5);
  Opt.QCfg.LearningRateEnd = 1e-4;
  Opt.QCfg.TrainInterval = 2;

  std::vector<std::pair<long, double>> Curve;
  long Done = 0;
  while (Done < Budget) {
    trainRl(Env, RT, Opt); // Continues the same model in the same runtime.
    Done += Opt.TrainSteps;
    Curve.emplace_back(Done, Env.coverageFraction());
  }
  Env.setCoverageReward(false);
  return Curve;
}
} // namespace

int main() {
  long Budget = bench::scaled(12000, 1200);
  long SampleEvery = Budget / 6;

  bench::banner("Section 2 self-testing: branch coverage vs interactions");
  std::printf("(%d instrumented branches in the Mario game logic; coverage\n"
              " is cumulative across episodes, like gcov)\n\n",
              MarioEnv::NumBranches);

  MarioEnv CovEnv, ScoreEnv, RandEnv, PlayEnv;
  auto CovCurve = trainAgent(CovEnv, /*CoverageReward=*/true, Budget,
                             SampleEvery);
  auto ScoreCurve = trainAgent(ScoreEnv, /*CoverageReward=*/false, Budget,
                               SampleEvery);
  auto RandCurve = playScripted(RandEnv, /*Random=*/true, Budget,
                                SampleEvery);
  auto PlayCurve = playScripted(PlayEnv, /*Random=*/false, Budget,
                                SampleEvery);

  Table Out({"Interactions", "Coverage agent", "Score agent", "Random",
             "Scripted player"});
  for (size_t I = 0; I != CovCurve.size(); ++I) {
    auto Cell = [&](const std::vector<std::pair<long, double>> &Curve) {
      return I < Curve.size() ? fmtPercent(Curve[I].second)
                              : fmtPercent(Curve.back().second);
    };
    Out.addRow({fmt(static_cast<long long>(CovCurve[I].first)),
                fmtPercent(CovCurve[I].second), Cell(ScoreCurve),
                Cell(RandCurve), Cell(PlayCurve)});
  }
  Out.print();

  std::printf("\nFinal coverage: coverage-rewarded %.0f%%, score-rewarded "
              "%.0f%%, random %.0f%%, scripted %.0f%%\n",
              CovCurve.back().second * 100, ScoreCurve.back().second * 100,
              RandCurve.back().second * 100, PlayCurve.back().second * 100);
  return 0;
}
