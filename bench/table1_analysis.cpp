//===- bench/table1_analysis.cpp - Reproduces Table 1 --------------------===//
//
// Table 1 of the paper: per-program analysis statistics — the annotation
// burden (primitive call sites, standing in for "Added LOC"), the number of
// target variables, the candidate feature variables discovered by the
// dependence analysis, and the feature variables surviving selection
// (Algorithm 1 ranking for SL programs, Algorithm 2 pruning for RL
// programs).
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "analysis/FeatureExtraction.h"
#include "apps/arkanoid/Arkanoid.h"
#include "apps/breakout/Breakout.h"
#include "apps/canny/Canny.h"
#include "apps/common/RlHarness.h"
#include "apps/flappy/Flappy.h"
#include "apps/mario/Mario.h"
#include "apps/phylip/Phylip.h"
#include "apps/rothwell/Rothwell.h"
#include "apps/sphinx/Sphinx.h"
#include "apps/torcs/Torcs.h"
#include "support/Table.h"

#include <memory>

using namespace au;
using namespace au::apps;

/// Counts SL candidates: inputs plus their transitive dependents.
static int slCandidateCount(const analysis::Tracer &T,
                            const std::vector<std::string> &Inputs) {
  std::set<analysis::NodeId> Set;
  for (const std::string &In : Inputs) {
    analysis::NodeId N = T.graph().lookup(In);
    Set.insert(N);
    for (analysis::NodeId D : T.graph().dependents(N))
      Set.insert(D);
  }
  return static_cast<int>(Set.size());
}

static void addSlRow(Table &Out, const char *Name,
                     void (*Profile)(analysis::Tracer &,
                                     std::vector<std::string> &,
                                     std::vector<std::string> &)) {
  analysis::Tracer T;
  std::vector<std::string> Inputs, Targets;
  Profile(T, Inputs, Targets);
  analysis::SlFeatureMap F = analysis::extractSlFeatures(T, Inputs, Targets);
  std::string PerTarget;
  for (size_t I = 0; I != Targets.size(); ++I) {
    PerTarget += fmt(static_cast<long long>(F[Targets[I]].size()));
    if (I + 1 != Targets.size())
      PerTarget += "/";
  }
  Out.addRow({std::string("[SL] ") + Name,
              fmt(static_cast<long long>(Targets.size())),
              fmt(static_cast<long long>(slCandidateCount(T, Inputs))),
              PerTarget});
}

static void addRlRow(Table &Out, GameEnv &Env) {
  analysis::RlExtractionStats Stats;
  std::vector<std::string> Features =
      selectRlFeatures(Env, /*Epsilon1=*/1e-6, /*Epsilon2=*/1e-4,
                       /*ProfileSteps=*/300, &Stats);
  Out.addRow({std::string("[RL] ") + Env.name(),
              fmt(static_cast<long long>(Env.targetVariables().size())),
              fmt(static_cast<long long>(Stats.NumCandidates)),
              fmt(static_cast<long long>(Features.size()))});
}

int main() {
  bench::banner("Table 1: program analysis statistics");
  std::printf("(candidate variables are per-execution dependence-graph "
              "candidates;\n feature variables are those surviving Alg. 1 "
              "ranking / Alg. 2 pruning)\n\n");

  Table Out({"Program", "Trg Vars", "Candidate Vars", "Feature Vars"});
  addSlRow(Out, "canny", cannyProfile);
  addSlRow(Out, "rothwell", rothwellProfile);
  addSlRow(Out, "phylip", phylipProfile);
  addSlRow(Out, "sphinx", sphinxProfile);

  FlappyEnv Flappy;
  MarioEnv Mario;
  ArkanoidEnv Arkanoid;
  TorcsEnv Torcs;
  BreakoutEnv Breakout;
  addRlRow(Out, Flappy);
  addRlRow(Out, Mario);
  addRlRow(Out, Arkanoid);
  addRlRow(Out, Torcs);
  addRlRow(Out, Breakout);
  Out.print();

  std::printf("\nAnnotation burden (primitive call sites in the annotated "
              "programs):\n");
  Table Ann({"Program", "Primitive call sites"});
  // Counted from the annotated example/app sources: config + extract +
  // nn + write_back (+ checkpoint/restore/serialize for RL).
  Ann.addRow({"canny", "7 (2 config, 2 extract, 2 nn via 3 write-backs)"});
  Ann.addRow({"rothwell", "6"});
  Ann.addRow({"phylip", "6"});
  Ann.addRow({"sphinx", "5"});
  Ann.addRow({"RL games", "6-8 (extract xN, serialize, nn, write_back, "
                          "checkpoint, restore)"});
  Ann.print();
  return 0;
}
