//===- bench/rl_throughput.cpp - Parallel rollout throughput -------------===//
//
// Measures the parallel actor pipeline of DESIGN.md §8 on Flappy (the All
// variant): environment steps per second and replay transitions trained per
// second, at 1/2/4/8 actors, against the serial trainRl loop.
//
// The serial baseline runs the paper's schedule (TrainInterval=1: one
// minibatch per environment step). Each parallel configuration runs the
// standard vectorized-DQN schedule (TrainInterval=K: one minibatch per
// K-actor tick), so both regimes perform one training update per schedule
// interval and the env-steps/sec ratio isolates what the pipeline buys:
// fused batched inference, per-actor replay shards, and cross-actor
// parallel stepping. An acting-only row (warmup beyond the budget, pure
// rollout + inference) isolates the inference fusion alone.
//
// Each configuration runs several times and reports the best run (min
// time), filtering scheduler noise. Prints one JSON line per row:
//
//   {"bench": "BM_RlTrain", "mode": "serial|parallel", "actors": K,
//    "env_steps_per_sec": ..., "train_transitions_per_sec": ...,
//    "speedup_vs_serial": ...}
//
// so BENCH_rl_throughput.json baselines can be diffed across PRs.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "apps/common/RlHarness.h"
#include "apps/flappy/Flappy.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cstdio>
#include <memory>

using namespace au;
using namespace au::apps;
using bench::scaled;

namespace {

RlTrainOptions baseOptions(long Steps) {
  RlTrainOptions Opt;
  // The same variable set Algorithm 2 selects for Flappy; hard-coded so the
  // bench measures the training loop, not feature selection.
  Opt.FeatureNames = {"birdY", "birdV", "pipeDx", "gap1Y", "diffY"};
  Opt.TrainSteps = Steps;
  Opt.MaxEpisodeSteps = 300;
  Opt.Seed = 21;
  return Opt;
}

struct Throughput {
  double EnvStepsPerSec = 0.0;
  double TrainedPerSec = 0.0;
};

/// Training updates the schedule performs over \p Steps env steps (the
/// schedule is deterministic: one update per TrainInterval once warm).
long expectedTrainSteps(long Steps, const nn::QConfig &Cfg) {
  long N = 0;
  for (long S = 1; S <= Steps; ++S)
    if (S >= Cfg.WarmupSteps && S % Cfg.TrainInterval == 0)
      ++N;
  return N;
}

/// Best-of-\p Reps throughput for one configuration. \p Actors == 0 selects
/// the serial trainRl loop.
Throughput measure(int Actors, long Steps, bool Learning, int Reps = 3) {
  Throughput Best;
  for (int R = 0; R < Reps; ++R) {
    RlTrainOptions Opt = baseOptions(Steps);
    if (!Learning) // Acting-only: warmup never ends, no minibatches run.
      Opt.QCfg.WarmupSteps = static_cast<int>(Steps) + 1;
    Runtime RT(Mode::TR);
    RlTrainResult Res;
    if (Actors == 0) {
      FlappyEnv Env;
      Res = trainRl(Env, RT, Opt);
    } else {
      Opt.QCfg.TrainInterval = Actors;
      Res = trainRlParallel([] { return std::make_unique<FlappyEnv>(); },
                            RT, Opt, Actors);
    }
    double Sec = Res.TrainSeconds;
    if (Sec <= 0)
      continue;
    long Trained =
        Learning ? expectedTrainSteps(Res.StepsRun, Opt.QCfg) *
                       Opt.QCfg.BatchSize
                 : 0;
    Best.EnvStepsPerSec =
        std::max(Best.EnvStepsPerSec, Res.StepsRun / Sec);
    Best.TrainedPerSec = std::max(Best.TrainedPerSec, Trained / Sec);
  }
  return Best;
}

void emit(const char *Mode, int Actors, const Throughput &T,
          double SerialSteps) {
  std::printf("{\"bench\": \"BM_RlTrain\", \"mode\": \"%s\", "
              "\"actors\": %d, \"env_steps_per_sec\": %.0f, "
              "\"train_transitions_per_sec\": %.0f, "
              "\"speedup_vs_serial\": %.2f}\n",
              Mode, Actors, T.EnvStepsPerSec, T.TrainedPerSec,
              SerialSteps > 0 ? T.EnvStepsPerSec / SerialSteps : 0.0);
}

} // namespace

int main() {
  const long Steps = scaled(6000, 500);

  // Serial reference: the paper's loop, one minibatch per env step.
  Throughput Serial = measure(/*Actors=*/0, Steps, /*Learning=*/true);
  emit("serial", 1, Serial, Serial.EnvStepsPerSec);

  for (int Actors : {1, 2, 4, 8})
    emit("parallel", Actors,
         measure(Actors, Steps, /*Learning=*/true),
         Serial.EnvStepsPerSec);

  // Acting-only: rollout + fused inference, no training updates.
  Throughput SerialAct = measure(0, Steps, /*Learning=*/false);
  std::printf("{\"bench\": \"BM_RlActOnly\", \"mode\": \"serial\", "
              "\"actors\": 1, \"env_steps_per_sec\": %.0f}\n",
              SerialAct.EnvStepsPerSec);
  for (int Actors : {2, 8}) {
    Throughput T = measure(Actors, Steps, /*Learning=*/false);
    std::printf("{\"bench\": \"BM_RlActOnly\", \"mode\": \"parallel\", "
                "\"actors\": %d, \"env_steps_per_sec\": %.0f, "
                "\"speedup_vs_serial\": %.2f}\n",
                Actors, T.EnvStepsPerSec,
                SerialAct.EnvStepsPerSec > 0
                    ? T.EnvStepsPerSec / SerialAct.EnvStepsPerSec
                    : 0.0);
  }
  return 0;
}
