//===- bench/fig17_torcs.cpp - Reproduces Fig. 17 -------------------------===//
//
// Fig. 17 of the paper: TORCS driving score as training progresses, for
// four settings — the scripted Players reference, Raw (screenshots through
// the CNN), All (Algorithm 2's twenty variables) and Manual (the
// hand-picked expert feature set).
//
// Expected shape: Manual learns a little faster than All (its features are
// hand-curated), both approach the Players line; Raw improves far slower
// at the same budget.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/common/RlHarness.h"
#include "apps/torcs/Torcs.h"
#include "support/Table.h"

using namespace au;
using namespace au::apps;

namespace {
RlTrainResult trainSetting(TorcsEnv &Env, RlVariant Variant,
                           std::vector<std::string> Features, long Steps,
                           long EvalEvery, uint64_t Seed) {
  RlTrainOptions Opt;
  Opt.Variant = Variant;
  Opt.FeatureNames = std::move(Features);
  Opt.FrameSide = 16;
  Opt.TrainSteps = Steps;
  Opt.MaxEpisodeSteps = 500;
  Opt.Seed = Seed;
  Opt.QCfg.EpsilonDecaySteps = static_cast<int>(Steps * 0.6);
  Opt.QCfg.LearningRateEnd = 1e-4;
  Opt.QCfg.TrainInterval = 2;
  Opt.EvalEvery = EvalEvery;
  Opt.EvalEpisodes = 6;
  Runtime RT(Mode::TR);
  return trainRl(Env, RT, Opt);
}
} // namespace

int main() {
  long Steps = bench::scaled(12000, 1200);
  long RawSteps = bench::scaled(6000, 600);
  long EvalEvery = Steps / 6;
  long RawEvalEvery = RawSteps / 6;

  bench::banner("Fig. 17: TORCS driving score vs training progress");

  TorcsEnv Env;
  RlTrainOptions Ref;
  Ref.Seed = 55;
  Ref.MaxEpisodeSteps = 500;
  RlEvalResult Players = evalHeuristic(Env, Ref, 10);
  std::printf("Players reference: %.1f%% progress, %.0f%% finish rate\n\n",
              Players.MeanProgress * 100, Players.SuccessRate * 100);

  RlTrainResult All =
      trainSetting(Env, RlVariant::All, selectRlFeatures(Env), Steps,
                   EvalEvery, /*Seed=*/55);
  RlTrainResult Manual =
      trainSetting(Env, RlVariant::All, TorcsEnv::manualFeatureNames(),
                   Steps, EvalEvery, /*Seed=*/56);
  RlTrainResult Raw = trainSetting(Env, RlVariant::Raw, {}, RawSteps,
                                   RawEvalEvery, /*Seed=*/57);

  Table Out({"Train Frac", "Players", "All", "Manual", "Raw"});
  size_t Rows = All.Curve.size();
  for (size_t I = 0; I < Rows; ++I) {
    std::string RawCell =
        I < Raw.Curve.size() ? fmtPercent(Raw.Curve[I].Progress) : "-";
    Out.addRow({fmtPercent(static_cast<double>(I + 1) / Rows),
                fmtPercent(Players.MeanProgress),
                fmtPercent(All.Curve[I].Progress),
                fmtPercent(I < Manual.Curve.size()
                               ? Manual.Curve[I].Progress
                               : Manual.Curve.back().Progress),
                RawCell});
  }
  Out.print();

  std::printf("\nTraining time: All %.1fs (%zu features), Manual %.1fs "
              "(%zu features), Raw %.1fs (16x16 frames)\n",
              All.TrainSeconds, selectRlFeatures(Env).size(),
              Manual.TrainSeconds, TorcsEnv::manualFeatureNames().size(),
              Raw.TrainSeconds);
  std::printf("The x-axis is training iterations; in wall-clock terms Raw "
              "needs ~%.0fx\nlonger than All for the same iteration count "
              "(the paper's 40h-vs-20h gap).\n",
              Raw.TrainSeconds / std::max(0.01, All.TrainSeconds) *
                  (static_cast<double>(Steps) / RawSteps));
  return 0;
}
