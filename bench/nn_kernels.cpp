//===- bench/nn_kernels.cpp - NN compute-engine micro-benchmarks ---------===//
//
// Measures the batched compute engines (blocked-scalar and AVX2/FMA simd)
// against the scalar reference backend on the repo's real model shapes
// (Canny Raw 32x32 frames, the RL harness 20x20 frames, and the dense
// heads), plus an end-to-end supervised epoch. Prints one JSON line per
// case:
//
//   {"bench": "...", "backend": "...", "threads": N, "ns_per_iter": ...}
//
// followed by a speedup line per case, so the perf trajectory can be
// tracked across PRs. The simd rows only appear when the CPU supports
// AVX2+FMA. Thread counts swept: 1 and 4 (plus AU_NN_THREADS if set to
// something else).
//
//===----------------------------------------------------------------------===//

#include "nn/Gemm.h"
#include "nn/Layers.h"
#include "nn/Network.h"
#include "nn/Supervised.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <cstdio>
#include <functional>
#include <string>
#include <vector>

using namespace au;
using namespace au::nn;

namespace {

volatile float Sink; // Defeats dead-code elimination.

/// Times Fn (already warmed) and returns ns per iteration.
double timeNs(const std::function<void()> &Fn, int MinIters = 3,
              double MinSeconds = 0.25) {
  Fn(); // Warm-up: allocate workspaces, fault in pages.
  int Iters = 0;
  Timer T;
  do {
    Fn();
    ++Iters;
  } while (Iters < MinIters || T.seconds() < MinSeconds);
  return T.seconds() * 1e9 / Iters;
}

void printCase(const std::string &Bench, const std::string &BackendName,
               int Threads, double NsPerIter) {
  std::printf("{\"bench\": \"%s\", \"backend\": \"%s\", \"threads\": %d, "
              "\"ns_per_iter\": %.0f}\n",
              Bench.c_str(), BackendName.c_str(), Threads, NsPerIter);
  std::fflush(stdout);
}

void printSpeedup(const std::string &Bench, const std::string &BackendName,
                  int Threads, double Naive, double Batched) {
  std::printf("{\"bench\": \"%s\", \"backend\": \"%s\", \"threads\": %d, "
              "\"speedup_vs_naive\": %.2f}\n",
              Bench.c_str(), BackendName.c_str(), Threads, Naive / Batched);
  std::fflush(stdout);
}

/// The batched engines to sweep: always blocked, plus simd where the CPU
/// supports it.
std::vector<Backend> batchedBackends() {
  std::vector<Backend> Bs = {Backend::Blocked};
  if (simdSupported())
    Bs.push_back(Backend::Simd);
  return Bs;
}

Tensor randomBatch(std::vector<int> Shape, Rng &Rand) {
  Tensor T(std::move(Shape));
  for (float &V : T.values())
    V = static_cast<float>(Rand.uniform(-1, 1));
  return T;
}

/// One fwd+bwd pass per sample through a layer, scalar reference path.
template <typename L>
double benchLayerNaive(L &Layer, const Tensor &In, const Tensor &GradOut) {
  int BN = In.dim(0);
  size_t InSz = In.sampleSize(), GSz = GradOut.sampleSize();
  Tensor X(In.sampleShape()), G(GradOut.sampleShape());
  double Ns = timeNs([&] {
    for (int B = 0; B < BN; ++B) {
      std::copy(In.sampleData(B), In.sampleData(B) + InSz, X.data());
      Tensor Y = Layer.forward(X);
      std::copy(GradOut.sampleData(B), GradOut.sampleData(B) + GSz,
                G.data());
      Tensor GI = Layer.backward(G);
      Sink = GI[0] + Y[0];
    }
  });
  return Ns / BN; // Per sample.
}

template <typename L>
double benchLayerBatched(L &Layer, const Tensor &In, const Tensor &GradOut) {
  int BN = In.dim(0);
  double Ns = timeNs([&] {
    Tensor Y = Layer.forwardBatch(In);
    Tensor GI = Layer.backwardBatch(GradOut);
    Sink = GI[0] + Y[0];
  });
  return Ns / BN;
}

template <typename L>
double benchLayerForwardOnly(L &Layer, const Tensor &In) {
  int BN = In.dim(0);
  double Ns = timeNs([&] {
    Tensor Y = Layer.forwardBatch(In);
    Sink = Y[0];
  });
  return Ns / BN;
}

void benchConvCase(const std::string &Name, int InC, int OutC, int K, int S,
                   int H, int W, int BN, const std::vector<int> &ThreadsSet) {
  Rng Rand(1);
  Rng WRand(2);
  Conv2D Conv(InC, OutC, K, S, WRand);
  Tensor In = randomBatch({BN, InC, H, W}, Rand);
  Tensor G = randomBatch({BN, OutC, convOutDim(H, K, S),
                          convOutDim(W, K, S)}, Rand);
  ThreadPool::setGlobalThreads(1);
  setBackend(Backend::Naive);
  double Naive = benchLayerNaive(Conv, In, G);
  printCase(Name, "naive", 1, Naive);
  for (Backend B : batchedBackends()) {
    setBackend(B);
    for (int T : ThreadsSet) {
      ThreadPool::setGlobalThreads(T);
      double Batched = benchLayerBatched(Conv, In, G);
      printCase(Name, backendName(B), T, Batched);
      printSpeedup(Name, backendName(B), T, Naive, Batched);
    }
  }
}

/// Conv2D forward only (the TS-mode inference path): pre-packed weights and
/// the workspace arena are what this isolates, so blocked-vs-simd here is
/// the PR's headline kernel speedup.
void benchConvForwardCase(const std::string &Name, int InC, int OutC, int K,
                          int S, int H, int W, int BN) {
  Rng Rand(1);
  Rng WRand(2);
  Conv2D Conv(InC, OutC, K, S, WRand);
  Tensor In = randomBatch({BN, InC, H, W}, Rand);
  ThreadPool::setGlobalThreads(1);
  double Blocked = 0.0;
  for (Backend B : batchedBackends()) {
    setBackend(B);
    double Ns = benchLayerForwardOnly(Conv, In);
    printCase(Name, backendName(B), 1, Ns);
    if (B == Backend::Blocked)
      Blocked = Ns;
    else if (B == Backend::Simd)
      std::printf("{\"bench\": \"%s\", \"threads\": 1, "
                  "\"simd_speedup_vs_blocked\": %.2f}\n",
                  Name.c_str(), Blocked / Ns);
  }
  std::fflush(stdout);
}

void benchDenseCase(const std::string &Name, int InSz, int OutSz, int BN,
                    const std::vector<int> &ThreadsSet) {
  Rng Rand(1);
  Rng WRand(2);
  Dense D(InSz, OutSz, WRand);
  Tensor In = randomBatch({BN, InSz}, Rand);
  Tensor G = randomBatch({BN, OutSz}, Rand);
  ThreadPool::setGlobalThreads(1);
  setBackend(Backend::Naive);
  double Naive = benchLayerNaive(D, In, G);
  printCase(Name, "naive", 1, Naive);
  for (Backend B : batchedBackends()) {
    setBackend(B);
    for (int T : ThreadsSet) {
      ThreadPool::setGlobalThreads(T);
      double Batched = benchLayerBatched(D, In, G);
      printCase(Name, backendName(B), T, Batched);
      printSpeedup(Name, backendName(B), T, Naive, Batched);
    }
  }
}

/// End-to-end supervised epoch on the Canny Raw shape (1x32x32 frames
/// through the DeepMind-style CNN), the paper's heaviest training config.
void benchEndToEndEpoch(const std::vector<int> &ThreadsSet) {
  const int Side = 32, NSamples = 48, BatchSize = 16;
  auto MakeTrainer = [&] {
    Rng NetRand(3);
    SupervisedTrainer Trainer(buildDeepMindCnn(1, Side, {64}, 2, NetRand),
                              1e-3);
    Rng DataRand(4);
    for (int I = 0; I < NSamples; ++I) {
      std::vector<float> X(Side * Side);
      for (float &V : X)
        V = static_cast<float>(DataRand.uniform(0, 1));
      std::vector<float> Y = {X[0], X[1]};
      Trainer.addSample(std::move(X), std::move(Y));
    }
    return Trainer;
  };
  const std::string Name = "canny_raw_epoch";
  setBackend(Backend::Naive);
  ThreadPool::setGlobalThreads(1);
  SupervisedTrainer Trainer = MakeTrainer();
  Rng TrainRand(5);
  double Naive = timeNs([&] { Trainer.train(1, BatchSize, TrainRand); },
                        1, 0.5);
  printCase(Name, "naive", 1, Naive);
  for (Backend B : batchedBackends()) {
    setBackend(B);
    for (int T : ThreadsSet) {
      ThreadPool::setGlobalThreads(T);
      SupervisedTrainer Fast = MakeTrainer();
      Rng FastRand(5);
      double Batched = timeNs([&] { Fast.train(1, BatchSize, FastRand); },
                              1, 0.5);
      printCase(Name, backendName(B), T, Batched);
      printSpeedup(Name, backendName(B), T, Naive, Batched);
    }
  }
}

} // namespace

int main() {
  std::vector<int> ThreadsSet = {1, 4};

  // Conv2D fwd+bwd on the repo's two CNN stage shapes, for the Canny Raw
  // 32x32 input and the RL harness 20x20 frame.
  benchConvCase("conv_fwd_bwd_canny_s1", 1, 8, 3, 1, 32, 32, 16, ThreadsSet);
  benchConvCase("conv_fwd_bwd_canny_s2", 8, 16, 3, 1, 15, 15, 16, ThreadsSet);
  benchConvCase("conv_fwd_bwd_mario_s1", 1, 8, 3, 1, 20, 20, 16, ThreadsSet);
  benchConvCase("conv_fwd_bwd_mario_s2", 8, 16, 3, 1, 9, 9, 16, ThreadsSet);

  // Forward-only conv (inference path): blocked vs simd at one thread.
  benchConvForwardCase("conv_fwd_canny_s2", 8, 16, 3, 1, 15, 15, 16);
  benchConvForwardCase("conv_fwd_mario_s2", 8, 16, 3, 1, 9, 9, 16);

  // Dense fwd+bwd on the paper's common head shapes.
  benchDenseCase("dense_fwd_bwd_256x64", 256, 64, 32, ThreadsSet);
  benchDenseCase("dense_fwd_bwd_1024x64", 1024, 64, 32, ThreadsSet);

  benchEndToEndEpoch(ThreadsSet);
  return 0;
}
