//===- bench/table3_sl.cpp - Reproduces Table 3 (SL rows) ----------------===//
//
// Table 3 of the paper, supervised-learning rows: quality score and
// training/execution time of the default-parameter Baseline against the
// autonomized Raw / Med / Min versions (feature variables at maximum /
// median / minimum dependence distance, per Algorithm 1).
//
// Expected shape (paper): Min >= Med >= Raw > Baseline on score; Min trains
// in a fraction of Raw's time (their Raw/Min training ratios are 1.22-28x);
// execution overhead stays small. For phylip, LOWER scores are better.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/canny/Canny.h"
#include "apps/phylip/Phylip.h"
#include "apps/rothwell/Rothwell.h"
#include "apps/sphinx/Sphinx.h"
#include "support/Table.h"

using namespace au;
using namespace au::apps;
using analysis::SlPick;

namespace {
template <typename Experiment>
void addRows(Table &Out, const char *Name, const char *Direction,
             Experiment &Exp, int Epochs) {
  double BaselineScore = Exp.baselineScore();
  double BaseExec = Exp.baselineExecSeconds();

  double TrainSecs[3], Scores[3], ExecSecs[3];
  for (SlPick Pick : {SlPick::Raw, SlPick::Med, SlPick::Min}) {
    int I = static_cast<int>(Pick);
    TrainSecs[I] = Exp.train(Pick, Epochs);
    Scores[I] = Exp.testScore(Pick);
    ExecSecs[I] = Exp.autonomizedExecSeconds(Pick);
  }
  int Raw = static_cast<int>(SlPick::Raw);
  int Med = static_cast<int>(SlPick::Med);
  int Min = static_cast<int>(SlPick::Min);
  Out.addRow({std::string("[SL] ") + Direction + " " + Name,
              fmt(BaseExec * 1e3, 2), fmt(BaselineScore, 3),
              fmt(TrainSecs[Raw], 2), fmt(Scores[Raw], 3),
              fmt(TrainSecs[Med], 2), fmt(ExecSecs[Med] * 1e3, 2),
              fmt(Scores[Med], 3), fmt(TrainSecs[Min], 2),
              fmt(ExecSecs[Min] * 1e3, 2), fmt(Scores[Min], 3),
              fmt(TrainSecs[Raw] / TrainSecs[Min], 2)});
}
} // namespace

int main() {
  int NumTrain = static_cast<int>(bench::scaled(60, 12));
  int NumTest = 10;
  int Epochs = static_cast<int>(bench::scaled(80, 10));

  bench::banner("Table 3 (SL rows): baseline vs Raw/Med/Min");
  std::printf("(train set %d inputs, test set %d inputs, %d epochs; times in "
              "seconds,\n exec times in ms per input; ^ higher scores "
              "better, v lower better)\n\n",
              NumTrain, NumTest, Epochs);

  Table Out({"Program", "Base Exec(ms)", "Base Score", "Raw Train(s)",
             "Raw Score", "Med Train(s)", "Med Exec(ms)", "Med Score",
             "Min Train(s)", "Min Exec(ms)", "Min Score", "TrainT Raw/Min"});

  {
    CannyExperiment Exp(NumTrain, NumTest, 3100);
    addRows(Out, "canny", "^", Exp, Epochs);
  }
  {
    RothwellExperiment Exp(NumTrain / 2, NumTest, 3200);
    addRows(Out, "rothwell", "^", Exp, Epochs);
  }
  {
    PhylipExperiment Exp(NumTrain, NumTest, 3300);
    addRows(Out, "phylip", "v", Exp, Epochs);
  }
  {
    SphinxExperiment Exp(NumTrain * 2, NumTest * 3, 3400);
    addRows(Out, "sphinx", "^", Exp, Epochs);
  }
  Out.print();

  std::printf("\nNote: the paper reports Min improving the baseline by 161%% "
              "on average\nwith <=0.64x execution overhead; compare the "
              "ordering Min >= Med >= Raw > Base\nand the Raw/Min training "
              "ratio > 1, not absolute values.\n");
  return 0;
}
