//===- bench/ablation_pruning.cpp - Algorithm 2 threshold ablation -------===//
//
// Ablation of the design choice DESIGN.md calls out: Algorithm 2's two
// pruning thresholds. Sweeps (epsilon1, epsilon2) over the TORCS and Mario
// profiles and reports how many candidates survive; then trains Flappy
// agents on three characteristic settings (no pruning / the paper's
// setting / over-pruned) to show the score impact of the feature set.
//
// Expected shape: the paper's setting keeps a compact informative set; no
// pruning inflates the input with aliases and constants; over-pruning
// starves the model and hurts the score.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/common/RlHarness.h"
#include "apps/flappy/Flappy.h"
#include "apps/mario/Mario.h"
#include "apps/torcs/Torcs.h"
#include "support/Table.h"

using namespace au;
using namespace au::apps;

int main() {
  bench::banner("Ablation: Algorithm 2 pruning thresholds");

  {
    Table Out({"Env", "eps1", "eps2", "Candidates", "Features"});
    MarioEnv Mario;
    TorcsEnv Torcs;
    for (GameEnv *Env : {static_cast<GameEnv *>(&Mario),
                         static_cast<GameEnv *>(&Torcs)})
      for (double Eps1 : {0.0, 0.05, 0.5})
        for (double Eps2 : {0.0, 0.01, 0.05}) {
          analysis::RlExtractionStats Stats;
          std::vector<std::string> F =
              selectRlFeatures(*Env, Eps1, Eps2, 250, &Stats);
          Out.addRow({Env->name(), fmt(Eps1, 2), fmt(Eps2, 3),
                      fmt(static_cast<long long>(Stats.NumCandidates)),
                      fmt(static_cast<long long>(F.size()))});
        }
    Out.print();
  }

  bench::banner("Score impact on Flappy (same training budget)");
  long Steps = bench::scaled(6000, 600);
  struct Setting {
    const char *Label;
    double Eps1, Eps2;
  };
  Table Out({"Setting", "Features", "Progress", "Success"});
  for (Setting S : {Setting{"no pruning", 0.0, 0.0},
                    Setting{"paper-style", 0.05, 0.001},
                    Setting{"over-pruned", 3.0, 0.001}}) {
    FlappyEnv Env;
    RlTrainOptions Opt;
    Opt.FeatureNames = selectRlFeatures(Env, S.Eps1, S.Eps2);
    Opt.TrainSteps = Steps;
    Opt.Seed = 31;
    Opt.QCfg.EpsilonDecaySteps = static_cast<int>(Steps * 0.6);
    Opt.QCfg.LearningRateEnd = 1e-4;
    Opt.QCfg.TrainInterval = 2;
    Runtime RT(Mode::TR);
    trainRl(Env, RT, Opt);
    RlEvalResult R = evalRl(Env, RT, Opt, 10);
    Out.addRow({S.Label, fmt(static_cast<long long>(Opt.FeatureNames.size())),
                fmtPercent(R.MeanProgress), fmtPercent(R.SuccessRate)});
  }
  Out.print();
  return 0;
}
