//===- bench/fig13_canny_epochs.cpp - Reproduces Fig. 13 -----------------===//
//
// Fig. 13 of the paper: Canny prediction score as training progresses
// (epoch sweep) for the Raw / Med / Min versions against the constant
// baseline.
//
// Expected shape: Min consistently above the rest at every epoch count;
// all learned versions above the baseline once trained.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/canny/Canny.h"
#include "support/Table.h"

using namespace au;
using namespace au::apps;
using analysis::SlPick;

int main() {
  int NumTrain = static_cast<int>(bench::scaled(60, 12));
  static const uint64_t Seeds[] = {4100, 4200, 4300};
  const int NumSeeds = 3;

  bench::banner("Fig. 13: Canny score vs training epochs");
  std::printf("(averaged over %d dataset seeds, %d training images each)\n\n",
              NumSeeds, NumTrain);

  std::vector<int> Points = {2, 5, 10, 20, 40, 80};
  double Baseline = 0.0;
  std::vector<double> Curves[3];
  for (auto &C : Curves)
    C.assign(Points.size(), 0.0);

  for (uint64_t Seed : Seeds) {
    CannyExperiment Exp(NumTrain, /*NumTest=*/10, Seed);
    Baseline += Exp.baselineScore() / NumSeeds;
    for (SlPick Pick : {SlPick::Raw, SlPick::Med, SlPick::Min}) {
      std::vector<std::pair<int, double>> Curve =
          Exp.trainEpochCurve(Pick, Points);
      for (size_t I = 0; I != Points.size(); ++I)
        Curves[static_cast<int>(Pick)][I] += Curve[I].second / NumSeeds;
    }
  }

  Table Out({"Epochs", "Baseline", "Raw", "Med", "Min"});
  for (size_t I = 0; I != Points.size(); ++I)
    Out.addRow({fmt(static_cast<long long>(Points[I])), fmt(Baseline, 3),
                fmt(Curves[static_cast<int>(SlPick::Raw)][I], 3),
                fmt(Curves[static_cast<int>(SlPick::Med)][I], 3),
                fmt(Curves[static_cast<int>(SlPick::Min)][I], 3)});
  Out.print();
  return 0;
}
