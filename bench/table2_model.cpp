//===- bench/table2_model.cpp - Reproduces Table 2 -----------------------===//
//
// Table 2 of the paper: model statistics. For the SL programs, the trace
// size (extracted feature values) and the serialized model size of the
// Raw / Med / Min feature versions, plus the Raw/Min ratios. For the RL
// programs, the same for Raw (pixels) vs All (program variables) over a
// fixed-length training window, plus the checkpoint/restore latency.
//
// Expected shape (paper): Raw traces and models dwarf Min/All because raw
// inputs are larger and need extra (conv) layers.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"

#include "apps/arkanoid/Arkanoid.h"
#include "apps/breakout/Breakout.h"
#include "apps/canny/Canny.h"
#include "apps/common/RlHarness.h"
#include "apps/flappy/Flappy.h"
#include "apps/mario/Mario.h"
#include "apps/phylip/Phylip.h"
#include "apps/rothwell/Rothwell.h"
#include "apps/sphinx/Sphinx.h"
#include "apps/torcs/Torcs.h"
#include "support/Table.h"

#include <memory>

using namespace au;
using namespace au::apps;
using analysis::SlPick;

namespace {
struct SlSizes {
  size_t Trace[3];
  size_t Model[3];
};

/// Runs a minimal training pass per version just to materialize the traces
/// and models (sizes do not depend on training quality).
template <typename Experiment> SlSizes slSizes(Experiment &Exp) {
  SlSizes S{};
  for (SlPick Pick : {SlPick::Raw, SlPick::Med, SlPick::Min}) {
    Exp.train(Pick, /*Epochs=*/2);
    S.Trace[static_cast<int>(Pick)] = Exp.traceBytes(Pick);
    S.Model[static_cast<int>(Pick)] = Exp.modelBytes(Pick);
  }
  return S;
}

std::string kb(size_t Bytes) { return fmt(Bytes / 1024.0, 1) + " KiB"; }

template <typename Experiment>
void addSlRow(Table &Out, const char *Name, Experiment &Exp) {
  SlSizes S = slSizes(Exp);
  int Raw = static_cast<int>(SlPick::Raw);
  int Med = static_cast<int>(SlPick::Med);
  int Min = static_cast<int>(SlPick::Min);
  Out.addRow({std::string("[SL] ") + Name, kb(S.Trace[Raw]), kb(S.Model[Raw]),
              kb(S.Trace[Med]), kb(S.Model[Med]), kb(S.Trace[Min]),
              kb(S.Model[Min]),
              fmt(static_cast<double>(S.Trace[Raw]) / S.Trace[Min], 2),
              fmt(static_cast<double>(S.Model[Raw]) / S.Model[Min], 2)});
}

void addRlRow(Table &Out, GameEnv &Env, long Window) {
  RlTrainOptions AllOpt;
  AllOpt.FeatureNames = selectRlFeatures(Env);
  AllOpt.TrainSteps = Window;
  AllOpt.Seed = 11;
  AllOpt.QCfg.TrainInterval = 4;
  Runtime RtAll(Mode::TR);
  RlTrainResult All = trainRl(Env, RtAll, AllOpt);

  RlTrainOptions RawOpt;
  RawOpt.Variant = RlVariant::Raw;
  RawOpt.FrameSide = 16;
  RawOpt.TrainSteps = Window;
  RawOpt.Seed = 11;
  RawOpt.QCfg.TrainInterval = 4;
  Runtime RtRaw(Mode::TR);
  RlTrainResult Raw = trainRl(Env, RtRaw, RawOpt);

  Out.addRow({std::string("[RL] ") + Env.name(), kb(Raw.TraceBytes),
              kb(Raw.ModelBytes), kb(All.TraceBytes), kb(All.ModelBytes),
              fmt(static_cast<double>(Raw.TraceBytes) / All.TraceBytes, 1),
              fmt(static_cast<double>(Raw.ModelBytes) / All.ModelBytes, 2),
              fmt(All.CheckpointSeconds * 1e3, 3) + " ms",
              fmt(All.RestoreSeconds * 1e3, 3) + " ms"});
}
} // namespace

int main() {
  long Window = bench::scaled(1500, 200);

  bench::banner("Table 2 (SL half): trace and model sizes, Raw/Med/Min");
  {
    Table Out({"Program", "Raw Trace", "Raw Model", "Med Trace", "Med Model",
               "Min Trace", "Min Model", "Raw/Min Trace", "Raw/Min Model"});
    CannyExperiment Canny(/*NumTrain=*/16, /*NumTest=*/4, /*Seed=*/2100);
    addSlRow(Out, "canny", Canny);
    RothwellExperiment Roth(12, 4, 2200);
    addSlRow(Out, "rothwell", Roth);
    PhylipExperiment Phy(12, 4, 2300);
    addSlRow(Out, "phylip", Phy);
    SphinxExperiment Sph(24, 6, 2400);
    addSlRow(Out, "sphinx", Sph);
    Out.print();
  }

  bench::banner("Table 2 (RL half): Raw vs All over a fixed training window");
  std::printf("(window = %ld game-loop iterations; checkpoint/restore are\n"
              " in-memory snapshots, not the paper's KVM images — compare\n"
              " the checkpoint > restore shape, not absolute values)\n\n",
              Window);
  {
    Table Out({"Program", "Raw Trace", "Raw Model", "All Trace", "All Model",
               "Raw/All Trace", "Raw/All Model", "Checkpoint", "Restore"});
    FlappyEnv Flappy;
    addRlRow(Out, Flappy, Window);
    MarioEnv Mario;
    addRlRow(Out, Mario, Window);
    ArkanoidEnv Arkanoid;
    addRlRow(Out, Arkanoid, Window);
    TorcsEnv Torcs;
    addRlRow(Out, Torcs, Window);
    BreakoutEnv Breakout;
    addRlRow(Out, Breakout, Window);
    Out.print();
  }
  return 0;
}
