//===- bench/serve_throughput.cpp - Multi-tenant serving throughput ------===//
//
// Measures the payoff of the Engine/Session split (DESIGN.md §10) for
// concurrent TS-mode serving: K client sessions each issue au_NN
// predictions against one shared model.
//
//   per-call : each session runs its own extract -> nn -> write_back loop
//              (K independent single-session loops, the pre-split shape).
//   batched  : the K calls of one round fuse into ONE
//              Engine::nnBatchSessions pass — one forwardBatch serves
//              every tenant's row.
//
// Output: one JSON line per case,
//
//   {"bench": "BM_Serve", "api": "per_call|batched", "sessions": K,
//    "calls_per_sec": ..., "p50_us": ..., "p99_us": ...,
//    "speedup_vs_per_call": ...}
//
// so BENCH_serve_throughput.json baselines can be diffed across PRs.
// Latency is per client call: a batched client's call completes when its
// round's fused pass completes, so the round time is every rider's latency.
//
//===----------------------------------------------------------------------===//

#include "BenchCommon.h"
#include "core/Engine.h"
#include "support/Timer.h"

#include <algorithm>
#include <cstdio>
#include <memory>
#include <vector>

using namespace au;
using namespace au::bench;

namespace {

constexpr int FeatDim = 128;
constexpr int OutDim = 8;

/// Distinct but deterministic probe row per session.
void probeRow(int K, float *X) {
  for (int J = 0; J < FeatDim; ++J)
    X[J] = 0.25f + 0.03f * static_cast<float>(K % 7) +
           0.01f * static_cast<float>(J % 13);
}

/// Trains and publishes the shared model every serving case binds to.
NameId trainServedModel(Engine &Eng, Session &Trainer) {
  ModelConfig Cfg;
  Cfg.Name = "Served";
  Cfg.HiddenLayers = {256, 256};
  Cfg.Seed = 42;
  Trainer.config(Cfg);
  NameId ModelId = Trainer.intern("Served");
  NameId Feat = Trainer.intern("feat");
  WriteBackHandle Out{Trainer.intern("out"), OutDim};
  for (int I = 0; I < 64; ++I) {
    float X[FeatDim];
    probeRow(I, X);
    Trainer.extract(Feat, FeatDim, X);
    Trainer.nn(ModelId, Feat, {Out});
    float Label[OutDim];
    for (int J = 0; J < OutDim; ++J)
      Label[J] = X[J] - X[J + 1];
    Trainer.writeBack(Out.Name, OutDim, Label);
  }
  Trainer.trainSupervised("Served", /*Epochs=*/2, /*BatchSize=*/16);
  return ModelId;
}

struct ServeResult {
  double CallsPerSec = 0.0;
  double P50Us = 0.0;
  double P99Us = 0.0;
};

double percentile(std::vector<double> &Xs, double P) {
  std::sort(Xs.begin(), Xs.end());
  size_t I = static_cast<size_t>(P * static_cast<double>(Xs.size() - 1));
  return Xs[I];
}

/// K single-session loops, one per-call au_NN each per round.
ServeResult servePerCall(Engine &Eng, NameId ModelId, int K, long Rounds) {
  std::vector<std::unique_ptr<Session>> Sess;
  for (int S = 0; S < K; ++S) {
    Sess.push_back(std::make_unique<Session>(Eng, Mode::TS));
    Sess.back()->setSharedInference(true);
  }
  NameId Feat = Eng.intern("feat");
  WriteBackHandle Out{Eng.intern("out"), OutDim};
  std::vector<float> Rows(static_cast<size_t>(K) * FeatDim);
  for (int S = 0; S < K; ++S)
    probeRow(S, Rows.data() + static_cast<size_t>(S) * FeatDim);

  std::vector<double> CallUs;
  CallUs.reserve(static_cast<size_t>(Rounds) * K);
  float Pred[OutDim];
  Timer Total;
  for (long R = 0; R < Rounds; ++R)
    for (int S = 0; S < K; ++S) {
      Timer T;
      Session &C = *Sess[static_cast<size_t>(S)];
      C.extract(Feat, FeatDim, Rows.data() + static_cast<size_t>(S) * FeatDim);
      C.nn(ModelId, Feat, {Out});
      C.writeBack(Out.Name, OutDim, Pred);
      CallUs.push_back(T.seconds() * 1e6);
    }
  double Secs = Total.seconds();

  ServeResult Res;
  Res.CallsPerSec = static_cast<double>(Rounds) * K / Secs;
  Res.P50Us = percentile(CallUs, 0.50);
  Res.P99Us = percentile(CallUs, 0.99);
  return Res;
}

/// K sessions served by one fused nnBatchSessions pass per round.
ServeResult serveBatched(Engine &Eng, NameId ModelId, int K, long Rounds) {
  std::vector<std::unique_ptr<Session>> Sess;
  std::vector<Session *> Ptrs;
  for (int S = 0; S < K; ++S) {
    Sess.push_back(std::make_unique<Session>(Eng, Mode::TS));
    Ptrs.push_back(Sess.back().get());
  }
  NameId Feat = Eng.intern("feat");
  WriteBackHandle Out{Eng.intern("out"), OutDim};
  std::vector<WriteBackHandle> Outs{Out};
  std::vector<NameId> ExtIds(static_cast<size_t>(K), Feat);
  std::vector<float> Rows(static_cast<size_t>(K) * FeatDim);
  for (int S = 0; S < K; ++S)
    probeRow(S, Rows.data() + static_cast<size_t>(S) * FeatDim);

  std::vector<double> RoundUs;
  RoundUs.reserve(static_cast<size_t>(Rounds));
  float Pred[OutDim];
  Timer Total;
  for (long R = 0; R < Rounds; ++R) {
    Timer T;
    for (int S = 0; S < K; ++S)
      Sess[static_cast<size_t>(S)]->extract(
          Feat, FeatDim, Rows.data() + static_cast<size_t>(S) * FeatDim);
    Eng.nnBatchSessions(ModelId, Ptrs.data(), ExtIds.data(), K, Outs);
    for (int S = 0; S < K; ++S)
      Sess[static_cast<size_t>(S)]->writeBack(Out.Name, OutDim, Pred);
    RoundUs.push_back(T.seconds() * 1e6);
  }
  double Secs = Total.seconds();

  ServeResult Res;
  Res.CallsPerSec = static_cast<double>(Rounds) * K / Secs;
  // Every rider of a round completes with the round.
  Res.P50Us = percentile(RoundUs, 0.50);
  Res.P99Us = percentile(RoundUs, 0.99);
  return Res;
}

void emit(const char *Api, int K, const ServeResult &R, double Speedup) {
  std::printf("{\"bench\": \"BM_Serve\", \"api\": \"%s\", \"sessions\": %d, "
              "\"calls_per_sec\": %.0f, \"p50_us\": %.2f, \"p99_us\": %.2f",
              Api, K, R.CallsPerSec, R.P50Us, R.P99Us);
  if (Speedup > 0)
    std::printf(", \"speedup_vs_per_call\": %.2f", Speedup);
  std::printf("}\n");
}

} // namespace

int main() {
  banner("Multi-tenant serving: per-call vs cross-session batching");

  Engine Eng;
  Session Trainer(Eng, Mode::TR);
  NameId ModelId = trainServedModel(Eng, Trainer);

  const long Rounds = scaled(2000, 50);
  for (int K : {1, 2, 4, 8, 16}) {
    // Warm both paths (replica construction, staging growth), then measure.
    servePerCall(Eng, ModelId, K, 10);
    serveBatched(Eng, ModelId, K, 10);
    ServeResult Per = servePerCall(Eng, ModelId, K, Rounds);
    ServeResult Bat = serveBatched(Eng, ModelId, K, Rounds);
    emit("per_call", K, Per, 0.0);
    emit("batched", K, Bat, Bat.CallsPerSec / Per.CallsPerSec);
  }
  return 0;
}
