//===- bench/BenchCommon.h - Shared benchmark-harness helpers --*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers shared by the table/figure harnesses: a scale factor so the full
/// evaluation can be shrunk (AU_BENCH_SCALE=0.2 for smoke runs) or grown
/// (AU_BENCH_SCALE=4 for tighter numbers), and a banner printer.
///
//===----------------------------------------------------------------------===//

#ifndef AU_BENCH_BENCHCOMMON_H
#define AU_BENCH_BENCHCOMMON_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace au {
namespace bench {

/// Multiplier applied to training budgets; from AU_BENCH_SCALE (default 1).
inline double benchScale() {
  const char *Env = std::getenv("AU_BENCH_SCALE");
  if (!Env)
    return 1.0;
  double V = std::atof(Env);
  return V > 0 ? V : 1.0;
}

/// Scales an integer budget, keeping at least \p Min.
inline long scaled(long Budget, long Min = 1) {
  long V = static_cast<long>(Budget * benchScale());
  return V < Min ? Min : V;
}

/// Prints a section banner.
inline void banner(const std::string &Title) {
  std::printf("\n=== %s ===\n", Title.c_str());
}

} // namespace bench
} // namespace au

#endif // AU_BENCH_BENCHCOMMON_H
