//===- tests/NnTest.cpp - Unit tests for the NN substrate ----------------===//

#include "nn/Layers.h"
#include "nn/Loss.h"
#include "nn/Network.h"
#include "nn/Optimizer.h"
#include "nn/QLearner.h"
#include "nn/Supervised.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

using namespace au;
using namespace au::nn;

//===----------------------------------------------------------------------===//
// Tensor
//===----------------------------------------------------------------------===//

TEST(TensorTest, ShapeAndFill) {
  Tensor T({2, 3}, 1.5f);
  EXPECT_EQ(T.size(), 6u);
  EXPECT_EQ(T.rank(), 2);
  EXPECT_EQ(T.dim(0), 2);
  for (size_t I = 0; I != T.size(); ++I)
    EXPECT_FLOAT_EQ(T[I], 1.5f);
}

TEST(TensorTest, FromVectorAndArgmax) {
  Tensor T = Tensor::fromVector({0.1f, 0.9f, 0.3f});
  EXPECT_EQ(T.rank(), 1);
  EXPECT_EQ(T.argmax(), 1u);
  EXPECT_FLOAT_EQ(T.maxValue(), 0.9f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor T = Tensor::fromVector({1, 2, 3, 4, 5, 6});
  Tensor R = T.reshaped({2, 3});
  EXPECT_EQ(R.rank(), 2);
  EXPECT_FLOAT_EQ(R[5], 6.0f);
}

TEST(TensorTest, AddAndScale) {
  Tensor A = Tensor::fromVector({1, 2});
  Tensor B = Tensor::fromVector({3, 4});
  A.add(B);
  EXPECT_FLOAT_EQ(A[0], 4.0f);
  A.scale(0.5f);
  EXPECT_FLOAT_EQ(A[1], 3.0f);
}

TEST(TensorTest, At3Indexing) {
  Tensor T({2, 3, 4});
  T.at3(1, 2, 3) = 9.0f;
  EXPECT_FLOAT_EQ(T[1 * 12 + 2 * 4 + 3], 9.0f);
}

//===----------------------------------------------------------------------===//
// Finite-difference gradient checking
//===----------------------------------------------------------------------===//

namespace {

/// Sum-of-outputs loss for gradient checking: d(sum)/d(out_i) = 1.
double sumForward(Network &Net, const Tensor &In) {
  Tensor Out = Net.forward(In);
  double S = 0.0;
  for (size_t I = 0; I != Out.size(); ++I)
    S += Out[I];
  return S;
}

/// Checks every parameter gradient of \p Net against finite differences.
void checkParamGradients(Network &Net, const Tensor &In, double Tol) {
  Tensor Out = Net.forward(In);
  Net.zeroGrads();
  Net.forward(In);
  Net.backward(Tensor(Out.shape(), 1.0f));
  const double Eps = 1e-3;
  for (ParamView P : Net.params())
    for (size_t I = 0; I < P.Count; I += std::max<size_t>(1, P.Count / 13)) {
      float Orig = P.Values[I];
      P.Values[I] = Orig + static_cast<float>(Eps);
      double Plus = sumForward(Net, In);
      P.Values[I] = Orig - static_cast<float>(Eps);
      double Minus = sumForward(Net, In);
      P.Values[I] = Orig;
      double Numeric = (Plus - Minus) / (2 * Eps);
      EXPECT_NEAR(P.Grads[I], Numeric, Tol)
          << "parameter " << I << " gradient mismatch";
    }
}

/// Checks input gradients of \p Net against finite differences.
void checkInputGradients(Network &Net, Tensor In, double Tol) {
  Tensor Out = Net.forward(In);
  Net.zeroGrads();
  Net.forward(In);
  Tensor GradIn = Net.backward(Tensor(Out.shape(), 1.0f));
  const double Eps = 1e-3;
  for (size_t I = 0; I != In.size();
       I += std::max<size_t>(1, In.size() / 9)) {
    float Orig = In[I];
    In[I] = Orig + static_cast<float>(Eps);
    double Plus = sumForward(Net, In);
    In[I] = Orig - static_cast<float>(Eps);
    double Minus = sumForward(Net, In);
    In[I] = Orig;
    EXPECT_NEAR(GradIn[I], (Plus - Minus) / (2 * Eps), Tol)
        << "input " << I << " gradient mismatch";
  }
}

} // namespace

TEST(GradCheckTest, DenseLayer) {
  Rng R(1);
  Network Net;
  Net.add(std::make_unique<Dense>(5, 4, R));
  Tensor In = Tensor::fromVector({0.3f, -0.2f, 0.8f, 0.1f, -0.5f});
  checkParamGradients(Net, In, 1e-3);
  checkInputGradients(Net, In, 1e-3);
}

TEST(GradCheckTest, DenseReluStack) {
  Rng R(2);
  Network Net = buildDnn(6, {8, 5}, 3, R);
  Rng RIn(3);
  Tensor In({6});
  for (size_t I = 0; I != In.size(); ++I)
    In[I] = static_cast<float>(RIn.uniform(-1, 1));
  checkParamGradients(Net, In, 2e-3);
  checkInputGradients(Net, In, 2e-3);
}

TEST(GradCheckTest, ConvPoolNetwork) {
  Rng R(4);
  Network Net;
  Net.add(std::make_unique<Conv2D>(1, 3, 3, 1, R));
  Net.add(std::make_unique<ReLU>());
  Net.add(std::make_unique<MaxPool2D>());
  Net.add(std::make_unique<Flatten>());
  Net.add(std::make_unique<Dense>(3 * 3 * 3, 2, R));
  Rng RIn(5);
  Tensor In({1, 8, 8});
  for (size_t I = 0; I != In.size(); ++I)
    In[I] = static_cast<float>(RIn.uniform(-1, 1));
  checkParamGradients(Net, In, 3e-3);
}

TEST(GradCheckTest, DeepMindCnn) {
  Rng R(6);
  Network Net = buildDeepMindCnn(1, 16, {12}, 4, R);
  Rng RIn(7);
  Tensor In({16 * 16});
  for (size_t I = 0; I != In.size(); ++I)
    In[I] = static_cast<float>(RIn.uniform(0, 1));
  checkParamGradients(Net, In, 5e-3);
}

//===----------------------------------------------------------------------===//
// Layer shapes
//===----------------------------------------------------------------------===//

TEST(LayerTest, ConvOutputShape) {
  Rng R(8);
  Conv2D C(2, 5, 3, 1, R);
  Tensor In({2, 10, 8});
  Tensor Out = C.forward(In);
  EXPECT_EQ(Out.dim(0), 5);
  EXPECT_EQ(Out.dim(1), 8);
  EXPECT_EQ(Out.dim(2), 6);
}

TEST(LayerTest, ConvStrideTwo) {
  Rng R(9);
  Conv2D C(1, 1, 3, 2, R);
  Tensor In({1, 9, 9});
  Tensor Out = C.forward(In);
  EXPECT_EQ(Out.dim(1), 4);
}

TEST(LayerTest, MaxPoolSelectsMaximum) {
  MaxPool2D P;
  Tensor In({1, 2, 2});
  In.at3(0, 0, 0) = 1.0f;
  In.at3(0, 0, 1) = 4.0f;
  In.at3(0, 1, 0) = 2.0f;
  In.at3(0, 1, 1) = 3.0f;
  Tensor Out = P.forward(In);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_FLOAT_EQ(Out[0], 4.0f);
  // Gradient routes only to the argmax.
  Tensor G = P.backward(Tensor({1, 1, 1}, 1.0f));
  EXPECT_FLOAT_EQ(G.at3(0, 0, 1), 1.0f);
  EXPECT_FLOAT_EQ(G.at3(0, 0, 0), 0.0f);
}

TEST(LayerTest, ReluZeroesNegatives) {
  ReLU L;
  Tensor Out = L.forward(Tensor::fromVector({-1.0f, 2.0f}));
  EXPECT_FLOAT_EQ(Out[0], 0.0f);
  EXPECT_FLOAT_EQ(Out[1], 2.0f);
}

TEST(LayerTest, ReshapeRoundTrip) {
  Reshape L({2, 2, 2});
  Tensor In = Tensor::fromVector({1, 2, 3, 4, 5, 6, 7, 8});
  Tensor Out = L.forward(In);
  EXPECT_EQ(Out.rank(), 3);
  Tensor Back = L.backward(Out);
  EXPECT_EQ(Back.rank(), 1);
  EXPECT_FLOAT_EQ(Back[7], 8.0f);
}

//===----------------------------------------------------------------------===//
// Losses
//===----------------------------------------------------------------------===//

TEST(LossTest, MseValueAndGradient) {
  Tensor Pred = Tensor::fromVector({1.0f, 2.0f});
  Tensor Target = Tensor::fromVector({0.0f, 2.0f});
  Tensor Grad;
  double L = mseLoss(Pred, Target, Grad);
  EXPECT_NEAR(L, 0.5, 1e-9);
  EXPECT_NEAR(Grad[0], 1.0, 1e-6);
  EXPECT_NEAR(Grad[1], 0.0, 1e-6);
}

TEST(LossTest, HuberQuadraticAndLinearRegimes) {
  Tensor Grad;
  Tensor Pred1 = Tensor::fromVector({0.5f});
  double L1 = huberLoss(Pred1, Tensor::fromVector({0.0f}), Grad);
  EXPECT_NEAR(L1, 0.125, 1e-9);
  Tensor Pred2 = Tensor::fromVector({3.0f});
  double L2 = huberLoss(Pred2, Tensor::fromVector({0.0f}), Grad);
  EXPECT_NEAR(L2, 2.5, 1e-9);
  EXPECT_NEAR(Grad[0], 1.0, 1e-9); // Clipped gradient.
}

TEST(LossTest, HuberAtTouchesOnlyIndex) {
  Tensor Pred = Tensor::fromVector({1.0f, 5.0f, -2.0f});
  Tensor Grad;
  huberLossAt(Pred, 1, 4.5f, Grad);
  EXPECT_FLOAT_EQ(Grad[0], 0.0f);
  EXPECT_FLOAT_EQ(Grad[2], 0.0f);
  EXPECT_NEAR(Grad[1], 0.5, 1e-6);
}

//===----------------------------------------------------------------------===//
// Optimizers
//===----------------------------------------------------------------------===//

namespace {
/// Trains Net to map x -> 2x+1, then returns the mean squared error over
/// an evaluation grid (the per-step loss is too noisy to assert on).
double trainLinear(Optimizer &Opt, Network &Net, int Steps) {
  Rng R(31);
  for (int S = 0; S < Steps; ++S) {
    float X = static_cast<float>(R.uniform(-1, 1));
    Tensor In = Tensor::fromVector({X});
    Tensor Target = Tensor::fromVector({2 * X + 1});
    Tensor Out = Net.forward(In);
    Tensor Grad;
    mseLoss(Out, Target, Grad);
    Net.backward(Grad);
    Opt.step(1.0);
  }
  double Err = 0.0;
  int N = 0;
  for (float X = -1.0f; X <= 1.0f; X += 0.1f, ++N) {
    float Pred = Net.forward(Tensor::fromVector({X}))[0];
    Err += (Pred - (2 * X + 1)) * (Pred - (2 * X + 1));
  }
  return Err / N;
}
} // namespace

TEST(OptimizerTest, SgdConvergesOnLinearFit) {
  Rng R(33);
  Network Net = buildDnn(1, {8}, 1, R);
  Sgd Opt(Net, 0.02, 0.9);
  EXPECT_LT(trainLinear(Opt, Net, 3000), 5e-2);
}

TEST(OptimizerTest, AdamConvergesOnLinearFit) {
  Rng R(34);
  Network Net = buildDnn(1, {8}, 1, R);
  Adam Opt(Net, 0.01);
  EXPECT_LT(trainLinear(Opt, Net, 3000), 5e-2);
}

TEST(OptimizerTest, StepZeroesGradients) {
  Rng R(35);
  Network Net = buildDnn(2, {}, 1, R);
  Adam Opt(Net, 0.01);
  Net.forward(Tensor::fromVector({1.0f, 1.0f}));
  Net.backward(Tensor::fromVector({1.0f}));
  Opt.step(1.0);
  for (ParamView P : Net.params())
    for (size_t I = 0; I != P.Count; ++I)
      EXPECT_FLOAT_EQ(P.Grads[I], 0.0f);
}

//===----------------------------------------------------------------------===//
// Network persistence and copying
//===----------------------------------------------------------------------===//

TEST(NetworkTest, SaveLoadRoundTrip) {
  Rng R(41);
  Network A = buildDnn(3, {5}, 2, R);
  Network B = buildDnn(3, {5}, 2, R); // Different init.
  std::string Path = "/tmp/au_test_net.bin";
  ASSERT_TRUE(A.saveParams(Path));
  ASSERT_TRUE(B.loadParams(Path));
  Tensor In = Tensor::fromVector({0.1f, 0.2f, 0.3f});
  Tensor OA = A.forward(In), OB = B.forward(In);
  for (size_t I = 0; I != OA.size(); ++I)
    EXPECT_FLOAT_EQ(OA[I], OB[I]);
  std::remove(Path.c_str());
}

TEST(NetworkTest, LoadRejectsWrongArchitecture) {
  Rng R(42);
  Network A = buildDnn(3, {5}, 2, R);
  Network B = buildDnn(3, {6}, 2, R);
  std::string Path = "/tmp/au_test_net2.bin";
  ASSERT_TRUE(A.saveParams(Path));
  EXPECT_FALSE(B.loadParams(Path));
  std::remove(Path.c_str());
}

TEST(NetworkTest, CopyParamsMakesOutputsEqual) {
  Rng R(43);
  Network A = buildDnn(4, {6}, 3, R);
  Network B = buildDnn(4, {6}, 3, R);
  B.copyParamsFrom(A);
  Tensor In = Tensor::fromVector({0.5f, -0.5f, 0.25f, 1.0f});
  Tensor OA = A.forward(In), OB = B.forward(In);
  for (size_t I = 0; I != OA.size(); ++I)
    EXPECT_FLOAT_EQ(OA[I], OB[I]);
}

TEST(NetworkTest, SizeAccounting) {
  Rng R(44);
  Network Net = buildDnn(10, {4}, 2, R);
  // (10*4 + 4) + (4*2 + 2) = 54 params.
  EXPECT_EQ(Net.numParams(), 54u);
  EXPECT_EQ(Net.sizeInBytes(), 4 * 8 + 54 * sizeof(float));
}

//===----------------------------------------------------------------------===//
// Supervised trainer
//===----------------------------------------------------------------------===//

TEST(SupervisedTest, LearnsAffineMap) {
  Rng R(51);
  SupervisedTrainer Trainer(buildDnn(2, {24}, 1, R), 5e-3);
  Rng Data(52);
  for (int I = 0; I < 200; ++I) {
    float A = static_cast<float>(Data.uniform(-2, 2));
    float B = static_cast<float>(Data.uniform(-2, 2));
    Trainer.addSample({A, B}, {3 * A - B + 5});
  }
  Rng TrainR(53);
  Trainer.train(200, 16, TrainR);
  EXPECT_LT(Trainer.meanAbsError(), 0.25);
  std::vector<float> P = Trainer.predict({1.0f, 1.0f});
  EXPECT_NEAR(P[0], 7.0f, 0.8f);
}

TEST(SupervisedTest, NormalizationHandlesLargeScales) {
  Rng R(54);
  SupervisedTrainer Trainer(buildDnn(1, {8}, 1, R), 3e-3);
  Rng Data(55);
  for (int I = 0; I < 100; ++I) {
    float X = static_cast<float>(Data.uniform(1000, 2000));
    Trainer.addSample({X}, {X / 100});
  }
  Rng TrainR(56);
  Trainer.train(80, 16, TrainR);
  std::vector<float> P = Trainer.predict({1500.0f});
  EXPECT_NEAR(P[0], 15.0f, 1.0f);
}

TEST(SupervisedTest, EmptyDatasetTrainIsNoop) {
  Rng R(57);
  SupervisedTrainer Trainer(buildDnn(1, {}, 1, R));
  Rng TrainR(58);
  EXPECT_DOUBLE_EQ(Trainer.train(5, 4, TrainR), 0.0);
}

TEST(SupervisedTest, NormalizationExportImport) {
  Rng R(59);
  SupervisedTrainer A(buildDnn(1, {4}, 1, R), 1e-3);
  A.addSample({2.0f}, {4.0f});
  A.addSample({4.0f}, {8.0f});
  std::vector<float> XM, XS, YM, YS;
  A.getNormalization(XM, XS, YM, YS);
  EXPECT_FLOAT_EQ(XM[0], 3.0f);
  Rng R2(60);
  SupervisedTrainer B(buildDnn(1, {4}, 1, R2), 1e-3);
  B.setNormalization(XM, XS, YM, YS);
  B.network().copyParamsFrom(A.network());
  EXPECT_FLOAT_EQ(A.predict({2.0f})[0], B.predict({2.0f})[0]);
}

//===----------------------------------------------------------------------===//
// Q-learning
//===----------------------------------------------------------------------===//

TEST(QLearnerTest, SolvesTwoArmedBandit) {
  // One state, two actions; action 1 always pays more.
  QConfig Cfg;
  Cfg.EpsilonDecaySteps = 300;
  Cfg.WarmupSteps = 32;
  Cfg.TargetSyncInterval = 50;
  Rng Seed(61);
  QLearner Q(
      [] {
        Rng R(62);
        return buildDnn(1, {8}, 2, R);
      },
      2, Cfg, 63);
  std::vector<float> S = {1.0f};
  for (int I = 0; I < 800; ++I) {
    int A = Q.selectAction(S, true);
    float Reward = A == 1 ? 1.0f : -1.0f;
    Q.observe(S, A, Reward, S, false);
  }
  EXPECT_EQ(Q.greedyAction(S), 1);
  std::vector<float> Qs = Q.qValues(S);
  EXPECT_GT(Qs[1], Qs[0]);
}

TEST(QLearnerTest, LearnsStateDependentPolicy) {
  // Two states: in state A action 0 pays, in state B action 1 pays.
  QConfig Cfg;
  Cfg.EpsilonDecaySteps = 400;
  Cfg.WarmupSteps = 32;
  Cfg.Gamma = 0.0; // Pure contextual bandit.
  QLearner Q(
      [] {
        Rng R(64);
        return buildDnn(1, {12}, 2, R);
      },
      2, Cfg, 65);
  Rng R(66);
  for (int I = 0; I < 1500; ++I) {
    bool InA = R.chance(0.5);
    std::vector<float> S = {InA ? 0.0f : 1.0f};
    int A = Q.selectAction(S, true);
    float Reward = (InA ? A == 0 : A == 1) ? 1.0f : -1.0f;
    Q.observe(S, A, Reward, S, true);
  }
  EXPECT_EQ(Q.greedyAction({0.0f}), 0);
  EXPECT_EQ(Q.greedyAction({1.0f}), 1);
}

TEST(QLearnerTest, EpsilonDecaysToFloor) {
  QConfig Cfg;
  Cfg.EpsilonStart = 1.0;
  Cfg.EpsilonEnd = 0.1;
  Cfg.EpsilonDecaySteps = 100;
  Cfg.WarmupSteps = 1000000; // Never train; just decay.
  QLearner Q(
      [] {
        Rng R(67);
        return buildDnn(1, {4}, 2, R);
      },
      2, Cfg, 68);
  std::vector<float> S = {0.0f};
  for (int I = 0; I < 200; ++I)
    Q.observe(S, 0, 0.0f, S, false);
  EXPECT_NEAR(Q.epsilon(), 0.1, 1e-9);
}

TEST(QLearnerTest, ReplayCapacityBounded) {
  QConfig Cfg;
  Cfg.ReplayCapacity = 50;
  Cfg.WarmupSteps = 1000000;
  QLearner Q(
      [] {
        Rng R(69);
        return buildDnn(1, {4}, 2, R);
      },
      2, Cfg, 70);
  std::vector<float> S = {0.0f};
  for (int I = 0; I < 200; ++I)
    Q.observe(S, 0, 0.0f, S, false);
  EXPECT_EQ(Q.replaySize(), 50u);
}
