//===- tests/RobustnessTest.cpp - Failure-injection and edge cases -------===//
//
// Robustness coverage: corrupt/truncated model files, degenerate
// detector/phylogeny/DTW inputs, extreme parameter values, and physics
// edge cases of the game environments.
//
//===----------------------------------------------------------------------===//

#include "apps/arkanoid/Arkanoid.h"
#include "apps/breakout/Breakout.h"
#include "apps/canny/Canny.h"
#include "apps/phylip/Phylip.h"
#include "apps/sphinx/Sphinx.h"
#include "apps/torcs/Torcs.h"
#include "core/Model.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace au;
using namespace au::apps;

//===----------------------------------------------------------------------===//
// Model persistence failure injection
//===----------------------------------------------------------------------===//

namespace {
ModelConfig cfg(const char *Name, Algorithm A = Algorithm::AdamOpt) {
  ModelConfig C;
  C.Name = Name;
  C.Algo = A;
  C.HiddenLayers = {6};
  C.Seed = 11;
  return C;
}

/// Writes a trained SL model and returns its path.
std::string writeTrainedModel() {
  SlModel M(cfg("m"));
  Rng R(12);
  for (int I = 0; I < 30; ++I) {
    float X = static_cast<float>(R.uniform(0, 1));
    M.addSample({X}, {X}, {{"Y", 1}});
  }
  M.train(5, 8);
  std::string Path = "/tmp/au_robust.aumodel";
  EXPECT_TRUE(M.save(Path));
  return Path;
}
} // namespace

TEST(PersistenceRobustness, TruncatedFileRejected) {
  std::string Path = writeTrainedModel();
  // Truncate to a prefix that still contains a valid magic.
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_TRUE(F);
  char Buf[64];
  size_t N = std::fread(Buf, 1, sizeof(Buf), F);
  std::fclose(F);
  F = std::fopen(Path.c_str(), "wb");
  std::fwrite(Buf, 1, N, F);
  std::fclose(F);

  SlModel M(cfg("m"));
  EXPECT_FALSE(M.load(Path));
  std::remove(Path.c_str());
}

TEST(PersistenceRobustness, WrongKindRejected) {
  std::string Path = writeTrainedModel(); // Supervised on disk.
  RlModel M(cfg("m", Algorithm::QLearn));
  EXPECT_FALSE(M.load(Path));
  std::remove(Path.c_str());
}

TEST(PersistenceRobustness, EmptyFileRejected) {
  std::string Path = "/tmp/au_robust_empty.aumodel";
  std::fclose(std::fopen(Path.c_str(), "wb"));
  SlModel M(cfg("m"));
  EXPECT_FALSE(M.load(Path));
  std::remove(Path.c_str());
}

TEST(PersistenceRobustness, MissingFileRejected) {
  SlModel M(cfg("m"));
  EXPECT_FALSE(M.load("/tmp/definitely_absent.aumodel"));
}

TEST(PersistenceRobustness, UnbuiltModelRefusesToSave) {
  SlModel M(cfg("m"));
  EXPECT_FALSE(M.save("/tmp/au_unbuilt.aumodel"));
}

//===----------------------------------------------------------------------===//
// Detector edge cases
//===----------------------------------------------------------------------===//

TEST(CannyRobustness, ExtremeParametersStaySane) {
  CannyScene S = makeCannyScene(77);
  // Degenerate thresholds must not crash or mark everything.
  Image AllLoose = cannyDetect(S.Input, {0.6, 0.01, 0.01});
  Image AllStrict = cannyDetect(S.Input, {3.0, 0.99, 0.999});
  int Loose = 0, Strict = 0;
  for (float P : AllLoose.data())
    Loose += P > 0.5f;
  for (float P : AllStrict.data())
    Strict += P > 0.5f;
  EXPECT_GE(Loose, Strict);
  EXPECT_LT(Loose, static_cast<int>(AllLoose.size())); // Not everything.
}

TEST(CannyRobustness, TinyImageHandled) {
  Image Tiny(9, 9, 0.5f);
  Tiny.at(4, 4) = 1.0f;
  Image Edges = cannyDetect(Tiny, CannyParams());
  EXPECT_EQ(Edges.width(), 9);
}

//===----------------------------------------------------------------------===//
// Phylogeny edge cases
//===----------------------------------------------------------------------===//

TEST(PhylipRobustness, SaturatedDistancesStillBuildATree) {
  PhylipDataset D = makePhylipDataset(88);
  // Alpha at the extreme low end inflates distances toward saturation.
  std::vector<int> Tree =
      neighborJoin(phylipDistances(D, {0.25, 1.0, 0.9}), 12);
  // Must still be a well-formed tree over 12 leaves.
  int Roots = 0;
  for (int Node = 0; Node < static_cast<int>(Tree.size()); ++Node)
    Roots += Tree[Node] < 0;
  EXPECT_EQ(Roots, 1);
  EXPECT_LE(robinsonFoulds(Tree, D.TrueParent, 12), 1.0);
}

TEST(PhylipRobustness, AllGapColumnsExcludedGracefully) {
  PhylipDataset D = makePhylipDataset(89);
  // Force every column over the gap threshold: distances fall back to the
  // saturated value but nothing crashes.
  PhylipParams P;
  P.GapThresh = -1.0; // Every column excluded.
  std::vector<double> Dist = phylipDistances(D, P);
  for (int A = 0; A < 12; ++A)
    for (int B = 0; B < 12; ++B)
      if (A != B)
        EXPECT_GT(Dist[A * 12 + B], 0.0);
}

//===----------------------------------------------------------------------===//
// DTW edge cases
//===----------------------------------------------------------------------===//

TEST(SphinxRobustness, ZeroBeamStillReturnsAWord) {
  SphinxUtterance U = makeSphinxUtterance(91);
  SphinxResult R = sphinxRecognize(U, {1e-6, 0.0});
  EXPECT_GE(R.Word, 0);
  EXPECT_LT(R.Word, SphinxVocab);
}

TEST(SphinxRobustness, HugeFloorTrimsToMinimumLength) {
  SphinxUtterance U = makeSphinxUtterance(92);
  // A floor far above any signal trims to the 4-frame minimum, not to
  // nothing.
  SphinxResult R = sphinxRecognize(U, {6.0, 100.0});
  EXPECT_GE(R.Word, 0);
}

//===----------------------------------------------------------------------===//
// Game-physics edge cases
//===----------------------------------------------------------------------===//

TEST(ArkanoidPhysics, BallReflectsOffSideWalls) {
  ArkanoidEnv E;
  E.reset(0xE00);
  // Drive until the ball has touched both side regions at least once; the
  // x coordinate must always stay inside the world.
  Rng R(13);
  for (int I = 0; I < 500 && !E.terminal(); ++I) {
    E.step(E.heuristicAction(R));
    float Bx = featureValue(E.features(), "ballX");
    EXPECT_GE(Bx, 0.0f);
    EXPECT_LE(Bx, 1.0f);
  }
}

TEST(BreakoutPhysics, SpeedScaleIsMonotoneAndBounded) {
  BreakoutEnv E;
  E.reset(0xF00);
  Rng R(14);
  float Prev = featureValue(E.features(), "speedScale");
  for (int I = 0; I < 1500 && !E.terminal(); ++I) {
    E.step(E.heuristicAction(R));
    float Cur = featureValue(E.features(), "speedScale");
    EXPECT_GE(Cur, Prev);
    EXPECT_LE(Cur, 1.6f);
    Prev = Cur;
  }
}

TEST(TorcsPhysics, HeadingIsClamped) {
  TorcsEnv E;
  E.reset(0x1100);
  for (int I = 0; I < 40 && !E.terminal(); ++I) {
    E.step(0); // Hard left.
    EXPECT_LE(std::abs(featureValue(E.features(), "angle")), 0.9f);
  }
}

TEST(TorcsPhysics, ProgressIsMonotone) {
  TorcsEnv E;
  E.reset(0x1200);
  Rng R(15);
  double Prev = 0.0;
  for (int I = 0; I < 200 && !E.terminal(); ++I) {
    E.step(E.heuristicAction(R));
    EXPECT_GE(E.progress(), Prev);
    Prev = E.progress();
  }
}
