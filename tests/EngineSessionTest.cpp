//===- tests/EngineSessionTest.cpp - Engine/Session architecture ---------===//
//
// The Engine/Session split of DESIGN.md §10: store-divergence detection,
// idempotent actor-stats merging, replica/live prediction equivalence, the
// cross-session inference batcher, and a multi-tenant stress test with
// concurrent TS readers under a live TR trainer. The stress test doubles as
// a race detector under the TSan CI job.
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "core/Runtime.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

using namespace au;

//===----------------------------------------------------------------------===//
// Store divergence (a real error path, not an assert)
//===----------------------------------------------------------------------===//

TEST(EngineSession, DirectStoreInternThrowsDivergenceError) {
  Engine Eng;
  Session S(Eng, Mode::TR);
  S.intern("a");
  // Bypassing the session de-synchronizes the store's name table from the
  // engine's master table: positions no longer line up, so handles would
  // resolve to the wrong slots. The next intern must detect it — in
  // release builds too.
  S.db().intern("rogue");
  EXPECT_THROW(S.intern("b"), StoreDivergenceError);
}

TEST(EngineSession, FacadeDetectsDivergenceInMainStore) {
  Runtime RT(Mode::TR);
  RT.intern("a");
  RT.db().intern("rogue");
  EXPECT_THROW(RT.intern("b"), StoreDivergenceError);
}

TEST(EngineSession, FacadeDetectsDivergenceInActorStore) {
  Runtime RT(Mode::TR);
  RT.intern("a");
  RT.setActorContexts(2);
  RT.actorDb(1).intern("rogue");
  // intern() replays the new name into every actor store and trips over
  // the diverged one.
  EXPECT_THROW(RT.intern("b"), StoreDivergenceError);
}

TEST(EngineSession, SessionsMirrorNamesInternedAnywhere) {
  Engine Eng;
  Session A(Eng, Mode::TR);
  NameId X = A.intern("x");
  // A session created later starts with the full master table.
  Session B(Eng, Mode::TR);
  EXPECT_EQ(B.intern("x"), X);
  // A name interned through B is visible to A under the same id.
  NameId Y = B.intern("y");
  EXPECT_EQ(A.intern("y"), Y);
  EXPECT_EQ(Eng.nameOf(Y), "y");
}

//===----------------------------------------------------------------------===//
// mergeActorStats idempotence (regression: it used to double-count)
//===----------------------------------------------------------------------===//

TEST(EngineSession, MergeActorStatsIsIdempotent) {
  Runtime RT(Mode::TR);
  NameId V = RT.intern("v");
  RT.setActorContexts(2);

  RT.extract(/*Actor=*/0, V, 1.0f);
  RT.extract(/*Actor=*/1, V, 2.0f);
  RT.extract(/*Actor=*/1, V, 3.0f);

  RT.mergeActorStats();
  size_t Extracts = RT.stats().NumExtract;
  size_t Floats = RT.stats().FloatsExtracted;
  EXPECT_EQ(Extracts, 3u);
  EXPECT_EQ(Floats, 3u);

  // A second merge with no new actor work must not change anything.
  RT.mergeActorStats();
  EXPECT_EQ(RT.stats().NumExtract, Extracts);
  EXPECT_EQ(RT.stats().FloatsExtracted, Floats);

  // Interleaved work then another merge folds exactly the delta.
  RT.extract(/*Actor=*/0, V, 4.0f);
  RT.mergeActorStats();
  RT.mergeActorStats();
  EXPECT_EQ(RT.stats().NumExtract, 4u);
  EXPECT_EQ(RT.stats().FloatsExtracted, 4u);
}

//===----------------------------------------------------------------------===//
// Parameter-snapshot publication and serving replicas
//===----------------------------------------------------------------------===//

namespace {
constexpr int FeatDim = 4;
constexpr int OutDim = 2;

/// Trains a small supervised DNN in \p Trainer (publishing a snapshot) and
/// returns its handle.
NameId trainSmallModel(Engine &Eng, Session &Trainer, const char *Name) {
  ModelConfig Cfg;
  Cfg.Name = Name;
  Cfg.HiddenLayers = {8, 8};
  Cfg.Seed = 99;
  Trainer.config(Cfg);
  NameId ModelId = Trainer.intern(Name);
  NameId Feat = Trainer.intern("feat");
  WriteBackHandle Out{Trainer.intern("out"), OutDim};
  for (int I = 0; I < 32; ++I) {
    float X[FeatDim];
    for (int J = 0; J < FeatDim; ++J)
      X[J] = 0.1f * static_cast<float>(I + J);
    Trainer.extract(Feat, FeatDim, X);
    Trainer.nn(ModelId, Feat, {Out});
    float Label[OutDim] = {X[0] + X[1], X[2] - X[3]};
    Trainer.writeBack(Out.Name, OutDim, Label);
  }
  Trainer.trainSupervised(Name, /*Epochs=*/4, /*BatchSize=*/8);
  EXPECT_GT(Eng.modelVersion(ModelId), 0u);
  return ModelId;
}

void probeRow(int K, float *X) {
  for (int J = 0; J < FeatDim; ++J)
    X[J] = 0.3f + 0.05f * static_cast<float>(K) + 0.01f * static_cast<float>(J);
}
} // namespace

TEST(EngineSession, SharedInferenceMatchesLiveModelBitwise) {
  Engine Eng;
  Session Trainer(Eng, Mode::TR);
  NameId ModelId = trainSmallModel(Eng, Trainer, "M");

  Session Live(Eng, Mode::TS);
  Session Shared(Eng, Mode::TS);
  Shared.setSharedInference(true);

  NameId Feat = Live.intern("feat");
  WriteBackHandle Out{Live.intern("out"), OutDim};

  float X[FeatDim];
  probeRow(0, X);
  float FromLive[OutDim], FromShared[OutDim];

  Live.extract(Feat, FeatDim, X);
  Live.nn(ModelId, Feat, {Out});
  Live.writeBack(Out.Name, OutDim, FromLive);

  Shared.extract(Feat, FeatDim, X);
  Shared.nn(ModelId, Feat, {Out});
  Shared.writeBack(Out.Name, OutDim, FromShared);

  // The replica runs the same predictRowsInto code path over the same
  // parameters, so the results are bitwise identical.
  EXPECT_EQ(Shared.servingVersion(ModelId), Eng.modelVersion(ModelId));
  for (int J = 0; J < OutDim; ++J)
    EXPECT_EQ(FromLive[J], FromShared[J]);
}

TEST(EngineSession, NnBatchSessionsMatchesPerSessionCalls) {
  Engine Eng;
  Session Trainer(Eng, Mode::TR);
  NameId ModelId = trainSmallModel(Eng, Trainer, "M");

  constexpr int K = 4;
  NameId Feat = Trainer.intern("feat");
  WriteBackHandle Out{Trainer.intern("out"), OutDim};
  std::vector<WriteBackHandle> Outs{Out};

  // Batched: K sessions, one fused forwardBatch.
  std::vector<std::unique_ptr<Session>> Batch;
  std::vector<Session *> Ptrs;
  std::vector<NameId> ExtIds(K, Feat);
  for (int S = 0; S < K; ++S) {
    Batch.push_back(std::make_unique<Session>(Eng, Mode::TS));
    Ptrs.push_back(Batch.back().get());
    float X[FeatDim];
    probeRow(S, X);
    Batch.back()->extract(Feat, FeatDim, X);
  }
  Eng.nnBatchSessions(ModelId, Ptrs.data(), ExtIds.data(), K, Outs);

  // Per-session: the same probe rows through the single-call path.
  for (int S = 0; S < K; ++S) {
    float FromBatch[OutDim], FromSingle[OutDim];
    Batch[static_cast<size_t>(S)]->writeBack(Out.Name, OutDim, FromBatch);

    Session Single(Eng, Mode::TS);
    float X[FeatDim];
    probeRow(S, X);
    Single.extract(Feat, FeatDim, X);
    Single.nn(ModelId, Feat, {Out});
    Single.writeBack(Out.Name, OutDim, FromSingle);

    for (int J = 0; J < OutDim; ++J)
      EXPECT_EQ(FromSingle[J], FromBatch[J]) << "session " << S;
    // Each session counted its own au_NN.
    EXPECT_EQ(Batch[static_cast<size_t>(S)]->stats().NumNn, 1u);
  }
}

//===----------------------------------------------------------------------===//
// Multi-tenant stress: 8 concurrent TS readers under a live TR trainer
//===----------------------------------------------------------------------===//

TEST(EngineSessionStress, ConcurrentReadersUnderLiveTrainer) {
  constexpr int NumReaders = 8;
  constexpr int NumVersions = 12;
  constexpr int ReadsPerReader = 200;

  Engine Eng;
  Session Trainer(Eng, Mode::TR);
  NameId ModelId = trainSmallModel(Eng, Trainer, "M"); // publishes v1

  NameId Feat = Trainer.intern("feat");
  NameId OutName = Trainer.intern("out");

  // Expected[v][k]: the bitwise-exact prediction version v must produce
  // for reader k's probe row. Written by the trainer thread right after
  // publishing v; MaxVerified's release-store makes the slot visible.
  // Readers record their observations and the main thread checks them
  // after the join, so the readers themselves never race on Expected.
  std::vector<std::vector<float>> Expected(NumVersions + 1);
  std::atomic<uint64_t> MaxVerified{0};

  auto recordExpected = [&](uint64_t V) {
    ASSERT_LE(V, static_cast<uint64_t>(NumVersions));
    auto *Sl = static_cast<SlModel *>(Eng.getModel(ModelId));
    ASSERT_NE(Sl, nullptr);
    std::vector<float> Rows(static_cast<size_t>(NumReaders) * FeatDim);
    for (int KR = 0; KR < NumReaders; ++KR)
      probeRow(KR, Rows.data() + static_cast<size_t>(KR) * FeatDim);
    // The trainer owns the live model; published snapshots carry exactly
    // its parameters, and replica serving is bitwise-equal to this call.
    Sl->predictRows(Rows.data(), NumReaders, Expected[V]);
    MaxVerified.store(V, std::memory_order_release);
  };
  recordExpected(Eng.modelVersion(ModelId));

  // Reader sessions are created up front (session construction is cheap
  // but the test pins each thread to exactly one session for its
  // lifetime — the ISSUE's serving scenario).
  std::vector<std::unique_ptr<Session>> Readers;
  for (int KR = 0; KR < NumReaders; ++KR) {
    Readers.push_back(std::make_unique<Session>(Eng, Mode::TS));
    Readers.back()->setSharedInference(true);
  }

  struct Observation {
    uint64_t Version;
    float Pred[OutDim];
  };
  std::vector<std::vector<Observation>> Seen(NumReaders);
  std::atomic<bool> Stop{false};

  std::vector<std::thread> Threads;
  for (int KR = 0; KR < NumReaders; ++KR) {
    Threads.emplace_back([&, KR] {
      Session &S = *Readers[static_cast<size_t>(KR)];
      WriteBackHandle Out{OutName, OutDim};
      float X[FeatDim];
      probeRow(KR, X);
      uint64_t PrevV = 0;
      auto &Obs = Seen[static_cast<size_t>(KR)];
      Obs.reserve(ReadsPerReader);
      for (int I = 0; I < ReadsPerReader; ++I) {
        S.extract(Feat, FeatDim, X);
        S.nn(ModelId, Feat, {Out});
        Observation O;
        O.Version = S.servingVersion(ModelId);
        S.writeBack(Out.Name, OutDim, O.Pred);
        // Versions move forward only.
        ASSERT_GE(O.Version, PrevV);
        PrevV = O.Version;
        Obs.push_back(O);
      }
    });
  }

  // The trainer keeps updating the same model while the readers serve.
  std::thread TrainerThread([&] {
    for (int V = 2; V <= NumVersions && !Stop.load(); ++V) {
      Trainer.trainSupervised("M", /*Epochs=*/1, /*BatchSize=*/8);
      recordExpected(Eng.modelVersion(ModelId));
    }
  });

  for (auto &T : Threads)
    T.join();
  Stop.store(true);
  TrainerThread.join();

  // Every observation must be snapshot-consistent: the prediction is
  // bitwise-exactly what its version's parameters produce — a torn or
  // mixed-parameter read cannot satisfy this.
  uint64_t Final = MaxVerified.load(std::memory_order_acquire);
  EXPECT_GE(Final, 2u) << "trainer should have published while serving";
  for (int KR = 0; KR < NumReaders; ++KR) {
    ASSERT_FALSE(Seen[static_cast<size_t>(KR)].empty());
    for (const auto &O : Seen[static_cast<size_t>(KR)]) {
      ASSERT_GE(O.Version, 1u);
      ASSERT_LE(O.Version, Final);
      const std::vector<float> &Exp = Expected[O.Version];
      ASSERT_EQ(Exp.size(), static_cast<size_t>(NumReaders) * OutDim);
      for (int J = 0; J < OutDim; ++J)
        ASSERT_EQ(O.Pred[J],
                  Exp[static_cast<size_t>(KR) * OutDim + static_cast<size_t>(J)])
            << "reader " << KR << " version " << O.Version;
    }
  }

  // The pi stores stayed isolated: each session consumed exactly its own
  // extractions (one row per call) and counted its own primitives.
  for (int KR = 0; KR < NumReaders; ++KR) {
    const RuntimeStats &St = Readers[static_cast<size_t>(KR)]->stats();
    EXPECT_EQ(St.NumExtract, static_cast<size_t>(ReadsPerReader));
    EXPECT_EQ(St.FloatsExtracted,
              static_cast<size_t>(ReadsPerReader) * FeatDim);
    EXPECT_EQ(St.NumNn, static_cast<size_t>(ReadsPerReader));
    EXPECT_EQ(St.NumWriteBack, static_cast<size_t>(ReadsPerReader));
  }
}
