//===- tests/NnKernelsTest.cpp - Batched compute engine tests ------------===//
//
// Differential tests pinning the GEMM/im2col batched engine to the scalar
// reference backend (AU_NN_BACKEND=naive), plus determinism-under-threading
// and ThreadPool unit tests.
//
//===----------------------------------------------------------------------===//

#include "nn/Gemm.h"
#include "nn/Layers.h"
#include "nn/Loss.h"
#include "nn/Network.h"
#include "nn/Optimizer.h"
#include "nn/Supervised.h"
#include "nn/Workspace.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <new>
#include <numeric>

//===----------------------------------------------------------------------===//
// Global allocation counter: every heap allocation in this binary ticks it,
// so a test can prove a region performs zero allocations (the workspace
// arena's steady-state contract). Replacing the global operators is the only
// way to observe allocations made inside the library.
//===----------------------------------------------------------------------===//

namespace {
std::atomic<long> GHeapAllocs{0};
} // namespace

void *operator new(std::size_t Sz) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Sz ? Sz : 1))
    return P;
  throw std::bad_alloc();
}
void *operator new[](std::size_t Sz) {
  GHeapAllocs.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(Sz ? Sz : 1))
    return P;
  throw std::bad_alloc();
}
void operator delete(void *P) noexcept { std::free(P); }
void operator delete(void *P, std::size_t) noexcept { std::free(P); }
void operator delete[](void *P) noexcept { std::free(P); }
void operator delete[](void *P, std::size_t) noexcept { std::free(P); }

using namespace au;
using namespace au::nn;

namespace {

/// Asserts |A - B| <= 1e-4 * max(1, |B|) elementwise.
void expectClose(const std::vector<float> &A, const std::vector<float> &B,
                 const char *What) {
  ASSERT_EQ(A.size(), B.size()) << What;
  for (size_t I = 0; I != A.size(); ++I) {
    double Tol = 1e-4 * std::max(1.0, std::abs(static_cast<double>(B[I])));
    ASSERT_NEAR(A[I], B[I], Tol) << What << " at index " << I;
  }
}

Tensor randomTensor(std::vector<int> Shape, Rng &Rand) {
  Tensor T(std::move(Shape));
  for (float &V : T.values())
    V = static_cast<float>(Rand.uniform(-1.5, 1.5));
  return T;
}

/// Collects a layer's parameter gradients as one flat vector.
std::vector<float> gradSnapshot(Layer &L) {
  std::vector<float> Out;
  for (ParamView P : L.params())
    Out.insert(Out.end(), P.Grads, P.Grads + P.Count);
  return Out;
}

/// Restores the GEMM backend and a default pool after each test.
class NnKernelsTest : public ::testing::Test {
protected:
  void TearDown() override {
    setBackend(defaultBackend());
    ThreadPool::setGlobalThreads(1);
  }
};

} // namespace

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST_F(NnKernelsTest, ParallelForCoversRangeExactlyOnce) {
  for (int Threads : {1, 2, 8}) {
    ThreadPool Pool(Threads);
    std::vector<std::atomic<int>> Hits(1000);
    for (auto &H : Hits)
      H = 0;
    Pool.parallelFor(0, Hits.size(), 7, [&](size_t B, size_t E) {
      for (size_t I = B; I != E; ++I)
        ++Hits[I];
    });
    for (size_t I = 0; I != Hits.size(); ++I)
      ASSERT_EQ(Hits[I], 1) << "threads=" << Threads << " index=" << I;
  }
}

TEST_F(NnKernelsTest, AsyncTaskRunsAndWaitCompletes) {
  for (int Threads : {1, 4}) {
    ThreadPool Pool(Threads);
    std::atomic<int> Ran{0};
    ThreadPool::TaskHandle H = Pool.async([&] { Ran.fetch_add(1); });
    H.wait();
    EXPECT_EQ(Ran.load(), 1) << "threads=" << Threads;
    // With no workers (Threads == 1) the task runs inline and the handle
    // is already invalid; either way wait() is idempotent.
    H.wait();
    EXPECT_FALSE(H.valid());
  }
}

TEST_F(NnKernelsTest, AsyncTaskMayIssueParallelFor) {
  // The SL prefetch producer normalizes batches with parallelFor from
  // inside an async task; the nested region must run inline rather than
  // deadlock the pool.
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(256);
  for (auto &H : Hits)
    H = 0;
  ThreadPool::TaskHandle T = Pool.async([&] {
    Pool.parallelFor(0, Hits.size(), 16, [&](size_t B, size_t E) {
      for (size_t I = B; I != E; ++I)
        ++Hits[I];
    });
  });
  T.wait();
  for (size_t I = 0; I != Hits.size(); ++I)
    ASSERT_EQ(Hits[I], 1) << "index=" << I;
}

TEST_F(NnKernelsTest, ShardedSumMatchesSerialAtAnyThreadCount) {
  std::vector<float> Items(1237);
  Rng Rand(7);
  for (float &V : Items)
    V = static_cast<float>(Rand.uniform(-1, 1));
  std::vector<float> Results;
  for (int Threads : {1, 2, 8}) {
    ThreadPool::setGlobalThreads(Threads);
    float Out = 1.0f; // parallelShardedSum accumulates on top.
    parallelShardedSum(Items.size(), 10, 1,
                       [&](size_t B, size_t E, float *Acc) {
      for (size_t I = B; I != E; ++I)
        Acc[0] += Items[I];
    }, &Out);
    Results.push_back(Out);
  }
  // Bitwise identical across thread counts (fixed shard tree).
  EXPECT_EQ(Results[0], Results[1]);
  EXPECT_EQ(Results[0], Results[2]);
  double Serial = 1.0 + std::accumulate(Items.begin(), Items.end(), 0.0);
  EXPECT_NEAR(Results[0], Serial, 1e-3);
}

//===----------------------------------------------------------------------===//
// SGEMM
//===----------------------------------------------------------------------===//

TEST_F(NnKernelsTest, SgemmMatchesReferenceAllTransposeCombos) {
  const int M = 5, N = 7, K = 11;
  Rng Rand(42);
  ThreadPool::setGlobalThreads(4);
  for (bool TA : {false, true})
    for (bool TB : {false, true}) {
      // Stored shapes: A is MxK (or KxM when transposed), B is KxN / NxK.
      Tensor A = randomTensor(TA ? std::vector<int>{K, M}
                                 : std::vector<int>{M, K}, Rand);
      Tensor B = randomTensor(TB ? std::vector<int>{N, K}
                                 : std::vector<int>{K, N}, Rand);
      Tensor C = randomTensor({M, N}, Rand);
      Tensor Ref = C;
      const float Alpha = 0.75f, Beta = 0.5f;
      for (int I = 0; I < M; ++I)
        for (int J = 0; J < N; ++J) {
          double Acc = 0.0;
          for (int Kk = 0; Kk < K; ++Kk) {
            float AV = TA ? A[Kk * M + I] : A[I * K + Kk];
            float BV = TB ? B[J * K + Kk] : B[Kk * N + J];
            Acc += static_cast<double>(AV) * BV;
          }
          Ref[I * N + J] = static_cast<float>(Alpha * Acc + Beta *
                                              Ref[I * N + J]);
        }
      sgemm(TA, TB, M, N, K, Alpha, A.data(), TA ? M : K, B.data(),
            TB ? K : N, Beta, C.data(), N);
      expectClose(C.values(), Ref.values(), "sgemm");
    }
}

//===----------------------------------------------------------------------===//
// Dense: batched GEMM path vs scalar reference
//===----------------------------------------------------------------------===//

TEST_F(NnKernelsTest, DenseBatchMatchesNaive) {
  ThreadPool::setGlobalThreads(4);
  for (int BatchSize : {1, 17}) {
    Rng R1(3), R2(3);
    Dense Fast(7, 5, R1), Ref(7, 5, R2);
    Rng Rand(99);
    Tensor In = randomTensor({BatchSize, 7}, Rand);
    Tensor GradOut = randomTensor({BatchSize, 5}, Rand);

    Tensor FastOut = Fast.forwardBatch(In);
    Tensor FastGradIn = Fast.backwardBatch(GradOut);

    Tensor RefOut({BatchSize, 5}), RefGradIn({BatchSize, 7});
    for (int B = 0; B < BatchSize; ++B) {
      Tensor X({7});
      std::copy(In.sampleData(B), In.sampleData(B) + 7, X.data());
      Tensor Y = Ref.forward(X);
      std::copy(Y.data(), Y.data() + 5, RefOut.sampleData(B));
      Tensor G({5});
      std::copy(GradOut.sampleData(B), GradOut.sampleData(B) + 5, G.data());
      Tensor GI = Ref.backward(G);
      std::copy(GI.data(), GI.data() + 7, RefGradIn.sampleData(B));
    }

    expectClose(FastOut.values(), RefOut.values(), "dense forward");
    expectClose(FastGradIn.values(), RefGradIn.values(), "dense grad-in");
    expectClose(gradSnapshot(Fast), gradSnapshot(Ref), "dense param grads");
  }
}

//===----------------------------------------------------------------------===//
// Conv2D: im2col/GEMM path vs scalar reference, odd shapes
//===----------------------------------------------------------------------===//

TEST_F(NnKernelsTest, ConvBatchMatchesNaiveOddShapesAndStride) {
  ThreadPool::setGlobalThreads(4);
  struct Case {
    int InC, OutC, K, S, H, W;
  } Cases[] = {
      {3, 5, 3, 1, 11, 9}, // non-square
      {2, 4, 3, 2, 13, 7}, // stride > 1, non-square
      {1, 8, 5, 2, 12, 17},
  };
  for (const Case &C : Cases)
    for (int BatchSize : {1, 17}) {
      Rng R1(5), R2(5);
      Conv2D Fast(C.InC, C.OutC, C.K, C.S, R1);
      Conv2D Ref(C.InC, C.OutC, C.K, C.S, R2);
      Rng Rand(123);
      Tensor In = randomTensor({BatchSize, C.InC, C.H, C.W}, Rand);
      int OH = convOutDim(C.H, C.K, C.S), OW = convOutDim(C.W, C.K, C.S);
      Tensor GradOut = randomTensor({BatchSize, C.OutC, OH, OW}, Rand);

      Tensor FastOut = Fast.forwardBatch(In);
      Tensor FastGradIn = Fast.backwardBatch(GradOut);

      Tensor RefOut(FastOut.shape()), RefGradIn(In.shape());
      size_t InSz = In.sampleSize(), OutSz = FastOut.sampleSize();
      for (int B = 0; B < BatchSize; ++B) {
        Tensor X({C.InC, C.H, C.W});
        std::copy(In.sampleData(B), In.sampleData(B) + InSz, X.data());
        Tensor Y = Ref.forward(X);
        std::copy(Y.data(), Y.data() + OutSz, RefOut.sampleData(B));
        Tensor G({C.OutC, OH, OW});
        std::copy(GradOut.sampleData(B), GradOut.sampleData(B) + OutSz,
                  G.data());
        Tensor GI = Ref.backward(G);
        std::copy(GI.data(), GI.data() + InSz, RefGradIn.sampleData(B));
      }

      expectClose(FastOut.values(), RefOut.values(), "conv forward");
      expectClose(FastGradIn.values(), RefGradIn.values(), "conv grad-in");
      expectClose(gradSnapshot(Fast), gradSnapshot(Ref),
                  "conv param grads");
    }
}

//===----------------------------------------------------------------------===//
// Full network equivalence (CNN stack: reshape/conv/relu/pool/flatten/dense)
//===----------------------------------------------------------------------===//

TEST_F(NnKernelsTest, CnnForwardBatchMatchesScalarForward) {
  ThreadPool::setGlobalThreads(4);
  Rng R1(11), R2(11);
  Network Fast = buildDeepMindCnn(1, 16, {24}, 3, R1);
  Network Ref = buildDeepMindCnn(1, 16, {24}, 3, R2);
  Rng Rand(7);
  const int BatchSize = 5, InSize = 16 * 16;
  Tensor In = randomTensor({BatchSize, InSize}, Rand);
  Tensor FastOut = Fast.forwardBatch(In);
  for (int B = 0; B < BatchSize; ++B) {
    Tensor X({InSize});
    std::copy(In.sampleData(B), In.sampleData(B) + InSize, X.data());
    Tensor Y = Ref.forward(X);
    std::vector<float> FastRow(FastOut.sampleData(B),
                               FastOut.sampleData(B) + Y.size());
    expectClose(FastRow, Y.values(), "cnn forward");
  }
}

//===----------------------------------------------------------------------===//
// Backend equivalence through the trainer
//===----------------------------------------------------------------------===//

TEST_F(NnKernelsTest, TrainerBackendsConverge) {
  // Train the same model+data under both backends; losses and predictions
  // must agree to within accumulated float-reassociation noise.
  auto Run = [](Backend B) {
    setBackend(B);
    Rng NetRand(21);
    SupervisedTrainer Trainer(buildDnn(4, {16, 8}, 2, NetRand), 1e-2);
    Rng DataRand(5);
    for (int I = 0; I < 50; ++I) {
      float A = static_cast<float>(DataRand.uniform(-1, 1));
      float C = static_cast<float>(DataRand.uniform(-1, 1));
      Trainer.addSample({A, C, A * C, A - C}, {A + C, A * C});
    }
    Rng TrainRand(9);
    double Loss = Trainer.train(8, 16, TrainRand);
    std::vector<float> Pred = Trainer.predict({0.3f, -0.2f, 0.1f, 0.5f});
    return std::make_pair(Loss, Pred);
  };
  auto [BlockedLoss, BlockedPred] = Run(Backend::Blocked);
  auto [NaiveLoss, NaivePred] = Run(Backend::Naive);
  EXPECT_NEAR(BlockedLoss, NaiveLoss, 1e-3);
  expectClose(BlockedPred, NaivePred, "trainer predictions");
  if (simdSupported()) {
    auto [SimdLoss, SimdPred] = Run(Backend::Simd);
    EXPECT_NEAR(SimdLoss, NaiveLoss, 1e-3);
    expectClose(SimdPred, NaivePred, "trainer predictions (simd)");
  }
  // And batched serving agrees with scalar serving.
  setBackend(Backend::Blocked);
  Rng NetRand(21);
  SupervisedTrainer Trainer(buildDnn(4, {16, 8}, 2, NetRand), 1e-2);
  Rng DataRand(5);
  for (int I = 0; I < 50; ++I) {
    float A = static_cast<float>(DataRand.uniform(-1, 1));
    float C = static_cast<float>(DataRand.uniform(-1, 1));
    Trainer.addSample({A, C, A * C, A - C}, {A + C, A * C});
  }
  Rng TrainRand(9);
  Trainer.train(5, 16, TrainRand);
  std::vector<std::vector<float>> Xs = {{0.3f, -0.2f, 0.1f, 0.5f},
                                        {-0.9f, 0.4f, -0.36f, -1.3f}};
  auto Batch = Trainer.predictBatch(Xs);
  ASSERT_EQ(Batch.size(), 2u);
  expectClose(Batch[0], Trainer.predict(Xs[0]), "predictBatch[0]");
  expectClose(Batch[1], Trainer.predict(Xs[1]), "predictBatch[1]");
}

//===----------------------------------------------------------------------===//
// Determinism: training loss is bitwise identical at any thread count
//===----------------------------------------------------------------------===//

TEST_F(NnKernelsTest, TrainingIsDeterministicAcrossThreadCounts) {
  auto Run = [] {
    Rng NetRand(77);
    // CNN model so conv kernels, sharded reductions and GEMMs all engage.
    SupervisedTrainer Trainer(buildDeepMindCnn(1, 12, {16}, 2, NetRand),
                              1e-3);
    Rng DataRand(3);
    for (int I = 0; I < 24; ++I) {
      std::vector<float> X(12 * 12);
      for (float &V : X)
        V = static_cast<float>(DataRand.uniform(0, 1));
      std::vector<float> Y = {X[0] + X[50],
                              static_cast<float>(DataRand.uniform(-1, 1))};
      Trainer.addSample(std::move(X), std::move(Y));
    }
    Rng TrainRand(13);
    return Trainer.train(3, 8, TrainRand);
  };
  std::vector<double> Losses;
  for (int Threads : {1, 2, 8}) {
    ThreadPool::setGlobalThreads(Threads);
    Losses.push_back(Run());
  }
  // Bitwise equality — the engine's schedules cannot change any rounding.
  EXPECT_EQ(Losses[0], Losses[1]);
  EXPECT_EQ(Losses[0], Losses[2]);
}

//===----------------------------------------------------------------------===//
// MaxPool sentinel regression
//===----------------------------------------------------------------------===//

TEST_F(NnKernelsTest, MaxPoolHandlesArbitrarilyNegativeInputs) {
  MaxPool2D Pool;
  Tensor In({1, 2, 2});
  // All inputs below the old -1e30 sentinel; the max is at index 3.
  In[0] = -4e30f;
  In[1] = -3e30f;
  In[2] = -5e30f;
  In[3] = -2e30f;
  Tensor Out = Pool.forward(In);
  ASSERT_EQ(Out.size(), 1u);
  EXPECT_FLOAT_EQ(Out[0], -2e30f);
  Tensor G({1, 1, 1});
  G[0] = 1.0f;
  Tensor GI = Pool.backward(G);
  EXPECT_FLOAT_EQ(GI[3], 1.0f);
  EXPECT_FLOAT_EQ(GI[0], 0.0f);

  // Batched path agrees.
  Tensor InB = In.reshaped({1, 1, 2, 2});
  Tensor OutB = Pool.forwardBatch(InB);
  EXPECT_FLOAT_EQ(OutB[0], -2e30f);
}

//===----------------------------------------------------------------------===//
// Cross-backend layer equivalence (naive vs blocked vs simd)
//===----------------------------------------------------------------------===//

namespace {

/// The engines worth comparing pairwise: the two batched ones, and simd
/// only where the CPU can run it.
std::vector<Backend> comparableBackends() {
  std::vector<Backend> Bs = {Backend::Naive, Backend::Blocked};
  if (simdSupported())
    Bs.push_back(Backend::Simd);
  return Bs;
}

} // namespace

TEST_F(NnKernelsTest, LayersEquivalentAcrossBackends) {
  ThreadPool::setGlobalThreads(2);
  Rng Rand(321);
  Tensor DenseIn = randomTensor({9, 7}, Rand);
  Tensor DenseGrad = randomTensor({9, 5}, Rand);
  Tensor ConvIn = randomTensor({9, 3, 10, 8}, Rand);
  Tensor ConvGrad = randomTensor({9, 4, 8, 6}, Rand);

  struct Result {
    std::vector<float> DenseOut, DenseGradIn, DenseGrads;
    std::vector<float> ConvOut, ConvGradIn, ConvGrads;
  };
  auto Run = [&](Backend B) {
    setBackend(B);
    Rng R1(17), R2(17);
    Dense D(7, 5, R1);
    Conv2D C(3, 4, 3, 1, R2);
    Result Out;
    Out.DenseOut = D.forwardBatch(DenseIn).values();
    Out.DenseGradIn = D.backwardBatch(DenseGrad).values();
    Out.DenseGrads = gradSnapshot(D);
    Out.ConvOut = C.forwardBatch(ConvIn).values();
    Out.ConvGradIn = C.backwardBatch(ConvGrad).values();
    Out.ConvGrads = gradSnapshot(C);
    return Out;
  };

  Result Ref = Run(Backend::Naive);
  for (Backend B : comparableBackends()) {
    if (B == Backend::Naive)
      continue;
    Result Got = Run(B);
    expectClose(Got.DenseOut, Ref.DenseOut, "dense forward x-backend");
    expectClose(Got.DenseGradIn, Ref.DenseGradIn, "dense grad-in x-backend");
    expectClose(Got.DenseGrads, Ref.DenseGrads, "dense grads x-backend");
    expectClose(Got.ConvOut, Ref.ConvOut, "conv forward x-backend");
    expectClose(Got.ConvGradIn, Ref.ConvGradIn, "conv grad-in x-backend");
    expectClose(Got.ConvGrads, Ref.ConvGrads, "conv grads x-backend");
  }
}

//===----------------------------------------------------------------------===//
// Packed-weight cache invalidation
//===----------------------------------------------------------------------===//

TEST_F(NnKernelsTest, PackedWeightsInvalidateAfterOptimizerStep) {
  for (Backend B : comparableBackends()) {
    if (B == Backend::Naive)
      continue; // Naive has no packed caches.
    setBackend(B);
    Rng R(29);
    Network Net = buildDnn(6, {8}, 3, R);
    Adam Opt(Net, 0.05);
    Rng Rand(5);
    Tensor In = randomTensor({4, 6}, Rand);
    Tensor Grad = randomTensor({4, 3}, Rand);

    Net.forwardBatch(In); // Warms the packed-weight caches.
    Net.backwardBatch(Grad);
    Opt.step(4.0);

    // Post-step batched prediction must reflect the new weights: compare
    // against the per-sample scalar path, which reads them directly.
    Tensor Out = Net.forwardBatch(In);
    for (int S = 0; S < 4; ++S) {
      Tensor X({6});
      std::copy(In.sampleData(S), In.sampleData(S) + 6, X.data());
      Tensor Y = Net.forward(X);
      for (int J = 0; J < 3; ++J)
        ASSERT_NEAR(Out.sampleData(S)[J], Y[J], 1e-4)
            << "stale packed weights after optimizer step, backend "
            << backendName(B);
    }
  }
}

TEST_F(NnKernelsTest, PackedWeightsInvalidateAfterParamLoad) {
  for (Backend B : comparableBackends()) {
    if (B == Backend::Naive)
      continue;
    setBackend(B);
    Rng R(31);
    Network Net = buildDnn(5, {6}, 2, R);
    Adam Opt(Net, 0.1);
    Rng Rand(7);
    Tensor In = randomTensor({3, 5}, Rand);
    Tensor Grad = randomTensor({3, 2}, Rand);

    Tensor Before = Net.forwardBatch(In); // Packs the initial weights.
    std::vector<float> Expect = Before.values();

    std::string Path =
        ::testing::TempDir() + "nn_kernels_packed_reload.bin";
    ASSERT_TRUE(Net.saveParams(Path));

    // Perturb the parameters, then load the saved ones back — the restore
    // path readParams/loadParams rides through must invalidate the caches.
    Net.backwardBatch(Grad);
    Opt.step(3.0);
    ASSERT_TRUE(Net.loadParams(Path));

    Tensor After = Net.forwardBatch(In);
    expectClose(After.values(), Expect,
                "prediction after param reload (stale packed weights?)");
    std::remove(Path.c_str());
  }
}

//===----------------------------------------------------------------------===//
// Zero-allocation steady state (workspace arena + retained layer caches)
//===----------------------------------------------------------------------===//

TEST_F(NnKernelsTest, SteadyStateForwardBatchDoesNotAllocate) {
  ThreadPool::setGlobalThreads(1); // Allocation counting needs one thread.
  for (Backend B : comparableBackends()) {
    if (B == Backend::Naive)
      continue; // The reference engine makes no zero-alloc promise.
    setBackend(B);
    Rng R(41);
    Network Dnn = buildDnn(12, {16, 16}, 4, R);
    Network Cnn = buildDeepMindCnn(1, 12, {16}, 3, R);
    Rng Rand(9);
    Tensor DnnIn = randomTensor({8, 12}, Rand);
    Tensor CnnIn = randomTensor({8, 1, 12, 12}, Rand);

    // Building the networks above must have ticked the counter — guards
    // against the replacement operators not being linked in, which would
    // make the zero-alloc assertion below pass vacuously.
    ASSERT_GT(GHeapAllocs.load(std::memory_order_relaxed), 0);

    // Warm-up: buffers converge on the workload's high-water mark.
    for (int I = 0; I < 3; ++I) {
      Tensor A = Dnn.forwardBatch(DnnIn);
      Workspace::release(A);
      Tensor C = Cnn.forwardBatch(CnnIn);
      Workspace::release(C);
    }

    long Before = GHeapAllocs.load(std::memory_order_relaxed);
    for (int I = 0; I < 8; ++I) {
      Tensor A = Dnn.forwardBatch(DnnIn);
      Workspace::release(A);
      Tensor C = Cnn.forwardBatch(CnnIn);
      Workspace::release(C);
    }
    long After = GHeapAllocs.load(std::memory_order_relaxed);
    EXPECT_EQ(After, Before)
        << "steady-state forwardBatch allocated under backend "
        << backendName(B);
  }
}
