//===- tests/ExtendedTest.cpp - Cross-cutting and extension tests --------===//
//
// Coverage beyond the per-module suites: the custom-network callback (the
// paper's "arbitrary networks from scratch" escape hatch), CNN-typed
// supervised models, multiple model instances in one execution,
// differential checks of the production runtime against the executable
// semantics, and property sweeps over the store plumbing.
//
//===----------------------------------------------------------------------===//

#include "apps/flappy/Flappy.h"
#include "core/Runtime.h"
#include "nn/Layers.h"
#include "semantics/Interp.h"

#include <gtest/gtest.h>

using namespace au;

//===----------------------------------------------------------------------===//
// Custom-network callback
//===----------------------------------------------------------------------===//

TEST(CustomNetworkTest, SupervisedModelUsesCallback) {
  Runtime RT(Mode::TR);
  ModelConfig C;
  C.Name = "custom";
  C.Seed = 3;
  bool CallbackRan = false;
  C.CustomNetwork = [&CallbackRan](int In, int Out, Rng &R) {
    CallbackRan = true;
    // A deliberately nonstandard stack: linear bottleneck, no ReLU.
    nn::Network Net;
    Net.add(std::make_unique<nn::Dense>(In, 3, R));
    Net.add(std::make_unique<nn::Dense>(3, Out, R));
    return Net;
  };
  RT.config(C);
  Rng Data(5);
  for (int I = 0; I < 60; ++I) {
    float X = static_cast<float>(Data.uniform(-1, 1));
    RT.extract("F", X);
    RT.nn("custom", "F", {{"Y", 1}});
    float Label = -2 * X;
    RT.writeBack("Y", 1, &Label);
  }
  EXPECT_TRUE(CallbackRan);
  RT.trainSupervised("custom", 200, 16);
  RT.switchMode(Mode::TS);
  RT.extract("F", 0.5f);
  RT.nn("custom", "F", {{"Y", 1}});
  float Pred = 0.0f;
  RT.writeBack("Y", 1, &Pred);
  EXPECT_NEAR(Pred, -1.0f, 0.7f);
}

TEST(CustomNetworkTest, ReinforcementModelUsesCallback) {
  ModelConfig C;
  C.Name = "customrl";
  C.Algo = Algorithm::QLearn;
  C.Seed = 4;
  C.CustomNetwork = [](int In, int Out, Rng &R) {
    return nn::buildDnn(In, {6, 6, 6}, Out, R);
  };
  RlModel M(C);
  int A = M.step({0.1f, 0.2f}, 0.0f, false, {"output", 3}, true);
  EXPECT_GE(A, 0);
  EXPECT_LT(A, 3);
  // (In=2 -> 6 -> 6 -> 6 -> 3): (12+6) + (36+6)*2 + (18+3) = 123 params.
  EXPECT_EQ(M.numParams(), 123u);
}

//===----------------------------------------------------------------------===//
// CNN-typed supervised model (the paper's delta = CNN under AdamOpt)
//===----------------------------------------------------------------------===//

TEST(CnnSlTest, TrainsOnImageLikeFeatures) {
  ModelConfig C;
  C.Name = "cnnsl";
  C.Type = ModelType::CNN;
  C.FrameSide = 12;
  C.FrameChannels = 1;
  C.HiddenLayers = {8};
  C.Seed = 6;
  SlModel M(C);
  // Predict the mean brightness of a 12x12 frame.
  Rng R(7);
  std::vector<WriteBackSpec> Outs = {{"MEAN", 1}};
  for (int I = 0; I < 50; ++I) {
    float Level = static_cast<float>(R.uniform(0, 1));
    std::vector<float> Frame(144);
    float Sum = 0;
    for (float &P : Frame) {
      P = static_cast<float>(Level + R.uniform(-0.1, 0.1));
      Sum += P;
    }
    M.addSample(Frame, {Sum / 144}, Outs);
  }
  M.train(30, 8);
  std::vector<float> Bright(144, 0.9f), Dark(144, 0.1f);
  EXPECT_GT(M.predict(Bright)[0], M.predict(Dark)[0]);
}

//===----------------------------------------------------------------------===//
// Multiple model instances in one execution (Section 2: "Autonomizer
// supports multiple model instances in one execution")
//===----------------------------------------------------------------------===//

TEST(MultiModelTest, SupervisedAndReinforcementCoexist) {
  Runtime RT(Mode::TR);
  ModelConfig Sl;
  Sl.Name = "param";
  Sl.HiddenLayers = {8};
  RT.config(Sl);
  ModelConfig Rl;
  Rl.Name = "agent";
  Rl.Algo = Algorithm::QLearn;
  Rl.HiddenLayers = {8};
  RT.config(Rl);

  for (int I = 0; I < 25; ++I) {
    // Interleave both models through the shared database store.
    float X = static_cast<float>(I) / 25.0f;
    RT.extract("SLF", X);
    RT.nn("param", "SLF", {{"P", 1}});
    float Label = 3 * X;
    RT.writeBack("P", 1, &Label);

    RT.extract("ST", X);
    RT.nn("agent", "ST", 0.1f, false, {"output", 2});
    int Action = 0;
    RT.writeBack("output", 2, &Action);
  }
  auto *SlM = static_cast<SlModel *>(RT.getModel("param"));
  auto *RlM = static_cast<RlModel *>(RT.getModel("agent"));
  ASSERT_TRUE(SlM && RlM);
  EXPECT_EQ(SlM->numSamples(), 25u);
  EXPECT_EQ(RlM->learner()->stepsObserved(), 24); // First step has no prev.
}

//===----------------------------------------------------------------------===//
// Differential: production runtime vs executable semantics
//===----------------------------------------------------------------------===//

TEST(DifferentialTest, ExtractWriteBackPlumbingMatchesSemantics) {
  // Drive the same extract/write-back plumbing through both systems and
  // compare the database-store contents.
  semantics::Machine M;
  M.Omega = Mode::TR;
  semantics::run(M, {
                        semantics::AssignStmt{"size", {3.0f}},
                        semantics::AssignStmt{"x", {1.0f, 2.0f, 3.0f}},
                        semantics::ExtractStmt{"ext", "size", "x"},
                        semantics::ExtractStmt{"ext", "size", "x"},
                    });

  Runtime RT(Mode::TR);
  float X[3] = {1.0f, 2.0f, 3.0f};
  RT.extract("ext", 3, X);
  RT.extract("ext", 3, X);

  EXPECT_EQ(M.Pi.get("ext"), RT.db().get("ext"));
}

TEST(DifferentialTest, SerializeNameCompositionMatchesSemantics) {
  semantics::Machine M;
  M.Pi.set("a", {1.0f});
  M.Pi.set("b", {2.0f});
  semantics::step(M, semantics::SerializeStmt{"a", "b"});

  Runtime RT(Mode::TR);
  RT.extract("a", 1.0f);
  RT.extract("b", 2.0f);
  std::string Name = RT.serialize({"a", "b"});
  EXPECT_EQ(Name, "ab");
  EXPECT_EQ(M.Pi.get("ab"), RT.db().get("ab"));
}

TEST(DifferentialTest, CheckpointScopeMatchesSemantics) {
  // Both systems must roll back sigma and pi but never theta.
  semantics::Machine M;
  M.Omega = Mode::TR;
  semantics::ConfigStmt C;
  C.ModelName = "m";
  C.Layers = {3, 2};
  semantics::run(M, {semantics::AssignStmt{"size", {1.0f}},
                     semantics::AssignStmt{"x", {0.5f}}, C,
                     semantics::CheckpointStmt{},
                     semantics::ExtractStmt{"ext", "size", "x"},
                     semantics::NNStmt{"m", "ext", "wb"},
                     semantics::ExtractStmt{"ext", "size", "x"},
                     semantics::NNStmt{"m", "ext", "wb"}});
  std::vector<float> ThetaTrained = M.Theta["m"];
  semantics::step(M, semantics::RestoreStmt{});
  EXPECT_EQ(M.Theta["m"], ThetaTrained);
  EXPECT_TRUE(M.Pi.get("wb").empty());

  Runtime RT(Mode::TR);
  ModelConfig MC;
  MC.Name = "m";
  MC.Algo = Algorithm::QLearn;
  MC.HiddenLayers = {8};
  RT.config(MC);
  RT.checkpoint();
  for (int I = 0; I < 10; ++I) {
    RT.extract("ext", 0.5f);
    RT.nn("m", "ext", 1.0f, false, {"output", 2});
  }
  auto *Rl = static_cast<RlModel *>(RT.getModel("m"));
  long Steps = Rl->learner()->stepsObserved();
  RT.restore();
  EXPECT_EQ(Rl->learner()->stepsObserved(), Steps);
  EXPECT_TRUE(RT.db().get("output").empty());
}

//===----------------------------------------------------------------------===//
// Store-plumbing property sweeps
//===----------------------------------------------------------------------===//

class SerializeArity : public ::testing::TestWithParam<int> {};

TEST_P(SerializeArity, CombinedLengthIsSumAndConstituentsConsumed) {
  int N = GetParam();
  Runtime RT(Mode::TR);
  std::vector<std::string> Names;
  size_t Expected = 0;
  for (int I = 0; I < N; ++I) {
    std::string Name = "v" + std::to_string(I);
    // Variable-length lists exercise the concat.
    for (int K = 0; K <= I % 3; ++K)
      RT.extract(Name, static_cast<float>(I * 10 + K));
    Expected += 1 + I % 3;
    Names.push_back(Name);
  }
  std::string Combined = RT.serialize(Names);
  EXPECT_EQ(RT.db().get(Combined).size(), Expected);
  for (const std::string &Name : Names)
    if (Name != Combined) // A single list serializes onto its own name.
      EXPECT_TRUE(RT.db().get(Name).empty())
          << Name << " should be consumed by serialize";
}

INSTANTIATE_TEST_SUITE_P(Arities, SerializeArity,
                         ::testing::Values(1, 2, 5, 12));

TEST(CheckpointDedupTest, DuplicateRegistrationsIgnored) {
  CheckpointManager M;
  double V = 1.0;
  M.registerRegion(&V, sizeof(V));
  M.registerRegion(&V, sizeof(V));
  apps::FlappyEnv Env;
  Env.reset(1 << 8);
  M.registerObject(&Env);
  M.registerObject(&Env);
  DatabaseStore Db;
  M.checkpoint(Db);
  // One region + one object only.
  std::vector<uint8_t> State;
  Env.saveState(State);
  EXPECT_EQ(M.snapshotBytes(), sizeof(double) + State.size());
}

//===----------------------------------------------------------------------===//
// RL chain bookkeeping across episodes
//===----------------------------------------------------------------------===//

TEST(RlChainTest, TerminalBreaksTheTransitionChain) {
  ModelConfig C;
  C.Name = "q";
  C.Algo = Algorithm::QLearn;
  C.HiddenLayers = {4};
  RlModel M(C);
  WriteBackSpec Out{"output", 2};
  // Episode 1: three steps then terminal.
  M.step({0.1f}, 0.0f, false, Out, true);
  M.step({0.2f}, 0.5f, false, Out, true);
  M.step({0.3f}, 0.5f, true, Out, true); // Terminal observation.
  long AfterEp1 = M.learner()->stepsObserved();
  EXPECT_EQ(AfterEp1, 2);
  // Episode 2 (after au_restore): the first step must NOT observe a
  // transition linking across the rollback.
  M.step({0.1f}, 0.0f, false, Out, true);
  EXPECT_EQ(M.learner()->stepsObserved(), AfterEp1);
  M.step({0.2f}, 0.5f, false, Out, true);
  EXPECT_EQ(M.learner()->stepsObserved(), AfterEp1 + 1);
}

//===----------------------------------------------------------------------===//
// Learning-rate annealing
//===----------------------------------------------------------------------===//

TEST(LrAnnealTest, RateDecaysTowardConfiguredEnd) {
  nn::QConfig Cfg;
  Cfg.LearningRate = 1e-3;
  Cfg.LearningRateEnd = 1e-4;
  Cfg.EpsilonDecaySteps = 50;
  Cfg.WarmupSteps = 1000000; // No training; just bookkeeping.
  nn::QLearner Q(
      [] {
        Rng R(9);
        return nn::buildDnn(1, {4}, 2, R);
      },
      2, Cfg, 10);
  std::vector<float> S = {0.0f};
  for (int I = 0; I < 200; ++I) // Well past 2x the epsilon horizon.
    Q.observe(S, 0, 0.0f, S, false);
  // No direct accessor for the optimizer rate; instead verify stability:
  // the annealed learner's parameters stay finite and the schedule code
  // ran without assertion. (The behavioral effect is covered by the
  // fig17/table3 harnesses.)
  EXPECT_EQ(Q.stepsObserved(), 200);
}
