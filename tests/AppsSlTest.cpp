//===- tests/AppsSlTest.cpp - Tests for the SL benchmark programs --------===//

#include "apps/canny/Canny.h"
#include "apps/phylip/Phylip.h"
#include "apps/rothwell/Rothwell.h"
#include "apps/sphinx/Sphinx.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace au;
using namespace au::apps;
using analysis::SlPick;

//===----------------------------------------------------------------------===//
// Canny
//===----------------------------------------------------------------------===//

TEST(CannyTest, DetectsEdgesOfCleanSquare) {
  Image I(48, 48, 0.1f);
  for (int Y = 12; Y < 36; ++Y)
    for (int X = 12; X < 36; ++X)
      I.at(X, Y) = 0.9f;
  CannyParams P;
  Image Edges = cannyDetect(I, P);
  // Edge pixels near the square boundary, none deep inside.
  int OnBoundary = 0, Inside = 0;
  for (int X = 12; X < 36; ++X)
    OnBoundary += Edges.at(X, 12) > 0.5f || Edges.at(X, 11) > 0.5f ||
                  Edges.at(X, 13) > 0.5f;
  // Strictly interior pixels, clear of both vertical boundaries.
  for (int X = 17; X < 31; ++X)
    Inside += Edges.at(X, 24) > 0.5f;
  EXPECT_GT(OnBoundary, 12);
  EXPECT_EQ(Inside, 0);
}

TEST(CannyTest, BlankImageHasNoEdges) {
  Image I(32, 32, 0.5f);
  Image Edges = cannyDetect(I, CannyParams());
  for (float P : Edges.data())
    EXPECT_FLOAT_EQ(P, 0.0f);
}

TEST(CannyTest, TraceHistogramNormalized) {
  CannyScene S = makeCannyScene(1);
  CannyTrace Trace;
  cannyDetect(S.Input, CannyParams(), &Trace);
  ASSERT_EQ(Trace.Hist.size(), static_cast<size_t>(CannyHistBins));
  float Sum = 0.0f;
  for (float H : Trace.Hist)
    Sum += H;
  EXPECT_NEAR(Sum, 1.0f, 1e-4);
}

TEST(CannyTest, HigherThresholdsYieldFewerEdges) {
  CannyScene S = makeCannyScene(2);
  CannyParams Loose{1.2, 0.3, 0.6};
  CannyParams Strict{1.2, 0.9, 0.985};
  auto CountEdges = [](const Image &E) {
    int N = 0;
    for (float P : E.data())
      N += P > 0.5f;
    return N;
  };
  EXPECT_GE(CountEdges(cannyDetect(S.Input, Loose)),
            CountEdges(cannyDetect(S.Input, Strict)));
}

TEST(CannyTest, SceneGenerationDeterministic) {
  CannyScene A = makeCannyScene(33);
  CannyScene B = makeCannyScene(33);
  EXPECT_EQ(A.Input.data(), B.Input.data());
  EXPECT_EQ(A.Truth.data(), B.Truth.data());
  CannyScene C = makeCannyScene(34);
  EXPECT_NE(A.Input.data(), C.Input.data());
}

TEST(CannyTest, AutotuneBeatsDefaultsOnAverage) {
  double DefaultTotal = 0.0, TunedTotal = 0.0;
  for (uint64_t Seed = 50; Seed < 56; ++Seed) {
    CannyScene S = makeCannyScene(Seed);
    DefaultTotal += cannyScore(cannyDetect(S.Input, CannyParams()), S.Truth);
    CannyParams Best = autotuneCanny(S);
    TunedTotal += cannyScore(cannyDetect(S.Input, Best), S.Truth);
  }
  EXPECT_GT(TunedTotal, DefaultTotal);
}

TEST(CannyTest, ProfileReproducesFig9Ranking) {
  analysis::Tracer T;
  std::vector<std::string> Inputs, Targets;
  cannyProfile(T, Inputs, Targets);
  analysis::SlFeatureMap F = extractSlFeatures(T, Inputs, Targets);
  ASSERT_TRUE(F.count("lo"));
  const auto &Ranked = F["lo"];
  ASSERT_GE(Ranked.size(), 4u);
  EXPECT_EQ(Ranked.front().Var, "hist");
  // image is ranked last among the chain variables.
  auto ImagePos = std::find_if(Ranked.begin(), Ranked.end(),
                               [](const analysis::RankedFeature &R) {
                                 return R.Var == "image";
                               });
  ASSERT_NE(ImagePos, Ranked.end());
  EXPECT_GT(ImagePos->Distance, Ranked.front().Distance);
}

//===----------------------------------------------------------------------===//
// Rothwell
//===----------------------------------------------------------------------===//

TEST(RothwellTest, DetectsEdgesOfCleanSquare) {
  Image I(48, 48, 0.1f);
  for (int Y = 12; Y < 36; ++Y)
    for (int X = 12; X < 36; ++X)
      I.at(X, Y) = 0.9f;
  Image Edges = rothwellDetect(I, RothwellParams());
  int EdgeCount = 0;
  for (float P : Edges.data())
    EdgeCount += P > 0.5f;
  EXPECT_GT(EdgeCount, 40);
}

TEST(RothwellTest, MinLenPrunesIsolatedSpecks) {
  CannyScene S = makeCannyScene(60);
  RothwellParams Short{1.2, 1.8, 1.0};
  RothwellParams Long{1.2, 1.8, 12.0};
  auto CountEdges = [](const Image &E) {
    int N = 0;
    for (float P : E.data())
      N += P > 0.5f;
    return N;
  };
  EXPECT_GE(CountEdges(rothwellDetect(S.Input, Short)),
            CountEdges(rothwellDetect(S.Input, Long)));
}

TEST(RothwellTest, ProfileHasThreeTargets) {
  analysis::Tracer T;
  std::vector<std::string> Inputs, Targets;
  rothwellProfile(T, Inputs, Targets);
  EXPECT_EQ(Targets.size(), 3u);
  analysis::SlFeatureMap F = extractSlFeatures(T, Inputs, Targets);
  for (const std::string &Target : Targets)
    EXPECT_FALSE(F[Target].empty()) << Target;
}

//===----------------------------------------------------------------------===//
// Phylip
//===----------------------------------------------------------------------===//

TEST(PhylipTest, DatasetDeterministicAndWellFormed) {
  PhylipDataset A = makePhylipDataset(5);
  PhylipDataset B = makePhylipDataset(5);
  EXPECT_EQ(A.Sequences, B.Sequences);
  EXPECT_EQ(A.TrueParent, B.TrueParent);
  ASSERT_EQ(A.Sequences.size(), static_cast<size_t>(PhylipDataset::NumTaxa));
  for (const std::string &S : A.Sequences)
    for (char C : S)
      EXPECT_TRUE(C == 'A' || C == 'C' || C == 'G' || C == 'T' || C == '-');
}

TEST(PhylipTest, NeighborJoinRecoversTreeFromLowNoiseData) {
  // With long sequences, low rate dispersion and no gaps, NJ with
  // well-matched parameters should be close to the truth.
  PhylipDataset D = makePhylipDataset(7, /*SeqLen=*/600);
  PhylipParams P{1.0, 2.0, 0.5};
  double Score = phylipScore(D, P);
  EXPECT_LE(Score, 0.7);
}

TEST(PhylipTest, RobinsonFouldsIdenticalTreesIsZero) {
  PhylipDataset D = makePhylipDataset(9);
  EXPECT_DOUBLE_EQ(
      robinsonFoulds(D.TrueParent, D.TrueParent, PhylipDataset::NumTaxa),
      0.0);
}

TEST(PhylipTest, RobinsonFouldsDistinguishesTrees) {
  PhylipDataset A = makePhylipDataset(10);
  PhylipDataset B = makePhylipDataset(11);
  EXPECT_GT(robinsonFoulds(A.TrueParent, B.TrueParent,
                           PhylipDataset::NumTaxa),
            0.0);
}

TEST(PhylipTest, DistanceMatrixSymmetricWithZeroDiagonal) {
  PhylipDataset D = makePhylipDataset(12);
  std::vector<double> M = phylipDistances(D, PhylipParams());
  int N = PhylipDataset::NumTaxa;
  for (int A = 0; A < N; ++A) {
    EXPECT_DOUBLE_EQ(M[A * N + A], 0.0);
    for (int B = 0; B < N; ++B)
      EXPECT_DOUBLE_EQ(M[A * N + B], M[B * N + A]);
  }
}

TEST(PhylipTest, AutotuneNotWorseThanDefaults) {
  double DefaultTotal = 0.0, TunedTotal = 0.0;
  for (uint64_t Seed = 20; Seed < 25; ++Seed) {
    PhylipDataset D = makePhylipDataset(Seed);
    DefaultTotal += phylipScore(D, PhylipParams());
    TunedTotal += phylipScore(D, autotunePhylip(D));
  }
  EXPECT_LE(TunedTotal, DefaultTotal); // Lower is better.
}

TEST(PhylipTest, ProfileTargetsPresent) {
  analysis::Tracer T;
  std::vector<std::string> Inputs, Targets;
  phylipProfile(T, Inputs, Targets);
  EXPECT_EQ(Targets.size(), 3u);
  analysis::SlFeatureMap F = extractSlFeatures(T, Inputs, Targets);
  EXPECT_FALSE(F["alpha"].empty());
}

//===----------------------------------------------------------------------===//
// Sphinx
//===----------------------------------------------------------------------===//

TEST(SphinxTest, TemplatesAreDistinct) {
  for (int A = 0; A < SphinxVocab; ++A)
    for (int B = A + 1; B < SphinxVocab; ++B) {
      auto TA = sphinxTemplate(A);
      auto TB = sphinxTemplate(B);
      double Diff = 0.0;
      for (size_t I = 0; I != TA.size(); ++I)
        Diff += std::abs(TA[I][0] - TB[I][0]) + std::abs(TA[I][1] - TB[I][1]);
      EXPECT_GT(Diff, 0.5) << "templates " << A << " and " << B;
    }
}

TEST(SphinxTest, RecognizesLowNoiseUtterances) {
  // Generous beam, low-noise utterances: the recognizer should be right
  // most of the time.
  int Correct = 0, Total = 0;
  for (uint64_t Seed = 0; Seed < 30; ++Seed) {
    SphinxUtterance U = makeSphinxUtterance(Seed);
    if (U.Noise > 0.12)
      continue;
    SphinxParams P{6.0, U.Noise * 0.5};
    Correct += sphinxRecognize(U, P).Word == U.TrueWord;
    ++Total;
  }
  ASSERT_GT(Total, 3);
  EXPECT_GE(static_cast<double>(Correct) / Total, 0.7);
}

TEST(SphinxTest, WiderBeamExpandsMoreCells) {
  SphinxUtterance U = makeSphinxUtterance(3);
  SphinxResult Narrow = sphinxRecognize(U, {0.3, 0.1});
  SphinxResult Wide = sphinxRecognize(U, {6.0, 0.1});
  EXPECT_GT(Wide.CellsExpanded, Narrow.CellsExpanded);
}

TEST(SphinxTest, ScoreZeroWhenWrongWord) {
  SphinxUtterance U = makeSphinxUtterance(4);
  SphinxParams P{6.0, 0.0};
  SphinxResult R = sphinxRecognize(U, P);
  double S = sphinxScore(U, P);
  if (R.Word == U.TrueWord)
    EXPECT_GT(S, 0.0);
  else
    EXPECT_DOUBLE_EQ(S, 0.0);
}

TEST(SphinxTest, AutotuneNotWorseThanDefaults) {
  double DefaultTotal = 0.0, TunedTotal = 0.0;
  for (uint64_t Seed = 40; Seed < 48; ++Seed) {
    SphinxUtterance U = makeSphinxUtterance(Seed);
    DefaultTotal += sphinxScore(U, SphinxParams());
    TunedTotal += sphinxScore(U, autotuneSphinx(U));
  }
  EXPECT_GE(TunedTotal, DefaultTotal);
}

TEST(SphinxTest, ProfileTargetsPresent) {
  analysis::Tracer T;
  std::vector<std::string> Inputs, Targets;
  sphinxProfile(T, Inputs, Targets);
  EXPECT_EQ(Targets.size(), 2u);
  analysis::SlFeatureMap F = extractSlFeatures(T, Inputs, Targets);
  EXPECT_FALSE(F["beam"].empty());
  EXPECT_FALSE(F["noiseFloor"].empty());
}
