//===- tests/SupportTest.cpp - Unit tests for the support library --------===//

#include "support/Image.h"
#include "support/Rng.h"
#include "support/Ssim.h"
#include "support/Statistics.h"
#include "support/Table.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>

using namespace au;

//===----------------------------------------------------------------------===//
// Rng
//===----------------------------------------------------------------------===//

TEST(RngTest, DeterministicForSameSeed) {
  Rng A(42), B(42);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 50; ++I)
    Same += A.next() == B.next();
  EXPECT_LT(Same, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
}

TEST(RngTest, UniformRangeRespected) {
  Rng R(9);
  for (int I = 0; I < 1000; ++I) {
    double U = R.uniform(-3.0, 5.0);
    EXPECT_GE(U, -3.0);
    EXPECT_LT(U, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng R(11);
  std::vector<int> Seen(10, 0);
  for (int I = 0; I < 2000; ++I)
    ++Seen[R.uniformInt(10)];
  for (int Count : Seen)
    EXPECT_GT(Count, 100);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng R(13);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 500; ++I) {
    int64_t V = R.uniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo = SawLo || V == -2;
    SawHi = SawHi || V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(RngTest, NormalMomentsRoughlyStandard) {
  Rng R(17);
  double Sum = 0.0, SumSq = 0.0;
  const int N = 20000;
  for (int I = 0; I < N; ++I) {
    double X = R.normal();
    Sum += X;
    SumSq += X * X;
  }
  double Mean = Sum / N;
  double Var = SumSq / N - Mean * Mean;
  EXPECT_NEAR(Mean, 0.0, 0.05);
  EXPECT_NEAR(Var, 1.0, 0.08);
}

TEST(RngTest, ChanceExtremes) {
  Rng R(23);
  for (int I = 0; I < 100; ++I) {
    EXPECT_FALSE(R.chance(0.0));
    EXPECT_TRUE(R.chance(1.0));
  }
}

//===----------------------------------------------------------------------===//
// Statistics
//===----------------------------------------------------------------------===//

TEST(StatisticsTest, MeanAndVariance) {
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(mean({2.0, 4.0, 6.0}), 4.0);
  EXPECT_DOUBLE_EQ(variance({5.0}), 0.0);
  EXPECT_DOUBLE_EQ(variance({1.0, 3.0}), 1.0);
  EXPECT_DOUBLE_EQ(stddev({1.0, 3.0}), 1.0);
}

TEST(StatisticsTest, MinMaxScaleMapsToUnit) {
  std::vector<double> S = minMaxScale({2.0, 4.0, 6.0});
  ASSERT_EQ(S.size(), 3u);
  EXPECT_DOUBLE_EQ(S[0], 0.0);
  EXPECT_DOUBLE_EQ(S[1], 0.5);
  EXPECT_DOUBLE_EQ(S[2], 1.0);
}

TEST(StatisticsTest, MinMaxScaleConstantTraceIsZeros) {
  std::vector<double> S = minMaxScale({3.0, 3.0, 3.0});
  for (double V : S)
    EXPECT_DOUBLE_EQ(V, 0.0);
}

TEST(StatisticsTest, EuclideanDistanceZeroPadsShorter) {
  // The paper's footnote-2 example: [0.1,0.3,0.4] vs [0.1,0.2].
  double D = euclideanDistance({0.1, 0.3, 0.4}, {0.1, 0.2});
  EXPECT_NEAR(D, std::sqrt(0.17), 1e-12);
}

TEST(StatisticsTest, EuclideanDistanceSymmetric) {
  std::vector<double> A = {1.0, 2.0, 3.0};
  std::vector<double> B = {4.0, 0.0};
  EXPECT_DOUBLE_EQ(euclideanDistance(A, B), euclideanDistance(B, A));
}

TEST(StatisticsTest, EuclideanDistanceIdentityIsZero) {
  std::vector<double> A = {0.5, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(euclideanDistance(A, A), 0.0);
}

TEST(StatisticsTest, PercentileInterpolates) {
  std::vector<double> Xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(percentile(Xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(Xs, 100), 4.0);
  EXPECT_DOUBLE_EQ(percentile(Xs, 50), 2.5);
}

TEST(StatisticsTest, PearsonPerfectAndDegenerate) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(pearson({1, 1, 1}, {2, 4, 6}), 0.0);
  EXPECT_DOUBLE_EQ(pearson({1, 2}, {1, 2, 3}), 0.0);
}

TEST(StatisticsTest, Clamp) {
  EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(clamp(0.5, 0.0, 1.0), 0.5);
}

//===----------------------------------------------------------------------===//
// Image
//===----------------------------------------------------------------------===//

TEST(ImageTest, ConstructionAndAccess) {
  Image I(4, 3, 0.5f);
  EXPECT_EQ(I.width(), 4);
  EXPECT_EQ(I.height(), 3);
  EXPECT_EQ(I.size(), 12u);
  I.at(2, 1) = 0.9f;
  EXPECT_FLOAT_EQ(I.at(2, 1), 0.9f);
  EXPECT_FLOAT_EQ(I.at(0, 0), 0.5f);
}

TEST(ImageTest, ClampedAccessReplicatesBorder) {
  Image I(2, 2);
  I.at(0, 0) = 1.0f;
  EXPECT_FLOAT_EQ(I.atClamped(-5, -5), 1.0f);
  EXPECT_FLOAT_EQ(I.atClamped(0, 0), 1.0f);
}

TEST(ImageTest, GaussianPreservesConstantImage) {
  Image I(16, 16, 0.7f);
  Image S = gaussianSmooth(I, 1.5);
  for (float P : S.data())
    EXPECT_NEAR(P, 0.7f, 1e-5);
}

TEST(ImageTest, GaussianReducesVariance) {
  Image I(32, 32);
  Rng R(5);
  for (float &P : I.data())
    P = static_cast<float>(R.uniform());
  Image S = gaussianSmooth(I, 1.5);
  std::vector<double> Orig(I.data().begin(), I.data().end());
  std::vector<double> Smooth(S.data().begin(), S.data().end());
  EXPECT_LT(variance(Smooth), variance(Orig));
}

TEST(ImageTest, SobelDetectsVerticalStep) {
  Image I(10, 10, 0.0f);
  for (int Y = 0; Y < 10; ++Y)
    for (int X = 5; X < 10; ++X)
      I.at(X, Y) = 1.0f;
  Image Gx, Gy;
  sobel(I, Gx, Gy);
  // Strong horizontal gradient at the step, no vertical gradient inside.
  EXPECT_GT(std::abs(Gx.at(5, 5)), 1.0f);
  EXPECT_NEAR(Gy.at(5, 5), 0.0f, 1e-5);
}

TEST(ImageTest, GradientMagnitudeIsPythagorean) {
  Image Gx(2, 2, 3.0f), Gy(2, 2, 4.0f);
  Image M = gradientMagnitude(Gx, Gy);
  EXPECT_FLOAT_EQ(M.at(0, 0), 5.0f);
}

TEST(ImageTest, ResizePreservesConstant) {
  Image I(20, 20, 0.3f);
  Image S = resize(I, 7, 7);
  EXPECT_EQ(S.width(), 7);
  for (float P : S.data())
    EXPECT_NEAR(P, 0.3f, 1e-5);
}

TEST(ImageTest, PgmRoundTrip) {
  Image I(8, 6);
  Rng R(3);
  for (float &P : I.data())
    P = static_cast<float>(R.uniform());
  std::string Path = "/tmp/au_test_image.pgm";
  ASSERT_TRUE(writePgm(I, Path));
  Image Back = readPgm(Path);
  ASSERT_EQ(Back.width(), 8);
  ASSERT_EQ(Back.height(), 6);
  for (size_t K = 0; K != I.size(); ++K)
    EXPECT_NEAR(Back.data()[K], I.data()[K], 1.0 / 255.0 + 1e-6);
  std::remove(Path.c_str());
}

TEST(ImageTest, ReadPgmMissingFileIsEmpty) {
  EXPECT_TRUE(readPgm("/tmp/definitely_not_here.pgm").empty());
}

//===----------------------------------------------------------------------===//
// SSIM / edge F1
//===----------------------------------------------------------------------===//

TEST(SsimTest, IdenticalImagesScoreOne) {
  Image I(16, 16);
  Rng R(19);
  for (float &P : I.data())
    P = static_cast<float>(R.uniform());
  EXPECT_NEAR(ssim(I, I), 1.0, 1e-9);
}

TEST(SsimTest, DifferentImagesScoreBelowOne) {
  Image A(16, 16, 0.0f), B(16, 16, 0.0f);
  Rng R(21);
  for (float &P : B.data())
    P = static_cast<float>(R.uniform());
  EXPECT_LT(ssim(A, B), 0.9);
}

TEST(SsimTest, Symmetric) {
  Image A(16, 16), B(16, 16);
  Rng R(23);
  for (float &P : A.data())
    P = static_cast<float>(R.uniform());
  for (float &P : B.data())
    P = static_cast<float>(R.uniform());
  EXPECT_NEAR(ssim(A, B), ssim(B, A), 1e-12);
}

TEST(SsimTest, CloserImageScoresHigher) {
  Image Truth(16, 16, 0.0f);
  for (int X = 4; X < 12; ++X)
    Truth.at(X, 8) = 1.0f;
  Image Close = Truth;
  Close.at(4, 8) = 0.0f; // One pixel off.
  Image Far(16, 16, 0.0f);
  EXPECT_GT(ssim(Close, Truth), ssim(Far, Truth));
}

TEST(EdgeF1Test, PerfectPredictionScoresOne) {
  Image T(10, 10, 0.0f);
  T.at(3, 3) = T.at(4, 3) = 1.0f;
  EXPECT_DOUBLE_EQ(edgeF1(T, T), 1.0);
}

TEST(EdgeF1Test, EmptyPredictionScoresZero) {
  Image T(10, 10, 0.0f);
  T.at(3, 3) = 1.0f;
  Image P(10, 10, 0.0f);
  EXPECT_DOUBLE_EQ(edgeF1(P, T), 0.0);
}

TEST(EdgeF1Test, ToleranceForgivesOffByOne) {
  Image T(10, 10, 0.0f);
  T.at(3, 3) = 1.0f;
  Image P(10, 10, 0.0f);
  P.at(4, 3) = 1.0f;
  EXPECT_DOUBLE_EQ(edgeF1(P, T, 1), 1.0);
  EXPECT_DOUBLE_EQ(edgeF1(P, T, 0), 0.0);
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, RendersAlignedColumns) {
  Table T({"Name", "Value"});
  T.addRow({"alpha", "1"});
  T.addRow({"bb", "22"});
  std::string S = T.render();
  EXPECT_NE(S.find("Name"), std::string::npos);
  EXPECT_NE(S.find("alpha"), std::string::npos);
  EXPECT_NE(S.find("----"), std::string::npos);
  EXPECT_EQ(T.numRows(), 2u);
}

TEST(TableTest, CsvEscapesCommas) {
  Table T({"A", "B"});
  T.addRow({"x,y", "1"});
  std::string Csv = T.renderCsv();
  EXPECT_NE(Csv.find("x;y,1"), std::string::npos);
}

TEST(TableTest, Formatters) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(static_cast<long long>(42)), "42");
  EXPECT_EQ(fmtPercent(0.845), "84.5%");
}
