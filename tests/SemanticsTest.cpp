//===- tests/SemanticsTest.cpp - Tests for the executable semantics ------===//
//
// Each test exercises one rule of Fig. 8 plus cross-rule properties
// (mode sensitivity, checkpoint isolation of theta, stuckness).
//
//===----------------------------------------------------------------------===//

#include "semantics/Interp.h"

#include <gtest/gtest.h>

using namespace au;
using namespace au::semantics;

namespace {
ConfigStmt config(const char *Name) {
  ConfigStmt C;
  C.ModelName = Name;
  C.Layers = {4, 3};
  return C;
}

Machine trMachine() {
  Machine M;
  M.Omega = Mode::TR;
  return M;
}
} // namespace

//===----------------------------------------------------------------------===//
// Rule ASSIGN
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, AssignUpdatesSigma) {
  Machine M = trMachine();
  EXPECT_TRUE(step(M, AssignStmt{"x", {1.0f, 2.0f}}));
  ASSERT_EQ(M.Sigma["x"].size(), 2u);
  EXPECT_FLOAT_EQ(M.Sigma["x"][1], 2.0f);
}

//===----------------------------------------------------------------------===//
// Rules CONFIG-TRAIN / CONFIG-TEST
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, ConfigTrainBuildsFreshModel) {
  Machine M = trMachine();
  EXPECT_TRUE(step(M, config("m")));
  ASSERT_TRUE(M.Theta.count("m"));
  EXPECT_FALSE(M.Theta["m"].empty());
}

TEST(SemanticsTest, ConfigIsNoopWhenModelExists) {
  Machine M = trMachine();
  step(M, config("m"));
  std::vector<float> Before = M.Theta["m"];
  ConfigStmt Other = config("m");
  Other.Layers = {9, 9, 9}; // Different config must not rebuild.
  EXPECT_TRUE(step(M, Other));
  EXPECT_EQ(M.Theta["m"], Before);
}

TEST(SemanticsTest, ConfigTestLoadsSavedModel) {
  Machine M;
  M.Omega = Mode::TS;
  M.SavedModels["m"] = {2.0f, 0.5f, 0.25f};
  EXPECT_TRUE(step(M, config("m")));
  EXPECT_EQ(M.Theta["m"], M.SavedModels["m"]);
}

TEST(SemanticsTest, ConfigTestStuckWithoutSavedModel) {
  Machine M;
  M.Omega = Mode::TS;
  EXPECT_FALSE(step(M, config("m")));
  EXPECT_TRUE(M.Theta.empty());
}

//===----------------------------------------------------------------------===//
// Rule EXTRACT
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, ExtractAppendsPrefixOfVariable) {
  Machine M = trMachine();
  step(M, AssignStmt{"size", {2.0f}});
  step(M, AssignStmt{"x", {7.0f, 8.0f, 9.0f}});
  EXPECT_TRUE(step(M, ExtractStmt{"ext", "size", "x"}));
  ASSERT_EQ(M.Pi.get("ext").size(), 2u);
  EXPECT_FLOAT_EQ(M.Pi.get("ext")[0], 7.0f);
  // Extract again: the rule concatenates.
  EXPECT_TRUE(step(M, ExtractStmt{"ext", "size", "x"}));
  EXPECT_EQ(M.Pi.get("ext").size(), 4u);
}

TEST(SemanticsTest, ExtractStuckOnMissingSizeOrVariable) {
  Machine M = trMachine();
  EXPECT_FALSE(step(M, ExtractStmt{"ext", "size", "x"}));
  step(M, AssignStmt{"size", {3.0f}});
  step(M, AssignStmt{"x", {1.0f}}); // Shorter than size.
  EXPECT_FALSE(step(M, ExtractStmt{"ext", "size", "x"}));
}

//===----------------------------------------------------------------------===//
// Rules TRAIN / TEST (au_NN)
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, NnTrainUpdatesThetaAndPi) {
  Machine M = trMachine();
  step(M, config("m"));
  step(M, AssignStmt{"size", {2.0f}});
  step(M, AssignStmt{"x", {0.5f, 0.25f}});
  step(M, ExtractStmt{"ext", "size", "x"});

  std::vector<float> ThetaBefore = M.Theta["m"];
  EXPECT_TRUE(step(M, NNStmt{"m", "ext", "wb"}));
  // pi[wbName] now holds the model output; pi[extName] is reset to bottom.
  EXPECT_FALSE(M.Pi.get("wb").empty());
  EXPECT_TRUE(M.Pi.get("ext").empty());
  // First TRAIN: gradient of empty previous output is zero, so theta is
  // unchanged; run again with outputs present and theta must move.
  EXPECT_EQ(M.Theta["m"], ThetaBefore);
  step(M, ExtractStmt{"ext", "size", "x"});
  EXPECT_TRUE(step(M, NNStmt{"m", "ext", "wb"}));
  EXPECT_NE(M.Theta["m"], ThetaBefore);
}

TEST(SemanticsTest, NnTestLeavesThetaUntouched) {
  Machine M;
  M.Omega = Mode::TS;
  M.SavedModels["m"] = buildModel(config("m"));
  step(M, config("m"));
  step(M, AssignStmt{"size", {1.0f}});
  step(M, AssignStmt{"x", {0.7f}});
  step(M, ExtractStmt{"ext", "size", "x"});
  std::vector<float> Before = M.Theta["m"];
  EXPECT_TRUE(step(M, NNStmt{"m", "ext", "wb"}));
  step(M, ExtractStmt{"ext", "size", "x"});
  EXPECT_TRUE(step(M, NNStmt{"m", "ext", "wb"}));
  EXPECT_EQ(M.Theta["m"], Before);
  EXPECT_FALSE(M.Pi.get("wb").empty());
}

TEST(SemanticsTest, NnStuckOnUnconfiguredModel) {
  Machine M = trMachine();
  EXPECT_FALSE(step(M, NNStmt{"ghost", "ext", "wb"}));
}

TEST(SemanticsTest, NnOutputArityMatchesLastLayer) {
  Machine M = trMachine();
  step(M, config("m")); // Layers {4, 3} -> 3 outputs.
  step(M, AssignStmt{"size", {1.0f}});
  step(M, AssignStmt{"x", {1.0f}});
  step(M, ExtractStmt{"ext", "size", "x"});
  step(M, NNStmt{"m", "ext", "wb"});
  EXPECT_EQ(M.Pi.get("wb").size(), 3u);
}

//===----------------------------------------------------------------------===//
// Rule WRITE-BACK
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, WriteBackCopiesPiIntoSigma) {
  Machine M = trMachine();
  M.Pi.set("wb", {3.0f, 4.0f});
  step(M, AssignStmt{"size", {2.0f}});
  EXPECT_TRUE(step(M, WriteBackStmt{"wb", "size", "y"}));
  ASSERT_EQ(M.Sigma["y"].size(), 2u);
  EXPECT_FLOAT_EQ(M.Sigma["y"][0], 3.0f);
  EXPECT_FLOAT_EQ(M.Sigma["y"][1], 4.0f);
}

TEST(SemanticsTest, WriteBackStuckWhenPiTooShort) {
  Machine M = trMachine();
  M.Pi.set("wb", {3.0f});
  step(M, AssignStmt{"size", {2.0f}});
  EXPECT_FALSE(step(M, WriteBackStmt{"wb", "size", "y"}));
}

//===----------------------------------------------------------------------===//
// Rule SERIALIZE
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, SerializeConcatenates) {
  Machine M = trMachine();
  M.Pi.set("a", {1.0f});
  M.Pi.set("b", {2.0f, 3.0f});
  EXPECT_TRUE(step(M, SerializeStmt{"a", "b"}));
  ASSERT_EQ(M.Pi.get("ab").size(), 3u);
  EXPECT_FLOAT_EQ(M.Pi.get("ab")[2], 3.0f);
}

//===----------------------------------------------------------------------===//
// Rules CHECKPOINT / RESTORE
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, CheckpointRestoreRollsBackSigmaAndPi) {
  Machine M = trMachine();
  step(M, AssignStmt{"x", {1.0f}});
  M.Pi.set("t", {5.0f});
  EXPECT_TRUE(step(M, CheckpointStmt{}));
  step(M, AssignStmt{"x", {9.0f}});
  M.Pi.set("t", {6.0f, 7.0f});
  EXPECT_TRUE(step(M, RestoreStmt{}));
  EXPECT_FLOAT_EQ(M.Sigma["x"][0], 1.0f);
  EXPECT_EQ(M.Pi.get("t").size(), 1u);
}

TEST(SemanticsTest, RestorePreservesTheta) {
  // The paper's key property: the model keeps learning across rollbacks.
  Machine M = trMachine();
  step(M, config("m"));
  step(M, AssignStmt{"size", {1.0f}});
  step(M, AssignStmt{"x", {0.3f}});
  step(M, CheckpointStmt{});
  // Two TRAIN steps move theta.
  step(M, ExtractStmt{"ext", "size", "x"});
  step(M, NNStmt{"m", "ext", "wb"});
  step(M, ExtractStmt{"ext", "size", "x"});
  step(M, NNStmt{"m", "ext", "wb"});
  std::vector<float> Trained = M.Theta["m"];
  EXPECT_TRUE(step(M, RestoreStmt{}));
  EXPECT_EQ(M.Theta["m"], Trained);
  EXPECT_TRUE(M.Pi.get("wb").empty()); // pi rolled back.
}

TEST(SemanticsTest, RestoreStuckWithoutCheckpoint) {
  Machine M = trMachine();
  EXPECT_FALSE(step(M, RestoreStmt{}));
}

TEST(SemanticsTest, RestoreIsRepeatable) {
  Machine M = trMachine();
  step(M, AssignStmt{"x", {1.0f}});
  step(M, CheckpointStmt{});
  for (int I = 0; I < 3; ++I) {
    step(M, AssignStmt{"x", {static_cast<float>(I + 10)}});
    EXPECT_TRUE(step(M, RestoreStmt{}));
    EXPECT_FLOAT_EQ(M.Sigma["x"][0], 1.0f);
  }
}

//===----------------------------------------------------------------------===//
// Whole programs and properties
//===----------------------------------------------------------------------===//

TEST(SemanticsTest, RunExecutesUntilStuck) {
  Machine M = trMachine();
  Program P = {
      AssignStmt{"size", {1.0f}},
      AssignStmt{"x", {2.0f}},
      config("m"),
      ExtractStmt{"ext", "size", "x"},
      NNStmt{"m", "ext", "wb"},
      RestoreStmt{}, // Stuck: no checkpoint.
      AssignStmt{"never", {0.0f}},
  };
  EXPECT_EQ(run(M, P), 5u);
  EXPECT_FALSE(M.Sigma.count("never"));
}

TEST(SemanticsTest, SkipAlwaysSteps) {
  Machine M = trMachine();
  EXPECT_TRUE(step(M, SkipStmt{}));
}

TEST(SemanticsTest, DeterministicAcrossRuns) {
  auto RunOnce = [] {
    Machine M = trMachine();
    Program P = {
        AssignStmt{"size", {2.0f}}, AssignStmt{"x", {0.1f, 0.9f}},
        config("m"),                ExtractStmt{"ext", "size", "x"},
        NNStmt{"m", "ext", "wb"},   ExtractStmt{"ext", "size", "x"},
        NNStmt{"m", "ext", "wb"},
    };
    run(M, P);
    return M.Pi.get("wb");
  };
  EXPECT_EQ(RunOnce(), RunOnce());
}

TEST(SemanticsTest, TrainAndTestAgreeOnStorePlumbing) {
  // Regardless of mode, au_NN must fill pi[wb] and reset pi[ext]. Only
  // theta's evolution differs.
  auto Plumb = [](Mode Omega) {
    Machine M;
    M.Omega = Omega;
    M.SavedModels["m"] = buildModel(config("m"));
    Program P = {
        AssignStmt{"size", {1.0f}},
        AssignStmt{"x", {0.4f}},
        config("m"),
        ExtractStmt{"ext", "size", "x"},
        NNStmt{"m", "ext", "wb"},
    };
    run(M, P);
    return std::make_pair(M.Pi.get("wb").size(), M.Pi.get("ext").size());
  };
  EXPECT_EQ(Plumb(Mode::TR), Plumb(Mode::TS));
}

TEST(SemanticsTest, BuildModelDeterministicPerConfig) {
  EXPECT_EQ(buildModel(config("m")), buildModel(config("m")));
  EXPECT_NE(buildModel(config("m")), buildModel(config("other")));
}

TEST(SemanticsTest, RunModelRespectsArityTag) {
  std::vector<float> Params = {2.0f, 0.1f, 0.2f, 0.3f};
  std::vector<float> Out = runModel(Params, {1.0f, 1.0f});
  EXPECT_EQ(Out.size(), 2u);
  for (float V : Out) {
    EXPECT_GE(V, -1.0f);
    EXPECT_LE(V, 1.0f);
  }
}
