//===- tests/CoreTest.cpp - Unit tests for the Autonomizer core ----------===//

#include "core/Checkpoint.h"
#include "core/DatabaseStore.h"
#include "core/Model.h"
#include "core/Runtime.h"

#include <gtest/gtest.h>

#include <cstdio>

using namespace au;

//===----------------------------------------------------------------------===//
// DatabaseStore (pi)
//===----------------------------------------------------------------------===//

TEST(DatabaseStoreTest, AppendConcatenates) {
  DatabaseStore Db;
  Db.append("x", {1.0f, 2.0f});
  Db.append("x", 3.0f);
  ASSERT_EQ(Db.get("x").size(), 3u);
  EXPECT_FLOAT_EQ(Db.get("x")[2], 3.0f);
}

TEST(DatabaseStoreTest, UnmappedNameIsBottom) {
  DatabaseStore Db;
  EXPECT_TRUE(Db.get("nothing").empty());
  EXPECT_FALSE(Db.contains("nothing"));
}

TEST(DatabaseStoreTest, ResetMapsToBottom) {
  DatabaseStore Db;
  Db.append("x", 1.0f);
  Db.reset("x");
  EXPECT_FALSE(Db.contains("x"));
  EXPECT_TRUE(Db.get("x").empty());
}

TEST(DatabaseStoreTest, SerializeConcatenatesListsAndNames) {
  DatabaseStore Db;
  Db.append("PX", {1.0f});
  Db.append("PY", {2.0f, 3.0f});
  std::string Name = Db.serialize({"PX", "PY"});
  EXPECT_EQ(Name, "PXPY");
  ASSERT_EQ(Db.get(Name).size(), 3u);
  EXPECT_FLOAT_EQ(Db.get(Name)[0], 1.0f);
  EXPECT_FLOAT_EQ(Db.get(Name)[2], 3.0f);
}

TEST(DatabaseStoreTest, LifetimeAppendedSurvivesReset) {
  DatabaseStore Db;
  Db.append("x", {1.0f, 2.0f});
  Db.reset("x");
  Db.append("x", 3.0f);
  EXPECT_EQ(Db.lifetimeAppended(), 3u);
  EXPECT_EQ(Db.totalValues(), 1u);
}

//===----------------------------------------------------------------------===//
// CheckpointManager
//===----------------------------------------------------------------------===//

namespace {
struct ToyState : Checkpointable {
  std::vector<int> Values;
  void saveState(std::vector<uint8_t> &Out) const override {
    Out.assign(reinterpret_cast<const uint8_t *>(Values.data()),
               reinterpret_cast<const uint8_t *>(Values.data()) +
                   Values.size() * sizeof(int));
  }
  void loadState(const std::vector<uint8_t> &In) override {
    Values.assign(reinterpret_cast<const int *>(In.data()),
                  reinterpret_cast<const int *>(In.data() + In.size()));
  }
};
} // namespace

TEST(CheckpointTest, RestoresRegionsObjectsAndDb) {
  CheckpointManager M;
  double Pod = 1.5;
  ToyState Obj;
  Obj.Values = {1, 2, 3};
  M.registerRegion(&Pod, sizeof(Pod));
  M.registerObject(&Obj);
  DatabaseStore Db;
  Db.append("x", 7.0f);
  M.checkpoint(Db);

  Pod = 99.0;
  Obj.Values = {9};
  Db.append("x", 8.0f);
  Db.append("y", 1.0f);
  M.restore(Db);

  EXPECT_DOUBLE_EQ(Pod, 1.5);
  ASSERT_EQ(Obj.Values.size(), 3u);
  EXPECT_EQ(Obj.Values[2], 3);
  EXPECT_EQ(Db.get("x").size(), 1u);
  EXPECT_FALSE(Db.contains("y"));
}

TEST(CheckpointTest, RestoreIsRepeatable) {
  CheckpointManager M;
  int V = 10;
  M.registerRegion(&V, sizeof(V));
  DatabaseStore Db;
  M.checkpoint(Db);
  for (int I = 0; I < 3; ++I) {
    V = 50 + I;
    M.restore(Db);
    EXPECT_EQ(V, 10);
  }
}

TEST(CheckpointTest, SnapshotBytesAccounting) {
  CheckpointManager M;
  double Pod = 0.0;
  M.registerRegion(&Pod, sizeof(Pod));
  DatabaseStore Db;
  Db.append("x", {1.0f, 2.0f});
  M.checkpoint(Db);
  EXPECT_EQ(M.snapshotBytes(), sizeof(double) + 2 * sizeof(float));
}

//===----------------------------------------------------------------------===//
// Models
//===----------------------------------------------------------------------===//

static ModelConfig slConfig(const char *Name) {
  ModelConfig C;
  C.Name = Name;
  C.Algo = Algorithm::AdamOpt;
  C.HiddenLayers = {16};
  C.Seed = 5;
  return C;
}

TEST(SlModelTest, BuildsLazilyAndTrains) {
  SlModel M(slConfig("m"));
  EXPECT_FALSE(M.isBuilt());
  std::vector<WriteBackSpec> Outs = {{"A", 1}, {"B", 1}};
  Rng R(7);
  for (int I = 0; I < 80; ++I) {
    float X = static_cast<float>(R.uniform(-1, 1));
    M.addSample({X, X * X}, {2 * X, -X}, Outs);
  }
  EXPECT_TRUE(M.isBuilt());
  EXPECT_EQ(M.inputSize(), 2);
  EXPECT_EQ(M.numSamples(), 80u);
  M.train(200, 16);
  std::vector<float> P = M.predict({0.5f, 0.25f});
  EXPECT_NEAR(P[0], 1.0f, 0.4f);
  EXPECT_NEAR(P[1], -0.5f, 0.4f);
}

TEST(SlModelTest, SaveLoadRoundTrip) {
  SlModel A(slConfig("m"));
  std::vector<WriteBackSpec> Outs = {{"Y", 1}};
  Rng R(9);
  for (int I = 0; I < 50; ++I) {
    float X = static_cast<float>(R.uniform(0, 1));
    A.addSample({X}, {3 * X}, Outs);
  }
  A.train(40, 8);
  std::string Path = "/tmp/au_test_sl.aumodel";
  ASSERT_TRUE(A.save(Path));

  SlModel B(slConfig("m"));
  ASSERT_TRUE(B.load(Path));
  EXPECT_TRUE(B.isBuilt());
  EXPECT_EQ(B.outputs().size(), 1u);
  EXPECT_EQ(B.outputs().front().Name, "Y");
  EXPECT_FLOAT_EQ(A.predict({0.4f})[0], B.predict({0.4f})[0]);
  std::remove(Path.c_str());
}

TEST(SlModelTest, LoadRejectsGarbage) {
  std::string Path = "/tmp/au_test_garbage.aumodel";
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  std::fputs("not a model", F);
  std::fclose(F);
  SlModel M(slConfig("m"));
  EXPECT_FALSE(M.load(Path));
  std::remove(Path.c_str());
}

static ModelConfig rlConfig(const char *Name) {
  ModelConfig C;
  C.Name = Name;
  C.Algo = Algorithm::QLearn;
  C.HiddenLayers = {8};
  C.Seed = 6;
  return C;
}

TEST(RlModelTest, BuildsOnFirstStepAndActs) {
  RlModel M(rlConfig("q"));
  WriteBackSpec Out{"output", 3};
  int A = M.step({0.1f, 0.2f}, 0.0f, false, Out, true);
  EXPECT_GE(A, 0);
  EXPECT_LT(A, 3);
  EXPECT_TRUE(M.isBuilt());
  EXPECT_EQ(M.inputSize(), 2);
  EXPECT_EQ(M.outputs().front().Size, 3);
}

TEST(RlModelTest, DeploymentStepsDoNotDisturbChain) {
  RlModel M(rlConfig("q"));
  WriteBackSpec Out{"output", 2};
  M.step({0.0f}, 0.0f, false, Out, true);
  long StepsBefore = 0;
  // Several deployment (Learning=false) steps must not feed the learner.
  M.step({0.3f}, 0.0f, false, Out, false);
  M.step({0.6f}, 0.0f, false, Out, false);
  StepsBefore = M.learner()->stepsObserved();
  // The next learning step observes exactly one more transition.
  M.step({1.0f}, 1.0f, false, Out, true);
  EXPECT_EQ(M.learner()->stepsObserved(), StepsBefore + 1);
}

TEST(RlModelTest, SaveLoadRoundTrip) {
  RlModel A(rlConfig("q"));
  WriteBackSpec Out{"output", 4};
  Rng R(11);
  for (int I = 0; I < 30; ++I)
    A.step({static_cast<float>(R.uniform())}, 0.1f, false, Out, true);
  std::string Path = "/tmp/au_test_rl.aumodel";
  ASSERT_TRUE(A.save(Path));

  RlModel B(rlConfig("q"));
  ASSERT_TRUE(B.load(Path));
  std::vector<float> QA = A.qValues({0.5f});
  std::vector<float> QB = B.qValues({0.5f});
  ASSERT_EQ(QA.size(), QB.size());
  for (size_t I = 0; I != QA.size(); ++I)
    EXPECT_FLOAT_EQ(QA[I], QB[I]);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Runtime primitives
//===----------------------------------------------------------------------===//

TEST(RuntimeTest, ExtractAppendsAndCounts) {
  Runtime RT(Mode::TR);
  float Vals[3] = {1, 2, 3};
  RT.extract("X", 3, Vals);
  RT.extract("X", 1.5f);
  EXPECT_EQ(RT.db().get("X").size(), 4u);
  EXPECT_EQ(RT.stats().NumExtract, 2u);
  EXPECT_EQ(RT.stats().FloatsExtracted, 4u);
  EXPECT_EQ(RT.stats().traceBytes(), 4 * sizeof(float));
}

TEST(RuntimeTest, ExtractDoubleConverts) {
  Runtime RT(Mode::TR);
  double Vals[2] = {1.25, -2.5};
  RT.extract("D", 2, Vals);
  EXPECT_FLOAT_EQ(RT.db().get("D")[1], -2.5f);
}

TEST(RuntimeTest, ConfigIsIdempotent) {
  Runtime RT(Mode::TR);
  ModelConfig C;
  C.Name = "m";
  C.HiddenLayers = {4};
  Model *A = RT.config(C);
  Model *B = RT.config(C);
  EXPECT_EQ(A, B);
  EXPECT_EQ(RT.stats().NumConfig, 2u);
}

TEST(RuntimeTest, SupervisedTrainPredictCycle) {
  Runtime RT(Mode::TR);
  ModelConfig C;
  C.Name = "lin";
  C.HiddenLayers = {16};
  C.Seed = 21;
  RT.config(C);

  Rng R(22);
  for (int I = 0; I < 120; ++I) {
    float X = static_cast<float>(R.uniform(-1, 1));
    RT.extract("F", X);
    RT.nn("lin", "F", {{"OUT", 1}});
    // In TR mode the program variable holds the desirable value.
    float Desired = 4 * X + 1;
    RT.writeBack("OUT", 1, &Desired);
    // au_NN resets the extraction list each iteration.
    EXPECT_TRUE(RT.db().get("F").empty());
  }
  RT.trainSupervised("lin", 60, 16);
  RT.switchMode(Mode::TS);

  float X = 0.5f;
  RT.extract("F", X);
  RT.nn("lin", "F", {{"OUT", 1}});
  float Pred = 0.0f;
  RT.writeBack("OUT", 1, &Pred);
  EXPECT_NEAR(Pred, 3.0f, 0.6f);
}

TEST(RuntimeTest, MultiOutputLabelsAssembleInDeclaredOrder) {
  Runtime RT(Mode::TR);
  ModelConfig C;
  C.Name = "multi";
  C.HiddenLayers = {8};
  RT.config(C);
  for (int I = 0; I < 40; ++I) {
    float X = static_cast<float>(I) / 40.0f;
    RT.extract("F", X);
    RT.nn("multi", "F", {{"A", 1}, {"B", 1}});
    // Write back in the opposite order to the declaration.
    float BV = -X;
    RT.writeBack("B", 1, &BV);
    float AV = X;
    RT.writeBack("A", 1, &AV);
  }
  auto *M = static_cast<SlModel *>(RT.getModel("multi"));
  ASSERT_TRUE(M);
  EXPECT_EQ(M->numSamples(), 40u);
  RT.trainSupervised("multi", 50, 8);
  RT.switchMode(Mode::TS);
  RT.extract("F", 0.5f);
  RT.nn("multi", "F", {{"A", 1}, {"B", 1}});
  float AV = 0, BV = 0;
  RT.writeBack("A", 1, &AV);
  RT.writeBack("B", 1, &BV);
  EXPECT_GT(AV, 0.0f);
  EXPECT_LT(BV, 0.0f);
}

TEST(RuntimeTest, SerializeReturnsCombinedName) {
  Runtime RT(Mode::TR);
  RT.extract("PX", 1.0f);
  RT.extract("PY", 2.0f);
  std::string Name = RT.serialize({"PX", "PY"});
  EXPECT_EQ(Name, "PXPY");
  EXPECT_EQ(RT.db().get(Name).size(), 2u);
}

TEST(RuntimeTest, RlNnStepsAndWritesAction) {
  Runtime RT(Mode::TR);
  ModelConfig C;
  C.Name = "agent";
  C.Algo = Algorithm::QLearn;
  C.HiddenLayers = {8};
  RT.config(C);
  for (int I = 0; I < 10; ++I) {
    RT.extract("S", static_cast<float>(I) / 10.0f);
    RT.nn("agent", "S", /*Reward=*/0.5f, /*Terminal=*/false,
          {"output", 4});
    int Action = -1;
    RT.writeBack("output", 4, &Action);
    EXPECT_GE(Action, 0);
    EXPECT_LT(Action, 4);
  }
  Model *M = RT.getModel("agent");
  ASSERT_TRUE(M);
  EXPECT_TRUE(RlModel::classof(M));
  EXPECT_TRUE(M->isBuilt());
}

TEST(RuntimeTest, CheckpointRestoreExcludesModels) {
  Runtime RT(Mode::TR);
  ModelConfig C;
  C.Name = "agent";
  C.Algo = Algorithm::QLearn;
  C.HiddenLayers = {8};
  RT.config(C);

  double GameState = 1.0;
  RT.checkpoints().registerRegion(&GameState, sizeof(GameState));
  RT.extract("S", 0.1f);
  RT.checkpoint();

  // Mutate program state, pi, and train the model.
  GameState = 42.0;
  RT.extract("S", 0.2f);
  for (int I = 0; I < 20; ++I) {
    RT.extract("T", static_cast<float>(I));
    RT.nn("agent", "T", 1.0f, false, {"output", 2});
  }
  auto *M = static_cast<RlModel *>(RT.getModel("agent"));
  long Steps = M->learner()->stepsObserved();

  RT.restore();
  // sigma and pi roll back...
  EXPECT_DOUBLE_EQ(GameState, 1.0);
  EXPECT_EQ(RT.db().get("S").size(), 1u);
  // ...but the model keeps its accumulated learning.
  EXPECT_EQ(M->learner()->stepsObserved(), Steps);
}

TEST(RuntimeTest, TsModeLoadsSavedModel) {
  std::string Dir = "/tmp";
  {
    Runtime RT(Mode::TR, Dir);
    ModelConfig C;
    C.Name = "persisted";
    C.HiddenLayers = {8};
    C.Seed = 77;
    RT.config(C);
    Rng R(78);
    for (int I = 0; I < 60; ++I) {
      float X = static_cast<float>(R.uniform(0, 1));
      RT.extract("F", X);
      RT.nn("persisted", "F", {{"Y", 1}});
      float Label = 2 * X;
      RT.writeBack("Y", 1, &Label);
    }
    RT.trainSupervised("persisted", 40, 16);
    ASSERT_TRUE(RT.saveModel("persisted"));
  }
  {
    Runtime RT(Mode::TS, Dir);
    ModelConfig C;
    C.Name = "persisted";
    RT.config(C); // CONFIG-TEST loads from disk.
    RT.extract("F", 0.5f);
    RT.nn("persisted", "F", {{"Y", 1}});
    float Pred = 0.0f;
    RT.writeBack("Y", 1, &Pred);
    EXPECT_NEAR(Pred, 1.0f, 0.5f);
  }
  std::remove("/tmp/persisted.aumodel");
}

TEST(RuntimeTest, ModelPathComposition) {
  Runtime A(Mode::TR, "/models");
  EXPECT_EQ(A.modelPath("m"), "/models/m.aumodel");
  Runtime B(Mode::TR);
  EXPECT_EQ(B.modelPath("m"), "m.aumodel");
}

TEST(RuntimeTest, StatsCountPrimitives) {
  Runtime RT(Mode::TR);
  ModelConfig C;
  C.Name = "m";
  C.HiddenLayers = {4};
  RT.config(C);
  RT.extract("X", 1.0f);
  RT.serialize({"X"});
  RT.nn("m", "X", {{"Y", 1}});
  float V = 1.0f;
  RT.writeBack("Y", 1, &V);
  RT.checkpoint();
  RT.restore();
  const RuntimeStats &S = RT.stats();
  EXPECT_EQ(S.NumConfig, 1u);
  EXPECT_EQ(S.NumExtract, 1u);
  EXPECT_EQ(S.NumSerialize, 1u);
  EXPECT_EQ(S.NumNn, 1u);
  EXPECT_EQ(S.NumWriteBack, 1u);
  EXPECT_EQ(S.NumCheckpoint, 1u);
  EXPECT_EQ(S.NumRestore, 1u);
}

//===----------------------------------------------------------------------===//
// Handle-keyed hot path (DESIGN.md §7)
//===----------------------------------------------------------------------===//

TEST(NameTableTest, InternIsIdempotentAndDense) {
  NameTable T;
  NameId A = T.intern("alpha");
  NameId B = T.intern("beta");
  EXPECT_EQ(A, 0u);
  EXPECT_EQ(B, 1u);
  EXPECT_EQ(T.intern("alpha"), A);
  EXPECT_EQ(T.size(), 2u);
  EXPECT_EQ(T.name(A), "alpha");
  EXPECT_EQ(T.find("beta"), B);
  EXPECT_EQ(T.find("gamma"), InvalidNameId);
}

TEST(NameTableTest, NameReferencesStayStableAcrossGrowth) {
  NameTable T;
  const std::string &First = T.name(T.intern("first"));
  for (int I = 0; I < 1000; ++I)
    T.intern("n" + std::to_string(I));
  EXPECT_EQ(First, "first"); // No reallocation moved the string out.
  EXPECT_EQ(T.find("first"), 0u);
}

TEST(DatabaseStoreTest, RvalueAppendAdoptsBuffer) {
  DatabaseStore Db;
  std::vector<float> V = {1.0f, 2.0f, 3.0f};
  const float *Buf = V.data();
  Db.append("x", std::move(V));
  ASSERT_EQ(Db.get("x").size(), 3u);
  EXPECT_EQ(Db.get("x").data(), Buf); // Adopted, not copied.
  // Appending to an already-mapped slot concatenates as usual.
  Db.append("x", std::vector<float>{4.0f});
  ASSERT_EQ(Db.get("x").size(), 4u);
  EXPECT_FLOAT_EQ(Db.get("x")[3], 4.0f);
  EXPECT_EQ(Db.lifetimeAppended(), 4u);
}

TEST(DatabaseStoreTest, ClearDropsEntriesKeepsNamesAndLifetime) {
  DatabaseStore Db;
  NameId X = Db.intern("x");
  Db.append(X, 1.0f);
  Db.append("y", {2.0f, 3.0f});
  Db.clear();
  EXPECT_EQ(Db.numEntries(), 0u);
  EXPECT_EQ(Db.totalValues(), 0u);
  EXPECT_FALSE(Db.contains(X));
  // Names and ids survive; the lifetime counter survives (Table 2).
  EXPECT_EQ(Db.intern("x"), X);
  EXPECT_EQ(Db.lifetimeAppended(), 3u);
  Db.append(X, 5.0f);
  EXPECT_EQ(Db.lifetimeAppended(), 4u);
}

TEST(DatabaseStoreTest, HandleSerializeIsLazyUntilRead) {
  DatabaseStore Db;
  NameId A = Db.intern("A"), B = Db.intern("B");
  const float AVals[] = {1.0f, 2.0f};
  Db.append(A, AVals, 2);
  Db.append(B, 3.0f);
  NameId C = Db.serialize({A, B});
  EXPECT_EQ(Db.nameOf(C), "AB");
  // view() exposes spans over the source buffers — zero copies.
  SerializedView V = Db.view(C);
  EXPECT_EQ(V.size(), 3u);
  ASSERT_EQ(V.numSpans(), 2u);
  EXPECT_EQ(V.spanData(0), Db.get(A).data());
  EXPECT_EQ(V.spanData(1), Db.get(B).data());
  float Gathered[3];
  V.copyTo(Gathered);
  EXPECT_FLOAT_EQ(Gathered[2], 3.0f);
  // get() materializes to the same values.
  ASSERT_EQ(Db.get(C).size(), 3u);
  EXPECT_FLOAT_EQ(Db.get(C)[0], 1.0f);
  EXPECT_FLOAT_EQ(Db.get(C)[2], 3.0f);
}

TEST(DatabaseStoreTest, ConsumingSerializeMapsSourcesToBottom) {
  DatabaseStore Db;
  NameId A = Db.intern("A"), B = Db.intern("B");
  const float AVals[] = {1.0f, 2.0f};
  Db.append(A, AVals, 2);
  Db.append(B, 3.0f);
  NameId C = Db.serialize({A, B}, /*Consume=*/true);
  EXPECT_FALSE(Db.contains(A));
  EXPECT_FALSE(Db.contains(B));
  // The consumed sources' bytes stay readable through the spans.
  ASSERT_EQ(Db.get(C).size(), 3u);
  EXPECT_FLOAT_EQ(Db.get(C)[1], 2.0f);
  EXPECT_FLOAT_EQ(Db.get(C)[2], 3.0f);
}

TEST(DatabaseStoreTest, SerializeDuplicateSourceCountsTwice) {
  DatabaseStore Db;
  NameId A = Db.intern("A"), B = Db.intern("B");
  const float AVals[] = {1.0f, 2.0f};
  Db.append(A, AVals, 2);
  Db.append(B, 3.0f);
  // {A, B, A}: A's list appears twice, even when the walk consumes A at
  // its first occurrence.
  NameId C = Db.serialize({A, B, A}, /*Consume=*/true);
  EXPECT_EQ(Db.nameOf(C), "ABA");
  ASSERT_EQ(Db.get(C).size(), 5u);
  EXPECT_FLOAT_EQ(Db.get(C)[3], 1.0f);
  EXPECT_FLOAT_EQ(Db.get(C)[4], 2.0f);
}

TEST(DatabaseStoreTest, SerializeCombinedNameAmongSources) {
  DatabaseStore Db;
  // strcat("X", "") == "X": the combined entry is one of its own sources.
  NameId X = Db.intern("X"), E = Db.intern("");
  const float XVals[] = {1.0f, 2.0f};
  Db.append(X, XVals, 2);
  Db.append(E, 3.0f);
  NameId C = Db.serialize({X, E});
  EXPECT_EQ(C, X);
  ASSERT_EQ(Db.get(C).size(), 3u);
  EXPECT_FLOAT_EQ(Db.get(C)[0], 1.0f);
  EXPECT_FLOAT_EQ(Db.get(C)[2], 3.0f);
  // Serialize the (now lazy) entry with itself again: flattens its own
  // recorded spans rather than reading the list being rewritten.
  NameId C2 = Db.serialize({X, E});
  EXPECT_EQ(C2, X);
  ASSERT_EQ(Db.get(C2).size(), 4u);
  EXPECT_FLOAT_EQ(Db.get(C2)[2], 3.0f);
  EXPECT_FLOAT_EQ(Db.get(C2)[3], 3.0f);
}

TEST(DatabaseStoreTest, NestedSerializeFlattensToConcreteSpans) {
  DatabaseStore Db;
  NameId A = Db.intern("A"), B = Db.intern("B"), C = Db.intern("C");
  Db.append(A, 1.0f);
  Db.append(B, 2.0f);
  Db.append(C, 3.0f);
  NameId AB = Db.serialize({A, B});
  NameId ABC = Db.serialize({AB, C});
  EXPECT_EQ(Db.nameOf(ABC), "ABC");
  // The outer entry's spans reference A and B directly, not the lazy AB.
  SerializedView V = Db.view(ABC);
  ASSERT_EQ(V.numSpans(), 3u);
  EXPECT_EQ(V.spanData(0), Db.get(A).data());
  ASSERT_EQ(Db.get(ABC).size(), 3u);
  EXPECT_FLOAT_EQ(Db.get(ABC)[2], 3.0f);
}

TEST(RuntimeTest, StringAndHandleTracesAreEquivalent) {
  // The same RL deployment loop driven once through the string API and
  // once through interned handles must be observationally identical: same
  // actions, same pi contents, same primitive counts.
  auto Configure = [](Runtime &RT) {
    ModelConfig C;
    C.Name = "agent";
    C.Algo = Algorithm::QLearn;
    C.HiddenLayers = {8};
    C.Seed = 11;
    RT.config(C);
  };
  Runtime S(Mode::TR), H(Mode::TR);
  Configure(S);
  Configure(H);
  NameId PX = H.intern("PX"), PY = H.intern("PY");
  NameId Agent = H.intern("agent"), Out = H.intern("output");

  for (int I = 0; I < 50; ++I) {
    float X = static_cast<float>(I) * 0.02f;
    float Y = 1.0f - X;
    bool Term = I % 17 == 16;

    S.extract("PX", X);
    S.extract("PY", Y);
    S.nn("agent", S.serialize({"PX", "PY"}), 0.25f, Term, {"output", 3});
    int ActionS = -1;
    S.writeBack("output", 3, &ActionS);

    H.extract(PX, X);
    H.extract(PY, Y);
    H.nn(Agent, H.serialize({PX, PY}), 0.25f, Term, {Out, 3});
    int ActionH = -1;
    H.writeBack(Out, 3, &ActionH);

    EXPECT_EQ(ActionS, ActionH) << "diverged at step " << I;
    EXPECT_TRUE(H.db().get(PX).empty()); // Consumed by serialize.
  }
  EXPECT_EQ(S.stats().NumExtract, H.stats().NumExtract);
  EXPECT_EQ(S.stats().FloatsExtracted, H.stats().FloatsExtracted);
  EXPECT_EQ(S.stats().NumSerialize, H.stats().NumSerialize);
  EXPECT_EQ(S.stats().NumNn, H.stats().NumNn);
  EXPECT_EQ(S.stats().NumWriteBack, H.stats().NumWriteBack);
  EXPECT_EQ(S.db().numEntries(), H.db().numEntries());
  EXPECT_EQ(S.db().totalValues(), H.db().totalValues());
  EXPECT_EQ(S.db().lifetimeAppended(), H.db().lifetimeAppended());
}

TEST(RuntimeTest, NnBatchMatchesScalarPredictions) {
  Runtime RT(Mode::TR);
  ModelConfig C;
  C.Name = "m";
  C.HiddenLayers = {16};
  C.Seed = 33;
  RT.config(C);
  Rng R(34);
  for (int I = 0; I < 80; ++I) {
    float X = static_cast<float>(R.uniform(-1, 1));
    RT.extract("F", X);
    RT.nn("m", "F", {{"Y", 1}});
    float Label = 3 * X - 1;
    RT.writeBack("Y", 1, &Label);
  }
  RT.trainSupervised("m", 30, 16);
  RT.switchMode(Mode::TS);

  NameId M = RT.intern("m"), F = RT.intern("F"), Y = RT.intern("Y");
  const int Rows = 6;
  float Xs[Rows] = {-0.9f, -0.3f, 0.0f, 0.2f, 0.6f, 1.0f};

  float Scalar[Rows];
  for (int I = 0; I < Rows; ++I) {
    RT.extract(F, Xs[I]);
    RT.nn(M, F, {{Y, 1}});
    RT.writeBack(Y, 1, &Scalar[I]);
  }

  RT.extract(F, Rows, Xs); // All rows back to back.
  RT.nnBatch(M, F, Rows, {{Y, 1}});
  float Batched[Rows];
  RT.writeBack(Y, Rows, Batched);
  for (int I = 0; I < Rows; ++I)
    EXPECT_FLOAT_EQ(Batched[I], Scalar[I]) << "row " << I;
}

TEST(CheckpointTest, DirtyTrackingStressBitIdentical) {
  // Many regions, objects and pi slots; repeated mutate/restore rounds with
  // different dirty subsets each round must restore bit-identically while
  // re-copying only the dirty slice at each checkpoint.
  Runtime RT(Mode::TR);
  CheckpointManager &M = RT.checkpoints();
  DatabaseStore &Db = RT.db();

  constexpr int NumRegions = 16, NumSlots = 64;
  std::vector<double> Pods(NumRegions);
  std::vector<ToyState> Objs(4);
  for (int I = 0; I < NumRegions; ++I) {
    Pods[I] = I * 1.25;
    M.registerRegion(&Pods[I], sizeof(double));
  }
  for (int I = 0; I < 4; ++I) {
    Objs[I].Values = {I, I + 1, I + 2};
    M.registerObject(&Objs[I]);
  }
  std::vector<NameId> Slots;
  for (int I = 0; I < NumSlots; ++I) {
    NameId Id = Db.intern("slot" + std::to_string(I));
    const float Init[] = {static_cast<float>(I), static_cast<float>(2 * I)};
    Db.append(Id, Init, 2);
    Slots.push_back(Id);
  }

  RT.checkpoint();
  size_t FullCopies = M.lastCheckpointCopies();
  EXPECT_GE(FullCopies, static_cast<size_t>(NumRegions + NumSlots));

  // Shadow baseline: what the latest checkpoint holds (re-checkpointing
  // after a mutation makes that mutation the new baseline).
  std::vector<double> BasePods = Pods;
  std::vector<std::vector<int>> BaseObjs;
  for (const ToyState &O : Objs)
    BaseObjs.push_back(O.Values);
  std::vector<std::vector<float>> BaseSlots;
  for (NameId Id : Slots)
    BaseSlots.push_back(Db.get(Id));

  Rng R(99);
  for (int Round = 0; Round < 8; ++Round) {
    // Dirty a different, small subset each round.
    for (int K = 0; K < 5; ++K) {
      int I = static_cast<int>(R.uniform(0, NumSlots - 1));
      Db.append(Slots[I], static_cast<float>(Round));
    }
    Pods[Round % NumRegions] = -1.0 - Round;
    Objs[Round % 4].Values.push_back(Round);

    if (Round % 2 == 1) {
      // Re-checkpoint: only the dirty slice re-copies (O(delta)), and the
      // mutations above become the new baseline.
      RT.checkpoint();
      EXPECT_LT(M.lastCheckpointCopies(), FullCopies / 2)
          << "round " << Round;
      BasePods = Pods;
      for (int I = 0; I < 4; ++I)
        BaseObjs[I] = Objs[I].Values;
      for (int I = 0; I < NumSlots; ++I)
        BaseSlots[I] = Db.get(Slots[I]);
      // Dirty a little more so the restore below has work to do.
      Db.append(Slots[Round % NumSlots], -7.0f);
    }

    // Restore must rewind to the latest baseline, bit for bit, repeatedly.
    RT.restore();
    for (int I = 0; I < NumRegions; ++I)
      ASSERT_DOUBLE_EQ(Pods[I], BasePods[I]) << "round " << Round;
    for (int I = 0; I < 4; ++I)
      ASSERT_EQ(Objs[I].Values, BaseObjs[I]) << "round " << Round;
    for (int I = 0; I < NumSlots; ++I)
      ASSERT_EQ(Db.get(Slots[I]), BaseSlots[I])
          << "round " << Round << " slot " << I;
  }
}

TEST(CheckpointTest, SlotsInternedAfterSnapshotRollBackToBottom) {
  Runtime RT(Mode::TR);
  RT.extract("old", 1.0f);
  RT.checkpoint();
  NameId Fresh = RT.intern("fresh");
  RT.extract(Fresh, 2.0f);
  RT.restore();
  EXPECT_FALSE(RT.db().contains(Fresh));
  EXPECT_EQ(RT.db().get("old").size(), 1u);
  // And the store keeps working for the rolled-back slot.
  RT.extract(Fresh, 3.0f);
  ASSERT_EQ(RT.db().get(Fresh).size(), 1u);
  EXPECT_FLOAT_EQ(RT.db().get(Fresh)[0], 3.0f);
}
