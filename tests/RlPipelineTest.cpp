//===- tests/RlPipelineTest.cpp - Parallel actor pipeline tests ----------===//
//
// Covers the parallel-rollout machinery of DESIGN.md §8: the sharded replay
// ring, the K-actor training loop's bitwise determinism across thread
// counts, and the batched greedy evaluator's equivalence with the serial
// one. Each TEST runs as its own ctest process (gtest_discover_tests), so
// replacing the global thread pool inside a test is safe.
//
//===----------------------------------------------------------------------===//

#include "apps/common/RlHarness.h"
#include "apps/flappy/Flappy.h"
#include "nn/ReplayBuffer.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace au;
using namespace au::apps;
using nn::ShardedReplay;
using nn::Transition;

//===----------------------------------------------------------------------===//
// Sharded replay ring
//===----------------------------------------------------------------------===//

namespace {
Transition makeT(float Tag) {
  return Transition{{Tag, Tag + 0.5f}, static_cast<int>(Tag), Tag * 10.0f,
                    {Tag + 1.0f, Tag + 1.5f}, false};
}
} // namespace

TEST(ReplayRing, SingleShardIsFifoWithWraparound) {
  ShardedReplay R;
  R.configure(/*NumShards=*/1, /*Capacity=*/4);
  for (int I = 0; I < 6; ++I)
    R.push(0, makeT(static_cast<float>(I)));
  // Pushes 0..5 into capacity 4: the two oldest are evicted.
  ASSERT_EQ(R.size(), 4u);
  for (size_t I = 0; I < 4; ++I) {
    EXPECT_FLOAT_EQ(R.at(I).State[0], static_cast<float>(I + 2));
    EXPECT_EQ(R.at(I).Action, static_cast<int>(I + 2));
  }
}

TEST(ReplayRing, MergedViewIsShardMajorOldestFirst) {
  ShardedReplay R;
  R.configure(/*NumShards=*/3, /*Capacity=*/9); // 3 slots per shard.
  // Interleave insertions across shards; the merged view must depend only
  // on what landed in each shard, in age order, never on insertion
  // interleaving.
  R.push(2, makeT(20));
  R.push(0, makeT(0));
  R.push(1, makeT(10));
  R.push(0, makeT(1));
  R.push(2, makeT(21));
  ASSERT_EQ(R.size(), 5u);
  const float Expect[] = {0, 1, 10, 20, 21};
  for (size_t I = 0; I < 5; ++I)
    EXPECT_FLOAT_EQ(R.at(I).State[0], Expect[I]);
}

TEST(ReplayRing, PerShardCapacityEvictsOldest) {
  ShardedReplay R;
  R.configure(/*NumShards=*/2, /*Capacity=*/4); // 2 slots per shard.
  EXPECT_EQ(R.shardCapacity(), 2u);
  for (int I = 0; I < 3; ++I)
    R.push(0, makeT(static_cast<float>(I)));
  R.push(1, makeT(50));
  // Shard 0 overflowed: transition 0 evicted, 1 and 2 remain; shard 1
  // holds one.
  EXPECT_EQ(R.shardSize(0), 2u);
  EXPECT_EQ(R.shardSize(1), 1u);
  ASSERT_EQ(R.size(), 3u);
  EXPECT_FLOAT_EQ(R.at(0).State[0], 1.0f);
  EXPECT_FLOAT_EQ(R.at(1).State[0], 2.0f);
  EXPECT_FLOAT_EQ(R.at(2).State[0], 50.0f);
}

TEST(ReplayRing, EmplaceReusesSlotBuffersAfterWraparound) {
  ShardedReplay R;
  R.configure(/*NumShards=*/1, /*Capacity=*/2);
  const float S0[] = {1.0f, 2.0f}, S1[] = {3.0f, 4.0f};
  for (int Round = 0; Round < 3; ++Round)
    R.emplace(0, S0, 2, /*Action=*/Round, /*Reward=*/1.0f, S1, 2,
              /*Terminal=*/false);
  // After wraparound the slot's state vectors are reused in place — the
  // steady state allocates nothing.
  ASSERT_EQ(R.size(), 2u);
  const float *Before = R.at(1).State.data();
  R.emplace(0, S1, 2, /*Action=*/9, /*Reward=*/0.0f, S0, 2, true);
  // The new push overwrote the previously-oldest slot; the data pointer of
  // the slot it landed in must be one of the two already-allocated buffers.
  bool Reused = false;
  for (size_t I = 0; I < R.size(); ++I)
    if (R.at(I).Action == 9 &&
        (R.at(I).State.data() == Before || R.at(I).State.capacity() >= 2))
      Reused = true;
  EXPECT_TRUE(Reused);
  EXPECT_FLOAT_EQ(R.at(1).State[0], 3.0f);
  EXPECT_TRUE(R.at(1).Terminal);
}

TEST(ReplayRing, ReconfigureDropsContentsAndResplits) {
  ShardedReplay R;
  R.configure(1, 8);
  for (int I = 0; I < 5; ++I)
    R.push(0, makeT(static_cast<float>(I)));
  R.configure(4, 8);
  EXPECT_EQ(R.size(), 0u);
  EXPECT_EQ(R.numShards(), 4);
  EXPECT_EQ(R.shardCapacity(), 2u);
}

//===----------------------------------------------------------------------===//
// Parallel training determinism and eval equivalence
//===----------------------------------------------------------------------===//

namespace {

GameEnvFactory flappyFactory() {
  return [] { return std::make_unique<FlappyEnv>(); };
}

RlTrainOptions smallOptions() {
  RlTrainOptions Opt;
  Opt.FeatureNames = {"birdY", "birdV", "pipeDx", "gap1Y", "diffY"};
  Opt.TrainSteps = 600;
  Opt.MaxEpisodeSteps = 120;
  Opt.Seed = 33;
  Opt.QCfg.WarmupSteps = 100;
  Opt.QCfg.BatchSize = 8;
  Opt.QCfg.EpsilonDecaySteps = 400;
  return Opt;
}

struct ParallelRun {
  RlTrainResult Train;
  RlEvalResult Eval;
};

ParallelRun runParallel(int NumActors) {
  RlTrainOptions Opt = smallOptions();
  Opt.QCfg.TrainInterval = NumActors; // One minibatch per lockstep tick.
  Opt.EvalEvery = 300;
  Opt.EvalEpisodes = 3;
  Runtime RT(Mode::TR);
  ParallelRun R;
  R.Train = trainRlParallel(flappyFactory(), RT, Opt, NumActors);
  R.Eval = evalRlBatched(flappyFactory(), RT, Opt, /*Episodes=*/3);
  return R;
}

} // namespace

TEST(RlParallel, FourActorsBitwiseIdenticalAcrossThreadCounts) {
  // The §8 determinism contract: the entire training run — exploration,
  // replay contents, minibatch draws, learned weights — is a pure function
  // of (seed, actor count), never of AU_NN_THREADS. Greedy evaluation of
  // the trained model and every curve point must match bitwise.
  std::vector<ParallelRun> Runs;
  for (int Threads : {1, 4, 8}) {
    ThreadPool::setGlobalThreads(Threads);
    Runs.push_back(runParallel(/*NumActors=*/4));
  }
  ThreadPool::setGlobalThreads(1); // Back to the serial pool.
  const ParallelRun &Ref = Runs.front();
  EXPECT_GE(Ref.Train.StepsRun, 600);
  EXPECT_GT(Ref.Train.Episodes, 0);
  ASSERT_FALSE(Ref.Train.Curve.empty());
  for (size_t I = 1; I < Runs.size(); ++I) {
    const ParallelRun &R = Runs[I];
    EXPECT_EQ(R.Train.StepsRun, Ref.Train.StepsRun);
    EXPECT_EQ(R.Train.Episodes, Ref.Train.Episodes);
    EXPECT_EQ(R.Train.TraceBytes, Ref.Train.TraceBytes);
    ASSERT_EQ(R.Train.Curve.size(), Ref.Train.Curve.size());
    for (size_t P = 0; P < Ref.Train.Curve.size(); ++P) {
      EXPECT_EQ(R.Train.Curve[P].Steps, Ref.Train.Curve[P].Steps);
      EXPECT_EQ(R.Train.Curve[P].Progress, Ref.Train.Curve[P].Progress);
      EXPECT_EQ(R.Train.Curve[P].SuccessRate,
                Ref.Train.Curve[P].SuccessRate);
    }
    EXPECT_EQ(R.Eval.MeanProgress, Ref.Eval.MeanProgress);
    EXPECT_EQ(R.Eval.SuccessRate, Ref.Eval.SuccessRate);
  }
}

TEST(RlParallel, TrainRunsBudgetAndFillsReplay) {
  ThreadPool::setGlobalThreads(4);
  RlTrainOptions Opt = smallOptions();
  Opt.QCfg.TrainInterval = 2;
  Runtime RT(Mode::TR);
  RlTrainResult Res = trainRlParallel(flappyFactory(), RT, Opt,
                                      /*NumActors=*/2);
  EXPECT_GE(Res.StepsRun, Opt.TrainSteps);
  EXPECT_GT(Res.Episodes, 0);
  EXPECT_GT(Res.TraceBytes, 0u);
  EXPECT_GT(Res.ModelBytes, 0u);
  EXPECT_GT(Res.NumParams, 0u);
}

TEST(RlParallel, BatchedEvalSingleEpisodeMatchesSerialEval) {
  // With one lane the batched evaluator degenerates to the serial schedule
  // (a 1-row batch), and it seeds episodes identically — scores must match
  // exactly on the same trained model.
  FlappyEnv Env;
  Runtime RT(Mode::TR);
  RlTrainOptions Opt = smallOptions();
  trainRl(Env, RT, Opt);
  RlEvalResult Serial = evalRl(Env, RT, Opt, /*Episodes=*/1);
  RlEvalResult Batched = evalRlBatched(flappyFactory(), RT, Opt,
                                       /*Episodes=*/1);
  EXPECT_EQ(Batched.MeanProgress, Serial.MeanProgress);
  EXPECT_EQ(Batched.SuccessRate, Serial.SuccessRate);
}

TEST(RlParallel, BatchedEvalMultiEpisodeMatchesSerialEval) {
  // Multi-lane: lanes retire at different ticks and the live set compacts,
  // but each lane still replays exactly the serial per-episode seed
  // schedule, so aggregate scores match the serial evaluator.
  FlappyEnv Env;
  Runtime RT(Mode::TR);
  RlTrainOptions Opt = smallOptions();
  trainRl(Env, RT, Opt);
  RlEvalResult Serial = evalRl(Env, RT, Opt, /*Episodes=*/5);
  RlEvalResult Batched = evalRlBatched(flappyFactory(), RT, Opt,
                                       /*Episodes=*/5);
  EXPECT_EQ(Batched.MeanProgress, Serial.MeanProgress);
  EXPECT_EQ(Batched.SuccessRate, Serial.SuccessRate);
}

TEST(RlParallel, VectorEnvStreamsAreDecorrelatedAndStable) {
  VectorEnv VE(flappyFactory(), /*NumActors=*/3, /*Seed=*/7);
  ASSERT_EQ(VE.size(), 3);
  // Per-actor streams are derived counter-style from (seed, actor): the
  // same construction yields the same draws, and distinct actors draw
  // distinct sequences.
  VectorEnv VE2(flappyFactory(), 3, 7);
  EXPECT_EQ(VE.stream(0).next(), VE2.stream(0).next());
  EXPECT_NE(VE.stream(1).next(), VE.stream(2).next());
}
