//===- tests/IntegrationTest.cpp - End-to-end autonomization tests -------===//
//
// Small but complete runs of the paper's pipeline: profile -> extract
// features -> annotate -> train through the primitives -> deploy. Budgets
// are kept tiny so the suite stays fast; the full-scale runs live in
// bench/.
//
//===----------------------------------------------------------------------===//

#include "apps/canny/Canny.h"
#include "apps/common/RlHarness.h"
#include "apps/flappy/Flappy.h"
#include "apps/mario/Mario.h"
#include "apps/torcs/Torcs.h"

#include <gtest/gtest.h>

using namespace au;
using namespace au::apps;
using analysis::SlPick;

TEST(IntegrationSl, CannyMinVersionEndToEnd) {
  CannyExperiment Exp(/*NumTrain=*/24, /*NumTest=*/6, /*Seed=*/900);
  double Baseline = Exp.baselineScore();
  double TrainSecs = Exp.train(SlPick::Min, /*Epochs=*/40);
  EXPECT_GT(TrainSecs, 0.0);
  double Score = Exp.testScore(SlPick::Min);
  // The learned per-input parameters must not lose to one global default
  // (paper: +70% for Canny Min; we only require a clear non-regression
  // at this tiny training budget).
  EXPECT_GT(Score, Baseline - 0.02);
  EXPECT_GT(Exp.traceBytes(SlPick::Min), 0u);
  EXPECT_GT(Exp.modelBytes(SlPick::Min), 0u);
}

TEST(IntegrationSl, OracleBoundsLearnedVersions) {
  CannyExperiment Exp(/*NumTrain=*/12, /*NumTest=*/6, /*Seed=*/901);
  double Oracle = Exp.oracleScore();
  double Baseline = Exp.baselineScore();
  EXPECT_GT(Oracle, Baseline);
}

TEST(IntegrationRl, FlappyAllVariantTrainsAndImproves) {
  FlappyEnv Env;
  Runtime RT(Mode::TR);

  // Feature extraction exactly as deployed: Algorithm 2 over a profile run.
  RlTrainOptions Opt;
  Opt.FeatureNames = selectRlFeatures(Env, 1e-6, 1e-4, 150);
  ASSERT_FALSE(Opt.FeatureNames.empty());
  Opt.TrainSteps = 4000;
  Opt.MaxEpisodeSteps = 300;
  Opt.Seed = 21;
  Opt.QCfg.EpsilonDecaySteps = 2500;

  RlEvalResult Before = evalRandom(Env, Opt, 10);
  RlTrainResult Train = trainRl(Env, RT, Opt);
  EXPECT_EQ(Train.StepsRun, 4000);
  EXPECT_GT(Train.Episodes, 0);
  EXPECT_GT(Train.TraceBytes, 0u);
  RlEvalResult After = evalRl(Env, RT, Opt, 10);
  // Learning must clearly beat random play even at this tiny budget.
  EXPECT_GT(After.MeanProgress, Before.MeanProgress);
}

TEST(IntegrationRl, EvalDoesNotPerturbTraining) {
  FlappyEnv Env;
  Runtime RT(Mode::TR);
  RlTrainOptions Opt;
  Opt.FeatureNames = {"birdY", "birdV", "pipeDx", "gap1Y", "diffY"};
  Opt.TrainSteps = 600;
  Opt.EvalEvery = 200; // Interleaved evaluations.
  Opt.EvalEpisodes = 2;
  Opt.Seed = 22;
  RlTrainResult Res = trainRl(Env, RT, Opt);
  EXPECT_EQ(Res.StepsRun, 600);
  EXPECT_EQ(Res.Curve.size(), 3u);
  EXPECT_EQ(RT.mode(), Mode::TR) << "mode restored after evals";
}

TEST(IntegrationRl, CheckpointRestoreDrivesEpisodes) {
  MarioEnv Env;
  Runtime RT(Mode::TR);
  RlTrainOptions Opt;
  Opt.FeatureNames = {"PX", "PY", "MnX", "OBJ", "objDx", "onGround"};
  Opt.TrainSteps = 1500;
  Opt.MaxEpisodeSteps = 120;
  Opt.Seed = 23;
  RlTrainResult Res = trainRl(Env, RT, Opt);
  // Episode truncation at 120 steps guarantees several episodes, hence
  // several au_restore invocations.
  EXPECT_GT(Res.Episodes, 3);
  EXPECT_GT(RT.stats().NumRestore, 0u);
  EXPECT_GT(RT.stats().NumCheckpoint, 0u);
}

TEST(IntegrationRl, RawVariantRunsWithCnn) {
  FlappyEnv Env;
  Runtime RT(Mode::TR);
  RlTrainOptions Opt;
  Opt.Variant = RlVariant::Raw;
  Opt.FrameSide = 16;
  Opt.TrainSteps = 250;
  Opt.Seed = 24;
  Opt.QCfg.WarmupSteps = 50;
  Opt.QCfg.BatchSize = 8;
  RlTrainResult Res = trainRl(Env, RT, Opt);
  EXPECT_EQ(Res.StepsRun, 250);
  // The raw-pixel trace dwarfs the program-variable trace (Table 2).
  EXPECT_GT(Res.TraceBytes, 250u * 16 * 16 * sizeof(float) / 2);
  Model *M = RT.getModel(rlModelName(Env, RlVariant::Raw));
  ASSERT_TRUE(M);
  EXPECT_EQ(M->config().Type, ModelType::CNN);
}

TEST(IntegrationRl, TrainedRlModelSurvivesSaveLoad) {
  FlappyEnv Env;
  std::string Dir = "/tmp";
  RlTrainOptions Opt;
  Opt.FeatureNames = {"birdY", "birdV", "pipeDx", "gap1Y", "diffY"};
  Opt.TrainSteps = 800;
  Opt.Seed = 25;
  {
    Runtime RT(Mode::TR, Dir);
    trainRl(Env, RT, Opt);
    ASSERT_TRUE(RT.saveModel(rlModelName(Env, RlVariant::All)));
  }
  {
    Runtime RT(Mode::TS, Dir);
    ModelConfig C;
    C.Name = rlModelName(Env, RlVariant::All);
    C.Algo = Algorithm::QLearn;
    Model *M = RT.config(C); // CONFIG-TEST loads from disk.
    ASSERT_TRUE(M->isBuilt());
    RlEvalResult R = evalRl(Env, RT, Opt, 3);
    EXPECT_GE(R.MeanProgress, 0.0);
  }
  std::remove(("/tmp/" + rlModelName(Env, RlVariant::All) + ".aumodel")
                  .c_str());
}

TEST(IntegrationSelfTest, CoverageRewardFindsMoreBranches) {
  // The Section 2 self-testing experiment in miniature: an agent rewarded
  // for new coverage explores more branches than random play in the same
  // budget. (The full comparison lives in bench/selftest_coverage.)
  MarioEnv CovEnv;
  CovEnv.setCoverageReward(true);
  CovEnv.resetCoverage();
  Runtime RT(Mode::TR);
  RlTrainOptions Opt;
  Opt.FeatureNames = {"PX", "PY", "MnX", "OBJ", "objDx", "onGround"};
  Opt.TrainSteps = 2500;
  Opt.MaxEpisodeSteps = 150;
  Opt.Seed = 26;
  trainRl(CovEnv, RT, Opt);
  int CovAgent = CovEnv.coverageCount();
  EXPECT_GT(CovAgent, MarioEnv::NumBranches / 3);
}
