//===- tests/AnalysisTest.cpp - Unit tests for the analysis substrate ----===//

#include "analysis/DependenceGraph.h"
#include "analysis/FeatureExtraction.h"
#include "analysis/Tracer.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace au;
using namespace au::analysis;

//===----------------------------------------------------------------------===//
// DependenceGraph
//===----------------------------------------------------------------------===//

TEST(DependenceGraphTest, NodeDeduplication) {
  DependenceGraph G;
  NodeId A = G.getOrAddNode("x");
  NodeId B = G.getOrAddNode("x");
  EXPECT_EQ(A, B);
  EXPECT_EQ(G.numNodes(), 1);
  EXPECT_EQ(G.lookup("x"), A);
  EXPECT_EQ(G.lookup("missing"), -1);
}

TEST(DependenceGraphTest, DuplicateEdgesCollapse) {
  DependenceGraph G;
  G.addEdge("a", "b");
  G.addEdge("a", "b");
  EXPECT_EQ(G.successors(G.lookup("a")).size(), 1u);
}

TEST(DependenceGraphTest, TransitiveDependents) {
  DependenceGraph G;
  G.addEdge("a", "b");
  G.addEdge("b", "c");
  G.addEdge("c", "d");
  std::vector<NodeId> Deps = G.dependents(G.lookup("a"));
  EXPECT_EQ(Deps.size(), 3u);
  // "a" itself is not its own dependent without a cycle.
  EXPECT_EQ(std::count(Deps.begin(), Deps.end(), G.lookup("a")), 0);
}

TEST(DependenceGraphTest, SelfLoopMakesSelfDependent) {
  DependenceGraph G;
  G.addEdge("x", "x"); // Loop-carried dependence.
  std::vector<NodeId> Deps = G.dependents(G.lookup("x"));
  EXPECT_EQ(Deps.size(), 1u);
  EXPECT_EQ(Deps.front(), G.lookup("x"));
}

TEST(DependenceGraphTest, ShareDependentAndCommon) {
  DependenceGraph G;
  G.addEdge("a", "c");
  G.addEdge("b", "c");
  G.addEdge("b", "d");
  EXPECT_TRUE(G.shareDependent(G.lookup("a"), G.lookup("b")));
  std::vector<NodeId> Common = G.commonDependents(G.lookup("a"), G.lookup("b"));
  ASSERT_EQ(Common.size(), 1u);
  EXPECT_EQ(Common.front(), G.lookup("c"));
  // d depends only on b.
  DependenceGraph G2;
  G2.addEdge("p", "q");
  G2.addEdge("r", "s");
  EXPECT_FALSE(G2.shareDependent(G2.lookup("p"), G2.lookup("r")));
}

TEST(DependenceGraphTest, DependsOnIsTransitive) {
  DependenceGraph G;
  G.addEdge("a", "b");
  G.addEdge("b", "c");
  EXPECT_TRUE(G.dependsOn(G.lookup("c"), G.lookup("a")));
  EXPECT_FALSE(G.dependsOn(G.lookup("a"), G.lookup("c")));
}

TEST(DependenceGraphTest, BfsDistanceFindsNearestTarget) {
  DependenceGraph G;
  G.addEdge("a", "b");
  G.addEdge("b", "c");
  G.addEdge("c", "d");
  G.addEdge("a", "e"); // Short branch.
  std::vector<NodeId> Targets = {G.lookup("d"), G.lookup("e")};
  EXPECT_EQ(G.bfsDistanceToAny(G.lookup("a"), Targets), 1); // e at 1.
  EXPECT_EQ(G.bfsDistanceToAny(G.lookup("b"), {G.lookup("d")}), 2);
  EXPECT_EQ(G.bfsDistanceToAny(G.lookup("d"), {G.lookup("a")}), -1);
}

TEST(DependenceGraphTest, PredecessorsMirrorEdges) {
  DependenceGraph G;
  G.addEdge("a", "c");
  G.addEdge("b", "c");
  G.addEdge("a", "c"); // Duplicate must not duplicate the reverse edge.
  const std::vector<NodeId> &P = G.predecessors(G.lookup("c"));
  ASSERT_EQ(P.size(), 2u);
  EXPECT_EQ(P[0], G.lookup("a")); // Edge insertion order.
  EXPECT_EQ(P[1], G.lookup("b"));
  EXPECT_TRUE(G.predecessors(G.lookup("a")).empty());
}

TEST(DependenceGraphTest, ReachabilityCacheSurvivesMutation) {
  // Queries memoize reachability; mutating the graph afterwards must
  // invalidate the cache so later queries see the new edges and nodes.
  DependenceGraph G;
  G.addEdge("a", "b");
  EXPECT_FALSE(G.dependsOn(G.lookup("a"), G.lookup("b")));
  EXPECT_EQ(G.dependents(G.lookup("a")).size(), 1u); // Populates the cache.
  G.addEdge("b", "c");
  EXPECT_EQ(G.dependents(G.lookup("a")).size(), 2u);
  G.addEdge("c", "a"); // Close a cycle through a new node.
  EXPECT_TRUE(G.dependsOn(G.lookup("b"), G.lookup("a")));
  EXPECT_EQ(G.dependents(G.lookup("a")).size(), 3u); // a via the cycle.
  // Repeated queries on the frozen graph hit the cache and stay correct
  // (Algorithm 2's O(|V|^2) correlation loop).
  for (int I = 0; I < 3; ++I)
    EXPECT_TRUE(G.shareDependent(G.lookup("a"), G.lookup("b")));
}

//===----------------------------------------------------------------------===//
// Tracer
//===----------------------------------------------------------------------===//

TEST(TracerTest, RecordsGraphUsesAndTraces) {
  Tracer T;
  T.markInput("in");
  T.recordDef("mid", {"in"}, "f");
  T.recordDefValue("out", {"mid"}, "g", 3.5);
  T.recordValue("out", 4.5);
  T.recordUse("mid", "h");

  EXPECT_EQ(T.inputs().size(), 1u);
  EXPECT_TRUE(T.graph().dependsOn(T.graph().lookup("out"),
                                  T.graph().lookup("in")));
  EXPECT_EQ(T.useFunctions("mid").count("f"), 1u);
  EXPECT_EQ(T.useFunctions("mid").count("h"), 1u);
  ASSERT_EQ(T.trace("out").size(), 2u);
  EXPECT_DOUBLE_EQ(T.trace("out")[1], 4.5);
  EXPECT_TRUE(T.trace("never").empty());
  EXPECT_EQ(T.traceBytes(), 2 * sizeof(double));
}

TEST(TracerTest, MarkInputIsIdempotent) {
  Tracer T;
  T.markInput("x");
  T.markInput("x");
  EXPECT_EQ(T.inputs().size(), 1u);
}

//===----------------------------------------------------------------------===//
// Algorithm 1 (supervised feature extraction)
//===----------------------------------------------------------------------===//

namespace {
/// Builds the Fig. 9 Canny dependence chain:
/// image -> sImg -> mag -> hist -> result, lo -> result, hi -> result,
/// sigma -> sImg.
Tracer makeFig9Tracer() {
  Tracer T;
  T.markInput("image");
  T.recordDef("sImg", {"image", "sigma"}, "smooth");
  T.recordDef("mag", {"sImg"}, "magnitude");
  T.recordDef("hist", {"mag"}, "computeHist");
  T.recordDef("result", {"hist", "lo", "hi"}, "hysteresis");
  return T;
}
} // namespace

TEST(Alg1Test, Fig9DistanceRanking) {
  Tracer T = makeFig9Tracer();
  SlFeatureMap F = extractSlFeatures(T, {"image"}, {"lo"});
  ASSERT_TRUE(F.count("lo"));
  const std::vector<RankedFeature> &Ranked = F["lo"];
  // hist(1), mag(2), sImg(3), image(4) — the paper's exact ranking.
  ASSERT_EQ(Ranked.size(), 4u);
  EXPECT_EQ(Ranked[0].Var, "hist");
  EXPECT_EQ(Ranked[0].Distance, 1);
  EXPECT_EQ(Ranked[1].Var, "mag");
  EXPECT_EQ(Ranked[1].Distance, 2);
  EXPECT_EQ(Ranked[2].Var, "sImg");
  EXPECT_EQ(Ranked[2].Distance, 3);
  EXPECT_EQ(Ranked[3].Var, "image");
  EXPECT_EQ(Ranked[3].Distance, 4);
}

TEST(Alg1Test, SigmaPredictedFromImage) {
  Tracer T = makeFig9Tracer();
  SlFeatureMap F = extractSlFeatures(T, {"image"}, {"sigma"});
  const std::vector<RankedFeature> &Ranked = F["sigma"];
  ASSERT_FALSE(Ranked.empty());
  // image shares the dependent sImg with sigma at distance 1, as Fig. 11
  // has SigmaNN consume IMG.
  EXPECT_EQ(Ranked.front().Var, "image");
  EXPECT_EQ(Ranked.front().Distance, 1);
}

TEST(Alg1Test, ExcludesCandidatesDependingOnTarget) {
  Tracer T;
  T.markInput("in");
  T.recordDef("derived", {"in", "param"}, "f"); // derived depends on param.
  T.recordDef("result", {"derived", "param"}, "g");
  SlFeatureMap F = extractSlFeatures(T, {"in"}, {"param"});
  for (const RankedFeature &RF : F["param"])
    EXPECT_NE(RF.Var, "derived");
}

TEST(Alg1Test, UncorrelatedCandidatesDropped) {
  Tracer T;
  T.markInput("in");
  T.recordDef("lonely", {"in"}, "f"); // No shared dependent with target.
  T.recordDef("result", {"target"}, "g");
  SlFeatureMap F = extractSlFeatures(T, {"in"}, {"target"});
  EXPECT_TRUE(F["target"].empty());
}

TEST(Alg1Test, PickMinMedRaw) {
  std::vector<RankedFeature> Ranked = {
      {"a", 1}, {"b", 2}, {"c", 3}, {"d", 4}};
  EXPECT_EQ(pickSlFeature(Ranked, SlPick::Min), "a");
  EXPECT_EQ(pickSlFeature(Ranked, SlPick::Med), "c");
  EXPECT_EQ(pickSlFeature(Ranked, SlPick::Raw), "d");
  EXPECT_EQ(pickSlFeature({}, SlPick::Min), "");
}

//===----------------------------------------------------------------------===//
// Algorithm 2 (reinforcement feature extraction)
//===----------------------------------------------------------------------===//

namespace {
/// Builds a Fig. 10-style Mario tracer with an alias (mX ~ MnX) and a
/// constant (lives).
Tracer makeFig10Tracer() {
  Tracer T;
  T.recordDef("right", {"key"}, "handleInput");
  T.recordDef("speed", {"right"}, "updatePlayer");
  T.recordDef("PX", {"PX", "speed"}, "updatePlayer");
  T.recordDef("MnX", {"MnX"}, "minionCollision");
  T.recordDef("mX", {"MnX"}, "minionCollision");
  T.recordDef("lives", {}, "gameLoop");
  T.recordDef("collide", {"PX", "MnX", "mX", "lives"}, "minionCollision");
  T.recordUse("collide", "gameLoop");
  T.recordDef("reward", {"collide", "PX", "right"}, "gameLoop");
  // Traces: PX ramps, MnX oscillates, mX mirrors MnX, lives constant.
  for (int I = 0; I < 20; ++I) {
    T.recordValue("PX", I * 0.05);
    T.recordValue("MnX", (I % 5) * 0.2);
    T.recordValue("mX", (I % 5) * 0.2);
    T.recordValue("lives", 1.0);
    T.recordValue("speed", (I % 3) * 0.4);
    T.recordValue("collide", 0.0);
    T.recordValue("right", I % 2);
  }
  return T;
}
} // namespace

TEST(Alg2Test, PrunesRedundantAlias) {
  Tracer T = makeFig10Tracer();
  RlExtractionStats Stats;
  std::vector<std::string> F =
      extractRlFeatures(T, "right", /*Epsilon1=*/0.0, /*Epsilon2=*/0.001,
                        &Stats);
  // mX duplicates MnX and must be pruned (Fig. 10's example).
  EXPECT_EQ(std::count(F.begin(), F.end(), "mX"), 0);
  EXPECT_EQ(std::count(F.begin(), F.end(), "MnX"), 1);
  EXPECT_GE(Stats.PrunedRedundant, 1);
  bool FoundPair = false;
  for (const auto &[Kept, Pruned] : Stats.RedundantPairs)
    FoundPair = FoundPair || (Kept == "MnX" && Pruned == "mX");
  EXPECT_TRUE(FoundPair);
}

TEST(Alg2Test, PrunesUnchangingVariables) {
  Tracer T = makeFig10Tracer();
  RlExtractionStats Stats;
  std::vector<std::string> F =
      extractRlFeatures(T, "right", 0.0, 0.001, &Stats);
  EXPECT_EQ(std::count(F.begin(), F.end(), "lives"), 0);
  EXPECT_GE(Stats.PrunedUnchanging, 1);
  EXPECT_EQ(std::count(Stats.UnchangingVars.begin(),
                       Stats.UnchangingVars.end(), "lives"),
            1);
}

TEST(Alg2Test, KeepsInformativeVariables) {
  Tracer T = makeFig10Tracer();
  std::vector<std::string> F = extractRlFeatures(T, "right", 0.0, 0.001);
  EXPECT_EQ(std::count(F.begin(), F.end(), "PX"), 1);
}

TEST(Alg2Test, TargetItselfNeverAFeature) {
  Tracer T = makeFig10Tracer();
  std::vector<std::string> F = extractRlFeatures(T, "right", 0.0, 0.001);
  EXPECT_EQ(std::count(F.begin(), F.end(), "right"), 0);
}

TEST(Alg2Test, LargeEpsilon2PrunesEverything) {
  Tracer T = makeFig10Tracer();
  std::vector<std::string> F = extractRlFeatures(T, "right", 0.0, 1e9);
  EXPECT_TRUE(F.empty());
}

TEST(Alg2Test, LargeEpsilon1CollapsesToOne) {
  Tracer T = makeFig10Tracer();
  RlExtractionStats Stats;
  std::vector<std::string> F =
      extractRlFeatures(T, "right", 1e9, 0.001, &Stats);
  // The first candidate prunes all others as "redundant"; it survives if
  // its own variance is large enough.
  EXPECT_LE(F.size(), 1u);
}

TEST(Alg2Test, CombinedDeduplicatesAcrossTargets) {
  Tracer T = makeFig10Tracer();
  std::vector<std::string> F =
      extractRlFeaturesCombined(T, {"right", "right"}, 0.0, 0.001);
  std::vector<std::string> Sorted = F;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_TRUE(std::adjacent_find(Sorted.begin(), Sorted.end()) ==
              Sorted.end());
}

/// Epsilon-threshold sweep: larger epsilon2 never yields more features
/// (monotone pruning property).
class Alg2Epsilon2Sweep : public ::testing::TestWithParam<double> {};

TEST_P(Alg2Epsilon2Sweep, PruningIsMonotoneInEpsilon2) {
  Tracer T = makeFig10Tracer();
  double Eps2 = GetParam();
  size_t NarrowCount = extractRlFeatures(T, "right", 0.0, Eps2).size();
  size_t WiderCount = extractRlFeatures(T, "right", 0.0, Eps2 * 10).size();
  EXPECT_GE(NarrowCount, WiderCount);
}

INSTANTIATE_TEST_SUITE_P(EpsilonGrid, Alg2Epsilon2Sweep,
                         ::testing::Values(1e-6, 1e-4, 1e-2, 0.05, 0.2));
