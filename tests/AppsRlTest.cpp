//===- tests/AppsRlTest.cpp - Tests for the RL benchmark programs --------===//

#include "analysis/FeatureExtraction.h"
#include "apps/arkanoid/Arkanoid.h"
#include "apps/common/RlHarness.h"
#include "apps/breakout/Breakout.h"
#include "apps/flappy/Flappy.h"
#include "apps/mario/Mario.h"
#include "apps/torcs/Torcs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

using namespace au;
using namespace au::apps;

//===----------------------------------------------------------------------===//
// Shared parameterized env-contract tests
//===----------------------------------------------------------------------===//

namespace {
std::unique_ptr<GameEnv> makeEnv(const std::string &Name) {
  if (Name == "flappybird")
    return std::make_unique<FlappyEnv>();
  if (Name == "mario")
    return std::make_unique<MarioEnv>();
  if (Name == "arkanoid")
    return std::make_unique<ArkanoidEnv>();
  if (Name == "breakout")
    return std::make_unique<BreakoutEnv>();
  if (Name == "torcs")
    return std::make_unique<TorcsEnv>();
  return nullptr;
}
} // namespace

class EnvContractTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EnvContractTest, ResetIsDeterministic) {
  auto A = makeEnv(GetParam());
  auto B = makeEnv(GetParam());
  A->reset(0xABC00);
  B->reset(0xABC00);
  std::vector<Feature> FA = A->features();
  std::vector<Feature> FB = B->features();
  ASSERT_EQ(FA.size(), FB.size());
  for (size_t I = 0; I != FA.size(); ++I) {
    EXPECT_EQ(FA[I].first, FB[I].first);
    EXPECT_FLOAT_EQ(FA[I].second, FB[I].second);
  }
}

TEST_P(EnvContractTest, StepsAreDeterministicGivenActions) {
  auto A = makeEnv(GetParam());
  auto B = makeEnv(GetParam());
  A->reset(0x1200);
  B->reset(0x1200);
  Rng R(5);
  for (int I = 0; I < 50 && !A->terminal(); ++I) {
    int Action = static_cast<int>(R.uniformInt(A->numActions()));
    float RA = A->step(Action);
    float RB = B->step(Action);
    EXPECT_FLOAT_EQ(RA, RB);
  }
  EXPECT_DOUBLE_EQ(A->progress(), B->progress());
}

TEST_P(EnvContractTest, FeaturesAreStableAndFinite) {
  auto E = makeEnv(GetParam());
  E->reset(0x3400);
  std::vector<Feature> First = E->features();
  EXPECT_GE(First.size(), 10u);
  Rng R(6);
  for (int I = 0; I < 40 && !E->terminal(); ++I) {
    E->step(static_cast<int>(R.uniformInt(E->numActions())));
    std::vector<Feature> Fs = E->features();
    ASSERT_EQ(Fs.size(), First.size());
    for (size_t K = 0; K != Fs.size(); ++K) {
      EXPECT_EQ(Fs[K].first, First[K].first) << "feature order changed";
      EXPECT_TRUE(std::isfinite(Fs[K].second)) << Fs[K].first;
    }
  }
}

TEST_P(EnvContractTest, RenderFrameHasRequestedSizeAndContent) {
  auto E = makeEnv(GetParam());
  E->reset(0x5600);
  Image F = E->renderFrame(20);
  EXPECT_EQ(F.width(), 20);
  EXPECT_EQ(F.height(), 20);
  float Sum = 0.0f;
  for (float P : F.data()) {
    EXPECT_GE(P, 0.0f);
    EXPECT_LE(P, 1.0f);
    Sum += P;
  }
  EXPECT_GT(Sum, 0.0f) << "frame should not be empty";
}

TEST_P(EnvContractTest, SaveLoadRoundTripsExactly) {
  auto E = makeEnv(GetParam());
  E->reset(0x7800);
  Rng R(7);
  for (int I = 0; I < 15 && !E->terminal(); ++I)
    E->step(static_cast<int>(R.uniformInt(E->numActions())));
  std::vector<uint8_t> Saved;
  E->saveState(Saved);
  std::vector<Feature> Before = E->features();
  double ProgressBefore = E->progress();

  // Drive the env further, then roll back.
  for (int I = 0; I < 15 && !E->terminal(); ++I)
    E->step(static_cast<int>(R.uniformInt(E->numActions())));
  E->loadState(Saved);

  std::vector<Feature> After = E->features();
  ASSERT_EQ(Before.size(), After.size());
  for (size_t I = 0; I != Before.size(); ++I)
    EXPECT_FLOAT_EQ(Before[I].second, After[I].second) << Before[I].first;
  EXPECT_DOUBLE_EQ(E->progress(), ProgressBefore);
}

TEST_P(EnvContractTest, HeuristicBeatsRandom) {
  auto E = makeEnv(GetParam());
  Rng R(8);
  double HeuristicTotal = 0.0, RandomTotal = 0.0;
  for (uint64_t Ep = 0; Ep < 6; ++Ep) {
    E->reset((0x9A00) | Ep);
    int Steps = 0;
    while (!E->terminal() && Steps++ < 600)
      E->step(E->heuristicAction(R));
    HeuristicTotal += E->progress();
    E->reset((0x9A00) | Ep);
    Steps = 0;
    while (!E->terminal() && Steps++ < 600)
      E->step(static_cast<int>(R.uniformInt(E->numActions())));
    RandomTotal += E->progress();
  }
  EXPECT_GT(HeuristicTotal, RandomTotal);
}

TEST_P(EnvContractTest, ProfileYieldsUsableAlg2Features) {
  auto E = makeEnv(GetParam());
  analysis::RlExtractionStats Stats;
  std::vector<std::string> Features =
      selectRlFeatures(*E, /*Epsilon1=*/1e-6, /*Epsilon2=*/1e-4,
                       /*ProfileSteps=*/120, &Stats);
  ASSERT_FALSE(Features.empty());
  EXPECT_GT(Stats.NumCandidates, static_cast<int>(Features.size()))
      << "pruning should remove aliases/constants";
  // Every selected feature is readable from the live feature vector.
  E->reset(0xBC00);
  std::vector<Feature> Live = E->features();
  for (const std::string &Name : Features) {
    bool Found = std::any_of(
        Live.begin(), Live.end(),
        [&](const Feature &F) { return F.first == Name; });
    EXPECT_TRUE(Found) << Name << " not extractable at runtime";
  }
}

INSTANTIATE_TEST_SUITE_P(AllEnvs, EnvContractTest,
                         ::testing::Values("flappybird", "mario", "arkanoid",
                                           "breakout", "torcs"));

//===----------------------------------------------------------------------===//
// Env-specific behaviors
//===----------------------------------------------------------------------===//

TEST(FlappyTest, FallsToDeathWithoutFlapping) {
  FlappyEnv E;
  E.reset(0x100);
  int Steps = 0;
  while (!E.terminal() && Steps++ < 100)
    E.step(0);
  EXPECT_TRUE(E.terminal());
  EXPECT_FALSE(E.success());
}

TEST(FlappyTest, HeuristicClearsMostOfTheCourse) {
  FlappyEnv E;
  Rng R(9);
  E.reset(0x100);
  int Steps = 0;
  while (!E.terminal() && Steps++ < 500)
    E.step(E.heuristicAction(R));
  EXPECT_GT(E.progress(), 0.5);
}

TEST(MarioTest, RewardShapeMatchesFig2) {
  MarioEnv E;
  E.reset(0x200);
  // Moving right from the start yields the +2 forward reward.
  float R = E.step(2);
  EXPECT_GE(R, 2.0f);
  // Standing still yields -1.
  float R2 = E.step(0);
  EXPECT_LE(R2, -1.0f + 1e-5);
}

TEST(MarioTest, CoverageAccumulatesAcrossEpisodes) {
  MarioEnv E;
  E.resetCoverage();
  E.reset(0x300);
  Rng R(10);
  for (int I = 0; I < 50 && !E.terminal(); ++I)
    E.step(static_cast<int>(R.uniformInt(5)));
  int Cov1 = E.coverageCount();
  EXPECT_GT(Cov1, 0);
  E.reset(0x301);
  for (int I = 0; I < 50 && !E.terminal(); ++I)
    E.step(static_cast<int>(R.uniformInt(5)));
  EXPECT_GE(E.coverageCount(), Cov1) << "coverage is cumulative like gcov";
}

TEST(MarioTest, CoverageRewardFiresOnNewBranches) {
  MarioEnv E;
  E.resetCoverage();
  E.setCoverageReward(true);
  E.reset(0x400);
  // The very first step covers fresh branches -> big bonus.
  float R = E.step(2);
  EXPECT_GE(R, 30.0f);
}

TEST(MarioTest, CoverageSurvivesCheckpointRestore) {
  // The coverage map models gcov, which lives outside the rolled-back
  // process image.
  MarioEnv E;
  E.resetCoverage();
  E.reset(0x500);
  std::vector<uint8_t> Snap;
  E.saveState(Snap);
  Rng R(11);
  for (int I = 0; I < 30 && !E.terminal(); ++I)
    E.step(static_cast<int>(R.uniformInt(5)));
  int Cov = E.coverageCount();
  E.loadState(Snap);
  EXPECT_EQ(E.coverageCount(), Cov);
}

TEST(MarioTest, HeuristicOftenReachesTheFlag) {
  MarioEnv E;
  Rng R(12);
  int Successes = 0;
  for (uint64_t Ep = 0; Ep < 5; ++Ep) {
    E.reset((0x600) | Ep);
    int Steps = 0;
    while (!E.terminal() && Steps++ < 800)
      E.step(E.heuristicAction(R));
    Successes += E.success();
  }
  EXPECT_GE(Successes, 3);
}

TEST(ArkanoidTest, MissingBallEndsEpisode) {
  ArkanoidEnv E;
  E.reset(0x700);
  // Park the paddle at the left wall and wait.
  int Steps = 0;
  while (!E.terminal() && Steps++ < 400)
    E.step(0);
  EXPECT_TRUE(E.terminal());
}

TEST(ArkanoidTest, HeuristicClearsBricks) {
  ArkanoidEnv E;
  Rng R(13);
  E.reset(0x800);
  int Steps = 0;
  while (!E.terminal() && Steps++ < 2000)
    E.step(E.heuristicAction(R));
  EXPECT_GT(E.cleared(), 5);
}

TEST(BreakoutTest, BallSpeedsUpWithHits) {
  BreakoutEnv E;
  Rng R(14);
  E.reset(0x900);
  float SpeedBefore = featureValue(E.features(), "speedScale");
  int Steps = 0;
  while (E.bricksHit() < 3 && !E.terminal() && Steps++ < 2000)
    E.step(E.heuristicAction(R));
  if (E.bricksHit() >= 3)
    EXPECT_GT(featureValue(E.features(), "speedScale"), SpeedBefore);
}

TEST(TorcsTest, StraightSteeringOnStraightTrackSurvives) {
  TorcsEnv E;
  E.reset(0xA00);
  Rng R(15);
  int Steps = 0;
  while (!E.terminal() && Steps++ < 600)
    E.step(E.heuristicAction(R));
  EXPECT_GT(E.progress(), 0.5);
}

TEST(TorcsTest, ConstantSteeringBumpsTheWall) {
  TorcsEnv E;
  E.reset(0xB00);
  int Steps = 0;
  while (!E.terminal() && Steps++ < 300)
    E.step(0); // Hard left forever.
  EXPECT_TRUE(E.terminal());
  EXPECT_FALSE(E.success());
}

TEST(TorcsTest, RollAliasAndAccXArePrunedByAlg2) {
  TorcsEnv E;
  analysis::Tracer T;
  E.profile(T, 200);
  analysis::RlExtractionStats Stats;
  std::vector<std::string> F = analysis::extractRlFeaturesCombined(
      T, E.targetVariables(), /*Epsilon1=*/0.05, /*Epsilon2=*/0.01, &Stats);
  // Fig. 15: roll duplicates posX; Fig. 16: accX is unchanging.
  EXPECT_EQ(std::count(F.begin(), F.end(), "roll"), 0);
  EXPECT_EQ(std::count(F.begin(), F.end(), "accX"), 0);
  EXPECT_EQ(std::count(F.begin(), F.end(), "posX"), 1);
}

TEST(TorcsTest, ManualFeatureNamesAreLive) {
  TorcsEnv E;
  E.reset(0xC00);
  std::vector<Feature> Live = E.features();
  for (const std::string &Name : TorcsEnv::manualFeatureNames())
    EXPECT_NO_FATAL_FAILURE(featureValue(Live, Name));
}
