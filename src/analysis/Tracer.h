//===- analysis/Tracer.h - Dynamic instrumentation recorder ----*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instrumentation front end that stands in for the paper's
/// Valgrind-based dynamic analysis. Applications call the recording hooks at
/// definition and use sites during a profiling run; the tracer accumulates
/// everything the two feature-extraction algorithms consume:
///
///   * the dynamic dependence graph (def(var, sources)),
///   * the variable -> usage-function map (UseFunc of Algorithm 2),
///   * runtime value traces per variable (Tracing of Algorithm 2),
///   * the set of input variables (In of Algorithm 1).
///
//===----------------------------------------------------------------------===//

#ifndef AU_ANALYSIS_TRACER_H
#define AU_ANALYSIS_TRACER_H

#include "analysis/DependenceGraph.h"

#include <set>
#include <string>
#include <unordered_map>
#include <vector>

namespace au {
namespace analysis {

/// Records one profiled execution's dependence and value information.
class Tracer {
public:
  /// Marks \p Var as a program input (image pixels, key strokes, ...).
  void markInput(const std::string &Var);

  /// Records that \p Var was defined from \p Sources inside \p Function.
  /// Creates dependence edges Source -> Var and registers uses of the
  /// sources and a use of Var in \p Function.
  void recordDef(const std::string &Var,
                 const std::vector<std::string> &Sources,
                 const std::string &Function);

  /// Records a read of \p Var inside \p Function without a new definition.
  void recordUse(const std::string &Var, const std::string &Function);

  /// Appends \p Value to the runtime trace of \p Var.
  void recordValue(const std::string &Var, double Value);

  /// Convenience: recordDef + recordValue in one call.
  void recordDefValue(const std::string &Var,
                      const std::vector<std::string> &Sources,
                      const std::string &Function, double Value);

  const DependenceGraph &graph() const { return Graph; }
  DependenceGraph &graph() { return Graph; }

  /// Input-variable names in first-seen order.
  const std::vector<std::string> &inputs() const { return Inputs; }

  /// Functions in which \p Var was used (empty set if never seen).
  const std::set<std::string> &useFunctions(const std::string &Var) const;

  /// The recorded value trace of \p Var (empty if never recorded).
  const std::vector<double> &trace(const std::string &Var) const;

  /// All variables that ever appeared, in first-seen order (the paper's
  /// ProgVar set).
  std::vector<std::string> allVariables() const { return Graph.nodeNames(); }

  /// Total trace footprint in bytes (doubles), the Table 2 "Trace Size".
  size_t traceBytes() const;

private:
  DependenceGraph Graph;
  std::vector<std::string> Inputs;
  std::set<std::string> InputSet;
  std::unordered_map<std::string, std::set<std::string>> UseFunc;
  std::unordered_map<std::string, std::vector<double>> Traces;
};

} // namespace analysis
} // namespace au

#endif // AU_ANALYSIS_TRACER_H
