//===- analysis/FeatureExtraction.cpp - Alg. 1 and Alg. 2 ----------------===//

#include "analysis/FeatureExtraction.h"

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>

using namespace au;
using namespace au::analysis;

SlFeatureMap
au::analysis::extractSlFeatures(const Tracer &T,
                                const std::vector<std::string> &Inputs,
                                const std::vector<std::string> &Targets) {
  const DependenceGraph &G = T.graph();

  // Candidate <- In ∪ dep(In), in deterministic discovery order.
  std::vector<NodeId> Candidates;
  std::vector<bool> InCandidates(static_cast<size_t>(G.numNodes()), false);
  auto AddCandidate = [&](NodeId N) {
    if (N >= 0 && !InCandidates[N]) {
      InCandidates[N] = true;
      Candidates.push_back(N);
    }
  };
  for (const std::string &In : Inputs) {
    NodeId N = G.lookup(In);
    assert(N >= 0 && "unknown input variable");
    AddCandidate(N);
    for (NodeId D : G.dependents(N))
      AddCandidate(D);
  }

  SlFeatureMap Features;
  for (const std::string &TargetName : Targets) {
    NodeId V = G.lookup(TargetName);
    assert(V >= 0 && "unknown target variable");
    std::vector<RankedFeature> &Ranked = Features[TargetName];
    for (NodeId W : Candidates) {
      if (W == V)
        continue;
      // Exclude candidates that depend on the target: their values are not
      // available before the prediction is needed.
      if (G.dependsOn(W, V))
        continue;
      std::vector<NodeId> Common = G.commonDependents(W, V);
      if (Common.empty())
        continue;
      int Dist = G.bfsDistanceToAny(W, Common);
      assert(Dist >= 0 && "common dependent must be reachable");
      Ranked.push_back({G.name(W), Dist});
    }
    std::stable_sort(Ranked.begin(), Ranked.end(),
                     [](const RankedFeature &A, const RankedFeature &B) {
                       return A.Distance < B.Distance;
                     });
  }
  return Features;
}

std::string au::analysis::pickSlFeature(const std::vector<RankedFeature> &Ranked,
                                        SlPick Pick) {
  if (Ranked.empty())
    return {};
  switch (Pick) {
  case SlPick::Min:
    return Ranked.front().Var;
  case SlPick::Med:
    return Ranked[Ranked.size() / 2].Var;
  case SlPick::Raw:
    return Ranked.back().Var;
  }
  assert(false && "unknown SlPick");
  return {};
}

std::vector<std::string>
au::analysis::extractRlFeatures(const Tracer &T, const std::string &Target,
                                double Epsilon1, double Epsilon2,
                                RlExtractionStats *Stats) {
  const DependenceGraph &G = T.graph();
  NodeId V = G.lookup(Target);
  assert(V >= 0 && "unknown target variable");

  // UseFunc[dep(v)]: the union of usage functions of v's dependents.
  std::set<std::string> TargetDepFuncs;
  for (NodeId D : G.dependents(V)) {
    const std::set<std::string> &Fs = T.useFunctions(G.name(D));
    TargetDepFuncs.insert(Fs.begin(), Fs.end());
  }

  // Candidate map in discovery order: w != v, w has an observed runtime
  // value trace (untraced pseudo-nodes carry no state to extract), shared
  // use function with dep(v), and shared dependent with v.
  std::vector<std::string> CandidateNames;
  std::vector<std::vector<double>> CandidateTraces;
  for (const std::string &W : T.allVariables()) {
    NodeId WId = G.lookup(W);
    if (WId == V || T.trace(W).empty())
      continue;
    const std::set<std::string> &WFuncs = T.useFunctions(W);
    bool SharesFunc = std::any_of(
        WFuncs.begin(), WFuncs.end(),
        [&](const std::string &F) { return TargetDepFuncs.count(F) != 0; });
    if (!SharesFunc)
      continue;
    if (!G.shareDependent(WId, V))
      continue;
    CandidateNames.push_back(W);
    CandidateTraces.push_back(minMaxScale(T.trace(W)));
  }
  if (Stats)
    Stats->NumCandidates += static_cast<int>(CandidateNames.size());

  // Pruning: for each surviving candidate w, delete later candidates whose
  // scaled trace is within Epsilon1 of w's; then drop w itself when its
  // trace variance is at most Epsilon2.
  std::vector<bool> Deleted(CandidateNames.size(), false);
  std::vector<std::string> Features;
  for (size_t WI = 0; WI != CandidateNames.size(); ++WI) {
    if (Deleted[WI])
      continue;
    for (size_t XI = 0; XI != CandidateNames.size(); ++XI) {
      if (XI == WI || Deleted[XI])
        continue;
      if (euclideanDistance(CandidateTraces[WI], CandidateTraces[XI]) <=
          Epsilon1) {
        Deleted[XI] = true;
        if (Stats) {
          ++Stats->PrunedRedundant;
          Stats->RedundantPairs.emplace_back(CandidateNames[WI],
                                             CandidateNames[XI]);
        }
      }
    }
    if (variance(CandidateTraces[WI]) <= Epsilon2) {
      if (Stats) {
        ++Stats->PrunedUnchanging;
        Stats->UnchangingVars.push_back(CandidateNames[WI]);
      }
      continue;
    }
    Features.push_back(CandidateNames[WI]);
  }
  return Features;
}

std::vector<std::string> au::analysis::extractRlFeaturesCombined(
    const Tracer &T, const std::vector<std::string> &Targets, double Epsilon1,
    double Epsilon2, RlExtractionStats *Stats) {
  std::vector<std::string> Combined;
  std::set<std::string> Seen(Targets.begin(), Targets.end());
  // Seeding Seen with the targets keeps one target variable from becoming
  // a feature of another: target values are exactly what the model must
  // produce, so they are unavailable before prediction.
  for (const std::string &Target : Targets)
    for (const std::string &F :
         extractRlFeatures(T, Target, Epsilon1, Epsilon2, Stats))
      if (Seen.insert(F).second)
        Combined.push_back(F);
  return Combined;
}
