//===- analysis/DependenceGraph.cpp - Dynamic dependence graph -----------===//

#include "analysis/DependenceGraph.h"

#include <algorithm>
#include <deque>

using namespace au;
using namespace au::analysis;

NodeId DependenceGraph::getOrAddNode(const std::string &Name) {
  auto It = Index.find(Name);
  if (It != Index.end())
    return It->second;
  NodeId Id = static_cast<NodeId>(Names.size());
  Names.push_back(Name);
  Succ.emplace_back();
  Pred.emplace_back();
  Index.emplace(Name, Id);
  ++Epoch; // Cached bitsets are sized to the old node count.
  return Id;
}

NodeId DependenceGraph::lookup(const std::string &Name) const {
  auto It = Index.find(Name);
  return It == Index.end() ? -1 : It->second;
}

void DependenceGraph::addEdge(NodeId From, NodeId To) {
  assert(From >= 0 && From < numNodes() && "edge source out of range");
  assert(To >= 0 && To < numNodes() && "edge target out of range");
  std::vector<NodeId> &S = Succ[From];
  if (std::find(S.begin(), S.end(), To) == S.end()) {
    S.push_back(To);
    Pred[To].push_back(From);
    ++Epoch;
  }
}

void DependenceGraph::addEdge(const std::string &From, const std::string &To) {
  NodeId F = getOrAddNode(From);
  NodeId T = getOrAddNode(To);
  addEdge(F, T);
}

const std::vector<bool> &DependenceGraph::reachableFrom(NodeId N) const {
  // Drop all memoized bitsets if the graph changed since they were built.
  // The outer vectors are resized here, never inside the per-node fill, so
  // references handed out earlier in the same epoch stay valid (e.g.
  // shareDependent holds two entries at once).
  if (CacheEpoch != Epoch || ReachKnown.size() != Names.size()) {
    ReachCache.assign(Names.size(), {});
    ReachKnown.assign(Names.size(), 0);
    CacheEpoch = Epoch;
  }
  if (ReachKnown[N])
    return ReachCache[N];
  std::vector<bool> &Seen = ReachCache[N];
  Seen.assign(Names.size(), false);
  std::deque<NodeId> Work;
  // Seed with successors, not N itself, so N is only "reachable" through a
  // cycle (loop-carried dependence).
  for (NodeId S : Succ[N])
    if (!Seen[S]) {
      Seen[S] = true;
      Work.push_back(S);
    }
  while (!Work.empty()) {
    NodeId Cur = Work.front();
    Work.pop_front();
    for (NodeId S : Succ[Cur])
      if (!Seen[S]) {
        Seen[S] = true;
        Work.push_back(S);
      }
  }
  ReachKnown[N] = 1;
  return Seen;
}

std::vector<NodeId> DependenceGraph::dependents(NodeId N) const {
  assert(N >= 0 && N < numNodes() && "node id out of range");
  const std::vector<bool> &Seen = reachableFrom(N);
  std::vector<NodeId> Out;
  for (NodeId I = 0; I < numNodes(); ++I)
    if (Seen[I])
      Out.push_back(I);
  return Out;
}

bool DependenceGraph::shareDependent(NodeId A, NodeId B) const {
  const std::vector<bool> &SA = reachableFrom(A);
  const std::vector<bool> &SB = reachableFrom(B);
  for (size_t I = 0, E = SA.size(); I != E; ++I)
    if (SA[I] && SB[I])
      return true;
  return false;
}

std::vector<NodeId> DependenceGraph::commonDependents(NodeId A,
                                                      NodeId B) const {
  const std::vector<bool> &SA = reachableFrom(A);
  const std::vector<bool> &SB = reachableFrom(B);
  std::vector<NodeId> Out;
  for (NodeId I = 0; I < numNodes(); ++I)
    if (SA[I] && SB[I])
      Out.push_back(I);
  return Out;
}

bool DependenceGraph::dependsOn(NodeId A, NodeId B) const {
  assert(B >= 0 && B < numNodes() && "node id out of range");
  return reachableFrom(B)[A];
}

int DependenceGraph::bfsDistanceToAny(
    NodeId From, const std::vector<NodeId> &Targets) const {
  assert(From >= 0 && From < numNodes() && "node id out of range");
  if (Targets.empty())
    return -1;
  std::vector<bool> IsTarget(Names.size(), false);
  for (NodeId T : Targets)
    IsTarget[T] = true;
  // From itself can be a target only via a cycle, consistent with
  // dependents() excluding the node; so do not test From at distance 0.
  std::vector<int> Dist(Names.size(), -1);
  std::deque<NodeId> Work;
  Dist[From] = 0;
  Work.push_back(From);
  while (!Work.empty()) {
    NodeId Cur = Work.front();
    Work.pop_front();
    for (NodeId S : Succ[Cur]) {
      if (Dist[S] != -1)
        continue;
      Dist[S] = Dist[Cur] + 1;
      if (IsTarget[S])
        return Dist[S];
      Work.push_back(S);
    }
  }
  return -1;
}
