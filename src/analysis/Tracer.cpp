//===- analysis/Tracer.cpp - Dynamic instrumentation recorder ------------===//

#include "analysis/Tracer.h"

using namespace au;
using namespace au::analysis;

void Tracer::markInput(const std::string &Var) {
  Graph.getOrAddNode(Var);
  if (InputSet.insert(Var).second)
    Inputs.push_back(Var);
}

void Tracer::recordDef(const std::string &Var,
                       const std::vector<std::string> &Sources,
                       const std::string &Function) {
  NodeId V = Graph.getOrAddNode(Var);
  for (const std::string &Src : Sources) {
    NodeId S = Graph.getOrAddNode(Src);
    Graph.addEdge(S, V);
    UseFunc[Src].insert(Function);
  }
  UseFunc[Var].insert(Function);
}

void Tracer::recordUse(const std::string &Var, const std::string &Function) {
  Graph.getOrAddNode(Var);
  UseFunc[Var].insert(Function);
}

void Tracer::recordValue(const std::string &Var, double Value) {
  Graph.getOrAddNode(Var);
  Traces[Var].push_back(Value);
}

void Tracer::recordDefValue(const std::string &Var,
                            const std::vector<std::string> &Sources,
                            const std::string &Function, double Value) {
  recordDef(Var, Sources, Function);
  recordValue(Var, Value);
}

const std::set<std::string> &
Tracer::useFunctions(const std::string &Var) const {
  static const std::set<std::string> Empty;
  auto It = UseFunc.find(Var);
  return It == UseFunc.end() ? Empty : It->second;
}

const std::vector<double> &Tracer::trace(const std::string &Var) const {
  static const std::vector<double> Empty;
  auto It = Traces.find(Var);
  return It == Traces.end() ? Empty : It->second;
}

size_t Tracer::traceBytes() const {
  size_t Bytes = 0;
  for (const auto &[Var, Vals] : Traces)
    Bytes += Vals.size() * sizeof(double);
  return Bytes;
}
