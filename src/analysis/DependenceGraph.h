//===- analysis/DependenceGraph.h - Dynamic dependence graph ---*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The variable-level dynamic program dependence graph consumed by the
/// paper's feature-extraction algorithms (Section 4). Nodes are program
/// variables; a directed edge u -> v records that v was computed from u
/// during the profiled execution (so following edges forward reaches the
/// *dependents* of a variable; the paper calls these "descendents").
///
/// The paper builds this graph with Valgrind-based dynamic analysis; here
/// the applications build it through the Tracer instrumentation API, which
/// records exactly the same artifact.
///
//===----------------------------------------------------------------------===//

#ifndef AU_ANALYSIS_DEPENDENCEGRAPH_H
#define AU_ANALYSIS_DEPENDENCEGRAPH_H

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace au {
namespace analysis {

/// Dense node identifier; assigned in insertion order so iteration is
/// deterministic.
using NodeId = int;

/// A directed graph over named program variables.
class DependenceGraph {
public:
  /// Returns the id for \p Name, creating the node if needed.
  NodeId getOrAddNode(const std::string &Name);

  /// Returns the id for \p Name or -1 if absent.
  NodeId lookup(const std::string &Name) const;

  /// Records that \p To was computed from \p From (From -> To). Duplicate
  /// edges are collapsed. Self-edges record loop-carried dependence.
  void addEdge(NodeId From, NodeId To);
  void addEdge(const std::string &From, const std::string &To);

  int numNodes() const { return static_cast<int>(Names.size()); }
  const std::string &name(NodeId N) const {
    assert(N >= 0 && N < numNodes() && "node id out of range");
    return Names[N];
  }

  /// Direct successors (immediate dependents) of \p N, in insertion order.
  const std::vector<NodeId> &successors(NodeId N) const {
    assert(N >= 0 && N < numNodes() && "node id out of range");
    return Succ[N];
  }

  /// Direct predecessors (the variables \p N was computed from), in edge
  /// insertion order. Stored reverse-edge lists, maintained by addEdge —
  /// no scan over all successor lists.
  const std::vector<NodeId> &predecessors(NodeId N) const {
    assert(N >= 0 && N < numNodes() && "node id out of range");
    return Pred[N];
  }

  /// Transitive dependents of \p N — the paper's dep(N). Excludes N itself
  /// unless a cycle leads back to it (loop-carried dependence).
  std::vector<NodeId> dependents(NodeId N) const;

  /// True when some node is a dependent of both \p A and \p B (the paper's
  /// correlation test dep(A) ∩ dep(B) != ∅).
  bool shareDependent(NodeId A, NodeId B) const;

  /// Sorted intersection of dependents(A) and dependents(B).
  std::vector<NodeId> commonDependents(NodeId A, NodeId B) const;

  /// True when \p A transitively depends on \p B (B reaches A).
  bool dependsOn(NodeId A, NodeId B) const;

  /// BFS distance (edge count) from \p From to the nearest node in
  /// \p Targets following forward edges; -1 when unreachable. This is the
  /// paper's "distance to the first common descendent".
  int bfsDistanceToAny(NodeId From, const std::vector<NodeId> &Targets) const;

  /// All node names in insertion order.
  std::vector<std::string> nodeNames() const { return Names; }

private:
  /// Cached forward-reachability bitset for \p N (the paper's dep(N)).
  /// Computed by BFS on first use and memoized until the graph mutates;
  /// Algorithm 2's correlation loop queries every feature pair, so without
  /// the cache it re-runs BFS O(|V|^2) times over the same frozen graph.
  const std::vector<bool> &reachableFrom(NodeId N) const;

  std::vector<std::string> Names;
  std::unordered_map<std::string, NodeId> Index;
  std::vector<std::vector<NodeId>> Succ;
  std::vector<std::vector<NodeId>> Pred; ///< Stored reverse-edge lists.

  /// Bumped on any node/edge insertion; reachability entries computed under
  /// an older epoch are discarded lazily in reachableFrom().
  uint64_t Epoch = 0;
  mutable uint64_t CacheEpoch = 0;
  mutable std::vector<std::vector<bool>> ReachCache;
  mutable std::vector<char> ReachKnown;
};

} // namespace analysis
} // namespace au

#endif // AU_ANALYSIS_DEPENDENCEGRAPH_H
