//===- analysis/FeatureExtraction.h - Alg. 1 and Alg. 2 --------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's two automatic feature-variable extraction algorithms
/// (Section 4):
///
/// Algorithm 1 (supervised learning). Candidates are the program inputs and
/// their transitive dependents. A candidate correlates with a target when
/// they share a common dependent, and it is excluded when it depends on the
/// target. Candidates are ranked by the BFS distance to the first common
/// dependent — smaller distance means a more abstract, more predictive
/// feature (the paper's Min < Med < Raw finding).
///
/// Algorithm 2 (reinforcement learning). Candidates are program variables
/// that (a) are used in some function where a dependent of the target is
/// used and (b) share a dependent with the target. Their min-max-scaled
/// runtime traces are then pruned: a candidate whose trace lies within
/// Euclidean distance epsilon1 of an earlier candidate is redundant; one
/// whose trace variance is below epsilon2 is unchanging. Survivors form the
/// combined feature set.
///
//===----------------------------------------------------------------------===//

#ifndef AU_ANALYSIS_FEATUREEXTRACTION_H
#define AU_ANALYSIS_FEATUREEXTRACTION_H

#include "analysis/Tracer.h"

#include <map>
#include <string>
#include <vector>

namespace au {
namespace analysis {

/// One ranked supervised-learning feature.
struct RankedFeature {
  std::string Var;
  int Distance; ///< BFS distance to the first common dependent.
};

/// Per-target ranked feature lists, keyed by target-variable name.
using SlFeatureMap = std::map<std::string, std::vector<RankedFeature>>;

/// Algorithm 1: supervised-learning feature extraction.
/// \p Inputs is the paper's In set; \p Targets is Trg; the dependence graph
/// comes from \p T. Features are sorted by ascending distance (stable on the
/// candidate discovery order for determinism).
SlFeatureMap extractSlFeatures(const Tracer &T,
                               const std::vector<std::string> &Inputs,
                               const std::vector<std::string> &Targets);

/// Selection policies over a ranked SL feature list, matching the paper's
/// Raw / Med / Min experiment versions.
enum class SlPick { Min, Med, Raw };

/// Picks the feature at the minimum / median / maximum distance.
/// Returns an empty string when \p Ranked is empty.
std::string pickSlFeature(const std::vector<RankedFeature> &Ranked,
                          SlPick Pick);

/// Diagnostics from one Algorithm 2 run (for Table 1 and the Fig. 15/16
/// pruning harness).
struct RlExtractionStats {
  int NumCandidates = 0;       ///< Correlated candidates before pruning.
  int PrunedRedundant = 0;     ///< Removed by the epsilon1 distance test.
  int PrunedUnchanging = 0;    ///< Removed by the epsilon2 variance test.
  std::vector<std::pair<std::string, std::string>>
      RedundantPairs;          ///< (kept, pruned) pairs from epsilon1.
  std::vector<std::string> UnchangingVars; ///< Pruned by epsilon2.
};

/// Algorithm 2: reinforcement-learning feature extraction for one target.
/// Returns surviving feature names in discovery order. \p Stats, when
/// non-null, receives pruning diagnostics.
std::vector<std::string>
extractRlFeatures(const Tracer &T, const std::string &Target, double Epsilon1,
                  double Epsilon2, RlExtractionStats *Stats = nullptr);

/// Runs Algorithm 2 for every target and combines the per-target sets in
/// discovery order without duplicates — the paper combines all feature
/// variables to predict all targets "due to the large overlap".
std::vector<std::string>
extractRlFeaturesCombined(const Tracer &T,
                          const std::vector<std::string> &Targets,
                          double Epsilon1, double Epsilon2,
                          RlExtractionStats *Stats = nullptr);

} // namespace analysis
} // namespace au

#endif // AU_ANALYSIS_FEATUREEXTRACTION_H
