//===- semantics/Interp.h - Small-step interpreter for Fig. 8 --*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An executable form of the paper's operational semantics. The machine
/// configuration is <sigma, pi, theta, omega, s>:
///
///   sigma  ProgStore: Var -> Value list (arrays of floats)
///   pi     DBStore:   String -> Value list (au::DatabaseStore)
///   theta  Model:     String -> Parm list
///   omega  Mode:      TR | TS
///
/// Models are abstract here, exactly as in the figure: buildModel derives a
/// deterministic parameter list from the configuration, gradient produces a
/// deterministic parameter delta from the current output, and runModel maps
/// (parameters, inputs) to outputs by a deterministic folding function. That
/// abstraction is the point — the rules constrain *store plumbing* (what is
/// read, written, reset, snapshotted), not what the network computes, so any
/// deterministic statement extension lets every rule be tested precisely.
///
//===----------------------------------------------------------------------===//

#ifndef AU_SEMANTICS_INTERP_H
#define AU_SEMANTICS_INTERP_H

#include "core/DatabaseStore.h"
#include "semantics/Ast.h"

#include <map>
#include <optional>

namespace au {
namespace semantics {

/// The program store sigma.
using ProgStore = std::map<std::string, std::vector<float>>;

/// The abstract model store theta.
using ModelStore = std::map<std::string, std::vector<float>>;

/// A machine configuration <sigma, pi, theta, omega>.
struct Machine {
  ProgStore Sigma;
  DatabaseStore Pi;
  ModelStore Theta;
  Mode Omega = Mode::TR;

  /// The <sigma', pi'> snapshot taken by CHECKPOINT.
  std::optional<std::pair<ProgStore, DatabaseStore>> Snapshot;

  /// "Persistent storage" for CONFIG-TEST's loadModel: model parameters
  /// saved by a previous training execution.
  ModelStore SavedModels;
};

//===----------------------------------------------------------------------===//
// Statement extensions (Fig. 8 "Stmt s ::= ... | runModel | gradient | ...")
//===----------------------------------------------------------------------===//

/// Deterministic parameter list for a fresh model.
std::vector<float> buildModel(const ConfigStmt &C);

/// Deterministic model evaluation: output list from parameters and inputs.
/// The output arity equals the last configured layer width (or 1).
std::vector<float> runModel(const std::vector<float> &Params,
                            const std::vector<float> &Inputs);

/// Deterministic pseudo-gradient of the parameters given the last outputs.
std::vector<float> gradient(const std::vector<float> &Params,
                            const std::vector<float> &Outputs);

//===----------------------------------------------------------------------===//
// The interpreter
//===----------------------------------------------------------------------===//

/// Applies the single rule matching \p S to \p M. Returns false (leaving the
/// machine unchanged) when the statement is stuck — e.g. au_NN on an
/// unconfigured model or RESTORE without a checkpoint — so tests can check
/// both progress and stuckness.
bool step(Machine &M, const Stmt &S);

/// Runs a whole program; returns the number of statements executed before
/// completion or the first stuck statement.
size_t run(Machine &M, const Program &P);

} // namespace semantics
} // namespace au

#endif // AU_SEMANTICS_INTERP_H
