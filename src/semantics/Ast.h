//===- semantics/Ast.h - Statement AST for the formal semantics -*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The statement language of Fig. 8. The paper gives small-step rules over
/// statements s; this AST covers exactly the constructs the rules mention:
/// assignment plus the seven primitives. Programs are statement sequences.
///
/// This module exists to make the semantics *executable*: the interpreter in
/// Interp.h runs these statements over explicit sigma / pi / theta stores, so
/// every rule of the figure can be unit- and property-tested, and the
/// production Runtime can be validated against the formal model.
///
//===----------------------------------------------------------------------===//

#ifndef AU_SEMANTICS_AST_H
#define AU_SEMANTICS_AST_H

#include "core/Config.h"

#include <string>
#include <variant>
#include <vector>

namespace au {
namespace semantics {

/// x := v (values are float lists; a scalar is a singleton list).
struct AssignStmt {
  std::string Var;
  std::vector<float> Value;
};

/// @au_config(mdName, delta, alpha, l, n1, ...).
struct ConfigStmt {
  std::string ModelName;
  ModelType Type = ModelType::DNN;
  Algorithm Algo = Algorithm::AdamOpt;
  std::vector<int> Layers;
};

/// @au_extract(extName, size, x): appends x[0 .. sigma(size)-1] to
/// pi[extName]. Size is the name of a program variable, per the rule's
/// sigma[size] lookup.
struct ExtractStmt {
  std::string ExtName;
  std::string SizeVar;
  std::string Var;
};

/// @au_NN(mdName, extName, wbName).
struct NNStmt {
  std::string ModelName;
  std::string ExtName;
  std::string WbName;
};

/// @au_write_back(wbName, size, x): sigma[x[i] -> pi(wbName)[i]].
struct WriteBackStmt {
  std::string WbName;
  std::string SizeVar;
  std::string Var;
};

/// @au_serialize(t1, t2): pi[strcat(t1,t2) -> concat(pi(t1), pi(t2))].
struct SerializeStmt {
  std::string First;
  std::string Second;
};

/// @au_checkpoint().
struct CheckpointStmt {};

/// @au_restore().
struct RestoreStmt {};

/// skip (the terminal configuration of each rule).
struct SkipStmt {};

using Stmt = std::variant<AssignStmt, ConfigStmt, ExtractStmt, NNStmt,
                          WriteBackStmt, SerializeStmt, CheckpointStmt,
                          RestoreStmt, SkipStmt>;

/// A program is a finite statement sequence.
using Program = std::vector<Stmt>;

} // namespace semantics
} // namespace au

#endif // AU_SEMANTICS_AST_H
