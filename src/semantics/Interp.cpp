//===- semantics/Interp.cpp - Small-step interpreter for Fig. 8 ----------===//

#include "semantics/Interp.h"

#include <cassert>
#include <cmath>

using namespace au;
using namespace au::semantics;

//===----------------------------------------------------------------------===//
// Statement extensions
//===----------------------------------------------------------------------===//

std::vector<float> au::semantics::buildModel(const ConfigStmt &C) {
  // The parameter list encodes the output arity in slot 0 (the last layer
  // width) followed by one deterministic parameter per configured neuron.
  int OutArity = C.Layers.empty() ? 1 : C.Layers.back();
  std::vector<float> Params;
  Params.push_back(static_cast<float>(OutArity));
  int Total = 0;
  for (int L : C.Layers)
    Total += L;
  if (Total == 0)
    Total = 4;
  unsigned Hash = 2166136261u;
  for (char Ch : C.ModelName)
    Hash = (Hash ^ static_cast<unsigned char>(Ch)) * 16777619u;
  for (int I = 0; I < Total; ++I)
    Params.push_back(
        std::sin(0.1f * static_cast<float>(I) + (Hash % 97) * 0.01f));
  return Params;
}

std::vector<float>
au::semantics::runModel(const std::vector<float> &Params,
                        const std::vector<float> &Inputs) {
  assert(!Params.empty() && "running a model with no parameters");
  int OutArity = static_cast<int>(Params.front());
  assert(OutArity > 0 && "corrupt model parameter list");
  size_t NP = Params.size() - 1;
  std::vector<float> Out(static_cast<size_t>(OutArity), 0.0f);
  for (int K = 0; K < OutArity; ++K) {
    double Acc = 0.0;
    for (size_t J = 0; J != Inputs.size(); ++J)
      Acc += Params[1 + (J + K) % NP] * Inputs[J];
    Out[K] = static_cast<float>(std::tanh(Acc));
  }
  return Out;
}

std::vector<float>
au::semantics::gradient(const std::vector<float> &Params,
                        const std::vector<float> &Outputs) {
  // A deterministic pseudo-gradient: zero when no outputs have been
  // produced yet (the first TRAIN step), nonzero otherwise. Slot 0 (the
  // arity tag) never changes.
  std::vector<float> Delta(Params.size(), 0.0f);
  if (Outputs.empty())
    return Delta;
  for (size_t I = 1; I != Delta.size(); ++I)
    Delta[I] = 0.001f * Outputs[(I - 1) % Outputs.size()];
  return Delta;
}

//===----------------------------------------------------------------------===//
// Rule application
//===----------------------------------------------------------------------===//

namespace {

/// Reads sigma(size) as a non-negative integer; -1 when unreadable.
int readSize(const ProgStore &Sigma, const std::string &SizeVar) {
  auto It = Sigma.find(SizeVar);
  if (It == Sigma.end() || It->second.empty())
    return -1;
  float V = It->second.front();
  if (V < 0)
    return -1;
  return static_cast<int>(V);
}

bool stepAssign(Machine &M, const AssignStmt &S) {
  M.Sigma[S.Var] = S.Value; // Rule ASSIGN.
  return true;
}

bool stepConfig(Machine &M, const ConfigStmt &S) {
  if (M.Theta.count(S.ModelName))
    return true; // theta(mdName) already bound: theta' = theta.
  if (M.Omega == Mode::TR) {
    // CONFIG-TRAIN: build a fresh model.
    M.Theta[S.ModelName] = buildModel(S);
    return true;
  }
  // CONFIG-TEST: load from persistent storage; stuck when absent.
  auto It = M.SavedModels.find(S.ModelName);
  if (It == M.SavedModels.end())
    return false;
  M.Theta[S.ModelName] = It->second;
  return true;
}

bool stepExtract(Machine &M, const ExtractStmt &S) {
  int Size = readSize(M.Sigma, S.SizeVar);
  if (Size < 0)
    return false;
  auto It = M.Sigma.find(S.Var);
  if (It == M.Sigma.end() ||
      It->second.size() < static_cast<size_t>(Size))
    return false;
  // EXTRACT: pi' = pi[extName -> concat(pi(extName), x[0..size-1])].
  M.Pi.append(S.ExtName, std::vector<float>(It->second.begin(),
                                            It->second.begin() + Size));
  return true;
}

bool stepNN(Machine &M, const NNStmt &S) {
  auto It = M.Theta.find(S.ModelName);
  if (It == M.Theta.end())
    return false; // Stuck: model never configured.
  std::vector<float> Inputs = M.Pi.get(S.ExtName);

  if (M.Omega == Mode::TR) {
    // TRAIN: theta' = theta[md -> theta(md) - gradient(theta(md),
    // pi(wbName))], then pi[wbName -> runModel(theta'(md), pi(extName))].
    std::vector<float> Delta = gradient(It->second, M.Pi.get(S.WbName));
    for (size_t I = 0; I != It->second.size(); ++I)
      It->second[I] -= Delta[I];
  }
  // TEST runs the model without the update; TRAIN runs the updated model.
  M.Pi.set(S.WbName, runModel(It->second, Inputs));
  M.Pi.reset(S.ExtName); // extName -> bottom in both rules.
  return true;
}

bool stepWriteBack(Machine &M, const WriteBackStmt &S) {
  int Size = readSize(M.Sigma, S.SizeVar);
  if (Size < 0)
    return false;
  const std::vector<float> &Vals = M.Pi.get(S.WbName);
  if (Vals.size() < static_cast<size_t>(Size))
    return false;
  // WRITE-BACK: for all i in [0, sigma(size)): sigma[x[i] -> pi(wbName)[i]].
  std::vector<float> &Dst = M.Sigma[S.Var];
  if (Dst.size() < static_cast<size_t>(Size))
    Dst.resize(static_cast<size_t>(Size), 0.0f);
  for (int I = 0; I < Size; ++I)
    Dst[I] = Vals[I];
  return true;
}

bool stepSerialize(Machine &M, const SerializeStmt &S) {
  // SERIALIZE: pi[strcat(t1, t2) -> concat(pi(t1), pi(t2))].
  M.Pi.serialize({S.First, S.Second});
  return true;
}

bool stepCheckpoint(Machine &M) {
  // CHECKPOINT: mkSnapshot(<sigma, pi>). Theta is deliberately excluded.
  M.Snapshot = std::make_pair(M.Sigma, M.Pi);
  return true;
}

bool stepRestore(Machine &M) {
  if (!M.Snapshot)
    return false; // Stuck: rtSnapshot() without a snapshot.
  // RESTORE: <sigma', pi'> := rtSnapshot(). Theta is untouched.
  M.Sigma = M.Snapshot->first;
  M.Pi = M.Snapshot->second;
  return true;
}

} // namespace

bool au::semantics::step(Machine &M, const Stmt &S) {
  return std::visit(
      [&M](const auto &Node) -> bool {
        using T = std::decay_t<decltype(Node)>;
        if constexpr (std::is_same_v<T, AssignStmt>)
          return stepAssign(M, Node);
        else if constexpr (std::is_same_v<T, ConfigStmt>)
          return stepConfig(M, Node);
        else if constexpr (std::is_same_v<T, ExtractStmt>)
          return stepExtract(M, Node);
        else if constexpr (std::is_same_v<T, NNStmt>)
          return stepNN(M, Node);
        else if constexpr (std::is_same_v<T, WriteBackStmt>)
          return stepWriteBack(M, Node);
        else if constexpr (std::is_same_v<T, SerializeStmt>)
          return stepSerialize(M, Node);
        else if constexpr (std::is_same_v<T, CheckpointStmt>)
          return stepCheckpoint(M);
        else if constexpr (std::is_same_v<T, RestoreStmt>)
          return stepRestore(M);
        else
          return true; // SkipStmt.
      },
      S);
}

size_t au::semantics::run(Machine &M, const Program &P) {
  size_t Executed = 0;
  for (const Stmt &S : P) {
    if (!step(M, S))
      break;
    ++Executed;
  }
  return Executed;
}
