//===- core/NameTable.h - Interned feature/model names ---------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Name interning for the primitive hot path. The operational semantics
/// (Fig. 8) keys the database store pi and the model store theta by strings;
/// paying a string hash (or worse, a string concatenation) on every
/// au_extract / au_serialize / au_NN call dominates the per-iteration
/// overhead once the model math is fast. A NameTable interns each name
/// exactly once into a dense NameId; all hot-path structures are then plain
/// vectors indexed by NameId, and the string APIs remain thin forwarding
/// shims that intern on entry.
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_NAMETABLE_H
#define AU_CORE_NAMETABLE_H

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace au {

/// Dense handle for an interned name. Ids are stable for the lifetime of
/// their NameTable and start at 0, so they double as vector indices.
using NameId = uint32_t;

/// "This name was never interned."
inline constexpr NameId InvalidNameId = 0xffffffffu;

/// Bidirectional string <-> NameId interner. Interning is append-only:
/// names are never removed, so a NameId stays valid (and its string
/// reference stable) forever.
class NameTable {
public:
  /// Returns the id of \p Name, interning it first if needed.
  NameId intern(std::string_view Name) {
    auto It = Ids.find(Name);
    if (It != Ids.end())
      return It->second;
    NameId Id = static_cast<NameId>(Names.size());
    Names.emplace_back(Name);
    Ids.emplace(Names.back(), Id);
    return Id;
  }

  /// The id of \p Name, or InvalidNameId when it was never interned.
  NameId find(std::string_view Name) const {
    auto It = Ids.find(Name);
    return It == Ids.end() ? InvalidNameId : It->second;
  }

  /// The string a NameId was interned from.
  const std::string &name(NameId Id) const {
    assert(Id < Names.size() && "NameId out of range");
    return Names[Id];
  }

  /// Number of interned names (== the smallest unused NameId).
  size_t size() const { return Names.size(); }

private:
  /// Transparent hashing so find/intern of a string_view never allocates.
  struct Hash {
    using is_transparent = void;
    size_t operator()(std::string_view S) const {
      return std::hash<std::string_view>{}(S);
    }
  };
  struct Eq {
    using is_transparent = void;
    bool operator()(std::string_view A, std::string_view B) const {
      return A == B;
    }
  };

  /// Deque, not vector: name() hands out references that the contract
  /// keeps stable across later interning, so growth must never move the
  /// strings.
  std::deque<std::string> Names;
  std::unordered_map<std::string, NameId, Hash, Eq> Ids;
};

} // namespace au

#endif // AU_CORE_NAMETABLE_H
