//===- core/Model.cpp - Model store entries (theta) ------------------------===//

#include "core/Model.h"

#include "nn/Layers.h"

#include <cassert>
#include <cstdio>
#include <cstring>

using namespace au;

Model::~Model() = default;

bool ParamSnapshot::installInto(nn::Network &Net) const {
  std::vector<nn::ParamView> Ps = Net.params();
  if (Ps.size() != Params.size())
    return false;
  for (size_t I = 0; I != Ps.size(); ++I) {
    if (Params[I].size() != Ps[I].Count)
      return false;
    std::memcpy(Ps[I].Values, Params[I].data(), Ps[I].Count * sizeof(float));
  }
  // θ changed behind the layers' backs: invalidate packed-weight caches.
  Net.bumpParamGeneration();
  return true;
}

nn::Network Model::makeNetwork(int InputSize, int OutSize, Rng &Rand) const {
  if (Cfg.CustomNetwork)
    return Cfg.CustomNetwork(InputSize, OutSize, Rand);
  if (Cfg.Type == ModelType::CNN) {
    assert(Cfg.FrameSide > 0 && Cfg.FrameChannels > 0 &&
           "CNN model requires frame geometry in its config");
    assert(InputSize == Cfg.FrameSide * Cfg.FrameSide * Cfg.FrameChannels &&
           "CNN input size must match the configured frame geometry");
    return nn::buildDeepMindCnn(Cfg.FrameChannels, Cfg.FrameSide,
                                Cfg.HiddenLayers, OutSize, Rand);
  }
  return nn::buildDnn(InputSize, Cfg.HiddenLayers, OutSize, Rand);
}

//===----------------------------------------------------------------------===//
// Binary persistence helpers
//===----------------------------------------------------------------------===//

namespace {
/// Minimal checked binary writer/reader for the model file format.
struct BinFile {
  std::FILE *F = nullptr;
  bool Ok = true;

  void writeU32(uint32_t V) {
    Ok = Ok && std::fwrite(&V, sizeof(V), 1, F) == 1;
  }
  void writeI32(int32_t V) {
    Ok = Ok && std::fwrite(&V, sizeof(V), 1, F) == 1;
  }
  void writeFloats(const float *P, size_t N) {
    writeU32(static_cast<uint32_t>(N));
    Ok = Ok && std::fwrite(P, sizeof(float), N, F) == N;
  }
  void writeFloatVec(const std::vector<float> &V) {
    writeFloats(V.data(), V.size());
  }
  void writeString(const std::string &S) {
    writeU32(static_cast<uint32_t>(S.size()));
    Ok = Ok && std::fwrite(S.data(), 1, S.size(), F) == S.size();
  }

  uint32_t readU32() {
    uint32_t V = 0;
    Ok = Ok && std::fread(&V, sizeof(V), 1, F) == 1;
    return V;
  }
  int32_t readI32() {
    int32_t V = 0;
    Ok = Ok && std::fread(&V, sizeof(V), 1, F) == 1;
    return V;
  }
  std::vector<float> readFloatVec() {
    uint32_t N = readU32();
    std::vector<float> V(Ok ? N : 0);
    if (Ok && N)
      Ok = std::fread(V.data(), sizeof(float), N, F) == N;
    return V;
  }
  std::string readString() {
    uint32_t N = readU32();
    std::string S(Ok ? N : 0, '\0');
    if (Ok && N)
      Ok = std::fread(S.data(), 1, N, F) == N;
    return S;
  }
};

const uint32_t ModelMagic = 0x41554d44; // "AUMD"

void writeHeader(BinFile &B, const Model &M, int ActionOrOutSize) {
  const ModelConfig &C = M.config();
  B.writeU32(ModelMagic);
  B.writeU32(M.kind() == Model::KindTy::Supervised ? 0u : 1u);
  B.writeU32(C.Type == ModelType::DNN ? 0u : 1u);
  B.writeI32(C.FrameSide);
  B.writeI32(C.FrameChannels);
  B.writeI32(M.inputSize());
  B.writeU32(static_cast<uint32_t>(C.HiddenLayers.size()));
  for (int H : C.HiddenLayers)
    B.writeI32(H);
  B.writeI32(ActionOrOutSize);
  B.writeU32(static_cast<uint32_t>(M.outputs().size()));
  for (const WriteBackSpec &O : M.outputs()) {
    B.writeString(O.Name);
    B.writeI32(O.Size);
  }
}

void writeParams(BinFile &B, nn::Network &Net) {
  std::vector<nn::ParamView> Ps = Net.params();
  B.writeU32(static_cast<uint32_t>(Ps.size()));
  for (const nn::ParamView &P : Ps)
    B.writeFloats(P.Values, P.Count);
}

bool readParams(BinFile &B, nn::Network &Net) {
  std::vector<nn::ParamView> Ps = Net.params();
  if (B.readU32() != Ps.size())
    return false;
  for (nn::ParamView &P : Ps) {
    std::vector<float> V = B.readFloatVec();
    if (!B.Ok || V.size() != P.Count)
      return false;
    std::memcpy(P.Values, V.data(), P.Count * sizeof(float));
  }
  // θ changed behind the layers' backs (au_restore / model load):
  // invalidate every packed-weight cache.
  Net.bumpParamGeneration();
  return true;
}

/// Parsed common header fields.
struct Header {
  uint32_t KindTag = 0;
  ModelType Type = ModelType::DNN;
  int FrameSide = 0;
  int FrameChannels = 0;
  int InSize = 0;
  std::vector<int> Hidden;
  int ActionOrOutSize = 0;
  std::vector<WriteBackSpec> Outs;
};

bool readHeader(BinFile &B, Header &H) {
  if (B.readU32() != ModelMagic)
    return false;
  H.KindTag = B.readU32();
  H.Type = B.readU32() == 0 ? ModelType::DNN : ModelType::CNN;
  H.FrameSide = B.readI32();
  H.FrameChannels = B.readI32();
  H.InSize = B.readI32();
  uint32_t NumHidden = B.readU32();
  if (!B.Ok || NumHidden > 64)
    return false;
  for (uint32_t I = 0; I != NumHidden; ++I)
    H.Hidden.push_back(B.readI32());
  H.ActionOrOutSize = B.readI32();
  uint32_t NumOuts = B.readU32();
  if (!B.Ok || NumOuts > 64)
    return false;
  for (uint32_t I = 0; I != NumOuts; ++I) {
    WriteBackSpec S;
    S.Name = B.readString();
    S.Size = B.readI32();
    H.Outs.push_back(std::move(S));
  }
  return B.Ok;
}
} // namespace

//===----------------------------------------------------------------------===//
// SlModel
//===----------------------------------------------------------------------===//

SlModel::SlModel(ModelConfig C)
    : Model(KindTy::Supervised, std::move(C)), Rand(Cfg.Seed) {}

int SlModel::totalOutputSize() const {
  int N = 0;
  for (const WriteBackSpec &O : Outs)
    N += O.Size;
  return N;
}

void SlModel::addSample(const std::vector<float> &X,
                        const std::vector<float> &Y,
                        const std::vector<WriteBackSpec> &Outputs) {
  if (!Built) {
    InSize = static_cast<int>(X.size());
    Outs = Outputs;
    double Lr = Cfg.LearningRate > 0 ? Cfg.LearningRate : 1e-3;
    Trainer = std::make_unique<nn::SupervisedTrainer>(
        makeNetwork(InSize, totalOutputSize(), Rand), Lr);
    Built = true;
  }
  assert(static_cast<int>(X.size()) == InSize && "feature size changed");
  assert(static_cast<int>(Y.size()) == totalOutputSize() &&
         "label size does not match declared outputs");
  Trainer->addSample(X, Y);
}

double SlModel::train(int Epochs, int BatchSize) {
  assert(Built && Trainer && "training an unbuilt SL model");
  return Trainer->train(Epochs, BatchSize, Rand);
}

std::vector<float> SlModel::predict(const std::vector<float> &X) {
  assert(Built && Trainer && "predicting with an unbuilt SL model");
  return Trainer->predict(X);
}

void SlModel::predictRows(const float *Xs, int Rows, std::vector<float> &Out) {
  assert(Built && Trainer && "predicting with an unbuilt SL model");
  Trainer->predictRowsInto(Xs, Rows, Out);
}

size_t SlModel::numSamples() const {
  return Trainer ? Trainer->numSamples() : 0;
}

bool SlModel::captureParams(ParamSnapshot &S) {
  if (!Built || !Trainer)
    return false;
  S.InSize = InSize;
  S.OutSize = totalOutputSize();
  S.Params.clear();
  for (const nn::ParamView &P : Trainer->network().params())
    S.Params.emplace_back(P.Values, P.Values + P.Count);
  Trainer->getNormalization(S.XMean, S.XStd, S.YMean, S.YStd);
  return true;
}

std::unique_ptr<nn::SupervisedTrainer>
SlModel::makeReplica(const ParamSnapshot &S) const {
  // A private Rng: the initialization is immediately overwritten by the
  // snapshot, and the live model's Rand must not advance.
  Rng R(Cfg.Seed);
  double Lr = Cfg.LearningRate > 0 ? Cfg.LearningRate : 1e-3;
  auto T = std::make_unique<nn::SupervisedTrainer>(
      makeNetwork(S.InSize, S.OutSize, R), Lr);
  if (!S.installInto(T->network()))
    return nullptr;
  T->setNormalization(S.XMean, S.XStd, S.YMean, S.YStd);
  return T;
}

size_t SlModel::modelSizeBytes() {
  return Built ? Trainer->network().sizeInBytes() : 0;
}

size_t SlModel::numParams() {
  return Built ? Trainer->network().numParams() : 0;
}

bool SlModel::save(const std::string &Path) {
  if (!Built)
    return false;
  BinFile B;
  B.F = std::fopen(Path.c_str(), "wb");
  if (!B.F)
    return false;
  writeHeader(B, *this, totalOutputSize());
  writeParams(B, Trainer->network());
  std::vector<float> XM, XS, YM, YS;
  Trainer->getNormalization(XM, XS, YM, YS);
  B.writeFloatVec(XM);
  B.writeFloatVec(XS);
  B.writeFloatVec(YM);
  B.writeFloatVec(YS);
  std::fclose(B.F);
  return B.Ok;
}

bool SlModel::load(const std::string &Path) {
  BinFile B;
  B.F = std::fopen(Path.c_str(), "rb");
  if (!B.F)
    return false;
  Header H;
  bool HeaderOk = readHeader(B, H) && H.KindTag == 0;
  if (!HeaderOk) {
    std::fclose(B.F);
    return false;
  }
  Cfg.Type = H.Type;
  Cfg.FrameSide = H.FrameSide;
  Cfg.FrameChannels = H.FrameChannels;
  Cfg.HiddenLayers = H.Hidden;
  InSize = H.InSize;
  Outs = H.Outs;
  double Lr = Cfg.LearningRate > 0 ? Cfg.LearningRate : 1e-3;
  Trainer = std::make_unique<nn::SupervisedTrainer>(
      makeNetwork(InSize, H.ActionOrOutSize, Rand), Lr);
  bool Ok = readParams(B, Trainer->network());
  std::vector<float> XM = B.readFloatVec();
  std::vector<float> XS = B.readFloatVec();
  std::vector<float> YM = B.readFloatVec();
  std::vector<float> YS = B.readFloatVec();
  Ok = Ok && B.Ok;
  std::fclose(B.F);
  if (!Ok)
    return false;
  Trainer->setNormalization(std::move(XM), std::move(XS), std::move(YM),
                            std::move(YS));
  Built = true;
  return true;
}

//===----------------------------------------------------------------------===//
// RlModel
//===----------------------------------------------------------------------===//

RlModel::RlModel(ModelConfig C) : Model(KindTy::Reinforcement, std::move(C)) {
  if (Cfg.LearningRate > 0)
    QCfg.LearningRate = Cfg.LearningRate;
}

void RlModel::setQConfig(const nn::QConfig &C) {
  assert(!Built && "Q config must be set before the first step");
  QCfg = C;
  if (Cfg.LearningRate > 0)
    QCfg.LearningRate = Cfg.LearningRate;
}

void RlModel::build(int InputSize, const WriteBackSpec &Output) {
  InSize = InputSize;
  Outs = {Output};
  assert(Output.Size > 1 && "RL output size is the action count (> 1)");
  // The factory captures a shared seed sequence: online and target nets get
  // distinct but deterministic initializations before the initial sync.
  unsigned long long Seed = Cfg.Seed;
  auto MakeNet = [this, Seed]() mutable {
    Rng R(Seed++);
    return makeNetwork(InSize, Outs.front().Size, R);
  };
  Learner = std::make_unique<nn::QLearner>(MakeNet, Output.Size, QCfg,
                                           Cfg.Seed ^ 0x5eedu);
  if (NumActorsCfg > 0)
    Learner->configureActors(NumActorsCfg);
  Built = true;
}

void RlModel::configureActors(int NumActors) {
  assert(NumActors > 0 && "need at least one actor");
  NumActorsCfg = NumActors;
  ActorPrevStates.resize(static_cast<size_t>(NumActors));
  ActorPrevActions.assign(static_cast<size_t>(NumActors), -1);
  ActorHavePrev.assign(static_cast<size_t>(NumActors), 0);
  if (Built)
    Learner->configureActors(NumActors);
}

void RlModel::stepActors(const float *States, int K, int D,
                         const float *Rewards, const uint8_t *Terminals,
                         const WriteBackSpec &Output, bool Learning,
                         int *ActionsOut) {
  if (!Built)
    build(D, Output);
  assert(D == InSize && "extracted state size changed between steps");
  assert(Output.Size == Outs.front().Size && "action count changed");
  assert((!Learning || K == NumActorsCfg) &&
         "learning step must cover every configured actor");

  // Observe each actor's completed transition in actor order, then advance
  // the global training schedule exactly once for the whole tick — the
  // batched analogue of the serial observe-then-select step.
  if (Learning) {
    int Observed = 0;
    for (int A = 0; A < K; ++A) {
      if (!ActorHavePrev[static_cast<size_t>(A)])
        continue;
      const std::vector<float> &Prev = ActorPrevStates[static_cast<size_t>(A)];
      Learner->observeActor(A, Prev.data(), Prev.size(),
                            ActorPrevActions[static_cast<size_t>(A)],
                            Rewards[A], States + static_cast<size_t>(A) * D,
                            static_cast<size_t>(D), Terminals[A] != 0);
      ++Observed;
    }
    if (Observed)
      Learner->finishTick(Observed);
  }

  Learner->selectActionsBatch(States, K, D, Learning, ActionsOut);

  if (!Learning)
    return; // Deployment-mode steps never disturb the transition chains.
  for (int A = 0; A < K; ++A) {
    if (Terminals[A] != 0) {
      // The episode ended at this state; do not chain the next transition
      // across the reset that follows.
      ActorHavePrev[static_cast<size_t>(A)] = 0;
      continue;
    }
    const float *Row = States + static_cast<size_t>(A) * D;
    ActorPrevStates[static_cast<size_t>(A)].assign(Row, Row + D);
    ActorPrevActions[static_cast<size_t>(A)] = ActionsOut[A];
    ActorHavePrev[static_cast<size_t>(A)] = 1;
  }
}

int RlModel::step(const std::vector<float> &State, float Reward, bool Terminal,
                  const WriteBackSpec &Output, bool Learning) {
  if (!Built)
    build(static_cast<int>(State.size()), Output);
  return stepBuilt(State, Reward, Terminal, Output.Size, Learning);
}

int RlModel::stepBuilt(const std::vector<float> &State, float Reward,
                       bool Terminal, int NumActions, bool Learning) {
  assert(Built && "stepBuilt on an unbuilt RL model");
  assert(static_cast<int>(State.size()) == InSize &&
         "extracted state size changed between steps");
  assert(NumActions == Outs.front().Size && "action count changed");
  (void)NumActions;

  if (HavePrev && Learning)
    // PrevState is dead after this observe (reassigned or invalidated
    // below), so hand its buffer to the replay ring instead of copying.
    Learner->observe(std::move(PrevState), PrevAction, Reward, State,
                     Terminal);

  if (Terminal) {
    // The episode ended at this state; do not chain the next transition
    // across the au_restore rollback that follows.
    if (Learning)
      HavePrev = false;
    return Learner->selectAction(State, Learning);
  }

  int Action = Learner->selectAction(State, Learning);
  if (Learning) {
    // Deployment-mode steps (e.g. evaluations interleaved with training)
    // must not disturb the training transition chain.
    PrevState = State;
    PrevAction = Action;
    HavePrev = true;
  }
  return Action;
}

std::vector<float> RlModel::qValues(const std::vector<float> &State) {
  assert(Built && "qValues on an unbuilt RL model");
  return Learner->qValues(State);
}

size_t RlModel::modelSizeBytes() {
  return Built ? Learner->modelSizeBytes() : 0;
}

size_t RlModel::numParams() {
  return Built ? Learner->onlineNetwork().numParams() : 0;
}

bool RlModel::save(const std::string &Path) {
  if (!Built)
    return false;
  BinFile B;
  B.F = std::fopen(Path.c_str(), "wb");
  if (!B.F)
    return false;
  writeHeader(B, *this, Outs.front().Size);
  writeParams(B, Learner->onlineNetwork());
  std::fclose(B.F);
  return B.Ok;
}

bool RlModel::load(const std::string &Path) {
  BinFile B;
  B.F = std::fopen(Path.c_str(), "rb");
  if (!B.F)
    return false;
  Header H;
  bool HeaderOk = readHeader(B, H) && H.KindTag == 1 && H.Outs.size() == 1;
  if (!HeaderOk) {
    std::fclose(B.F);
    return false;
  }
  Cfg.Type = H.Type;
  Cfg.FrameSide = H.FrameSide;
  Cfg.FrameChannels = H.FrameChannels;
  Cfg.HiddenLayers = H.Hidden;
  build(H.InSize, H.Outs.front());
  bool Ok = readParams(B, Learner->onlineNetwork());
  std::fclose(B.F);
  if (!Ok)
    return false;
  Learner->onlineNetwork();
  return true;
}
