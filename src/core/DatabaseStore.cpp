//===- core/DatabaseStore.cpp - The database store (pi) -------------------===//

#include "core/DatabaseStore.h"

#include <cassert>
#include <cstring>

using namespace au;

static const std::vector<float> EmptyList;

DatabaseStore::InternAuthority::~InternAuthority() = default;

void SerializedView::copyTo(float *Dst) const {
  for (const Span &S : Spans) {
    std::memcpy(Dst, S.Data, S.Len * sizeof(float));
    Dst += S.Len;
  }
}

//===----------------------------------------------------------------------===//
// Interning and slot access
//===----------------------------------------------------------------------===//

NameId DatabaseStore::intern(std::string_view Name) {
  NameId Id = Names.intern(Name);
  if (Id >= Slots.size())
    Slots.resize(Names.size());
  return Id;
}

//===----------------------------------------------------------------------===//
// Handle-keyed primitives (the append/reset pair is inline in the header)
//===----------------------------------------------------------------------===//

void DatabaseStore::appendSlow(Slot &S, const float *Values, size_t N) {
  if (S.Lazy)
    materialize(S); // Appending to a serialized entry: concretize first.
  if (!S.Mapped) {
    S.Data.clear(); // Fresh list over the retained buffer.
    S.Mapped = true;
    ++S.WriteGen;
    if (S.Data.capacity() < N)
      S.Data.reserve(N);
  } else if (S.Data.size() + N > S.Data.capacity()) {
    ++S.WriteGen; // Growth reallocates: span pointers die.
  }
  S.Data.insert(S.Data.end(), Values, Values + N);
  touch(S);
  Appended += N;
}

const std::vector<float> &DatabaseStore::get(NameId Id) const {
  const Slot &S = slot(Id);
  if (!S.Mapped)
    return EmptyList;
  if (S.Lazy)
    materialize(S);
  return S.Data;
}

SerializedView DatabaseStore::view(NameId Id) const {
  SerializedView V;
  const Slot &S = slot(Id);
  if (!S.Mapped)
    return V;
  if (!S.Lazy) {
    if (!S.Data.empty())
      V.Spans.push_back({S.Data.data(), S.Data.size()});
    V.Total = S.Data.size();
    return V;
  }
  V.Spans.reserve(S.Srcs.size());
  for (const Slot::Src &Src : S.Srcs) {
    const Slot &From = slot(Src.Id);
    assert(From.WriteGen == Src.WriteGen &&
           "serialize source mutated before the combined entry was consumed");
    V.Spans.push_back({From.Data.data(), Src.Len});
  }
  V.Total = S.LazySize;
  return V;
}

void DatabaseStore::materialize(const Slot &S) const {
  assert(S.Lazy && "materializing a concrete slot");
  // Gather into a scratch list first: source buffers must not alias the
  // destination mid-copy (serialize() already rejects self-reference, this
  // keeps the invariant local).
  std::vector<float> Gathered;
  Gathered.reserve(S.LazySize);
  for (const Slot::Src &Src : S.Srcs) {
    const Slot &From = slot(Src.Id);
    assert(From.WriteGen == Src.WriteGen &&
           "serialize source mutated before the combined entry was consumed");
    Gathered.insert(Gathered.end(), From.Data.data(),
                    From.Data.data() + Src.Len);
  }
  S.Data = std::move(Gathered);
  S.Srcs.clear();
  S.Lazy = false;
  ++S.WriteGen;
}

void DatabaseStore::set(NameId Id, const float *Values, size_t N) {
  Slot &S = slot(Id);
  S.Data.assign(Values, Values + N);
  S.Srcs.clear();
  S.Lazy = false;
  S.Mapped = true;
  ++S.WriteGen;
  touch(S);
}

void DatabaseStore::set(NameId Id, std::vector<float> Values) {
  Slot &S = slot(Id);
  S.Data = std::move(Values);
  S.Srcs.clear();
  S.Lazy = false;
  S.Mapped = true;
  ++S.WriteGen;
  touch(S);
}

NameId DatabaseStore::combinedIdFor(const std::vector<NameId> &Ids) {
  auto It = CombinedIds.find(Ids);
  NameId Combined;
  if (It != CombinedIds.end()) {
    Combined = It->second;
  } else {
    std::string Name;
    for (NameId Id : Ids)
      Name += Names.name(Id);
    // With an authority installed (Session-owned stores), the combined
    // name interns through the engine's master table — resolveName replays
    // it into this store before returning, so the id indexes Slots here
    // exactly as a local intern would.
    Combined = Authority ? Authority->resolveName(Name) : intern(Name);
    assert(Combined < Slots.size() &&
           "intern authority returned an id unknown to this store");
    CombinedIds.emplace(Ids, Combined);
  }
  LastSerializeIds = Ids;
  LastSerializeCombined = Combined;
  return Combined;
}

void DatabaseStore::append(NameId Id, std::vector<float> &&Values) {
  Slot &S = slot(Id);
  size_t N = Values.size();
  if (!S.Mapped) {
    // Adopt the buffer wholesale: the common model-output path hands over
    // a freshly built vector, so this kills the per-step copy.
    S.Data = std::move(Values);
    S.Srcs.clear();
    S.Lazy = false;
    S.Mapped = true;
    ++S.WriteGen;
    touch(S);
    Appended += N;
    return;
  }
  append(Id, Values.data(), N);
}

//===----------------------------------------------------------------------===//
// String-keyed shims
//===----------------------------------------------------------------------===//

void DatabaseStore::append(const std::string &Name,
                           const std::vector<float> &Values) {
  append(intern(Name), Values.data(), Values.size());
}

void DatabaseStore::append(const std::string &Name,
                           std::vector<float> &&Values) {
  append(intern(Name), std::move(Values));
}

void DatabaseStore::append(const std::string &Name, float Value) {
  append(intern(Name), &Value, 1);
}

const std::vector<float> &DatabaseStore::get(const std::string &Name) const {
  NameId Id = Names.find(Name);
  return Id == InvalidNameId ? EmptyList : get(Id);
}

void DatabaseStore::set(const std::string &Name, std::vector<float> Values) {
  set(intern(Name), std::move(Values));
}

void DatabaseStore::reset(const std::string &Name) {
  NameId Id = Names.find(Name);
  if (Id != InvalidNameId && Id < Slots.size())
    reset(Id);
}

bool DatabaseStore::contains(const std::string &Name) const {
  NameId Id = Names.find(Name);
  return Id != InvalidNameId && Id < Slots.size() && contains(Id);
}

std::string DatabaseStore::serialize(const std::vector<std::string> &Names_) {
  assert(!Names_.empty() && "serialize of no lists");
  return nameOf(serialize(internRange(Names_)));
}

std::string DatabaseStore::serialize(std::initializer_list<const char *> Ns) {
  assert(Ns.size() > 0 && "serialize of no lists");
  return nameOf(serialize(internRange(Ns)));
}

//===----------------------------------------------------------------------===//
// Accounting and checkpoint support
//===----------------------------------------------------------------------===//

size_t DatabaseStore::numEntries() const {
  size_t N = 0;
  for (const Slot &S : Slots)
    N += S.Mapped;
  return N;
}

size_t DatabaseStore::totalValues() const {
  size_t N = 0;
  for (const Slot &S : Slots)
    if (S.Mapped)
      N += S.Lazy ? S.LazySize : S.Data.size();
  return N;
}

void DatabaseStore::clear() {
  for (Slot &S : Slots) {
    S.Data = {};
    S.Srcs = {};
    S.LazySize = 0;
    S.Mapped = false;
    S.Lazy = false;
    ++S.WriteGen; // The retained bytes are gone: invalidate spans.
    touch(S);     // And any checkpoint snapshot must re-copy the slot.
  }
}

void DatabaseStore::snapshotSlot(NameId Id, std::vector<float> &Data,
                                 bool &Mapped) const {
  const Slot &S = slot(Id);
  Mapped = S.Mapped;
  if (!S.Mapped) {
    Data.clear();
    return;
  }
  if (S.Lazy)
    materialize(S);
  Data.assign(S.Data.begin(), S.Data.end());
}

void DatabaseStore::restoreSlot(NameId Id, const std::vector<float> &Data,
                                bool Mapped, uint64_t Gen) {
  Slot &S = slot(Id);
  S.Data.assign(Data.begin(), Data.end());
  S.Srcs.clear();
  S.LazySize = 0;
  S.Lazy = false;
  S.Mapped = Mapped;
  ++S.WriteGen;
  S.Gen = Gen;
}
