//===- core/DatabaseStore.cpp - The database store (pi) -------------------===//

#include "core/DatabaseStore.h"

#include <cassert>

using namespace au;

void DatabaseStore::append(const std::string &Name,
                           const std::vector<float> &Values) {
  std::vector<float> &List = Entries[Name];
  List.insert(List.end(), Values.begin(), Values.end());
  Appended += Values.size();
}

void DatabaseStore::append(const std::string &Name, float Value) {
  Entries[Name].push_back(Value);
  ++Appended;
}

const std::vector<float> &DatabaseStore::get(const std::string &Name) const {
  static const std::vector<float> Empty;
  auto It = Entries.find(Name);
  return It == Entries.end() ? Empty : It->second;
}

void DatabaseStore::set(const std::string &Name, std::vector<float> Values) {
  Entries[Name] = std::move(Values);
}

void DatabaseStore::reset(const std::string &Name) { Entries.erase(Name); }

bool DatabaseStore::contains(const std::string &Name) const {
  return Entries.count(Name) != 0;
}

std::string DatabaseStore::serialize(const std::vector<std::string> &Names) {
  assert(!Names.empty() && "serialize of no lists");
  std::string Combined;
  std::vector<float> Values;
  for (const std::string &N : Names) {
    Combined += N;
    const std::vector<float> &List = get(N);
    Values.insert(Values.end(), List.begin(), List.end());
  }
  set(Combined, std::move(Values));
  return Combined;
}

size_t DatabaseStore::totalValues() const {
  size_t N = 0;
  for (const auto &[Name, List] : Entries)
    N += List.size();
  return N;
}
