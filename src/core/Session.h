//===- core/Session.h - Per-client execution state (sigma, pi) -*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// One client's slice of an autonomized execution (DESIGN.md §10): the
/// database store pi, the checkpoint manager for the program store sigma,
/// the primitive counters and the zero-alloc staging buffers. The shared
/// model store theta lives in the process-wide Engine; a Session holds only
/// what Fig. 8 scopes to a single execution, so many sessions can serve
/// concurrently over one Engine.
///
/// Every primitive of Fig. 1 is implemented here exactly once — the main
/// path, the facade's actor path and the RlHarness session pools all run
/// through the same Session methods. String-keyed overloads are one-line
/// interning shims over the handle-keyed hot path (DESIGN.md §7).
///
/// A session's name table mirrors the Engine's master table: intern() asks
/// the Engine for the id and then replays any names this store has not seen
/// yet, so a NameId is valid in every session of the engine and in the
/// engine itself. Combined serialize names take the same route through the
/// DatabaseStore::InternAuthority hook. If a caller bypasses the session
/// and interns directly into db(), the mirror can no longer hold — the next
/// intern() detects it and throws StoreDivergenceError (a real error path,
/// not an assert; it fires in release builds too).
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_SESSION_H
#define AU_CORE_SESSION_H

#include "core/Checkpoint.h"
#include "core/Config.h"
#include "core/DatabaseStore.h"
#include "core/Model.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace au {

class Engine;
class InferenceReplica;

/// Primitive-level counters (used by the overhead microbenchmarks and by
/// the Table 2 trace-size accounting). Named RuntimeStats for source
/// compatibility with the pre-split Runtime API; each Session owns one.
struct RuntimeStats {
  size_t NumConfig = 0;
  size_t NumExtract = 0;
  size_t FloatsExtracted = 0;
  size_t NumSerialize = 0;
  size_t NumNn = 0;
  size_t NumWriteBack = 0;
  size_t NumCheckpoint = 0;
  size_t NumRestore = 0;

  /// Trace footprint in bytes (extracted floats), Table 2's "Trace Size".
  size_t traceBytes() const { return FloatsExtracted * sizeof(float); }
};

using SessionStats = RuntimeStats;

/// Handle-keyed counterpart of WriteBackSpec: one declared output under an
/// interned name. For SL the number of predicted floats; for RL the number
/// of discrete actions.
struct WriteBackHandle {
  NameId Name = InvalidNameId;
  int Size = 1;
};

/// Thrown when a session (or actor) store's name table stops mirroring the
/// engine's master table — someone interned into the store behind the
/// session's back, so handles would resolve to the wrong slots.
class StoreDivergenceError : public std::runtime_error {
public:
  explicit StoreDivergenceError(const std::string &What)
      : std::runtime_error(What) {}
};

/// Per-client execution state <sigma, pi> bound to a shared Engine.
class Session : public DatabaseStore::InternAuthority {
public:
  /// Binds a new, empty session to \p Eng. The session starts with a full
  /// mirror of the engine's name table, so any handle interned earlier
  /// (by the engine or a sibling session) already indexes this store.
  Session(Engine &Eng, Mode M);
  ~Session() override;

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  Engine &engine() { return Eng; }

  Mode mode() const { return ExecMode; }

  /// Switches mode in place (e.g. evaluate a freshly trained in-memory
  /// model without a save/load round trip). The semantics fixes the mode
  /// per execution; this is a harness convenience.
  void switchMode(Mode M) { ExecMode = M; }

  /// Interns \p Name through the engine's master table (idempotent) and
  /// mirrors it locally; returns the dense handle accepted by every
  /// primitive overload below. The same id is valid in every session of
  /// this engine. Throws StoreDivergenceError when the local store no
  /// longer mirrors the master table (see the file comment).
  NameId intern(std::string_view Name);

  //===--------------------------------------------------------------------===//
  // Primitives
  //===--------------------------------------------------------------------===//

  /// au_config: Rule CONFIG-TRAIN creates the model in the engine's theta
  /// if absent; Rule CONFIG-TEST loads it instead. Returns the model.
  Model *config(const ModelConfig &C);

  /// au_extract: Rule EXTRACT appends Size values to pi[Name].
  void extract(const std::string &Name, size_t Size, const float *Data);
  void extract(const std::string &Name, size_t Size, const double *Data);
  void extract(const std::string &Name, float Value);
  void extract(const std::string &Name, double Value) {
    extract(Name, static_cast<float>(Value));
  }
  void extract(const std::string &Name, int Value) {
    extract(Name, static_cast<float>(Value));
  }

  /// au_extract over handles: appends straight into the retained slot
  /// buffer — no string hash, no temporary vector. Defined inline: this is
  /// the most frequent primitive of the annotated loop.
  void extract(NameId Id, size_t Size, const float *Data) {
    assert(Data || Size == 0);
    ++Stats.NumExtract;
    Stats.FloatsExtracted += Size;
    Db.append(Id, Data, Size);
  }
  void extract(NameId Id, size_t Size, const double *Data);
  void extract(NameId Id, float Value) {
    ++Stats.NumExtract;
    ++Stats.FloatsExtracted;
    Db.append(Id, Value);
  }
  void extract(NameId Id, double Value) {
    extract(Id, static_cast<float>(Value));
  }
  void extract(NameId Id, int Value) { extract(Id, static_cast<float>(Value)); }

  /// au_serialize: Rule SERIALIZE concatenates lists (and names); returns
  /// the combined name to pass to nn(). One-line shims over the handle
  /// path.
  std::string serialize(const std::vector<std::string> &Names);
  /// Disambiguates serialize({"A", "B"}) (see DatabaseStore::serialize).
  std::string serialize(std::initializer_list<const char *> Names);

  /// au_serialize over handles: records the concatenation as zero-copy
  /// spans (no float moves) and returns the combined handle, cached per
  /// id-vector after the first call. Combined names intern through the
  /// engine (InternAuthority), so the handle is engine-wide.
  NameId serialize(const std::vector<NameId> &Ids) {
    ++Stats.NumSerialize;
    // The constituent lists are consumed: they have been moved into the
    // combined list. (Fig. 8's SERIALIZE leaves them mapped, but its
    // TRAIN/TEST rules only reset the combined extName — without this
    // refinement the model input would grow without bound across loop
    // iterations.) The consume keeps the slot bytes, so the combined
    // entry's zero-copy spans stay valid.
    return Db.serialize(Ids, /*Consume=*/true);
  }

  /// au_NN, supervised form: consumes pi[ExtName] as the feature vector and
  /// declares the outputs this model predicts. TR records a pending sample
  /// completed by the write-backs; TS writes predictions into pi.
  void nn(const std::string &ModelName, const std::string &ExtName,
          const std::vector<WriteBackSpec> &Outputs);

  /// au_NN, reinforcement form (the paper's au_NN(model, ext, reward, term,
  /// wbName)): consumes pi[ExtName] as the state, feeds (reward, terminal)
  /// to the learner (TR trains online per Rule TRAIN; TS only predicts per
  /// Rule TEST) and stores the selected action in pi[Output.Name].
  void nn(const std::string &ModelName, const std::string &ExtName,
          float Reward, bool Terminal, const WriteBackSpec &Output);

  /// Handle-keyed au_NN forms. The feature/state list is gathered from the
  /// serialize spans into a reusable staging buffer and, in TS mode, fed
  /// through the batched forwardBatch engine (Rows = 1), so the steady
  /// state allocates nothing per call.
  void nn(NameId ModelId, NameId ExtId,
          const std::vector<WriteBackHandle> &Outputs);
  void nn(NameId ModelId, NameId ExtId, float Reward, bool Terminal,
          const WriteBackHandle &Output);

  /// Batched TS-mode au_NN: pi[ExtId] holds \p Rows feature vectors back to
  /// back; one forwardBatch call predicts all of them and each declared
  /// output receives its Rows x Size predictions concatenated row-major.
  /// Deployment-mode only (TR samples are labeled per iteration).
  void nnBatch(NameId ModelId, NameId ExtId, int Rows,
               const std::vector<WriteBackHandle> &Outputs);

  /// au_write_back: Rule WRITE-BACK copies pi[Name] into the program
  /// variable. In TR mode, supervised outputs flow the opposite way: the
  /// program's current values are recorded as the training label.
  void writeBack(const std::string &Name, size_t Size, float *Data);
  void writeBack(const std::string &Name, size_t Size, double *Data);

  /// RL write-back: \p NumActions documents the action count (the paper's
  /// "the value 5 means there are 5 possible actions"); the predicted
  /// action index is stored into *ActionKey.
  void writeBack(const std::string &Name, int NumActions, int *ActionKey);

  /// Handle-keyed write-backs.
  void writeBack(NameId Id, size_t Size, float *Data);
  void writeBack(NameId Id, size_t Size, double *Data);
  void writeBack(NameId Id, int NumActions, int *ActionKey);

  /// au_checkpoint: Rule CHECKPOINT snapshots registered program state and
  /// pi; model state theta is deliberately excluded.
  void checkpoint();

  /// au_restore: Rule RESTORE rolls program state and pi back to the last
  /// checkpoint; models keep their accumulated learning.
  void restore();

  //===--------------------------------------------------------------------===//
  // Session support
  //===--------------------------------------------------------------------===//

  DatabaseStore &db() { return Db; }
  CheckpointManager &checkpoints() { return Ckpt; }
  const RuntimeStats &stats() const { return Stats; }

  /// Folds externally accumulated primitive counters into this session's
  /// stats (session pools and the facade's actor-stats merge report their
  /// workers' counters into the session whose stats() the caller reads).
  void foldStats(const RuntimeStats &Delta) {
    Stats.NumExtract += Delta.NumExtract;
    Stats.FloatsExtracted += Delta.FloatsExtracted;
    Stats.NumSerialize += Delta.NumSerialize;
    Stats.NumNn += Delta.NumNn;
    Stats.NumWriteBack += Delta.NumWriteBack;
  }

  /// Looks up a configured model in the engine's theta; null when absent.
  Model *getModel(const std::string &Name);
  Model *getModel(NameId Id);

  /// Offline supervised training over the samples collected in TR mode;
  /// publishes a fresh parameter snapshot for concurrent TS readers.
  /// Returns the final epoch's mean loss.
  double trainSupervised(const std::string &ModelName, int Epochs,
                         int BatchSize);

  /// Persists one model / all models (engine-level theta).
  bool saveModel(const std::string &ModelName);
  bool saveAllModels();

  /// The file path a model is saved to / loaded from.
  std::string modelPath(const std::string &ModelName) const;

  //===--------------------------------------------------------------------===//
  // Shared-inference serving (DESIGN.md §10)
  //===--------------------------------------------------------------------===//

  /// When enabled, TS-mode supervised au_NN serves from a session-local
  /// replica of the engine's latest *published* parameter snapshot instead
  /// of touching the live (possibly training) model: many sessions on many
  /// threads then run inference concurrently while one trainer publishes.
  /// Off by default — the single-tenant path reads the live model directly,
  /// which keeps pre-split behavior bit-identical.
  void setSharedInference(bool On) { SharedInference = On; }
  bool sharedInference() const { return SharedInference; }

  /// The snapshot version the session's serving replica of \p ModelId last
  /// refreshed to (0 = never served / no snapshot yet).
  uint64_t servingVersion(NameId ModelId) const;

private:
  friend class Engine;

  /// An SL au_NN whose labels have not all arrived yet (TR mode).
  struct PendingSample {
    NameId ModelId = InvalidNameId;
    std::vector<float> X;
    std::vector<WriteBackHandle> Outputs;
    /// (output id, label values); small, searched linearly.
    std::vector<std::pair<NameId, std::vector<float>>> Labels;
  };

  /// DatabaseStore::InternAuthority: combined serialize names intern here,
  /// so they land in the engine's master table like every other name.
  NameId resolveName(std::string_view Name) override { return intern(Name); }

  /// Replays engine names this store has not mirrored yet; throws
  /// StoreDivergenceError when the replay cannot keep ids aligned.
  void syncNames();

  void completePendingIfReady(PendingSample &P);
  void setWbOwner(NameId Out, NameId ModelId);
  NameId wbOwner(NameId Out) const {
    return Out < WbOwner.size() ? WbOwner[Out] : InvalidNameId;
  }

  /// Serves one TS prediction from the session replica when shared
  /// inference is on and a snapshot is published; returns false to fall
  /// back to the live model.
  bool predictShared(NameId ModelId, const float *Xs, int Rows,
                     std::vector<float> &Out);

  Engine &Eng;
  Mode ExecMode;
  /// How many of the engine's master-table names this store has mirrored;
  /// Db.names().size() must equal this at every sync point or the store
  /// has diverged (StoreDivergenceError).
  size_t Synced = 0;
  DatabaseStore Db;
  CheckpointManager Ckpt;
  std::vector<Model *> ModelCache; ///< NameId -> model (engine-backed).
  std::vector<NameId> WbOwner;     ///< Output id -> owning model id.
  std::vector<PendingSample> Pending;
  RuntimeStats Stats;
  bool SharedInference = false;
  /// NameId -> serving replica (only populated under shared inference).
  std::vector<std::unique_ptr<InferenceReplica>> Replicas;

  // Reusable hot-path staging (DESIGN.md §7): model inputs gathered from
  // serialize spans, batched predictions, per-output scatter, and numeric
  // conversions. Capacity warms up once; the loop allocates nothing.
  std::vector<float> NnStaging;
  std::vector<float> NnOut;
  std::vector<float> ScatterBuf;
  std::vector<float> ConvStaging;
};

} // namespace au

#endif // AU_CORE_SESSION_H
