//===- core/Runtime.cpp - The Autonomizer runtime and primitives ---------===//

#include "core/Runtime.h"

#include <algorithm>
#include <cassert>

using namespace au;

Runtime::Runtime(Mode M, std::string Dir)
    : ExecMode(M), ModelDir(std::move(Dir)) {}

std::string Runtime::modelPath(const std::string &ModelName) const {
  if (ModelDir.empty())
    return ModelName + ".aumodel";
  return ModelDir + "/" + ModelName + ".aumodel";
}

Model *Runtime::config(const ModelConfig &C) {
  ++Stats.NumConfig;
  // Rules CONFIG-TRAIN / CONFIG-TEST: only act when theta(name) is bottom.
  auto It = Models.find(C.Name);
  if (It != Models.end())
    return It->second.get();

  std::unique_ptr<Model> M;
  if (C.Algo == Algorithm::QLearn)
    M = std::make_unique<RlModel>(C);
  else
    M = std::make_unique<SlModel>(C);

  if (ExecMode == Mode::TS) {
    // CONFIG-TEST: load the trained model saved by a prior TR execution.
    bool Loaded = M->load(modelPath(C.Name));
    assert(Loaded && "TS-mode au_config could not load the trained model");
    (void)Loaded;
  }
  Model *Raw = M.get();
  Models.emplace(C.Name, std::move(M));
  return Raw;
}

void Runtime::extract(const std::string &Name, size_t Size,
                      const float *Data) {
  assert(Data || Size == 0);
  ++Stats.NumExtract;
  Stats.FloatsExtracted += Size;
  Db.append(Name, std::vector<float>(Data, Data + Size));
}

void Runtime::extract(const std::string &Name, size_t Size,
                      const double *Data) {
  assert(Data || Size == 0);
  ++Stats.NumExtract;
  Stats.FloatsExtracted += Size;
  std::vector<float> Vals(Size);
  for (size_t I = 0; I != Size; ++I)
    Vals[I] = static_cast<float>(Data[I]);
  Db.append(Name, Vals);
}

void Runtime::extract(const std::string &Name, float Value) {
  ++Stats.NumExtract;
  ++Stats.FloatsExtracted;
  Db.append(Name, Value);
}

std::string Runtime::serialize(const std::vector<std::string> &Names) {
  ++Stats.NumSerialize;
  std::string Combined = Db.serialize(Names);
  // Consume the constituent lists: they have been moved into the combined
  // list. (Fig. 8's SERIALIZE leaves them mapped, but its TRAIN/TEST rules
  // only reset the combined extName — without this refinement the model
  // input would grow without bound across loop iterations.)
  for (const std::string &N : Names)
    if (N != Combined)
      Db.reset(N);
  return Combined;
}

void Runtime::nn(const std::string &ModelName, const std::string &ExtName,
                 const std::vector<WriteBackSpec> &Outputs) {
  ++Stats.NumNn;
  Model *M = getModel(ModelName);
  assert(M && "au_NN on an unconfigured model");
  auto *Sl = static_cast<SlModel *>(M);
  assert(SlModel::classof(M) && "supervised au_NN form on an RL model");
  assert(!Outputs.empty() && "au_NN must declare at least one output");

  std::vector<float> X = Db.get(ExtName);
  assert(!X.empty() && "au_NN with an empty feature list");

  for (const WriteBackSpec &O : Outputs)
    WbOwner[O.Name] = ModelName;

  if (ExecMode == Mode::TR) {
    // Training is offline for SL: remember the features; the labels arrive
    // through the write-backs of this loop iteration.
    Pending.push_back({ModelName, std::move(X), Outputs, {}});
  } else {
    // Rule TEST: run the model and put the outputs into pi.
    std::vector<float> Y = Sl->predict(X);
    size_t Offset = 0;
    for (const WriteBackSpec &O : Outputs) {
      assert(Offset + O.Size <= Y.size() && "declared outputs exceed model");
      Db.set(O.Name, std::vector<float>(Y.begin() + Offset,
                                        Y.begin() + Offset + O.Size));
      Offset += O.Size;
    }
  }
  // Both TRAIN and TEST reset the model-input list (extName -> bottom).
  Db.reset(ExtName);
}

void Runtime::nn(const std::string &ModelName, const std::string &ExtName,
                 float Reward, bool Terminal, const WriteBackSpec &Output) {
  ++Stats.NumNn;
  Model *M = getModel(ModelName);
  assert(M && "au_NN on an unconfigured model");
  assert(RlModel::classof(M) && "RL au_NN form on a supervised model");
  auto *Rl = static_cast<RlModel *>(M);

  std::vector<float> State = Db.get(ExtName);
  assert(!State.empty() && "au_NN with an empty state list");

  WbOwner[Output.Name] = ModelName;
  bool Learning = ExecMode == Mode::TR;
  int Action = Rl->step(State, Reward, Terminal, Output, Learning);
  Db.set(Output.Name, {static_cast<float>(Action)});
  Db.reset(ExtName);
}

void Runtime::completePendingIfReady(PendingSample &P) {
  if (P.Labels.size() != P.Outputs.size())
    return;
  std::vector<float> Y;
  for (const WriteBackSpec &O : P.Outputs) {
    const std::vector<float> &L = P.Labels[O.Name];
    assert(static_cast<int>(L.size()) == O.Size && "label arity mismatch");
    Y.insert(Y.end(), L.begin(), L.end());
  }
  auto *Sl = static_cast<SlModel *>(getModel(P.ModelName));
  assert(Sl && "pending sample for a vanished model");
  Sl->addSample(P.X, Y, P.Outputs);
}

void Runtime::writeBack(const std::string &Name, size_t Size, float *Data) {
  ++Stats.NumWriteBack;
  assert(Data && Size > 0 && "invalid write-back destination");

  if (ExecMode == Mode::TR) {
    // Supervised TR: the program variable currently holds the desirable
    // value (chosen by the human user or the autotuner) — record it as the
    // label of the pending sample.
    for (auto It = Pending.rbegin(), E = Pending.rend(); It != E; ++It) {
      PendingSample &P = *It;
      bool Declared =
          std::any_of(P.Outputs.begin(), P.Outputs.end(),
                      [&](const WriteBackSpec &O) { return O.Name == Name; });
      if (!Declared || P.Labels.count(Name))
        continue;
      P.Labels[Name] = std::vector<float>(Data, Data + Size);
      Db.set(Name, P.Labels[Name]);
      completePendingIfReady(P);
      if (P.Labels.size() == P.Outputs.size())
        Pending.erase(std::next(It).base());
      return;
    }
    assert(false && "TR write-back without a matching au_NN");
    return;
  }

  // Rule WRITE-BACK: pi[Name] -> program variable.
  const std::vector<float> &Vals = Db.get(Name);
  assert(Vals.size() >= Size && "write-back of more values than predicted");
  std::copy(Vals.begin(), Vals.begin() + Size, Data);
}

void Runtime::writeBack(const std::string &Name, size_t Size, double *Data) {
  std::vector<float> Tmp(Size);
  if (ExecMode == Mode::TR)
    for (size_t I = 0; I != Size; ++I)
      Tmp[I] = static_cast<float>(Data[I]);
  writeBack(Name, Size, Tmp.data());
  if (ExecMode == Mode::TS)
    for (size_t I = 0; I != Size; ++I)
      Data[I] = Tmp[I];
}

void Runtime::writeBack(const std::string &Name, int NumActions,
                        int *ActionKey) {
  ++Stats.NumWriteBack;
  assert(ActionKey && "invalid write-back destination");
  auto OwnerIt = WbOwner.find(Name);
  assert(OwnerIt != WbOwner.end() && "write-back before any au_NN");
  [[maybe_unused]] Model *M = getModel(OwnerIt->second);
  assert(M && RlModel::classof(M) && "action write-back on non-RL model");
  assert(M->outputs().front().Size == NumActions &&
         "action count disagrees with the au_NN declaration");
  (void)NumActions;
  const std::vector<float> &Vals = Db.get(Name);
  assert(!Vals.empty() && "no predicted action in the database store");
  *ActionKey = static_cast<int>(Vals.front());
}

void Runtime::checkpoint() {
  ++Stats.NumCheckpoint;
  Ckpt.checkpoint(Db);
}

void Runtime::restore() {
  ++Stats.NumRestore;
  Ckpt.restore(Db);
}

Model *Runtime::getModel(const std::string &Name) {
  auto It = Models.find(Name);
  return It == Models.end() ? nullptr : It->second.get();
}

double Runtime::trainSupervised(const std::string &ModelName, int Epochs,
                                int BatchSize) {
  Model *M = getModel(ModelName);
  assert(M && SlModel::classof(M) && "trainSupervised on a non-SL model");
  return static_cast<SlModel *>(M)->train(Epochs, BatchSize);
}

bool Runtime::saveModel(const std::string &ModelName) {
  Model *M = getModel(ModelName);
  if (!M)
    return false;
  return M->save(modelPath(ModelName));
}

bool Runtime::saveAllModels() {
  bool Ok = true;
  for (auto &[Name, M] : Models)
    Ok = M->save(modelPath(Name)) && Ok;
  return Ok;
}
