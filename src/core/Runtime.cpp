//===- core/Runtime.cpp - The Autonomizer runtime and primitives ---------===//

#include "core/Runtime.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>

using namespace au;

Runtime::Runtime(Mode M, std::string Dir)
    : ExecMode(M), ModelDir(std::move(Dir)) {}

std::string Runtime::modelPath(const std::string &ModelName) const {
  if (ModelDir.empty())
    return ModelName + ".aumodel";
  return ModelDir + "/" + ModelName + ".aumodel";
}

Model *Runtime::config(const ModelConfig &C) {
  ++Stats.NumConfig;
  // Rules CONFIG-TRAIN / CONFIG-TEST: only act when theta(name) is bottom.
  auto It = Models.find(C.Name);
  if (It != Models.end())
    return It->second.get();

  std::unique_ptr<Model> M;
  if (C.Algo == Algorithm::QLearn)
    M = std::make_unique<RlModel>(C);
  else
    M = std::make_unique<SlModel>(C);

  if (ExecMode == Mode::TS) {
    // CONFIG-TEST: load the trained model saved by a prior TR execution.
    bool Loaded = M->load(modelPath(C.Name));
    assert(Loaded && "TS-mode au_config could not load the trained model");
    (void)Loaded;
  }
  Model *Raw = M.get();
  Models.emplace(C.Name, std::move(M));

  // Register the handle route: model names live in the same table as
  // database names, so nn(NameId, ...) indexes theta directly.
  NameId Id = Db.intern(C.Name);
  if (Id >= ModelById.size())
    ModelById.resize(Id + 1, nullptr);
  ModelById[Id] = Raw;
  return Raw;
}

//===----------------------------------------------------------------------===//
// au_extract
//===----------------------------------------------------------------------===//

void Runtime::extract(NameId Id, size_t Size, const double *Data) {
  assert(Data || Size == 0);
  ++Stats.NumExtract;
  Stats.FloatsExtracted += Size;
  ConvStaging.resize(Size);
  for (size_t I = 0; I != Size; ++I)
    ConvStaging[I] = static_cast<float>(Data[I]);
  Db.append(Id, ConvStaging.data(), Size);
}

void Runtime::extract(const std::string &Name, size_t Size,
                      const float *Data) {
  extract(Db.intern(Name), Size, Data);
}

void Runtime::extract(const std::string &Name, size_t Size,
                      const double *Data) {
  extract(Db.intern(Name), Size, Data);
}

void Runtime::extract(const std::string &Name, float Value) {
  extract(Db.intern(Name), Value);
}

//===----------------------------------------------------------------------===//
// au_serialize
//===----------------------------------------------------------------------===//

std::string Runtime::serialize(const std::vector<std::string> &Names) {
  std::vector<NameId> Ids;
  Ids.reserve(Names.size());
  for (const std::string &N : Names)
    Ids.push_back(Db.intern(N));
  return Db.nameOf(serialize(Ids));
}

std::string Runtime::serialize(std::initializer_list<const char *> Names) {
  std::vector<NameId> Ids;
  Ids.reserve(Names.size());
  for (const char *N : Names)
    Ids.push_back(Db.intern(N));
  return Db.nameOf(serialize(Ids));
}

//===----------------------------------------------------------------------===//
// au_NN
//===----------------------------------------------------------------------===//

void Runtime::nn(NameId ModelId, NameId ExtId,
                 const std::vector<WriteBackHandle> &Outputs) {
  ++Stats.NumNn;
  Model *M = getModel(ModelId);
  assert(M && "au_NN on an unconfigured model");
  auto *Sl = static_cast<SlModel *>(M);
  assert(SlModel::classof(M) && "supervised au_NN form on an RL model");
  assert(!Outputs.empty() && "au_NN must declare at least one output");

  SerializedView V = Db.view(ExtId);
  assert(V.size() > 0 && "au_NN with an empty feature list");

  for (const WriteBackHandle &O : Outputs)
    setWbOwner(O.Name, ModelId);

  if (ExecMode == Mode::TR) {
    // Training is offline for SL: remember the features; the labels arrive
    // through the write-backs of this loop iteration.
    PendingSample P;
    P.ModelId = ModelId;
    P.X.resize(V.size());
    V.copyTo(P.X.data());
    P.Outputs = Outputs;
    Pending.push_back(std::move(P));
  } else {
    // Rule TEST: gather the spans into the staging buffer, run one
    // forwardBatch row, and scatter the predictions into pi.
    NnStaging.resize(V.size());
    V.copyTo(NnStaging.data());
    Sl->predictRows(NnStaging.data(), /*Rows=*/1, NnOut);
    size_t Offset = 0;
    for (const WriteBackHandle &O : Outputs) {
      assert(Offset + O.Size <= NnOut.size() &&
             "declared outputs exceed model");
      Db.set(O.Name, NnOut.data() + Offset, O.Size);
      Offset += O.Size;
    }
  }
  // Both TRAIN and TEST reset the model-input list (extName -> bottom).
  Db.reset(ExtId);
}

void Runtime::nn(NameId ModelId, NameId ExtId, float Reward, bool Terminal,
                 const WriteBackHandle &Output) {
  ++Stats.NumNn;
  Model *M = getModel(ModelId);
  assert(M && "au_NN on an unconfigured model");
  assert(RlModel::classof(M) && "RL au_NN form on a supervised model");
  auto *Rl = static_cast<RlModel *>(M);

  SerializedView V = Db.view(ExtId);
  assert(V.size() > 0 && "au_NN with an empty state list");
  NnStaging.resize(V.size());
  V.copyTo(NnStaging.data());

  setWbOwner(Output.Name, ModelId);
  bool Learning = ExecMode == Mode::TR;
  int Action;
  if (M->isBuilt()) {
    Action = Rl->stepBuilt(NnStaging, Reward, Terminal, Output.Size, Learning);
  } else {
    // First step: the model builds from the state size and the output's
    // string spec (persistence stores output names). Cold path only.
    WriteBackSpec Spec{Db.nameOf(Output.Name), Output.Size};
    Action = Rl->step(NnStaging, Reward, Terminal, Spec, Learning);
  }
  float ActionF = static_cast<float>(Action);
  Db.set(Output.Name, &ActionF, 1);
  Db.reset(ExtId);
}

void Runtime::nnBatch(NameId ModelId, NameId ExtId, int Rows,
                      const std::vector<WriteBackHandle> &Outputs) {
  ++Stats.NumNn;
  assert(ExecMode == Mode::TS && "nnBatch is a deployment-mode primitive");
  assert(Rows > 0 && "nnBatch of no rows");
  Model *M = getModel(ModelId);
  assert(M && "au_NN on an unconfigured model");
  auto *Sl = static_cast<SlModel *>(M);
  assert(SlModel::classof(M) && "supervised au_NN form on an RL model");
  assert(!Outputs.empty() && "au_NN must declare at least one output");

  SerializedView V = Db.view(ExtId);
  assert(V.size() > 0 && V.size() % Rows == 0 &&
         "pi[ExtId] does not hold Rows equal-size feature vectors");

  for (const WriteBackHandle &O : Outputs)
    setWbOwner(O.Name, ModelId);

  NnStaging.resize(V.size());
  V.copyTo(NnStaging.data());
  Sl->predictRows(NnStaging.data(), Rows, NnOut);

  const size_t NY = NnOut.size() / Rows;
  size_t Offset = 0;
  for (const WriteBackHandle &O : Outputs) {
    assert(Offset + O.Size <= NY && "declared outputs exceed model");
    ScatterBuf.resize(static_cast<size_t>(Rows) * O.Size);
    for (int R = 0; R != Rows; ++R)
      std::copy_n(NnOut.data() + R * NY + Offset, O.Size,
                  ScatterBuf.data() + static_cast<size_t>(R) * O.Size);
    Db.set(O.Name, ScatterBuf.data(), ScatterBuf.size());
    Offset += O.Size;
  }
  Db.reset(ExtId);
}

void Runtime::nn(const std::string &ModelName, const std::string &ExtName,
                 const std::vector<WriteBackSpec> &Outputs) {
  std::vector<WriteBackHandle> Handles;
  Handles.reserve(Outputs.size());
  for (const WriteBackSpec &O : Outputs)
    Handles.push_back({Db.intern(O.Name), O.Size});
  nn(Db.intern(ModelName), Db.intern(ExtName), Handles);
}

void Runtime::nn(const std::string &ModelName, const std::string &ExtName,
                 float Reward, bool Terminal, const WriteBackSpec &Output) {
  nn(Db.intern(ModelName), Db.intern(ExtName), Reward, Terminal,
     {Db.intern(Output.Name), Output.Size});
}

//===----------------------------------------------------------------------===//
// au_write_back
//===----------------------------------------------------------------------===//

void Runtime::completePendingIfReady(PendingSample &P) {
  if (P.Labels.size() != P.Outputs.size())
    return;
  std::vector<float> Y;
  std::vector<WriteBackSpec> Specs;
  Specs.reserve(P.Outputs.size());
  for (const WriteBackHandle &O : P.Outputs) {
    const std::vector<float> *L = nullptr;
    for (const auto &[Id, Vals] : P.Labels)
      if (Id == O.Name) {
        L = &Vals;
        break;
      }
    assert(L && static_cast<int>(L->size()) == O.Size &&
           "label arity mismatch");
    Y.insert(Y.end(), L->begin(), L->end());
    Specs.push_back({Db.nameOf(O.Name), O.Size});
  }
  auto *Sl = static_cast<SlModel *>(getModel(P.ModelId));
  assert(Sl && "pending sample for a vanished model");
  Sl->addSample(P.X, Y, Specs);
}

void Runtime::writeBack(NameId Id, size_t Size, float *Data) {
  ++Stats.NumWriteBack;
  assert(Data && Size > 0 && "invalid write-back destination");

  if (ExecMode == Mode::TR) {
    // Supervised TR: the program variable currently holds the desirable
    // value (chosen by the human user or the autotuner) — record it as the
    // label of the pending sample.
    for (auto It = Pending.rbegin(), E = Pending.rend(); It != E; ++It) {
      PendingSample &P = *It;
      bool Declared =
          std::any_of(P.Outputs.begin(), P.Outputs.end(),
                      [&](const WriteBackHandle &O) { return O.Name == Id; });
      bool Labeled =
          std::any_of(P.Labels.begin(), P.Labels.end(),
                      [&](const auto &KV) { return KV.first == Id; });
      if (!Declared || Labeled)
        continue;
      P.Labels.emplace_back(Id, std::vector<float>(Data, Data + Size));
      Db.set(Id, Data, Size);
      completePendingIfReady(P);
      if (P.Labels.size() == P.Outputs.size())
        Pending.erase(std::next(It).base());
      return;
    }
    assert(false && "TR write-back without a matching au_NN");
    return;
  }

  // Rule WRITE-BACK: pi[Name] -> program variable.
  const std::vector<float> &Vals = Db.get(Id);
  assert(Vals.size() >= Size && "write-back of more values than predicted");
  std::copy(Vals.begin(), Vals.begin() + Size, Data);
}

void Runtime::writeBack(NameId Id, size_t Size, double *Data) {
  ConvStaging.resize(Size);
  if (ExecMode == Mode::TR)
    for (size_t I = 0; I != Size; ++I)
      ConvStaging[I] = static_cast<float>(Data[I]);
  writeBack(Id, Size, ConvStaging.data());
  if (ExecMode == Mode::TS)
    for (size_t I = 0; I != Size; ++I)
      Data[I] = ConvStaging[I];
}

void Runtime::writeBack(NameId Id, int NumActions, int *ActionKey) {
  ++Stats.NumWriteBack;
  assert(ActionKey && "invalid write-back destination");
  NameId Owner = wbOwner(Id);
  assert(Owner != InvalidNameId && "write-back before any au_NN");
  [[maybe_unused]] Model *M = getModel(Owner);
  assert(M && RlModel::classof(M) && "action write-back on non-RL model");
  assert(M->outputs().front().Size == NumActions &&
         "action count disagrees with the au_NN declaration");
  (void)NumActions;
  const std::vector<float> &Vals = Db.get(Id);
  assert(!Vals.empty() && "no predicted action in the database store");
  *ActionKey = static_cast<int>(Vals.front());
}

void Runtime::writeBack(const std::string &Name, size_t Size, float *Data) {
  writeBack(Db.intern(Name), Size, Data);
}

void Runtime::writeBack(const std::string &Name, size_t Size, double *Data) {
  writeBack(Db.intern(Name), Size, Data);
}

void Runtime::writeBack(const std::string &Name, int NumActions,
                        int *ActionKey) {
  writeBack(Db.intern(Name), NumActions, ActionKey);
}

void Runtime::setWbOwner(NameId Out, NameId ModelId) {
  if (Out >= WbOwner.size())
    WbOwner.resize(Out + 1, InvalidNameId);
  WbOwner[Out] = ModelId;
}

//===----------------------------------------------------------------------===//
// Parallel actor contexts (DESIGN.md §8)
//===----------------------------------------------------------------------===//

void Runtime::setActorContexts(int K) {
  assert(K > 0 && "need at least one actor context");
  while (numActorContexts() < K) {
    auto C = std::make_unique<ActorCtx>();
    // Seed the new store's name table with every name interned so far, in
    // order, so main-store NameIds index this store directly.
    const NameTable &NT = Db.names();
    for (size_t I = 0; I != NT.size(); ++I) {
      [[maybe_unused]] NameId Id = C->Db.intern(NT.name(static_cast<NameId>(I)));
      assert(Id == static_cast<NameId>(I) && "name table copy diverged");
    }
    Actors.push_back(std::move(C));
  }
}

void Runtime::nnRlActors(NameId ModelId, const NameId *ExtIds,
                         const float *Rewards, const uint8_t *Terminals,
                         int K, const WriteBackHandle &Output) {
  assert(K > 0 && K <= numActorContexts() &&
         "nnRlActors needs a context per actor");
  Stats.NumNn += static_cast<size_t>(K);
  Model *M = getModel(ModelId);
  assert(M && "au_NN on an unconfigured model");
  assert(RlModel::classof(M) && "RL au_NN form on a supervised model");
  auto *Rl = static_cast<RlModel *>(M);
  setWbOwner(Output.Name, ModelId);

  // Gather each actor's serialized state into row k of one K x D staging
  // block. Rows are disjoint and each chunk touches only its own actor
  // store, so the gather parallelizes without changing any result.
  size_t D = actor(0).Db.view(ExtIds[0]).size();
  assert(D > 0 && "au_NN with an empty state list");
  NnStaging.resize(static_cast<size_t>(K) * D);
  ThreadPool::global().parallelFor(0, static_cast<size_t>(K), 1,
                                   [&](size_t B, size_t E) {
    for (size_t A = B; A != E; ++A) {
      SerializedView V = actor(static_cast<int>(A)).Db.view(ExtIds[A]);
      assert(V.size() == D && "actor state sizes diverged");
      V.copyTo(NnStaging.data() + A * D);
    }
  });

  // One fused model step for the whole fleet (observe, train when due,
  // batched action selection). The output's string spec is only needed on
  // the cold build path.
  ActionsScratch.resize(static_cast<size_t>(K));
  WriteBackSpec Spec{std::string(), Output.Size};
  if (!M->isBuilt())
    Spec.Name = Db.nameOf(Output.Name);
  bool Learning = ExecMode == Mode::TR;
  Rl->stepActors(NnStaging.data(), K, static_cast<int>(D), Rewards, Terminals,
                 Spec, Learning, ActionsScratch.data());

  // Scatter action k into actor k's store and reset its state list (Rules
  // TRAIN/TEST reset extName), again disjoint per actor.
  ThreadPool::global().parallelFor(0, static_cast<size_t>(K), 1,
                                   [&](size_t B, size_t E) {
    for (size_t A = B; A != E; ++A) {
      float ActionF = static_cast<float>(ActionsScratch[A]);
      DatabaseStore &ADb = actor(static_cast<int>(A)).Db;
      ADb.set(Output.Name, &ActionF, 1);
      ADb.reset(ExtIds[A]);
    }
  });
}

void Runtime::mergeActorStats() {
  for (auto &A : Actors) {
    Stats.NumExtract += A->NumExtract;
    Stats.FloatsExtracted += A->FloatsExtracted;
    Stats.NumSerialize += A->NumSerialize;
    Stats.NumWriteBack += A->NumWriteBack;
    A->NumExtract = A->FloatsExtracted = A->NumSerialize = A->NumWriteBack = 0;
  }
}

//===----------------------------------------------------------------------===//
// Checkpoint / restore and model management
//===----------------------------------------------------------------------===//

void Runtime::checkpoint() {
  ++Stats.NumCheckpoint;
  Ckpt.checkpoint(Db);
}

void Runtime::restore() {
  ++Stats.NumRestore;
  Ckpt.restore(Db);
}

Model *Runtime::getModel(const std::string &Name) {
  auto It = Models.find(Name);
  return It == Models.end() ? nullptr : It->second.get();
}

double Runtime::trainSupervised(const std::string &ModelName, int Epochs,
                                int BatchSize) {
  Model *M = getModel(ModelName);
  assert(M && SlModel::classof(M) && "trainSupervised on a non-SL model");
  return static_cast<SlModel *>(M)->train(Epochs, BatchSize);
}

bool Runtime::saveModel(const std::string &ModelName) {
  Model *M = getModel(ModelName);
  if (!M)
    return false;
  return M->save(modelPath(ModelName));
}

bool Runtime::saveAllModels() {
  bool Ok = true;
  for (auto &[Name, M] : Models)
    Ok = M->save(modelPath(Name)) && Ok;
  return Ok;
}
