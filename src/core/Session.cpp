//===- core/Session.cpp - Per-client execution state (sigma, pi) ----------===//

#include "core/Session.h"

#include "core/Engine.h"

#include <algorithm>
#include <cassert>

using namespace au;

Session::Session(Engine &E, Mode M) : Eng(E), ExecMode(M) {
  // Combined serialize names created inside the store must intern through
  // the engine too, so the store stays a positional mirror of the master
  // table.
  Db.setInternAuthority(this);
  syncNames();
}

Session::~Session() = default;

NameId Session::intern(std::string_view Name) {
  NameId Id = Eng.intern(Name);
  syncNames();
  return Id;
}

void Session::syncNames() {
  // Every name in this store was replayed from the master table, in order,
  // by a previous sync. If the store grew past the replay watermark, someone
  // interned into db() directly — positions can no longer be trusted, and
  // handles handed out by the engine would address the wrong slots. This is
  // a real error path, not an assert: it fires in release builds too.
  if (Db.names().size() != Synced)
    throw StoreDivergenceError(
        "session store diverged from the engine name table: a name was "
        "interned directly into the store behind the session's back (use "
        "Session::intern, not db().intern)");
  Synced = Eng.appendNamesTo(Db, Synced);
}

Model *Session::config(const ModelConfig &C) {
  ++Stats.NumConfig;
  // Model names live in the same table as database names, so nn(NameId, ...)
  // indexes theta directly.
  NameId Id = intern(C.Name);
  Model *M = Eng.config(C, ExecMode);
  if (Id >= ModelCache.size())
    ModelCache.resize(Id + 1, nullptr);
  ModelCache[Id] = M;
  return M;
}

//===----------------------------------------------------------------------===//
// au_extract
//===----------------------------------------------------------------------===//

void Session::extract(NameId Id, size_t Size, const double *Data) {
  assert(Data || Size == 0);
  ++Stats.NumExtract;
  Stats.FloatsExtracted += Size;
  ConvStaging.resize(Size);
  for (size_t I = 0; I != Size; ++I)
    ConvStaging[I] = static_cast<float>(Data[I]);
  Db.append(Id, ConvStaging.data(), Size);
}

void Session::extract(const std::string &Name, size_t Size,
                      const float *Data) {
  extract(intern(Name), Size, Data);
}

void Session::extract(const std::string &Name, size_t Size,
                      const double *Data) {
  extract(intern(Name), Size, Data);
}

void Session::extract(const std::string &Name, float Value) {
  extract(intern(Name), Value);
}

//===----------------------------------------------------------------------===//
// au_serialize
//===----------------------------------------------------------------------===//

std::string Session::serialize(const std::vector<std::string> &Names) {
  std::vector<NameId> Ids;
  Ids.reserve(Names.size());
  for (const std::string &N : Names)
    Ids.push_back(intern(N));
  return Db.nameOf(serialize(Ids));
}

std::string Session::serialize(std::initializer_list<const char *> Names) {
  std::vector<NameId> Ids;
  Ids.reserve(Names.size());
  for (const char *N : Names)
    Ids.push_back(intern(N));
  return Db.nameOf(serialize(Ids));
}

//===----------------------------------------------------------------------===//
// au_NN
//===----------------------------------------------------------------------===//

void Session::nn(NameId ModelId, NameId ExtId,
                 const std::vector<WriteBackHandle> &Outputs) {
  ++Stats.NumNn;
  Model *M = getModel(ModelId);
  assert(M && "au_NN on an unconfigured model");
  auto *Sl = static_cast<SlModel *>(M);
  assert(SlModel::classof(M) && "supervised au_NN form on an RL model");
  assert(!Outputs.empty() && "au_NN must declare at least one output");

  SerializedView V = Db.view(ExtId);
  assert(V.size() > 0 && "au_NN with an empty feature list");

  for (const WriteBackHandle &O : Outputs)
    setWbOwner(O.Name, ModelId);

  if (ExecMode == Mode::TR) {
    // Training is offline for SL: remember the features; the labels arrive
    // through the write-backs of this loop iteration.
    PendingSample P;
    P.ModelId = ModelId;
    P.X.resize(V.size());
    V.copyTo(P.X.data());
    P.Outputs = Outputs;
    Pending.push_back(std::move(P));
  } else {
    // Rule TEST: gather the spans into the staging buffer, run one
    // forwardBatch row, and scatter the predictions into pi. Under shared
    // inference the row is served from this session's replica of the
    // engine's latest published snapshot; otherwise (and while nothing is
    // published) from the live model, exactly as before the split.
    NnStaging.resize(V.size());
    V.copyTo(NnStaging.data());
    if (!(SharedInference &&
          predictShared(ModelId, NnStaging.data(), /*Rows=*/1, NnOut)))
      Sl->predictRows(NnStaging.data(), /*Rows=*/1, NnOut);
    size_t Offset = 0;
    for (const WriteBackHandle &O : Outputs) {
      assert(Offset + O.Size <= NnOut.size() &&
             "declared outputs exceed model");
      Db.set(O.Name, NnOut.data() + Offset, O.Size);
      Offset += O.Size;
    }
  }
  // Both TRAIN and TEST reset the model-input list (extName -> bottom).
  Db.reset(ExtId);
}

void Session::nn(NameId ModelId, NameId ExtId, float Reward, bool Terminal,
                 const WriteBackHandle &Output) {
  ++Stats.NumNn;
  Model *M = getModel(ModelId);
  assert(M && "au_NN on an unconfigured model");
  assert(RlModel::classof(M) && "RL au_NN form on a supervised model");
  auto *Rl = static_cast<RlModel *>(M);

  SerializedView V = Db.view(ExtId);
  assert(V.size() > 0 && "au_NN with an empty state list");
  NnStaging.resize(V.size());
  V.copyTo(NnStaging.data());

  setWbOwner(Output.Name, ModelId);
  bool Learning = ExecMode == Mode::TR;
  int Action;
  if (M->isBuilt()) {
    Action = Rl->stepBuilt(NnStaging, Reward, Terminal, Output.Size, Learning);
  } else {
    // First step: the model builds from the state size and the output's
    // string spec (persistence stores output names). Cold path only.
    WriteBackSpec Spec{Db.nameOf(Output.Name), Output.Size};
    Action = Rl->step(NnStaging, Reward, Terminal, Spec, Learning);
  }
  float ActionF = static_cast<float>(Action);
  Db.set(Output.Name, &ActionF, 1);
  Db.reset(ExtId);
}

void Session::nnBatch(NameId ModelId, NameId ExtId, int Rows,
                      const std::vector<WriteBackHandle> &Outputs) {
  ++Stats.NumNn;
  assert(ExecMode == Mode::TS && "nnBatch is a deployment-mode primitive");
  assert(Rows > 0 && "nnBatch of no rows");
  Model *M = getModel(ModelId);
  assert(M && "au_NN on an unconfigured model");
  auto *Sl = static_cast<SlModel *>(M);
  assert(SlModel::classof(M) && "supervised au_NN form on an RL model");
  assert(!Outputs.empty() && "au_NN must declare at least one output");

  SerializedView V = Db.view(ExtId);
  assert(V.size() > 0 && V.size() % Rows == 0 &&
         "pi[ExtId] does not hold Rows equal-size feature vectors");

  for (const WriteBackHandle &O : Outputs)
    setWbOwner(O.Name, ModelId);

  NnStaging.resize(V.size());
  V.copyTo(NnStaging.data());
  if (!(SharedInference &&
        predictShared(ModelId, NnStaging.data(), Rows, NnOut)))
    Sl->predictRows(NnStaging.data(), Rows, NnOut);

  const size_t NY = NnOut.size() / Rows;
  size_t Offset = 0;
  for (const WriteBackHandle &O : Outputs) {
    assert(Offset + O.Size <= NY && "declared outputs exceed model");
    ScatterBuf.resize(static_cast<size_t>(Rows) * O.Size);
    for (int R = 0; R != Rows; ++R)
      std::copy_n(NnOut.data() + R * NY + Offset, O.Size,
                  ScatterBuf.data() + static_cast<size_t>(R) * O.Size);
    Db.set(O.Name, ScatterBuf.data(), ScatterBuf.size());
    Offset += O.Size;
  }
  Db.reset(ExtId);
}

void Session::nn(const std::string &ModelName, const std::string &ExtName,
                 const std::vector<WriteBackSpec> &Outputs) {
  std::vector<WriteBackHandle> Handles;
  Handles.reserve(Outputs.size());
  for (const WriteBackSpec &O : Outputs)
    Handles.push_back({intern(O.Name), O.Size});
  nn(intern(ModelName), intern(ExtName), Handles);
}

void Session::nn(const std::string &ModelName, const std::string &ExtName,
                 float Reward, bool Terminal, const WriteBackSpec &Output) {
  nn(intern(ModelName), intern(ExtName), Reward, Terminal,
     {intern(Output.Name), Output.Size});
}

//===----------------------------------------------------------------------===//
// au_write_back
//===----------------------------------------------------------------------===//

void Session::completePendingIfReady(PendingSample &P) {
  if (P.Labels.size() != P.Outputs.size())
    return;
  std::vector<float> Y;
  std::vector<WriteBackSpec> Specs;
  Specs.reserve(P.Outputs.size());
  for (const WriteBackHandle &O : P.Outputs) {
    const std::vector<float> *L = nullptr;
    for (const auto &[Id, Vals] : P.Labels)
      if (Id == O.Name) {
        L = &Vals;
        break;
      }
    assert(L && static_cast<int>(L->size()) == O.Size &&
           "label arity mismatch");
    Y.insert(Y.end(), L->begin(), L->end());
    Specs.push_back({Db.nameOf(O.Name), O.Size});
  }
  auto *Sl = static_cast<SlModel *>(getModel(P.ModelId));
  assert(Sl && "pending sample for a vanished model");
  Sl->addSample(P.X, Y, Specs);
}

void Session::writeBack(NameId Id, size_t Size, float *Data) {
  ++Stats.NumWriteBack;
  assert(Data && Size > 0 && "invalid write-back destination");

  if (ExecMode == Mode::TR) {
    // Supervised TR: the program variable currently holds the desirable
    // value (chosen by the human user or the autotuner) — record it as the
    // label of the pending sample.
    for (auto It = Pending.rbegin(), E = Pending.rend(); It != E; ++It) {
      PendingSample &P = *It;
      bool Declared =
          std::any_of(P.Outputs.begin(), P.Outputs.end(),
                      [&](const WriteBackHandle &O) { return O.Name == Id; });
      bool Labeled =
          std::any_of(P.Labels.begin(), P.Labels.end(),
                      [&](const auto &KV) { return KV.first == Id; });
      if (!Declared || Labeled)
        continue;
      P.Labels.emplace_back(Id, std::vector<float>(Data, Data + Size));
      Db.set(Id, Data, Size);
      completePendingIfReady(P);
      if (P.Labels.size() == P.Outputs.size())
        Pending.erase(std::next(It).base());
      return;
    }
    assert(false && "TR write-back without a matching au_NN");
    return;
  }

  // Rule WRITE-BACK: pi[Name] -> program variable.
  const std::vector<float> &Vals = Db.get(Id);
  assert(Vals.size() >= Size && "write-back of more values than predicted");
  std::copy(Vals.begin(), Vals.begin() + Size, Data);
}

void Session::writeBack(NameId Id, size_t Size, double *Data) {
  ConvStaging.resize(Size);
  if (ExecMode == Mode::TR)
    for (size_t I = 0; I != Size; ++I)
      ConvStaging[I] = static_cast<float>(Data[I]);
  writeBack(Id, Size, ConvStaging.data());
  if (ExecMode == Mode::TS)
    for (size_t I = 0; I != Size; ++I)
      Data[I] = ConvStaging[I];
}

void Session::writeBack(NameId Id, int NumActions, int *ActionKey) {
  ++Stats.NumWriteBack;
  assert(ActionKey && "invalid write-back destination");
  NameId Owner = wbOwner(Id);
  assert(Owner != InvalidNameId && "write-back before any au_NN");
  [[maybe_unused]] Model *M = getModel(Owner);
  assert(M && RlModel::classof(M) && "action write-back on non-RL model");
  assert(M->outputs().front().Size == NumActions &&
         "action count disagrees with the au_NN declaration");
  (void)NumActions;
  const std::vector<float> &Vals = Db.get(Id);
  assert(!Vals.empty() && "no predicted action in the database store");
  *ActionKey = static_cast<int>(Vals.front());
}

void Session::writeBack(const std::string &Name, size_t Size, float *Data) {
  writeBack(intern(Name), Size, Data);
}

void Session::writeBack(const std::string &Name, size_t Size, double *Data) {
  writeBack(intern(Name), Size, Data);
}

void Session::writeBack(const std::string &Name, int NumActions,
                        int *ActionKey) {
  writeBack(intern(Name), NumActions, ActionKey);
}

void Session::setWbOwner(NameId Out, NameId ModelId) {
  if (Out >= WbOwner.size())
    WbOwner.resize(Out + 1, InvalidNameId);
  WbOwner[Out] = ModelId;
}

//===----------------------------------------------------------------------===//
// Checkpoint / restore and model management
//===----------------------------------------------------------------------===//

void Session::checkpoint() {
  ++Stats.NumCheckpoint;
  Ckpt.checkpoint(Db);
}

void Session::restore() {
  ++Stats.NumRestore;
  Ckpt.restore(Db);
}

Model *Session::getModel(const std::string &Name) { return Eng.getModel(Name); }

Model *Session::getModel(NameId Id) {
  // Fast path: the per-session cache, filled by config() and on first
  // lookup, makes the per-call model resolution lock-free.
  if (Id < ModelCache.size() && ModelCache[Id])
    return ModelCache[Id];
  Model *M = Eng.getModel(Id);
  if (M) {
    if (Id >= ModelCache.size())
      ModelCache.resize(Id + 1, nullptr);
    ModelCache[Id] = M;
  }
  return M;
}

double Session::trainSupervised(const std::string &ModelName, int Epochs,
                                int BatchSize) {
  return Eng.trainSupervised(ModelName, Epochs, BatchSize);
}

bool Session::saveModel(const std::string &ModelName) {
  return Eng.saveModel(ModelName);
}

bool Session::saveAllModels() { return Eng.saveAllModels(); }

std::string Session::modelPath(const std::string &ModelName) const {
  return Eng.modelPath(ModelName);
}

//===----------------------------------------------------------------------===//
// Shared-inference serving
//===----------------------------------------------------------------------===//

bool Session::predictShared(NameId ModelId, const float *Xs, int Rows,
                            std::vector<float> &Out) {
  if (ModelId >= Replicas.size())
    Replicas.resize(ModelId + 1);
  std::unique_ptr<InferenceReplica> &Rep = Replicas[ModelId];
  if (!Rep)
    Rep = std::make_unique<InferenceReplica>();
  if (!Rep->refresh(Eng, ModelId))
    return false;
  Rep->predictRows(Xs, Rows, Out);
  return true;
}

uint64_t Session::servingVersion(NameId ModelId) const {
  return ModelId < Replicas.size() && Replicas[ModelId]
             ? Replicas[ModelId]->version()
             : 0;
}
