//===- core/Checkpoint.h - Program-state checkpoint/restore ----*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint/restore of the program store sigma and the database store pi
/// (Fig. 8, Rules CHECKPOINT and RESTORE). The paper uses KVM to snapshot
/// the whole process and then overwrites the model state from persistent
/// storage so the model keeps learning across rollbacks; here programs
/// register their state explicitly — raw memory regions and/or
/// Checkpointable objects — and the manager snapshots those together with
/// pi. Model state is never registered, which realizes the same
/// "checkpoint sigma and pi but not theta" contract directly.
///
/// Snapshot cost is O(Δ), not O(pi)+O(sigma) (DESIGN.md §7): pi slots carry
/// generation stamps, so checkpoint() copies only slots mutated since the
/// last snapshot and restore() touches only slots mutated since it; regions
/// are memcmp'd against the held copy and re-copied only on change; object
/// blobs reuse their buffers. Behavior is identical to the full snapshot —
/// setDirtyTracking(false) forces the full path, kept for measurement.
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_CHECKPOINT_H
#define AU_CORE_CHECKPOINT_H

#include "core/DatabaseStore.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace au {

/// Objects with non-POD state implement this to participate in
/// checkpointing (e.g. a game world with dynamic entity vectors).
class Checkpointable {
public:
  virtual ~Checkpointable();

  /// Serializes the full object state into \p Out.
  virtual void saveState(std::vector<uint8_t> &Out) const = 0;

  /// Restores state previously produced by saveState.
  virtual void loadState(const std::vector<uint8_t> &In) = 0;
};

/// Snapshots registered program state plus a database store.
class CheckpointManager {
public:
  /// Registers a raw memory region (POD program variables).
  void registerRegion(void *Ptr, size_t Bytes);

  /// Registers a structured object.
  void registerObject(Checkpointable *Obj);

  /// Takes the snapshot of all registered state and \p Db (Rule
  /// CHECKPOINT's mkSnapshot over <sigma, pi>). With dirty tracking on
  /// (the default) only state mutated since the previous snapshot is
  /// re-copied; \p Db is non-const because lazily serialized entries are
  /// materialized into the snapshot.
  void checkpoint(DatabaseStore &Db);

  /// Restores the last snapshot into the registered state and \p Db (Rule
  /// RESTORE's rtSnapshot). The snapshot stays valid, so ending states can
  /// roll back repeatedly to the same checkpoint, as Mario training does.
  /// Requires hasCheckpoint().
  void restore(DatabaseStore &Db);

  bool hasCheckpoint() const { return HasSnapshot; }

  /// Snapshot footprint in bytes (region bytes + object blobs + pi values).
  size_t snapshotBytes() const;

  /// Toggles O(Δ) dirty tracking (on by default). Off forces every
  /// checkpoint/restore to copy all registered state and every pi slot —
  /// observable behavior is identical; kept so the overhead benchmarks can
  /// measure the delta path against the full path.
  void setDirtyTracking(bool On) { DirtyTracking = On; }
  bool dirtyTracking() const { return DirtyTracking; }

  /// Slots/regions actually copied by the most recent checkpoint()
  /// (diagnostics for the overhead benchmarks).
  size_t lastCheckpointCopies() const { return LastCopies; }

private:
  struct Region {
    void *Ptr;
    size_t Bytes;
  };
  /// Snapshot of one pi slot: its values, mapped-ness, and the slot
  /// generation the copy corresponds to.
  struct SlotSnap {
    std::vector<float> Data;
    uint64_t Gen = 0;
    bool Mapped = false;
  };

  std::vector<Region> Regions;
  std::vector<Checkpointable *> Objects;

  bool HasSnapshot = false;
  bool DirtyTracking = true;
  size_t LastCopies = 0;
  std::vector<std::vector<uint8_t>> RegionData;
  std::vector<std::vector<uint8_t>> ObjectData;
  std::vector<SlotSnap> DbSnap; ///< Indexed by NameId.
  size_t SnapNumSlots = 0;      ///< Slot count when the snapshot was taken.
};

} // namespace au

#endif // AU_CORE_CHECKPOINT_H
