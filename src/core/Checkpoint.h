//===- core/Checkpoint.h - Program-state checkpoint/restore ----*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checkpoint/restore of the program store sigma and the database store pi
/// (Fig. 8, Rules CHECKPOINT and RESTORE). The paper uses KVM to snapshot
/// the whole process and then overwrites the model state from persistent
/// storage so the model keeps learning across rollbacks; here programs
/// register their state explicitly — raw memory regions and/or
/// Checkpointable objects — and the manager snapshots those together with
/// pi. Model state is never registered, which realizes the same
/// "checkpoint sigma and pi but not theta" contract directly.
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_CHECKPOINT_H
#define AU_CORE_CHECKPOINT_H

#include "core/DatabaseStore.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace au {

/// Objects with non-POD state implement this to participate in
/// checkpointing (e.g. a game world with dynamic entity vectors).
class Checkpointable {
public:
  virtual ~Checkpointable();

  /// Serializes the full object state into \p Out.
  virtual void saveState(std::vector<uint8_t> &Out) const = 0;

  /// Restores state previously produced by saveState.
  virtual void loadState(const std::vector<uint8_t> &In) = 0;
};

/// Snapshots registered program state plus a database store.
class CheckpointManager {
public:
  /// Registers a raw memory region (POD program variables).
  void registerRegion(void *Ptr, size_t Bytes);

  /// Registers a structured object.
  void registerObject(Checkpointable *Obj);

  /// Takes the snapshot of all registered state and \p Db (Rule
  /// CHECKPOINT's mkSnapshot over <sigma, pi>).
  void checkpoint(const DatabaseStore &Db);

  /// Restores the last snapshot into the registered state and \p Db (Rule
  /// RESTORE's rtSnapshot). The snapshot stays valid, so ending states can
  /// roll back repeatedly to the same checkpoint, as Mario training does.
  /// Requires hasCheckpoint().
  void restore(DatabaseStore &Db);

  bool hasCheckpoint() const { return HasSnapshot; }

  /// Snapshot footprint in bytes (region bytes + object blobs + pi values).
  size_t snapshotBytes() const;

private:
  struct Region {
    void *Ptr;
    size_t Bytes;
  };
  std::vector<Region> Regions;
  std::vector<Checkpointable *> Objects;

  bool HasSnapshot = false;
  std::vector<std::vector<uint8_t>> RegionData;
  std::vector<std::vector<uint8_t>> ObjectData;
  DatabaseStore DbSnapshot;
};

} // namespace au

#endif // AU_CORE_CHECKPOINT_H
