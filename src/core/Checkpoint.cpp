//===- core/Checkpoint.cpp - Program-state checkpoint/restore ------------===//

#include "core/Checkpoint.h"

#include <cassert>
#include <cstring>

using namespace au;

Checkpointable::~Checkpointable() = default;

void CheckpointManager::registerRegion(void *Ptr, size_t Bytes) {
  assert(Ptr && Bytes > 0 && "invalid checkpoint region");
  for (const Region &R : Regions)
    if (R.Ptr == Ptr)
      return; // Already registered.
  Regions.push_back({Ptr, Bytes});
}

void CheckpointManager::registerObject(Checkpointable *Obj) {
  assert(Obj && "null checkpointable object");
  for (Checkpointable *O : Objects)
    if (O == Obj)
      return; // Already registered.
  Objects.push_back(Obj);
}

void CheckpointManager::checkpoint(const DatabaseStore &Db) {
  RegionData.clear();
  RegionData.reserve(Regions.size());
  for (const Region &R : Regions) {
    std::vector<uint8_t> Buf(R.Bytes);
    std::memcpy(Buf.data(), R.Ptr, R.Bytes);
    RegionData.push_back(std::move(Buf));
  }
  ObjectData.clear();
  ObjectData.reserve(Objects.size());
  for (Checkpointable *Obj : Objects) {
    std::vector<uint8_t> Buf;
    Obj->saveState(Buf);
    ObjectData.push_back(std::move(Buf));
  }
  DbSnapshot = Db;
  HasSnapshot = true;
}

void CheckpointManager::restore(DatabaseStore &Db) {
  assert(HasSnapshot && "restore without a checkpoint");
  assert(RegionData.size() == Regions.size() &&
         ObjectData.size() == Objects.size() &&
         "registration changed since the checkpoint was taken");
  for (size_t I = 0, E = Regions.size(); I != E; ++I)
    std::memcpy(Regions[I].Ptr, RegionData[I].data(), Regions[I].Bytes);
  for (size_t I = 0, E = Objects.size(); I != E; ++I)
    Objects[I]->loadState(ObjectData[I]);
  Db = DbSnapshot;
}

size_t CheckpointManager::snapshotBytes() const {
  size_t Bytes = 0;
  for (const auto &Buf : RegionData)
    Bytes += Buf.size();
  for (const auto &Buf : ObjectData)
    Bytes += Buf.size();
  Bytes += DbSnapshot.totalValues() * sizeof(float);
  return Bytes;
}
