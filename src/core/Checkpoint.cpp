//===- core/Checkpoint.cpp - Program-state checkpoint/restore ------------===//

#include "core/Checkpoint.h"

#include <cassert>
#include <cstring>

using namespace au;

Checkpointable::~Checkpointable() = default;

void CheckpointManager::registerRegion(void *Ptr, size_t Bytes) {
  assert(Ptr && Bytes > 0 && "invalid checkpoint region");
  for (const Region &R : Regions)
    if (R.Ptr == Ptr)
      return; // Already registered.
  Regions.push_back({Ptr, Bytes});
}

void CheckpointManager::registerObject(Checkpointable *Obj) {
  assert(Obj && "null checkpointable object");
  for (Checkpointable *O : Objects)
    if (O == Obj)
      return; // Already registered.
  Objects.push_back(Obj);
}

void CheckpointManager::checkpoint(DatabaseStore &Db) {
  const bool Delta = DirtyTracking && HasSnapshot;
  LastCopies = 0;

  // Regions: compare against the held copy and re-copy only on change
  // (O(sigma) reads, O(Δ) writes; buffers are allocated once).
  RegionData.resize(Regions.size());
  for (size_t I = 0, E = Regions.size(); I != E; ++I) {
    const Region &R = Regions[I];
    std::vector<uint8_t> &Buf = RegionData[I];
    if (!Delta || Buf.size() != R.Bytes) {
      Buf.resize(R.Bytes);
      std::memcpy(Buf.data(), R.Ptr, R.Bytes);
      ++LastCopies;
    } else if (std::memcmp(Buf.data(), R.Ptr, R.Bytes) != 0) {
      std::memcpy(Buf.data(), R.Ptr, R.Bytes);
      ++LastCopies;
    }
  }

  // Objects: re-serialized every time (an object cannot report dirtiness),
  // but into their retained buffers, so the steady state allocates nothing.
  ObjectData.resize(Objects.size());
  for (size_t I = 0, E = Objects.size(); I != E; ++I) {
    ObjectData[I].clear();
    Objects[I]->saveState(ObjectData[I]);
  }

  // pi: a slot whose generation stamp still matches the held snapshot is
  // byte-identical to it — skip. New slots start at generation 0 and every
  // mutation stamps a strictly positive store-wide counter, so a fresh
  // bottom slot also matches its zero-initialized snapshot entry.
  DbSnap.resize(Db.numSlots());
  for (NameId Id = 0, E = static_cast<NameId>(DbSnap.size()); Id != E; ++Id) {
    SlotSnap &Snap = DbSnap[Id];
    uint64_t Gen = Db.slotGen(Id);
    if (Delta && Snap.Gen == Gen)
      continue;
    Db.snapshotSlot(Id, Snap.Data, Snap.Mapped);
    Snap.Gen = Gen;
    ++LastCopies;
  }
  // Re-arm the store's lazy mutation stamping against this snapshot.
  Db.markSnapshot();

  HasSnapshot = true;
}

void CheckpointManager::restore(DatabaseStore &Db) {
  assert(HasSnapshot && "restore without a checkpoint");
  assert(RegionData.size() == Regions.size() &&
         ObjectData.size() == Objects.size() &&
         "registration changed since the checkpoint was taken");
  for (size_t I = 0, E = Regions.size(); I != E; ++I)
    std::memcpy(Regions[I].Ptr, RegionData[I].data(), Regions[I].Bytes);
  for (size_t I = 0, E = Objects.size(); I != E; ++I)
    Objects[I]->loadState(ObjectData[I]);

  // pi: rewind only slots mutated since the snapshot; their stamps wind
  // back with the values so the next checkpoint sees them clean.
  for (NameId Id = 0, E = static_cast<NameId>(DbSnap.size()); Id != E; ++Id) {
    const SlotSnap &Snap = DbSnap[Id];
    if (DirtyTracking && Db.slotGen(Id) == Snap.Gen)
      continue;
    Db.restoreSlot(Id, Snap.Data, Snap.Mapped, Snap.Gen);
  }
  // Slots interned after the snapshot roll back to bottom.
  for (NameId Id = static_cast<NameId>(DbSnap.size()),
              E = static_cast<NameId>(Db.numSlots());
       Id < E; ++Id)
    Db.reset(Id);
}

size_t CheckpointManager::snapshotBytes() const {
  size_t Bytes = 0;
  for (const auto &Buf : RegionData)
    Bytes += Buf.size();
  for (const auto &Buf : ObjectData)
    Bytes += Buf.size();
  for (const SlotSnap &Snap : DbSnap)
    if (Snap.Mapped)
      Bytes += Snap.Data.size() * sizeof(float);
  return Bytes;
}
