//===- core/DatabaseStore.h - The database store (pi) ----------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The database store pi of the operational semantics (Fig. 8): a mapping
/// from names to lists of values. au_extract appends feature-variable
/// values here; model outputs are put here before au_write_back copies them
/// into program variables. The store is isolated from program memory — all
/// transfer is explicit through the primitives.
///
/// Hot-path layout (DESIGN.md §7): names are interned once into dense
/// NameIds by an embedded NameTable, and the store is a flat vector of
/// slots indexed by NameId. Each slot keeps its float buffer across reset()
/// so steady-state extract/append does zero allocations, and carries two
/// counters: Gen, a store-wide monotone stamp bumped on every *logical*
/// mutation (append/set/reset/serialize target) that the checkpoint
/// manager's dirty tracking compares, and WriteGen, bumped only when the
/// slot's *bytes* change, which validates the zero-copy serialize spans.
///
/// serialize() is lazy: the combined entry records spans over the source
/// slots instead of copying them; the concatenated vector materializes only
/// when someone reads the combined entry through get(), while nn() consumes
/// the spans directly via view(). The string-keyed API is a thin shim that
/// interns and forwards, so existing callers compile and behave unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_DATABASESTORE_H
#define AU_CORE_DATABASESTORE_H

#include "core/NameTable.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace au {

/// Zero-copy view of one database-store entry: an ordered span list over
/// the backing slot buffers. Valid until the next mutation of any source
/// slot (in the Fig. 8 loop, a view produced by serialize is consumed by
/// the immediately following au_NN, which holds). copyTo() is the one
/// gather the consumer pays.
class SerializedView {
public:
  size_t size() const { return Total; }
  size_t numSpans() const { return Spans.size(); }
  const float *spanData(size_t I) const { return Spans[I].Data; }
  size_t spanSize(size_t I) const { return Spans[I].Len; }

  /// Gathers the spans into \p Dst (which must hold size() floats).
  void copyTo(float *Dst) const;

private:
  friend class DatabaseStore;
  struct Span {
    const float *Data;
    size_t Len;
  };
  std::vector<Span> Spans;
  size_t Total = 0;
};

/// pi ::= Name -> list of Value. Copyable so tests and the executable
/// semantics can snapshot it wholesale (the checkpoint manager itself uses
/// per-slot dirty tracking instead, see Checkpoint.h).
class DatabaseStore {
public:
  /// Delegates interning of names the store creates *itself* (today only
  /// the combined names of serialize()) to an external owner. A Session
  /// installs itself here so combined names intern through the engine's
  /// master table and the store stays a positional mirror of it
  /// (DESIGN.md §10); a standalone store interns locally as before. The
  /// authority must return an id that is valid in this store by the time
  /// it returns (the session's name replay guarantees that).
  class InternAuthority {
  public:
    virtual ~InternAuthority();
    virtual NameId resolveName(std::string_view Name) = 0;
  };

  //===--------------------------------------------------------------------===//
  // Name interning
  //===--------------------------------------------------------------------===//

  /// Interns \p Name (idempotent) and returns its dense handle. The handle
  /// APIs below are the hot path; intern once, outside the loop. Note:
  /// interning directly into a Session-owned store bypasses the engine's
  /// master table and the session will detect the divergence — go through
  /// Session::intern instead.
  NameId intern(std::string_view Name);

  /// Installs (or clears, with null) the interning authority.
  void setInternAuthority(InternAuthority *A) { Authority = A; }

  const NameTable &names() const { return Names; }

  /// The string a handle was interned from.
  const std::string &nameOf(NameId Id) const { return Names.name(Id); }

  //===--------------------------------------------------------------------===//
  // Handle-keyed primitives (hot path)
  //===--------------------------------------------------------------------===//

  /// Appends \p N values to the list under \p Id (Rule EXTRACT's concat).
  void append(NameId Id, const float *Values, size_t N);
  void append(NameId Id, float Value);
  /// Rvalue overload: adopts \p Values wholesale when the slot is bottom
  /// (the common model-output path hands over a freshly built vector, so
  /// this kills the copy); appends otherwise.
  void append(NameId Id, std::vector<float> &&Values);

  /// The list under \p Id; empty when unmapped (bottom). Materializes a
  /// lazily serialized entry on first read.
  const std::vector<float> &get(NameId Id) const;

  /// Span view of the entry without materializing it.
  SerializedView view(NameId Id) const;

  /// Replaces the list under \p Id (copying variant reuses the slot's
  /// buffer; no allocation once capacity is warm).
  void set(NameId Id, const float *Values, size_t N);
  void set(NameId Id, std::vector<float> Values);

  /// Maps \p Id back to bottom (Rule TRAIN/TEST reset the model-input list
  /// after each au_NN). Keeps the slot's buffer: the bytes stay readable
  /// through previously recorded serialize spans until the next append.
  void reset(NameId Id);

  bool contains(NameId Id) const;

  /// Rule SERIALIZE over handles: records the concatenation of the lists
  /// under \p Ids as spans under the combined name (the strcat of the
  /// source names, interned once and cached per id-vector), and returns the
  /// combined handle. No float is copied until the entry is read. With
  /// \p Consume the source entries are mapped back to bottom in the same
  /// walk (the runtime's serialize semantics); their bytes stay readable
  /// through the recorded spans.
  NameId serialize(const std::vector<NameId> &Ids, bool Consume = false);

  //===--------------------------------------------------------------------===//
  // String-keyed primitives (compatibility shims; intern and forward)
  //===--------------------------------------------------------------------===//

  void append(const std::string &Name, const std::vector<float> &Values);
  /// Rvalue overload: adopts \p Values wholesale when the slot is bottom.
  void append(const std::string &Name, std::vector<float> &&Values);
  void append(const std::string &Name, float Value);
  const std::vector<float> &get(const std::string &Name) const;
  void set(const std::string &Name, std::vector<float> Values);
  void reset(const std::string &Name);
  bool contains(const std::string &Name) const;

  /// Rule SERIALIZE: concatenates the lists under \p Names into a single
  /// list stored under the strcat of the names, and returns that combined
  /// name.
  std::string serialize(const std::vector<std::string> &Names);
  /// Disambiguates serialize({"A", "B"}): a braced list of string literals
  /// would otherwise also match the NameId vector via its iterator-pair
  /// constructor.
  std::string serialize(std::initializer_list<const char *> Names);

  //===--------------------------------------------------------------------===//
  // Accounting and checkpoint support
  //===--------------------------------------------------------------------===//

  /// Number of mapped (non-bottom) names.
  size_t numEntries() const;

  /// Total stored floats across all lists.
  size_t totalValues() const;

  /// Cumulative floats ever appended (monotone). This is the Table 2
  /// "Trace Size" accounting. Deliberately survives both reset() and
  /// clear(): it counts what the primitives moved over the execution, not
  /// what the store currently holds (tests rely on this).
  size_t lifetimeAppended() const { return Appended; }

  /// Maps every entry to bottom and drops all per-slot bookkeeping: buffer
  /// capacity is released and generation stamps are re-issued, so cleared
  /// slots are seen as mutated by any outstanding checkpoint snapshot.
  /// Interned names (and their ids) survive; lifetimeAppended() survives
  /// (see above). Used by tests; not a primitive.
  void clear();

  /// Number of slots (== names().size(); includes bottom slots).
  size_t numSlots() const { return Slots.size(); }

  /// The logical-mutation stamp of a slot (checkpoint dirty tracking).
  uint64_t slotGen(NameId Id) const;

  /// Called by the checkpoint manager after recording slot stamps: mutation
  /// stamping is lazy — a slot already stamped after the latest snapshot is
  /// already dirty and skips the counter bump — so the manager must tell
  /// the store where "latest" is.
  void markSnapshot() { SnapStamp = GenCounter; }

  /// Copies the entry under \p Id into \p Data (reusing its capacity) and
  /// reports whether the slot is mapped. Materializes lazy entries.
  void snapshotSlot(NameId Id, std::vector<float> &Data, bool &Mapped) const;

  /// Overwrites the slot from a snapshot taken at generation \p Gen and
  /// winds its stamp back to \p Gen, so an unchanged slot stays clean
  /// across checkpoint/restore cycles.
  void restoreSlot(NameId Id, const std::vector<float> &Data, bool Mapped,
                   uint64_t Gen);

private:
  /// One arena slot. Data/Lazy bookkeeping is mutable so that get() can
  /// materialize a lazy concatenation without breaking logical constness
  /// (materialization never changes the entry's value).
  struct Slot {
    /// Backing buffer. Only the slots of a *mapped*, non-lazy entry are
    /// meaningful; after reset() the bytes linger for span readers.
    mutable std::vector<float> Data;
    /// Lazy-concat sources: (source id, length, source WriteGen at record
    /// time). Non-empty only while Lazy.
    struct Src {
      NameId Id;
      uint32_t Len;
      uint64_t WriteGen;
    };
    mutable std::vector<Src> Srcs;
    uint64_t Gen = 0;            ///< Logical-mutation stamp (store-wide).
    mutable uint64_t WriteGen = 0; ///< Byte-mutation stamp (span validity).
    uint32_t LazySize = 0;       ///< Total floats of the lazy concat.
    bool Mapped = false;
    mutable bool Lazy = false;
  };

  Slot &slot(NameId Id);
  const Slot &slot(NameId Id) const;
  void materialize(const Slot &S) const;

  /// Cold half of append(): first touch of a bottom slot, concretizing a
  /// lazy entry, and capacity growth (the WriteGen bumps live here — the
  /// fast path never invalidates recorded spans).
  void appendSlow(Slot &S, const float *Values, size_t N);

  /// Cold half of serialize(): combined-name interning on an id-vector
  /// cache miss (routed through the InternAuthority when one is set).
  NameId combinedIdFor(const std::vector<NameId> &Ids);

  /// Interns a range of string-ish names; shared by the string-keyed
  /// serialize shims.
  template <typename Range> std::vector<NameId> internRange(const Range &R) {
    std::vector<NameId> Ids;
    Ids.reserve(R.size());
    for (const auto &N : R)
      Ids.push_back(intern(N));
    return Ids;
  }

  /// Stamps a logical mutation. Lazy: once a slot is dirty relative to the
  /// latest snapshot (Gen > SnapStamp), further mutations change nothing a
  /// snapshot comparison can see, so the hot loop skips the counter
  /// read-modify-write (which would otherwise serialize every append).
  void touch(Slot &S) {
    if (S.Gen <= SnapStamp)
      S.Gen = ++GenCounter;
  }

  /// Cache: source-id vector -> combined id, so steady-state serialize
  /// neither hashes strings nor concatenates them.
  struct IdVecHash {
    size_t operator()(const std::vector<NameId> &V) const {
      size_t H = 0xcbf29ce484222325ull;
      for (NameId Id : V)
        H = (H ^ Id) * 0x100000001b3ull;
      return H;
    }
  };

  NameTable Names;
  std::vector<Slot> Slots;
  InternAuthority *Authority = nullptr;
  std::unordered_map<std::vector<NameId>, NameId, IdVecHash> CombinedIds;
  /// One-entry MRU over CombinedIds: the annotated loop serializes the same
  /// id-vector every iteration, so a short equality check beats re-hashing.
  std::vector<NameId> LastSerializeIds;
  NameId LastSerializeCombined = InvalidNameId;
  uint64_t GenCounter = 0;
  uint64_t SnapStamp = 0; ///< GenCounter value at the latest snapshot.
  size_t Appended = 0;
  /// serialize()'s swap partner for the combined slot's span list (see the
  /// self-reference restore there); holds a retained buffer between calls.
  std::vector<Slot::Src> SrcsStash;
};

//===----------------------------------------------------------------------===//
// Inline hot path (DESIGN.md §7): the handle-keyed append/reset pair runs
// once per au_extract / au_serialize constituent, so it is defined here to
// inline into the primitive bodies.
//===----------------------------------------------------------------------===//

inline DatabaseStore::Slot &DatabaseStore::slot(NameId Id) {
  assert(Id < Slots.size() && "NameId from a different store");
  return Slots[Id];
}

inline const DatabaseStore::Slot &DatabaseStore::slot(NameId Id) const {
  assert(Id < Slots.size() && "NameId from a different store");
  return Slots[Id];
}

// WriteGen stamps byte mutations a recorded span could observe: a rewrite
// from offset zero (the old bytes die) or a growth past capacity (the old
// buffer dies). Extending a list in place leaves every previously recorded
// prefix span intact, so steady-state appends carry no counter
// read-modify-write chain at all.

inline void DatabaseStore::append(NameId Id, const float *Values, size_t N) {
  Slot &S = slot(Id);
  // Fast path: extending a concrete mapped list inside retained capacity —
  // the steady state of the annotated loop. One fused test guards it, then
  // the body is a single batched copy into the slot arena (the pointer-pair
  // insert at end() compiles to one memcpy; measured identical to a raw
  // memcpy of the run). Everything else — first touch, lazy concretize,
  // growth — is the out-of-line slow path.
  if (S.Mapped && !S.Lazy && S.Data.size() + N <= S.Data.capacity()) {
    S.Data.insert(S.Data.end(), Values, Values + N);
    touch(S);
    Appended += N;
    return;
  }
  appendSlow(S, Values, N);
}

inline void DatabaseStore::append(NameId Id, float Value) {
  // Scalar fast path: push_back instead of the iterator-pair insert (one
  // au_extract per program variable is the common case).
  Slot &S = slot(Id);
  if (S.Mapped && !S.Lazy && S.Data.size() < S.Data.capacity()) {
    S.Data.push_back(Value);
    touch(S);
    ++Appended;
    return;
  }
  appendSlow(S, &Value, 1);
}

inline void DatabaseStore::reset(NameId Id) {
  Slot &S = slot(Id);
  if (!S.Mapped)
    return; // Already bottom; nothing observable changes.
  S.Mapped = false;
  if (S.Lazy) {
    S.Lazy = false;
    S.Srcs.clear();
  }
  // Deliberately no WriteGen bump and no Data.clear(): the bytes stay
  // readable through spans recorded by serialize() until the next append
  // overwrites them (the zero-copy serialize contract, DESIGN.md §7).
  touch(S);
}

inline NameId DatabaseStore::serialize(const std::vector<NameId> &Ids,
                                       bool Consume) {
  assert(!Ids.empty() && "serialize of no lists");
  if (Ids.size() == 1)
    return Ids[0]; // A single list serializes onto its own name.

  // Steady-state loops serialize the same id-vector every iteration: a
  // short equality check beats re-hashing it.
  NameId Combined =
      Ids == LastSerializeIds ? LastSerializeCombined : combinedIdFor(Ids);

  // Record the concatenation as spans, gathered straight into the combined
  // slot's retained span list; flatten sources that are themselves lazy so
  // spans always reference concrete buffers. No float is copied. Aliasing
  // notes: the combined slot's old span list is swapped into SrcsStash
  // first, so a lazy combined slot appearing among its own sources
  // flattens from the stash while the new list is being built; a span over
  // the combined slot's own buffer is fine — view() only reads it, and
  // materialize() gathers every span before replacing the buffer.
  Slot &C = slot(Combined);
  C.Srcs.swap(SrcsStash);
  std::vector<Slot::Src> &Srcs = C.Srcs;
  Srcs.clear();
  uint32_t Total = 0;
  bool AnyLazy = false;
  for (NameId Id : Ids) {
    Slot &S = slot(Id);
    if (!S.Mapped) {
      // Bottom contributes no values (but did name the entry) — unless this
      // is a duplicate of a source consumed earlier in this very walk,
      // whose bytes (and recorded span) are still valid.
      for (size_t J = 0, E = Srcs.size(); J != E; ++J)
        if (Srcs[J].Id == Id) {
          Slot::Src Again = Srcs[J];
          Srcs.push_back(Again);
          Total += Again.Len;
          break;
        }
      continue;
    }
    if (S.Lazy) {
      AnyLazy = true;
      const std::vector<Slot::Src> &From = &S == &C ? SrcsStash : S.Srcs;
      for (const Slot::Src &Sub : From) {
        Srcs.push_back(Sub);
        Total += Sub.Len;
      }
      continue;
    }
    Srcs.push_back({Id, static_cast<uint32_t>(S.Data.size()), S.WriteGen});
    Total += static_cast<uint32_t>(S.Data.size());
    if (Consume && Id != Combined) {
      S.Mapped = false;
      touch(S);
    }
  }
  // Lazy sources are consumed after the walk: a duplicated lazy source
  // must still be mapped when its second occurrence flattens it.
  if (Consume && AnyLazy)
    for (NameId Id : Ids) {
      Slot &S = slot(Id);
      if (Id != Combined && S.Mapped && S.Lazy) {
        S.Mapped = false;
        S.Lazy = false;
        S.Srcs.clear();
        touch(S);
      }
    }
  C.LazySize = Total;
  C.Lazy = true;
  C.Mapped = true;
  touch(C);
  return Combined;
}

inline bool DatabaseStore::contains(NameId Id) const {
  return slot(Id).Mapped;
}

inline uint64_t DatabaseStore::slotGen(NameId Id) const {
  return slot(Id).Gen;
}

} // namespace au

#endif // AU_CORE_DATABASESTORE_H
