//===- core/DatabaseStore.h - The database store (pi) ----------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The database store pi of the operational semantics (Fig. 8): a mapping
/// from string names to lists of values. au_extract appends feature-variable
/// values here; model outputs are put here before au_write_back copies them
/// into program variables. The store is isolated from program memory — all
/// transfer is explicit through the primitives.
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_DATABASESTORE_H
#define AU_CORE_DATABASESTORE_H

#include <map>
#include <string>
#include <vector>

namespace au {

/// pi ::= String -> list of Value. Copyable so checkpoints can snapshot it.
class DatabaseStore {
public:
  /// Appends \p Values to the list under \p Name (Rule EXTRACT's concat).
  void append(const std::string &Name, const std::vector<float> &Values);
  void append(const std::string &Name, float Value);

  /// The list under \p Name; empty when the name is unmapped (bottom).
  const std::vector<float> &get(const std::string &Name) const;

  /// Replaces the list under \p Name.
  void set(const std::string &Name, std::vector<float> Values);

  /// Maps \p Name back to bottom (Rule TRAIN/TEST reset the model-input
  /// list after each au_NN).
  void reset(const std::string &Name);

  bool contains(const std::string &Name) const;

  /// Rule SERIALIZE: concatenates the lists under \p Names into a single
  /// list stored under the strcat of the names, and returns that combined
  /// name.
  std::string serialize(const std::vector<std::string> &Names);

  /// Number of mapped (non-bottom) names.
  size_t numEntries() const { return Entries.size(); }

  /// Total stored floats across all lists.
  size_t totalValues() const;

  /// Cumulative floats ever appended (monotone; survives reset). This is
  /// the Table 2 "Trace Size" accounting.
  size_t lifetimeAppended() const { return Appended; }

  /// Removes every entry (used by tests; not a primitive).
  void clear() { Entries.clear(); }

private:
  std::map<std::string, std::vector<float>> Entries;
  size_t Appended = 0;
};

} // namespace au

#endif // AU_CORE_DATABASESTORE_H
