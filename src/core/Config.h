//===- core/Config.h - Autonomizer model configuration ---------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The configuration vocabulary of the au_config primitive (Fig. 8,
/// Definitions): ModelType delta ::= DNN | CNN, Algorithm alpha ::= Q |
/// AdamOpt, and Mode omega ::= TR | TS. A ModelConfig is what au_config
/// stores until the runtime knows the input/output sizes (which the paper
/// computes automatically from the data fed to the network).
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_CONFIG_H
#define AU_CORE_CONFIG_H

#include <functional>
#include <string>
#include <vector>

namespace au {
class Rng;
namespace nn {
class Network;
} // namespace nn
} // namespace au

namespace au {

/// Model type delta of the semantics.
enum class ModelType { DNN, CNN };

/// Learning algorithm alpha of the semantics: Q-learning for RL,
/// Adam-optimized regression for SL.
enum class Algorithm { QLearn, AdamOpt };

/// Execution mode omega: TR piggybacks training on software execution,
/// TS is the deployment (production/testing) mode that only predicts.
enum class Mode { TR, TS };

/// Everything au_config supplies; layer input/output sizes are inferred
/// later from the extracted data and the write-back declaration.
struct ModelConfig {
  std::string Name;
  ModelType Type = ModelType::DNN;
  Algorithm Algo = Algorithm::AdamOpt;
  /// Hidden layer widths (the paper's "2, 256, 64" means two hidden layers
  /// of 256 and 64 neurons).
  std::vector<int> HiddenLayers;
  /// For CNN models: input frame side length (square) and channel count.
  int FrameSide = 0;
  int FrameChannels = 1;
  /// Learning-rate override; <= 0 selects the per-algorithm default.
  double LearningRate = 0.0;
  /// Deterministic seed for weight initialization and exploration.
  unsigned long long Seed = 1;
  /// The paper's escape hatch: "a callback function in which the users
  /// can create arbitrary neural networks from scratch". When set, it
  /// overrides Type/HiddenLayers and must build a network mapping the
  /// given input size to the given output size. Models built this way
  /// cannot be reloaded by CONFIG-TEST unless the same callback is
  /// supplied again.
  std::function<nn::Network(int InSize, int OutSize, Rng &Rand)>
      CustomNetwork;
};

/// Human-readable names for diagnostics.
const char *modelTypeName(ModelType T);
const char *algorithmName(Algorithm A);
const char *modeName(Mode M);

} // namespace au

#endif // AU_CORE_CONFIG_H
