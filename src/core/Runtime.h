//===- core/Runtime.h - The Autonomizer runtime and primitives -*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Autonomizer runtime: the seven primitives of Fig. 1 realized over the
/// database store pi, the model store theta and the checkpoint manager,
/// following the operational semantics of Fig. 8.
///
/// A program is autonomized by adding a few calls:
///
/// \code
///   au::Runtime RT(au::Mode::TR);
///   RT.config({.Name = "Mario", .Type = au::ModelType::DNN,
///              .Algo = au::Algorithm::QLearn, .HiddenLayers = {256, 64}});
///   ...
///   RT.checkpoint();
///   while (Running) {
///     RT.extract("PX", Player.X);
///     RT.extract("PY", Player.Y);
///     RT.nn("Mario", RT.serialize({"PX", "PY"}), Reward, Terminated,
///           {"output", /*NumActions=*/5});
///     RT.writeBack("output", 5, &ActionKey);
///     act(ActionKey);
///     if (Terminated)
///       RT.restore();
///   }
/// \endcode
///
/// Every primitive also has a handle-keyed overload (DESIGN.md §7): intern
/// the names once before the loop with intern() and pass the dense NameIds
/// instead of strings. The two forms are observationally equivalent — same
/// pi contents, same stats — but the handle form neither hashes nor copies
/// a string per call and gathers model inputs through zero-copy serialize
/// spans into a reusable staging buffer:
///
/// \code
///   au::NameId PX = RT.intern("PX"), PY = RT.intern("PY");
///   au::NameId Mario = RT.intern("Mario"), Out = RT.intern("output");
///   ...
///   RT.extract(PX, Player.X);
///   RT.extract(PY, Player.Y);
///   RT.nn(Mario, RT.serialize({PX, PY}), Reward, Terminated, {Out, 5});
///   RT.writeBack(Out, 5, &ActionKey);
/// \endcode
///
/// In TR (training) mode the runtime piggybacks learning on the execution:
/// supervised models record the program's own (human/autotuner-chosen)
/// target values at au_write_back as labels and train offline via
/// trainSupervised(); Q-learning models train online inside au_NN. In TS
/// (deployment) mode au_config loads saved models and au_write_back
/// overwrites the target variables with predictions.
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_RUNTIME_H
#define AU_CORE_RUNTIME_H

#include "core/Checkpoint.h"
#include "core/Config.h"
#include "core/DatabaseStore.h"
#include "core/Model.h"

#include <cassert>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace au {

/// Primitive-level counters (used by the overhead microbenchmarks and by
/// the Table 2 trace-size accounting).
struct RuntimeStats {
  size_t NumConfig = 0;
  size_t NumExtract = 0;
  size_t FloatsExtracted = 0;
  size_t NumSerialize = 0;
  size_t NumNn = 0;
  size_t NumWriteBack = 0;
  size_t NumCheckpoint = 0;
  size_t NumRestore = 0;

  /// Trace footprint in bytes (extracted floats), Table 2's "Trace Size".
  size_t traceBytes() const { return FloatsExtracted * sizeof(float); }
};

/// Handle-keyed counterpart of WriteBackSpec: one declared output under an
/// interned name. For SL the number of predicted floats; for RL the number
/// of discrete actions.
struct WriteBackHandle {
  NameId Name = InvalidNameId;
  int Size = 1;
};

/// The Autonomizer runtime. One instance supports multiple model instances
/// in one execution, as the paper requires.
class Runtime {
public:
  /// \p ModelDir is where TS-mode au_config looks for saved models and
  /// where saveModel() writes them ("" = current directory).
  explicit Runtime(Mode M, std::string ModelDir = "");

  Mode mode() const { return ExecMode; }

  /// Switches mode in place (e.g. evaluate a freshly trained in-memory
  /// model without a save/load round trip). The semantics fixes the mode
  /// per execution; this is a harness convenience.
  void switchMode(Mode M) { ExecMode = M; }

  /// Interns \p Name into the store's name table (idempotent) and returns
  /// the dense handle accepted by every primitive overload below. Model
  /// names and database names share one table, so the handle returned for
  /// a configured model's name keys nn()/getModel() too. With actor
  /// contexts active the name is interned into every actor store as well,
  /// keeping ids valid across all of them; intern user names before the
  /// first serialize on an actor context (serialize interns combined names
  /// per store).
  NameId intern(std::string_view Name) {
    NameId Id = Db.intern(Name);
    for (auto &A : Actors) {
      [[maybe_unused]] NameId AId = A->Db.intern(Name);
      assert(AId == Id && "actor store name table diverged; intern user "
                          "names before serializing on actor contexts");
    }
    return Id;
  }

  //===--------------------------------------------------------------------===//
  // Primitives
  //===--------------------------------------------------------------------===//

  /// au_config: Rule CONFIG-TRAIN creates the model if absent; Rule
  /// CONFIG-TEST loads it from ModelDir instead. Returns the model.
  Model *config(const ModelConfig &C);

  /// au_extract: Rule EXTRACT appends Size values to pi[Name].
  void extract(const std::string &Name, size_t Size, const float *Data);
  void extract(const std::string &Name, size_t Size, const double *Data);
  void extract(const std::string &Name, float Value);
  void extract(const std::string &Name, double Value) {
    extract(Name, static_cast<float>(Value));
  }
  void extract(const std::string &Name, int Value) {
    extract(Name, static_cast<float>(Value));
  }

  /// au_extract over handles: appends straight into the retained slot
  /// buffer — no string hash, no temporary vector. Defined inline: this is
  /// the most frequent primitive of the annotated loop.
  void extract(NameId Id, size_t Size, const float *Data) {
    assert(Data || Size == 0);
    ++Stats.NumExtract;
    Stats.FloatsExtracted += Size;
    Db.append(Id, Data, Size);
  }
  void extract(NameId Id, size_t Size, const double *Data);
  void extract(NameId Id, float Value) {
    ++Stats.NumExtract;
    ++Stats.FloatsExtracted;
    Db.append(Id, Value);
  }
  void extract(NameId Id, double Value) {
    extract(Id, static_cast<float>(Value));
  }
  void extract(NameId Id, int Value) { extract(Id, static_cast<float>(Value)); }

  /// au_serialize: Rule SERIALIZE concatenates lists (and names); returns
  /// the combined name to pass to nn().
  std::string serialize(const std::vector<std::string> &Names);
  /// Disambiguates serialize({"A", "B"}) (see DatabaseStore::serialize).
  std::string serialize(std::initializer_list<const char *> Names);

  /// au_serialize over handles: records the concatenation as zero-copy
  /// spans (no float moves) and returns the combined handle, cached per
  /// id-vector after the first call. Defined inline: runs once per loop
  /// iteration right after the extracts.
  NameId serialize(const std::vector<NameId> &Ids) {
    ++Stats.NumSerialize;
    // The constituent lists are consumed: they have been moved into the
    // combined list. (Fig. 8's SERIALIZE leaves them mapped, but its
    // TRAIN/TEST rules only reset the combined extName — without this
    // refinement the model input would grow without bound across loop
    // iterations.) The consume keeps the slot bytes, so the combined
    // entry's zero-copy spans stay valid.
    return Db.serialize(Ids, /*Consume=*/true);
  }

  /// au_NN, supervised form: consumes pi[ExtName] as the feature vector and
  /// declares the outputs this model predicts. TR records a pending sample
  /// completed by the write-backs; TS writes predictions into pi.
  void nn(const std::string &ModelName, const std::string &ExtName,
          const std::vector<WriteBackSpec> &Outputs);

  /// au_NN, reinforcement form (the paper's au_NN(model, ext, reward, term,
  /// wbName)): consumes pi[ExtName] as the state, feeds (reward, terminal)
  /// to the learner (TR trains online per Rule TRAIN; TS only predicts per
  /// Rule TEST) and stores the selected action in pi[Output.Name].
  void nn(const std::string &ModelName, const std::string &ExtName,
          float Reward, bool Terminal, const WriteBackSpec &Output);

  /// Handle-keyed au_NN forms. The feature/state list is gathered from the
  /// serialize spans into a reusable staging buffer and, in TS mode, fed
  /// through the batched forwardBatch engine (Rows = 1), so the steady
  /// state allocates nothing per call.
  void nn(NameId ModelId, NameId ExtId,
          const std::vector<WriteBackHandle> &Outputs);
  void nn(NameId ModelId, NameId ExtId, float Reward, bool Terminal,
          const WriteBackHandle &Output);

  /// Batched TS-mode au_NN: pi[ExtId] holds \p Rows feature vectors back to
  /// back; one forwardBatch call predicts all of them and each declared
  /// output receives its Rows x Size predictions concatenated row-major.
  /// Deployment-mode only (TR samples are labeled per iteration).
  void nnBatch(NameId ModelId, NameId ExtId, int Rows,
               const std::vector<WriteBackHandle> &Outputs);

  /// au_write_back: Rule WRITE-BACK copies pi[Name] into the program
  /// variable. In TR mode, supervised outputs flow the opposite way: the
  /// program's current values are recorded as the training label.
  void writeBack(const std::string &Name, size_t Size, float *Data);
  void writeBack(const std::string &Name, size_t Size, double *Data);

  /// RL write-back: \p NumActions documents the action count (the paper's
  /// "the value 5 means there are 5 possible actions"); the predicted
  /// action index is stored into *ActionKey.
  void writeBack(const std::string &Name, int NumActions, int *ActionKey);

  /// Handle-keyed write-backs.
  void writeBack(NameId Id, size_t Size, float *Data);
  void writeBack(NameId Id, size_t Size, double *Data);
  void writeBack(NameId Id, int NumActions, int *ActionKey);

  //===--------------------------------------------------------------------===//
  // Parallel actor contexts (DESIGN.md §8)
  //===--------------------------------------------------------------------===//
  //
  // K concurrent rollouts share one model store theta but need K isolated
  // database stores pi — actor k's extracts must never interleave with
  // actor j's. setActorContexts creates per-actor stores whose name tables
  // mirror the main one (ids agree), the actor-keyed primitives below
  // operate on actor k's store only (distinct actors may run on distinct
  // threads), and nnRlActors fuses the K au_NN calls of one tick into a
  // single batched model step.

  /// Creates per-actor database contexts 0..K-1 (grow-only; existing
  /// contexts and their contents are kept). Each new context's name table
  /// is seeded with every name interned so far, in order, so main-store
  /// handles index actor stores directly.
  void setActorContexts(int K);

  int numActorContexts() const { return static_cast<int>(Actors.size()); }

  /// Actor \p Actor's database store (tests/diagnostics).
  DatabaseStore &actorDb(int Actor) { return actor(Actor).Db; }

  /// au_extract into actor \p Actor's store. Safe to call for distinct
  /// actors from distinct threads; stats accumulate per actor and fold into
  /// the global counters at mergeActorStats().
  void extract(int Actor, NameId Id, float Value) {
    ActorCtx &C = actor(Actor);
    ++C.NumExtract;
    ++C.FloatsExtracted;
    C.Db.append(Id, Value);
  }
  void extract(int Actor, NameId Id, size_t Size, const float *Data) {
    assert(Data || Size == 0);
    ActorCtx &C = actor(Actor);
    ++C.NumExtract;
    C.FloatsExtracted += Size;
    C.Db.append(Id, Data, Size);
  }

  /// au_serialize on actor \p Actor's store. All actors issue the same
  /// serialize sequence, so the combined handles stay in lockstep across
  /// actor stores.
  NameId serialize(int Actor, const std::vector<NameId> &Ids) {
    ActorCtx &C = actor(Actor);
    ++C.NumSerialize;
    return C.Db.serialize(Ids, /*Consume=*/true);
  }

  /// RL action write-back from actor \p Actor's store.
  void writeBack(int Actor, NameId Id, int NumActions, int *ActionKey) {
    (void)NumActions;
    assert(ActionKey && "invalid write-back destination");
    ActorCtx &C = actor(Actor);
    ++C.NumWriteBack;
    const std::vector<float> &Vals = C.Db.get(Id);
    assert(!Vals.empty() && "no predicted action in the actor store");
    *ActionKey = static_cast<int>(Vals.front());
  }

  /// Fused RL au_NN for K actors: gathers actor k's state pi_k[ExtIds[k]]
  /// into row k of a K x D staging block (parallel, disjoint rows), runs
  /// one batched model step (observe + train + select, see
  /// RlModel::stepActors), and scatters action k into pi_k[Output.Name].
  /// Counts as K au_NN calls in the stats.
  void nnRlActors(NameId ModelId, const NameId *ExtIds, const float *Rewards,
                  const uint8_t *Terminals, int K,
                  const WriteBackHandle &Output);

  /// Folds the per-actor primitive counters into stats() in actor order
  /// (call after parallel work has quiesced, before reading the stats).
  void mergeActorStats();

  /// au_checkpoint: Rule CHECKPOINT snapshots registered program state and
  /// pi; model state theta is deliberately excluded.
  void checkpoint();

  /// au_restore: Rule RESTORE rolls program state and pi back to the last
  /// checkpoint; models keep their accumulated learning.
  void restore();

  //===--------------------------------------------------------------------===//
  // Runtime support
  //===--------------------------------------------------------------------===//

  DatabaseStore &db() { return Db; }
  CheckpointManager &checkpoints() { return Ckpt; }
  const RuntimeStats &stats() const { return Stats; }

  /// Looks up a configured model; null when absent.
  Model *getModel(const std::string &Name);
  Model *getModel(NameId Id) {
    return Id < ModelById.size() ? ModelById[Id] : nullptr;
  }

  /// Offline supervised training over the samples collected in TR mode.
  /// Returns the final epoch's mean loss.
  double trainSupervised(const std::string &ModelName, int Epochs,
                         int BatchSize);

  /// Persists one model / all models to ModelDir.
  bool saveModel(const std::string &ModelName);
  bool saveAllModels();

  /// The file path a model is saved to / loaded from.
  std::string modelPath(const std::string &ModelName) const;

private:
  /// An SL au_NN whose labels have not all arrived yet (TR mode).
  struct PendingSample {
    NameId ModelId = InvalidNameId;
    std::vector<float> X;
    std::vector<WriteBackHandle> Outputs;
    /// (output id, label values); small, searched linearly.
    std::vector<std::pair<NameId, std::vector<float>>> Labels;
  };

  /// One actor's isolated slice of the runtime: its own database store pi
  /// plus per-actor primitive counters (so actor threads never contend on
  /// the global RuntimeStats).
  struct ActorCtx {
    DatabaseStore Db;
    size_t NumExtract = 0;
    size_t FloatsExtracted = 0;
    size_t NumSerialize = 0;
    size_t NumWriteBack = 0;
  };

  ActorCtx &actor(int Actor) {
    assert(Actor >= 0 && Actor < numActorContexts() &&
           "actor context out of range");
    return *Actors[static_cast<size_t>(Actor)];
  }

  void completePendingIfReady(PendingSample &P);
  void setWbOwner(NameId Out, NameId ModelId);
  NameId wbOwner(NameId Out) const {
    return Out < WbOwner.size() ? WbOwner[Out] : InvalidNameId;
  }

  Mode ExecMode;
  std::string ModelDir;
  DatabaseStore Db;
  CheckpointManager Ckpt;
  std::map<std::string, std::unique_ptr<Model>> Models; // theta
  std::vector<Model *> ModelById;  ///< NameId -> model (theta over handles).
  std::vector<NameId> WbOwner;     ///< Output id -> owning model id.
  std::vector<PendingSample> Pending;
  std::vector<std::unique_ptr<ActorCtx>> Actors;
  RuntimeStats Stats;

  // Reusable hot-path staging (DESIGN.md §7): model inputs gathered from
  // serialize spans, batched predictions, per-output scatter, and numeric
  // conversions. Capacity warms up once; the loop allocates nothing.
  std::vector<float> NnStaging;
  std::vector<float> NnOut;
  std::vector<float> ScatterBuf;
  std::vector<float> ConvStaging;
  std::vector<int> ActionsScratch;
};

} // namespace au

#endif // AU_CORE_RUNTIME_H
