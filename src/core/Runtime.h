//===- core/Runtime.h - Single-process facade over Engine/Session -*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Autonomizer runtime: the seven primitives of Fig. 1 realized over the
/// database store pi, the model store theta and the checkpoint manager,
/// following the operational semantics of Fig. 8.
///
/// Since the Engine/Session split (DESIGN.md §10) this class is a thin
/// compatibility facade: it owns one process-private Engine (the model store
/// theta and the master name table) and one main Session (the execution's
/// <sigma, pi>), and forwards every primitive to the session. The parallel
/// actor contexts of DESIGN.md §8 are plain additional Sessions over the
/// same Engine; the actor-keyed overloads below forward to them, and
/// nnRlActors is a thin wrapper over Engine::nnRlSessions. Code written
/// against the pre-split Runtime compiles and behaves unchanged; new code
/// that wants multi-tenant serving should hold an Engine and Sessions
/// directly (see Engine.h).
///
/// A program is autonomized by adding a few calls:
///
/// \code
///   au::Runtime RT(au::Mode::TR);
///   RT.config({.Name = "Mario", .Type = au::ModelType::DNN,
///              .Algo = au::Algorithm::QLearn, .HiddenLayers = {256, 64}});
///   ...
///   RT.checkpoint();
///   while (Running) {
///     RT.extract("PX", Player.X);
///     RT.extract("PY", Player.Y);
///     RT.nn("Mario", RT.serialize({"PX", "PY"}), Reward, Terminated,
///           {"output", /*NumActions=*/5});
///     RT.writeBack("output", 5, &ActionKey);
///     act(ActionKey);
///     if (Terminated)
///       RT.restore();
///   }
/// \endcode
///
/// Every primitive also has a handle-keyed overload (DESIGN.md §7): intern
/// the names once before the loop with intern() and pass the dense NameIds
/// instead of strings. The two forms are observationally equivalent — same
/// pi contents, same stats — but the handle form neither hashes nor copies
/// a string per call.
///
/// In TR (training) mode the runtime piggybacks learning on the execution:
/// supervised models record the program's own (human/autotuner-chosen)
/// target values at au_write_back as labels and train offline via
/// trainSupervised(); Q-learning models train online inside au_NN. In TS
/// (deployment) mode au_config loads saved models and au_write_back
/// overwrites the target variables with predictions.
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_RUNTIME_H
#define AU_CORE_RUNTIME_H

#include "core/Engine.h"
#include "core/Session.h"

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace au {

/// Compatibility facade: one Engine + one main Session + the actor-context
/// API of DESIGN.md §8, with the exact pre-split surface. One instance
/// supports multiple model instances in one execution, as the paper
/// requires.
class Runtime {
public:
  /// \p ModelDir is where TS-mode au_config looks for saved models and
  /// where saveModel() writes them ("" = current directory).
  explicit Runtime(Mode M, std::string ModelDir = "")
      : Eng(std::move(ModelDir)), Main(Eng, M) {}

  Mode mode() const { return Main.mode(); }

  /// Switches mode in place (e.g. evaluate a freshly trained in-memory
  /// model without a save/load round trip). The semantics fixes the mode
  /// per execution; this is a harness convenience.
  void switchMode(Mode M) { Main.switchMode(M); }

  /// The process-wide model plane behind this facade; new code can batch
  /// across sessions through it (Engine::nnBatchSessions).
  Engine &engine() { return Eng; }

  /// The main execution's Session; native-API entry points (RlHarness)
  /// accept it directly.
  Session &session() { return Main; }

  /// Actor context \p A as a Session (native-API access).
  Session &actorSession(int Actor) { return actor(Actor); }

  /// Interns \p Name into the engine's master name table (idempotent) and
  /// mirrors it into the main and every actor store, so the returned handle
  /// is valid across all of them. Model names and database names share one
  /// table, so the handle returned for a configured model's name keys
  /// nn()/getModel() too. Throws StoreDivergenceError if any store was
  /// interned into directly (db().intern) behind the runtime's back — a
  /// real error path that fires in release builds too.
  NameId intern(std::string_view Name) {
    NameId Id = Main.intern(Name);
    for (auto &A : Actors)
      A->S.intern(Name);
    return Id;
  }

  //===--------------------------------------------------------------------===//
  // Primitives (forwarded to the main Session)
  //===--------------------------------------------------------------------===//

  /// au_config: Rule CONFIG-TRAIN creates the model if absent; Rule
  /// CONFIG-TEST loads it from ModelDir instead. Returns the model.
  Model *config(const ModelConfig &C) { return Main.config(C); }

  /// au_extract: Rule EXTRACT appends Size values to pi[Name].
  void extract(const std::string &Name, size_t Size, const float *Data) {
    Main.extract(Name, Size, Data);
  }
  void extract(const std::string &Name, size_t Size, const double *Data) {
    Main.extract(Name, Size, Data);
  }
  void extract(const std::string &Name, float Value) {
    Main.extract(Name, Value);
  }
  void extract(const std::string &Name, double Value) {
    Main.extract(Name, Value);
  }
  void extract(const std::string &Name, int Value) {
    Main.extract(Name, Value);
  }

  /// au_extract over handles (the hot path; see Session::extract).
  void extract(NameId Id, size_t Size, const float *Data) {
    Main.extract(Id, Size, Data);
  }
  void extract(NameId Id, size_t Size, const double *Data) {
    Main.extract(Id, Size, Data);
  }
  void extract(NameId Id, float Value) { Main.extract(Id, Value); }
  void extract(NameId Id, double Value) { Main.extract(Id, Value); }
  void extract(NameId Id, int Value) { Main.extract(Id, Value); }

  /// au_serialize: Rule SERIALIZE concatenates lists (and names); returns
  /// the combined name to pass to nn().
  std::string serialize(const std::vector<std::string> &Names) {
    return Main.serialize(Names);
  }
  /// Disambiguates serialize({"A", "B"}) (see DatabaseStore::serialize).
  std::string serialize(std::initializer_list<const char *> Names) {
    return Main.serialize(Names);
  }
  /// au_serialize over handles (zero-copy spans; see Session::serialize).
  NameId serialize(const std::vector<NameId> &Ids) {
    return Main.serialize(Ids);
  }

  /// au_NN, supervised form.
  void nn(const std::string &ModelName, const std::string &ExtName,
          const std::vector<WriteBackSpec> &Outputs) {
    Main.nn(ModelName, ExtName, Outputs);
  }
  /// au_NN, reinforcement form.
  void nn(const std::string &ModelName, const std::string &ExtName,
          float Reward, bool Terminal, const WriteBackSpec &Output) {
    Main.nn(ModelName, ExtName, Reward, Terminal, Output);
  }
  /// Handle-keyed au_NN forms.
  void nn(NameId ModelId, NameId ExtId,
          const std::vector<WriteBackHandle> &Outputs) {
    Main.nn(ModelId, ExtId, Outputs);
  }
  void nn(NameId ModelId, NameId ExtId, float Reward, bool Terminal,
          const WriteBackHandle &Output) {
    Main.nn(ModelId, ExtId, Reward, Terminal, Output);
  }
  /// Batched TS-mode au_NN (see Session::nnBatch).
  void nnBatch(NameId ModelId, NameId ExtId, int Rows,
               const std::vector<WriteBackHandle> &Outputs) {
    Main.nnBatch(ModelId, ExtId, Rows, Outputs);
  }

  /// au_write_back: Rule WRITE-BACK copies pi[Name] into the program
  /// variable. In TR mode, supervised outputs flow the opposite way: the
  /// program's current values are recorded as the training label.
  void writeBack(const std::string &Name, size_t Size, float *Data) {
    Main.writeBack(Name, Size, Data);
  }
  void writeBack(const std::string &Name, size_t Size, double *Data) {
    Main.writeBack(Name, Size, Data);
  }
  /// RL write-back: \p NumActions documents the action count (the paper's
  /// "the value 5 means there are 5 possible actions"); the predicted
  /// action index is stored into *ActionKey.
  void writeBack(const std::string &Name, int NumActions, int *ActionKey) {
    Main.writeBack(Name, NumActions, ActionKey);
  }
  /// Handle-keyed write-backs.
  void writeBack(NameId Id, size_t Size, float *Data) {
    Main.writeBack(Id, Size, Data);
  }
  void writeBack(NameId Id, size_t Size, double *Data) {
    Main.writeBack(Id, Size, Data);
  }
  void writeBack(NameId Id, int NumActions, int *ActionKey) {
    Main.writeBack(Id, NumActions, ActionKey);
  }

  //===--------------------------------------------------------------------===//
  // Parallel actor contexts (DESIGN.md §8) — Sessions over the same Engine
  //===--------------------------------------------------------------------===//
  //
  // K concurrent rollouts share one model store theta but need K isolated
  // database stores pi — actor k's extracts must never interleave with
  // actor j's. Each actor context is simply another Session bound to this
  // facade's Engine; the actor-keyed overloads forward to it (distinct
  // actors may run on distinct threads), and nnRlActors fuses the K au_NN
  // calls of one tick into a single Engine::nnRlSessions step.

  /// Creates actor contexts 0..K-1 (grow-only; existing contexts and their
  /// contents are kept). Each new Session mirrors the engine's master name
  /// table at creation, so main-store handles index actor stores directly.
  void setActorContexts(int K) {
    assert(K > 0 && "need at least one actor context");
    while (numActorContexts() < K)
      Actors.push_back(std::make_unique<ActorSlot>(Eng, Main.mode()));
  }

  int numActorContexts() const { return static_cast<int>(Actors.size()); }

  /// Actor \p Actor's database store (tests/diagnostics).
  DatabaseStore &actorDb(int Actor) { return actor(Actor).db(); }

  /// au_extract into actor \p Actor's store. Safe to call for distinct
  /// actors from distinct threads; stats accumulate per actor session and
  /// fold into the main stats at mergeActorStats().
  void extract(int Actor, NameId Id, float Value) {
    actor(Actor).extract(Id, Value);
  }
  void extract(int Actor, NameId Id, size_t Size, const float *Data) {
    actor(Actor).extract(Id, Size, Data);
  }

  /// au_serialize on actor \p Actor's store. All actors issue the same
  /// serialize sequence, so the combined handles stay in lockstep across
  /// actor stores.
  NameId serialize(int Actor, const std::vector<NameId> &Ids) {
    return actor(Actor).serialize(Ids);
  }

  /// RL action write-back from actor \p Actor's store.
  void writeBack(int Actor, NameId Id, int NumActions, int *ActionKey) {
    actor(Actor).writeBack(Id, NumActions, ActionKey);
  }

  /// Fused RL au_NN for K actors: a thin wrapper over
  /// Engine::nnRlSessions with this runtime's actor sessions and mode.
  /// Counts as K au_NN calls, one per actor session.
  void nnRlActors(NameId ModelId, const NameId *ExtIds, const float *Rewards,
                  const uint8_t *Terminals, int K,
                  const WriteBackHandle &Output) {
    assert(K > 0 && K <= numActorContexts() &&
           "nnRlActors needs a context per actor");
    ActorPtrs.resize(static_cast<size_t>(K));
    for (int A = 0; A != K; ++A)
      ActorPtrs[static_cast<size_t>(A)] = &Actors[static_cast<size_t>(A)]->S;
    Eng.nnRlSessions(ModelId, ActorPtrs.data(), ExtIds, Rewards, Terminals, K,
                     Output, /*Learning=*/Main.mode() == Mode::TR);
  }

  /// Folds the per-actor primitive counters accumulated since the previous
  /// merge into stats(), in actor order (call after parallel work has
  /// quiesced, before reading the stats). Idempotent: each actor keeps a
  /// watermark of what was already merged, so calling this twice — or
  /// interleaving merges with more actor work — never double-counts.
  void mergeActorStats() {
    for (auto &A : Actors) {
      const RuntimeStats &S = A->S.stats();
      RuntimeStats D;
      D.NumExtract = S.NumExtract - A->Merged.NumExtract;
      D.FloatsExtracted = S.FloatsExtracted - A->Merged.FloatsExtracted;
      D.NumSerialize = S.NumSerialize - A->Merged.NumSerialize;
      D.NumNn = S.NumNn - A->Merged.NumNn;
      D.NumWriteBack = S.NumWriteBack - A->Merged.NumWriteBack;
      Main.foldStats(D);
      A->Merged = S;
    }
  }

  /// au_checkpoint: Rule CHECKPOINT snapshots registered program state and
  /// pi; model state theta is deliberately excluded.
  void checkpoint() { Main.checkpoint(); }

  /// au_restore: Rule RESTORE rolls program state and pi back to the last
  /// checkpoint; models keep their accumulated learning.
  void restore() { Main.restore(); }

  //===--------------------------------------------------------------------===//
  // Runtime support
  //===--------------------------------------------------------------------===//

  DatabaseStore &db() { return Main.db(); }
  CheckpointManager &checkpoints() { return Main.checkpoints(); }
  const RuntimeStats &stats() const { return Main.stats(); }

  /// Looks up a configured model; null when absent.
  Model *getModel(const std::string &Name) { return Main.getModel(Name); }
  Model *getModel(NameId Id) { return Main.getModel(Id); }

  /// Offline supervised training over the samples collected in TR mode.
  /// Returns the final epoch's mean loss.
  double trainSupervised(const std::string &ModelName, int Epochs,
                         int BatchSize) {
    return Main.trainSupervised(ModelName, Epochs, BatchSize);
  }

  /// Persists one model / all models to ModelDir.
  bool saveModel(const std::string &ModelName) {
    return Main.saveModel(ModelName);
  }
  bool saveAllModels() { return Main.saveAllModels(); }

  /// The file path a model is saved to / loaded from.
  std::string modelPath(const std::string &ModelName) const {
    return Main.modelPath(ModelName);
  }

private:
  /// One actor context: its Session plus the stats watermark already folded
  /// into the main session (mergeActorStats idempotence).
  struct ActorSlot {
    Session S;
    RuntimeStats Merged;
    ActorSlot(Engine &E, Mode M) : S(E, M) {}
  };

  Session &actor(int Actor) {
    assert(Actor >= 0 && Actor < numActorContexts() &&
           "actor context out of range");
    return Actors[static_cast<size_t>(Actor)]->S;
  }

  Engine Eng;   ///< Must precede Main (Session binds to it).
  Session Main;
  std::vector<std::unique_ptr<ActorSlot>> Actors;
  std::vector<Session *> ActorPtrs; ///< Reused nnRlActors argument staging.
};

} // namespace au

#endif // AU_CORE_RUNTIME_H
