//===- core/Runtime.h - The Autonomizer runtime and primitives -*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Autonomizer runtime: the seven primitives of Fig. 1 realized over the
/// database store pi, the model store theta and the checkpoint manager,
/// following the operational semantics of Fig. 8.
///
/// A program is autonomized by adding a few calls:
///
/// \code
///   au::Runtime RT(au::Mode::TR);
///   RT.config({.Name = "Mario", .Type = au::ModelType::DNN,
///              .Algo = au::Algorithm::QLearn, .HiddenLayers = {256, 64}});
///   ...
///   RT.checkpoint();
///   while (Running) {
///     RT.extract("PX", Player.X);
///     RT.extract("PY", Player.Y);
///     RT.nn("Mario", RT.serialize({"PX", "PY"}), Reward, Terminated,
///           {"output", /*NumActions=*/5});
///     RT.writeBack("output", 5, &ActionKey);
///     act(ActionKey);
///     if (Terminated)
///       RT.restore();
///   }
/// \endcode
///
/// In TR (training) mode the runtime piggybacks learning on the execution:
/// supervised models record the program's own (human/autotuner-chosen)
/// target values at au_write_back as labels and train offline via
/// trainSupervised(); Q-learning models train online inside au_NN. In TS
/// (deployment) mode au_config loads saved models and au_write_back
/// overwrites the target variables with predictions.
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_RUNTIME_H
#define AU_CORE_RUNTIME_H

#include "core/Checkpoint.h"
#include "core/Config.h"
#include "core/DatabaseStore.h"
#include "core/Model.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace au {

/// Primitive-level counters (used by the overhead microbenchmarks and by
/// the Table 2 trace-size accounting).
struct RuntimeStats {
  size_t NumConfig = 0;
  size_t NumExtract = 0;
  size_t FloatsExtracted = 0;
  size_t NumSerialize = 0;
  size_t NumNn = 0;
  size_t NumWriteBack = 0;
  size_t NumCheckpoint = 0;
  size_t NumRestore = 0;

  /// Trace footprint in bytes (extracted floats), Table 2's "Trace Size".
  size_t traceBytes() const { return FloatsExtracted * sizeof(float); }
};

/// The Autonomizer runtime. One instance supports multiple model instances
/// in one execution, as the paper requires.
class Runtime {
public:
  /// \p ModelDir is where TS-mode au_config looks for saved models and
  /// where saveModel() writes them ("" = current directory).
  explicit Runtime(Mode M, std::string ModelDir = "");

  Mode mode() const { return ExecMode; }

  /// Switches mode in place (e.g. evaluate a freshly trained in-memory
  /// model without a save/load round trip). The semantics fixes the mode
  /// per execution; this is a harness convenience.
  void switchMode(Mode M) { ExecMode = M; }

  //===--------------------------------------------------------------------===//
  // Primitives
  //===--------------------------------------------------------------------===//

  /// au_config: Rule CONFIG-TRAIN creates the model if absent; Rule
  /// CONFIG-TEST loads it from ModelDir instead. Returns the model.
  Model *config(const ModelConfig &C);

  /// au_extract: Rule EXTRACT appends Size values to pi[Name].
  void extract(const std::string &Name, size_t Size, const float *Data);
  void extract(const std::string &Name, size_t Size, const double *Data);
  void extract(const std::string &Name, float Value);
  void extract(const std::string &Name, double Value) {
    extract(Name, static_cast<float>(Value));
  }
  void extract(const std::string &Name, int Value) {
    extract(Name, static_cast<float>(Value));
  }

  /// au_serialize: Rule SERIALIZE concatenates lists (and names); returns
  /// the combined name to pass to nn().
  std::string serialize(const std::vector<std::string> &Names);

  /// au_NN, supervised form: consumes pi[ExtName] as the feature vector and
  /// declares the outputs this model predicts. TR records a pending sample
  /// completed by the write-backs; TS writes predictions into pi.
  void nn(const std::string &ModelName, const std::string &ExtName,
          const std::vector<WriteBackSpec> &Outputs);

  /// au_NN, reinforcement form (the paper's au_NN(model, ext, reward, term,
  /// wbName)): consumes pi[ExtName] as the state, feeds (reward, terminal)
  /// to the learner (TR trains online per Rule TRAIN; TS only predicts per
  /// Rule TEST) and stores the selected action in pi[Output.Name].
  void nn(const std::string &ModelName, const std::string &ExtName,
          float Reward, bool Terminal, const WriteBackSpec &Output);

  /// au_write_back: Rule WRITE-BACK copies pi[Name] into the program
  /// variable. In TR mode, supervised outputs flow the opposite way: the
  /// program's current values are recorded as the training label.
  void writeBack(const std::string &Name, size_t Size, float *Data);
  void writeBack(const std::string &Name, size_t Size, double *Data);

  /// RL write-back: \p NumActions documents the action count (the paper's
  /// "the value 5 means there are 5 possible actions"); the predicted
  /// action index is stored into *ActionKey.
  void writeBack(const std::string &Name, int NumActions, int *ActionKey);

  /// au_checkpoint: Rule CHECKPOINT snapshots registered program state and
  /// pi; model state theta is deliberately excluded.
  void checkpoint();

  /// au_restore: Rule RESTORE rolls program state and pi back to the last
  /// checkpoint; models keep their accumulated learning.
  void restore();

  //===--------------------------------------------------------------------===//
  // Runtime support
  //===--------------------------------------------------------------------===//

  DatabaseStore &db() { return Db; }
  CheckpointManager &checkpoints() { return Ckpt; }
  const RuntimeStats &stats() const { return Stats; }

  /// Looks up a configured model; null when absent.
  Model *getModel(const std::string &Name);

  /// Offline supervised training over the samples collected in TR mode.
  /// Returns the final epoch's mean loss.
  double trainSupervised(const std::string &ModelName, int Epochs,
                         int BatchSize);

  /// Persists one model / all models to ModelDir.
  bool saveModel(const std::string &ModelName);
  bool saveAllModels();

  /// The file path a model is saved to / loaded from.
  std::string modelPath(const std::string &ModelName) const;

private:
  /// An SL au_NN whose labels have not all arrived yet (TR mode).
  struct PendingSample {
    std::string ModelName;
    std::vector<float> X;
    std::vector<WriteBackSpec> Outputs;
    std::map<std::string, std::vector<float>> Labels;
  };

  void completePendingIfReady(PendingSample &P);

  Mode ExecMode;
  std::string ModelDir;
  DatabaseStore Db;
  CheckpointManager Ckpt;
  std::map<std::string, std::unique_ptr<Model>> Models; // theta
  std::map<std::string, std::string> WbOwner; // wbName -> model name
  std::vector<PendingSample> Pending;
  RuntimeStats Stats;
};

} // namespace au

#endif // AU_CORE_RUNTIME_H
