//===- core/Engine.h - Process-wide model plane (theta) --------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide half of the Engine/Session split (DESIGN.md §10): the
/// shared model store theta keyed by NameId, the master name table every
/// session's store mirrors, model persistence, and the cross-session
/// inference batchers. One Engine serves many concurrent Sessions — the
/// ROADMAP's multi-tenant serving plane.
///
/// Concurrency contract:
///  - intern()/nameOf()/numNames() and config()/getModel() are safe from
///    any thread (mutex-guarded; the name table's deque storage keeps
///    returned string references stable forever).
///  - Training mutates the *live* model and must stay on one thread per
///    model (the semantics' single TR execution). publishModel() snapshots
///    the live parameters into an immutable ParamSnapshot and installs it
///    with a release-store of the version counter; any number of TS-mode
///    readers then refresh InferenceReplicas from the snapshot with an
///    acquire-load and serve inference without ever touching the live
///    model. Lock order: BatchM -> ModelsM -> NamesM (and entry SnapM
///    innermost); no path takes them in any other order.
///  - nnBatchSessions()/nnRlSessions() fuse K sessions' au_NN calls into
///    one forwardBatch under BatchM; the per-session gathers and scatters
///    touch disjoint stores and parallelize on the global ThreadPool.
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_ENGINE_H
#define AU_CORE_ENGINE_H

#include "core/Config.h"
#include "core/DatabaseStore.h"
#include "core/Model.h"
#include "core/Session.h"

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace au {

class Engine;

/// One entry of the engine's model store: the live model plus the published
/// parameter snapshot concurrent readers serve from. Internal to Engine and
/// InferenceReplica; entries are created by config() and never destroyed
/// before the Engine, so raw pointers to them are stable.
struct EngineModelEntry {
  std::unique_ptr<Model> M;
  /// Publication counter: 0 = nothing published yet. Written with
  /// memory_order_release after the snapshot is installed; readers
  /// acquire-load it to decide whether to refresh.
  std::atomic<uint64_t> Version{0};
  std::shared_ptr<const ParamSnapshot> Snap;
  std::mutex SnapM; ///< Guards Snap (the pointer, not the snapshot).
};

/// A reader's private clone of a published model version: an
/// inference-only SupervisedTrainer rebuilt from the latest ParamSnapshot.
/// refresh() is cheap when the version is unchanged (one acquire-load);
/// on a version change it installs the new parameters into the clone.
/// Prediction runs the exact predictRowsInto code path direct serving
/// uses, so replica and live predictions are bitwise identical for the
/// same parameters.
class InferenceReplica {
public:
  /// Binds to \p ModelId on first call, then brings the clone up to the
  /// engine's latest published snapshot. Returns false while the model is
  /// unknown, is not supervised, or has no published snapshot yet (the
  /// caller falls back to the live model).
  bool refresh(Engine &Eng, NameId ModelId);

  /// The snapshot version currently installed (0 = none).
  uint64_t version() const { return SeenVersion; }

  void predictRows(const float *Xs, int Rows, std::vector<float> &Out) {
    Trainer->predictRowsInto(Xs, Rows, Out);
  }

private:
  EngineModelEntry *Entry = nullptr;
  uint64_t SeenVersion = 0;
  std::unique_ptr<nn::SupervisedTrainer> Trainer;
};

/// The process-wide model plane. Owns theta and the master name table;
/// Sessions bind to it and mirror its names.
class Engine {
public:
  /// \p ModelDir is where TS-mode au_config looks for saved models and
  /// where saveModel() writes them ("" = current directory).
  explicit Engine(std::string ModelDir = "");
  ~Engine();

  Engine(const Engine &) = delete;
  Engine &operator=(const Engine &) = delete;

  //===--------------------------------------------------------------------===//
  // Master name table
  //===--------------------------------------------------------------------===//

  /// Interns \p Name into the master table (idempotent, thread-safe) and
  /// returns the engine-wide handle. Sessions replay new names into their
  /// stores, so the handle indexes every session store of this engine.
  NameId intern(std::string_view Name);

  size_t numNames() const;

  /// The string a handle was interned from (reference stable forever).
  const std::string &nameOf(NameId Id) const;

  //===--------------------------------------------------------------------===//
  // Model store theta
  //===--------------------------------------------------------------------===//

  /// au_config against the shared store: Rule CONFIG-TRAIN creates the
  /// model if absent; Rule CONFIG-TEST (\p M == TS) loads it from ModelDir
  /// and publishes its parameters so shared-inference readers can serve it
  /// immediately. Idempotent per name.
  Model *config(const ModelConfig &C, Mode M);

  Model *getModel(const std::string &Name);
  Model *getModel(NameId Id);

  /// Offline supervised training of the live model, then a publishModel()
  /// so concurrent readers pick up the new parameters. Single trainer per
  /// model at a time. Returns the final epoch's mean loss.
  double trainSupervised(const std::string &ModelName, int Epochs,
                         int BatchSize);

  bool saveModel(const std::string &ModelName);
  bool saveAllModels();
  std::string modelPath(const std::string &ModelName) const;

  //===--------------------------------------------------------------------===//
  // Parameter-snapshot publication (DESIGN.md §10)
  //===--------------------------------------------------------------------===//

  /// Captures the live model's parameters into a fresh immutable snapshot
  /// and publishes it (release-store of the bumped version counter).
  /// Returns the new version, or 0 when the model has nothing to publish
  /// (unknown, unbuilt, or an RL model — those serve through the live
  /// learner). Call from the thread that trains the model.
  uint64_t publishModel(const std::string &ModelName);
  uint64_t publishModel(NameId Id);

  /// Latest published version (acquire-load; 0 = none).
  uint64_t modelVersion(NameId Id);

  /// The latest published snapshot (null when none).
  std::shared_ptr<const ParamSnapshot> modelSnapshot(NameId Id);

  //===--------------------------------------------------------------------===//
  // Cross-session inference batchers
  //===--------------------------------------------------------------------===//

  /// Fused supervised au_NN for \p K sessions: gathers session k's
  /// serialized features pi_k[ExtIds[k]] into row k of one K x D staging
  /// block (parallel, disjoint stores), predicts all K rows with ONE
  /// forwardBatch call — through a serving replica of the latest published
  /// snapshot when one exists, else the live model — and scatters each
  /// declared output into each session's store (parallel). Counts one
  /// au_NN per session; deployment-mode only. This is the multi-tenant
  /// serving hot path: K per-call predictions collapse into one batched
  /// network pass.
  void nnBatchSessions(NameId ModelId, Session *const *Sessions,
                       const NameId *ExtIds, int K,
                       const std::vector<WriteBackHandle> &Outputs);

  /// Fused RL au_NN for \p K sessions (the actor fleet of DESIGN.md §8,
  /// now a thin layer over the session plane): gather K states, one
  /// batched model step (observe + train-when-due + select), scatter K
  /// actions. \p Learning selects the TR/TS regime explicitly since the
  /// sessions may be in mixed modes.
  void nnRlSessions(NameId ModelId, Session *const *Sessions,
                    const NameId *ExtIds, const float *Rewards,
                    const uint8_t *Terminals, int K,
                    const WriteBackHandle &Output, bool Learning);

private:
  friend class Session;
  friend class InferenceReplica;

  /// Replays master-table names [From, size) into \p Db in order; returns
  /// the new high-water mark. Throws StoreDivergenceError when the replay
  /// cannot keep positions aligned (someone interned into \p Db directly).
  size_t appendNamesTo(DatabaseStore &Db, size_t From) const;

  EngineModelEntry *entryById(NameId Id);
  EngineModelEntry *entryByName(const std::string &Name);
  uint64_t publish(EngineModelEntry *E);

  std::string ModelDir;

  mutable std::mutex NamesM;
  NameTable MasterNames;

  mutable std::mutex ModelsM;
  std::map<std::string, std::unique_ptr<EngineModelEntry>> Models; // theta
  std::vector<EngineModelEntry *> EntryById; ///< NameId -> entry.

  /// Serializes the cross-session batchers (one batcher runs at a time;
  /// the parallelism is inside: gather/scatter shards and the batched
  /// forward) and guards the staging below.
  std::mutex BatchM;
  std::vector<float> NnStaging;
  std::vector<float> NnOut;
  std::vector<int> ActionsScratch;
  /// Engine-level serving replicas for nnBatchSessions, one per model.
  std::unordered_map<NameId, std::unique_ptr<InferenceReplica>> ServeReps;
};

} // namespace au

#endif // AU_CORE_ENGINE_H
