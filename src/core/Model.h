//===- core/Model.h - Model store entries (theta) --------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The model abstraction behind the model store theta. A model is created by
/// au_config and built lazily once the runtime has seen the data that fixes
/// the input and output layer sizes (the paper: "the size of the input and
/// output layers is automatically computed based on the input fed to the
/// network and the output to be predicted").
///
/// Two concrete kinds realize the two algorithms: SlModel (AdamOpt
/// regression over collected (feature, target) samples, trained offline
/// after execution) and RlModel (online Q-learning driven by the au_NN
/// reward/terminal arguments). Dispatch uses an LLVM-style kind tag.
///
//===----------------------------------------------------------------------===//

#ifndef AU_CORE_MODEL_H
#define AU_CORE_MODEL_H

#include "core/Config.h"
#include "nn/QLearner.h"
#include "nn/Supervised.h"

#include <memory>
#include <string>
#include <vector>

namespace au {

/// One declared model output: for SL the number of predicted floats under
/// this name; for RL the number of discrete actions (the paper's
/// au_write_back("output", 5, actionKey)).
struct WriteBackSpec {
  std::string Name;
  int Size = 1;
};

namespace nn {
class Network;
}

/// An immutable copy of a model's trainable parameters and normalization
/// statistics, published by the Engine so concurrent TS-mode readers serve
/// inference from a consistent version while the live model keeps training
/// (DESIGN.md §10). Snapshots are never mutated after publication; readers
/// hold them via shared_ptr<const ParamSnapshot>.
struct ParamSnapshot {
  uint64_t Version = 0; ///< Monotone publication counter (1 = first).
  int InSize = 0;
  int OutSize = 0;
  /// One vector per ParamView of the source network, in params() order.
  std::vector<std::vector<float>> Params;
  std::vector<float> XMean, XStd, YMean, YStd;

  /// Copies the captured parameters into \p Net (which must have the same
  /// architecture) and invalidates its packed-weight caches. Returns false
  /// on a shape mismatch.
  bool installInto(nn::Network &Net) const;
};

/// Base class for model-store entries.
class Model {
public:
  enum class KindTy { Supervised, Reinforcement };

  virtual ~Model();

  KindTy kind() const { return Kind; }
  const ModelConfig &config() const { return Cfg; }
  bool isBuilt() const { return Built; }
  int inputSize() const { return InSize; }

  /// Declared outputs (fixed at build time).
  const std::vector<WriteBackSpec> &outputs() const { return Outs; }

  /// Serialized parameter footprint in bytes (Table 2 "Model Size").
  virtual size_t modelSizeBytes() = 0;

  /// Total trainable parameters.
  virtual size_t numParams() = 0;

  /// Persists the model (architecture + parameters + statistics) to
  /// \p Path; returns false on I/O failure.
  virtual bool save(const std::string &Path) = 0;

  /// Loads a model persisted by save(); returns false on failure.
  virtual bool load(const std::string &Path) = 0;

  /// Captures the current parameters into \p S for snapshot publication.
  /// Returns false when the model kind does not support snapshot serving
  /// (RL models serve through the live learner) or the model is unbuilt.
  virtual bool captureParams(ParamSnapshot &S) {
    (void)S;
    return false;
  }

protected:
  Model(KindTy K, ModelConfig C) : Kind(K), Cfg(std::move(C)) {}

  /// Builds the underlying network for \p InputSize, per the configured
  /// type (DNN or DeepMind-style CNN over the configured frame geometry).
  nn::Network makeNetwork(int InputSize, int OutSize, Rng &Rand) const;

  KindTy Kind;
  ModelConfig Cfg;
  bool Built = false;
  int InSize = 0;
  std::vector<WriteBackSpec> Outs;
};

/// Supervised (AdamOpt) model: collects samples during TR runs, trains
/// offline, predicts during TS runs.
class SlModel : public Model {
public:
  explicit SlModel(ModelConfig C);

  static bool classof(const Model *M) {
    return M->kind() == KindTy::Supervised;
  }

  /// Records one complete training example; builds the network on first
  /// use. \p Y is the concatenation of all declared outputs in order.
  void addSample(const std::vector<float> &X, const std::vector<float> &Y,
                 const std::vector<WriteBackSpec> &Outputs);

  /// Offline training (the SL TR regime). Returns final mean loss.
  double train(int Epochs, int BatchSize);

  /// Predicts the concatenated outputs for features \p X. Requires a built
  /// (trained or loaded) model.
  std::vector<float> predict(const std::vector<float> &X);

  /// Batched TS inference over \p Rows feature vectors stored back to back
  /// in \p Xs (Rows x inputSize, row-major); \p Out receives Rows x
  /// totalOutputSize predictions. Routes through the batched forwardBatch
  /// engine with reusable staging, so the primitive hot path makes no
  /// per-call allocations. Rows == 1 is the single-call au_NN fast path.
  void predictRows(const float *Xs, int Rows, std::vector<float> &Out);

  size_t numSamples() const;
  size_t modelSizeBytes() override;
  size_t numParams() override;
  bool save(const std::string &Path) override;
  bool load(const std::string &Path) override;

  /// Copies the trained parameters and normalization into \p S. Must be
  /// called from the thread that owns the live model (the trainer).
  bool captureParams(ParamSnapshot &S) override;

  /// Builds an independent inference-only trainer from a published
  /// snapshot: same architecture, snapshot parameters, snapshot
  /// normalization. Touches none of the live training state, so replicas
  /// can be created while the live model trains. Returns null on an
  /// architecture/snapshot mismatch.
  std::unique_ptr<nn::SupervisedTrainer>
  makeReplica(const ParamSnapshot &S) const;

private:
  int totalOutputSize() const;

  std::unique_ptr<nn::SupervisedTrainer> Trainer;
  Rng Rand;
};

/// Reinforcement (Q-learning) model: online training interleaved with
/// software execution.
class RlModel : public Model {
public:
  explicit RlModel(ModelConfig C);

  static bool classof(const Model *M) {
    return M->kind() == KindTy::Reinforcement;
  }

  /// One au_NN step: feeds the completed transition (previous state/action,
  /// \p Reward, \p Terminal) to the learner when training, then selects the
  /// next action for \p State. Builds the network on first use from
  /// \p State's size and \p Output's action count. Terminal steps clear the
  /// episode bookkeeping so a following au_restore starts cleanly.
  int step(const std::vector<float> &State, float Reward, bool Terminal,
           const WriteBackSpec &Output, bool Learning);

  /// Hot-path step for an already built model: identical to step() but
  /// takes only the action count, so the handle-keyed au_NN never
  /// constructs a string spec per iteration.
  int stepBuilt(const std::vector<float> &State, float Reward, bool Terminal,
                int NumActions, bool Learning);

  /// Enters K-actor mode: gives each actor its own transition chain and
  /// shards the learner's replay per actor (DESIGN.md §8). May be called
  /// before the model is built; the learner is configured at build time.
  void configureActors(int NumActors);

  int numActors() const { return NumActorsCfg; }

  /// One fused au_NN step for \p K concurrent actors. \p States holds the
  /// K extracted states back to back (K x D row-major); \p Rewards and
  /// \p Terminals are per-actor. Per-actor completed transitions are
  /// observed in actor order, one finishTick advances the global training
  /// schedule, and all K action selections run as a single batched forward;
  /// \p ActionsOut receives the K chosen actions. Builds the network on
  /// first use from \p D and \p Output. When \p Learning, K must equal the
  /// configured actor count; deployment-mode calls (evaluation) may use any
  /// K and never disturb the training chains.
  void stepActors(const float *States, int K, int D, const float *Rewards,
                  const uint8_t *Terminals, const WriteBackSpec &Output,
                  bool Learning, int *ActionsOut);

  /// Q-values for diagnostics.
  std::vector<float> qValues(const std::vector<float> &State);

  nn::QLearner *learner() { return Learner.get(); }

  /// Overrides the default Q hyperparameters; must precede the first step.
  void setQConfig(const nn::QConfig &C);

  size_t modelSizeBytes() override;
  size_t numParams() override;
  bool save(const std::string &Path) override;
  bool load(const std::string &Path) override;

private:
  void build(int InputSize, const WriteBackSpec &Output);

  std::unique_ptr<nn::QLearner> Learner;
  nn::QConfig QCfg;
  std::vector<float> PrevState;
  int PrevAction = -1;
  bool HavePrev = false;
  // K-actor mode: one transition chain per actor (the serial chain above is
  // untouched, so serial and batched stepping can coexist on one model).
  int NumActorsCfg = 0;
  std::vector<std::vector<float>> ActorPrevStates;
  std::vector<int> ActorPrevActions;
  std::vector<uint8_t> ActorHavePrev;
};

} // namespace au

#endif // AU_CORE_MODEL_H
