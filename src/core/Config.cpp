//===- core/Config.cpp - Autonomizer model configuration -----------------===//

#include "core/Config.h"

#include <cassert>

using namespace au;

const char *au::modelTypeName(ModelType T) {
  switch (T) {
  case ModelType::DNN:
    return "DNN";
  case ModelType::CNN:
    return "CNN";
  }
  assert(false && "unknown model type");
  return "?";
}

const char *au::algorithmName(Algorithm A) {
  switch (A) {
  case Algorithm::QLearn:
    return "QLearn";
  case Algorithm::AdamOpt:
    return "AdamOpt";
  }
  assert(false && "unknown algorithm");
  return "?";
}

const char *au::modeName(Mode M) {
  switch (M) {
  case Mode::TR:
    return "TR";
  case Mode::TS:
    return "TS";
  }
  assert(false && "unknown mode");
  return "?";
}
