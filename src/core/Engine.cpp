//===- core/Engine.cpp - Process-wide model plane (theta) -----------------===//

#include "core/Engine.h"

#include "support/ThreadPool.h"

#include <cassert>

using namespace au;

Engine::Engine(std::string Dir) : ModelDir(std::move(Dir)) {}

Engine::~Engine() = default;

//===----------------------------------------------------------------------===//
// Master name table
//===----------------------------------------------------------------------===//

NameId Engine::intern(std::string_view Name) {
  std::lock_guard<std::mutex> L(NamesM);
  return MasterNames.intern(Name);
}

size_t Engine::numNames() const {
  std::lock_guard<std::mutex> L(NamesM);
  return MasterNames.size();
}

const std::string &Engine::nameOf(NameId Id) const {
  // The deque-backed table never moves its strings, so the reference stays
  // valid after the lock drops.
  std::lock_guard<std::mutex> L(NamesM);
  return MasterNames.name(Id);
}

size_t Engine::appendNamesTo(DatabaseStore &Db, size_t From) const {
  std::lock_guard<std::mutex> L(NamesM);
  size_t N = MasterNames.size();
  for (size_t I = From; I != N; ++I) {
    NameId Id = Db.intern(MasterNames.name(static_cast<NameId>(I)));
    // Belt and braces under the size check the session already did: a
    // replayed name must land at its master position.
    if (Id != static_cast<NameId>(I))
      throw StoreDivergenceError(
          "session store diverged from the engine name table: replayed "
          "name '" + MasterNames.name(static_cast<NameId>(I)) +
          "' did not land at its master position");
  }
  return N;
}

//===----------------------------------------------------------------------===//
// Model store theta
//===----------------------------------------------------------------------===//

Model *Engine::config(const ModelConfig &C, Mode M) {
  std::lock_guard<std::mutex> L(ModelsM);
  // Rules CONFIG-TRAIN / CONFIG-TEST: only act when theta(name) is bottom.
  auto It = Models.find(C.Name);
  if (It != Models.end())
    return It->second->M.get();

  auto E = std::make_unique<EngineModelEntry>();
  if (C.Algo == Algorithm::QLearn)
    E->M = std::make_unique<RlModel>(C);
  else
    E->M = std::make_unique<SlModel>(C);

  bool Loaded = false;
  if (M == Mode::TS) {
    // CONFIG-TEST: load the trained model saved by a prior TR execution.
    Loaded = E->M->load(modelPath(C.Name));
    assert(Loaded && "TS-mode au_config could not load the trained model");
  }

  // Register the handle route: model names live in the same table as
  // database names, so entryById / Session::nn(NameId, ...) index theta
  // directly. ModelsM -> NamesM is the documented lock order.
  NameId Id = intern(C.Name);
  if (Id >= EntryById.size())
    EntryById.resize(Id + 1, nullptr);
  EngineModelEntry *EP = E.get();
  EntryById[Id] = EP;
  Models.emplace(C.Name, std::move(E));

  if (Loaded)
    publish(EP); // Readers can serve the loaded parameters immediately.
  return EP->M.get();
}

Model *Engine::getModel(const std::string &Name) {
  std::lock_guard<std::mutex> L(ModelsM);
  auto It = Models.find(Name);
  return It == Models.end() ? nullptr : It->second->M.get();
}

Model *Engine::getModel(NameId Id) {
  std::lock_guard<std::mutex> L(ModelsM);
  return Id < EntryById.size() && EntryById[Id] ? EntryById[Id]->M.get()
                                                : nullptr;
}

double Engine::trainSupervised(const std::string &ModelName, int Epochs,
                               int BatchSize) {
  Model *M = getModel(ModelName);
  assert(M && SlModel::classof(M) && "trainSupervised on a non-SL model");
  double Loss = static_cast<SlModel *>(M)->train(Epochs, BatchSize);
  publishModel(ModelName);
  return Loss;
}

std::string Engine::modelPath(const std::string &ModelName) const {
  if (ModelDir.empty())
    return ModelName + ".aumodel";
  return ModelDir + "/" + ModelName + ".aumodel";
}

bool Engine::saveModel(const std::string &ModelName) {
  Model *M = getModel(ModelName);
  if (!M)
    return false;
  return M->save(modelPath(ModelName));
}

bool Engine::saveAllModels() {
  std::lock_guard<std::mutex> L(ModelsM);
  bool Ok = true;
  for (auto &[Name, E] : Models)
    Ok = E->M->save(modelPath(Name)) && Ok;
  return Ok;
}

//===----------------------------------------------------------------------===//
// Parameter-snapshot publication
//===----------------------------------------------------------------------===//

uint64_t Engine::publish(EngineModelEntry *E) {
  if (!E || !E->M)
    return 0;
  auto S = std::make_shared<ParamSnapshot>();
  if (!E->M->captureParams(*S))
    return 0;
  std::lock_guard<std::mutex> L(E->SnapM);
  uint64_t V = E->Version.load(std::memory_order_relaxed) + 1;
  S->Version = V;
  E->Snap = std::move(S);
  // Release: a reader that acquire-loads V sees the fully built snapshot.
  E->Version.store(V, std::memory_order_release);
  return V;
}

uint64_t Engine::publishModel(const std::string &ModelName) {
  return publish(entryByName(ModelName));
}

uint64_t Engine::publishModel(NameId Id) { return publish(entryById(Id)); }

uint64_t Engine::modelVersion(NameId Id) {
  EngineModelEntry *E = entryById(Id);
  return E ? E->Version.load(std::memory_order_acquire) : 0;
}

std::shared_ptr<const ParamSnapshot> Engine::modelSnapshot(NameId Id) {
  EngineModelEntry *E = entryById(Id);
  if (!E)
    return nullptr;
  std::lock_guard<std::mutex> L(E->SnapM);
  return E->Snap;
}

EngineModelEntry *Engine::entryById(NameId Id) {
  std::lock_guard<std::mutex> L(ModelsM);
  return Id < EntryById.size() ? EntryById[Id] : nullptr;
}

EngineModelEntry *Engine::entryByName(const std::string &Name) {
  std::lock_guard<std::mutex> L(ModelsM);
  auto It = Models.find(Name);
  return It == Models.end() ? nullptr : It->second.get();
}

//===----------------------------------------------------------------------===//
// InferenceReplica
//===----------------------------------------------------------------------===//

bool InferenceReplica::refresh(Engine &Eng, NameId ModelId) {
  if (!Entry) {
    Entry = Eng.entryById(ModelId);
    if (!Entry)
      return false;
  }
  // Steady state: one acquire-load, no locks.
  uint64_t V = Entry->Version.load(std::memory_order_acquire);
  if (V == 0)
    return false;
  if (V == SeenVersion && Trainer)
    return true;

  std::shared_ptr<const ParamSnapshot> S;
  {
    std::lock_guard<std::mutex> L(Entry->SnapM);
    S = Entry->Snap;
  }
  if (!S)
    return false;
  Model *M = Entry->M.get();
  if (!M || !SlModel::classof(M))
    return false;
  auto *Sl = static_cast<SlModel *>(M);

  // Same architecture across versions: install in place. Fall back to a
  // full rebuild on the first refresh or a shape change.
  if (Trainer && S->installInto(Trainer->network())) {
    Trainer->setNormalization(S->XMean, S->XStd, S->YMean, S->YStd);
  } else {
    Trainer = Sl->makeReplica(*S);
    if (!Trainer)
      return false;
  }
  SeenVersion = S->Version;
  return true;
}

//===----------------------------------------------------------------------===//
// Cross-session inference batchers
//===----------------------------------------------------------------------===//

void Engine::nnBatchSessions(NameId ModelId, Session *const *Sessions,
                             const NameId *ExtIds, int K,
                             const std::vector<WriteBackHandle> &Outputs) {
  assert(K > 0 && Sessions && ExtIds && "nnBatchSessions of no sessions");
  std::lock_guard<std::mutex> BL(BatchM);
  Model *M = getModel(ModelId);
  assert(M && "au_NN on an unconfigured model");
  auto *Sl = static_cast<SlModel *>(M);
  assert(SlModel::classof(M) && "supervised au_NN form on an RL model");
  assert(!Outputs.empty() && "au_NN must declare at least one output");

  // Gather session k's serialized features into row k of one K x D staging
  // block. Rows are disjoint and each chunk touches only its own session
  // store, so the gather parallelizes without changing any result.
  size_t D = Sessions[0]->Db.view(ExtIds[0]).size();
  assert(D > 0 && "au_NN with an empty feature list");
  NnStaging.resize(static_cast<size_t>(K) * D);
  ThreadPool::global().parallelFor(
      0, static_cast<size_t>(K), 1, [&](size_t B, size_t E) {
        for (size_t S = B; S != E; ++S) {
          SerializedView V = Sessions[S]->Db.view(ExtIds[S]);
          assert(V.size() == D && "session feature sizes diverged");
          V.copyTo(NnStaging.data() + S * D);
        }
      });

  // ONE forwardBatch for the whole tenant set — this is where K per-call
  // predictions collapse into a single batched network pass. Serve from a
  // replica of the latest published snapshot when one exists; fall back to
  // the live model otherwise (single-tenant semantics).
  std::unique_ptr<InferenceReplica> &Rep = ServeReps[ModelId];
  if (!Rep)
    Rep = std::make_unique<InferenceReplica>();
  if (Rep->refresh(*this, ModelId))
    Rep->predictRows(NnStaging.data(), K, NnOut);
  else
    Sl->predictRows(NnStaging.data(), K, NnOut);

  // Scatter each session's predictions into its own store and reset its
  // feature list (Rules TRAIN/TEST reset extName), again disjoint per
  // session. au_NN counts once per session, in the session's own stats.
  const size_t NY = NnOut.size() / static_cast<size_t>(K);
  ThreadPool::global().parallelFor(
      0, static_cast<size_t>(K), 1, [&](size_t B, size_t E) {
        for (size_t S = B; S != E; ++S) {
          Session &Sess = *Sessions[S];
          ++Sess.Stats.NumNn;
          size_t Offset = 0;
          for (const WriteBackHandle &O : Outputs) {
            Sess.setWbOwner(O.Name, ModelId);
            assert(Offset + O.Size <= NY && "declared outputs exceed model");
            Sess.Db.set(O.Name, NnOut.data() + S * NY + Offset, O.Size);
            Offset += O.Size;
          }
          Sess.Db.reset(ExtIds[S]);
        }
      });
}

void Engine::nnRlSessions(NameId ModelId, Session *const *Sessions,
                          const NameId *ExtIds, const float *Rewards,
                          const uint8_t *Terminals, int K,
                          const WriteBackHandle &Output, bool Learning) {
  assert(K > 0 && Sessions && ExtIds && "nnRlSessions of no sessions");
  std::lock_guard<std::mutex> BL(BatchM);
  Model *M = getModel(ModelId);
  assert(M && "au_NN on an unconfigured model");
  assert(RlModel::classof(M) && "RL au_NN form on a supervised model");
  auto *Rl = static_cast<RlModel *>(M);

  size_t D = Sessions[0]->Db.view(ExtIds[0]).size();
  assert(D > 0 && "au_NN with an empty state list");
  NnStaging.resize(static_cast<size_t>(K) * D);
  ThreadPool::global().parallelFor(
      0, static_cast<size_t>(K), 1, [&](size_t B, size_t E) {
        for (size_t S = B; S != E; ++S) {
          SerializedView V = Sessions[S]->Db.view(ExtIds[S]);
          assert(V.size() == D && "session state sizes diverged");
          V.copyTo(NnStaging.data() + S * D);
        }
      });

  // One fused model step for the whole fleet (observe, train when due,
  // batched action selection). The output's string spec is only needed on
  // the cold build path.
  ActionsScratch.resize(static_cast<size_t>(K));
  WriteBackSpec Spec{std::string(), Output.Size};
  if (!M->isBuilt())
    Spec.Name = nameOf(Output.Name);
  Rl->stepActors(NnStaging.data(), K, static_cast<int>(D), Rewards, Terminals,
                 Spec, Learning, ActionsScratch.data());

  ThreadPool::global().parallelFor(
      0, static_cast<size_t>(K), 1, [&](size_t B, size_t E) {
        for (size_t S = B; S != E; ++S) {
          Session &Sess = *Sessions[S];
          ++Sess.Stats.NumNn;
          Sess.setWbOwner(Output.Name, ModelId);
          float ActionF = static_cast<float>(ActionsScratch[S]);
          Sess.Db.set(Output.Name, &ActionF, 1);
          Sess.Db.reset(ExtIds[S]);
        }
      });
}
