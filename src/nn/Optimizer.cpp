//===- nn/Optimizer.cpp - Gradient-descent optimizers --------------------===//

#include "nn/Optimizer.h"

#include "nn/Gemm.h"
#include "nn/Network.h"

#include <cassert>
#include <cmath>

using namespace au;
using namespace au::nn;

Optimizer::~Optimizer() = default;

Sgd::Sgd(Network &Net, double LearningRate, double Momentum)
    : Net(&Net), Params(Net.params()), Lr(LearningRate), Mu(Momentum) {
  assert(Lr > 0 && "learning rate must be positive");
  Velocity.reserve(Params.size());
  for (const ParamView &P : Params)
    Velocity.emplace_back(P.Count, 0.0f);
}

void Sgd::step(double BatchScale) {
  for (size_t T = 0, E = Params.size(); T != E; ++T) {
    ParamView &P = Params[T];
    std::vector<float> &Vel = Velocity[T];
    for (size_t I = 0; I != P.Count; ++I) {
      float G = static_cast<float>(P.Grads[I] * BatchScale);
      Vel[I] = static_cast<float>(Mu * Vel[I] - Lr * G);
      P.Values[I] += Vel[I];
      P.Grads[I] = 0.0f;
    }
  }
  Net->bumpParamGeneration();
}

Adam::Adam(Network &Net, double LearningRate, double Beta1, double Beta2,
           double Epsilon)
    : Net(&Net), Params(Net.params()), Lr(LearningRate), B1(Beta1), B2(Beta2),
      Eps(Epsilon) {
  assert(Lr > 0 && "learning rate must be positive");
  M.reserve(Params.size());
  V.reserve(Params.size());
  for (const ParamView &P : Params) {
    M.emplace_back(P.Count, 0.0f);
    V.emplace_back(P.Count, 0.0f);
  }
}

void Adam::step(double BatchScale) {
  ++Step;
  double Bias1 = 1.0 - std::pow(B1, Step);
  double Bias2 = 1.0 - std::pow(B2, Step);
  if (simdKernelsActive()) {
    // Fused single-precision update: moments, bias correction, parameter
    // step, and gradient clear in one vectorized pass per tensor.
    for (size_t T = 0, E = Params.size(); T != E; ++T) {
      ParamView &P = Params[T];
      adamUpdateKernel(P.Values, P.Grads, M[T].data(), V[T].data(), P.Count,
                       static_cast<float>(Lr), static_cast<float>(B1),
                       static_cast<float>(B2), static_cast<float>(Eps),
                       static_cast<float>(1.0 / Bias1),
                       static_cast<float>(1.0 / Bias2),
                       static_cast<float>(BatchScale));
    }
    Net->bumpParamGeneration();
    return;
  }
  for (size_t T = 0, E = Params.size(); T != E; ++T) {
    ParamView &P = Params[T];
    std::vector<float> &Mt = M[T];
    std::vector<float> &Vt = V[T];
    for (size_t I = 0; I != P.Count; ++I) {
      double G = P.Grads[I] * BatchScale;
      Mt[I] = static_cast<float>(B1 * Mt[I] + (1.0 - B1) * G);
      Vt[I] = static_cast<float>(B2 * Vt[I] + (1.0 - B2) * G * G);
      double MHat = Mt[I] / Bias1;
      double VHat = Vt[I] / Bias2;
      P.Values[I] -= static_cast<float>(Lr * MHat / (std::sqrt(VHat) + Eps));
      P.Grads[I] = 0.0f;
    }
  }
  Net->bumpParamGeneration();
}
