//===- nn/Tensor.cpp - Dense float tensor --------------------------------===//

#include "nn/Tensor.h"

#include <algorithm>

using namespace au;
using namespace au::nn;

Tensor::Tensor(std::vector<int> Shape, float Fill) : Dims(std::move(Shape)) {
  size_t N = 1;
  for (int D : Dims) {
    assert(D > 0 && "tensor dimensions must be positive");
    N *= static_cast<size_t>(D);
  }
  Data.assign(Dims.empty() ? 0 : N, Fill);
}

Tensor Tensor::fromVector(const std::vector<float> &Values) {
  Tensor T(std::vector<int>{static_cast<int>(Values.size())});
  std::copy(Values.begin(), Values.end(), T.Data.begin());
  return T;
}

Tensor Tensor::adopt(std::vector<float> Buffer, std::vector<int> Shape) {
  Tensor T;
  T.Dims = std::move(Shape);
  size_t N = 1;
  for (int D : T.Dims) {
    assert(D > 0 && "tensor dimensions must be positive");
    N *= static_cast<size_t>(D);
  }
  assert(N == Buffer.size() && "adopted buffer size must match shape");
  T.Data = std::move(Buffer);
  return T;
}

Tensor Tensor::reshaped(std::vector<int> NewShape) const {
  Tensor T;
  T.Dims = std::move(NewShape);
  size_t N = 1;
  for (int D : T.Dims) {
    assert(D > 0 && "tensor dimensions must be positive");
    N *= static_cast<size_t>(D);
  }
  assert(N == Data.size() && "reshape must preserve element count");
  T.Data = Data;
  return T;
}

void Tensor::fill(float V) { std::fill(Data.begin(), Data.end(), V); }

void Tensor::add(const Tensor &Other) {
  assert(Data.size() == Other.Data.size() && "tensor add size mismatch");
  for (size_t I = 0, E = Data.size(); I != E; ++I)
    Data[I] += Other.Data[I];
}

void Tensor::scale(float S) {
  for (float &V : Data)
    V *= S;
}

size_t Tensor::argmax() const {
  assert(!Data.empty() && "argmax of empty tensor");
  return static_cast<size_t>(
      std::max_element(Data.begin(), Data.end()) - Data.begin());
}

float Tensor::maxValue() const {
  assert(!Data.empty() && "maxValue of empty tensor");
  return *std::max_element(Data.begin(), Data.end());
}
