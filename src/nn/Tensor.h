//===- nn/Tensor.h - Dense float tensor ------------------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal dense float tensor with a dynamic shape, the value type flowing
/// through the neural-network substrate that stands in for TensorFlow. Only
/// the operations the layers need are provided; everything is row-major and
/// eager. Rank-1 tensors model the paper's "list of values" model inputs,
/// rank-3 tensors (channels, height, width) model the raw-pixel inputs of
/// the Raw baselines.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_TENSOR_H
#define AU_NN_TENSOR_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace au {
namespace nn {

/// A row-major dense tensor of floats.
class Tensor {
public:
  Tensor() = default;

  /// Creates a tensor of the given \p Shape filled with \p Fill.
  explicit Tensor(std::vector<int> Shape, float Fill = 0.0f);

  /// Creates a rank-1 tensor from raw values.
  static Tensor fromVector(const std::vector<float> &Values);

  /// Wraps an existing buffer (element count must match the shape product)
  /// without initializing it — the workspace recycling path.
  static Tensor adopt(std::vector<float> Buffer, std::vector<int> Shape);

  const std::vector<int> &shape() const { return Dims; }
  size_t size() const { return Data.size(); }
  bool empty() const { return Data.empty(); }
  int rank() const { return static_cast<int>(Dims.size()); }

  /// Extent of dimension \p D.
  int dim(int D) const {
    assert(D >= 0 && D < rank() && "dimension index out of range");
    return Dims[D];
  }

  float *data() { return Data.data(); }
  const float *data() const { return Data.data(); }
  std::vector<float> &values() { return Data; }
  const std::vector<float> &values() const { return Data; }

  float &operator[](size_t I) {
    assert(I < Data.size() && "flat index out of range");
    return Data[I];
  }
  float operator[](size_t I) const {
    assert(I < Data.size() && "flat index out of range");
    return Data[I];
  }

  /// Rank-3 indexed access (channel, row, column).
  float &at3(int C, int Y, int X) {
    assert(rank() == 3 && "at3 requires a rank-3 tensor");
    return Data[(static_cast<size_t>(C) * Dims[1] + Y) * Dims[2] + X];
  }
  float at3(int C, int Y, int X) const {
    assert(rank() == 3 && "at3 requires a rank-3 tensor");
    return Data[(static_cast<size_t>(C) * Dims[1] + Y) * Dims[2] + X];
  }

  /// Reinterprets the data with a new shape of identical element count.
  Tensor reshaped(std::vector<int> NewShape) const;

  /// For a batched tensor whose leading dimension is the batch, the number
  /// of elements in one sample.
  size_t sampleSize() const {
    assert(rank() >= 1 && Dims[0] > 0 && "sampleSize of unbatched tensor");
    return Data.size() / static_cast<size_t>(Dims[0]);
  }

  /// Pointer to the start of batched sample \p B (leading dim = batch).
  float *sampleData(int B) {
    assert(rank() >= 1 && B >= 0 && B < Dims[0] && "sample index out of range");
    return Data.data() + static_cast<size_t>(B) * sampleSize();
  }
  const float *sampleData(int B) const {
    assert(rank() >= 1 && B >= 0 && B < Dims[0] && "sample index out of range");
    return Data.data() + static_cast<size_t>(B) * sampleSize();
  }

  /// The per-sample shape of a batched tensor (shape without dim 0).
  std::vector<int> sampleShape() const {
    assert(rank() >= 1 && "sampleShape of rank-0 tensor");
    return std::vector<int>(Dims.begin() + 1, Dims.end());
  }

  /// Sets every element to \p V.
  void fill(float V);

  /// Element-wise accumulate: this += Other (shapes must match).
  void add(const Tensor &Other);

  /// Scales every element by \p S.
  void scale(float S);

  /// Index of the maximum element (ties resolve to the lowest index).
  size_t argmax() const;

  /// Largest element value; tensor must be nonempty.
  float maxValue() const;

private:
  friend class Workspace; ///< Recycles Dims/Data buffers without copies.

  std::vector<int> Dims;
  std::vector<float> Data;
};

} // namespace nn
} // namespace au

#endif // AU_NN_TENSOR_H
