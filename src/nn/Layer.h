//===- nn/Layer.h - Neural network layer interface -------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layer abstraction for the NN substrate. Layers process one sample at a
/// time (the networks in the paper are tiny — two to six dense layers — so
/// single-sample processing with externally accumulated minibatch gradients
/// is both simple and fast enough). A layer owns its parameters and the
/// gradient accumulators that the optimizers consume.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_LAYER_H
#define AU_NN_LAYER_H

#include "nn/Tensor.h"

#include <string>
#include <vector>

namespace au {
class Rng;
namespace nn {

/// A view of one parameter tensor and its gradient accumulator, handed to
/// optimizers. Both spans have \p Count elements.
struct ParamView {
  float *Values;
  float *Grads;
  size_t Count;
};

/// Base class for all layers. Forward caches whatever backward needs, so a
/// layer instance processes one sample at a time (forward immediately
/// followed by the matching backward).
class Layer {
public:
  virtual ~Layer();

  /// Computes the layer output for \p In, caching activations for backward.
  virtual Tensor forward(const Tensor &In) = 0;

  /// Given dLoss/dOut, accumulates parameter gradients and returns
  /// dLoss/dIn. Must follow a forward() on the same sample.
  virtual Tensor backward(const Tensor &GradOut) = 0;

  /// Parameter tensors (empty for stateless layers such as ReLU).
  virtual std::vector<ParamView> params() { return {}; }

  /// Zeroes all gradient accumulators.
  void zeroGrads();

  /// Total number of trainable scalars.
  size_t numParams();

  /// Human-readable layer kind for diagnostics and serialization.
  virtual std::string kind() const = 0;
};

} // namespace nn
} // namespace au

#endif // AU_NN_LAYER_H
