//===- nn/Layer.h - Neural network layer interface -------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The layer abstraction for the NN substrate. Every layer supports two
/// execution styles: the original scalar path (forward/backward on one
/// sample, kept as the AU_NN_BACKEND=naive reference engine) and the batched
/// path (forwardBatch/backwardBatch over rank-(N+1) tensors whose leading
/// dimension is the minibatch), which the GEMM/im2col compute engine uses so
/// a whole minibatch flows through the network in one call. A layer owns its
/// parameters and the gradient accumulators that the optimizers consume;
/// both styles accumulate into the same gradient buffers.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_LAYER_H
#define AU_NN_LAYER_H

#include "nn/Tensor.h"

#include <string>
#include <vector>

namespace au {
class Rng;
namespace nn {

/// A view of one parameter tensor and its gradient accumulator, handed to
/// optimizers. Both spans have \p Count elements.
struct ParamView {
  float *Values;
  float *Grads;
  size_t Count;
};

/// Base class for all layers. Forward caches whatever backward needs, so a
/// layer instance processes one sample at a time (forward immediately
/// followed by the matching backward).
class Layer {
public:
  virtual ~Layer();

  /// Computes the layer output for \p In, caching activations for backward.
  virtual Tensor forward(const Tensor &In) = 0;

  /// Given dLoss/dOut, accumulates parameter gradients and returns
  /// dLoss/dIn. Must follow a forward() on the same sample.
  virtual Tensor backward(const Tensor &GradOut) = 0;

  /// Batched forward pass: \p In is a rank-(N+1) tensor whose leading
  /// dimension is the minibatch. Caches whatever backwardBatch needs for the
  /// whole batch. The batched caches are separate from the scalar ones, so a
  /// scalar forward() between a forwardBatch/backwardBatch pair is safe.
  virtual Tensor forwardBatch(const Tensor &In) = 0;

  /// Batched backward pass; must follow a forwardBatch() on the same batch.
  /// Accumulates the summed minibatch parameter gradients and returns
  /// dLoss/dIn with the same leading batch dimension.
  virtual Tensor backwardBatch(const Tensor &GradOut) = 0;

  /// Parameter tensors (empty for stateless layers such as ReLU).
  virtual std::vector<ParamView> params() { return {}; }

  /// Zeroes all gradient accumulators.
  void zeroGrads();

  /// Total number of trainable scalars.
  size_t numParams();

  /// Monotonic parameter version. Packed-weight caches (DESIGN.md §9) store
  /// the generation they were packed at and re-pack only when it moves.
  uint64_t paramGen() const { return ParamGen; }

  /// Records that this layer's parameters changed (optimizer step, parameter
  /// load/restore, direct mutation through the raw accessors).
  void bumpParamGen() { ++ParamGen; }

  /// Human-readable layer kind for diagnostics and serialization.
  virtual std::string kind() const = 0;

private:
  uint64_t ParamGen = 0;
};

} // namespace nn
} // namespace au

#endif // AU_NN_LAYER_H
