//===- nn/GemmSimdKernels.h - AVX2/FMA kernel entry points -----*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Internal interface between the backend dispatcher (Gemm.cpp, compiled for
/// the baseline architecture) and the AVX2/FMA kernel bodies (GemmSimd.cpp,
/// compiled with -mavx2 -mfma). Nothing here may be called unless
/// simdSupported() returned true; the dispatcher guards every call site.
///
/// Panel layouts (MR = 6 rows, NR = 16 columns):
///  * A panels: ceil(M/6) panels of [K][6] — APanels[p][k*6 + r] holds
///    op(A)[p*6 + r][k], zero-padded past row M.
///  * B panels: ceil(N/16) panels of [K][16] — BPanels[q][k*16 + c] holds
///    op(B)[k][q*16 + c], zero-padded past column N.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_GEMMSIMDKERNELS_H
#define AU_NN_GEMMSIMDKERNELS_H

#include <cstddef>

namespace au {
namespace nn {
namespace simd {

constexpr int MR = 6;  ///< Micro-tile rows (ymm broadcast operands).
constexpr int NR = 16; ///< Micro-tile columns (two 8-lane ymm vectors).

inline int numAPanels(int M) { return (M + MR - 1) / MR; }
inline int numBPanels(int N) { return (N + NR - 1) / NR; }
inline size_t aPanelsSize(int M, int K) {
  return static_cast<size_t>(numAPanels(M)) * K * MR;
}
inline size_t bPanelsSize(int K, int N) {
  return static_cast<size_t>(numBPanels(N)) * K * NR;
}

/// Packs op(A) (M x K; stored transposed when \p Trans) into A panels.
void packAPanels(const float *A, int Lda, bool Trans, int M, int K,
                 float *Dst);

/// Packs op(B) (K x N; stored transposed when \p Trans) into B panels.
void packBPanels(const float *B, int Ldb, bool Trans, int K, int N,
                 float *Dst);

/// C[Rows x N] = Alpha * panels product + Beta * C for the row-panel range
/// [PanelBegin, PanelEnd). Each C element accumulates k-ascending in a
/// single FMA chain, so results are independent of panel scheduling. When
/// \p BiasRow is non-null the accumulators start at BiasRow[row] instead of
/// zero (the conv-forward epilogue fusion); that path requires Alpha == 1
/// and Beta == 0, matching "fill C with bias, then accumulate on top".
void microKernelRange(int PanelBegin, int PanelEnd, int M, int N, int K,
                      float Alpha, const float *APanels,
                      const float *BPanels, float Beta, const float *BiasRow,
                      float *C, int Ldc);

/// im2col with inline AVX copies of the stride-1 row runs — bitwise
/// identical output to au::nn::im2col, minus the per-run libc memcpy
/// dispatch (row runs are a dozen floats; the call overhead dominates).
void im2colAvx(const float *In, int C, int H, int W, int K, int S,
               float *Col);

// Elementwise AVX2 bodies (see the dispatched wrappers in Gemm.h).
void reluForwardAvx(float *Y, size_t N);
void reluBackwardAvx(float *G, const float *X, size_t N);
void biasAddRowsAvx(float *Y, const float *Bias, int Rows, int Cols);
double mseBatchAvx(const float *P, const float *T, float *G, int Rows,
                   int Cols);
void adamUpdateAvx(float *W, float *G, float *M, float *V, size_t N, float Lr,
                   float B1, float B2, float Eps, float InvBias1,
                   float InvBias2, float Scale);

} // namespace simd
} // namespace nn
} // namespace au

#endif // AU_NN_GEMMSIMDKERNELS_H
