//===- nn/Layers.h - Concrete layer implementations ------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The concrete layers needed to realize the paper's two model types: DNN
/// (Dense + ReLU stacks, used by the Min/Med/All feature-variable models) and
/// CNN (Conv2D + MaxPool2D preprocessing stages, used by the Raw pixel
/// baselines modeled after the DeepMind architecture).
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_LAYERS_H
#define AU_NN_LAYERS_H

#include "nn/Gemm.h"
#include "nn/Layer.h"

namespace au {
class Rng;
namespace nn {

/// Fully connected layer: Out = W * In + B.
class Dense : public Layer {
public:
  /// Initializes with He-uniform weights drawn from \p Rand.
  Dense(int InSize, int OutSize, Rng &Rand);

  Tensor forward(const Tensor &In) override;
  Tensor backward(const Tensor &GradOut) override;
  Tensor forwardBatch(const Tensor &In) override;
  Tensor backwardBatch(const Tensor &GradOut) override;
  std::vector<ParamView> params() override;
  std::string kind() const override { return "dense"; }

  int inSize() const { return In; }
  int outSize() const { return Out; }

  // Raw parameter access for serialization and tests. Conservatively bumps
  // the parameter generation — callers may mutate through the reference.
  std::vector<float> &weights() {
    bumpParamGen();
    return W;
  }
  std::vector<float> &biases() {
    bumpParamGen();
    return B;
  }

private:
  int In;
  int Out;
  std::vector<float> W;  // Out x In, row-major.
  std::vector<float> B;  // Out.
  std::vector<float> GW; // Gradient accumulators.
  std::vector<float> GB;
  Tensor LastIn;
  Tensor LastInB;        // Batched activation cache ([Batch, In]).
  PackedOperand PackedWT; // Forward operand op(B) = W^T, engine layout.
  PackedOperand PackedWB; // Backward operand op(B) = W (input gradients).
};

/// Rectified linear unit, elementwise max(0, x).
class ReLU : public Layer {
public:
  Tensor forward(const Tensor &In) override;
  Tensor backward(const Tensor &GradOut) override;
  Tensor forwardBatch(const Tensor &In) override;
  Tensor backwardBatch(const Tensor &GradOut) override;
  std::string kind() const override { return "relu"; }

private:
  Tensor LastIn;
  Tensor LastInB;
};

/// 2-D convolution over (channels, height, width) tensors, stride
/// configurable, valid padding.
class Conv2D : public Layer {
public:
  Conv2D(int InChannels, int OutChannels, int KernelSize, int Stride,
         Rng &Rand);

  Tensor forward(const Tensor &In) override;
  Tensor backward(const Tensor &GradOut) override;
  Tensor forwardBatch(const Tensor &In) override;
  Tensor backwardBatch(const Tensor &GradOut) override;
  std::vector<ParamView> params() override;
  std::string kind() const override { return "conv2d"; }

  int inChannels() const { return InC; }
  int outChannels() const { return OutC; }
  int kernelSize() const { return K; }
  int stride() const { return S; }

  std::vector<float> &weights() {
    bumpParamGen();
    return W;
  }
  std::vector<float> &biases() {
    bumpParamGen();
    return B;
  }

private:
  int InC, OutC, K, S;
  std::vector<float> W;  // OutC x InC x K x K.
  std::vector<float> B;  // OutC.
  std::vector<float> GW;
  std::vector<float> GB;
  Tensor LastIn;
  // Batched-path workspace, preallocated and reused across calls: the
  // im2col column cache for the whole batch ([Batch][InC*K*K][OH*OW], also
  // the activation cache the weight-gradient GEMM consumes) and the
  // column-gradient scratch of identical layout.
  std::vector<float> ColB;
  std::vector<float> DColB;
  std::vector<int> InShapeB; // Cached batched input shape.
  int LastOH = 0, LastOW = 0;
  PackedOperand PackedW;   // Forward operand op(A) = W [OutC x CKK].
  PackedOperand PackedWTA; // Backward operand op(A) = W^T [CKK x OutC].
};

/// 2x2 max pooling with stride 2 over (channels, height, width) tensors.
class MaxPool2D : public Layer {
public:
  Tensor forward(const Tensor &In) override;
  Tensor backward(const Tensor &GradOut) override;
  Tensor forwardBatch(const Tensor &In) override;
  Tensor backwardBatch(const Tensor &GradOut) override;
  std::string kind() const override { return "maxpool2d"; }

private:
  Tensor LastIn;
  std::vector<size_t> ArgMax; // Flat input index chosen per output element.
  std::vector<int> OutShape;
  std::vector<size_t> ArgMaxB; // Batched argmax (flat index into the batch).
  std::vector<int> InShapeB;
};

/// Reshapes the input to a fixed target shape (element counts must match).
/// Placed at the front of CNN models so they accept the runtime's flat
/// feature vectors.
class Reshape : public Layer {
public:
  explicit Reshape(std::vector<int> TargetShape)
      : Target(std::move(TargetShape)) {}

  Tensor forward(const Tensor &In) override;
  Tensor backward(const Tensor &GradOut) override;
  Tensor forwardBatch(const Tensor &In) override;
  Tensor backwardBatch(const Tensor &GradOut) override;
  std::string kind() const override { return "reshape"; }

private:
  std::vector<int> Target;
  std::vector<int> InShape;
  std::vector<int> InShapeB;
  std::vector<int> NewShapeB; // Batched target shape, reused across calls.
};

/// Flattens any tensor to rank 1.
class Flatten : public Layer {
public:
  Tensor forward(const Tensor &In) override;
  Tensor backward(const Tensor &GradOut) override;
  Tensor forwardBatch(const Tensor &In) override;
  Tensor backwardBatch(const Tensor &GradOut) override;
  std::string kind() const override { return "flatten"; }

private:
  std::vector<int> InShape;
  std::vector<int> InShapeB;
};

} // namespace nn
} // namespace au

#endif // AU_NN_LAYERS_H
