//===- nn/Supervised.h - Supervised (AdamOpt) trainer ----------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Offline supervised training over (feature, target) pairs, the paper's SL
/// regime: the runtime piggybacks on normal software execution to collect
/// feature-variable values and the desirable target-variable values, then
/// trains an AdamOpt DNN after execution. Both inputs and targets are
/// z-normalized internally so callers can feed raw program values.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_SUPERVISED_H
#define AU_NN_SUPERVISED_H

#include "nn/Network.h"
#include "nn/Optimizer.h"

#include <vector>

namespace au {
class Rng;
namespace nn {

/// One training example: a flattened feature vector and target values.
struct Sample {
  std::vector<float> X;
  std::vector<float> Y;
};

/// Trains a regression network on a dataset with Adam + MSE, normalizing
/// inputs and outputs from dataset statistics.
class SupervisedTrainer {
public:
  /// \p Net must map InSize -> OutSize of the dataset samples.
  SupervisedTrainer(Network Net, double LearningRate = 1e-3);

  /// Adds one example; all examples must have consistent sizes.
  void addSample(std::vector<float> X, std::vector<float> Y);

  size_t numSamples() const { return Data.size(); }

  /// Trains for \p Epochs passes with the given minibatch size, shuffling
  /// with \p Rand each epoch. Returns the final epoch's mean loss
  /// (normalized space). No-op (returns 0) on an empty dataset. Under the
  /// batched engine, minibatch extraction (normalize + pack) is double
  /// buffered: a pool worker prepares batch N+1 while batch N trains, with
  /// bitwise-identical results to the serial schedule.
  double train(int Epochs, int BatchSize, Rng &Rand);

  /// Predicts the de-normalized target values for raw features \p X.
  std::vector<float> predict(const std::vector<float> &X);

  /// Predicts for many feature vectors in one batched network call (the
  /// high-throughput serving entry point). Equivalent to calling predict()
  /// per row.
  std::vector<std::vector<float>>
  predictBatch(const std::vector<std::vector<float>> &Xs);

  /// Raw-buffer batched inference: \p Xs holds \p Rows feature vectors back
  /// to back (Rows x inputSize, row-major); \p Out is resized to Rows x
  /// outputSize de-normalized predictions. Normalization staging reuses a
  /// member tensor, so repeated calls at a fixed row count allocate nothing
  /// here (the au_NN hot path; Rows == 1 is the single-call case).
  void predictRowsInto(const float *Xs, int Rows, std::vector<float> &Out);

  /// Mean |prediction - target| per output in raw target units over the
  /// dataset (resubstitution error, for quick sanity checks).
  double meanAbsError();

  Network &network() { return Net; }

  /// Exports the dataset normalization statistics (for model persistence).
  /// Computes them from the dataset when not yet available.
  void getNormalization(std::vector<float> &XM, std::vector<float> &XS,
                        std::vector<float> &YM, std::vector<float> &YS);

  /// Installs normalization statistics (used when loading a saved model
  /// without its dataset).
  void setNormalization(std::vector<float> XM, std::vector<float> XS,
                        std::vector<float> YM, std::vector<float> YS);

private:
  void computeNormalization();
  Tensor normalizeX(const std::vector<float> &X) const;

  Network Net;
  Adam Opt;
  std::vector<Sample> Data;
  // Per-dimension normalization (computed lazily on first train()).
  std::vector<float> XMean, XStd, YMean, YStd;
  bool Normalized = false;
  Tensor RowStaging; ///< predictRowsInto input staging (reused per call).
};

} // namespace nn
} // namespace au

#endif // AU_NN_SUPERVISED_H
