//===- nn/QLearner.h - Deep Q-learning --------------------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep Q-learning (Watkins' Q algorithm with a neural function approximator,
/// experience replay and a target network — the setup of Mnih et al. that the
/// paper's RL mode instantiates for `au_config(..., QLearn, ...)`).
///
/// The runtime drives it through two calls per game-loop iteration:
/// selectAction(state) during au_NN, and observe(reward, terminal, nextState)
/// when the next au_NN arrives, matching the paper's "collect model
/// inputs/outputs for a window of time, then invoke the training method".
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_QLEARNER_H
#define AU_NN_QLEARNER_H

#include "nn/Network.h"
#include "nn/Optimizer.h"
#include "support/Rng.h"

#include <deque>
#include <functional>
#include <vector>

namespace au {
namespace nn {

/// One replay transition.
struct Transition {
  std::vector<float> State;
  int Action;
  float Reward;
  std::vector<float> NextState;
  bool Terminal;
};

/// Hyperparameters for the DQN agent.
struct QConfig {
  double Gamma = 0.97;          ///< Discount factor.
  double LearningRate = 5e-4;   ///< Adam step size.
  /// Final step size; when > 0 the rate anneals linearly to this value
  /// over 2x the epsilon horizon, which damps late-training policy
  /// collapse (DQN's classic instability).
  double LearningRateEnd = 0.0;
  double EpsilonStart = 1.0;    ///< Initial exploration rate.
  double EpsilonEnd = 0.05;     ///< Final exploration rate.
  int EpsilonDecaySteps = 4000; ///< Linear decay horizon in steps.
  int ReplayCapacity = 20000;   ///< Max transitions kept.
  int BatchSize = 32;           ///< Minibatch size per training step.
  int WarmupSteps = 200;        ///< Steps before training starts.
  int TargetSyncInterval = 250; ///< Steps between target-net syncs.
  int TrainInterval = 1;        ///< Train every N observed steps.
};

/// A DQN agent over discrete actions. Owns an online and a target network of
/// identical architecture (built via the factory passed to the constructor).
class QLearner {
public:
  /// \p MakeNet builds a fresh network (called twice: online + target).
  QLearner(std::function<Network()> MakeNet, int NumActions, QConfig Config,
           uint64_t Seed);

  /// Epsilon-greedy action for \p State; decays epsilon when \p Learning.
  int selectAction(const std::vector<float> &State, bool Learning);

  /// Greedy action (no exploration, no learning side effects).
  int greedyAction(const std::vector<float> &State);

  /// Records a completed transition and runs a training step when due.
  void observe(const std::vector<float> &State, int Action, float Reward,
               const std::vector<float> &NextState, bool Terminal);

  /// Q-values for \p State from the online network.
  std::vector<float> qValues(const std::vector<float> &State);

  double epsilon() const { return Eps; }
  long stepsObserved() const { return Steps; }
  size_t replaySize() const { return Replay.size(); }
  Network &onlineNetwork() { return Online; }

  /// Serialized online-model size in bytes (Table 2 "Model Size").
  size_t modelSizeBytes() { return Online.sizeInBytes(); }

private:
  void trainStep();

  Network Online;
  Network Target;
  Adam Opt;
  int NumActions;
  QConfig Cfg;
  Rng Rand;
  std::deque<Transition> Replay;
  double Eps;
  long Steps = 0;
};

} // namespace nn
} // namespace au

#endif // AU_NN_QLEARNER_H
