//===- nn/QLearner.h - Deep Q-learning --------------------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deep Q-learning (Watkins' Q algorithm with a neural function approximator,
/// experience replay and a target network — the setup of Mnih et al. that the
/// paper's RL mode instantiates for `au_config(..., QLearn, ...)`).
///
/// The runtime drives it through two calls per game-loop iteration:
/// selectAction(state) during au_NN, and observe(reward, terminal, nextState)
/// when the next au_NN arrives, matching the paper's "collect model
/// inputs/outputs for a window of time, then invoke the training method".
///
/// The multi-actor mode (DESIGN.md §8) generalizes this to K concurrent
/// rollouts: configureActors(K) shards the replay ring per actor and gives
/// each actor its own counter-based exploration stream, selectActionsBatch
/// fuses the K action selections into one forwardBatch, and
/// observeActor/finishTick split the per-transition recording (safe from
/// actor threads, disjoint shards) from the global training schedule (run
/// once per tick on the driving thread). All of it is deterministic at any
/// thread count.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_QLEARNER_H
#define AU_NN_QLEARNER_H

#include "nn/Network.h"
#include "nn/Optimizer.h"
#include "nn/ReplayBuffer.h"
#include "support/Rng.h"

#include <functional>
#include <vector>

namespace au {
namespace nn {

/// Hyperparameters for the DQN agent.
struct QConfig {
  double Gamma = 0.97;          ///< Discount factor.
  double LearningRate = 5e-4;   ///< Adam step size.
  /// Final step size; when > 0 the rate anneals linearly to this value
  /// over 2x the epsilon horizon, which damps late-training policy
  /// collapse (DQN's classic instability).
  double LearningRateEnd = 0.0;
  double EpsilonStart = 1.0;    ///< Initial exploration rate.
  double EpsilonEnd = 0.05;     ///< Final exploration rate.
  int EpsilonDecaySteps = 4000; ///< Linear decay horizon in steps.
  int ReplayCapacity = 20000;   ///< Max transitions kept.
  int BatchSize = 32;           ///< Minibatch size per training step.
  int WarmupSteps = 200;        ///< Steps before training starts.
  int TargetSyncInterval = 250; ///< Steps between target-net syncs.
  int TrainInterval = 1;        ///< Train every N observed steps.
};

/// A DQN agent over discrete actions. Owns an online and a target network of
/// identical architecture (built via the factory passed to the constructor).
class QLearner {
public:
  /// \p MakeNet builds a fresh network (called twice: online + target).
  QLearner(std::function<Network()> MakeNet, int NumActions, QConfig Config,
           uint64_t Seed);

  /// Epsilon-greedy action for \p State; decays epsilon when \p Learning.
  int selectAction(const std::vector<float> &State, bool Learning);

  /// Greedy action (no exploration, no learning side effects).
  int greedyAction(const std::vector<float> &State);

  /// Records a completed transition and runs a training step when due. The
  /// state vectors are taken by value and moved into the replay slot;
  /// callers that no longer need them should std::move.
  void observe(std::vector<float> State, int Action, float Reward,
               std::vector<float> NextState, bool Terminal);

  /// Q-values for \p State from the online network.
  std::vector<float> qValues(const std::vector<float> &State);

  //===--------------------------------------------------------------------===//
  // Multi-actor batched mode (DESIGN.md §8)
  //===--------------------------------------------------------------------===//

  /// Enters K-actor mode: the replay ring is resharded per actor (dropping
  /// any stored transitions) and each actor gets its own counter-based
  /// exploration stream. Grow-only; call before training begins.
  void configureActors(int NumActors);

  int numActors() const { return static_cast<int>(Streams.size()); }

  /// Epsilon-greedy actions for \p K states of \p D floats each, held back
  /// to back in \p States (K x D row-major), fused into one forwardBatch
  /// over the online network. Exploration draws come from the per-actor
  /// streams in actor order, so the result is independent of how the states
  /// were produced. Does not decay epsilon; finishTick does.
  void selectActionsBatch(const float *States, int K, int D, bool Learning,
                          int *Actions);

  /// Records one completed transition into \p Actor's replay shard.
  /// Distinct actors may call concurrently; the global step count does not
  /// advance until finishTick.
  void observeActor(int Actor, const float *State, size_t StateLen,
                    int Action, float Reward, const float *NextState,
                    size_t NextLen, bool Terminal);

  /// Completes one tick in which \p Observed transitions were recorded:
  /// advances the step count, decays epsilon / anneals the learning rate,
  /// and runs every training step and target sync that came due — the same
  /// schedule the serial observe() follows, applied once per tick.
  void finishTick(int Observed);

  double epsilon() const { return Eps; }
  long stepsObserved() const { return Steps; }
  /// Minibatch training steps run so far (throughput accounting).
  long trainStepsRun() const { return TrainSteps; }
  size_t replaySize() const { return Replay.size(); }
  const ShardedReplay &replay() const { return Replay; }
  Network &onlineNetwork() { return Online; }
  const QConfig &config() const { return Cfg; }

  /// Serialized online-model size in bytes (Table 2 "Model Size").
  size_t modelSizeBytes() { return Online.sizeInBytes(); }

private:
  void trainStep();
  void decaySchedules();

  Network Online;
  Network Target;
  Adam Opt;
  int NumActions;
  QConfig Cfg;
  Rng Rand;
  uint64_t Seed;
  ShardedReplay Replay;
  std::vector<Rng> Streams; ///< Per-actor exploration streams (K-actor mode).
  double Eps;
  long Steps = 0;
  long TrainSteps = 0;
  // Reusable staging for the batched paths: minibatch tensors are assembled
  // straight from the replay ring and action selection reuses one input
  // tensor, so the steady state allocates nothing per call.
  Tensor BatchStates, BatchNext, BatchGrad, ActStaging;
  std::vector<const Transition *> BatchPtrs;
};

} // namespace nn
} // namespace au

#endif // AU_NN_QLEARNER_H
