//===- nn/QLearner.cpp - Deep Q-learning ----------------------------------===//

#include "nn/QLearner.h"

#include "nn/Loss.h"

#include <cassert>

using namespace au;
using namespace au::nn;

QLearner::QLearner(std::function<Network()> MakeNet, int Actions,
                   QConfig Config, uint64_t Seed)
    : Online(MakeNet()), Target(MakeNet()), Opt(Online, Config.LearningRate),
      NumActions(Actions), Cfg(Config), Rand(Seed), Eps(Config.EpsilonStart) {
  assert(NumActions > 1 && "Q-learning needs at least two actions");
  Target.copyParamsFrom(Online);
}

std::vector<float> QLearner::qValues(const std::vector<float> &State) {
  Tensor Out = Online.forward(Tensor::fromVector(State));
  assert(Out.size() == static_cast<size_t>(NumActions) &&
         "network output arity does not match action count");
  return Out.values();
}

int QLearner::selectAction(const std::vector<float> &State, bool Learning) {
  if (Learning && Rand.chance(Eps))
    return static_cast<int>(Rand.uniformInt(NumActions));
  return greedyAction(State);
}

int QLearner::greedyAction(const std::vector<float> &State) {
  Tensor Out = Online.forward(Tensor::fromVector(State));
  return static_cast<int>(Out.argmax());
}

void QLearner::observe(const std::vector<float> &State, int Action,
                       float Reward, const std::vector<float> &NextState,
                       bool Terminal) {
  assert(Action >= 0 && Action < NumActions && "action out of range");
  Replay.push_back({State, Action, Reward, NextState, Terminal});
  if (Replay.size() > static_cast<size_t>(Cfg.ReplayCapacity))
    Replay.pop_front();
  ++Steps;

  // Linear epsilon decay over the configured horizon.
  if (Eps > Cfg.EpsilonEnd) {
    double Frac = static_cast<double>(Steps) / Cfg.EpsilonDecaySteps;
    Eps = Cfg.EpsilonStart +
          (Cfg.EpsilonEnd - Cfg.EpsilonStart) * std::min(1.0, Frac);
  }

  // Optional learning-rate annealing over twice the epsilon horizon.
  if (Cfg.LearningRateEnd > 0.0) {
    double Frac = std::min(
        1.0, static_cast<double>(Steps) / (2.0 * Cfg.EpsilonDecaySteps));
    Opt.setLearningRate(Cfg.LearningRate +
                        (Cfg.LearningRateEnd - Cfg.LearningRate) * Frac);
  }

  if (Steps >= Cfg.WarmupSteps && Steps % Cfg.TrainInterval == 0)
    trainStep();
  if (Steps % Cfg.TargetSyncInterval == 0)
    Target.copyParamsFrom(Online);
}

void QLearner::trainStep() {
  if (Replay.size() < static_cast<size_t>(Cfg.BatchSize))
    return;
  Online.zeroGrads();
  for (int B = 0; B < Cfg.BatchSize; ++B) {
    const Transition &T = Replay[Rand.uniformInt(Replay.size())];
    // Bootstrap target: r + gamma * max_a' Q_target(s', a') unless terminal.
    float Y = T.Reward;
    if (!T.Terminal) {
      Tensor NextQ = Target.forward(Tensor::fromVector(T.NextState));
      Y += static_cast<float>(Cfg.Gamma) * NextQ.maxValue();
    }
    Tensor Pred = Online.forward(Tensor::fromVector(T.State));
    Tensor Grad;
    huberLossAt(Pred, static_cast<size_t>(T.Action), Y, Grad);
    Online.backward(Grad);
  }
  Opt.step(1.0 / Cfg.BatchSize);
}
