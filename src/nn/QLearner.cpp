//===- nn/QLearner.cpp - Deep Q-learning ----------------------------------===//

#include "nn/QLearner.h"

#include "nn/Gemm.h"
#include "nn/Loss.h"

#include <algorithm>
#include <cassert>

using namespace au;
using namespace au::nn;

namespace {

/// Single-state inference. Under the GEMM backend this routes through the
/// batched engine with a batch of one, so the au_NN serving path uses the
/// same fast kernels as training.
Tensor forwardOne(Network &Net, const std::vector<float> &State) {
  if (backend() == Backend::Gemm) {
    Tensor X({1, static_cast<int>(State.size())});
    std::copy(State.begin(), State.end(), X.data());
    return Net.forwardBatch(X);
  }
  return Net.forward(Tensor::fromVector(State));
}

} // namespace

QLearner::QLearner(std::function<Network()> MakeNet, int Actions,
                   QConfig Config, uint64_t Seed)
    : Online(MakeNet()), Target(MakeNet()), Opt(Online, Config.LearningRate),
      NumActions(Actions), Cfg(Config), Rand(Seed), Eps(Config.EpsilonStart) {
  assert(NumActions > 1 && "Q-learning needs at least two actions");
  Target.copyParamsFrom(Online);
}

std::vector<float> QLearner::qValues(const std::vector<float> &State) {
  Tensor Out = forwardOne(Online, State);
  assert(Out.size() == static_cast<size_t>(NumActions) &&
         "network output arity does not match action count");
  return Out.values();
}

int QLearner::selectAction(const std::vector<float> &State, bool Learning) {
  if (Learning && Rand.chance(Eps))
    return static_cast<int>(Rand.uniformInt(NumActions));
  return greedyAction(State);
}

int QLearner::greedyAction(const std::vector<float> &State) {
  Tensor Out = forwardOne(Online, State);
  return static_cast<int>(Out.argmax());
}

void QLearner::observe(const std::vector<float> &State, int Action,
                       float Reward, const std::vector<float> &NextState,
                       bool Terminal) {
  assert(Action >= 0 && Action < NumActions && "action out of range");
  Replay.push_back({State, Action, Reward, NextState, Terminal});
  if (Replay.size() > static_cast<size_t>(Cfg.ReplayCapacity))
    Replay.pop_front();
  ++Steps;

  // Linear epsilon decay over the configured horizon.
  if (Eps > Cfg.EpsilonEnd) {
    double Frac = static_cast<double>(Steps) / Cfg.EpsilonDecaySteps;
    Eps = Cfg.EpsilonStart +
          (Cfg.EpsilonEnd - Cfg.EpsilonStart) * std::min(1.0, Frac);
  }

  // Optional learning-rate annealing over twice the epsilon horizon.
  if (Cfg.LearningRateEnd > 0.0) {
    double Frac = std::min(
        1.0, static_cast<double>(Steps) / (2.0 * Cfg.EpsilonDecaySteps));
    Opt.setLearningRate(Cfg.LearningRate +
                        (Cfg.LearningRateEnd - Cfg.LearningRate) * Frac);
  }

  if (Steps >= Cfg.WarmupSteps && Steps % Cfg.TrainInterval == 0)
    trainStep();
  if (Steps % Cfg.TargetSyncInterval == 0)
    Target.copyParamsFrom(Online);
}

void QLearner::trainStep() {
  if (Replay.size() < static_cast<size_t>(Cfg.BatchSize))
    return;
  Online.zeroGrads();
  if (backend() == Backend::Naive) {
    for (int B = 0; B < Cfg.BatchSize; ++B) {
      const Transition &T = Replay[Rand.uniformInt(Replay.size())];
      // Bootstrap target: r + gamma * max_a' Q_target(s', a') unless
      // terminal.
      float Y = T.Reward;
      if (!T.Terminal) {
        Tensor NextQ = Target.forward(Tensor::fromVector(T.NextState));
        Y += static_cast<float>(Cfg.Gamma) * NextQ.maxValue();
      }
      Tensor Pred = Online.forward(Tensor::fromVector(T.State));
      Tensor Grad;
      huberLossAt(Pred, static_cast<size_t>(T.Action), Y, Grad);
      Online.backward(Grad);
    }
  } else {
    // Batched replay update: one forwardBatch over the target and online
    // networks instead of BatchSize scalar calls. The minibatch is drawn
    // with the identical RNG sequence as the naive path.
    int Bn = Cfg.BatchSize;
    std::vector<const Transition *> Batch(Bn);
    for (int B = 0; B < Bn; ++B)
      Batch[B] = &Replay[Rand.uniformInt(Replay.size())];
    int D = static_cast<int>(Batch[0]->State.size());
    Tensor States({Bn, D}), NextStates({Bn, D});
    for (int B = 0; B < Bn; ++B) {
      const Transition &T = *Batch[B];
      std::copy(T.State.begin(), T.State.end(), States.sampleData(B));
      if (T.NextState.size() == static_cast<size_t>(D))
        std::copy(T.NextState.begin(), T.NextState.end(),
                  NextStates.sampleData(B));
    }
    Tensor NextQ = Target.forwardBatch(NextStates);
    Tensor Pred = Online.forwardBatch(States);
    Tensor Grad({Bn, NumActions});
    for (int B = 0; B < Bn; ++B) {
      const Transition &T = *Batch[B];
      float Y = T.Reward;
      if (!T.Terminal) {
        const float *Row = NextQ.sampleData(B);
        Y += static_cast<float>(Cfg.Gamma) *
             *std::max_element(Row, Row + NumActions);
      }
      // Huber (delta = 1) derivative at the taken action, as huberLossAt.
      float Diff = Pred.sampleData(B)[T.Action] - Y;
      Grad.sampleData(B)[T.Action] = std::clamp(Diff, -1.0f, 1.0f);
    }
    Online.backwardBatch(Grad);
  }
  Opt.step(1.0 / Cfg.BatchSize);
}
