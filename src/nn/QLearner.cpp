//===- nn/QLearner.cpp - Deep Q-learning ----------------------------------===//

#include "nn/QLearner.h"

#include "nn/Gemm.h"
#include "nn/Loss.h"
#include "nn/Workspace.h"

#include <algorithm>
#include <cassert>

using namespace au;
using namespace au::nn;

namespace {

/// Single-state inference. Under the batched backends this routes through
/// the batched engine with a batch of one, so the au_NN serving path uses
/// the same fast kernels as training. Returns a workspace tensor; the caller
/// releases it.
Tensor forwardOne(Network &Net, const std::vector<float> &State) {
  if (backend() != Backend::Naive) {
    Tensor X = Workspace::acquire({1, static_cast<int>(State.size())});
    std::copy(State.begin(), State.end(), X.data());
    Tensor Out = Net.forwardBatch(X);
    Workspace::release(X);
    return Out;
  }
  return Net.forward(Tensor::fromVector(State));
}

} // namespace

QLearner::QLearner(std::function<Network()> MakeNet, int Actions,
                   QConfig Config, uint64_t BaseSeed)
    : Online(MakeNet()), Target(MakeNet()), Opt(Online, Config.LearningRate),
      NumActions(Actions), Cfg(Config), Rand(BaseSeed), Seed(BaseSeed),
      Eps(Config.EpsilonStart) {
  assert(NumActions > 1 && "Q-learning needs at least two actions");
  Target.copyParamsFrom(Online);
  Replay.configure(1, Cfg.ReplayCapacity);
}

std::vector<float> QLearner::qValues(const std::vector<float> &State) {
  Tensor Out = forwardOne(Online, State);
  assert(Out.size() == static_cast<size_t>(NumActions) &&
         "network output arity does not match action count");
  std::vector<float> Q = Out.values();
  Workspace::release(Out);
  return Q;
}

int QLearner::selectAction(const std::vector<float> &State, bool Learning) {
  if (Learning && Rand.chance(Eps))
    return static_cast<int>(Rand.uniformInt(NumActions));
  return greedyAction(State);
}

int QLearner::greedyAction(const std::vector<float> &State) {
  Tensor Out = forwardOne(Online, State);
  int Act = static_cast<int>(Out.argmax());
  Workspace::release(Out);
  return Act;
}

void QLearner::observe(std::vector<float> State, int Action, float Reward,
                       std::vector<float> NextState, bool Terminal) {
  assert(Action >= 0 && Action < NumActions && "action out of range");
  Replay.push(0, {std::move(State), Action, Reward, std::move(NextState),
                  Terminal});
  finishTick(1);
}

void QLearner::configureActors(int NumActors) {
  assert(NumActors > 0 && "need at least one actor");
  if (NumActors == numActors())
    return;
  Replay.configure(NumActors, Cfg.ReplayCapacity);
  Streams.clear();
  Streams.reserve(static_cast<size_t>(NumActors));
  for (int A = 0; A < NumActors; ++A)
    Streams.push_back(Rng::stream(Seed, static_cast<uint64_t>(A)));
}

void QLearner::selectActionsBatch(const float *States, int K, int D,
                                  bool Learning, int *Actions) {
  assert(K > 0 && D > 0 && "empty action-selection batch");
  assert((!Learning || K <= numActors()) &&
         "learning batch larger than configured actor count");
  // One fused inference for all K actors. Exploration may discard some rows,
  // but computing them keeps the batch shape fixed and the result a pure
  // function of the states — no data-dependent batching.
  Tensor Out;
  if (backend() != Backend::Naive) {
    if (ActStaging.size() != static_cast<size_t>(K) * D)
      ActStaging = Tensor({K, D});
    std::copy(States, States + static_cast<size_t>(K) * D, ActStaging.data());
    Out = Online.forwardBatch(ActStaging);
  } else {
    Out = Tensor({K, NumActions});
    std::vector<float> Row(static_cast<size_t>(D));
    for (int A = 0; A < K; ++A) {
      Row.assign(States + static_cast<size_t>(A) * D,
                 States + static_cast<size_t>(A + 1) * D);
      Tensor Q = Online.forward(Tensor::fromVector(Row));
      std::copy(Q.data(), Q.data() + NumActions, Out.sampleData(A));
    }
  }
  // Serial epsilon-greedy pass in actor order: actor k's draws always come
  // from stream k, so the chosen actions are identical at any thread count.
  for (int A = 0; A < K; ++A) {
    if (Learning && Streams[static_cast<size_t>(A)].chance(Eps)) {
      Actions[A] = static_cast<int>(
          Streams[static_cast<size_t>(A)].uniformInt(NumActions));
      continue;
    }
    const float *Row = Out.sampleData(A);
    Actions[A] = static_cast<int>(
        std::max_element(Row, Row + NumActions) - Row);
  }
  Workspace::release(Out);
}

void QLearner::observeActor(int Actor, const float *State, size_t StateLen,
                            int Action, float Reward, const float *NextState,
                            size_t NextLen, bool Terminal) {
  assert(Action >= 0 && Action < NumActions && "action out of range");
  Replay.emplace(Actor, State, StateLen, Action, Reward, NextState, NextLen,
                 Terminal);
}

void QLearner::finishTick(int Observed) {
  assert(Observed > 0 && "tick without observations");
  long Prev = Steps;
  Steps += Observed;
  decaySchedules();
  // Run every training step and target sync that came due while the tick's
  // transitions were recorded — the same schedule the serial path follows
  // one step at a time. With TrainInterval == K (the vectorized-DQN
  // schedule) exactly one minibatch runs per K-actor tick.
  for (long S = Prev + 1; S <= Steps; ++S) {
    if (S >= Cfg.WarmupSteps && S % Cfg.TrainInterval == 0)
      trainStep();
    if (S % Cfg.TargetSyncInterval == 0)
      Target.copyParamsFrom(Online);
  }
}

void QLearner::decaySchedules() {
  // Linear epsilon decay over the configured horizon. Pure function of the
  // step count, so serial and K-actor runs agree at equal Steps.
  if (Eps > Cfg.EpsilonEnd) {
    double Frac = static_cast<double>(Steps) / Cfg.EpsilonDecaySteps;
    Eps = Cfg.EpsilonStart +
          (Cfg.EpsilonEnd - Cfg.EpsilonStart) * std::min(1.0, Frac);
  }

  // Optional learning-rate annealing over twice the epsilon horizon.
  if (Cfg.LearningRateEnd > 0.0) {
    double Frac = std::min(
        1.0, static_cast<double>(Steps) / (2.0 * Cfg.EpsilonDecaySteps));
    Opt.setLearningRate(Cfg.LearningRate +
                        (Cfg.LearningRateEnd - Cfg.LearningRate) * Frac);
  }
}

void QLearner::trainStep() {
  if (Replay.size() < static_cast<size_t>(Cfg.BatchSize))
    return;
  ++TrainSteps;
  Online.zeroGrads();
  if (backend() == Backend::Naive) {
    for (int B = 0; B < Cfg.BatchSize; ++B) {
      const Transition &T = Replay.at(Rand.uniformInt(Replay.size()));
      // Bootstrap target: r + gamma * max_a' Q_target(s', a') unless
      // terminal.
      float Y = T.Reward;
      if (!T.Terminal) {
        Tensor NextQ = Target.forward(Tensor::fromVector(T.NextState));
        Y += static_cast<float>(Cfg.Gamma) * NextQ.maxValue();
      }
      Tensor Pred = Online.forward(Tensor::fromVector(T.State));
      Tensor Grad;
      huberLossAt(Pred, static_cast<size_t>(T.Action), Y, Grad);
      Online.backward(Grad);
    }
  } else {
    // Batched replay update: one forwardBatch over the target and online
    // networks instead of BatchSize scalar calls. The minibatch is drawn
    // with the identical RNG sequence as the naive path, and assembled
    // straight into reused batch tensors (no per-step allocation).
    int Bn = Cfg.BatchSize;
    BatchPtrs.resize(static_cast<size_t>(Bn));
    for (int B = 0; B < Bn; ++B)
      BatchPtrs[static_cast<size_t>(B)] =
          &Replay.at(Rand.uniformInt(Replay.size()));
    int D = static_cast<int>(BatchPtrs[0]->State.size());
    if (BatchStates.size() != static_cast<size_t>(Bn) * D) {
      BatchStates = Tensor({Bn, D});
      BatchNext = Tensor({Bn, D});
      BatchGrad = Tensor({Bn, NumActions});
    }
    for (int B = 0; B < Bn; ++B) {
      const Transition &T = *BatchPtrs[static_cast<size_t>(B)];
      std::copy(T.State.begin(), T.State.end(), BatchStates.sampleData(B));
      if (T.NextState.size() == static_cast<size_t>(D))
        std::copy(T.NextState.begin(), T.NextState.end(),
                  BatchNext.sampleData(B));
    }
    Tensor NextQ = Target.forwardBatch(BatchNext);
    Tensor Pred = Online.forwardBatch(BatchStates);
    BatchGrad.fill(0.0f);
    for (int B = 0; B < Bn; ++B) {
      const Transition &T = *BatchPtrs[static_cast<size_t>(B)];
      float Y = T.Reward;
      if (!T.Terminal) {
        const float *Row = NextQ.sampleData(B);
        Y += static_cast<float>(Cfg.Gamma) *
             *std::max_element(Row, Row + NumActions);
      }
      // Huber (delta = 1) derivative at the taken action, as huberLossAt.
      float Diff = Pred.sampleData(B)[T.Action] - Y;
      BatchGrad.sampleData(B)[T.Action] = std::clamp(Diff, -1.0f, 1.0f);
    }
    Workspace::release(NextQ);
    Workspace::release(Pred);
    Tensor DIn = Online.backwardBatch(BatchGrad);
    Workspace::release(DIn);
  }
  Opt.step(1.0 / Cfg.BatchSize);
}
