//===- nn/Optimizer.h - Gradient-descent optimizers ------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Optimizers realizing the semantics' gradient() statement extension:
/// plain SGD and Adam (Kingma & Ba), the paper's "AdamOpt" algorithm for
/// supervised learning. An optimizer is bound to a network's parameter views
/// and applies the accumulated gradients on each step().
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_OPTIMIZER_H
#define AU_NN_OPTIMIZER_H

#include "nn/Layer.h"

#include <vector>

namespace au {
namespace nn {

class Network;

/// Base optimizer interface over a fixed set of parameter views.
class Optimizer {
public:
  virtual ~Optimizer();

  /// Applies the currently accumulated gradients, scaled by 1/BatchSize,
  /// then zeroes them.
  virtual void step(double BatchScale = 1.0) = 0;
};

/// Stochastic gradient descent with optional momentum.
class Sgd : public Optimizer {
public:
  Sgd(Network &Net, double LearningRate, double Momentum = 0.0);
  void step(double BatchScale) override;

private:
  Network *Net; ///< For parameter-generation bumps on step().
  std::vector<ParamView> Params;
  double Lr;
  double Mu;
  std::vector<std::vector<float>> Velocity;
};

/// Adam optimizer (the paper's AdamOpt).
class Adam : public Optimizer {
public:
  Adam(Network &Net, double LearningRate, double Beta1 = 0.9,
       double Beta2 = 0.999, double Eps = 1e-8);
  void step(double BatchScale) override;

  /// Adjusts the step size (used for learning-rate schedules).
  void setLearningRate(double LearningRate) { Lr = LearningRate; }
  double learningRate() const { return Lr; }

private:
  Network *Net; ///< For parameter-generation bumps on step().
  std::vector<ParamView> Params;
  double Lr, B1, B2, Eps;
  long Step = 0;
  std::vector<std::vector<float>> M;
  std::vector<std::vector<float>> V;
};

} // namespace nn
} // namespace au

#endif // AU_NN_OPTIMIZER_H
