//===- nn/Network.cpp - Sequential neural network -------------------------===//

#include "nn/Network.h"

#include "nn/Layers.h"
#include "nn/Workspace.h"
#include "support/Rng.h"

#include <cstdio>
#include <cstring>

using namespace au;
using namespace au::nn;

Network &Network::add(std::unique_ptr<Layer> L) {
  assert(L && "adding a null layer");
  Layers.push_back(std::move(L));
  return *this;
}

Tensor Network::forward(const Tensor &In) {
  Tensor X = In;
  for (auto &L : Layers)
    X = L->forward(X);
  return X;
}

Tensor Network::backward(const Tensor &GradOut) {
  Tensor G = GradOut;
  for (auto It = Layers.rbegin(), E = Layers.rend(); It != E; ++It)
    G = (*It)->backward(G);
  return G;
}

Tensor Network::forwardBatch(const Tensor &In) {
  assert(In.rank() >= 2 && "batched input needs a leading batch dimension");
  assert(!Layers.empty() && "forwardBatch on an empty network");
  // Layers return workspace tensors; release each intermediate back to the
  // arena as soon as the next layer has consumed it. The caller's input is
  // never released (it is not ours), and the final output is the caller's to
  // release.
  Tensor X = Layers.front()->forwardBatch(In);
  for (size_t I = 1, E = Layers.size(); I != E; ++I) {
    Tensor Y = Layers[I]->forwardBatch(X);
    Workspace::release(X);
    X = std::move(Y);
  }
  return X;
}

Tensor Network::backwardBatch(const Tensor &GradOut) {
  assert(!Layers.empty() && "backwardBatch on an empty network");
  Tensor G = Layers.back()->backwardBatch(GradOut);
  for (size_t I = Layers.size() - 1; I-- > 0;) {
    Tensor H = Layers[I]->backwardBatch(G);
    Workspace::release(G);
    G = std::move(H);
  }
  return G;
}

std::vector<ParamView> Network::params() {
  std::vector<ParamView> All;
  for (auto &L : Layers)
    for (ParamView P : L->params())
      All.push_back(P);
  return All;
}

void Network::zeroGrads() {
  for (auto &L : Layers)
    L->zeroGrads();
}

size_t Network::numParams() {
  size_t N = 0;
  for (auto &L : Layers)
    N += L->numParams();
  return N;
}

size_t Network::sizeInBytes() {
  // float32 parameters plus an 8-byte count header per parameter tensor.
  size_t Bytes = 0;
  for (ParamView P : params())
    Bytes += 8 + P.Count * sizeof(float);
  return Bytes;
}

void Network::bumpParamGeneration() {
  for (auto &L : Layers)
    L->bumpParamGen();
}

void Network::copyParamsFrom(Network &Other) {
  std::vector<ParamView> Dst = params();
  std::vector<ParamView> Src = Other.params();
  assert(Dst.size() == Src.size() && "network architecture mismatch");
  for (size_t I = 0, E = Dst.size(); I != E; ++I) {
    assert(Dst[I].Count == Src[I].Count && "parameter tensor size mismatch");
    std::memcpy(Dst[I].Values, Src[I].Values, Dst[I].Count * sizeof(float));
  }
  bumpParamGeneration();
}

bool Network::saveParams(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = true;
  for (ParamView P : params()) {
    uint64_t N = P.Count;
    Ok = Ok && std::fwrite(&N, sizeof(N), 1, F) == 1;
    Ok = Ok && std::fwrite(P.Values, sizeof(float), P.Count, F) == P.Count;
  }
  std::fclose(F);
  return Ok;
}

bool Network::loadParams(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  bool Ok = true;
  for (ParamView P : params()) {
    uint64_t N = 0;
    Ok = Ok && std::fread(&N, sizeof(N), 1, F) == 1 && N == P.Count;
    Ok = Ok && std::fread(P.Values, sizeof(float), P.Count, F) == P.Count;
    if (!Ok)
      break;
  }
  std::fclose(F);
  if (Ok)
    bumpParamGeneration();
  return Ok;
}

Network au::nn::buildDnn(int InSize, const std::vector<int> &Hidden,
                         int OutSize, Rng &Rand) {
  assert(InSize > 0 && OutSize > 0 && "invalid DNN sizes");
  Network Net;
  int Prev = InSize;
  for (int H : Hidden) {
    Net.add(std::make_unique<Dense>(Prev, H, Rand));
    Net.add(std::make_unique<ReLU>());
    Prev = H;
  }
  Net.add(std::make_unique<Dense>(Prev, OutSize, Rand));
  return Net;
}

Network au::nn::buildDeepMindCnn(int Channels, int Side,
                                 const std::vector<int> &Hidden, int OutSize,
                                 Rng &Rand) {
  assert(Side >= 12 && Side % 4 == 0 &&
         "CNN input side must be >= 12 and divisible by 4");
  Network Net;
  // Accept flat inputs from the runtime's database store.
  Net.add(std::make_unique<Reshape>(std::vector<int>{Channels, Side, Side}));
  // Two conv+pool stages (a scaled-down version of the three-stage DeepMind
  // front end, matched to the small frames our simulators render).
  Net.add(std::make_unique<Conv2D>(Channels, 8, 3, 1, Rand));
  Net.add(std::make_unique<ReLU>());
  Net.add(std::make_unique<MaxPool2D>());
  Net.add(std::make_unique<Conv2D>(8, 16, 3, 1, Rand));
  Net.add(std::make_unique<ReLU>());
  Net.add(std::make_unique<MaxPool2D>());
  Net.add(std::make_unique<Flatten>());
  // Infer the flattened size by shape arithmetic: conv (valid, k=3) then
  // pool halves, twice.
  int S1 = (Side - 2) / 2;
  int S2 = (S1 - 2) / 2;
  assert(S2 > 0 && "CNN input too small for two conv/pool stages");
  int Prev = 16 * S2 * S2;
  for (int H : Hidden) {
    Net.add(std::make_unique<Dense>(Prev, H, Rand));
    Net.add(std::make_unique<ReLU>());
    Prev = H;
  }
  Net.add(std::make_unique<Dense>(Prev, OutSize, Rand));
  return Net;
}
