//===- nn/Loss.cpp - Loss functions ---------------------------------------===//

#include "nn/Loss.h"

#include "nn/Gemm.h"

#include <cassert>
#include <cmath>

using namespace au;
using namespace au::nn;

namespace {

/// Reshapes \p Grad to \p Pred's shape, reallocating only when the shape
/// actually changed — steady-state training reuses the same gradient buffer.
/// Contents after this call are unspecified; every loss below either writes
/// all elements or zero-fills explicitly.
void ensureGradShape(Tensor &Grad, const Tensor &Pred) {
  if (Grad.shape() != Pred.shape())
    Grad = Tensor(Pred.shape());
}

} // namespace

double au::nn::mseLoss(const Tensor &Pred, const Tensor &Target,
                       Tensor &Grad) {
  assert(Pred.size() == Target.size() && "loss size mismatch");
  assert(!Pred.empty() && "loss of empty tensors");
  ensureGradShape(Grad, Pred);
  double Loss = 0.0;
  double InvN = 1.0 / static_cast<double>(Pred.size());
  for (size_t I = 0, E = Pred.size(); I != E; ++I) {
    double D = Pred[I] - Target[I];
    Loss += D * D * InvN;
    Grad[I] = static_cast<float>(2.0 * D * InvN);
  }
  return Loss;
}

double au::nn::mseLossBatch(const Tensor &Pred, const Tensor &Target,
                            Tensor &Grad) {
  assert(Pred.rank() == 2 && Pred.shape() == Target.shape() &&
         "batched loss shape mismatch");
  assert(!Pred.empty() && "loss of empty tensors");
  ensureGradShape(Grad, Pred);
  return mseBatchKernel(Pred.data(), Target.data(), Grad.data(), Pred.dim(0),
                        Pred.dim(1));
}

double au::nn::huberLoss(const Tensor &Pred, const Tensor &Target,
                         Tensor &Grad) {
  assert(Pred.size() == Target.size() && "loss size mismatch");
  assert(!Pred.empty() && "loss of empty tensors");
  ensureGradShape(Grad, Pred);
  double Loss = 0.0;
  double InvN = 1.0 / static_cast<double>(Pred.size());
  for (size_t I = 0, E = Pred.size(); I != E; ++I) {
    double D = Pred[I] - Target[I];
    if (std::abs(D) <= 1.0) {
      Loss += 0.5 * D * D * InvN;
      Grad[I] = static_cast<float>(D * InvN);
    } else {
      Loss += (std::abs(D) - 0.5) * InvN;
      Grad[I] = static_cast<float>((D > 0 ? 1.0 : -1.0) * InvN);
    }
  }
  return Loss;
}

double au::nn::huberLossAt(const Tensor &Pred, size_t Index, float Target,
                           Tensor &Grad) {
  assert(Index < Pred.size() && "huberLossAt index out of range");
  ensureGradShape(Grad, Pred);
  Grad.fill(0.0f); // Only Index receives a gradient; the rest must be zero.
  double D = Pred[Index] - Target;
  if (std::abs(D) <= 1.0) {
    Grad[Index] = static_cast<float>(D);
    return 0.5 * D * D;
  }
  Grad[Index] = D > 0 ? 1.0f : -1.0f;
  return std::abs(D) - 0.5;
}
