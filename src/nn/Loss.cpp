//===- nn/Loss.cpp - Loss functions ---------------------------------------===//

#include "nn/Loss.h"

#include <cassert>
#include <cmath>

using namespace au;
using namespace au::nn;

double au::nn::mseLoss(const Tensor &Pred, const Tensor &Target,
                       Tensor &Grad) {
  assert(Pred.size() == Target.size() && "loss size mismatch");
  assert(!Pred.empty() && "loss of empty tensors");
  Grad = Tensor(Pred.shape());
  double Loss = 0.0;
  double InvN = 1.0 / static_cast<double>(Pred.size());
  for (size_t I = 0, E = Pred.size(); I != E; ++I) {
    double D = Pred[I] - Target[I];
    Loss += D * D * InvN;
    Grad[I] = static_cast<float>(2.0 * D * InvN);
  }
  return Loss;
}

double au::nn::mseLossBatch(const Tensor &Pred, const Tensor &Target,
                            Tensor &Grad) {
  assert(Pred.rank() == 2 && Pred.shape() == Target.shape() &&
         "batched loss shape mismatch");
  assert(!Pred.empty() && "loss of empty tensors");
  Grad = Tensor(Pred.shape());
  int BN = Pred.dim(0), N = Pred.dim(1);
  double InvN = 1.0 / static_cast<double>(N);
  double Loss = 0.0;
  const float *P = Pred.data(), *T = Target.data();
  float *G = Grad.data();
  for (int R = 0; R < BN; ++R) {
    double SampleLoss = 0.0;
    size_t Base = static_cast<size_t>(R) * N;
    for (int I = 0; I < N; ++I) {
      double D = P[Base + I] - T[Base + I];
      SampleLoss += D * D * InvN;
      G[Base + I] = static_cast<float>(2.0 * D * InvN);
    }
    Loss += SampleLoss;
  }
  return Loss;
}

double au::nn::huberLoss(const Tensor &Pred, const Tensor &Target,
                         Tensor &Grad) {
  assert(Pred.size() == Target.size() && "loss size mismatch");
  assert(!Pred.empty() && "loss of empty tensors");
  Grad = Tensor(Pred.shape());
  double Loss = 0.0;
  double InvN = 1.0 / static_cast<double>(Pred.size());
  for (size_t I = 0, E = Pred.size(); I != E; ++I) {
    double D = Pred[I] - Target[I];
    if (std::abs(D) <= 1.0) {
      Loss += 0.5 * D * D * InvN;
      Grad[I] = static_cast<float>(D * InvN);
    } else {
      Loss += (std::abs(D) - 0.5) * InvN;
      Grad[I] = static_cast<float>((D > 0 ? 1.0 : -1.0) * InvN);
    }
  }
  return Loss;
}

double au::nn::huberLossAt(const Tensor &Pred, size_t Index, float Target,
                           Tensor &Grad) {
  assert(Index < Pred.size() && "huberLossAt index out of range");
  Grad = Tensor(Pred.shape());
  double D = Pred[Index] - Target;
  if (std::abs(D) <= 1.0) {
    Grad[Index] = static_cast<float>(D);
    return 0.5 * D * D;
  }
  Grad[Index] = D > 0 ? 1.0f : -1.0f;
  return std::abs(D) - 0.5;
}
