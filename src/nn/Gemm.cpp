//===- nn/Gemm.cpp - Backend dispatch, SGEMM, and im2col kernels ---------===//

#include "nn/Gemm.h"

#include "nn/GemmSimdKernels.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace au;
using namespace au::nn;

//===----------------------------------------------------------------------===//
// Backend selection
//===----------------------------------------------------------------------===//

bool au::nn::simdSupported() {
#if defined(AU_NN_HAVE_SIMD) && (defined(__x86_64__) || defined(__i386__))
  static const bool Supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return Supported;
#else
  return false;
#endif
}

namespace {

Backend clampToHardware(Backend B) {
  if (B == Backend::Simd && !simdSupported())
    return Backend::Blocked;
  return B;
}

Backend readBackendFromEnv() {
  const char *Env = std::getenv("AU_NN_BACKEND");
  if (Env) {
    if (std::strcmp(Env, "naive") == 0)
      return Backend::Naive;
    if (std::strcmp(Env, "blocked") == 0 || std::strcmp(Env, "gemm") == 0)
      return Backend::Blocked;
    if (std::strcmp(Env, "simd") == 0)
      return clampToHardware(Backend::Simd);
  }
  return clampToHardware(Backend::Simd);
}

Backend ActiveBackend = readBackendFromEnv();

// Per-thread packing scratch. Packing happens on the thread issuing the GEMM
// (before any parallel region), so concurrent GEMMs from different pool
// workers never share a buffer; capacity persists, so steady-state calls do
// not allocate.
thread_local std::vector<float> PackABuf;
thread_local std::vector<float> PackBBuf;

/// Packs the transpose of the Rows x Cols row-major matrix \p Src (stride
/// \p Ld) into \p Dst as a Cols x Rows row-major matrix.
void packTranspose(const float *Src, int Rows, int Cols, int Ld, float *Dst) {
  for (int R = 0; R < Rows; ++R) {
    const float *SrcRow = Src + static_cast<size_t>(R) * Ld;
    for (int C = 0; C < Cols; ++C)
      Dst[static_cast<size_t>(C) * Rows + R] = SrcRow[C];
  }
}

/// Grows \p Buf without shrinking so its capacity converges on the session
/// high-water mark.
float *reserveScratch(std::vector<float> &Buf, size_t N) {
  if (Buf.size() < N)
    Buf.resize(N);
  return Buf.data();
}

} // namespace

Backend au::nn::backend() { return ActiveBackend; }

Backend au::nn::defaultBackend() {
  static const Backend Default = readBackendFromEnv();
  return Default;
}

void au::nn::setBackend(Backend B) { ActiveBackend = clampToHardware(B); }

const char *au::nn::backendName(Backend B) {
  switch (B) {
  case Backend::Simd:
    return "simd";
  case Backend::Blocked:
    return "blocked";
  case Backend::Naive:
    return "naive";
  }
  return "unknown";
}

Backend au::nn::packEngine() {
  // The naive backend keeps layers on their scalar per-sample paths; any
  // explicit sgemm call it still issues runs the blocked kernel.
  return ActiveBackend == Backend::Simd ? Backend::Simd : Backend::Blocked;
}

bool au::nn::simdKernelsActive() { return ActiveBackend == Backend::Simd; }

//===----------------------------------------------------------------------===//
// Blocked-scalar SGEMM (portable fallback; reference rounding for tests)
//===----------------------------------------------------------------------===//

namespace {

/// Row-major op(A)[M][K] * op(B)[K][N] over already-normalized operands.
/// Each task owns whole rows of C, blocks over K so the touched slice of B
/// stays cache-resident, and accumulates every C element in ascending-k
/// order — bitwise identical at any thread count.
void sgemmBlockedCore(int M, int N, int K, float Alpha, const float *AP,
                      int ALd, const float *BP, int BLd, float Beta, float *C,
                      int Ldc) {
  constexpr int KBlock = 256;
  size_t FlopsPerRow = static_cast<size_t>(std::max(1, K)) * N;
  size_t Grain = std::max<size_t>(1, 32768 / FlopsPerRow);
  ThreadPool::global().parallelFor(0, static_cast<size_t>(M), Grain,
                                   [&](size_t RowB, size_t RowE) {
    for (size_t I = RowB; I != RowE; ++I) {
      float *CRow = C + I * Ldc;
      if (Beta == 0.0f)
        std::fill(CRow, CRow + N, 0.0f);
      else if (Beta != 1.0f)
        for (int J = 0; J < N; ++J)
          CRow[J] *= Beta;
    }
    for (int K0 = 0; K0 < K; K0 += KBlock) {
      int K1 = std::min(K, K0 + KBlock);
      for (size_t I = RowB; I != RowE; ++I) {
        const float *ARow = AP + I * ALd;
        float *CRow = C + I * Ldc;
        // 4-way k unroll: one pass over CRow folds in four B rows, cutting
        // C traffic 4x. The unroll boundaries depend only on (K0, K1), so
        // the summation order is identical at any thread count.
        int Kk = K0;
        for (; Kk + 3 < K1; Kk += 4) {
          float A0 = Alpha * ARow[Kk], A1 = Alpha * ARow[Kk + 1];
          float A2 = Alpha * ARow[Kk + 2], A3 = Alpha * ARow[Kk + 3];
          const float *B0 = BP + static_cast<size_t>(Kk) * BLd;
          const float *B1 = B0 + BLd, *B2 = B1 + BLd, *B3 = B2 + BLd;
          for (int J = 0; J < N; ++J)
            CRow[J] += A0 * B0[J] + A1 * B1[J] + A2 * B2[J] + A3 * B3[J];
        }
        for (; Kk < K1; ++Kk) {
          float AV = Alpha * ARow[Kk];
          if (AV == 0.0f)
            continue;
          const float *BRow = BP + static_cast<size_t>(Kk) * BLd;
          for (int J = 0; J < N; ++J)
            CRow[J] += AV * BRow[J];
        }
      }
    }
  });
}

/// Panel-packed simd GEMM core: row panels of 6 are distributed across the
/// pool; panel boundaries are a pure function of M, and each C element is one
/// k-ascending FMA chain, so results are thread-count independent. BiasRow,
/// when non-null, seeds each output row's accumulators (conv forward fusion;
/// requires Alpha == 1, Beta == 0).
void sgemmSimdCore(int M, int N, int K, float Alpha, const float *APanels,
                   const float *BPanels, float Beta, float *C, int Ldc,
                   const float *BiasRow = nullptr) {
  size_t NPanels = static_cast<size_t>(simd::numAPanels(M));
  size_t FlopsPerPanel =
      static_cast<size_t>(simd::MR) * std::max(1, K) * std::max(1, N);
  size_t Grain = std::max<size_t>(1, 262144 / FlopsPerPanel);
  ThreadPool::global().parallelFor(0, NPanels, Grain,
                                   [&](size_t PB, size_t PE) {
    simd::microKernelRange(static_cast<int>(PB), static_cast<int>(PE), M, N,
                           K, Alpha, APanels, BPanels, Beta, BiasRow, C, Ldc);
  });
}

/// Scales C by Beta (the K == 0 degenerate case, where no product term
/// exists and the packed-panel kernels would be called with empty panels).
void scaleC(int M, int N, float Beta, float *C, int Ldc) {
  for (int I = 0; I < M; ++I) {
    float *CRow = C + static_cast<size_t>(I) * Ldc;
    if (Beta == 0.0f)
      std::fill(CRow, CRow + N, 0.0f);
    else if (Beta != 1.0f)
      for (int J = 0; J < N; ++J)
        CRow[J] *= Beta;
  }
}

} // namespace

void au::nn::sgemm(bool TransA, bool TransB, int M, int N, int K, float Alpha,
                   const float *A, int Lda, const float *B, int Ldb,
                   float Beta, float *C, int Ldc) {
  assert(M >= 0 && N >= 0 && K >= 0 && "negative GEMM extents");
  if (M == 0 || N == 0)
    return;
  if (K == 0) {
    scaleC(M, N, Beta, C, Ldc);
    return;
  }

  if (packEngine() == Backend::Simd) {
    float *AP = reserveScratch(PackABuf, simd::aPanelsSize(M, K));
    simd::packAPanels(A, Lda, TransA, M, K, AP);
    float *BP = reserveScratch(PackBBuf, simd::bPanelsSize(K, N));
    simd::packBPanels(B, Ldb, TransB, K, N, BP);
    sgemmSimdCore(M, N, K, Alpha, AP, BP, Beta, C, Ldc);
    return;
  }

  // Normalize both operands to row-major op(A)[M][K] / op(B)[K][N] so the
  // blocked kernel always streams unit-stride rows.
  const float *AP = A;
  int ALd = Lda;
  if (TransA) {
    float *Buf = reserveScratch(PackABuf, static_cast<size_t>(M) * K);
    packTranspose(A, K, M, Lda, Buf);
    AP = Buf;
    ALd = K;
  }
  const float *BP = B;
  int BLd = Ldb;
  if (TransB) {
    float *Buf = reserveScratch(PackBBuf, static_cast<size_t>(K) * N);
    packTranspose(B, N, K, Ldb, Buf);
    BP = Buf;
    BLd = N;
  }
  sgemmBlockedCore(M, N, K, Alpha, AP, ALd, BP, BLd, Beta, C, Ldc);
}

//===----------------------------------------------------------------------===//
// Pre-packed operands
//===----------------------------------------------------------------------===//

void au::nn::ensurePackedA(PackedOperand &P, uint64_t Gen, bool TransA, int M,
                           int K, const float *A, int Lda) {
  Backend Engine = packEngine();
  if (P.fresh(Engine, Gen) && P.Rows == M && P.Cols == K)
    return;
  P.Rows = M;
  P.Cols = K;
  P.For = Engine;
  P.Gen = Gen;
  P.Present = true;
  if (Engine == Backend::Simd) {
    size_t Need = simd::aPanelsSize(M, K);
    if (P.Data.size() < Need)
      P.Data.resize(Need);
    simd::packAPanels(A, Lda, TransA, M, K, P.Data.data());
    return;
  }
  // Blocked layout: plain row-major op(A)[M][K].
  size_t Need = static_cast<size_t>(M) * K;
  if (P.Data.size() < Need)
    P.Data.resize(Need);
  if (TransA)
    packTranspose(A, K, M, Lda, P.Data.data());
  else
    for (int I = 0; I < M; ++I)
      std::memcpy(P.Data.data() + static_cast<size_t>(I) * K,
                  A + static_cast<size_t>(I) * Lda, sizeof(float) * K);
}

void au::nn::ensurePackedB(PackedOperand &P, uint64_t Gen, bool TransB, int K,
                           int N, const float *B, int Ldb) {
  Backend Engine = packEngine();
  if (P.fresh(Engine, Gen) && P.Rows == K && P.Cols == N)
    return;
  P.Rows = K;
  P.Cols = N;
  P.For = Engine;
  P.Gen = Gen;
  P.Present = true;
  if (Engine == Backend::Simd) {
    size_t Need = simd::bPanelsSize(K, N);
    if (P.Data.size() < Need)
      P.Data.resize(Need);
    simd::packBPanels(B, Ldb, TransB, K, N, P.Data.data());
    return;
  }
  size_t Need = static_cast<size_t>(K) * N;
  if (P.Data.size() < Need)
    P.Data.resize(Need);
  if (TransB)
    packTranspose(B, N, K, Ldb, P.Data.data());
  else
    for (int I = 0; I < K; ++I)
      std::memcpy(P.Data.data() + static_cast<size_t>(I) * N,
                  B + static_cast<size_t>(I) * Ldb, sizeof(float) * N);
}

void au::nn::sgemmPackedA(const PackedOperand &PA, bool TransB, int M, int N,
                          int K, float Alpha, const float *B, int Ldb,
                          float Beta, float *C, int Ldc) {
  assert(PA.Present && PA.For == packEngine() && "stale packed operand");
  assert(PA.Rows == M && PA.Cols == K && "packed operand extent mismatch");
  if (M == 0 || N == 0)
    return;
  if (K == 0) {
    scaleC(M, N, Beta, C, Ldc);
    return;
  }
  if (PA.For == Backend::Simd) {
    float *BP = reserveScratch(PackBBuf, simd::bPanelsSize(K, N));
    simd::packBPanels(B, Ldb, TransB, K, N, BP);
    sgemmSimdCore(M, N, K, Alpha, PA.Data.data(), BP, Beta, C, Ldc);
    return;
  }
  const float *BP = B;
  int BLd = Ldb;
  if (TransB) {
    float *Buf = reserveScratch(PackBBuf, static_cast<size_t>(K) * N);
    packTranspose(B, N, K, Ldb, Buf);
    BP = Buf;
    BLd = N;
  }
  sgemmBlockedCore(M, N, K, Alpha, PA.Data.data(), K, BP, BLd, Beta, C, Ldc);
}

void au::nn::sgemmPackedB(bool TransA, const PackedOperand &PB, int M, int N,
                          int K, float Alpha, const float *A, int Lda,
                          float Beta, float *C, int Ldc) {
  assert(PB.Present && PB.For == packEngine() && "stale packed operand");
  assert(PB.Rows == K && PB.Cols == N && "packed operand extent mismatch");
  if (M == 0 || N == 0)
    return;
  if (K == 0) {
    scaleC(M, N, Beta, C, Ldc);
    return;
  }
  if (PB.For == Backend::Simd) {
    float *AP = reserveScratch(PackABuf, simd::aPanelsSize(M, K));
    simd::packAPanels(A, Lda, TransA, M, K, AP);
    sgemmSimdCore(M, N, K, Alpha, AP, PB.Data.data(), Beta, C, Ldc);
    return;
  }
  const float *AP = A;
  int ALd = Lda;
  if (TransA) {
    float *Buf = reserveScratch(PackABuf, static_cast<size_t>(M) * K);
    packTranspose(A, K, M, Lda, Buf);
    AP = Buf;
    ALd = K;
  }
  sgemmBlockedCore(M, N, K, Alpha, AP, ALd, PB.Data.data(), N, Beta, C, Ldc);
}

//===----------------------------------------------------------------------===//
// Elementwise kernels
//===----------------------------------------------------------------------===//

void au::nn::reluForwardKernel(float *Y, size_t N) {
  if (simdKernelsActive()) {
    simd::reluForwardAvx(Y, N);
    return;
  }
  for (size_t I = 0; I != N; ++I)
    Y[I] = Y[I] > 0.0f ? Y[I] : 0.0f;
}

void au::nn::reluBackwardKernel(float *G, const float *X, size_t N) {
  if (simdKernelsActive()) {
    simd::reluBackwardAvx(G, X, N);
    return;
  }
  for (size_t I = 0; I != N; ++I)
    if (X[I] <= 0.0f)
      G[I] = 0.0f;
}

void au::nn::biasAddRowsKernel(float *Y, const float *Bias, int Rows,
                               int Cols) {
  if (simdKernelsActive()) {
    simd::biasAddRowsAvx(Y, Bias, Rows, Cols);
    return;
  }
  for (int R = 0; R < Rows; ++R)
    std::memcpy(Y + static_cast<size_t>(R) * Cols, Bias,
                sizeof(float) * Cols);
}

double au::nn::mseBatchKernel(const float *P, const float *T, float *G,
                              int Rows, int Cols) {
  if (simdKernelsActive())
    return simd::mseBatchAvx(P, T, G, Rows, Cols);
  // Scalar reference: accumulation order and rounding match the original
  // per-element loop bitwise (each term is scaled by InvN before summing).
  double Loss = 0.0;
  double InvN = 1.0 / Cols;
  for (int R = 0; R < Rows; ++R) {
    size_t Base = static_cast<size_t>(R) * Cols;
    double RowSum = 0.0;
    for (int I = 0; I < Cols; ++I) {
      double D = static_cast<double>(P[Base + I]) - T[Base + I];
      RowSum += D * D * InvN;
      G[Base + I] = static_cast<float>(2.0 * D * InvN);
    }
    Loss += RowSum;
  }
  return Loss;
}

void au::nn::adamUpdateKernel(float *W, float *G, float *M, float *V,
                              size_t N, float Lr, float B1, float B2,
                              float Eps, float InvBias1, float InvBias2,
                              float Scale) {
  if (simdKernelsActive()) {
    simd::adamUpdateAvx(W, G, M, V, N, Lr, B1, B2, Eps, InvBias1, InvBias2,
                        Scale);
    return;
  }
  for (size_t I = 0; I != N; ++I) {
    float Gs = G[I] * Scale;
    M[I] = B1 * M[I] + (1.0f - B1) * Gs;
    V[I] = B2 * V[I] + (1.0f - B2) * Gs * Gs;
    float MHat = M[I] * InvBias1;
    float VHat = V[I] * InvBias2;
    W[I] -= Lr * MHat / (std::sqrt(VHat) + Eps);
    G[I] = 0.0f;
  }
}

void au::nn::sgemmConvBias(const PackedOperand &PA, int M, int N, int K,
                           const float *B, int Ldb, const float *Bias,
                           float *C, int Ldc) {
  assert(PA.Present && PA.For == Backend::Simd && "needs simd-packed A");
  assert(PA.Rows == M && PA.Cols == K && "packed operand extent mismatch");
  assert(M > 0 && N > 0 && K > 0 && "degenerate conv GEMM");
  float *BP = reserveScratch(PackBBuf, simd::bPanelsSize(K, N));
  simd::packBPanels(B, Ldb, /*Trans=*/false, K, N, BP);
  sgemmSimdCore(M, N, K, 1.0f, PA.Data.data(), BP, 0.0f, C, Ldc, Bias);
}

//===----------------------------------------------------------------------===//
// im2col / col2im
//===----------------------------------------------------------------------===//

void au::nn::im2col(const float *In, int C, int H, int W, int K, int S,
                    float *Col) {
  if (simdKernelsActive()) {
    simd::im2colAvx(In, C, H, W, K, S, Col);
    return;
  }
  int OH = convOutDim(H, K, S), OW = convOutDim(W, K, S);
  assert(OH > 0 && OW > 0 && "convolution input smaller than kernel");
  size_t OutRow = static_cast<size_t>(OH) * OW;
  for (int Ch = 0; Ch < C; ++Ch)
    for (int Ky = 0; Ky < K; ++Ky)
      for (int Kx = 0; Kx < K; ++Kx) {
        float *Dst = Col + (((static_cast<size_t>(Ch) * K + Ky) * K + Kx) *
                            OutRow);
        const float *Plane =
            In + (static_cast<size_t>(Ch) * H + Ky) * W + Kx;
        for (int Oy = 0; Oy < OH; ++Oy) {
          const float *Src = Plane + static_cast<size_t>(Oy) * S * W;
          if (S == 1) {
            std::memcpy(Dst, Src, sizeof(float) * OW);
            Dst += OW;
          } else {
            for (int Ox = 0; Ox < OW; ++Ox)
              *Dst++ = Src[static_cast<size_t>(Ox) * S];
          }
        }
      }
}

void au::nn::col2im(const float *Col, int C, int H, int W, int K, int S,
                    float *In) {
  int OH = convOutDim(H, K, S), OW = convOutDim(W, K, S);
  assert(OH > 0 && OW > 0 && "convolution input smaller than kernel");
  for (int Ch = 0; Ch < C; ++Ch)
    for (int Ky = 0; Ky < K; ++Ky)
      for (int Kx = 0; Kx < K; ++Kx) {
        const float *Src = Col + (((static_cast<size_t>(Ch) * K + Ky) * K +
                                   Kx) *
                                  OH * OW);
        float *Plane = In + (static_cast<size_t>(Ch) * H + Ky) * W + Kx;
        for (int Oy = 0; Oy < OH; ++Oy) {
          float *Dst = Plane + static_cast<size_t>(Oy) * S * W;
          for (int Ox = 0; Ox < OW; ++Ox)
            Dst[static_cast<size_t>(Ox) * S] += *Src++;
        }
      }
}
