//===- nn/Gemm.cpp - Blocked SGEMM and im2col kernels --------------------===//

#include "nn/Gemm.h"

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <vector>

using namespace au;
using namespace au::nn;

//===----------------------------------------------------------------------===//
// Backend selection
//===----------------------------------------------------------------------===//

namespace {

Backend readBackendFromEnv() {
  const char *Env = std::getenv("AU_NN_BACKEND");
  if (Env && std::strcmp(Env, "naive") == 0)
    return Backend::Naive;
  return Backend::Gemm;
}

Backend ActiveBackend = readBackendFromEnv();

// Per-thread packing scratch for transposed operands. Packing happens on the
// thread issuing the GEMM (before any parallel region), so concurrent GEMMs
// from different pool workers never share a buffer.
thread_local std::vector<float> PackABuf;
thread_local std::vector<float> PackBBuf;

/// Packs the transpose of the Rows x Cols row-major matrix \p Src (stride
/// \p Ld) into \p Dst as a Cols x Rows row-major matrix.
void packTranspose(const float *Src, int Rows, int Cols, int Ld, float *Dst) {
  for (int R = 0; R < Rows; ++R) {
    const float *SrcRow = Src + static_cast<size_t>(R) * Ld;
    for (int C = 0; C < Cols; ++C)
      Dst[static_cast<size_t>(C) * Rows + R] = SrcRow[C];
  }
}

} // namespace

Backend au::nn::backend() { return ActiveBackend; }

void au::nn::setBackend(Backend B) { ActiveBackend = B; }

//===----------------------------------------------------------------------===//
// SGEMM
//===----------------------------------------------------------------------===//

void au::nn::sgemm(bool TransA, bool TransB, int M, int N, int K, float Alpha,
                   const float *A, int Lda, const float *B, int Ldb,
                   float Beta, float *C, int Ldc) {
  assert(M >= 0 && N >= 0 && K >= 0 && "negative GEMM extents");
  if (M == 0 || N == 0)
    return;

  // Normalize both operands to row-major op(A)[M][K] / op(B)[K][N] so the
  // kernel below always streams unit-stride rows.
  const float *AP = A;
  int ALd = Lda;
  if (TransA) {
    PackABuf.resize(static_cast<size_t>(M) * K);
    packTranspose(A, K, M, Lda, PackABuf.data());
    AP = PackABuf.data();
    ALd = K;
  }
  const float *BP = B;
  int BLd = Ldb;
  if (TransB) {
    PackBBuf.resize(static_cast<size_t>(K) * N);
    packTranspose(B, N, K, Ldb, PackBBuf.data());
    BP = PackBBuf.data();
    BLd = N;
  }

  // Blocked row-parallel kernel: each task owns whole rows of C, blocks over
  // K so the touched slice of B stays cache-resident, and accumulates every
  // C element in ascending-k order — bitwise identical at any thread count.
  constexpr int KBlock = 256;
  size_t FlopsPerRow = static_cast<size_t>(std::max(1, K)) * N;
  size_t Grain = std::max<size_t>(1, 32768 / FlopsPerRow);
  ThreadPool::global().parallelFor(0, static_cast<size_t>(M), Grain,
                                   [&](size_t RowB, size_t RowE) {
    for (size_t I = RowB; I != RowE; ++I) {
      float *CRow = C + I * Ldc;
      if (Beta == 0.0f)
        std::fill(CRow, CRow + N, 0.0f);
      else if (Beta != 1.0f)
        for (int J = 0; J < N; ++J)
          CRow[J] *= Beta;
    }
    for (int K0 = 0; K0 < K; K0 += KBlock) {
      int K1 = std::min(K, K0 + KBlock);
      for (size_t I = RowB; I != RowE; ++I) {
        const float *ARow = AP + I * ALd;
        float *CRow = C + I * Ldc;
        // 4-way k unroll: one pass over CRow folds in four B rows, cutting
        // C traffic 4x. The unroll boundaries depend only on (K0, K1), so
        // the summation order is identical at any thread count.
        int Kk = K0;
        for (; Kk + 3 < K1; Kk += 4) {
          float A0 = Alpha * ARow[Kk], A1 = Alpha * ARow[Kk + 1];
          float A2 = Alpha * ARow[Kk + 2], A3 = Alpha * ARow[Kk + 3];
          const float *B0 = BP + static_cast<size_t>(Kk) * BLd;
          const float *B1 = B0 + BLd, *B2 = B1 + BLd, *B3 = B2 + BLd;
          for (int J = 0; J < N; ++J)
            CRow[J] += A0 * B0[J] + A1 * B1[J] + A2 * B2[J] + A3 * B3[J];
        }
        for (; Kk < K1; ++Kk) {
          float AV = Alpha * ARow[Kk];
          if (AV == 0.0f)
            continue;
          const float *BRow = BP + static_cast<size_t>(Kk) * BLd;
          for (int J = 0; J < N; ++J)
            CRow[J] += AV * BRow[J];
        }
      }
    }
  });
}

//===----------------------------------------------------------------------===//
// im2col / col2im
//===----------------------------------------------------------------------===//

void au::nn::im2col(const float *In, int C, int H, int W, int K, int S,
                    float *Col) {
  int OH = convOutDim(H, K, S), OW = convOutDim(W, K, S);
  assert(OH > 0 && OW > 0 && "convolution input smaller than kernel");
  size_t OutRow = static_cast<size_t>(OH) * OW;
  for (int Ch = 0; Ch < C; ++Ch)
    for (int Ky = 0; Ky < K; ++Ky)
      for (int Kx = 0; Kx < K; ++Kx) {
        float *Dst = Col + (((static_cast<size_t>(Ch) * K + Ky) * K + Kx) *
                            OutRow);
        const float *Plane =
            In + (static_cast<size_t>(Ch) * H + Ky) * W + Kx;
        for (int Oy = 0; Oy < OH; ++Oy) {
          const float *Src = Plane + static_cast<size_t>(Oy) * S * W;
          if (S == 1) {
            std::memcpy(Dst, Src, sizeof(float) * OW);
            Dst += OW;
          } else {
            for (int Ox = 0; Ox < OW; ++Ox)
              *Dst++ = Src[static_cast<size_t>(Ox) * S];
          }
        }
      }
}

void au::nn::col2im(const float *Col, int C, int H, int W, int K, int S,
                    float *In) {
  int OH = convOutDim(H, K, S), OW = convOutDim(W, K, S);
  assert(OH > 0 && OW > 0 && "convolution input smaller than kernel");
  for (int Ch = 0; Ch < C; ++Ch)
    for (int Ky = 0; Ky < K; ++Ky)
      for (int Kx = 0; Kx < K; ++Kx) {
        const float *Src = Col + (((static_cast<size_t>(Ch) * K + Ky) * K +
                                   Kx) *
                                  OH * OW);
        float *Plane = In + (static_cast<size_t>(Ch) * H + Ky) * W + Kx;
        for (int Oy = 0; Oy < OH; ++Oy) {
          float *Dst = Plane + static_cast<size_t>(Oy) * S * W;
          for (int Ox = 0; Ox < OW; ++Ox)
            Dst[static_cast<size_t>(Ox) * S] += *Src++;
        }
      }
}
