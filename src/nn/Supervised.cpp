//===- nn/Supervised.cpp - Supervised (AdamOpt) trainer ------------------===//

#include "nn/Supervised.h"

#include "nn/Gemm.h"
#include "nn/Loss.h"
#include "nn/Workspace.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace au;
using namespace au::nn;

SupervisedTrainer::SupervisedTrainer(Network N, double LearningRate)
    : Net(std::move(N)), Opt(Net, LearningRate) {}

void SupervisedTrainer::addSample(std::vector<float> X, std::vector<float> Y) {
  assert(!X.empty() && !Y.empty() && "empty sample");
  if (!Data.empty()) {
    assert(X.size() == Data.front().X.size() && "inconsistent feature size");
    assert(Y.size() == Data.front().Y.size() && "inconsistent target size");
  }
  Data.push_back({std::move(X), std::move(Y)});
  Normalized = false;
}

void SupervisedTrainer::computeNormalization() {
  size_t NX = Data.front().X.size(), NY = Data.front().Y.size();
  XMean.assign(NX, 0.0f);
  XStd.assign(NX, 0.0f);
  YMean.assign(NY, 0.0f);
  YStd.assign(NY, 0.0f);
  double InvN = 1.0 / static_cast<double>(Data.size());
  for (const Sample &S : Data) {
    for (size_t I = 0; I != NX; ++I)
      XMean[I] += static_cast<float>(S.X[I] * InvN);
    for (size_t I = 0; I != NY; ++I)
      YMean[I] += static_cast<float>(S.Y[I] * InvN);
  }
  for (const Sample &S : Data) {
    for (size_t I = 0; I != NX; ++I)
      XStd[I] += static_cast<float>((S.X[I] - XMean[I]) * (S.X[I] - XMean[I]) *
                                    InvN);
    for (size_t I = 0; I != NY; ++I)
      YStd[I] += static_cast<float>((S.Y[I] - YMean[I]) * (S.Y[I] - YMean[I]) *
                                    InvN);
  }
  for (float &V : XStd)
    V = V > 1e-12f ? std::sqrt(V) : 1.0f;
  for (float &V : YStd)
    V = V > 1e-12f ? std::sqrt(V) : 1.0f;
  Normalized = true;
}

Tensor SupervisedTrainer::normalizeX(const std::vector<float> &X) const {
  assert(X.size() == XMean.size() && "feature size mismatch");
  Tensor T(std::vector<int>{static_cast<int>(X.size())});
  for (size_t I = 0, E = X.size(); I != E; ++I)
    T[I] = (X[I] - XMean[I]) / XStd[I];
  return T;
}

double SupervisedTrainer::train(int Epochs, int BatchSize, Rng &Rand) {
  if (Data.empty())
    return 0.0;
  assert(Epochs > 0 && BatchSize > 0 && "invalid training schedule");
  if (!Normalized)
    computeNormalization();

  std::vector<size_t> Order(Data.size());
  for (size_t I = 0; I != Order.size(); ++I)
    Order[I] = I;

  const bool Batched = backend() != Backend::Naive;
  size_t NX = Data.front().X.size(), NY = Data.front().Y.size();
  // Double-buffered minibatch staging: while the engine trains on one slot,
  // a pool worker extracts (normalizes and packs) the next minibatch into
  // the other (the SL prefetch stage of DESIGN.md §8). The fill is a pure
  // function of (Data, Order, Start), so overlap cannot change any value;
  // with no workers the fill simply runs inline before each batch.
  struct BatchSlot {
    Tensor X, Y;
    size_t Bn = 0;
  };
  BatchSlot Slots[2];
  Tensor GradB;
  auto fillSlot = [&](BatchSlot &S, size_t Start) {
    size_t Bn =
        std::min<size_t>(static_cast<size_t>(BatchSize), Order.size() - Start);
    if (S.X.rank() != 2 || S.X.dim(0) != static_cast<int>(Bn)) {
      S.X = Tensor({static_cast<int>(Bn), static_cast<int>(NX)});
      S.Y = Tensor({static_cast<int>(Bn), static_cast<int>(NY)});
    }
    S.Bn = Bn;
    for (size_t R = 0; R != Bn; ++R) {
      const Sample &Smp = Data[Order[Start + R]];
      float *XRow = S.X.sampleData(static_cast<int>(R));
      for (size_t I = 0; I != NX; ++I)
        XRow[I] = (Smp.X[I] - XMean[I]) / XStd[I];
      float *YRow = S.Y.sampleData(static_cast<int>(R));
      for (size_t I = 0; I != NY; ++I)
        YRow[I] = (Smp.Y[I] - YMean[I]) / YStd[I];
    }
  };
  ThreadPool &Pool = ThreadPool::global();

  double EpochLoss = 0.0;
  for (int Ep = 0; Ep < Epochs; ++Ep) {
    // Fisher-Yates shuffle with the deterministic RNG.
    for (size_t I = Order.size(); I > 1; --I)
      std::swap(Order[I - 1], Order[Rand.uniformInt(I)]);

    EpochLoss = 0.0;
    if (Batched) {
      // One batched forward/backward per minibatch; gradients accumulate
      // summed over the batch exactly as the per-sample path does. The
      // epoch's batch boundaries are fixed before it starts, so slot B+1
      // can be produced while slot B trains.
      size_t NumBatches =
          (Order.size() + static_cast<size_t>(BatchSize) - 1) /
          static_cast<size_t>(BatchSize);
      fillSlot(Slots[0], 0);
      ThreadPool::TaskHandle Prefetch;
      for (size_t B = 0; B != NumBatches; ++B) {
        size_t NextStart = (B + 1) * static_cast<size_t>(BatchSize);
        if (NextStart < Order.size()) {
          BatchSlot *NextSlot = &Slots[(B + 1) % 2];
          if (Pool.hasWorkers())
            Prefetch = Pool.async([&fillSlot, NextSlot, NextStart] {
              fillSlot(*NextSlot, NextStart);
            });
          else // Inline fill: skip the task's type-erasure allocation.
            fillSlot(*NextSlot, NextStart);
        }
        BatchSlot &S = Slots[B % 2];
        Tensor Pred = Net.forwardBatch(S.X);
        EpochLoss += mseLossBatch(Pred, S.Y, GradB);
        Workspace::release(Pred);
        Tensor DIn = Net.backwardBatch(GradB);
        Workspace::release(DIn);
        Opt.step(1.0 / static_cast<double>(S.Bn));
        if (Prefetch.valid())
          Prefetch.wait(); // The next slot must be complete before use.
      }
    } else {
      size_t InBatch = 0;
      for (size_t Pos = 0; Pos != Order.size(); ++Pos) {
        const Sample &S = Data[Order[Pos]];
        Tensor X = normalizeX(S.X);
        Tensor YT(std::vector<int>{static_cast<int>(S.Y.size())});
        for (size_t I = 0; I != S.Y.size(); ++I)
          YT[I] = (S.Y[I] - YMean[I]) / YStd[I];

        Tensor Pred = Net.forward(X);
        Tensor Grad;
        EpochLoss += mseLoss(Pred, YT, Grad);
        Net.backward(Grad);
        ++InBatch;
        if (InBatch == static_cast<size_t>(BatchSize) ||
            Pos + 1 == Order.size()) {
          Opt.step(1.0 / static_cast<double>(InBatch));
          InBatch = 0;
        }
      }
    }
    EpochLoss /= static_cast<double>(Data.size());
  }
  return EpochLoss;
}

std::vector<float> SupervisedTrainer::predict(const std::vector<float> &X) {
  assert(Normalized && "predict before train");
  Tensor Out;
  if (backend() != Backend::Naive)
    Out = Net.forwardBatch(
        normalizeX(X).reshaped({1, static_cast<int>(X.size())}));
  else
    Out = Net.forward(normalizeX(X));
  std::vector<float> Y(Out.size());
  for (size_t I = 0, E = Out.size(); I != E; ++I)
    Y[I] = Out[I] * YStd[I] + YMean[I];
  Workspace::release(Out);
  return Y;
}

std::vector<std::vector<float>>
SupervisedTrainer::predictBatch(const std::vector<std::vector<float>> &Xs) {
  assert(Normalized && "predict before train");
  std::vector<std::vector<float>> Out;
  if (Xs.empty())
    return Out;
  Out.reserve(Xs.size());
  if (backend() == Backend::Naive) {
    for (const std::vector<float> &X : Xs)
      Out.push_back(predict(X));
    return Out;
  }
  size_t NX = XMean.size(), NY = YMean.size();
  Tensor XB({static_cast<int>(Xs.size()), static_cast<int>(NX)});
  for (size_t R = 0; R != Xs.size(); ++R) {
    assert(Xs[R].size() == NX && "feature size mismatch");
    float *Row = XB.sampleData(static_cast<int>(R));
    for (size_t I = 0; I != NX; ++I)
      Row[I] = (Xs[R][I] - XMean[I]) / XStd[I];
  }
  Tensor Pred = Net.forwardBatch(XB);
  for (size_t R = 0; R != Xs.size(); ++R) {
    const float *Row = Pred.sampleData(static_cast<int>(R));
    std::vector<float> Y(NY);
    for (size_t I = 0; I != NY; ++I)
      Y[I] = Row[I] * YStd[I] + YMean[I];
    Out.push_back(std::move(Y));
  }
  Workspace::release(Pred);
  return Out;
}

void SupervisedTrainer::predictRowsInto(const float *Xs, int Rows,
                                        std::vector<float> &Out) {
  assert(Normalized && "predict before train");
  assert(Xs && Rows > 0 && "invalid row buffer");
  const size_t NX = XMean.size(), NY = YMean.size();

  if (backend() == Backend::Naive) {
    // The naive engine has no batched entry; run rows one by one.
    Out.resize(static_cast<size_t>(Rows) * NY);
    for (int R = 0; R != Rows; ++R) {
      Tensor T(std::vector<int>{static_cast<int>(NX)});
      const float *Row = Xs + static_cast<size_t>(R) * NX;
      for (size_t I = 0; I != NX; ++I)
        T[I] = (Row[I] - XMean[I]) / XStd[I];
      Tensor Pred = Net.forward(T);
      assert(Pred.size() == NY && "model output size mismatch");
      for (size_t I = 0; I != NY; ++I)
        Out[static_cast<size_t>(R) * NY + I] = Pred[I] * YStd[I] + YMean[I];
    }
    return;
  }

  if (RowStaging.rank() != 2 || RowStaging.dim(0) != Rows ||
      RowStaging.dim(1) != static_cast<int>(NX))
    RowStaging = Tensor({Rows, static_cast<int>(NX)});
  for (int R = 0; R != Rows; ++R) {
    const float *Row = Xs + static_cast<size_t>(R) * NX;
    float *Dst = RowStaging.sampleData(R);
    for (size_t I = 0; I != NX; ++I)
      Dst[I] = (Row[I] - XMean[I]) / XStd[I];
  }
  Tensor Pred = Net.forwardBatch(RowStaging);
  assert(Pred.size() == static_cast<size_t>(Rows) * NY &&
         "model output size mismatch");
  Out.resize(static_cast<size_t>(Rows) * NY);
  for (int R = 0; R != Rows; ++R) {
    const float *Row = Pred.sampleData(R);
    for (size_t I = 0; I != NY; ++I)
      Out[static_cast<size_t>(R) * NY + I] = Row[I] * YStd[I] + YMean[I];
  }
  Workspace::release(Pred);
}

void SupervisedTrainer::getNormalization(std::vector<float> &XM,
                                         std::vector<float> &XS,
                                         std::vector<float> &YM,
                                         std::vector<float> &YS) {
  if (!Normalized) {
    assert(!Data.empty() && "no data to compute normalization from");
    computeNormalization();
  }
  XM = XMean;
  XS = XStd;
  YM = YMean;
  YS = YStd;
}

void SupervisedTrainer::setNormalization(std::vector<float> XM,
                                         std::vector<float> XS,
                                         std::vector<float> YM,
                                         std::vector<float> YS) {
  assert(XM.size() == XS.size() && YM.size() == YS.size() &&
         "normalization vector size mismatch");
  XMean = std::move(XM);
  XStd = std::move(XS);
  YMean = std::move(YM);
  YStd = std::move(YS);
  Normalized = true;
}

double SupervisedTrainer::meanAbsError() {
  if (Data.empty())
    return 0.0;
  double Total = 0.0;
  for (const Sample &S : Data) {
    std::vector<float> P = predict(S.X);
    double Err = 0.0;
    for (size_t I = 0; I != P.size(); ++I)
      Err += std::abs(P[I] - S.Y[I]);
    Total += Err / static_cast<double>(P.size());
  }
  return Total / static_cast<double>(Data.size());
}
