//===- nn/Loss.h - Loss functions ------------------------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Loss functions for the two learning regimes: mean-squared error for the
/// supervised parameter-prediction models and for the Q-value regression of
/// the Q-learning rule (Huber is provided as the more robust DQN variant).
/// Each returns the scalar loss and fills the gradient w.r.t. the prediction.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_LOSS_H
#define AU_NN_LOSS_H

#include "nn/Tensor.h"

namespace au {
namespace nn {

/// Mean-squared error: mean((Pred - Target)^2). \p Grad gets d/dPred.
double mseLoss(const Tensor &Pred, const Tensor &Target, Tensor &Grad);

/// Batched MSE over [Batch, N] tensors: returns the *sum* over the batch of
/// each sample's mean-squared error (so dividing by the dataset size yields
/// the same epoch loss as the per-sample path), and fills \p Grad with the
/// per-sample gradients 2 * (Pred - Target) / N.
double mseLossBatch(const Tensor &Pred, const Tensor &Target, Tensor &Grad);

/// Huber loss with delta = 1, averaged over elements.
double huberLoss(const Tensor &Pred, const Tensor &Target, Tensor &Grad);

/// Huber loss applied to a single output element \p Index (the action whose
/// Q-value is being regressed); other elements receive zero gradient.
double huberLossAt(const Tensor &Pred, size_t Index, float Target,
                   Tensor &Grad);

} // namespace nn
} // namespace au

#endif // AU_NN_LOSS_H
