//===- nn/Layers.cpp - Concrete layer implementations --------------------===//

#include "nn/Layers.h"

#include "support/Rng.h"

#include <algorithm>
#include <cmath>

using namespace au;
using namespace au::nn;

Layer::~Layer() = default;

void Layer::zeroGrads() {
  for (ParamView P : params())
    std::fill(P.Grads, P.Grads + P.Count, 0.0f);
}

size_t Layer::numParams() {
  size_t N = 0;
  for (ParamView P : params())
    N += P.Count;
  return N;
}

//===----------------------------------------------------------------------===//
// Dense
//===----------------------------------------------------------------------===//

Dense::Dense(int InSize, int OutSize, Rng &Rand) : In(InSize), Out(OutSize) {
  assert(InSize > 0 && OutSize > 0 && "dense layer sizes must be positive");
  W.resize(static_cast<size_t>(In) * Out);
  B.assign(static_cast<size_t>(Out), 0.0f);
  GW.assign(W.size(), 0.0f);
  GB.assign(B.size(), 0.0f);
  // He-uniform initialization, appropriate for the ReLU stacks used here.
  double Limit = std::sqrt(6.0 / In);
  for (float &V : W)
    V = static_cast<float>(Rand.uniform(-Limit, Limit));
}

Tensor Dense::forward(const Tensor &Input) {
  assert(Input.size() == static_cast<size_t>(In) &&
         "dense input size mismatch");
  LastIn = Input;
  Tensor Y(std::vector<int>{Out});
  for (int O = 0; O < Out; ++O) {
    float Acc = B[O];
    const float *Row = &W[static_cast<size_t>(O) * In];
    const float *X = Input.data();
    for (int I = 0; I < In; ++I)
      Acc += Row[I] * X[I];
    Y[O] = Acc;
  }
  return Y;
}

Tensor Dense::backward(const Tensor &GradOut) {
  assert(GradOut.size() == static_cast<size_t>(Out) &&
         "dense gradient size mismatch");
  assert(LastIn.size() == static_cast<size_t>(In) &&
         "backward without matching forward");
  Tensor GradIn(std::vector<int>{In});
  for (int O = 0; O < Out; ++O) {
    float G = GradOut[O];
    GB[O] += G;
    float *GRow = &GW[static_cast<size_t>(O) * In];
    const float *Row = &W[static_cast<size_t>(O) * In];
    const float *X = LastIn.data();
    float *GI = GradIn.data();
    for (int I = 0; I < In; ++I) {
      GRow[I] += G * X[I];
      GI[I] += G * Row[I];
    }
  }
  return GradIn;
}

std::vector<ParamView> Dense::params() {
  return {{W.data(), GW.data(), W.size()}, {B.data(), GB.data(), B.size()}};
}

//===----------------------------------------------------------------------===//
// ReLU
//===----------------------------------------------------------------------===//

Tensor ReLU::forward(const Tensor &In) {
  LastIn = In;
  Tensor Y = In;
  for (float &V : Y.values())
    V = std::max(V, 0.0f);
  return Y;
}

Tensor ReLU::backward(const Tensor &GradOut) {
  assert(GradOut.size() == LastIn.size() && "relu gradient size mismatch");
  Tensor GradIn = GradOut;
  for (size_t I = 0, E = GradIn.size(); I != E; ++I)
    if (LastIn[I] <= 0.0f)
      GradIn[I] = 0.0f;
  return GradIn;
}

//===----------------------------------------------------------------------===//
// Conv2D
//===----------------------------------------------------------------------===//

Conv2D::Conv2D(int InChannels, int OutChannels, int KernelSize, int Stride,
               Rng &Rand)
    : InC(InChannels), OutC(OutChannels), K(KernelSize), S(Stride) {
  assert(InC > 0 && OutC > 0 && K > 0 && S > 0 && "invalid conv parameters");
  W.resize(static_cast<size_t>(OutC) * InC * K * K);
  B.assign(static_cast<size_t>(OutC), 0.0f);
  GW.assign(W.size(), 0.0f);
  GB.assign(B.size(), 0.0f);
  double Limit = std::sqrt(6.0 / (static_cast<double>(InC) * K * K));
  for (float &V : W)
    V = static_cast<float>(Rand.uniform(-Limit, Limit));
}

Tensor Conv2D::forward(const Tensor &In) {
  assert(In.rank() == 3 && In.dim(0) == InC && "conv input shape mismatch");
  int H = In.dim(1), Wd = In.dim(2);
  assert(H >= K && Wd >= K && "conv input smaller than kernel");
  int OH = (H - K) / S + 1;
  int OW = (Wd - K) / S + 1;
  LastIn = In;
  Tensor Out(std::vector<int>{OutC, OH, OW});
  for (int Oc = 0; Oc < OutC; ++Oc)
    for (int Oy = 0; Oy < OH; ++Oy)
      for (int Ox = 0; Ox < OW; ++Ox) {
        float Acc = B[Oc];
        for (int Ic = 0; Ic < InC; ++Ic)
          for (int Ky = 0; Ky < K; ++Ky)
            for (int Kx = 0; Kx < K; ++Kx) {
              size_t WIdx =
                  ((static_cast<size_t>(Oc) * InC + Ic) * K + Ky) * K + Kx;
              Acc += W[WIdx] * In.at3(Ic, Oy * S + Ky, Ox * S + Kx);
            }
        Out.at3(Oc, Oy, Ox) = Acc;
      }
  return Out;
}

Tensor Conv2D::backward(const Tensor &GradOut) {
  assert(GradOut.rank() == 3 && GradOut.dim(0) == OutC &&
         "conv gradient shape mismatch");
  int OH = GradOut.dim(1), OW = GradOut.dim(2);
  Tensor GradIn(LastIn.shape());
  for (int Oc = 0; Oc < OutC; ++Oc)
    for (int Oy = 0; Oy < OH; ++Oy)
      for (int Ox = 0; Ox < OW; ++Ox) {
        float G = GradOut.at3(Oc, Oy, Ox);
        GB[Oc] += G;
        for (int Ic = 0; Ic < InC; ++Ic)
          for (int Ky = 0; Ky < K; ++Ky)
            for (int Kx = 0; Kx < K; ++Kx) {
              size_t WIdx =
                  ((static_cast<size_t>(Oc) * InC + Ic) * K + Ky) * K + Kx;
              GW[WIdx] += G * LastIn.at3(Ic, Oy * S + Ky, Ox * S + Kx);
              GradIn.at3(Ic, Oy * S + Ky, Ox * S + Kx) += G * W[WIdx];
            }
      }
  return GradIn;
}

std::vector<ParamView> Conv2D::params() {
  return {{W.data(), GW.data(), W.size()}, {B.data(), GB.data(), B.size()}};
}

//===----------------------------------------------------------------------===//
// MaxPool2D
//===----------------------------------------------------------------------===//

Tensor MaxPool2D::forward(const Tensor &In) {
  assert(In.rank() == 3 && "maxpool input must be rank 3");
  int C = In.dim(0), H = In.dim(1), W = In.dim(2);
  int OH = H / 2, OW = W / 2;
  assert(OH > 0 && OW > 0 && "maxpool input too small");
  LastIn = In;
  OutShape = {C, OH, OW};
  Tensor Out(OutShape);
  ArgMax.assign(Out.size(), 0);
  size_t Flat = 0;
  for (int Ch = 0; Ch < C; ++Ch)
    for (int Oy = 0; Oy < OH; ++Oy)
      for (int Ox = 0; Ox < OW; ++Ox, ++Flat) {
        float Best = -1e30f;
        size_t BestIdx = 0;
        for (int Dy = 0; Dy < 2; ++Dy)
          for (int Dx = 0; Dx < 2; ++Dx) {
            int Y = Oy * 2 + Dy, X = Ox * 2 + Dx;
            float V = In.at3(Ch, Y, X);
            if (V > Best) {
              Best = V;
              BestIdx = (static_cast<size_t>(Ch) * H + Y) * W + X;
            }
          }
        Out.values()[Flat] = Best;
        ArgMax[Flat] = BestIdx;
      }
  return Out;
}

Tensor MaxPool2D::backward(const Tensor &GradOut) {
  assert(GradOut.size() == ArgMax.size() && "maxpool gradient size mismatch");
  Tensor GradIn(LastIn.shape());
  for (size_t I = 0, E = GradOut.size(); I != E; ++I)
    GradIn.values()[ArgMax[I]] += GradOut[I];
  return GradIn;
}

//===----------------------------------------------------------------------===//
// Reshape
//===----------------------------------------------------------------------===//

Tensor Reshape::forward(const Tensor &In) {
  InShape = In.shape();
  return In.reshaped(Target);
}

Tensor Reshape::backward(const Tensor &GradOut) {
  return GradOut.reshaped(InShape);
}

//===----------------------------------------------------------------------===//
// Flatten
//===----------------------------------------------------------------------===//

Tensor Flatten::forward(const Tensor &In) {
  InShape = In.shape();
  return In.reshaped({static_cast<int>(In.size())});
}

Tensor Flatten::backward(const Tensor &GradOut) {
  return GradOut.reshaped(InShape);
}
