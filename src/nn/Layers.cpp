//===- nn/Layers.cpp - Concrete layer implementations --------------------===//

#include "nn/Layers.h"

#include "nn/Gemm.h"
#include "nn/Workspace.h"
#include "support/Rng.h"
#include "support/ThreadPool.h"

#include <algorithm>
#include <cmath>
#include <cstring>

using namespace au;
using namespace au::nn;

Layer::~Layer() = default;

void Layer::zeroGrads() {
  for (ParamView P : params())
    std::fill(P.Grads, P.Grads + P.Count, 0.0f);
}

size_t Layer::numParams() {
  size_t N = 0;
  for (ParamView P : params())
    N += P.Count;
  return N;
}

//===----------------------------------------------------------------------===//
// Dense
//===----------------------------------------------------------------------===//

Dense::Dense(int InSize, int OutSize, Rng &Rand) : In(InSize), Out(OutSize) {
  assert(InSize > 0 && OutSize > 0 && "dense layer sizes must be positive");
  W.resize(static_cast<size_t>(In) * Out);
  B.assign(static_cast<size_t>(Out), 0.0f);
  GW.assign(W.size(), 0.0f);
  GB.assign(B.size(), 0.0f);
  // He-uniform initialization, appropriate for the ReLU stacks used here.
  double Limit = std::sqrt(6.0 / In);
  for (float &V : W)
    V = static_cast<float>(Rand.uniform(-Limit, Limit));
}

Tensor Dense::forward(const Tensor &Input) {
  assert(Input.size() == static_cast<size_t>(In) &&
         "dense input size mismatch");
  LastIn = Input;
  Tensor Y(std::vector<int>{Out});
  for (int O = 0; O < Out; ++O) {
    float Acc = B[O];
    const float *Row = &W[static_cast<size_t>(O) * In];
    const float *X = Input.data();
    for (int I = 0; I < In; ++I)
      Acc += Row[I] * X[I];
    Y[O] = Acc;
  }
  return Y;
}

Tensor Dense::backward(const Tensor &GradOut) {
  assert(GradOut.size() == static_cast<size_t>(Out) &&
         "dense gradient size mismatch");
  assert(LastIn.size() == static_cast<size_t>(In) &&
         "backward without matching forward");
  Tensor GradIn(std::vector<int>{In});
  for (int O = 0; O < Out; ++O) {
    float G = GradOut[O];
    GB[O] += G;
    float *GRow = &GW[static_cast<size_t>(O) * In];
    const float *Row = &W[static_cast<size_t>(O) * In];
    const float *X = LastIn.data();
    float *GI = GradIn.data();
    for (int I = 0; I < In; ++I) {
      GRow[I] += G * X[I];
      GI[I] += G * Row[I];
    }
  }
  return GradIn;
}

Tensor Dense::forwardBatch(const Tensor &Input) {
  assert(Input.rank() == 2 && Input.dim(1) == In &&
         "dense batched input shape mismatch");
  int BN = Input.dim(0);
  LastInB = Input;
  Tensor Y = Workspace::acquire({BN, Out});
  // Prefill each row with the bias, then accumulate X * W^T on top; this
  // matches the scalar path's Acc = B[O] + sum order. W^T is served from the
  // packed cache, so steady-state inference skips all packing work.
  float *YD = Y.data();
  biasAddRowsKernel(YD, B.data(), BN, Out);
  ensurePackedB(PackedWT, paramGen(), /*TransB=*/true, In, Out, W.data(), In);
  sgemmPackedB(/*TransA=*/false, PackedWT, BN, Out, In, 1.0f, Input.data(),
               In, 1.0f, YD, Out);
  return Y;
}

Tensor Dense::backwardBatch(const Tensor &GradOut) {
  assert(GradOut.rank() == 2 && GradOut.dim(1) == Out &&
         "dense batched gradient shape mismatch");
  int BN = GradOut.dim(0);
  assert(LastInB.rank() == 2 && LastInB.dim(0) == BN &&
         "batched backward without matching forward");
  const float *G = GradOut.data();
  // Bias gradients in fixed ascending-sample order.
  for (int R = 0; R < BN; ++R) {
    const float *GRow = G + static_cast<size_t>(R) * Out;
    for (int O = 0; O < Out; ++O)
      GB[O] += GRow[O];
  }
  // Weight gradients: GW += GradOut^T * X. Row-parallel over Out with
  // ascending-sample accumulation per element — deterministic.
  sgemm(/*TransA=*/true, /*TransB=*/false, Out, In, BN, 1.0f, G, Out,
        LastInB.data(), In, 1.0f, GW.data(), In);
  // Input gradients: GI = GradOut * W, with W served from the packed cache.
  Tensor GI = Workspace::acquire({BN, In});
  ensurePackedB(PackedWB, paramGen(), /*TransB=*/false, Out, In, W.data(),
                In);
  sgemmPackedB(/*TransA=*/false, PackedWB, BN, In, Out, 1.0f, G, Out, 0.0f,
               GI.data(), In);
  return GI;
}

std::vector<ParamView> Dense::params() {
  return {{W.data(), GW.data(), W.size()}, {B.data(), GB.data(), B.size()}};
}

//===----------------------------------------------------------------------===//
// ReLU
//===----------------------------------------------------------------------===//

Tensor ReLU::forward(const Tensor &In) {
  LastIn = In;
  Tensor Y = In;
  for (float &V : Y.values())
    V = std::max(V, 0.0f);
  return Y;
}

Tensor ReLU::backward(const Tensor &GradOut) {
  assert(GradOut.size() == LastIn.size() && "relu gradient size mismatch");
  Tensor GradIn = GradOut;
  for (size_t I = 0, E = GradIn.size(); I != E; ++I)
    if (LastIn[I] <= 0.0f)
      GradIn[I] = 0.0f;
  return GradIn;
}

Tensor ReLU::forwardBatch(const Tensor &In) {
  LastInB = In;
  Tensor Y = Workspace::acquire(In.shape());
  float *D = Y.data();
  const float *S = In.data();
  ThreadPool::global().parallelFor(0, Y.size(), 8192,
                                   [&](size_t B, size_t E) {
    std::memcpy(D + B, S + B, sizeof(float) * (E - B));
    reluForwardKernel(D + B, E - B);
  });
  return Y;
}

Tensor ReLU::backwardBatch(const Tensor &GradOut) {
  assert(GradOut.size() == LastInB.size() &&
         "relu batched gradient size mismatch");
  Tensor GradIn = Workspace::acquire(GradOut.shape());
  float *D = GradIn.data();
  const float *S = GradOut.data();
  const float *X = LastInB.data();
  ThreadPool::global().parallelFor(0, GradIn.size(), 8192,
                                   [&](size_t B, size_t E) {
    std::memcpy(D + B, S + B, sizeof(float) * (E - B));
    reluBackwardKernel(D + B, X + B, E - B);
  });
  return GradIn;
}

//===----------------------------------------------------------------------===//
// Conv2D
//===----------------------------------------------------------------------===//

Conv2D::Conv2D(int InChannels, int OutChannels, int KernelSize, int Stride,
               Rng &Rand)
    : InC(InChannels), OutC(OutChannels), K(KernelSize), S(Stride) {
  assert(InC > 0 && OutC > 0 && K > 0 && S > 0 && "invalid conv parameters");
  W.resize(static_cast<size_t>(OutC) * InC * K * K);
  B.assign(static_cast<size_t>(OutC), 0.0f);
  GW.assign(W.size(), 0.0f);
  GB.assign(B.size(), 0.0f);
  double Limit = std::sqrt(6.0 / (static_cast<double>(InC) * K * K));
  for (float &V : W)
    V = static_cast<float>(Rand.uniform(-Limit, Limit));
}

Tensor Conv2D::forward(const Tensor &In) {
  assert(In.rank() == 3 && In.dim(0) == InC && "conv input shape mismatch");
  int H = In.dim(1), Wd = In.dim(2);
  assert(H >= K && Wd >= K && "conv input smaller than kernel");
  int OH = (H - K) / S + 1;
  int OW = (Wd - K) / S + 1;
  LastIn = In;
  Tensor Out(std::vector<int>{OutC, OH, OW});
  for (int Oc = 0; Oc < OutC; ++Oc)
    for (int Oy = 0; Oy < OH; ++Oy)
      for (int Ox = 0; Ox < OW; ++Ox) {
        float Acc = B[Oc];
        for (int Ic = 0; Ic < InC; ++Ic)
          for (int Ky = 0; Ky < K; ++Ky)
            for (int Kx = 0; Kx < K; ++Kx) {
              size_t WIdx =
                  ((static_cast<size_t>(Oc) * InC + Ic) * K + Ky) * K + Kx;
              Acc += W[WIdx] * In.at3(Ic, Oy * S + Ky, Ox * S + Kx);
            }
        Out.at3(Oc, Oy, Ox) = Acc;
      }
  return Out;
}

Tensor Conv2D::backward(const Tensor &GradOut) {
  assert(GradOut.rank() == 3 && GradOut.dim(0) == OutC &&
         "conv gradient shape mismatch");
  int OH = GradOut.dim(1), OW = GradOut.dim(2);
  Tensor GradIn(LastIn.shape());
  for (int Oc = 0; Oc < OutC; ++Oc)
    for (int Oy = 0; Oy < OH; ++Oy)
      for (int Ox = 0; Ox < OW; ++Ox) {
        float G = GradOut.at3(Oc, Oy, Ox);
        GB[Oc] += G;
        for (int Ic = 0; Ic < InC; ++Ic)
          for (int Ky = 0; Ky < K; ++Ky)
            for (int Kx = 0; Kx < K; ++Kx) {
              size_t WIdx =
                  ((static_cast<size_t>(Oc) * InC + Ic) * K + Ky) * K + Kx;
              GW[WIdx] += G * LastIn.at3(Ic, Oy * S + Ky, Ox * S + Kx);
              GradIn.at3(Ic, Oy * S + Ky, Ox * S + Kx) += G * W[WIdx];
            }
      }
  return GradIn;
}

Tensor Conv2D::forwardBatch(const Tensor &Input) {
  assert(Input.rank() == 4 && Input.dim(1) == InC &&
         "conv batched input shape mismatch");
  int BN = Input.dim(0), H = Input.dim(2), Wd = Input.dim(3);
  assert(H >= K && Wd >= K && "conv input smaller than kernel");
  int OH = convOutDim(H, K, S), OW = convOutDim(Wd, K, S);
  int CKK = InC * K * K;
  size_t ColSz = static_cast<size_t>(CKK) * OH * OW;
  if (ColB.size() < static_cast<size_t>(BN) * ColSz)
    ColB.resize(static_cast<size_t>(BN) * ColSz);
  InShapeB = Input.shape();
  LastOH = OH;
  LastOW = OW;
  Tensor OutT = Workspace::acquire({BN, OutC, OH, OW});
  size_t InSz = Input.sampleSize(), OutSz = OutT.sampleSize();
  const float *InD = Input.data();
  float *OutD = OutT.data();
  size_t PlaneSz = static_cast<size_t>(OH) * OW;
  const bool Simd = packEngine() == Backend::Simd;
  // Pack the filter matrix once (on this thread, before the parallel
  // region); every per-sample GEMM then consumes the cached panels.
  ensurePackedA(PackedW, paramGen(), /*TransA=*/false, OutC, CKK, W.data(),
                CKK);
  // Samples are independent: lower each to columns and run the per-sample
  // GEMM Out_b = W * Col_b (+ bias) in parallel across the batch. The simd
  // engine seeds its accumulators with the bias (no fill pass, no Beta
  // read-modify pass over Out).
  ThreadPool::global().parallelFor(0, static_cast<size_t>(BN), 1,
                                   [&](size_t B0, size_t B1) {
    for (size_t Bi = B0; Bi != B1; ++Bi) {
      float *Col = &ColB[Bi * ColSz];
      im2col(InD + Bi * InSz, InC, H, Wd, K, S, Col);
      float *O = OutD + Bi * OutSz;
      if (Simd) {
        sgemmConvBias(PackedW, OutC, OH * OW, CKK, Col, OH * OW, B.data(), O,
                      OH * OW);
        continue;
      }
      for (int Oc = 0; Oc < OutC; ++Oc)
        std::fill(O + Oc * PlaneSz, O + (Oc + 1) * PlaneSz, B[Oc]);
      sgemmPackedA(PackedW, /*TransB=*/false, OutC, OH * OW, CKK, 1.0f, Col,
                   OH * OW, 1.0f, O, OH * OW);
    }
  });
  return OutT;
}

Tensor Conv2D::backwardBatch(const Tensor &GradOut) {
  assert(GradOut.rank() == 4 && GradOut.dim(1) == OutC &&
         "conv batched gradient shape mismatch");
  int BN = GradOut.dim(0), OH = GradOut.dim(2), OW = GradOut.dim(3);
  assert(!InShapeB.empty() && InShapeB[0] == BN && OH == LastOH &&
         OW == LastOW && "batched backward without matching forward");
  int H = InShapeB[2], Wd = InShapeB[3];
  int CKK = InC * K * K;
  size_t ColSz = static_cast<size_t>(CKK) * OH * OW;
  size_t GSz = GradOut.sampleSize();
  const float *GD = GradOut.data();
  size_t PlaneSz = static_cast<size_t>(OH) * OW;

  // Bias gradients: data-parallel over minibatch shards, fixed tree
  // reduction.
  parallelShardedSum(BN, 1, static_cast<size_t>(OutC),
                     [&](size_t B0, size_t B1, float *Acc) {
    for (size_t Bi = B0; Bi != B1; ++Bi) {
      const float *G = GD + Bi * GSz;
      for (int Oc = 0; Oc < OutC; ++Oc) {
        float Sum = 0.0f;
        const float *Row = G + Oc * PlaneSz;
        for (size_t I = 0; I != PlaneSz; ++I)
          Sum += Row[I];
        Acc[Oc] += Sum;
      }
    }
  }, GB.data());

  // Weight gradients: GW += sum_b GradOut_b * Col_b^T, accumulated into
  // per-shard buffers and tree-reduced so any thread count rounds alike.
  parallelShardedSum(BN, 1, W.size(),
                     [&](size_t B0, size_t B1, float *Acc) {
    for (size_t Bi = B0; Bi != B1; ++Bi)
      sgemm(/*TransA=*/false, /*TransB=*/true, OutC, CKK, OH * OW, 1.0f,
            GD + Bi * GSz, OH * OW, &ColB[Bi * ColSz], OH * OW, 1.0f, Acc,
            CKK);
  }, GW.data());

  // Input gradients: dCol_b = W^T * GradOut_b, scattered back by col2im.
  // col2im accumulates, so the workspace tensor must be zeroed explicitly.
  if (DColB.size() < static_cast<size_t>(BN) * ColSz)
    DColB.resize(static_cast<size_t>(BN) * ColSz);
  Tensor GradIn = Workspace::acquire(InShapeB);
  GradIn.fill(0.0f);
  float *GID = GradIn.data();
  size_t InSz = GradIn.sampleSize();
  ensurePackedA(PackedWTA, paramGen(), /*TransA=*/true, CKK, OutC, W.data(),
                CKK);
  ThreadPool::global().parallelFor(0, static_cast<size_t>(BN), 1,
                                   [&](size_t B0, size_t B1) {
    for (size_t Bi = B0; Bi != B1; ++Bi) {
      float *DCol = &DColB[Bi * ColSz];
      sgemmPackedA(PackedWTA, /*TransB=*/false, CKK, OH * OW, OutC, 1.0f,
                   GD + Bi * GSz, OH * OW, 0.0f, DCol, OH * OW);
      col2im(DCol, InC, H, Wd, K, S, GID + Bi * InSz);
    }
  });
  return GradIn;
}

std::vector<ParamView> Conv2D::params() {
  return {{W.data(), GW.data(), W.size()}, {B.data(), GB.data(), B.size()}};
}

//===----------------------------------------------------------------------===//
// MaxPool2D
//===----------------------------------------------------------------------===//

namespace {

/// 2x2/stride-2 max pooling of one (C, H, W) slab. Records, per output
/// element, the flat index of the winning input offset by \p BaseIndex (the
/// slab's position within a batch). The running max is seeded from the first
/// window element — not a finite sentinel — so arbitrarily negative inputs
/// pool correctly.
void maxPool2x2(const float *In, int C, int H, int W, float *Out,
                size_t *ArgMax, size_t BaseIndex) {
  int OH = H / 2, OW = W / 2;
  size_t Flat = 0;
  for (int Ch = 0; Ch < C; ++Ch)
    for (int Oy = 0; Oy < OH; ++Oy)
      for (int Ox = 0; Ox < OW; ++Ox, ++Flat) {
        size_t Idx = (static_cast<size_t>(Ch) * H + Oy * 2) * W + Ox * 2;
        float Best = In[Idx];
        size_t BestIdx = Idx;
        const size_t Offsets[3] = {1, static_cast<size_t>(W),
                                   static_cast<size_t>(W) + 1};
        for (size_t Off : Offsets) {
          float V = In[Idx + Off];
          if (V > Best) {
            Best = V;
            BestIdx = Idx + Off;
          }
        }
        Out[Flat] = Best;
        ArgMax[Flat] = BaseIndex + BestIdx;
      }
}

} // namespace

Tensor MaxPool2D::forward(const Tensor &In) {
  assert(In.rank() == 3 && "maxpool input must be rank 3");
  int C = In.dim(0), H = In.dim(1), W = In.dim(2);
  int OH = H / 2, OW = W / 2;
  assert(OH > 0 && OW > 0 && "maxpool input too small");
  LastIn = In;
  OutShape = {C, OH, OW};
  Tensor Out(OutShape);
  ArgMax.assign(Out.size(), 0);
  maxPool2x2(In.data(), C, H, W, Out.data(), ArgMax.data(), 0);
  return Out;
}

Tensor MaxPool2D::backward(const Tensor &GradOut) {
  assert(GradOut.size() == ArgMax.size() && "maxpool gradient size mismatch");
  Tensor GradIn(LastIn.shape());
  for (size_t I = 0, E = GradOut.size(); I != E; ++I)
    GradIn.values()[ArgMax[I]] += GradOut[I];
  return GradIn;
}

Tensor MaxPool2D::forwardBatch(const Tensor &In) {
  assert(In.rank() == 4 && "maxpool batched input must be rank 4");
  int BN = In.dim(0), C = In.dim(1), H = In.dim(2), W = In.dim(3);
  int OH = H / 2, OW = W / 2;
  assert(OH > 0 && OW > 0 && "maxpool input too small");
  InShapeB = In.shape();
  Tensor Out = Workspace::acquire({BN, C, OH, OW});
  ArgMaxB.assign(Out.size(), 0);
  size_t InSz = In.sampleSize(), OutSz = Out.sampleSize();
  const float *InD = In.data();
  float *OutD = Out.data();
  size_t *AM = ArgMaxB.data();
  ThreadPool::global().parallelFor(0, static_cast<size_t>(BN), 1,
                                   [&](size_t B0, size_t B1) {
    for (size_t Bi = B0; Bi != B1; ++Bi)
      maxPool2x2(InD + Bi * InSz, C, H, W, OutD + Bi * OutSz,
                 AM + Bi * OutSz, Bi * InSz);
  });
  return Out;
}

Tensor MaxPool2D::backwardBatch(const Tensor &GradOut) {
  assert(GradOut.size() == ArgMaxB.size() &&
         "maxpool batched gradient size mismatch");
  int BN = InShapeB[0];
  // The scatter below only writes the winning indices, so zero the rest.
  Tensor GradIn = Workspace::acquire(InShapeB);
  GradIn.fill(0.0f);
  size_t OutSz = GradOut.sampleSize();
  const float *G = GradOut.data();
  float *D = GradIn.data();
  // Each sample scatters only into its own input slab, so batch-parallel
  // scatter is race-free and deterministic.
  ThreadPool::global().parallelFor(0, static_cast<size_t>(BN), 1,
                                   [&](size_t B0, size_t B1) {
    for (size_t Bi = B0; Bi != B1; ++Bi)
      for (size_t I = Bi * OutSz, E = (Bi + 1) * OutSz; I != E; ++I)
        D[ArgMaxB[I]] += G[I];
  });
  return GradIn;
}

//===----------------------------------------------------------------------===//
// Reshape
//===----------------------------------------------------------------------===//

Tensor Reshape::forward(const Tensor &In) {
  InShape = In.shape();
  return In.reshaped(Target);
}

Tensor Reshape::backward(const Tensor &GradOut) {
  return GradOut.reshaped(InShape);
}

namespace {

/// Workspace copy of \p In under \p NewShape (reshapes without disturbing
/// the caller's tensor, which the Network chain releases separately).
Tensor reshapedCopy(const Tensor &In, std::initializer_list<int> NewShape) {
  Tensor Y = Workspace::acquire(NewShape);
  assert(Y.size() == In.size() && "reshape must preserve element count");
  std::memcpy(Y.data(), In.data(), sizeof(float) * In.size());
  return Y;
}

Tensor reshapedCopy(const Tensor &In, const std::vector<int> &NewShape) {
  Tensor Y = Workspace::acquire(NewShape);
  assert(Y.size() == In.size() && "reshape must preserve element count");
  std::memcpy(Y.data(), In.data(), sizeof(float) * In.size());
  return Y;
}

} // namespace

Tensor Reshape::forwardBatch(const Tensor &In) {
  InShapeB = In.shape();
  // NewShapeB is retained so steady-state calls reuse its capacity.
  NewShapeB.clear();
  NewShapeB.reserve(Target.size() + 1);
  NewShapeB.push_back(In.dim(0));
  NewShapeB.insert(NewShapeB.end(), Target.begin(), Target.end());
  return reshapedCopy(In, NewShapeB);
}

Tensor Reshape::backwardBatch(const Tensor &GradOut) {
  return reshapedCopy(GradOut, InShapeB);
}

//===----------------------------------------------------------------------===//
// Flatten
//===----------------------------------------------------------------------===//

Tensor Flatten::forward(const Tensor &In) {
  InShape = In.shape();
  return In.reshaped({static_cast<int>(In.size())});
}

Tensor Flatten::backward(const Tensor &GradOut) {
  return GradOut.reshaped(InShape);
}

Tensor Flatten::forwardBatch(const Tensor &In) {
  InShapeB = In.shape();
  return reshapedCopy(In, {In.dim(0), static_cast<int>(In.sampleSize())});
}

Tensor Flatten::backwardBatch(const Tensor &GradOut) {
  return reshapedCopy(GradOut, InShapeB);
}
