//===- nn/Workspace.cpp - Per-thread tensor arena ------------------------===//

#include "nn/Workspace.h"

#include <cassert>

using namespace au;
using namespace au::nn;

namespace {

/// One parked allocation: the float buffer plus the (tiny) shape vector, so
/// a recycled acquire() reuses both heap blocks.
struct Parked {
  std::vector<float> Data;
  std::vector<int> Dims;
};

/// Bounded freelist: workloads cycle through a handful of distinct
/// activation shapes, so a small pool captures the steady state; anything
/// beyond the cap is genuinely transient and may be freed.
constexpr size_t MaxParked = 32;

std::vector<Parked> &freelist() {
  static thread_local std::vector<Parked> List;
  return List;
}

template <typename ShapeT>
Tensor acquireImpl(const ShapeT &Shape) {
  size_t N = 1;
  for (int D : Shape) {
    assert(D > 0 && "tensor dimensions must be positive");
    N *= static_cast<size_t>(D);
  }

  auto &List = freelist();
  // First fit with enough float capacity; otherwise steal the last entry so
  // its shape vector (and whatever capacity it has) is still recycled.
  size_t Pick = List.size();
  for (size_t I = 0; I != List.size(); ++I)
    if (List[I].Data.capacity() >= N) {
      Pick = I;
      break;
    }
  Parked Slot;
  if (!List.empty()) {
    if (Pick == List.size())
      Pick = List.size() - 1;
    Slot = std::move(List[Pick]);
    List[Pick] = std::move(List.back());
    List.pop_back();
  }
  // resize within capacity never reallocates; the value-init of any grown
  // tail is the price of std::vector storage (amortized away once the
  // buffer has seen the workload's high-water mark).
  Slot.Data.resize(N);
  Slot.Dims.assign(Shape.begin(), Shape.end());
  return Tensor::adopt(std::move(Slot.Data), std::move(Slot.Dims));
}

} // namespace

Tensor Workspace::acquire(const std::vector<int> &Shape) {
  return acquireImpl(Shape);
}

Tensor Workspace::acquire(std::initializer_list<int> Shape) {
  return acquireImpl(Shape);
}

void Workspace::release(Tensor &T) {
  auto &List = freelist();
  if (T.Data.capacity() == 0 && T.Dims.capacity() == 0)
    return; // Nothing worth parking (moved-from or default tensor).
  if (List.size() >= MaxParked) {
    T.Data = std::vector<float>();
    T.Dims = std::vector<int>();
    return;
  }
  Parked Slot;
  Slot.Data = std::move(T.Data);
  Slot.Dims = std::move(T.Dims);
  Slot.Data.clear();
  Slot.Dims.clear();
  List.push_back(std::move(Slot));
  T.Data.clear();
  T.Dims.clear();
}

size_t Workspace::freeCount() { return freelist().size(); }

void Workspace::clear() { freelist().clear(); }
