//===- nn/Network.h - Sequential neural network ----------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A sequential network of layers plus builders for the two model families
/// the paper uses: buildDnn (fully connected stacks, au_config model type
/// DNN) and buildDeepMindCnn (the DeepMind-style conv/pool front end followed
/// by the same dense head, used by the Raw pixel baselines). Networks can be
/// serialized to a binary file, realizing the semantics' loadModel() /
/// CONFIG-TEST rule.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_NETWORK_H
#define AU_NN_NETWORK_H

#include "nn/Layer.h"

#include <memory>
#include <string>
#include <vector>

namespace au {
class Rng;
namespace nn {

/// An owning sequence of layers evaluated front to back.
class Network {
public:
  Network() = default;
  Network(Network &&) = default;
  Network &operator=(Network &&) = default;

  /// Appends a layer; returns *this for chaining.
  Network &add(std::unique_ptr<Layer> L);

  /// Runs the forward pass on one sample.
  Tensor forward(const Tensor &In);

  /// Runs the backward pass; must follow forward() on the same sample.
  /// Returns dLoss/dInput.
  Tensor backward(const Tensor &GradOut);

  /// Runs the forward pass on a whole minibatch at once; \p In is a
  /// rank-(N+1) tensor whose leading dimension is the batch. Uses the
  /// GEMM/im2col compute engine.
  Tensor forwardBatch(const Tensor &In);

  /// Batched backward pass; must follow forwardBatch() on the same batch.
  /// Accumulates the summed minibatch gradients and returns dLoss/dInput.
  Tensor backwardBatch(const Tensor &GradOut);

  /// All parameter views across layers, in a stable order.
  std::vector<ParamView> params();

  /// Zeroes every gradient accumulator.
  void zeroGrads();

  /// Total number of trainable scalars.
  size_t numParams();

  /// Serialized model size in bytes (parameters as float32 plus a small
  /// header), mirroring Table 2's "Model Size" column.
  size_t sizeInBytes();

  size_t numLayers() const { return Layers.size(); }
  Layer &layer(size_t I) {
    assert(I < Layers.size() && "layer index out of range");
    return *Layers[I];
  }

  /// Bumps every layer's parameter generation, invalidating all packed
  /// weight caches. Call after mutating parameters outside the optimizers
  /// (which bump it themselves).
  void bumpParamGeneration();

  /// Copies parameter values from \p Other (architectures must match).
  /// Used for DQN target-network synchronization.
  void copyParamsFrom(Network &Other);

  /// Writes all parameters to a binary file; returns false on I/O failure.
  /// The architecture is not stored — load into an identically built net.
  bool saveParams(const std::string &Path);

  /// Reads parameters written by saveParams; returns false on mismatch.
  bool loadParams(const std::string &Path);

private:
  std::vector<std::unique_ptr<Layer>> Layers;
};

/// Builds a fully connected ReLU network: InSize -> Hidden... -> OutSize.
/// The hidden layout mirrors au_config's (layers, neuron1, ...) arguments;
/// the input and output sizes are "automatically computed" by the runtime as
/// in the paper.
Network buildDnn(int InSize, const std::vector<int> &Hidden, int OutSize,
                 Rng &Rand);

/// Builds the DeepMind-style CNN used by the Raw baselines: conv/pool
/// feature stages over a (Channels, Side, Side) input, then dense hidden
/// layers. \p Side must be a multiple of 4 and at least 12.
Network buildDeepMindCnn(int Channels, int Side,
                         const std::vector<int> &Hidden, int OutSize,
                         Rng &Rand);

} // namespace nn
} // namespace au

#endif // AU_NN_NETWORK_H
