//===- nn/Workspace.h - Per-thread tensor arena ----------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-thread recycling arena for intermediate tensors. acquire() hands out
/// a tensor whose buffer comes from a thread-local freelist (contents
/// UNINITIALIZED — callers that accumulate must fill(0) first); release()
/// returns the buffer to the freelist. Buffer capacities converge on the
/// high-water mark of the workload, so steady-state forwardBatch /
/// backwardBatch / TS-mode inference perform zero heap allocations.
///
/// Ownership protocol (DESIGN.md §9): a layer's forwardBatch/backwardBatch
/// returns an acquired tensor; the Network chain releases each intermediate
/// as soon as the next layer has consumed it; the trainers release the final
/// prediction and gradient tensors. Tensors that escape to callers (predict
/// results copied into user buffers) are released by the trainer before
/// returning. Releasing a tensor you did not acquire is safe — the buffer
/// simply joins the freelist — but releases must happen on the acquiring
/// thread for the freelist to stay warm.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_WORKSPACE_H
#define AU_NN_WORKSPACE_H

#include "nn/Tensor.h"

#include <cstddef>
#include <vector>

namespace au {
namespace nn {

/// The per-thread tensor arena. All members are static; state lives in
/// thread_local storage inside Workspace.cpp.
class Workspace {
public:
  /// Returns a tensor of \p Shape backed by a recycled buffer when one with
  /// sufficient capacity exists. Contents are UNINITIALIZED.
  static Tensor acquire(const std::vector<int> &Shape);

  /// Brace-list form; avoids materializing a heap-backed shape vector at the
  /// call site (the initializer list lives on the stack).
  static Tensor acquire(std::initializer_list<int> Shape);

  /// Returns \p T's buffer to this thread's freelist; \p T becomes empty.
  static void release(Tensor &T);

  /// Number of buffers currently parked on this thread's freelist.
  static size_t freeCount();

  /// Drops every parked buffer on this thread (tests; memory pressure).
  static void clear();
};

} // namespace nn
} // namespace au

#endif // AU_NN_WORKSPACE_H
