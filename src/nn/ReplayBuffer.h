//===- nn/ReplayBuffer.h - Sharded experience-replay ring ------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The experience-replay store behind QLearner, rebuilt for the parallel
/// actor pipeline (DESIGN.md §8): a preallocated ring buffer split into one
/// shard per actor. Two properties matter:
///
///  * Writes are lock-free across actors: actor k only ever touches shard
///    k, so K actors can record transitions concurrently with no
///    synchronization and no allocation in the steady state (each ring slot
///    keeps its state buffers across overwrites).
///
///  * Reads are deterministic: the merged view presented to the sampler is
///    always shard 0's transitions oldest-first, then shard 1's, and so on —
///    a pure function of what was inserted, never of which thread inserted
///    it first. Training draws identical minibatches at any thread count.
///
/// With one shard this is exactly the FIFO the serial QLearner used: index
/// i is the i-th oldest transition, and capacity overflow evicts the
/// oldest.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_REPLAYBUFFER_H
#define AU_NN_REPLAYBUFFER_H

#include <cassert>
#include <cstddef>
#include <vector>

namespace au {
namespace nn {

/// One replay transition.
struct Transition {
  std::vector<float> State;
  int Action;
  float Reward;
  std::vector<float> NextState;
  bool Terminal;
};

/// A fixed-capacity ring of transitions sharded by actor.
class ShardedReplay {
public:
  /// (Re)configures the buffer: \p NumShards actor shards sharing
  /// \p Capacity total slots (each shard gets the same fixed share, at
  /// least one slot). Drops any stored transitions; slot buffers of an
  /// existing configuration are retained where shard count is unchanged.
  void configure(int NumShards, int Capacity) {
    assert(NumShards > 0 && Capacity > 0 && "empty replay configuration");
    ShardCap = static_cast<size_t>((Capacity + NumShards - 1) / NumShards);
    if (Shards.size() != static_cast<size_t>(NumShards))
      Shards.assign(static_cast<size_t>(NumShards), {});
    for (Shard &S : Shards) {
      S.Ring.resize(ShardCap);
      S.Head = 0;
      S.Count = 0;
    }
  }

  int numShards() const { return static_cast<int>(Shards.size()); }
  size_t shardCapacity() const { return ShardCap; }

  /// Total transitions currently stored across all shards.
  size_t size() const {
    size_t N = 0;
    for (const Shard &S : Shards)
      N += S.Count;
    return N;
  }

  size_t shardSize(int S) const { return shard(S).Count; }

  /// Records \p T into \p ShardIdx, evicting that shard's oldest transition
  /// when the shard is full. Distinct shards may be pushed concurrently;
  /// one shard must not.
  void push(int ShardIdx, Transition T) {
    Shard &S = shard(ShardIdx);
    S.Ring[S.slotForPush(ShardCap)] = std::move(T);
  }

  /// push() without the temporary: copies the raw state buffers straight
  /// into the slot's retained vectors, so the steady-state record makes no
  /// allocations at all (the actor hot path).
  void emplace(int ShardIdx, const float *State, size_t StateLen, int Action,
               float Reward, const float *NextState, size_t NextLen,
               bool Terminal) {
    Shard &S = shard(ShardIdx);
    Transition &Slot = S.Ring[S.slotForPush(ShardCap)];
    Slot.State.assign(State, State + StateLen);
    Slot.Action = Action;
    Slot.Reward = Reward;
    Slot.NextState.assign(NextState, NextState + NextLen);
    Slot.Terminal = Terminal;
  }

  /// The \p I-th transition of the deterministic merged view: shard-major,
  /// oldest-first within each shard.
  const Transition &at(size_t I) const {
    for (const Shard &S : Shards) {
      if (I < S.Count)
        return S.Ring[(S.Head + I) % ShardCap];
      I -= S.Count;
    }
    assert(false && "replay index out of range");
    return Shards.front().Ring.front();
  }

private:
  struct Shard {
    std::vector<Transition> Ring;
    size_t Head = 0;  ///< Index of the oldest stored transition.
    size_t Count = 0; ///< Stored transitions (<= capacity).

    /// Advances the ring bookkeeping for one push and returns the slot to
    /// write: the first free slot, or the oldest one (evicting it) when
    /// full.
    size_t slotForPush(size_t Cap) {
      size_t Slot = (Head + Count) % Cap;
      if (Count < Cap) {
        ++Count;
      } else {
        Head = (Head + 1) % Cap; // Full: overwrite (evict) the oldest.
      }
      return Slot;
    }
  };

  Shard &shard(int I) {
    assert(I >= 0 && I < numShards() && "shard index out of range");
    return Shards[static_cast<size_t>(I)];
  }
  const Shard &shard(int I) const {
    assert(I >= 0 && I < numShards() && "shard index out of range");
    return Shards[static_cast<size_t>(I)];
  }

  std::vector<Shard> Shards;
  size_t ShardCap = 0;
};

} // namespace nn
} // namespace au

#endif // AU_NN_REPLAYBUFFER_H
