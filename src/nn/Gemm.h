//===- nn/Gemm.h - SGEMM micro-kernels and im2col lowering -----*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched compute engine's kernels: a runtime-dispatched SGEMM with a
/// transpose-aware interface, and the im2col/col2im lowering that expresses
/// Conv2D forward, input-gradient, and weight-gradient as GEMM. Every kernel
/// accumulates each output element in a fixed (k-ascending) order regardless
/// of blocking, tiling, or thread count, so results are bitwise reproducible
/// at any AU_NN_THREADS within one backend.
///
/// Three engines are selectable at runtime via AU_NN_BACKEND:
///
///  * simd    — AVX2/FMA 6x16 register-tile micro-kernel over panel-packed
///              operands (the default when the CPU supports AVX2 and FMA).
///  * blocked — the portable blocked-scalar kernel ("gemm" is accepted as a
///              legacy alias); also the fallback on CPUs without AVX2/FMA.
///  * naive   — the original scalar per-sample layer kernels, kept as the
///              reference implementation for differential testing.
///
/// Weight matrices can be pre-packed once into the active engine's fast
/// layout and cached on the layer (a PackedOperand), invalidated by the
/// layer's parameter-generation counter; see DESIGN.md §9.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_GEMM_H
#define AU_NN_GEMM_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace au {
namespace nn {

/// Which compute engine the trainers and batched layer paths use.
enum class Backend {
  Simd,    ///< AVX2/FMA micro-kernel engine (default where supported).
  Blocked, ///< Portable blocked-scalar GEMM/im2col engine.
  Naive    ///< Original scalar per-sample reference kernels.
};

/// Whether this process can run the simd engine (compiled for x86 and the
/// CPU reports AVX2 + FMA).
bool simdSupported();

/// The active backend: AU_NN_BACKEND=simd|blocked|naive on first query
/// ("gemm" is accepted as an alias for blocked), unless overridden by
/// setBackend(). Defaults to simd when supported, else blocked.
Backend backend();

/// Overrides the active backend (tests and benchmarks). Requesting simd on
/// hardware without AVX2/FMA falls back to blocked.
void setBackend(Backend B);

/// The backend this process starts with: AU_NN_BACKEND if set, else simd
/// clamped to the hardware. Lets tests restore the ambient default.
Backend defaultBackend();

/// Lower-case engine name for logs and benchmark output.
const char *backendName(Backend B);

/// C = Alpha * op(A) * op(B) + Beta * C over row-major matrices, where
/// op(X) = X or X^T per the Trans flags. op(A) is M x K, op(B) is K x N and
/// C is M x N; Lda/Ldb/Ldc are the row strides of the *stored* matrices.
/// Rows of C are computed in parallel; each element accumulates k-ascending,
/// so the result is independent of the thread count.
void sgemm(bool TransA, bool TransB, int M, int N, int K, float Alpha,
           const float *A, int Lda, const float *B, int Ldb, float Beta,
           float *C, int Ldc);

//===----------------------------------------------------------------------===//
// Pre-packed weight operands (DESIGN.md §9: packing lifecycle)
//===----------------------------------------------------------------------===//

/// One GEMM operand held in the active engine's fast layout: the blocked
/// engine stores plain row-major op(X); the simd engine stores register-tile
/// panels (6-row panels for the A side, 16-column panels for the B side).
/// A layer caches one of these per weight-consuming GEMM and re-packs only
/// when its parameter generation or the active engine changes.
struct PackedOperand {
  std::vector<float> Data;
  int Rows = 0, Cols = 0;            ///< Logical op(X) extents.
  Backend For = Backend::Naive;      ///< Engine the layout was packed for.
  uint64_t Gen = 0;                  ///< Parameter generation when packed.
  bool Present = false;

  /// True when the cache can serve the active engine at generation \p G.
  bool fresh(Backend Engine, uint64_t G) const {
    return Present && For == Engine && Gen == G;
  }
};

/// The engine whose data layout sgemm actually runs under the current
/// backend (naive still routes explicit sgemm calls through blocked).
Backend packEngine();

/// Ensures \p P holds op(A) = M x K (stored \p A with row stride \p Lda,
/// transposed per \p TransA) packed for the active engine at parameter
/// generation \p Gen; re-packs only when stale. Not thread-safe: call before
/// entering any parallel region that consumes \p P.
void ensurePackedA(PackedOperand &P, uint64_t Gen, bool TransA, int M, int K,
                   const float *A, int Lda);

/// Ensures \p P holds op(B) = K x N packed for the active engine (see
/// ensurePackedA).
void ensurePackedB(PackedOperand &P, uint64_t Gen, bool TransB, int K, int N,
                   const float *B, int Ldb);

/// sgemm with a pre-packed left operand (\p PA from ensurePackedA, same
/// active engine). Safe to call concurrently from disjoint-output tasks.
void sgemmPackedA(const PackedOperand &PA, bool TransB, int M, int N, int K,
                  float Alpha, const float *B, int Ldb, float Beta, float *C,
                  int Ldc);

/// sgemm with a pre-packed right operand (\p PB from ensurePackedB).
void sgemmPackedB(bool TransA, const PackedOperand &PB, int M, int N, int K,
                  float Alpha, const float *A, int Lda, float Beta, float *C,
                  int Ldc);

/// Simd-only conv forward GEMM: C = op(A) * B + bias[row], where \p PA is a
/// simd-packed weight matrix and \p B is the K x N im2col column matrix
/// (row stride \p Ldb). The per-output-channel bias seeds the micro-kernel
/// accumulators, so no separate bias fill or Beta read-modify pass touches
/// C. Safe to call concurrently from disjoint-output tasks.
void sgemmConvBias(const PackedOperand &PA, int M, int N, int K,
                   const float *B, int Ldb, const float *Bias, float *C,
                   int Ldc);

//===----------------------------------------------------------------------===//
// Elementwise kernels (AVX2-vectorized under the simd engine)
//===----------------------------------------------------------------------===//

/// Y[i] = max(Y[i], 0). Identical results under every engine (no
/// accumulation), vectorized under simd.
void reluForwardKernel(float *Y, size_t N);

/// G[i] = X[i] > 0 ? G[i] : 0.
void reluBackwardKernel(float *G, const float *X, size_t N);

/// Fills each of \p Rows rows of \p Y (row stride \p Cols) with \p Bias.
void biasAddRowsKernel(float *Y, const float *Bias, int Rows, int Cols);

/// Batched MSE: writes G = 2 * (P - T) / Cols and returns the sum over rows
/// of each row's mean squared error. The simd engine accumulates each row in
/// 8 float lanes folded in a fixed order (deterministic, but rounded
/// differently from the scalar engines).
double mseBatchKernel(const float *P, const float *T, float *G, int Rows,
                      int Cols);

/// Fused Adam update over one parameter tensor under the simd engine:
/// single-precision moment update, bias correction, parameter step, and
/// gradient clear in one pass. InvBias1/InvBias2 are 1 / (1 - beta^t).
void adamUpdateKernel(float *W, float *G, float *M, float *V, size_t N,
                      float Lr, float B1, float B2, float Eps, float InvBias1,
                      float InvBias2, float Scale);

/// Whether the elementwise/optimizer kernels above take their vectorized
/// simd forms (active backend is simd on supported hardware).
bool simdKernelsActive();

//===----------------------------------------------------------------------===//
// im2col / col2im
//===----------------------------------------------------------------------===//

/// Number of output rows/columns of a valid convolution.
inline int convOutDim(int InDim, int K, int S) { return (InDim - K) / S + 1; }

/// Lowers a (C, H, W) input to the column matrix Col[C*K*K][OH*OW] with
/// Col[(c*K + ky)*K + kx][oy*OW + ox] = In[c][oy*S + ky][ox*S + kx], so a
/// valid convolution becomes Weights[OutC][C*K*K] * Col.
void im2col(const float *In, int C, int H, int W, int K, int S, float *Col);

/// Transposed scatter of im2col: accumulates Col back into the (C, H, W)
/// image \p In (+=), used to form convolution input gradients.
void col2im(const float *Col, int C, int H, int W, int K, int S, float *In);

} // namespace nn
} // namespace au

#endif // AU_NN_GEMM_H
