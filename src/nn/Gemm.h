//===- nn/Gemm.h - Blocked SGEMM and im2col kernels ------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The batched compute engine's kernels: a blocked, row-parallel SGEMM with a
/// transpose-aware interface, and the im2col/col2im lowering that expresses
/// Conv2D forward, input-gradient, and weight-gradient as GEMM. Every kernel
/// accumulates each output element in a fixed (k-ascending) order regardless
/// of blocking or thread count, so results are bitwise reproducible.
///
/// The engine is selectable at runtime: AU_NN_BACKEND=naive keeps the
/// original scalar per-sample layer kernels as a reference implementation for
/// differential testing; the default (gemm) routes minibatches through the
/// kernels in this file.
///
//===----------------------------------------------------------------------===//

#ifndef AU_NN_GEMM_H
#define AU_NN_GEMM_H

#include <cstddef>

namespace au {
namespace nn {

/// Which compute engine the trainers and batched layer paths use.
enum class Backend {
  Gemm, ///< Batched GEMM/im2col kernels (default).
  Naive ///< Original scalar per-sample reference kernels.
};

/// The active backend: AU_NN_BACKEND=naive|gemm on first query, unless
/// overridden by setBackend().
Backend backend();

/// Overrides the active backend (tests and benchmarks).
void setBackend(Backend B);

/// C = Alpha * op(A) * op(B) + Beta * C over row-major matrices, where
/// op(X) = X or X^T per the Trans flags. op(A) is M x K, op(B) is K x N and
/// C is M x N; Lda/Ldb/Ldc are the row strides of the *stored* matrices.
/// Rows of C are computed in parallel; each element accumulates k-ascending,
/// so the result is independent of the thread count.
void sgemm(bool TransA, bool TransB, int M, int N, int K, float Alpha,
           const float *A, int Lda, const float *B, int Ldb, float Beta,
           float *C, int Ldc);

/// Number of output rows/columns of a valid convolution.
inline int convOutDim(int InDim, int K, int S) { return (InDim - K) / S + 1; }

/// Lowers a (C, H, W) input to the column matrix Col[C*K*K][OH*OW] with
/// Col[(c*K + ky)*K + kx][oy*OW + ox] = In[c][oy*S + ky][ox*S + kx], so a
/// valid convolution becomes Weights[OutC][C*K*K] * Col.
void im2col(const float *In, int C, int H, int W, int K, int S, float *Col);

/// Transposed scatter of im2col: accumulates Col back into the (C, H, W)
/// image \p In (+=), used to form convolution input gradients.
void col2im(const float *Col, int C, int H, int W, int K, int S, float *In);

} // namespace nn
} // namespace au

#endif // AU_NN_GEMM_H
