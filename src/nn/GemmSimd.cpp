//===- nn/GemmSimd.cpp - AVX2/FMA kernel bodies ---------------------------===//
//
// This translation unit is compiled with -mavx2 -mfma (see src/nn/CMakeLists)
// while the rest of the library stays at the baseline architecture. The
// dispatcher in Gemm.cpp only calls in here after simdSupported() confirmed
// the CPU at runtime, so no AVX2 instruction can reach an unsupported core.
//
// The SGEMM micro-kernel computes a 6x16 register tile: 12 ymm accumulators
// (6 rows x two 8-lane vectors) fed by one broadcast per A element and two
// FMAs, the classic BLIS-style inner loop. Each C element is produced by a
// single k-ascending FMA chain, so results do not depend on how row panels
// are scheduled across threads.
//
//===----------------------------------------------------------------------===//

#include "nn/Gemm.h"
#include "nn/GemmSimdKernels.h"

#if defined(__AVX2__) && defined(__FMA__)

#include <cassert>
#include <cmath>
#include <cstring>
#include <immintrin.h>

using namespace au;
using namespace au::nn;
using namespace au::nn::simd;

namespace {

/// Mask with the first \p N of 8 lanes enabled (0 < N < 8).
inline __m256i tailMask(int N) {
  alignas(32) static const int Bits[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                           0,  0,  0,  0,  0,  0,  0,  0};
  return _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Bits + 8 - N));
}

/// Writes one 8-lane group of C: C = Alpha * Acc + Beta * C over the first
/// \p Count lanes. Beta == 0 must not read C (it may be uninitialized).
inline void storeGroup(float *Dst, __m256 Acc, int Count, __m256 AlphaV,
                       float Beta, __m256 BetaV) {
  if (Count >= 8) {
    __m256 R = Beta == 0.0f
                   ? _mm256_mul_ps(AlphaV, Acc)
                   : _mm256_fmadd_ps(BetaV, _mm256_loadu_ps(Dst),
                                     _mm256_mul_ps(AlphaV, Acc));
    _mm256_storeu_ps(Dst, R);
    return;
  }
  if (Count <= 0)
    return;
  __m256i Msk = tailMask(Count);
  __m256 R = Beta == 0.0f
                 ? _mm256_mul_ps(AlphaV, Acc)
                 : _mm256_fmadd_ps(BetaV, _mm256_maskload_ps(Dst, Msk),
                                   _mm256_mul_ps(AlphaV, Acc));
  _mm256_maskstore_ps(Dst, Msk, R);
}

/// One R x 16 register tile: rows [RowBase, RowBase + R) of C against one
/// B panel. R is a compile-time constant and every accumulator is an
/// individually named __m256 guarded by if constexpr — an Acc[R] array here
/// makes GCC spill the whole tile to the stack on every k iteration,
/// roughly halving throughput. A non-null \p BiasRow seeds each row's
/// accumulators with BiasRow[row] (requires Alpha == 1, Beta == 0), fusing
/// the conv bias fill into the GEMM.
template <int R>
void panelTile(const float *APan, const float *BPan, int RowBase, int J0,
               int Cols, int K, __m256 AlphaV, float Beta, __m256 BetaV,
               const float *BiasRow, float *C, int Ldc) {
  static_assert(R >= 1 && R <= MR, "row count exceeds the register tile");
  {
    __m256 Z = _mm256_setzero_ps();
    __m256 Acc00 = Z, Acc01 = Z, Acc10 = Z, Acc11 = Z, Acc20 = Z, Acc21 = Z,
           Acc30 = Z, Acc31 = Z, Acc40 = Z, Acc41 = Z, Acc50 = Z, Acc51 = Z;
    if (BiasRow) {
      Acc00 = Acc01 = _mm256_set1_ps(BiasRow[RowBase]);
      if constexpr (R > 1)
        Acc10 = Acc11 = _mm256_set1_ps(BiasRow[RowBase + 1]);
      if constexpr (R > 2)
        Acc20 = Acc21 = _mm256_set1_ps(BiasRow[RowBase + 2]);
      if constexpr (R > 3)
        Acc30 = Acc31 = _mm256_set1_ps(BiasRow[RowBase + 3]);
      if constexpr (R > 4)
        Acc40 = Acc41 = _mm256_set1_ps(BiasRow[RowBase + 4]);
      if constexpr (R > 5)
        Acc50 = Acc51 = _mm256_set1_ps(BiasRow[RowBase + 5]);
    }
    const float *AK = APan;
    const float *BK = BPan;
    for (int Kk = 0; Kk < K; ++Kk, AK += MR, BK += NR) {
      __m256 B0 = _mm256_loadu_ps(BK);
      __m256 B1 = _mm256_loadu_ps(BK + 8);
      __m256 A = _mm256_broadcast_ss(AK);
      Acc00 = _mm256_fmadd_ps(A, B0, Acc00);
      Acc01 = _mm256_fmadd_ps(A, B1, Acc01);
      if constexpr (R > 1) {
        A = _mm256_broadcast_ss(AK + 1);
        Acc10 = _mm256_fmadd_ps(A, B0, Acc10);
        Acc11 = _mm256_fmadd_ps(A, B1, Acc11);
      }
      if constexpr (R > 2) {
        A = _mm256_broadcast_ss(AK + 2);
        Acc20 = _mm256_fmadd_ps(A, B0, Acc20);
        Acc21 = _mm256_fmadd_ps(A, B1, Acc21);
      }
      if constexpr (R > 3) {
        A = _mm256_broadcast_ss(AK + 3);
        Acc30 = _mm256_fmadd_ps(A, B0, Acc30);
        Acc31 = _mm256_fmadd_ps(A, B1, Acc31);
      }
      if constexpr (R > 4) {
        A = _mm256_broadcast_ss(AK + 4);
        Acc40 = _mm256_fmadd_ps(A, B0, Acc40);
        Acc41 = _mm256_fmadd_ps(A, B1, Acc41);
      }
      if constexpr (R > 5) {
        A = _mm256_broadcast_ss(AK + 5);
        Acc50 = _mm256_fmadd_ps(A, B0, Acc50);
        Acc51 = _mm256_fmadd_ps(A, B1, Acc51);
      }
    }
    float *CRow = C + static_cast<size_t>(RowBase) * Ldc + J0;
    storeGroup(CRow, Acc00, Cols, AlphaV, Beta, BetaV);
    storeGroup(CRow + 8, Acc01, Cols - 8, AlphaV, Beta, BetaV);
    if constexpr (R > 1) {
      CRow += Ldc;
      storeGroup(CRow, Acc10, Cols, AlphaV, Beta, BetaV);
      storeGroup(CRow + 8, Acc11, Cols - 8, AlphaV, Beta, BetaV);
    }
    if constexpr (R > 2) {
      CRow += Ldc;
      storeGroup(CRow, Acc20, Cols, AlphaV, Beta, BetaV);
      storeGroup(CRow + 8, Acc21, Cols - 8, AlphaV, Beta, BetaV);
    }
    if constexpr (R > 3) {
      CRow += Ldc;
      storeGroup(CRow, Acc30, Cols, AlphaV, Beta, BetaV);
      storeGroup(CRow + 8, Acc31, Cols - 8, AlphaV, Beta, BetaV);
    }
    if constexpr (R > 4) {
      CRow += Ldc;
      storeGroup(CRow, Acc40, Cols, AlphaV, Beta, BetaV);
      storeGroup(CRow + 8, Acc41, Cols - 8, AlphaV, Beta, BetaV);
    }
    if constexpr (R > 5) {
      CRow += Ldc;
      storeGroup(CRow, Acc50, Cols, AlphaV, Beta, BetaV);
      storeGroup(CRow + 8, Acc51, Cols - 8, AlphaV, Beta, BetaV);
    }
  }
}

/// Half-width variant of panelTile for a trailing B panel with at most 8
/// live columns: only the low 8-lane group is loaded, accumulated, and
/// stored, halving the FMA work the zero-padded lanes would otherwise burn.
/// Live lanes see the identical k-ascending chain, so results are unchanged.
template <int R>
void panelTileHalf(const float *APan, const float *BPan, int RowBase, int J0,
                   int Cols, int K, __m256 AlphaV, float Beta, __m256 BetaV,
                   const float *BiasRow, float *C, int Ldc) {
  static_assert(R >= 1 && R <= MR, "row count exceeds the register tile");
  __m256 Z = _mm256_setzero_ps();
  __m256 Acc0 = Z, Acc1 = Z, Acc2 = Z, Acc3 = Z, Acc4 = Z, Acc5 = Z;
  if (BiasRow) {
    Acc0 = _mm256_set1_ps(BiasRow[RowBase]);
    if constexpr (R > 1)
      Acc1 = _mm256_set1_ps(BiasRow[RowBase + 1]);
    if constexpr (R > 2)
      Acc2 = _mm256_set1_ps(BiasRow[RowBase + 2]);
    if constexpr (R > 3)
      Acc3 = _mm256_set1_ps(BiasRow[RowBase + 3]);
    if constexpr (R > 4)
      Acc4 = _mm256_set1_ps(BiasRow[RowBase + 4]);
    if constexpr (R > 5)
      Acc5 = _mm256_set1_ps(BiasRow[RowBase + 5]);
  }
  const float *AK = APan;
  const float *BK = BPan;
  for (int Kk = 0; Kk < K; ++Kk, AK += MR, BK += NR) {
    __m256 B0 = _mm256_loadu_ps(BK);
    Acc0 = _mm256_fmadd_ps(_mm256_broadcast_ss(AK), B0, Acc0);
    if constexpr (R > 1)
      Acc1 = _mm256_fmadd_ps(_mm256_broadcast_ss(AK + 1), B0, Acc1);
    if constexpr (R > 2)
      Acc2 = _mm256_fmadd_ps(_mm256_broadcast_ss(AK + 2), B0, Acc2);
    if constexpr (R > 3)
      Acc3 = _mm256_fmadd_ps(_mm256_broadcast_ss(AK + 3), B0, Acc3);
    if constexpr (R > 4)
      Acc4 = _mm256_fmadd_ps(_mm256_broadcast_ss(AK + 4), B0, Acc4);
    if constexpr (R > 5)
      Acc5 = _mm256_fmadd_ps(_mm256_broadcast_ss(AK + 5), B0, Acc5);
  }
  float *CRow = C + static_cast<size_t>(RowBase) * Ldc + J0;
  storeGroup(CRow, Acc0, Cols, AlphaV, Beta, BetaV);
  if constexpr (R > 1) {
    CRow += Ldc;
    storeGroup(CRow, Acc1, Cols, AlphaV, Beta, BetaV);
  }
  if constexpr (R > 2) {
    CRow += Ldc;
    storeGroup(CRow, Acc2, Cols, AlphaV, Beta, BetaV);
  }
  if constexpr (R > 3) {
    CRow += Ldc;
    storeGroup(CRow, Acc3, Cols, AlphaV, Beta, BetaV);
  }
  if constexpr (R > 4) {
    CRow += Ldc;
    storeGroup(CRow, Acc4, Cols, AlphaV, Beta, BetaV);
  }
  if constexpr (R > 5) {
    CRow += Ldc;
    storeGroup(CRow, Acc5, Cols, AlphaV, Beta, BetaV);
  }
}

/// Dispatches one register tile at compile-time row count \p R, taking the
/// half-width path when the panel has at most 8 live columns.
template <int R>
inline void panelTileDispatch(const float *APan, const float *BPan,
                              int RowBase, int J0, int Cols, int K,
                              __m256 AlphaV, float Beta, __m256 BetaV,
                              const float *BiasRow, float *C, int Ldc) {
  if (Cols <= 8)
    panelTileHalf<R>(APan, BPan, RowBase, J0, Cols, K, AlphaV, Beta, BetaV,
                     BiasRow, C, Ldc);
  else
    panelTile<R>(APan, BPan, RowBase, J0, Cols, K, AlphaV, Beta, BetaV,
                 BiasRow, C, Ldc);
}

} // namespace

void simd::packAPanels(const float *A, int Lda, bool Trans, int M, int K,
                       float *Dst) {
  const int NPanels = numAPanels(M);
  for (int P = 0; P < NPanels; ++P) {
    int Row0 = P * MR;
    int Live = M - Row0 < MR ? M - Row0 : MR;
    float *Pan = Dst + static_cast<size_t>(P) * K * MR;
    if (Live < MR)
      std::memset(Pan, 0, static_cast<size_t>(K) * MR * sizeof(float));
    if (Trans) {
      // op(A)(i, k) = A[k * Lda + i]: stream rows of the stored matrix.
      for (int Kk = 0; Kk < K; ++Kk) {
        const float *Src = A + static_cast<size_t>(Kk) * Lda + Row0;
        float *Out = Pan + static_cast<size_t>(Kk) * MR;
        for (int I = 0; I < Live; ++I)
          Out[I] = Src[I];
      }
    } else {
      for (int I = 0; I < Live; ++I) {
        const float *Src = A + static_cast<size_t>(Row0 + I) * Lda;
        float *Out = Pan + I;
        for (int Kk = 0; Kk < K; ++Kk)
          Out[static_cast<size_t>(Kk) * MR] = Src[Kk];
      }
    }
  }
}

void simd::packBPanels(const float *B, int Ldb, bool Trans, int K, int N,
                       float *Dst) {
  const int NPanels = numBPanels(N);
  for (int Q = 0; Q < NPanels; ++Q) {
    int Col0 = Q * NR;
    int Live = N - Col0 < NR ? N - Col0 : NR;
    float *Pan = Dst + static_cast<size_t>(Q) * K * NR;
    if (Live < NR)
      std::memset(Pan, 0, static_cast<size_t>(K) * NR * sizeof(float));
    if (Trans) {
      // op(B)(k, j) = B[j * Ldb + k]: gather one stored row per column.
      for (int J = 0; J < Live; ++J) {
        const float *Src = B + static_cast<size_t>(Col0 + J) * Ldb;
        float *Out = Pan + J;
        for (int Kk = 0; Kk < K; ++Kk)
          Out[static_cast<size_t>(Kk) * NR] = Src[Kk];
      }
    } else {
      for (int Kk = 0; Kk < K; ++Kk) {
        const float *Src = B + static_cast<size_t>(Kk) * Ldb + Col0;
        float *Out = Pan + static_cast<size_t>(Kk) * NR;
        for (int J = 0; J < Live; ++J)
          Out[J] = Src[J];
      }
    }
  }
}

void simd::microKernelRange(int PanelBegin, int PanelEnd, int M, int N, int K,
                            float Alpha, const float *APanels,
                            const float *BPanels, float Beta,
                            const float *BiasRow, float *C, int Ldc) {
  assert((!BiasRow || (Alpha == 1.0f && Beta == 0.0f)) &&
         "bias fusion requires a plain C = A*B + bias store");
  const int NPanels = numBPanels(N);
  const __m256 AlphaV = _mm256_set1_ps(Alpha);
  const __m256 BetaV = _mm256_set1_ps(Beta);
  // B panels on the outside: one K x 16 panel stays L1-resident while every
  // A panel of this thread's range streams past it. The full B panel set can
  // exceed L1 (e.g. 50KB for the CNN stage-2 conv), so the P-outer order
  // would re-stream it once per row panel. Tile order does not change
  // results: each C element is still one k-ascending FMA chain.
  for (int Q = 0; Q < NPanels; ++Q) {
    const float *BPan = BPanels + static_cast<size_t>(Q) * K * NR;
    const int J0 = Q * NR;
    const int Cols = N - J0; // >= 1; may exceed NR on interior panels.
    for (int P = PanelBegin; P < PanelEnd; ++P) {
      const float *APan = APanels + static_cast<size_t>(P) * K * MR;
      int Row0 = P * MR;
      int Live = M - Row0 < MR ? M - Row0 : MR;
      switch (Live) {
      case 1:
        panelTileDispatch<1>(APan, BPan, Row0, J0, Cols, K, AlphaV, Beta,
                             BetaV, BiasRow, C, Ldc);
        break;
      case 2:
        panelTileDispatch<2>(APan, BPan, Row0, J0, Cols, K, AlphaV, Beta,
                             BetaV, BiasRow, C, Ldc);
        break;
      case 3:
        panelTileDispatch<3>(APan, BPan, Row0, J0, Cols, K, AlphaV, Beta,
                             BetaV, BiasRow, C, Ldc);
        break;
      case 4:
        panelTileDispatch<4>(APan, BPan, Row0, J0, Cols, K, AlphaV, Beta,
                             BetaV, BiasRow, C, Ldc);
        break;
      case 5:
        panelTileDispatch<5>(APan, BPan, Row0, J0, Cols, K, AlphaV, Beta,
                             BetaV, BiasRow, C, Ldc);
        break;
      default:
        panelTileDispatch<6>(APan, BPan, Row0, J0, Cols, K, AlphaV, Beta,
                             BetaV, BiasRow, C, Ldc);
        break;
      }
    }
  }
}

namespace {

/// Copies \p N floats with overlapping unaligned vectors instead of memcpy:
/// the im2col row runs are ~OW floats, short enough that libc's dispatch
/// costs more than the copy. Overlapping the tail store rewrites bytes with
/// the same values, which is safe.
inline void copyRun(float *Dst, const float *Src, int N) {
  if (N >= 8) {
    int I = 0;
    for (; I + 8 <= N; I += 8)
      _mm256_storeu_ps(Dst + I, _mm256_loadu_ps(Src + I));
    if (I != N)
      _mm256_storeu_ps(Dst + N - 8, _mm256_loadu_ps(Src + N - 8));
    return;
  }
  if (N >= 4) {
    _mm_storeu_ps(Dst, _mm_loadu_ps(Src));
    if (N != 4)
      _mm_storeu_ps(Dst + N - 4, _mm_loadu_ps(Src + N - 4));
    return;
  }
  for (int I = 0; I < N; ++I)
    Dst[I] = Src[I];
}

} // namespace

void simd::im2colAvx(const float *In, int C, int H, int W, int K, int S,
                     float *Col) {
  int OH = convOutDim(H, K, S), OW = convOutDim(W, K, S);
  assert(OH > 0 && OW > 0 && "convolution input smaller than kernel");
  size_t OutRow = static_cast<size_t>(OH) * OW;
  for (int Ch = 0; Ch < C; ++Ch)
    for (int Ky = 0; Ky < K; ++Ky)
      for (int Kx = 0; Kx < K; ++Kx) {
        float *Dst =
            Col + (((static_cast<size_t>(Ch) * K + Ky) * K + Kx) * OutRow);
        const float *Plane =
            In + (static_cast<size_t>(Ch) * H + Ky) * W + Kx;
        for (int Oy = 0; Oy < OH; ++Oy) {
          const float *Src = Plane + static_cast<size_t>(Oy) * S * W;
          if (S == 1) {
            copyRun(Dst, Src, OW);
            Dst += OW;
          } else {
            for (int Ox = 0; Ox < OW; ++Ox)
              *Dst++ = Src[static_cast<size_t>(Ox) * S];
          }
        }
      }
}

//===----------------------------------------------------------------------===//
// Elementwise kernels
//===----------------------------------------------------------------------===//

void simd::reluForwardAvx(float *Y, size_t N) {
  const __m256 Zero = _mm256_setzero_ps();
  size_t I = 0;
  for (; I + 8 <= N; I += 8)
    _mm256_storeu_ps(Y + I, _mm256_max_ps(_mm256_loadu_ps(Y + I), Zero));
  for (; I < N; ++I)
    Y[I] = Y[I] > 0.0f ? Y[I] : 0.0f;
}

void simd::reluBackwardAvx(float *G, const float *X, size_t N) {
  const __m256 Zero = _mm256_setzero_ps();
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256 Mask = _mm256_cmp_ps(_mm256_loadu_ps(X + I), Zero, _CMP_GT_OQ);
    _mm256_storeu_ps(G + I, _mm256_and_ps(_mm256_loadu_ps(G + I), Mask));
  }
  for (; I < N; ++I)
    if (X[I] <= 0.0f)
      G[I] = 0.0f;
}

void simd::biasAddRowsAvx(float *Y, const float *Bias, int Rows, int Cols) {
  for (int R = 0; R < Rows; ++R)
    std::memcpy(Y + static_cast<size_t>(R) * Cols, Bias,
                static_cast<size_t>(Cols) * sizeof(float));
}

double simd::mseBatchAvx(const float *P, const float *T, float *G, int Rows,
                         int Cols) {
  const float InvN = 1.0f / static_cast<float>(Cols);
  const __m256 Scale = _mm256_set1_ps(2.0f * InvN);
  double Loss = 0.0;
  for (int R = 0; R < Rows; ++R) {
    size_t Base = static_cast<size_t>(R) * Cols;
    __m256 Acc = _mm256_setzero_ps();
    int I = 0;
    for (; I + 8 <= Cols; I += 8) {
      __m256 D = _mm256_sub_ps(_mm256_loadu_ps(P + Base + I),
                               _mm256_loadu_ps(T + Base + I));
      _mm256_storeu_ps(G + Base + I, _mm256_mul_ps(Scale, D));
      Acc = _mm256_fmadd_ps(D, D, Acc);
    }
    // Fixed-order lane fold, then the scalar tail — deterministic.
    alignas(32) float Lanes[8];
    _mm256_store_ps(Lanes, Acc);
    float RowSum = ((Lanes[0] + Lanes[1]) + (Lanes[2] + Lanes[3])) +
                   ((Lanes[4] + Lanes[5]) + (Lanes[6] + Lanes[7]));
    for (; I < Cols; ++I) {
      float D = P[Base + I] - T[Base + I];
      G[Base + I] = 2.0f * InvN * D;
      RowSum += D * D;
    }
    Loss += static_cast<double>(RowSum) * InvN;
  }
  return Loss;
}

void simd::adamUpdateAvx(float *W, float *G, float *M, float *V, size_t N,
                         float Lr, float B1, float B2, float Eps,
                         float InvBias1, float InvBias2, float Scale) {
  const __m256 B1V = _mm256_set1_ps(B1), C1V = _mm256_set1_ps(1.0f - B1);
  const __m256 B2V = _mm256_set1_ps(B2), C2V = _mm256_set1_ps(1.0f - B2);
  const __m256 LrV = _mm256_set1_ps(Lr), EpsV = _mm256_set1_ps(Eps);
  const __m256 IB1 = _mm256_set1_ps(InvBias1), IB2 = _mm256_set1_ps(InvBias2);
  const __m256 ScaleV = _mm256_set1_ps(Scale);
  const __m256 Zero = _mm256_setzero_ps();
  size_t I = 0;
  for (; I + 8 <= N; I += 8) {
    __m256 Gv = _mm256_mul_ps(_mm256_loadu_ps(G + I), ScaleV);
    __m256 Mv = _mm256_fmadd_ps(B1V, _mm256_loadu_ps(M + I),
                                _mm256_mul_ps(C1V, Gv));
    __m256 Vv = _mm256_fmadd_ps(B2V, _mm256_loadu_ps(V + I),
                                _mm256_mul_ps(C2V, _mm256_mul_ps(Gv, Gv)));
    _mm256_storeu_ps(M + I, Mv);
    _mm256_storeu_ps(V + I, Vv);
    __m256 MHat = _mm256_mul_ps(Mv, IB1);
    __m256 VHat = _mm256_mul_ps(Vv, IB2);
    __m256 Denom = _mm256_add_ps(_mm256_sqrt_ps(VHat), EpsV);
    __m256 StepV = _mm256_div_ps(_mm256_mul_ps(LrV, MHat), Denom);
    _mm256_storeu_ps(W + I, _mm256_sub_ps(_mm256_loadu_ps(W + I), StepV));
    _mm256_storeu_ps(G + I, Zero);
  }
  for (; I < N; ++I) {
    float Gs = G[I] * Scale;
    M[I] = B1 * M[I] + (1.0f - B1) * Gs;
    V[I] = B2 * V[I] + (1.0f - B2) * Gs * Gs;
    float MHat = M[I] * InvBias1;
    float VHat = V[I] * InvBias2;
    W[I] -= Lr * MHat / (std::sqrt(VHat) + Eps);
    G[I] = 0.0f;
  }
}

#else // !(__AVX2__ && __FMA__)

// Built without AVX2/FMA codegen (non-x86 target or a compiler that rejects
// the flags): the dispatcher reports simdSupported() == false and never
// calls these, but the symbols must still link.

#include <cstdlib>

using namespace au::nn;

namespace {
[[noreturn]] void unreachableSimd() { std::abort(); }
} // namespace

void simd::packAPanels(const float *, int, bool, int, int, float *) {
  unreachableSimd();
}
void simd::packBPanels(const float *, int, bool, int, int, float *) {
  unreachableSimd();
}
void simd::microKernelRange(int, int, int, int, int, float, const float *,
                            const float *, float, const float *, float *,
                            int) {
  unreachableSimd();
}
void simd::im2colAvx(const float *, int, int, int, int, int, float *) {
  unreachableSimd();
}
void simd::reluForwardAvx(float *, size_t) { unreachableSimd(); }
void simd::reluBackwardAvx(float *, const float *, size_t) {
  unreachableSimd();
}
void simd::biasAddRowsAvx(float *, const float *, int, int) {
  unreachableSimd();
}
double simd::mseBatchAvx(const float *, const float *, float *, int, int) {
  unreachableSimd();
}
void simd::adamUpdateAvx(float *, float *, float *, float *, size_t, float,
                         float, float, float, float, float, float) {
  unreachableSimd();
}

#endif // __AVX2__ && __FMA__
