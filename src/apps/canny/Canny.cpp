//===- apps/canny/Canny.cpp - Canny edge-detection benchmark -------------===//

#include "apps/canny/Canny.h"

#include "support/Rng.h"
#include "support/Ssim.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <deque>

using namespace au;
using namespace au::apps;
using analysis::SlPick;

//===----------------------------------------------------------------------===//
// The detector
//===----------------------------------------------------------------------===//

/// Upper magnitude covered by the histogram bins (larger values clamp into
/// the top bin). Sobel magnitudes of [0,1] images rarely exceed this.
static constexpr float HistRange = 1.5f;

/// Builds the 32-bin normalized histogram of gradient magnitudes over the
/// fixed range [0, HistRange]. Fixed binning keeps absolute contrast
/// visible in the histogram shape, which the threshold choice depends on.
static std::vector<float> magnitudeHistogram(const Image &Mag) {
  std::vector<float> Hist(CannyHistBins, 0.0f);
  for (float V : Mag.data()) {
    int Bin = std::min(CannyHistBins - 1,
                       static_cast<int>(V / HistRange * CannyHistBins));
    Hist[Bin] += 1.0f;
  }
  float N = static_cast<float>(Mag.size());
  for (float &H : Hist)
    H /= N;
  return Hist;
}

/// Magnitude value below which \p Frac of all pixels fall, derived from the
/// histogram exactly as hysteresis() in the original program does.
static float histogramThreshold(const std::vector<float> &Hist, double Frac) {
  double Cum = 0.0;
  for (int B = 0; B < CannyHistBins; ++B) {
    Cum += Hist[B];
    if (Cum >= Frac)
      return HistRange * static_cast<float>(B + 1) / CannyHistBins;
  }
  return HistRange;
}

/// Non-maximum suppression along the quantized gradient direction.
static Image nonMaxSuppress(const Image &Mag, const Image &Gx,
                            const Image &Gy) {
  Image Out(Mag.width(), Mag.height(), 0.0f);
  for (int Y = 0; Y < Mag.height(); ++Y)
    for (int X = 0; X < Mag.width(); ++X) {
      float M = Mag.at(X, Y);
      if (M <= 0.0f)
        continue;
      double Angle = std::atan2(Gy.at(X, Y), Gx.at(X, Y));
      // Quantize to 4 directions: 0, 45, 90, 135 degrees.
      int Dir = static_cast<int>(
                    std::round(Angle / (3.14159265358979 / 4.0))) &
                3;
      static const int DX[4] = {1, 1, 0, -1};
      static const int DY[4] = {0, 1, 1, 1};
      float A = Mag.atClamped(X + DX[Dir], Y + DY[Dir]);
      float B = Mag.atClamped(X - DX[Dir], Y - DY[Dir]);
      if (M >= A && M >= B)
        Out.at(X, Y) = M;
    }
  return Out;
}

/// Double-threshold hysteresis: strong pixels seed a flood fill through
/// weak pixels.
static Image hysteresis(const Image &Nms, float Lo, float Hi) {
  Image Out(Nms.width(), Nms.height(), 0.0f);
  std::deque<std::pair<int, int>> Work;
  for (int Y = 0; Y < Nms.height(); ++Y)
    for (int X = 0; X < Nms.width(); ++X)
      if (Nms.at(X, Y) >= Hi) {
        Out.at(X, Y) = 1.0f;
        Work.emplace_back(X, Y);
      }
  while (!Work.empty()) {
    auto [X, Y] = Work.front();
    Work.pop_front();
    for (int J = -1; J <= 1; ++J)
      for (int I = -1; I <= 1; ++I) {
        int Nx = X + I, Ny = Y + J;
        if (!Out.inBounds(Nx, Ny) || Out.at(Nx, Ny) > 0.0f)
          continue;
        if (Nms.at(Nx, Ny) >= Lo) {
          Out.at(Nx, Ny) = 1.0f;
          Work.emplace_back(Nx, Ny);
        }
      }
  }
  return Out;
}

Image au::apps::cannyDetect(const Image &In, const CannyParams &P,
                            CannyTrace *Trace) {
  Image SImg = gaussianSmooth(In, P.Sigma);
  Image Gx, Gy;
  sobel(SImg, Gx, Gy);
  Image Mag = gradientMagnitude(Gx, Gy);
  std::vector<float> Hist = magnitudeHistogram(Mag);
  float Hi = histogramThreshold(Hist, P.HiFrac);
  float Lo = static_cast<float>(P.LoFrac) * Hi;
  Image Nms = nonMaxSuppress(Mag, Gx, Gy);
  if (Trace) {
    Trace->Smoothed = SImg;
    Trace->Magnitude = Mag;
    Trace->Hist = Hist;
  }
  return hysteresis(Nms, Lo, Hi);
}

//===----------------------------------------------------------------------===//
// Synthetic scenes with analytic ground truth
//===----------------------------------------------------------------------===//

/// Draws a filled axis-aligned rectangle and its boundary into the truth.
static void drawRect(Image &Img, Image &Truth, int X0, int Y0, int X1, int Y1,
                     float Level) {
  X0 = std::clamp(X0, 0, Img.width() - 1);
  X1 = std::clamp(X1, 0, Img.width() - 1);
  Y0 = std::clamp(Y0, 0, Img.height() - 1);
  Y1 = std::clamp(Y1, 0, Img.height() - 1);
  for (int Y = Y0; Y <= Y1; ++Y)
    for (int X = X0; X <= X1; ++X) {
      Img.at(X, Y) = Level;
      bool Boundary = X == X0 || X == X1 || Y == Y0 || Y == Y1;
      if (Boundary)
        Truth.at(X, Y) = 1.0f;
    }
}

/// Draws a filled circle and its boundary ring.
static void drawCircle(Image &Img, Image &Truth, double Cx, double Cy,
                       double R, float Level) {
  for (int Y = 0; Y < Img.height(); ++Y)
    for (int X = 0; X < Img.width(); ++X) {
      double D = std::hypot(X - Cx, Y - Cy);
      if (D <= R)
        Img.at(X, Y) = Level;
      if (std::abs(D - R) <= 0.7)
        Truth.at(X, Y) = 1.0f;
    }
}

CannyScene au::apps::makeCannyScene(uint64_t Seed, int Side) {
  Rng R(Seed * 2654435761u + 11);
  CannyScene S;
  S.Input = Image(Side, Side, static_cast<float>(R.uniform(0.05, 0.25)));
  S.Truth = Image(Side, Side, 0.0f);

  int NumRects = static_cast<int>(R.uniformInt(2, 3));
  for (int I = 0; I < NumRects; ++I) {
    int X0 = static_cast<int>(R.uniformInt(2, Side - 20));
    int Y0 = static_cast<int>(R.uniformInt(2, Side - 20));
    int W = static_cast<int>(R.uniformInt(8, 18));
    int H = static_cast<int>(R.uniformInt(8, 18));
    drawRect(S.Input, S.Truth, X0, Y0, X0 + W, Y0 + H,
             static_cast<float>(R.uniform(0.4, 0.95)));
  }
  int NumCircles = static_cast<int>(R.uniformInt(1, 2));
  for (int I = 0; I < NumCircles; ++I)
    drawCircle(S.Input, S.Truth, R.uniform(12, Side - 12),
               R.uniform(12, Side - 12), R.uniform(5, 10),
               static_cast<float>(R.uniform(0.35, 0.9)));

  // Per-scene distortions: these are what make the ideal parameters vary.
  S.Blur = R.uniform(0.0, 1.2);
  S.Contrast = R.uniform(0.35, 1.0);
  S.Noise = R.uniform(0.01, 0.14);
  S.Input = gaussianSmooth(S.Input, S.Blur);
  for (float &P : S.Input.data()) {
    P = static_cast<float>(P * S.Contrast + R.normal(0.0, S.Noise));
    P = std::clamp(P, 0.0f, 1.0f);
  }
  return S;
}

double au::apps::cannyScore(const Image &Edges, const Image &Truth) {
  return ssim(Edges, Truth);
}

CannyParams au::apps::autotuneCanny(const CannyScene &Scene) {
  static const double Sigmas[] = {0.8, 1.4, 2.0, 2.6};
  static const double His[] = {0.80, 0.88, 0.94, 0.975};
  static const double Los[] = {0.3, 0.5, 0.7};
  CannyParams Best;
  double BestScore = -2.0;
  for (double Sg : Sigmas)
    for (double Hi : His)
      for (double Lo : Los) {
        CannyParams P{Sg, Lo, Hi};
        double Score = cannyScore(cannyDetect(Scene.Input, P), Scene.Truth);
        if (Score > BestScore) {
          BestScore = Score;
          Best = P;
        }
      }
  return Best;
}

//===----------------------------------------------------------------------===//
// Dependence profile (Fig. 9)
//===----------------------------------------------------------------------===//

void au::apps::cannyProfile(analysis::Tracer &T,
                            std::vector<std::string> &Inputs,
                            std::vector<std::string> &Targets) {
  // One profiled execution. The dependence chain of Fig. 9:
  // image -> sImg -> mag -> hist -> result, with lo/hi/sigma joining at
  // their respective consumers.
  CannyScene Scene = makeCannyScene(404);
  CannyTrace Trace;
  CannyParams P;
  Image Result = cannyDetect(Scene.Input, P, &Trace);

  T.markInput("image");
  T.recordDefValue("sigma", {}, "canny", P.Sigma);
  T.recordDefValue("lo", {}, "hysteresis", P.LoFrac);
  T.recordDefValue("hi", {}, "hysteresis", P.HiFrac);
  T.recordDef("sImg", {"image", "sigma"}, "smooth");
  T.recordValue("sImg", Trace.Smoothed.at(0, 0));
  T.recordDef("mag", {"sImg"}, "magnitude");
  T.recordValue("mag", Trace.Magnitude.at(0, 0));
  T.recordDef("hist", {"mag"}, "computeHist");
  T.recordValue("hist", Trace.Hist.front());
  // Secondary derived statistics enlarge the candidate pool, as a real
  // program's locals would.
  T.recordDef("maxMag", {"mag"}, "computeHist");
  T.recordDef("histPeak", {"hist"}, "hysteresis");
  T.recordDef("gx", {"sImg"}, "magnitude");
  T.recordDef("gy", {"sImg"}, "magnitude");
  T.recordDef("nms", {"mag", "gx", "gy"}, "nonMax");
  T.recordDef("result", {"hist", "nms", "lo", "hi"}, "hysteresis");
  T.recordValue("result", Result.at(0, 0));

  Inputs = {"image"};
  Targets = {"lo", "hi", "sigma"};
}

//===----------------------------------------------------------------------===//
// The experiment driver (Section 6.3)
//===----------------------------------------------------------------------===//

/// Per-version model names: the three versions are tenants of ONE engine,
/// so their models coexist in the shared store θ under distinct keys.
static std::string sigmaModelName(SlPick Pick) {
  static const char *Suffix[] = {"_min", "_med", "_raw"};
  return std::string("SigmaNN") + Suffix[static_cast<int>(Pick)];
}
static std::string threshModelName(SlPick Pick) {
  static const char *Suffix[] = {"_min", "_med", "_raw"};
  return std::string("ThreshNN") + Suffix[static_cast<int>(Pick)];
}

CannyExperiment::CannyExperiment(int NumTrain, int NumTest, uint64_t S)
    : Seed(S) {
  for (int I = 0; I < NumTrain; ++I) {
    TrainScenes.push_back(makeCannyScene(Seed + I));
    TrainOracle.push_back(autotuneCanny(TrainScenes.back()));
  }
  for (int I = 0; I < NumTest; ++I)
    TestScenes.push_back(makeCannyScene(Seed + 10000 + I));
  for (auto &Sn : Sessions)
    Sn = std::make_unique<Session>(Eng, Mode::TR);
}

std::vector<float>
CannyExperiment::thresholdFeature(const CannyScene &Scene,
                                  const CannyTrace &Trace, SlPick Pick) {
  switch (Pick) {
  case SlPick::Min:
    return Trace.Hist;
  case SlPick::Med: {
    Image Small = resize(Trace.Smoothed, CannyRawSide, CannyRawSide);
    return Small.data();
  }
  case SlPick::Raw: {
    Image Small = resize(Scene.Input, CannyRawSide, CannyRawSide);
    return Small.data();
  }
  }
  assert(false && "unknown pick");
  return {};
}

Image CannyExperiment::runAnnotated(Session &S, const CannyScene &Scene,
                                    SlPick Pick,
                                    const CannyParams &TrainParams) {
  // au_config (Fig. 11 lines 14-15); idempotent after the first call. The
  // model names carry the version so the three tenants of the shared
  // engine train independent models.
  ModelConfig SigmaCfg;
  SigmaCfg.Name = sigmaModelName(Pick);
  SigmaCfg.HiddenLayers = {48, 24};
  SigmaCfg.Seed = Seed + 1;
  S.config(SigmaCfg);
  ModelConfig ThreshCfg;
  ThreshCfg.Name = threshModelName(Pick);
  ThreshCfg.HiddenLayers = {48, 24};
  ThreshCfg.Seed = Seed + 2;
  S.config(ThreshCfg);

  CannyParams P = TrainParams;

  // Interned handles for the per-frame primitives (idempotent; the hot
  // path below is then string-free).
  NameId SigmaNN = S.intern(sigmaModelName(Pick));
  NameId ThreshNN = S.intern(threshModelName(Pick));
  NameId Img = S.intern("IMG");
  WriteBackHandle SigmaOut{S.intern("SIGMA"), 1};
  WriteBackHandle LoOut{S.intern("LO"), 1}, HiOut{S.intern("HI"), 1};

  // 1. Gaussian smoothing: predict sigma from the (downsampled) image.
  Image Small = resize(Scene.Input, CannyFeatureSide, CannyFeatureSide);
  S.extract(Img, Small.size(), Small.data().data());
  S.nn(SigmaNN, Img, {SigmaOut});
  float SigmaV = static_cast<float>(P.Sigma);
  S.writeBack(SigmaOut.Name, 1, &SigmaV);
  P.Sigma = clamp(SigmaV, 0.6, 3.0);

  // 2. Run the pipeline up to the histogram with the default parameters —
  // a fixed reference pass, so the extracted features have the same
  // distribution in training and deployment — then predict the thresholds
  // from the version's feature.
  CannyTrace Trace;
  cannyDetect(Scene.Input, CannyParams(), &Trace);
  std::vector<float> Feat = thresholdFeature(Scene, Trace, Pick);
  NameId FeatId = S.intern(Pick == SlPick::Min
                               ? "HIST"
                               : (Pick == SlPick::Med ? "SIMG" : "RAWIMG"));
  S.extract(FeatId, Feat.size(), Feat.data());
  S.nn(ThreshNN, FeatId, {LoOut, HiOut});
  float LoV = static_cast<float>(P.LoFrac);
  float HiV = static_cast<float>(P.HiFrac);
  S.writeBack(LoOut.Name, 1, &LoV);
  S.writeBack(HiOut.Name, 1, &HiV);
  P.LoFrac = clamp(LoV, 0.1, 0.95);
  P.HiFrac = clamp(HiV, 0.3, 0.985);

  // 3. Final detection with the resolved parameters.
  return cannyDetect(Scene.Input, P);
}

double CannyExperiment::train(SlPick Pick, int Epochs) {
  Session &S = *Sessions[Idx(Pick)];
  assert(S.mode() == Mode::TR && "training twice on the same version");
  Timer T;
  for (size_t I = 0; I != TrainScenes.size(); ++I)
    runAnnotated(S, TrainScenes[I], Pick, TrainOracle[I]);
  S.trainSupervised(sigmaModelName(Pick), Epochs, 16);
  S.trainSupervised(threshModelName(Pick), Epochs, 16);
  double Secs = T.seconds();
  TraceBytesPer[Idx(Pick)] = S.stats().traceBytes();
  ModelBytesPer[Idx(Pick)] =
      S.getModel(sigmaModelName(Pick))->modelSizeBytes() +
      S.getModel(threshModelName(Pick))->modelSizeBytes();
  S.switchMode(Mode::TS);
  return Secs;
}

std::vector<std::pair<int, double>>
CannyExperiment::trainEpochCurve(SlPick Pick,
                                 const std::vector<int> &EpochPoints) {
  Session &S = *Sessions[Idx(Pick)];
  assert(S.mode() == Mode::TR && "curve training on an already-trained run");
  for (size_t I = 0; I != TrainScenes.size(); ++I)
    runAnnotated(S, TrainScenes[I], Pick, TrainOracle[I]);
  TraceBytesPer[Idx(Pick)] = S.stats().traceBytes();
  ModelBytesPer[Idx(Pick)] =
      S.getModel(sigmaModelName(Pick))->modelSizeBytes() +
      S.getModel(threshModelName(Pick))->modelSizeBytes();
  std::vector<std::pair<int, double>> Curve;
  int Done = 0;
  for (int Point : EpochPoints) {
    assert(Point >= Done && "epoch points must ascend");
    if (Point > Done) {
      S.trainSupervised(sigmaModelName(Pick), Point - Done, 16);
      S.trainSupervised(threshModelName(Pick), Point - Done, 16);
      Done = Point;
    }
    S.switchMode(Mode::TS);
    Curve.emplace_back(Point, testScore(Pick));
    S.switchMode(Mode::TR);
  }
  S.switchMode(Mode::TS);
  return Curve;
}

std::vector<double> CannyExperiment::perSceneScores(SlPick Pick) {
  Session &S = *Sessions[Idx(Pick)];
  assert(S.mode() == Mode::TS && "test before train");
  std::vector<double> Scores;
  for (const CannyScene &Scene : TestScenes) {
    Image Edges = runAnnotated(S, Scene, Pick, CannyParams());
    Scores.push_back(cannyScore(Edges, Scene.Truth));
  }
  return Scores;
}

double CannyExperiment::testScore(SlPick Pick) {
  return mean(perSceneScores(Pick));
}

double CannyExperiment::baselineScore() {
  std::vector<double> Scores;
  for (const CannyScene &Scene : TestScenes)
    Scores.push_back(
        cannyScore(cannyDetect(Scene.Input, CannyParams()), Scene.Truth));
  return mean(Scores);
}

double CannyExperiment::oracleScore() {
  std::vector<double> Scores;
  for (const CannyScene &Scene : TestScenes) {
    CannyParams P = autotuneCanny(Scene);
    Scores.push_back(cannyScore(cannyDetect(Scene.Input, P), Scene.Truth));
  }
  return mean(Scores);
}

double CannyExperiment::autonomizedExecSeconds(SlPick Pick) {
  Session &S = *Sessions[Idx(Pick)];
  assert(S.mode() == Mode::TS && "timing requires a trained version");
  Timer T;
  for (const CannyScene &Scene : TestScenes)
    runAnnotated(S, Scene, Pick, CannyParams());
  return T.seconds() / static_cast<double>(TestScenes.size());
}

double CannyExperiment::baselineExecSeconds() {
  Timer T;
  for (const CannyScene &Scene : TestScenes)
    cannyDetect(Scene.Input, CannyParams());
  return T.seconds() / static_cast<double>(TestScenes.size());
}

size_t CannyExperiment::traceBytes(SlPick Pick) const {
  return TraceBytesPer[static_cast<int>(Pick)];
}

size_t CannyExperiment::modelBytes(SlPick Pick) const {
  return ModelBytesPer[static_cast<int>(Pick)];
}
