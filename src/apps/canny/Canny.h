//===- apps/canny/Canny.h - Canny edge-detection benchmark -----*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A real Canny edge detector (Canny 1986) — Gaussian smoothing, Sobel
/// gradients, non-maximum suppression and histogram-driven hysteresis — the
/// paper's primary supervised-learning case study. The three parameters the
/// user annotates as target variables are exactly the paper's: sigma for
/// the Gaussian smoothing and the low/high hysteresis thresholds.
///
/// The dataset is synthetic: scenes of known shapes whose analytic
/// boundaries provide exact ground-truth edge maps (substituting the
/// paper's expert-labelled images), distorted by per-image blur, contrast
/// and noise so the ideal parameters genuinely vary per input. A
/// grid-search autotuning oracle produces the per-image ideal parameters
/// that TR-mode runs record as labels.
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_CANNY_CANNY_H
#define AU_APPS_CANNY_CANNY_H

#include "analysis/FeatureExtraction.h"
#include "core/Engine.h"
#include "support/Image.h"

namespace au {
namespace apps {

/// The three annotated parameters.
struct CannyParams {
  double Sigma = 1.4;   ///< Gaussian smoothing width.
  double LoFrac = 0.5;  ///< Low threshold as a fraction of the high one.
  double HiFrac = 0.75; ///< High threshold as a magnitude percentile.
};

/// Intermediate program state surfaced for feature extraction: the
/// variables of Fig. 9 (image -> sImg -> mag -> hist -> result).
struct CannyTrace {
  Image Smoothed;
  Image Magnitude;
  std::vector<float> Hist; ///< 32-bin normalized magnitude histogram.
};

/// Number of magnitude histogram bins (the Min feature).
inline constexpr int CannyHistBins = 32;

/// Side length of the shared SigmaNN image input.
inline constexpr int CannyFeatureSide = 16;

/// Side length of the Med / Raw threshold features. Deliberately large
/// (the paper's Raw/Med carry the full 62500-pixel image): the point of
/// the Min version is that the 32-bin histogram carries the same decision
/// information in a far smaller, easier-to-fit input.
inline constexpr int CannyRawSide = 32;

/// Runs the detector; returns a binary edge map. \p Trace, when non-null,
/// receives the intermediates.
Image cannyDetect(const Image &In, const CannyParams &P,
                  CannyTrace *Trace = nullptr);

/// A synthetic test scene with analytic ground truth.
struct CannyScene {
  Image Input;
  Image Truth;
  double Noise = 0.0;
  double Blur = 0.0;
  double Contrast = 1.0;
};

/// Generates a deterministic scene (shapes + blur + contrast + noise).
CannyScene makeCannyScene(uint64_t Seed, int Side = 64);

/// Edge-quality score against the ground truth (mean SSIM, the paper's
/// metric). Higher is better.
double cannyScore(const Image &Edges, const Image &Truth);

/// Grid-search autotuning oracle: the per-image ideal parameters.
CannyParams autotuneCanny(const CannyScene &Scene);

/// Records the dynamic dependence structure of one Canny run into \p T,
/// reproducing Fig. 9. Returns the target-variable names {"lo","hi",
/// "sigma"} through \p Targets and the input names through \p Inputs.
void cannyProfile(analysis::Tracer &T, std::vector<std::string> &Inputs,
                  std::vector<std::string> &Targets);

/// One complete autonomization experiment over the synthetic datasets,
/// comparing the Raw / Med / Min feature versions of Algorithm 1 against
/// the default-parameter baseline (Section 6.3).
class CannyExperiment {
public:
  CannyExperiment(int NumTrain, int NumTest, uint64_t Seed);

  /// Trains the SigmaNN and threshold models for \p Pick through the
  /// runtime primitives (TR mode), for \p Epochs epochs.
  /// Returns training wall time in seconds.
  double train(analysis::SlPick Pick, int Epochs);

  /// Mean score of the trained \p Pick version on the held-out scenes.
  double testScore(analysis::SlPick Pick);

  /// Per-test-scene scores (Fig. 12).
  std::vector<double> perSceneScores(analysis::SlPick Pick);

  /// Trains incrementally and records the test score at each cumulative
  /// epoch count in \p EpochPoints (ascending) — the Fig. 13 curve.
  std::vector<std::pair<int, double>>
  trainEpochCurve(analysis::SlPick Pick, const std::vector<int> &EpochPoints);

  /// Mean score with the default parameters (the baseline row).
  double baselineScore();

  /// Mean score with the per-image autotuned oracle (upper reference).
  double oracleScore();

  /// Mean detector execution seconds per image, with (autonomized) and
  /// without (plain) the primitives.
  double autonomizedExecSeconds(analysis::SlPick Pick);
  double baselineExecSeconds();

  /// Table 2 accounting for the last train() of \p Pick.
  size_t traceBytes(analysis::SlPick Pick) const;
  size_t modelBytes(analysis::SlPick Pick) const;

private:
  /// Runs one scene through the annotated program (Fig. 11) in session
  /// \p S — the version's private ⟨σ, π⟩ over the shared engine.
  Image runAnnotated(Session &S, const CannyScene &Scene,
                     analysis::SlPick Pick, const CannyParams &TrainParams);

  /// The feature vector each version extracts.
  static std::vector<float> thresholdFeature(const CannyScene &Scene,
                                             const CannyTrace &Trace,
                                             analysis::SlPick Pick);

  int Idx(analysis::SlPick Pick) const { return static_cast<int>(Pick); }

  std::vector<CannyScene> TrainScenes;
  std::vector<CannyParams> TrainOracle;
  std::vector<CannyScene> TestScenes;
  uint64_t Seed;
  // One engine hosts all three versions as separate tenants: each version
  // is a Session with its own ⟨σ, π⟩ stores and per-version model names
  // ("SigmaNN_min", ...) in the shared model store θ (DESIGN.md §10).
  Engine Eng;
  std::vector<std::unique_ptr<Session>> Sessions{3};
  size_t TraceBytesPer[3] = {0, 0, 0};
  size_t ModelBytesPer[3] = {0, 0, 0};
};

} // namespace apps
} // namespace au

#endif // AU_APPS_CANNY_CANNY_H
