//===- apps/mario/Mario.h - Mario benchmark program ------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature of the uMario C++/SDL2 benchmark the paper autonomizes in
/// Section 2: a side-scrolling platformer with goombas (minions), pipes,
/// ditches and a flag pole. Rewards follow Fig. 2 exactly: +2 for moving
/// forward, -1 otherwise, +10 at the flag pole, -10 on death — plus the
/// optional +30 code-coverage reward of the self-testing experiment
/// (Fig. 2 line 38), backed by built-in branch-coverage instrumentation
/// standing in for gcov.
///
/// The paper's score is the pair (progress, flag-rate); progress() and
/// success() here.
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_MARIO_MARIO_H
#define AU_APPS_MARIO_MARIO_H

#include "apps/common/GameEnv.h"

#include <set>

namespace au {
namespace apps {

/// Actions: 0 = noop, 1 = left, 2 = right, 3 = jump, 4 = jump-right.
class MarioEnv : public GameEnv {
public:
  const char *name() const override { return "mario"; }
  void reset(uint64_t Seed) override;
  int numActions() const override { return 5; }
  float step(int Action) override;
  bool terminal() const override { return Dead || FlagReached; }
  bool success() const override { return FlagReached; }
  double progress() const override { return PlayerX / WorldLen; }
  int heuristicAction(Rng &R) const override;
  std::vector<Feature> features() const override;
  Image renderFrame(int Side) const override;
  void profile(analysis::Tracer &T, int Steps) override;
  std::vector<std::string> targetVariables() const override {
    return {"right", "left", "jump", "jumpRight", "actionKey"};
  }

  void saveState(std::vector<uint8_t> &Out) const override;
  void loadState(const std::vector<uint8_t> &In) override;

  //===--------------------------------------------------------------------===//
  // Self-testing support (Section 2, "Autonomization for Software
  // Self-Testing"): cumulative branch coverage with an extra reward on
  // improvement.
  //===--------------------------------------------------------------------===//

  /// Adds the paper's line-38 reward: +30 whenever a step covers a branch
  /// new to the in-process coverage counters. Those counters live in
  /// process memory, so au_restore rolls them back (exactly as KVM rolls
  /// back gcov's in-memory counters) and the bonus re-fires each episode;
  /// the cumulative on-disk view used for reporting is separate.
  void setCoverageReward(bool Enabled) { CoverageReward = Enabled; }

  /// Branches covered so far (cumulative across episodes, like the gcov
  /// data files the harness inspects).
  int coverageCount() const { return static_cast<int>(CoveredEver.size()); }

  /// Covered fraction of the instrumented branches.
  double coverageFraction() const;

  /// Clears the cumulative coverage map.
  void resetCoverage() { CoveredEver.clear(); }

  /// Total instrumented branches.
  static constexpr int NumBranches = 34;

  static constexpr double WorldLen = 120.0;

private:
  struct Goomba {
    double X;
    double Dir;   // Patrol direction (+/- 1).
    double Lo, Hi; // Patrol bounds.
    uint8_t Alive;
  };

  /// Marks branch \p Id covered; returns true when it is new.
  bool hit(int Id);

  /// Object code ahead of the player: 0 none, 1 pipe, 2 ditch, 3 goomba.
  int objectAhead(double *Distance) const;

  double PlayerX = 0, PlayerY = 0, PlayerVx = 0, PlayerVy = 0;
  bool OnGround = true;
  bool Dead = false;
  bool FlagReached = false;
  bool NewCoverageThisStep = false;
  bool CoverageReward = false;
  int Coins = 0;
  int StepCount = 0;
  int IdleRun = 0;
  std::vector<double> PipeXs;
  std::vector<std::pair<double, double>> Ditches; // [lo, hi) gaps.
  std::vector<Goomba> Goombas;
  /// In-process coverage counters: part of the checkpointed state, cleared
  /// on reset, rolled back by au_restore.
  std::set<int> CoveredEpisode;
  /// Cumulative coverage (the on-disk gcov view): never rolled back.
  std::set<int> CoveredEver;
};

} // namespace apps
} // namespace au

#endif // AU_APPS_MARIO_MARIO_H
