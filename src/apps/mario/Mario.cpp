//===- apps/mario/Mario.cpp - Mario benchmark program ---------------------===//

#include "apps/mario/Mario.h"

#include "apps/common/ByteIO.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace au;
using namespace au::apps;

static constexpr double Gravity = -0.22;
static constexpr double JumpV = 1.15;
static constexpr double RunV = 0.45;
static constexpr double PipeHeight = 1.6;
static constexpr double DitchWidth = 1.6;

// Branch ids for the gcov-like coverage map.
enum BranchId {
  BrNoop,
  BrLeft,
  BrRight,
  BrJump,
  BrJumpRight,
  BrAirborne,
  BrLanded,
  BrJumpStart,
  BrBlockedByPipe,
  BrOverDitch,
  BrFellInDitch,
  BrGoombaNear,
  BrGoombaStomp,
  BrGoombaDeath,
  BrGoombaTurn,
  BrFlag,
  BrMovedForward,
  BrMovedBackward,
  BrApex,
  BrWallLeft,
  BrCoin,
  BrHighJump,
  BrBackJump,
  BrIdle,
  BrNearFlag,
  BrCeiling,
  // Deep branches that need directed play to reach — the interesting
  // targets of the self-testing experiment.
  BrTwoStomps,       // Stomped two goombas in one run.
  BrAllGoombas,      // Cleared every goomba.
  BrFarWithCoins,    // Deep into the level still carrying coins.
  BrBackNearPipe,    // Walking backward right next to a pipe.
  BrFastFlag,        // Speed-run finish.
  BrAirborneOverDitch, // Mid-jump high above a ditch.
  BrHighAtFlagZone,  // High jump in the flag zone.
  BrLongIdle,        // Standing still for a long stretch.
};
static_assert(BrLongIdle + 1 == MarioEnv::NumBranches,
              "branch enum out of sync with NumBranches");

void MarioEnv::reset(uint64_t Seed) {
  Rng Layout(Seed >> 8);
  Rng Jitter(Seed);
  PipeXs.clear();
  Ditches.clear();
  Goombas.clear();

  // Three pipes, two ditches, four goombas, spread with layout randomness.
  for (int I = 0; I < 3; ++I)
    PipeXs.push_back(20.0 + 30.0 * I + Layout.uniform(0.0, 8.0));
  for (int I = 0; I < 2; ++I) {
    // Keep ditches well clear of pipes so every layout is clearable.
    double Lo = 0.0;
    for (int Attempt = 0; Attempt < 16; ++Attempt) {
      Lo = 35.0 + 40.0 * I + Layout.uniform(0.0, 6.0);
      bool Clear = true;
      for (double P : PipeXs)
        Clear = Clear && (P < Lo - 6.0 || P > Lo + DitchWidth + 6.0);
      if (Clear)
        break;
      Lo = 0.0;
    }
    if (Lo > 0.0)
      Ditches.push_back({Lo, Lo + DitchWidth});
  }
  for (int I = 0; I < 4; ++I) {
    Goomba G;
    G.Lo = 12.0 + 25.0 * I + Layout.uniform(0.0, 4.0);
    G.Hi = G.Lo + 6.0;
    G.X = G.Lo + Jitter.uniform(0.0, 6.0);
    G.Dir = Jitter.chance(0.5) ? 1.0 : -1.0;
    G.Alive = 1;
    Goombas.push_back(G);
  }

  PlayerX = 1.0;
  PlayerY = 0.0;
  PlayerVx = 0.0;
  PlayerVy = 0.0;
  OnGround = true;
  Dead = false;
  FlagReached = false;
  NewCoverageThisStep = false;
  Coins = 0;
  StepCount = 0;
  IdleRun = 0;
  CoveredEpisode.clear();
}

bool MarioEnv::hit(int Id) {
  CoveredEver.insert(Id);
  // The reward keys off the in-process counters, which reset per episode
  // and roll back with au_restore.
  bool New = CoveredEpisode.insert(Id).second;
  NewCoverageThisStep = NewCoverageThisStep || New;
  return New;
}

double MarioEnv::coverageFraction() const {
  return static_cast<double>(CoveredEver.size()) / NumBranches;
}

int MarioEnv::objectAhead(double *Distance) const {
  double Best = 1e9;
  int Code = 0;
  for (double P : PipeXs)
    if (P >= PlayerX - 0.5 && P - PlayerX < Best) {
      Best = P - PlayerX;
      Code = 1;
    }
  for (const auto &[Lo, Hi] : Ditches)
    if (Hi >= PlayerX && Lo - PlayerX < Best) {
      Best = std::max(0.0, Lo - PlayerX);
      Code = 2;
    }
  for (const Goomba &G : Goombas)
    if (G.Alive && G.X >= PlayerX - 0.5 && G.X - PlayerX < Best) {
      Best = G.X - PlayerX;
      Code = 3;
    }
  if (Distance)
    *Distance = Best > 1e8 ? WorldLen : Best;
  return Code;
}

float MarioEnv::step(int Action) {
  if (terminal())
    return 0.0f;
  NewCoverageThisStep = false;
  double OldX = PlayerX;

  // Action handling (the instrumented branches mirror the game's input
  // dispatch).
  switch (Action) {
  case 0:
    hit(BrNoop);
    PlayerVx = 0.0;
    break;
  case 1:
    hit(BrLeft);
    PlayerVx = -RunV;
    break;
  case 2:
    hit(BrRight);
    PlayerVx = RunV;
    break;
  case 3:
    hit(BrJump);
    PlayerVx = 0.0;
    if (OnGround) {
      hit(BrJumpStart);
      PlayerVy = JumpV;
      OnGround = false;
    }
    break;
  case 4:
    hit(BrJumpRight);
    PlayerVx = RunV;
    if (OnGround) {
      hit(BrJumpStart);
      PlayerVy = JumpV;
      OnGround = false;
    }
    break;
  default:
    assert(false && "invalid Mario action");
  }

  // Kinematics.
  if (!OnGround) {
    hit(BrAirborne);
    PlayerVy += Gravity;
    if (std::abs(PlayerVy) < 0.12)
      hit(BrApex);
    if (PlayerY > 2.8)
      hit(BrHighJump);
    if (PlayerVy > 0 && PlayerVx < 0)
      hit(BrBackJump);
  }
  double NextX = PlayerX + PlayerVx;
  double NextY = std::max(-1.0, PlayerY + (OnGround ? 0.0 : PlayerVy));

  // Pipe blocking: a pipe occupies +/-0.5 around its x up to PipeHeight.
  for (double P : PipeXs)
    if (std::abs(NextX - P) < 0.5 && NextY < PipeHeight) {
      hit(BrBlockedByPipe);
      NextX = PlayerX; // Blocked.
    }
  if (NextX < 0) {
    hit(BrWallLeft);
    NextX = 0;
  }
  if (NextY > 4.0) {
    hit(BrCeiling);
    NextY = 4.0;
    PlayerVy = 0.0;
  }
  PlayerX = NextX;
  PlayerY = NextY;

  // Ditches: falling below ground over a gap kills.
  bool OverDitch = false;
  for (const auto &[Lo, Hi] : Ditches)
    if (PlayerX >= Lo && PlayerX < Hi) {
      OverDitch = true;
      hit(BrOverDitch);
    }
  if (PlayerY <= 0.0) {
    if (OverDitch) {
      hit(BrFellInDitch);
      Dead = true;
      return -10.0f;
    }
    if (!OnGround)
      hit(BrLanded);
    PlayerY = 0.0;
    PlayerVy = 0.0;
    OnGround = true;
  }

  // Goombas: patrol, turn at bounds, stomp or kill on contact.
  float Reward = 0.0f;
  for (Goomba &G : Goombas) {
    if (!G.Alive)
      continue;
    G.X += 0.12 * G.Dir;
    if (G.X <= G.Lo || G.X >= G.Hi) {
      hit(BrGoombaTurn);
      G.Dir = -G.Dir;
      G.X = clamp(G.X, G.Lo, G.Hi);
    }
    double Dx = std::abs(G.X - PlayerX);
    if (Dx < 2.0)
      hit(BrGoombaNear);
    if (Dx < 0.5) {
      if (PlayerY > 0.4 && PlayerVy < 0) {
        hit(BrGoombaStomp);
        G.Alive = 0;
        ++Coins;
        hit(BrCoin);
        Reward += 1.0f;
      } else if (PlayerY < 0.4) {
        hit(BrGoombaDeath);
        Dead = true;
        return -10.0f;
      }
    }
  }

  // Fig. 2 reward shape: forward +2, otherwise -1; flag +10.
  if (PlayerX > OldX + 1e-9) {
    hit(BrMovedForward);
    Reward += 2.0f;
  } else {
    if (PlayerX < OldX - 1e-9)
      hit(BrMovedBackward);
    else
      hit(BrIdle);
    Reward += -1.0f;
  }
  if (PlayerX > WorldLen - 8.0)
    hit(BrNearFlag);
  if (PlayerX >= WorldLen) {
    hit(BrFlag);
    FlagReached = true;
    Reward += 10.0f;
  }

  // Deep branches: rare behaviors the self-testing experiment hunts.
  ++StepCount;
  IdleRun = PlayerVx == 0.0 && OnGround ? IdleRun + 1 : 0;
  if (Coins >= 2)
    hit(BrTwoStomps);
  if (Coins >= static_cast<int>(Goombas.size()))
    hit(BrAllGoombas);
  if (PlayerX > 90.0 && Coins >= 2)
    hit(BrFarWithCoins);
  if (PlayerVx < 0)
    for (double P : PipeXs)
      if (std::abs(PlayerX - P) < 1.5)
        hit(BrBackNearPipe);
  if (FlagReached && StepCount < 300)
    hit(BrFastFlag);
  if (PlayerY > 1.5 && OverDitch)
    hit(BrAirborneOverDitch);
  if (PlayerX > WorldLen - 10.0 && PlayerY > 2.0)
    hit(BrHighAtFlagZone);
  if (IdleRun >= 20)
    hit(BrLongIdle);

  // Line 38 of Fig. 2: the self-testing coverage reward.
  if (CoverageReward && NewCoverageThisStep)
    Reward += 30.0f;
  return Reward;
}

int MarioEnv::heuristicAction(Rng &R) const {
  (void)R;
  double Dist = 0.0;
  int Obj = objectAhead(&Dist);
  // Jump over anything close; otherwise run right.
  if (Obj != 0 && Dist < 2.2 && OnGround)
    return 4; // jump-right
  if (!OnGround)
    return 2; // keep moving right mid-air
  return 2;
}

std::vector<Feature> MarioEnv::features() const {
  double ObjDist = 0.0;
  int Obj = objectAhead(&ObjDist);
  // Nearest two live goombas ahead (world-relative distances).
  double Mn1 = WorldLen, Mn2 = WorldLen, Mn1Abs = 0.0;
  for (const Goomba &G : Goombas) {
    if (!G.Alive)
      continue;
    double D = G.X - PlayerX;
    if (D < -1.0)
      continue;
    if (D < Mn1) {
      Mn2 = Mn1;
      Mn1 = D;
      Mn1Abs = G.X;
    } else if (D < Mn2) {
      Mn2 = D;
    }
  }
  return {
      {"PX", static_cast<float>(PlayerX / WorldLen)},
      {"PY", static_cast<float>(PlayerY / 4.0)},
      {"PVx", static_cast<float>(PlayerVx / RunV)},
      {"PVy", static_cast<float>(PlayerVy / JumpV)},
      {"onGround", OnGround ? 1.0f : 0.0f},
      {"MnX", static_cast<float>(std::min(Mn1, 12.0) / 12.0)},
      {"MnX2", static_cast<float>(std::min(Mn2, 12.0) / 12.0)},
      {"MnY", 0.0f}, // Goombas walk on the ground in this level.
      {"OBJ", static_cast<float>(Obj) / 3.0f},
      {"objDx", static_cast<float>(std::min(ObjDist, 12.0) / 12.0)},
      {"flagDx", static_cast<float>((WorldLen - PlayerX) / WorldLen)},
      {"coins", static_cast<float>(Coins) / 4.0f},
      {"mX", static_cast<float>(std::min(Mn1, 12.0) / 12.0)}, // alias of MnX
      {"playerPosX", static_cast<float>(PlayerX / WorldLen)}, // alias of PX
      {"lives", 1.0f},                                        // constant
      {"gravityK", static_cast<float>(Gravity)},              // constant
      {"worldLen", 1.0f},                                     // constant
      {"pipeH", static_cast<float>(PipeHeight / 4.0)},        // constant
      {"minionAbsX", static_cast<float>(Mn1Abs / WorldLen)},
      {"deadFlag", Dead ? 1.0f : 0.0f},
  };
}

Image MarioEnv::renderFrame(int Side) const {
  Image Frame(Side, Side, 0.0f);
  // Viewport: x in [PlayerX - 4, PlayerX + 16), y in [-1, 5).
  auto PxX = [&](double Wx) {
    return static_cast<int>((Wx - (PlayerX - 4.0)) / 20.0 * Side);
  };
  auto PxY = [&](double Wy) {
    return Side - 1 - static_cast<int>((Wy + 1.0) / 6.0 * (Side - 1));
  };
  auto Plot = [&](int X, int Y, float V) {
    if (X >= 0 && X < Side && Y >= 0 && Y < Side)
      Frame.at(X, Y) = V;
  };
  // Ground (with ditch holes).
  for (int Col = 0; Col < Side; ++Col) {
    double Wx = PlayerX - 4.0 + Col / static_cast<double>(Side) * 20.0;
    bool Hole = false;
    for (const auto &[Lo, Hi] : Ditches)
      if (Wx >= Lo && Wx < Hi)
        Hole = true;
    if (!Hole)
      Plot(Col, PxY(-0.3), 0.4f);
  }
  // Pipes.
  for (double P : PipeXs)
    for (double Y = 0.0; Y < PipeHeight; Y += 0.4) {
      Plot(PxX(P - 0.4), PxY(Y), 0.6f);
      Plot(PxX(P + 0.4), PxY(Y), 0.6f);
    }
  // Goombas.
  for (const Goomba &G : Goombas)
    if (G.Alive)
      Plot(PxX(G.X), PxY(0.2), 0.8f);
  // Flag.
  for (double Y = 0.0; Y < 4.0; Y += 0.4)
    Plot(PxX(WorldLen), PxY(Y), 0.9f);
  // Player.
  Plot(PxX(PlayerX), PxY(PlayerY + 0.2), 1.0f);
  Plot(PxX(PlayerX), PxY(PlayerY + 0.6), 1.0f);
  return Frame;
}

void MarioEnv::profile(analysis::Tracer &T, int Steps) {
  reset(/*Seed=*/0x3131 << 8);
  T.markInput("keyEvent");
  Rng R(7);
  for (int S = 0; S < Steps && !terminal(); ++S) {
    int Action = heuristicAction(R);
    std::vector<Feature> Fs = features();
    // Input dispatch: five action variables decoded from the key event.
    T.recordDefValue("right", {"keyEvent"}, "handleInput",
                     Action == 2 || Action == 4);
    T.recordDefValue("left", {"keyEvent"}, "handleInput", Action == 1);
    T.recordDefValue("jump", {"keyEvent"}, "handleInput",
                     Action == 3 || Action == 4);
    T.recordDefValue("jumpRight", {"keyEvent"}, "handleInput", Action == 4);
    T.recordDefValue("actionKey", {"keyEvent"}, "handleInput", Action);
    // updatePlayer(): kinematics with loop-carried dependences (Fig. 10).
    T.recordDefValue("speed", {"right", "left"}, "updatePlayer",
                     featureValue(Fs, "PVx"));
    T.recordDefValue("PVx", {"speed"}, "updatePlayer",
                     featureValue(Fs, "PVx"));
    T.recordDefValue("PVy", {"PVy", "jump", "jumpRight", "gravityK"},
                     "updatePlayer", featureValue(Fs, "PVy"));
    T.recordDefValue("PX", {"PX", "speed"}, "updatePlayer",
                     featureValue(Fs, "PX"));
    T.recordDefValue("PY", {"PY", "PVy"}, "updatePlayer",
                     featureValue(Fs, "PY"));
    T.recordDefValue("playerPosX", {"PX"}, "updatePlayer",
                     featureValue(Fs, "playerPosX")); // alias
    T.recordDefValue("onGround", {"PY"}, "updatePlayer",
                     featureValue(Fs, "onGround"));
    T.recordDefValue("gravityK", {}, "updatePlayer", Gravity);
    // minionCollision(): goomba positions and the collision predicate.
    T.recordDefValue("MnX", {"MnX"}, "minionCollision",
                     featureValue(Fs, "MnX"));
    T.recordDefValue("MnX2", {"MnX2"}, "minionCollision",
                     featureValue(Fs, "MnX2"));
    T.recordDefValue("MnY", {"MnY"}, "minionCollision",
                     featureValue(Fs, "MnY"));
    T.recordDefValue("mX", {"MnX"}, "minionCollision",
                     featureValue(Fs, "mX")); // alias of MnX (Fig. 10)
    T.recordDefValue("minionAbsX", {"MnX", "PX"}, "minionCollision",
                     featureValue(Fs, "minionAbsX"));
    T.recordDefValue("collide", {"PX", "MnX", "PY"}, "minionCollision",
                     0.0);
    // checkObj(): the object in front of the player (Fig. 2 line 17).
    T.recordDefValue("OBJ", {"PX"}, "checkObj", featureValue(Fs, "OBJ"));
    T.recordDefValue("objDx", {"PX", "OBJ"}, "checkObj",
                     featureValue(Fs, "objDx"));
    T.recordDefValue("pipeH", {}, "checkObj", featureValue(Fs, "pipeH"));
    // gameLoop(): progress / reward bookkeeping.
    T.recordDefValue("flagDx", {"PX", "worldLen"}, "gameLoop",
                     featureValue(Fs, "flagDx"));
    T.recordDefValue("worldLen", {}, "gameLoop", 1.0);
    T.recordDefValue("lives", {}, "gameLoop", 1.0);
    T.recordDefValue("coins", {"collide"}, "gameLoop",
                     featureValue(Fs, "coins"));
    T.recordDefValue("deadFlag", {"collide", "PY", "objDx"}, "gameLoop",
                     Dead);
    T.recordDef("reward",
                {"deadFlag", "flagDx", "PX", "right", "left", "jump",
                 "jumpRight", "actionKey"},
                "gameLoop");
    step(Action);
  }
}

void MarioEnv::saveState(std::vector<uint8_t> &Out) const {
  Out.clear();
  putPod(Out, PlayerX);
  putPod(Out, PlayerY);
  putPod(Out, PlayerVx);
  putPod(Out, PlayerVy);
  putPod(Out, OnGround);
  putPod(Out, Dead);
  putPod(Out, FlagReached);
  putPod(Out, Coins);
  putVec(Out, PipeXs);
  putPod(Out, static_cast<uint64_t>(Ditches.size()));
  for (const auto &[Lo, Hi] : Ditches) {
    putPod(Out, Lo);
    putPod(Out, Hi);
  }
  putPod(Out, static_cast<uint64_t>(Goombas.size()));
  for (const Goomba &G : Goombas)
    putPod(Out, G);
  putPod(Out, StepCount);
  putPod(Out, IdleRun);
  // The per-episode coverage counters live in process memory and roll
  // back with the snapshot (KVM rolls back gcov's in-memory counters the
  // same way); the cumulative CoveredEver view models the on-disk gcov
  // data and is deliberately NOT part of the snapshot.
  std::vector<int32_t> Episode(CoveredEpisode.begin(), CoveredEpisode.end());
  putVec(Out, Episode);
}

void MarioEnv::loadState(const std::vector<uint8_t> &In) {
  size_t Off = 0;
  getPod(In, Off, PlayerX);
  getPod(In, Off, PlayerY);
  getPod(In, Off, PlayerVx);
  getPod(In, Off, PlayerVy);
  getPod(In, Off, OnGround);
  getPod(In, Off, Dead);
  getPod(In, Off, FlagReached);
  getPod(In, Off, Coins);
  getVec(In, Off, PipeXs);
  uint64_t N = 0;
  getPod(In, Off, N);
  Ditches.resize(N);
  for (auto &[Lo, Hi] : Ditches) {
    getPod(In, Off, Lo);
    getPod(In, Off, Hi);
  }
  getPod(In, Off, N);
  Goombas.resize(N);
  for (Goomba &G : Goombas)
    getPod(In, Off, G);
  getPod(In, Off, StepCount);
  getPod(In, Off, IdleRun);
  std::vector<int32_t> Episode;
  getVec(In, Off, Episode);
  CoveredEpisode = std::set<int>(Episode.begin(), Episode.end());
}
