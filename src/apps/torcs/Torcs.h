//===- apps/torcs/Torcs.h - TORCS-style driving benchmark ------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature of the TORCS 3-D car-racing benchmark: a car follows a curved
/// track at constant speed and the model controls steering (left / straight
/// / right — the same three outputs as the paper's study). The episode
/// succeeds when the car finishes the course without bumping the wall; the
/// paper's score is how far the car drives before bumping (progress()).
///
/// The exposed program variables deliberately include the paper's pruning
/// examples: `roll` tracks `posX` almost exactly (EucDist ~ 0, pruned by
/// epsilon1, Fig. 15) and `accX` barely changes (variance ~ 0.007, pruned by
/// epsilon2, Fig. 16), plus further aliases and constants (speed, rpm, fuel,
/// damage...) so Algorithm 2 has a realistic candidate pool to cut down.
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_TORCS_TORCS_H
#define AU_APPS_TORCS_TORCS_H

#include "apps/common/GameEnv.h"

namespace au {
namespace apps {

/// Actions: 0 = steer left, 1 = straight, 2 = steer right.
class TorcsEnv : public GameEnv {
public:
  const char *name() const override { return "torcs"; }
  void reset(uint64_t Seed) override;
  int numActions() const override { return 3; }
  float step(int Action) override;
  bool terminal() const override { return Bumped || Finished; }
  bool success() const override { return Finished; }
  double progress() const override { return S / TrackLen; }
  int heuristicAction(Rng &R) const override;
  std::vector<Feature> features() const override;
  Image renderFrame(int Side) const override;
  void profile(analysis::Tracer &T, int Steps) override;
  std::vector<std::string> targetVariables() const override {
    return {"steer", "actionKey"};
  }

  void saveState(std::vector<uint8_t> &Out) const override;
  void loadState(const std::vector<uint8_t> &In) override;

  /// The hand-picked expert feature set of the paper's "Manual" TORCS
  /// variant (Fig. 17).
  static std::vector<std::string> manualFeatureNames();

  static constexpr double TrackLen = 200.0;
  static constexpr double HalfWidth = 2.0;
  static constexpr double Speed = 0.5;

private:
  /// Track curvature at arc position \p At.
  double curvatureAt(double At) const;

  double S = 0.0;      // Arc length driven.
  double Offset = 0.0; // Lateral offset from the centerline.
  double Heading = 0.0; // Angle relative to the track tangent.
  double Fuel = 1.0;
  bool Bumped = false;
  bool Finished = false;
  std::vector<double> Curvature; // Per-unit-segment curvature.
};

} // namespace apps
} // namespace au

#endif // AU_APPS_TORCS_TORCS_H
