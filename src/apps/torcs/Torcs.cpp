//===- apps/torcs/Torcs.cpp - TORCS-style driving benchmark --------------===//

#include "apps/torcs/Torcs.h"

#include "apps/common/ByteIO.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace au;
using namespace au::apps;

static constexpr double SteerDelta = 0.09;

void TorcsEnv::reset(uint64_t Seed) {
  Rng Layout(Seed >> 8);
  Rng Jitter(Seed);
  int Segments = static_cast<int>(TrackLen);
  Curvature.assign(Segments, 0.0);
  // Alternating straights and arcs; curvature is per-unit heading change.
  int I = 0;
  while (I < Segments) {
    int Len = static_cast<int>(Layout.uniformInt(8, 24));
    double C = 0.0;
    if (Layout.chance(0.6))
      C = Layout.uniform(-0.055, 0.055);
    for (int K = 0; K < Len && I < Segments; ++K, ++I)
      Curvature[I] = C;
  }
  S = 0.0;
  Offset = Jitter.uniform(-0.3, 0.3);
  Heading = 0.0;
  Fuel = 1.0;
  Bumped = false;
  Finished = false;
}

double TorcsEnv::curvatureAt(double At) const {
  int Idx = static_cast<int>(At);
  if (Idx < 0)
    Idx = 0;
  if (Idx >= static_cast<int>(Curvature.size()))
    Idx = static_cast<int>(Curvature.size()) - 1;
  return Curvature[Idx];
}

float TorcsEnv::step(int Action) {
  if (terminal())
    return 0.0f;
  double Steer = (Action - 1) * SteerDelta; // -1, 0, +1 times delta.
  // The track bends under the car: relative heading picks up the steering
  // minus the track's own curvature.
  Heading += Steer - curvatureAt(S) * Speed * 2.0;
  Heading = clamp(Heading, -0.9, 0.9);
  Offset += std::sin(Heading) * Speed * 2.0;
  S += std::cos(Heading) * Speed;
  Fuel = std::max(0.0, Fuel - 1.0 / (4.0 * TrackLen / Speed));

  if (std::abs(Offset) > HalfWidth) {
    Bumped = true;
    return -10.0f;
  }
  if (S >= TrackLen) {
    Finished = true;
    return 10.0f;
  }
  // Centering reward keeps the gradient informative.
  return static_cast<float>(0.25 - 0.2 * std::abs(Offset) / HalfWidth);
}

int TorcsEnv::heuristicAction(Rng &R) const {
  (void)R;
  // PD-style steering toward the centerline plus curvature feed-forward.
  double Desired = -0.8 * (Offset / HalfWidth) - 1.2 * Heading +
                   2.4 * curvatureAt(S + 4.0);
  if (Desired > 0.04)
    return 2;
  if (Desired < -0.04)
    return 0;
  return 1;
}

std::vector<Feature> TorcsEnv::features() const {
  double PosX = Offset / HalfWidth;
  return {
      {"posX", static_cast<float>(PosX)},
      {"angle", static_cast<float>(Heading)},
      {"curv0", static_cast<float>(curvatureAt(S) * 20.0)},
      {"curv1", static_cast<float>(curvatureAt(S + 3.0) * 20.0)},
      {"curv2", static_cast<float>(curvatureAt(S + 6.0) * 20.0)},
      {"curv3", static_cast<float>(curvatureAt(S + 10.0) * 20.0)},
      {"distRaced", static_cast<float>(progress())},
      // roll tracks posX almost exactly (the Fig. 15 pruning pair).
      {"roll", static_cast<float>(PosX * 0.995)},
      // accX: a launch transient, then essentially flat at cruise speed —
      // its min-max-scaled trace has tiny variance (the Fig. 16 example).
      {"accX", static_cast<float>(S < 2.0 ? (2.0 - S) * 0.5
                                          : 0.002 * std::sin(S * 0.3))},
      {"speed", static_cast<float>(Speed)},          // constant
      {"speedY", 0.0f},                              // constant
      {"rpm", 0.62f},                                // constant at fixed gear
      {"gear", 0.75f},                               // constant
      {"fuel", static_cast<float>(Fuel)},            // near-constant drift
      {"damage", 0.0f},                              // constant
      {"trackPos", static_cast<float>(PosX)},        // alias of posX
      {"yaw", static_cast<float>(Heading * 0.99)},   // alias of angle
      {"lapTime", static_cast<float>(progress())},   // alias of distRaced
      {"halfWidth", 1.0f},                           // constant
      {"bumpFlag", Bumped ? 1.0f : 0.0f},
  };
}

Image TorcsEnv::renderFrame(int Side) const {
  Image Frame(Side, Side, 0.0f);
  // Driver's view: each row Y (bottom = near) shows the road edges at
  // lookahead distance proportional to the row.
  double CenterDrift = 0.0;
  double Dir = 0.0;
  for (int Row = 0; Row < Side; ++Row) {
    double Ahead = Row * 0.6;
    Dir += curvatureAt(S + Ahead) * 0.6;
    CenterDrift += Dir * 0.6;
    // Road center in car-relative lateral units.
    double Center = CenterDrift - Offset - Heading * Ahead;
    int Y = Side - 1 - Row;
    auto Plot = [&](double Lateral, float V) {
      int X = static_cast<int>((Lateral / (3.0 * HalfWidth) + 0.5) * Side);
      if (X >= 0 && X < Side)
        Frame.at(X, Y) = V;
    };
    Plot(Center - HalfWidth, 0.7f);
    Plot(Center + HalfWidth, 0.7f);
    if (Row == 0)
      Plot(0.0, 1.0f); // The car sits at the bottom center.
  }
  return Frame;
}

void TorcsEnv::profile(analysis::Tracer &T, int Steps) {
  reset(/*Seed=*/0x9090 << 8);
  T.markInput("wheelInput");
  Rng R(3);
  for (int St = 0; St < Steps && !terminal(); ++St) {
    int Action = heuristicAction(R);
    std::vector<Feature> Fs = features();
    T.recordDefValue("steer", {"wheelInput"}, "handleInput", Action - 1);
    T.recordDefValue("actionKey", {"wheelInput"}, "handleInput", Action);
    // updateCar(): the kinematic core with loop-carried dependences.
    T.recordDefValue("angle", {"angle", "steer", "curv0"}, "updateCar",
                     featureValue(Fs, "angle"));
    T.recordDefValue("posX", {"posX", "angle"}, "updateCar",
                     featureValue(Fs, "posX"));
    T.recordDefValue("roll", {"posX"}, "updateCar",
                     featureValue(Fs, "roll")); // alias (Fig. 15)
    T.recordDefValue("yaw", {"angle"}, "updateCar",
                     featureValue(Fs, "yaw")); // alias
    T.recordDefValue("trackPos", {"posX"}, "updateCar",
                     featureValue(Fs, "trackPos")); // alias
    T.recordDefValue("accX", {"speed"}, "updateCar",
                     featureValue(Fs, "accX")); // near-constant (Fig. 16)
    T.recordDefValue("speed", {}, "updateCar", Speed);
    T.recordDefValue("speedY", {}, "updateCar", 0.0);
    T.recordDefValue("distRaced", {"distRaced", "speed", "angle"},
                     "updateCar", featureValue(Fs, "distRaced"));
    T.recordDefValue("fuel", {"fuel", "speed"}, "updateCar", Fuel);
    // readSensors(): the track model feeding the controller.
    T.recordDefValue("curv0", {"distRaced"}, "readSensors",
                     featureValue(Fs, "curv0"));
    T.recordDefValue("curv1", {"distRaced"}, "readSensors",
                     featureValue(Fs, "curv1"));
    T.recordDefValue("curv2", {"distRaced"}, "readSensors",
                     featureValue(Fs, "curv2"));
    T.recordDefValue("curv3", {"distRaced"}, "readSensors",
                     featureValue(Fs, "curv3"));
    // The control loop consumes the lookahead sensors: they feed the crash
    // risk (and hence the reward) alongside the steering decision.
    T.recordDef("trackAhead", {"curv1", "curv2", "curv3"}, "gameLoop");
    T.recordUse("curv0", "gameLoop");
    T.recordDefValue("rpm", {"speed"}, "readSensors",
                     featureValue(Fs, "rpm"));
    T.recordDefValue("gear", {"rpm"}, "readSensors",
                     featureValue(Fs, "gear"));
    T.recordDefValue("damage", {}, "readSensors", 0.0);
    T.recordDefValue("halfWidth", {}, "checkWall", 1.0);
    T.recordDefValue("bumpFlag", {"posX", "halfWidth"}, "checkWall",
                     Bumped);
    T.recordDefValue("lapTime", {"distRaced"}, "gameLoop",
                     featureValue(Fs, "lapTime"));
    // The telemetry HUD consumes every sensor each frame; it gives the
    // aliases and the near-constant channels (roll, yaw, accX, rpm, fuel,
    // ...) a dependent shared with the steering chain.
    T.recordDef("hud",
                {"roll", "yaw", "trackPos", "accX", "rpm", "gear", "fuel",
                 "damage", "speedY", "lapTime", "posX"},
                "gameLoop");
    T.recordDef("reward", {"bumpFlag", "posX", "distRaced", "trackAhead",
                           "steer", "actionKey"},
                "gameLoop");
    step(Action);
  }
}

std::vector<std::string> TorcsEnv::manualFeatureNames() {
  return {"posX", "angle", "curv0", "curv1", "curv2", "curv3"};
}

void TorcsEnv::saveState(std::vector<uint8_t> &Out) const {
  Out.clear();
  putPod(Out, S);
  putPod(Out, Offset);
  putPod(Out, Heading);
  putPod(Out, Fuel);
  putPod(Out, Bumped);
  putPod(Out, Finished);
  putVec(Out, Curvature);
}

void TorcsEnv::loadState(const std::vector<uint8_t> &In) {
  size_t Off = 0;
  getPod(In, Off, S);
  getPod(In, Off, Offset);
  getPod(In, Off, Heading);
  getPod(In, Off, Fuel);
  getPod(In, Off, Bumped);
  getPod(In, Off, Finished);
  getVec(In, Off, Curvature);
}
