//===- apps/flappy/Flappy.h - Flappy Bird benchmark program ----*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A faithful miniature of the Flappy Bird C++ benchmark: a bird advancing
/// through a finite course of pipes under gravity, with a flap action. The
/// paper's score is the fraction of the course flown (progress) and the run
/// succeeds when the whole course is cleared.
///
/// Program variables cover bird kinematics and the next two pipes, plus the
/// redundant aliases and near-constant bookkeeping variables a real program
/// carries — exactly what Algorithm 2's epsilon pruning is designed to
/// remove.
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_FLAPPY_FLAPPY_H
#define AU_APPS_FLAPPY_FLAPPY_H

#include "apps/common/GameEnv.h"

namespace au {
namespace apps {

/// Actions: 0 = glide, 1 = flap.
class FlappyEnv : public GameEnv {
public:
  const char *name() const override { return "flappybird"; }
  void reset(uint64_t Seed) override;
  int numActions() const override { return 2; }
  float step(int Action) override;
  bool terminal() const override { return Dead || Finished; }
  bool success() const override { return Finished; }
  double progress() const override;
  int heuristicAction(Rng &R) const override;
  std::vector<Feature> features() const override;
  Image renderFrame(int Side) const override;
  void profile(analysis::Tracer &T, int Steps) override;
  std::vector<std::string> targetVariables() const override {
    return {"flap", "actionKey"};
  }

  void saveState(std::vector<uint8_t> &Out) const override;
  void loadState(const std::vector<uint8_t> &In) override;

  // World geometry (world units; the screen is WorldH tall).
  static constexpr double WorldH = 30.0;
  static constexpr double Gravity = -0.3;
  static constexpr double FlapImpulse = 1.3;
  static constexpr int NumPipes = 24;
  static constexpr int PipeSpacing = 10;
  static constexpr double GapHalf = 4.5;

private:
  /// Index of the first pipe at or ahead of the bird.
  int nextPipe() const;

  double BirdY = WorldH / 2;
  double BirdV = 0.0;
  int BirdX = 0;
  bool Dead = false;
  bool Finished = false;
  std::vector<double> GapCenters; // Per-pipe gap center heights.
};

} // namespace apps
} // namespace au

#endif // AU_APPS_FLAPPY_FLAPPY_H
