//===- apps/flappy/Flappy.cpp - Flappy Bird benchmark program ------------===//

#include "apps/flappy/Flappy.h"

#include "apps/common/ByteIO.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace au;
using namespace au::apps;

void FlappyEnv::reset(uint64_t Seed) {
  // Layout comes from the high bits, per-episode jitter from the low byte.
  Rng Layout(Seed >> 8);
  Rng Jitter(Seed);
  GapCenters.clear();
  GapCenters.reserve(NumPipes);
  double Prev = WorldH / 2;
  for (int I = 0; I < NumPipes; ++I) {
    // Random walk keeps consecutive gaps reachable.
    Prev = clamp(Prev + Layout.uniform(-5.0, 5.0), GapHalf + 2.0,
                 WorldH - GapHalf - 2.0);
    GapCenters.push_back(Prev);
  }
  BirdX = 0;
  BirdY = WorldH / 2 + Jitter.uniform(-1.5, 1.5);
  BirdV = 0.0;
  Dead = false;
  Finished = false;
}

int FlappyEnv::nextPipe() const {
  // Pipe I sits at column (I + 1) * PipeSpacing, so the pipe ahead of (or
  // at) the bird is BirdX / PipeSpacing.
  return std::min(BirdX / PipeSpacing, NumPipes - 1);
}

float FlappyEnv::step(int Action) {
  if (terminal())
    return 0.0f;
  if (Action == 1)
    BirdV = FlapImpulse;
  BirdV += Gravity;
  BirdV = clamp(BirdV, -2.2, 2.2);
  BirdY += BirdV;
  ++BirdX;

  if (BirdY <= 0.0 || BirdY >= WorldH) {
    Dead = true;
    return -10.0f;
  }
  // Pipe collision: at a pipe column, the bird must be within the gap.
  if (BirdX % PipeSpacing == 0) {
    int Idx = BirdX / PipeSpacing - 1;
    if (Idx >= 0 && Idx < NumPipes &&
        std::abs(BirdY - GapCenters[Idx]) > GapHalf) {
      Dead = true;
      return -10.0f;
    }
  }
  if (BirdX >= NumPipes * PipeSpacing) {
    Finished = true;
    return 10.0f;
  }
  return 0.2f; // Forward progress.
}

double FlappyEnv::progress() const {
  return static_cast<double>(BirdX) / (NumPipes * PipeSpacing);
}

int FlappyEnv::heuristicAction(Rng &R) const {
  (void)R;
  // Bang-bang control: flap when the next position would drop below the
  // gap center (offset by half the flap rise so the cycle straddles it).
  double Target = GapCenters[nextPipe()];
  return BirdY + BirdV + Gravity < Target - 1.7 ? 1 : 0;
}

std::vector<Feature> FlappyEnv::features() const {
  int Np = nextPipe();
  double PipeDx = Np * PipeSpacing + PipeSpacing - BirdX;
  double Gap1 = GapCenters[Np];
  double Gap2 = GapCenters[std::min(Np + 1, NumPipes - 1)];
  // Values are scaled to O(1) world fractions; names mirror the program
  // variables the profile run records. Redundant aliases (pipeX, birdPosY)
  // and near-constant bookkeeping (gapHalf, gravity, frameCnt parity,
  // worldH) are deliberately included for Algorithm 2 to prune.
  return {
      {"birdY", static_cast<float>(BirdY / WorldH)},
      {"birdV", static_cast<float>(BirdV / 3.0)},
      {"pipeDx", static_cast<float>(PipeDx / PipeSpacing)},
      {"gap1Y", static_cast<float>(Gap1 / WorldH)},
      {"gap2Y", static_cast<float>(Gap2 / WorldH)},
      {"diffY", static_cast<float>((Gap1 - BirdY) / WorldH)},
      {"birdPosY", static_cast<float>(BirdY / WorldH)},       // alias
      {"pipeX", static_cast<float>(PipeDx / PipeSpacing)},    // alias
      {"gapHalf", static_cast<float>(GapHalf / WorldH)},      // constant
      {"gravity", static_cast<float>(Gravity)},               // constant
      {"worldH", 1.0f},                                       // constant
      {"frameParity", static_cast<float>(BirdX % 2)},
      {"birdX", static_cast<float>(progress())},
      {"pipeIdx", static_cast<float>(Np) / NumPipes},
      {"lives", 1.0f},                                        // constant
      {"score", static_cast<float>(progress())},              // alias
      {"speedX", 1.0f / PipeSpacing},                         // constant
      {"deadFlag", Dead ? 1.0f : 0.0f},
      {"tubeGapY", static_cast<float>(Gap1 / WorldH)},        // alias
  };
}

Image FlappyEnv::renderFrame(int Side) const {
  Image Frame(Side, Side, 0.0f);
  auto ToPx = [&](double WorldY) {
    return std::clamp(
        Side - 1 - static_cast<int>(WorldY / WorldH * (Side - 1)), 0,
        Side - 1);
  };
  // Visible window: [BirdX - 2, BirdX + Side - 3] world columns.
  for (int Col = 0; Col < Side; ++Col) {
    int WorldX = BirdX - 2 + Col;
    if (WorldX <= 0 || WorldX % PipeSpacing != 0)
      continue;
    int Idx = WorldX / PipeSpacing - 1;
    if (Idx < 0 || Idx >= NumPipes)
      continue;
    int GapTop = ToPx(GapCenters[Idx] + GapHalf);
    int GapBot = ToPx(GapCenters[Idx] - GapHalf);
    for (int Y = 0; Y < Side; ++Y)
      if (Y < GapTop || Y > GapBot)
        Frame.at(Col, Y) = 0.6f;
  }
  int By = ToPx(BirdY);
  Frame.at(2, By) = 1.0f;
  if (By + 1 < Side)
    Frame.at(2, By + 1) = 1.0f;
  return Frame;
}

void FlappyEnv::profile(analysis::Tracer &T, int Steps) {
  reset(/*Seed=*/0x1234 << 8);
  T.markInput("keyPress"); // The human tap the model replaces.
  Rng R(99);
  for (int S = 0; S < Steps && !terminal(); ++S) {
    int Action = heuristicAction(R);
    // The action variables are defined from the (human) input...
    T.recordDefValue("flap", {"keyPress"}, "handleInput", Action);
    T.recordDefValue("actionKey", {"keyPress"}, "handleInput", Action);
    // ...and drive the bird kinematics (loop-carried dependences).
    T.recordDefValue("birdV", {"birdV", "flap", "gravity"}, "updateBird",
                     BirdV);
    T.recordDefValue("birdY", {"birdY", "birdV"}, "updateBird", BirdY);
    T.recordDefValue("birdPosY", {"birdY"}, "updateBird", BirdY); // alias
    T.recordDefValue("birdX", {"birdX", "speedX"}, "updateBird", BirdX);
    T.recordValue("gravity", Gravity);
    T.recordDef("gravity", {}, "updateBird");
    T.recordValue("speedX", 1.0);
    T.recordDef("speedX", {}, "updateBird");

    std::vector<Feature> Fs = features();
    T.recordDefValue("pipeIdx", {"birdX"}, "updatePipes",
                     featureValue(Fs, "pipeIdx"));
    T.recordDefValue("pipeDx", {"pipeIdx", "birdX"}, "updatePipes",
                     featureValue(Fs, "pipeDx"));
    T.recordDefValue("pipeX", {"pipeIdx"}, "updatePipes",
                     featureValue(Fs, "pipeX")); // alias of pipeDx
    T.recordDefValue("gap1Y", {"pipeIdx"}, "updatePipes",
                     featureValue(Fs, "gap1Y"));
    T.recordDefValue("gap2Y", {"pipeIdx"}, "updatePipes",
                     featureValue(Fs, "gap2Y"));
    T.recordDefValue("tubeGapY", {"gap1Y"}, "updatePipes",
                     featureValue(Fs, "gap1Y")); // alias
    T.recordDefValue("diffY", {"gap1Y", "birdY"}, "checkCollision",
                     featureValue(Fs, "diffY"));
    T.recordDefValue("gapHalf", {}, "checkCollision", GapHalf / WorldH);
    T.recordDefValue("worldH", {}, "checkCollision", 1.0);
    T.recordDefValue("deadFlag", {"diffY", "gapHalf", "birdY"},
                     "checkCollision", Dead);
    T.recordDefValue("frameParity", {"birdX"}, "gameLoop", BirdX % 2);
    T.recordDefValue("lives", {}, "gameLoop", 1.0);
    T.recordDefValue("score", {"birdX"}, "gameLoop",
                     featureValue(Fs, "score"));
    // The reward/collision logic closes the loop: the action variables and
    // the kinematic state share these dependents.
    T.recordDef("reward", {"deadFlag", "birdX", "flap", "actionKey"},
                "gameLoop");

    step(Action);
  }
}

void FlappyEnv::saveState(std::vector<uint8_t> &Out) const {
  Out.clear();
  putPod(Out, BirdY);
  putPod(Out, BirdV);
  putPod(Out, BirdX);
  putPod(Out, Dead);
  putPod(Out, Finished);
  putVec(Out, GapCenters);
}

void FlappyEnv::loadState(const std::vector<uint8_t> &In) {
  size_t Off = 0;
  getPod(In, Off, BirdY);
  getPod(In, Off, BirdV);
  getPod(In, Off, BirdX);
  getPod(In, Off, Dead);
  getPod(In, Off, Finished);
  getVec(In, Off, GapCenters);
}
