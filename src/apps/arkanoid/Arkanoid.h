//===- apps/arkanoid/Arkanoid.h - Arkanoid benchmark program ---*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature of the Arkanoid benchmark (the paper annotates the LaiNES
/// emulator and uses the exported game variables; we expose the same
/// variables from a reimplementation of the game logic). A wide paddle
/// deflects a ball through a mid-screen brick field; the episode succeeds
/// when every brick is cleared and fails when the ball is missed.
///
/// The paper's score is the pair (cleared fraction, all-cleared success
/// rate) — progress() and success() here.
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_ARKANOID_ARKANOID_H
#define AU_APPS_ARKANOID_ARKANOID_H

#include "apps/common/GameEnv.h"

namespace au {
namespace apps {

/// Actions: 0 = left, 1 = stay, 2 = right.
class ArkanoidEnv : public GameEnv {
public:
  const char *name() const override { return "arkanoid"; }
  void reset(uint64_t Seed) override;
  int numActions() const override { return 3; }
  float step(int Action) override;
  bool terminal() const override { return Missed || cleared() == NumBricks; }
  bool success() const override { return cleared() == NumBricks; }
  double progress() const override {
    return static_cast<double>(cleared()) / NumBricks;
  }
  int heuristicAction(Rng &R) const override;
  std::vector<Feature> features() const override;
  Image renderFrame(int Side) const override;
  void profile(analysis::Tracer &T, int Steps) override;
  std::vector<std::string> targetVariables() const override {
    return {"paddleDir", "actionKey"};
  }

  void saveState(std::vector<uint8_t> &Out) const override;
  void loadState(const std::vector<uint8_t> &In) override;

  static constexpr double WorldW = 20.0;
  static constexpr double WorldH = 20.0;
  static constexpr double PaddleHalf = 2.5;
  static constexpr int BrickRows = 4;
  static constexpr int BrickCols = 8;
  static constexpr int NumBricks = BrickRows * BrickCols;

  int cleared() const;

private:
  void bounceBricks();

  double PaddleX = WorldW / 2;
  double BallX = WorldW / 2, BallY = 3.0;
  double BallVx = 0.35, BallVy = 0.45;
  bool Missed = false;
  std::vector<uint8_t> Bricks; // Row-major brick liveness.
};

} // namespace apps
} // namespace au

#endif // AU_APPS_ARKANOID_ARKANOID_H
