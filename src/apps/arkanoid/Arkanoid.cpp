//===- apps/arkanoid/Arkanoid.cpp - Arkanoid benchmark program -----------===//

#include "apps/arkanoid/Arkanoid.h"

#include "apps/common/ByteIO.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace au;
using namespace au::apps;

// Brick field occupies rows of world Y in [12, 16).
static constexpr double BrickTop = 16.0;
static constexpr double BrickBottom = 12.0;

void ArkanoidEnv::reset(uint64_t Seed) {
  Rng Jitter(Seed);
  Bricks.assign(NumBricks, 1);
  PaddleX = WorldW / 2;
  BallX = WorldW / 2 + Jitter.uniform(-2.0, 2.0);
  BallY = 3.0;
  double Angle = Jitter.uniform(-0.5, 0.5);
  BallVx = 0.55 * std::sin(Angle) + (Jitter.chance(0.5) ? 0.25 : -0.25);
  BallVy = 0.55;
  Missed = false;
}

int ArkanoidEnv::cleared() const {
  int N = 0;
  for (uint8_t B : Bricks)
    N += B == 0;
  return N;
}

void ArkanoidEnv::bounceBricks() {
  if (BallY < BrickBottom || BallY >= BrickTop)
    return;
  int Row = static_cast<int>((BallY - BrickBottom) / (BrickTop - BrickBottom) *
                             BrickRows);
  int Col = static_cast<int>(BallX / WorldW * BrickCols);
  Row = std::clamp(Row, 0, BrickRows - 1);
  Col = std::clamp(Col, 0, BrickCols - 1);
  uint8_t &B = Bricks[static_cast<size_t>(Row) * BrickCols + Col];
  if (B) {
    B = 0;
    BallVy = -BallVy;
  }
}

float ArkanoidEnv::step(int Action) {
  if (terminal())
    return 0.0f;
  if (Action == 0)
    PaddleX = std::max(PaddleHalf, PaddleX - 0.6);
  else if (Action == 2)
    PaddleX = std::min(WorldW - PaddleHalf, PaddleX + 0.6);

  int Before = cleared();
  BallX += BallVx;
  BallY += BallVy;

  // Wall reflections.
  if (BallX <= 0.0) {
    BallX = -BallX;
    BallVx = -BallVx;
  } else if (BallX >= WorldW) {
    BallX = 2 * WorldW - BallX;
    BallVx = -BallVx;
  }
  if (BallY >= WorldH) {
    BallY = 2 * WorldH - BallY;
    BallVy = -BallVy;
  }

  bounceBricks();

  // Paddle at Y = 1: deflect with an offset-dependent angle so the player
  // can aim.
  if (BallY <= 1.0 && BallVy < 0) {
    if (std::abs(BallX - PaddleX) <= PaddleHalf) {
      BallVy = -BallVy;
      BallY = 2.0 - BallY;
      BallVx += 0.25 * (BallX - PaddleX) / PaddleHalf;
      BallVx = clamp(BallVx, -0.7, 0.7);
    } else if (BallY <= 0.0) {
      Missed = true;
      return -10.0f;
    }
  }

  int Gained = cleared() - Before;
  if (cleared() == NumBricks)
    return 10.0f;
  return Gained > 0 ? 3.0f : 0.01f;
}

int ArkanoidEnv::heuristicAction(Rng &R) const {
  (void)R;
  // Track the ball's x with a small dead zone.
  double Diff = BallX - PaddleX;
  if (Diff > 0.4)
    return 2;
  if (Diff < -0.4)
    return 0;
  return 1;
}

std::vector<Feature> ArkanoidEnv::features() const {
  return {
      {"ballX", static_cast<float>(BallX / WorldW)},
      {"ballY", static_cast<float>(BallY / WorldH)},
      {"ballVx", static_cast<float>(BallVx)},
      {"ballVy", static_cast<float>(BallVy)},
      {"paddleX", static_cast<float>(PaddleX / WorldW)},
      {"diffX", static_cast<float>((BallX - PaddleX) / WorldW)},
      {"bricksLeft", static_cast<float>(NumBricks - cleared()) / NumBricks},
      {"ballPosX", static_cast<float>(BallX / WorldW)},   // alias
      {"padX", static_cast<float>(PaddleX / WorldW)},     // alias
      {"paddleHalf", static_cast<float>(PaddleHalf / WorldW)}, // constant
      {"worldW", 1.0f},                                   // constant
      {"lives", 1.0f},                                    // constant
      {"missedFlag", Missed ? 1.0f : 0.0f},
      {"clearedFrac", static_cast<float>(progress())},
      {"rowY", static_cast<float>(BrickBottom / WorldH)}, // constant
  };
}

Image ArkanoidEnv::renderFrame(int Side) const {
  Image Frame(Side, Side, 0.0f);
  auto Px = [&](double V, double Max) {
    return std::clamp(static_cast<int>(V / Max * (Side - 1)), 0, Side - 1);
  };
  // Bricks (screen Y grows downward; world Y grows upward).
  for (int Row = 0; Row < BrickRows; ++Row)
    for (int Col = 0; Col < BrickCols; ++Col) {
      if (!Bricks[static_cast<size_t>(Row) * BrickCols + Col])
        continue;
      double Wy = BrickBottom +
                  (Row + 0.5) / BrickRows * (BrickTop - BrickBottom);
      double Wx = (Col + 0.5) / BrickCols * WorldW;
      int Y = Side - 1 - Px(Wy, WorldH);
      int X = Px(Wx, WorldW);
      Frame.at(X, Y) = 0.5f;
      if (X + 1 < Side)
        Frame.at(X + 1, Y) = 0.5f;
    }
  // Ball.
  Frame.at(Px(BallX, WorldW), Side - 1 - Px(BallY, WorldH)) = 1.0f;
  // Paddle.
  int Py = Side - 2;
  for (double Dx = -PaddleHalf; Dx <= PaddleHalf; Dx += 0.5)
    Frame.at(Px(PaddleX + Dx, WorldW), Py) = 0.8f;
  return Frame;
}

void ArkanoidEnv::profile(analysis::Tracer &T, int Steps) {
  reset(/*Seed=*/0x4242 << 8);
  T.markInput("joypad");
  Rng R(17);
  for (int S = 0; S < Steps && !terminal(); ++S) {
    int Action = heuristicAction(R);
    std::vector<Feature> Fs = features();
    T.recordDefValue("paddleDir", {"joypad"}, "handleInput", Action - 1);
    T.recordDefValue("actionKey", {"joypad"}, "handleInput", Action);
    T.recordDefValue("paddleX", {"paddleX", "paddleDir"}, "updatePaddle",
                     featureValue(Fs, "paddleX"));
    T.recordDefValue("padX", {"paddleX"}, "updatePaddle",
                     featureValue(Fs, "padX")); // alias
    T.recordDefValue("ballX", {"ballX", "ballVx"}, "updateBall",
                     featureValue(Fs, "ballX"));
    T.recordDefValue("ballY", {"ballY", "ballVy"}, "updateBall",
                     featureValue(Fs, "ballY"));
    T.recordDefValue("ballPosX", {"ballX"}, "updateBall",
                     featureValue(Fs, "ballPosX")); // alias
    T.recordDefValue("ballVx", {"ballVx", "diffX"}, "updateBall",
                     featureValue(Fs, "ballVx"));
    T.recordDefValue("ballVy", {"ballVy"}, "updateBall",
                     featureValue(Fs, "ballVy"));
    T.recordDefValue("diffX", {"ballX", "paddleX"}, "checkPaddle",
                     featureValue(Fs, "diffX"));
    T.recordDefValue("paddleHalf", {}, "checkPaddle",
                     featureValue(Fs, "paddleHalf"));
    T.recordDefValue("worldW", {}, "checkPaddle", 1.0);
    T.recordDefValue("lives", {}, "gameLoop", 1.0);
    T.recordDefValue("missedFlag", {"diffX", "paddleHalf", "ballY"},
                     "checkPaddle", Missed);
    T.recordDefValue("bricksLeft", {"ballX", "ballY"}, "checkBricks",
                     featureValue(Fs, "bricksLeft"));
    T.recordDefValue("clearedFrac", {"bricksLeft"}, "checkBricks",
                     featureValue(Fs, "clearedFrac"));
    T.recordDefValue("rowY", {}, "checkBricks", featureValue(Fs, "rowY"));
    T.recordDef("reward",
                {"missedFlag", "clearedFrac", "paddleDir", "actionKey"},
                "gameLoop");
    step(Action);
  }
}

void ArkanoidEnv::saveState(std::vector<uint8_t> &Out) const {
  Out.clear();
  putPod(Out, PaddleX);
  putPod(Out, BallX);
  putPod(Out, BallY);
  putPod(Out, BallVx);
  putPod(Out, BallVy);
  putPod(Out, Missed);
  putVec(Out, Bricks);
}

void ArkanoidEnv::loadState(const std::vector<uint8_t> &In) {
  size_t Off = 0;
  getPod(In, Off, PaddleX);
  getPod(In, Off, BallX);
  getPod(In, Off, BallY);
  getPod(In, Off, BallVx);
  getPod(In, Off, BallVy);
  getPod(In, Off, Missed);
  getVec(In, Off, Bricks);
}
