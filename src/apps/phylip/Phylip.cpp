//===- apps/phylip/Phylip.cpp - Phylogeny-inference benchmark ------------===//

#include "apps/phylip/Phylip.h"

#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <set>

using namespace au;
using namespace au::apps;
using analysis::SlPick;

static constexpr int NumTaxa = PhylipDataset::NumTaxa;
static const char Bases[4] = {'A', 'C', 'G', 'T'};

/// Index of a base character; -1 for gaps.
static int baseIndex(char C) {
  switch (C) {
  case 'A':
    return 0;
  case 'C':
    return 1;
  case 'G':
    return 2;
  case 'T':
    return 3;
  default:
    return -1;
  }
}

/// True when a substitution between two bases is a transition (A<->G,
/// C<->T).
static bool isTransition(int A, int B) {
  return (A == 0 && B == 2) || (A == 2 && B == 0) || (A == 1 && B == 3) ||
         (A == 3 && B == 1);
}

PhylipDataset au::apps::makePhylipDataset(uint64_t Seed, int SeqLen) {
  Rng R(Seed * 0x9e3779b9u + 3);
  PhylipDataset D;
  D.TrueAlpha = R.uniform(0.3, 3.0);
  D.TrueKappa = R.uniform(1.0, 5.0);
  D.GapRate = R.uniform(0.0, 0.22);

  // Random rooted binary tree: join random active clusters.
  int TotalNodes = 2 * NumTaxa - 1;
  D.TrueParent.assign(TotalNodes, -1);
  std::vector<int> Active(NumTaxa);
  for (int I = 0; I < NumTaxa; ++I)
    Active[I] = I;
  std::vector<double> BranchLen(TotalNodes, 0.0);
  int NextId = NumTaxa;
  while (Active.size() > 1) {
    size_t AI = R.uniformInt(Active.size());
    int A = Active[AI];
    Active.erase(Active.begin() + AI);
    size_t BI = R.uniformInt(Active.size());
    int B = Active[BI];
    Active.erase(Active.begin() + BI);
    D.TrueParent[A] = NextId;
    D.TrueParent[B] = NextId;
    BranchLen[A] = R.uniform(0.04, 0.30);
    BranchLen[B] = R.uniform(0.04, 0.30);
    Active.push_back(NextId++);
  }

  // Per-site rates: heavier dispersion for smaller TrueAlpha.
  std::vector<double> Rates(SeqLen);
  for (double &Rate : Rates) {
    double U = std::max(1e-9, R.uniform());
    Rate = std::pow(-std::log(U), 1.0 / D.TrueAlpha);
  }

  // Evolve sequences root-to-leaves.
  std::vector<std::string> NodeSeq(TotalNodes);
  std::string &Root = NodeSeq[TotalNodes - 1];
  Root.resize(SeqLen);
  for (char &C : Root)
    C = Bases[R.uniformInt(4)];
  // Children lists from the parent vector, processed in decreasing id
  // order (parents have larger ids than children).
  for (int Node = TotalNodes - 2; Node >= 0; --Node) {
    const std::string &Parent = NodeSeq[D.TrueParent[Node]];
    std::string Seq = Parent;
    for (int Site = 0; Site < SeqLen; ++Site) {
      double PSub = 1.0 - std::exp(-Rates[Site] * BranchLen[Node]);
      if (!R.chance(PSub))
        continue;
      int Cur = baseIndex(Seq[Site]);
      // Transition with probability kappa / (kappa + 2).
      if (R.chance(D.TrueKappa / (D.TrueKappa + 2.0))) {
        static const int TransitionOf[4] = {2, 3, 0, 1};
        Seq[Site] = Bases[TransitionOf[Cur]];
      } else {
        // One of the two transversions.
        int Pick = static_cast<int>(R.uniformInt(2));
        int Choice = -1;
        for (int B = 0; B < 4; ++B) {
          if (B == Cur || isTransition(Cur, B))
            continue;
          if (Pick-- == 0) {
            Choice = B;
            break;
          }
        }
        assert(Choice >= 0 && "transversion selection failed");
        Seq[Site] = Bases[Choice];
      }
    }
    NodeSeq[Node] = std::move(Seq);
  }

  D.Sequences.resize(NumTaxa);
  for (int Taxon = 0; Taxon < NumTaxa; ++Taxon) {
    D.Sequences[Taxon] = NodeSeq[Taxon];
    for (char &C : D.Sequences[Taxon])
      if (R.chance(D.GapRate))
        C = '-';
  }
  return D;
}

std::vector<double> au::apps::phylipDistances(const PhylipDataset &D,
                                              const PhylipParams &P) {
  int SeqLen = static_cast<int>(D.Sequences.front().size());
  // Columns whose gap fraction exceeds GapThresh are excluded entirely.
  std::vector<bool> Usable(SeqLen, true);
  for (int Site = 0; Site < SeqLen; ++Site) {
    int Gaps = 0;
    for (int Taxon = 0; Taxon < NumTaxa; ++Taxon)
      Gaps += D.Sequences[Taxon][Site] == '-';
    Usable[Site] = Gaps <= P.GapThresh * NumTaxa;
  }

  std::vector<double> Dist(static_cast<size_t>(NumTaxa) * NumTaxa, 0.0);
  for (int A = 0; A < NumTaxa; ++A)
    for (int B = A + 1; B < NumTaxa; ++B) {
      int Ts = 0, Tv = 0, N = 0;
      for (int Site = 0; Site < SeqLen; ++Site) {
        if (!Usable[Site])
          continue;
        int Ca = baseIndex(D.Sequences[A][Site]);
        int Cb = baseIndex(D.Sequences[B][Site]);
        if (Ca < 0 || Cb < 0)
          continue;
        ++N;
        if (Ca == Cb)
          continue;
        if (isTransition(Ca, Cb))
          ++Ts;
        else
          ++Tv;
      }
      double Dd = 3.0; // Saturated fallback.
      if (N > 0) {
        // Kappa-weighted mismatch fraction, then gamma-corrected
        // Jukes-Cantor. Matching kappa/alpha to the generating process
        // restores distance additivity.
        double PEff = (P.Kappa * Ts + Tv) /
                      (static_cast<double>(N) * (P.Kappa + 2.0) / 3.0);
        PEff = clamp(PEff, 0.0, 0.70);
        double Inner = 1.0 - 4.0 * PEff / 3.0;
        Dd = 0.75 * P.Alpha * (std::pow(Inner, -1.0 / P.Alpha) - 1.0);
      }
      Dist[static_cast<size_t>(A) * NumTaxa + B] = Dd;
      Dist[static_cast<size_t>(B) * NumTaxa + A] = Dd;
    }
  return Dist;
}

std::vector<int> au::apps::neighborJoin(std::vector<double> Dist,
                                        int NumLeaves) {
  assert(NumLeaves >= 3 && "neighbor joining needs at least three taxa");
  // Active node ids and a growing distance map over them.
  std::vector<int> Active(NumLeaves);
  for (int I = 0; I < NumLeaves; ++I)
    Active[I] = I;
  int MaxNodes = 2 * NumLeaves - 1;
  std::vector<int> Parent(MaxNodes, -1);
  // Dense distance matrix indexed by node id (grown as nodes appear).
  std::vector<double> D(static_cast<size_t>(MaxNodes) * MaxNodes, 0.0);
  for (int A = 0; A < NumLeaves; ++A)
    for (int B = 0; B < NumLeaves; ++B)
      D[static_cast<size_t>(A) * MaxNodes + B] =
          Dist[static_cast<size_t>(A) * NumLeaves + B];
  auto Dd = [&](int A, int B) -> double & {
    return D[static_cast<size_t>(A) * MaxNodes + B];
  };

  int NextId = NumLeaves;
  while (Active.size() > 3) {
    int N = static_cast<int>(Active.size());
    std::vector<double> RowSum(N, 0.0);
    for (int I = 0; I < N; ++I)
      for (int J = 0; J < N; ++J)
        RowSum[I] += Dd(Active[I], Active[J]);
    // Minimize the Q criterion.
    double BestQ = 1e30;
    int BI = 0, BJ = 1;
    for (int I = 0; I < N; ++I)
      for (int J = I + 1; J < N; ++J) {
        double Q = (N - 2) * Dd(Active[I], Active[J]) - RowSum[I] - RowSum[J];
        if (Q < BestQ) {
          BestQ = Q;
          BI = I;
          BJ = J;
        }
      }
    int A = Active[BI], B = Active[BJ];
    int U = NextId++;
    Parent[A] = U;
    Parent[B] = U;
    // Distances from the new node.
    for (int K = 0; K < N; ++K) {
      int C = Active[K];
      if (C == A || C == B)
        continue;
      double DUC = 0.5 * (Dd(A, C) + Dd(B, C) - Dd(A, B));
      Dd(U, C) = Dd(C, U) = std::max(0.0, DUC);
    }
    // Replace A and B by U in the active set.
    Active.erase(Active.begin() + BJ);
    Active.erase(Active.begin() + BI);
    Active.push_back(U);
  }
  // Join the final three under the root.
  int Root = NextId++;
  for (int Node : Active)
    Parent[Node] = Root;
  Parent.resize(NextId);
  return Parent;
}

/// Collects the canonical non-trivial bipartition masks of a parent-vector
/// tree over \p NumLeaves leaves (leaf ids 0..NumLeaves-1).
static std::set<uint32_t> bipartitions(const std::vector<int> &Parent,
                                       int NumLeaves) {
  int Total = static_cast<int>(Parent.size());
  std::vector<uint32_t> Mask(Total, 0);
  for (int Leaf = 0; Leaf < NumLeaves; ++Leaf)
    Mask[Leaf] = 1u << Leaf;
  // Children have smaller ids than parents in both our encodings.
  for (int Node = 0; Node < Total; ++Node)
    if (Parent[Node] >= 0)
      Mask[Parent[Node]] |= Mask[Node];
  uint32_t Full = (1u << NumLeaves) - 1;
  std::set<uint32_t> Out;
  for (int Node = NumLeaves; Node < Total; ++Node) {
    if (Parent[Node] < 0)
      continue; // Root edge is not a bipartition.
    uint32_t M = Mask[Node];
    int Pop = __builtin_popcount(M);
    if (Pop < 2 || Pop > NumLeaves - 2)
      continue;
    Out.insert(std::min(M, Full ^ M));
  }
  return Out;
}

double au::apps::robinsonFoulds(const std::vector<int> &A,
                                const std::vector<int> &B, int NumLeaves) {
  std::set<uint32_t> SA = bipartitions(A, NumLeaves);
  std::set<uint32_t> SB = bipartitions(B, NumLeaves);
  if (SA.empty() && SB.empty())
    return 0.0;
  int Sym = 0;
  for (uint32_t M : SA)
    Sym += SB.count(M) == 0;
  for (uint32_t M : SB)
    Sym += SA.count(M) == 0;
  return static_cast<double>(Sym) /
         static_cast<double>(SA.size() + SB.size());
}

double au::apps::phylipScore(const PhylipDataset &D, const PhylipParams &P) {
  std::vector<int> Tree = neighborJoin(phylipDistances(D, P), NumTaxa);
  return robinsonFoulds(Tree, D.TrueParent, NumTaxa);
}

PhylipParams au::apps::autotunePhylip(const PhylipDataset &D) {
  static const double Alphas[] = {0.4, 0.8, 1.5, 3.0};
  static const double Kappas[] = {1.0, 2.0, 4.0};
  static const double Gaps[] = {0.15, 0.4, 0.7};
  PhylipParams Best;
  double BestScore = 1e30;
  for (double A : Alphas)
    for (double K : Kappas)
      for (double G : Gaps) {
        PhylipParams P{A, K, G};
        double Score = phylipScore(D, P);
        if (Score < BestScore) {
          BestScore = Score;
          Best = P;
        }
      }
  return Best;
}

void au::apps::phylipProfile(analysis::Tracer &T,
                             std::vector<std::string> &Inputs,
                             std::vector<std::string> &Targets) {
  PhylipDataset D = makePhylipDataset(606);
  PhylipParams P;
  double Score = phylipScore(D, P);

  T.markInput("sequences");
  T.recordDefValue("alpha", {}, "computeDist", P.Alpha);
  T.recordDefValue("kappa", {}, "computeDist", P.Kappa);
  T.recordDefValue("gapThresh", {}, "filterColumns", P.GapThresh);
  T.recordDef("usableCols", {"sequences", "gapThresh"}, "filterColumns");
  T.recordDef("mismatchCnt", {"sequences", "usableCols"}, "computeDist");
  T.recordDef("tsCnt", {"sequences", "usableCols"}, "computeDist");
  T.recordDef("pDist", {"mismatchCnt", "tsCnt", "kappa"}, "computeDist");
  T.recordDef("distMat", {"pDist", "alpha"}, "computeDist");
  T.recordDef("qMat", {"distMat"}, "neighborJoin");
  T.recordDef("tree", {"qMat", "distMat"}, "neighborJoin");
  T.recordDefValue("result", {"tree"}, "main", Score);

  Inputs = {"sequences"};
  Targets = {"alpha", "kappa", "gapThresh"};
}

//===----------------------------------------------------------------------===//
// The experiment driver
//===----------------------------------------------------------------------===//

PhylipExperiment::PhylipExperiment(int NumTrain, int NumTest, uint64_t S)
    : Seed(S) {
  for (int I = 0; I < NumTrain; ++I) {
    TrainSets.push_back(makePhylipDataset(Seed + 100 + I));
    TrainOracle.push_back(autotunePhylip(TrainSets.back()));
  }
  for (int I = 0; I < NumTest; ++I)
    TestSets.push_back(makePhylipDataset(Seed + 40000 + I));
  for (auto &RT : Runtimes)
    RT = std::make_unique<Runtime>(Mode::TR);
}

std::vector<float> PhylipExperiment::paramFeature(const PhylipDataset &D,
                                                  SlPick Pick) {
  int SeqLen = static_cast<int>(D.Sequences.front().size());
  switch (Pick) {
  case SlPick::Min: {
    // Compact alignment statistics computed deep in the pipeline: the
    // pairwise p-distance histogram plus transition/gap fractions.
    std::vector<float> F(16, 0.0f);
    int Pairs = 0;
    double TsTotal = 0.0, MismatchTotal = 0.0;
    for (int A = 0; A < NumTaxa; ++A)
      for (int B = A + 1; B < NumTaxa; ++B) {
        int Mis = 0, Ts = 0, N = 0;
        for (int Site = 0; Site < SeqLen; ++Site) {
          int Ca = baseIndex(D.Sequences[A][Site]);
          int Cb = baseIndex(D.Sequences[B][Site]);
          if (Ca < 0 || Cb < 0)
            continue;
          ++N;
          if (Ca != Cb) {
            ++Mis;
            Ts += isTransition(Ca, Cb);
          }
        }
        double Pd = N ? static_cast<double>(Mis) / N : 0.0;
        int Bin = std::min(7, static_cast<int>(Pd / 0.75 * 8));
        F[Bin] += 1.0f;
        TsTotal += Mis ? static_cast<double>(Ts) / Mis : 0.0;
        MismatchTotal += Pd;
        ++Pairs;
      }
    for (int B = 0; B < 8; ++B)
      F[B] /= static_cast<float>(Pairs);
    F[8] = static_cast<float>(TsTotal / Pairs);
    F[9] = static_cast<float>(MismatchTotal / Pairs);
    int Gaps = 0;
    for (const std::string &S : D.Sequences)
      for (char C : S)
        Gaps += C == '-';
    F[10] = static_cast<float>(Gaps) / (NumTaxa * SeqLen);
    // Base composition.
    int Counts[4] = {0, 0, 0, 0};
    int Total = 0;
    for (const std::string &S : D.Sequences)
      for (char C : S) {
        int B = baseIndex(C);
        if (B >= 0) {
          ++Counts[B];
          ++Total;
        }
      }
    for (int B = 0; B < 4; ++B)
      F[11 + B] = static_cast<float>(Counts[B]) / std::max(1, Total);
    F[15] = static_cast<float>(SeqLen) / 512.0f;
    return F;
  }
  case SlPick::Med: {
    // The raw pairwise mismatch and transition fractions (the distance
    // matrix before correction).
    std::vector<float> F;
    for (int A = 0; A < NumTaxa; ++A)
      for (int B = A + 1; B < NumTaxa; ++B) {
        int Mis = 0, Ts = 0, N = 0;
        for (int Site = 0; Site < SeqLen; ++Site) {
          int Ca = baseIndex(D.Sequences[A][Site]);
          int Cb = baseIndex(D.Sequences[B][Site]);
          if (Ca < 0 || Cb < 0)
            continue;
          ++N;
          if (Ca != Cb) {
            ++Mis;
            Ts += isTransition(Ca, Cb);
          }
        }
        F.push_back(N ? static_cast<float>(Mis) / N : 0.0f);
        F.push_back(Mis ? static_cast<float>(Ts) / Mis : 0.0f);
      }
    return F;
  }
  case SlPick::Raw: {
    // Raw encoded columns of the first four taxa.
    std::vector<float> F;
    int Cols = std::min(SeqLen, 32);
    for (int Taxon = 0; Taxon < 4; ++Taxon)
      for (int Site = 0; Site < Cols; ++Site) {
        int B = baseIndex(D.Sequences[Taxon][Site]);
        F.push_back(B < 0 ? 0.0f : 0.2f * (B + 1));
      }
    return F;
  }
  }
  assert(false && "unknown pick");
  return {};
}

double PhylipExperiment::runAnnotated(Runtime &RT, const PhylipDataset &D,
                                      SlPick Pick,
                                      const PhylipParams &Train) {
  ModelConfig Cfg;
  Cfg.Name = "PhyNN";
  Cfg.HiddenLayers = {48, 24};
  Cfg.Seed = Seed + 4;
  RT.config(Cfg);

  PhylipParams P = Train;
  std::vector<float> Feat = paramFeature(D, Pick);
  RT.extract("FEAT", Feat.size(), Feat.data());
  RT.nn("PhyNN", "FEAT", {{"ALPHA", 1}, {"KAPPA", 1}, {"GAPT", 1}});
  float AlphaV = static_cast<float>(P.Alpha);
  float KappaV = static_cast<float>(P.Kappa);
  float GapV = static_cast<float>(P.GapThresh);
  RT.writeBack("ALPHA", 1, &AlphaV);
  RT.writeBack("KAPPA", 1, &KappaV);
  RT.writeBack("GAPT", 1, &GapV);
  P.Alpha = clamp(AlphaV, 0.3, 3.2);
  P.Kappa = clamp(KappaV, 1.0, 4.5);
  P.GapThresh = clamp(GapV, 0.1, 0.75);

  return phylipScore(D, P);
}

double PhylipExperiment::train(SlPick Pick, int Epochs) {
  Runtime &RT = *Runtimes[Idx(Pick)];
  assert(RT.mode() == Mode::TR && "training twice on the same version");
  Timer T;
  for (size_t I = 0; I != TrainSets.size(); ++I)
    runAnnotated(RT, TrainSets[I], Pick, TrainOracle[I]);
  RT.trainSupervised("PhyNN", Epochs, 16);
  double Secs = T.seconds();
  TraceBytesPer[Idx(Pick)] = RT.stats().traceBytes();
  ModelBytesPer[Idx(Pick)] = RT.getModel("PhyNN")->modelSizeBytes();
  RT.switchMode(Mode::TS);
  return Secs;
}

double PhylipExperiment::testScore(SlPick Pick) {
  Runtime &RT = *Runtimes[Idx(Pick)];
  assert(RT.mode() == Mode::TS && "test before train");
  std::vector<double> Scores;
  for (const PhylipDataset &D : TestSets)
    Scores.push_back(runAnnotated(RT, D, Pick, PhylipParams()));
  return mean(Scores);
}

double PhylipExperiment::baselineScore() {
  std::vector<double> Scores;
  for (const PhylipDataset &D : TestSets)
    Scores.push_back(phylipScore(D, PhylipParams()));
  return mean(Scores);
}

double PhylipExperiment::autonomizedExecSeconds(SlPick Pick) {
  Runtime &RT = *Runtimes[Idx(Pick)];
  Timer T;
  for (const PhylipDataset &D : TestSets)
    runAnnotated(RT, D, Pick, PhylipParams());
  return T.seconds() / static_cast<double>(TestSets.size());
}

double PhylipExperiment::baselineExecSeconds() {
  Timer T;
  for (const PhylipDataset &D : TestSets)
    phylipScore(D, PhylipParams());
  return T.seconds() / static_cast<double>(TestSets.size());
}

size_t PhylipExperiment::traceBytes(SlPick Pick) const {
  return TraceBytesPer[static_cast<int>(Pick)];
}

size_t PhylipExperiment::modelBytes(SlPick Pick) const {
  return ModelBytesPer[static_cast<int>(Pick)];
}
