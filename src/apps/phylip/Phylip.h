//===- apps/phylip/Phylip.h - Phylogeny-inference benchmark ----*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature of the PHYLIP phylogeny-inference benchmark: neighbor-joining
/// tree reconstruction from DNA sequences. Sequences are synthesized by
/// evolving a random true tree under a Kimura-style model with gamma rate
/// heterogeneity and random gaps; the program reconstructs the tree from
/// gamma-corrected pairwise distances. Its three annotated parameters —
/// the gamma shape Alpha, the transition/transversion weight Kappa, and the
/// gap-column exclusion threshold GapThresh — each correspond to a hidden
/// generator property, so the ideal values genuinely vary per input.
///
/// The paper's Phylip score is lower-is-better; here it is the normalized
/// Robinson-Foulds distance between the inferred and the true tree.
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_PHYLIP_PHYLIP_H
#define AU_APPS_PHYLIP_PHYLIP_H

#include "analysis/FeatureExtraction.h"
#include "core/Runtime.h"

#include <cstdint>
#include <string>
#include <vector>

namespace au {
namespace apps {

/// The three annotated parameters of the distance computation.
struct PhylipParams {
  double Alpha = 1.0;     ///< Gamma shape for rate heterogeneity.
  double Kappa = 2.0;     ///< Transition/transversion weight.
  double GapThresh = 0.5; ///< Max gap fraction before a column is dropped.
};

/// A synthetic alignment with its true tree.
struct PhylipDataset {
  static constexpr int NumTaxa = 12;
  std::vector<std::string> Sequences; ///< Characters ACGT and '-' (gap).
  /// True tree as a parent vector over 2*NumTaxa-1 nodes (leaves first,
  /// root last).
  std::vector<int> TrueParent;
  double TrueAlpha = 1.0;
  double TrueKappa = 2.0;
  double GapRate = 0.0;
};

/// Generates one deterministic dataset.
PhylipDataset makePhylipDataset(uint64_t Seed, int SeqLen = 240);

/// Builds the gamma/Kimura-corrected distance matrix (NumTaxa x NumTaxa,
/// row-major).
std::vector<double> phylipDistances(const PhylipDataset &D,
                                    const PhylipParams &P);

/// Neighbor-joining over a distance matrix; returns a parent vector in the
/// same encoding as PhylipDataset::TrueParent.
std::vector<int> neighborJoin(std::vector<double> Dist, int NumTaxa);

/// Normalized Robinson-Foulds distance in [0, 1] between two parent-vector
/// trees over the same leaf set (0 = identical topologies).
double robinsonFoulds(const std::vector<int> &A, const std::vector<int> &B,
                      int NumTaxa);

/// End-to-end program run: distances + NJ + RF against the truth.
/// Lower is better.
double phylipScore(const PhylipDataset &D, const PhylipParams &P);

/// Grid-search autotuning oracle (minimizes the score).
PhylipParams autotunePhylip(const PhylipDataset &D);

/// Records the dependence structure of one run (Table 1 / Alg. 1).
void phylipProfile(analysis::Tracer &T, std::vector<std::string> &Inputs,
                   std::vector<std::string> &Targets);

/// The Raw / Med / Min comparison experiment.
class PhylipExperiment {
public:
  PhylipExperiment(int NumTrain, int NumTest, uint64_t Seed);

  double train(analysis::SlPick Pick, int Epochs);
  /// Mean RF distance (lower is better).
  double testScore(analysis::SlPick Pick);
  double baselineScore();
  double autonomizedExecSeconds(analysis::SlPick Pick);
  double baselineExecSeconds();
  size_t traceBytes(analysis::SlPick Pick) const;
  size_t modelBytes(analysis::SlPick Pick) const;

private:
  double runAnnotated(Runtime &RT, const PhylipDataset &D,
                      analysis::SlPick Pick, const PhylipParams &Train);
  static std::vector<float> paramFeature(const PhylipDataset &D,
                                         analysis::SlPick Pick);
  int Idx(analysis::SlPick Pick) const { return static_cast<int>(Pick); }

  std::vector<PhylipDataset> TrainSets;
  std::vector<PhylipParams> TrainOracle;
  std::vector<PhylipDataset> TestSets;
  uint64_t Seed;
  std::vector<std::unique_ptr<Runtime>> Runtimes{3};
  size_t TraceBytesPer[3] = {0, 0, 0};
  size_t ModelBytesPer[3] = {0, 0, 0};
};

} // namespace apps
} // namespace au

#endif // AU_APPS_PHYLIP_PHYLIP_H
