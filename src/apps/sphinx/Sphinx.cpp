//===- apps/sphinx/Sphinx.cpp - Speech-recognition benchmark -------------===//

#include "apps/sphinx/Sphinx.h"

#include "support/Rng.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace au;
using namespace au::apps;
using analysis::SlPick;

static constexpr int TemplateLen = 14;

std::vector<SphinxFrame> au::apps::sphinxTemplate(int Word) {
  assert(Word >= 0 && Word < SphinxVocab && "word id out of range");
  std::vector<SphinxFrame> T(TemplateLen);
  for (int I = 0; I < TemplateLen; ++I) {
    // A word is a distinctive 2-D formant trajectory with an amplitude
    // envelope that rises and decays but never drops to silence — so a
    // well-chosen endpoint threshold separates word from noise padding.
    double Env = 0.4 + 0.6 * std::sin(3.14159265 * (I + 0.5) / TemplateLen);
    T[I][0] = static_cast<float>(
        Env * std::sin(0.7 * Word + 0.55 * I + 0.2 * Word * I));
    T[I][1] = static_cast<float>(
        Env * std::cos(1.3 * Word + 0.35 * I - 0.1 * Word));
  }
  return T;
}

SphinxUtterance au::apps::makeSphinxUtterance(uint64_t Seed) {
  Rng R(Seed * 0x51b9c7u + 19);
  SphinxUtterance U;
  U.TrueWord = static_cast<int>(R.uniformInt(SphinxVocab));
  U.Rate = R.uniform(0.5, 1.9);
  U.Noise = R.uniform(0.03, 0.3);
  std::vector<SphinxFrame> T = sphinxTemplate(U.TrueWord);

  // Noise-only silence padding around the word: exactly what the noise
  // floor must suppress before DTW, or the padding aligns against word
  // content and corrupts the match.
  int PadLo = static_cast<int>(R.uniformInt(2, 6));
  int PadHi = static_cast<int>(R.uniformInt(2, 6));
  int Len = std::max(6, static_cast<int>(TemplateLen / U.Rate));
  U.Frames.resize(PadLo + Len + PadHi);
  for (int I = 0; I < PadLo + Len + PadHi; ++I)
    for (int C = 0; C < 2; ++C)
      U.Frames[I][C] = static_cast<float>(R.normal(0.0, U.Noise));
  for (int I = 0; I < Len; ++I) {
    // Linear time-warp resampling plus the additive noise already there.
    double Pos = static_cast<double>(I) / (Len - 1) * (TemplateLen - 1);
    int P0 = static_cast<int>(Pos);
    int P1 = std::min(P0 + 1, TemplateLen - 1);
    double Frac = Pos - P0;
    for (int C = 0; C < 2; ++C) {
      double V = T[P0][C] + Frac * (T[P1][C] - T[P0][C]);
      U.Frames[PadLo + I][C] += static_cast<float>(V);
    }
  }
  return U;
}

/// Front-end noise handling driven by the floor parameter: endpoint
/// detection (trim leading/trailing frames whose energy is below ~2.5x the
/// floor — silence under the assumed noise level) plus light spectral
/// subtraction on the rest. A floor matching the true noise strips exactly
/// the silence padding; too low leaves padding that corrupts the DTW
/// alignment, too high eats into the word.
static std::vector<SphinxFrame> denoise(const std::vector<SphinxFrame> &In,
                                        double Floor) {
  double Thresh = 2.2 * Floor;
  size_t Lo = 0, Hi = In.size();
  auto Mag = [&](size_t I) { return std::hypot(In[I][0], In[I][1]); };
  while (Lo + 4 < Hi && Mag(Lo) < Thresh)
    ++Lo;
  while (Hi > Lo + 4 && Mag(Hi - 1) < Thresh)
    --Hi;
  return std::vector<SphinxFrame>(In.begin() + Lo, In.begin() + Hi);
}

/// Beam-pruned DTW cost between an utterance and a template; counts the
/// DP cells expanded. Returns a large cost when the beam prunes away every
/// path.
static double dtwCost(const std::vector<SphinxFrame> &A,
                      const std::vector<SphinxFrame> &B, double Beam,
                      long &Cells) {
  const double Inf = 1e30;
  size_t N = A.size(), M = B.size();
  std::vector<double> Prev(M, Inf), Cur(M, Inf);
  auto Dist = [&](size_t I, size_t J) {
    double Dx = A[I][0] - B[J][0];
    double Dy = A[I][1] - B[J][1];
    return std::sqrt(Dx * Dx + Dy * Dy);
  };
  Prev[0] = Dist(0, 0);
  for (size_t J = 1; J < M; ++J)
    Prev[J] = Prev[J - 1] + Dist(0, J);
  for (size_t I = 1; I < N; ++I) {
    double RowBest = Inf;
    for (size_t J = 0; J < M; ++J) {
      double Best = Prev[J];
      if (J > 0) {
        Best = std::min(Best, Prev[J - 1]);
        Best = std::min(Best, Cur[J - 1]);
      }
      if (Best >= Inf) {
        Cur[J] = Inf;
        continue;
      }
      Cur[J] = Best + Dist(I, J);
      RowBest = std::min(RowBest, Cur[J]);
      ++Cells;
    }
    // Beam pruning relative to the row's best hypothesis.
    for (size_t J = 0; J < M; ++J)
      if (Cur[J] > RowBest + Beam)
        Cur[J] = Inf;
    std::swap(Prev, Cur);
    std::fill(Cur.begin(), Cur.end(), Inf);
  }
  return Prev[M - 1] / static_cast<double>(N + M);
}

SphinxResult au::apps::sphinxRecognize(const SphinxUtterance &U,
                                       const SphinxParams &P) {
  std::vector<SphinxFrame> Clean = denoise(U.Frames, P.NoiseFloor);
  SphinxResult R;
  double BestCost = 1e29;
  for (int W = 0; W < SphinxVocab; ++W) {
    std::vector<SphinxFrame> T = sphinxTemplate(W);
    double Cost = dtwCost(Clean, T, P.Beam, R.CellsExpanded);
    if (Cost < BestCost) {
      BestCost = Cost;
      R.Word = W;
    }
  }
  return R;
}

double au::apps::sphinxScore(const SphinxUtterance &U,
                             const SphinxParams &P) {
  SphinxResult R = sphinxRecognize(U, P);
  if (R.Word != U.TrueWord)
    return 0.0;
  // Full DTW would expand |U| * TemplateLen * Vocab cells.
  double MaxCells = static_cast<double>(U.Frames.size()) * TemplateLen *
                    SphinxVocab;
  return 1.0 - 0.4 * static_cast<double>(R.CellsExpanded) / MaxCells;
}

SphinxParams au::apps::autotuneSphinx(const SphinxUtterance &U) {
  static const double Beams[] = {0.4, 0.8, 1.5, 3.0, 6.0};
  static const double Floors[] = {0.0, 0.05, 0.1, 0.15};
  SphinxParams Best;
  double BestScore = -1.0;
  for (double B : Beams)
    for (double F : Floors) {
      SphinxParams P{B, F};
      // Robust objective: the setting must also survive a 25% narrower
      // beam, otherwise a slightly-off learned prediction falls off the
      // correctness cliff.
      double S = std::min(sphinxScore(U, P),
                          sphinxScore(U, {0.75 * B, F}));
      if (S > BestScore) {
        BestScore = S;
        Best = P;
      }
    }
  return Best;
}

void au::apps::sphinxProfile(analysis::Tracer &T,
                             std::vector<std::string> &Inputs,
                             std::vector<std::string> &Targets) {
  SphinxUtterance U = makeSphinxUtterance(909);
  SphinxParams P;
  double Score = sphinxScore(U, P);

  T.markInput("audio");
  T.recordDefValue("beam", {}, "dtwSearch", P.Beam);
  T.recordDefValue("noiseFloor", {}, "denoise", P.NoiseFloor);
  T.recordDef("frames", {"audio"}, "frontend");
  T.recordDef("energy", {"frames"}, "frontend");
  T.recordDef("noiseEst", {"frames"}, "frontend");
  T.recordDef("clean", {"frames", "noiseFloor"}, "denoise");
  T.recordDef("stats", {"clean", "energy", "noiseEst"}, "frontend");
  T.recordDef("lattice", {"clean", "beam"}, "dtwSearch");
  T.recordDef("bestWord", {"lattice"}, "dtwSearch");
  T.recordDefValue("result", {"bestWord", "lattice"}, "main", Score);

  Inputs = {"audio"};
  Targets = {"beam", "noiseFloor"};
}

//===----------------------------------------------------------------------===//
// The experiment driver
//===----------------------------------------------------------------------===//

SphinxExperiment::SphinxExperiment(int NumTrain, int NumTest, uint64_t S)
    : Seed(S) {
  for (int I = 0; I < NumTrain; ++I) {
    TrainSet.push_back(makeSphinxUtterance(Seed + 300 + I));
    TrainOracle.push_back(autotuneSphinx(TrainSet.back()));
  }
  for (int I = 0; I < NumTest; ++I)
    TestSet.push_back(makeSphinxUtterance(Seed + 60000 + I));
  for (auto &RT : Runtimes)
    RT = std::make_unique<Runtime>(Mode::TR);
}

std::vector<float> SphinxExperiment::paramFeature(const SphinxUtterance &U,
                                                  SlPick Pick) {
  int Len = static_cast<int>(U.Frames.size());
  switch (Pick) {
  case SlPick::Min: {
    // Front-end statistics: energy, dispersion, a frame-to-frame noise
    // estimate and the utterance length — exactly what the ideal beam and
    // noise floor depend on.
    std::vector<double> Mags;
    double DiffSum = 0.0;
    for (int I = 0; I < Len; ++I) {
      Mags.push_back(std::hypot(U.Frames[I][0], U.Frames[I][1]));
      if (I > 0)
        DiffSum += std::abs(U.Frames[I][0] - U.Frames[I - 1][0]) +
                   std::abs(U.Frames[I][1] - U.Frames[I - 1][1]);
    }
    std::vector<float> F(8);
    F[0] = static_cast<float>(mean(Mags));
    F[1] = static_cast<float>(stddev(Mags));
    F[2] = static_cast<float>(DiffSum / std::max(1, Len - 1));
    F[3] = static_cast<float>(Len) / 24.0f;
    F[4] = static_cast<float>(percentile(Mags, 10));
    F[5] = static_cast<float>(percentile(Mags, 50));
    F[6] = static_cast<float>(percentile(Mags, 90));
    F[7] = static_cast<float>(Mags.front() + Mags.back());
    return F;
  }
  case SlPick::Med: {
    // The magnitude envelope resampled to 24 points.
    std::vector<float> F(24);
    for (int I = 0; I < 24; ++I) {
      double Pos = static_cast<double>(I) / 23.0 * (Len - 1);
      int P0 = static_cast<int>(Pos);
      F[I] = std::hypot(U.Frames[P0][0], U.Frames[P0][1]);
    }
    return F;
  }
  case SlPick::Raw: {
    // Raw padded frames (2 channels x 24 frames).
    std::vector<float> F(48, 0.0f);
    for (int I = 0; I < std::min(Len, 24); ++I) {
      F[2 * I] = U.Frames[I][0];
      F[2 * I + 1] = U.Frames[I][1];
    }
    return F;
  }
  }
  assert(false && "unknown pick");
  return {};
}

double SphinxExperiment::runAnnotated(Runtime &RT, const SphinxUtterance &U,
                                      SlPick Pick,
                                      const SphinxParams &Train) {
  ModelConfig Cfg;
  Cfg.Name = "SphinxNN";
  Cfg.HiddenLayers = {48, 24};
  Cfg.Seed = Seed + 5;
  RT.config(Cfg);

  SphinxParams P = Train;
  std::vector<float> Feat = paramFeature(U, Pick);
  RT.extract("FEAT", Feat.size(), Feat.data());
  RT.nn("SphinxNN", "FEAT", {{"BEAM", 1}, {"NFLOOR", 1}});
  float BeamV = static_cast<float>(P.Beam);
  float FloorV = static_cast<float>(P.NoiseFloor);
  RT.writeBack("BEAM", 1, &BeamV);
  RT.writeBack("NFLOOR", 1, &FloorV);
  P.Beam = clamp(BeamV, 0.2, 8.0);
  P.NoiseFloor = clamp(FloorV, 0.0, 0.16);

  return sphinxScore(U, P);
}

double SphinxExperiment::train(SlPick Pick, int Epochs) {
  Runtime &RT = *Runtimes[Idx(Pick)];
  assert(RT.mode() == Mode::TR && "training twice on the same version");
  Timer T;
  for (size_t I = 0; I != TrainSet.size(); ++I)
    runAnnotated(RT, TrainSet[I], Pick, TrainOracle[I]);
  RT.trainSupervised("SphinxNN", Epochs, 16);
  double Secs = T.seconds();
  TraceBytesPer[Idx(Pick)] = RT.stats().traceBytes();
  ModelBytesPer[Idx(Pick)] = RT.getModel("SphinxNN")->modelSizeBytes();
  RT.switchMode(Mode::TS);
  return Secs;
}

double SphinxExperiment::testScore(SlPick Pick) {
  Runtime &RT = *Runtimes[Idx(Pick)];
  assert(RT.mode() == Mode::TS && "test before train");
  std::vector<double> Scores;
  for (const SphinxUtterance &U : TestSet)
    Scores.push_back(runAnnotated(RT, U, Pick, SphinxParams()));
  return mean(Scores);
}

double SphinxExperiment::baselineScore() {
  std::vector<double> Scores;
  for (const SphinxUtterance &U : TestSet)
    Scores.push_back(sphinxScore(U, SphinxParams()));
  return mean(Scores);
}

double SphinxExperiment::autonomizedExecSeconds(SlPick Pick) {
  Runtime &RT = *Runtimes[Idx(Pick)];
  Timer T;
  for (const SphinxUtterance &U : TestSet)
    runAnnotated(RT, U, Pick, SphinxParams());
  return T.seconds() / static_cast<double>(TestSet.size());
}

double SphinxExperiment::baselineExecSeconds() {
  Timer T;
  for (const SphinxUtterance &U : TestSet)
    sphinxScore(U, SphinxParams());
  return T.seconds() / static_cast<double>(TestSet.size());
}

size_t SphinxExperiment::traceBytes(SlPick Pick) const {
  return TraceBytesPer[static_cast<int>(Pick)];
}

size_t SphinxExperiment::modelBytes(SlPick Pick) const {
  return ModelBytesPer[static_cast<int>(Pick)];
}
