//===- apps/sphinx/Sphinx.h - Speech-recognition benchmark -----*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature of the CMU Sphinx speech-recognition benchmark: an isolated-
/// word recognizer that matches an utterance's acoustic feature sequence
/// against word templates with beam-pruned dynamic time warping. Its two
/// annotated parameters — the pruning beam width and the spectral noise
/// floor — trade accuracy against cost, and their ideal values depend on
/// the utterance's speaking rate and noise level, matching the paper's
/// two Sphinx target variables.
///
/// The score per utterance rewards a correct recognition and mildly
/// penalizes the DTW cells expanded, so a wastefully wide beam is not free.
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_SPHINX_SPHINX_H
#define AU_APPS_SPHINX_SPHINX_H

#include "analysis/FeatureExtraction.h"
#include "core/Runtime.h"

#include <array>
#include <cstdint>
#include <vector>

namespace au {
namespace apps {

/// The two annotated parameters. The defaults are the conservative
/// shipped configuration — a wide beam that never loses the correct path
/// and no endpoint trimming — safe on any corpus but wasteful and noisy,
/// which is exactly why per-input prediction helps.
struct SphinxParams {
  double Beam = 6.0;       ///< DTW pruning beam width.
  double NoiseFloor = 0.0; ///< Endpoint-detection noise floor.
};

/// One acoustic frame (a tiny stand-in for an MFCC vector).
using SphinxFrame = std::array<float, 2>;

/// Vocabulary size.
inline constexpr int SphinxVocab = 8;

/// One synthetic utterance with its true word.
struct SphinxUtterance {
  std::vector<SphinxFrame> Frames;
  int TrueWord = 0;
  double Rate = 1.0;  ///< Speaking-rate warp used to produce it.
  double Noise = 0.0; ///< Additive noise level used to produce it.
};

/// The deterministic template for a vocabulary word.
std::vector<SphinxFrame> sphinxTemplate(int Word);

/// Generates one deterministic utterance.
SphinxUtterance makeSphinxUtterance(uint64_t Seed);

/// Recognition outcome.
struct SphinxResult {
  int Word = -1;
  long CellsExpanded = 0;
};

/// Runs the beam-pruned DTW recognizer.
SphinxResult sphinxRecognize(const SphinxUtterance &U, const SphinxParams &P);

/// Utterance score in [0, 1]: 0 when wrong, otherwise 1 minus a small
/// cost term for the expanded DTW cells. Higher is better.
double sphinxScore(const SphinxUtterance &U, const SphinxParams &P);

/// Grid-search autotuning oracle.
SphinxParams autotuneSphinx(const SphinxUtterance &U);

/// Records the dependence structure of one run (Table 1 / Alg. 1).
void sphinxProfile(analysis::Tracer &T, std::vector<std::string> &Inputs,
                   std::vector<std::string> &Targets);

/// The Raw / Med / Min comparison experiment.
class SphinxExperiment {
public:
  SphinxExperiment(int NumTrain, int NumTest, uint64_t Seed);

  double train(analysis::SlPick Pick, int Epochs);
  double testScore(analysis::SlPick Pick);
  double baselineScore();
  double autonomizedExecSeconds(analysis::SlPick Pick);
  double baselineExecSeconds();
  size_t traceBytes(analysis::SlPick Pick) const;
  size_t modelBytes(analysis::SlPick Pick) const;

private:
  double runAnnotated(Runtime &RT, const SphinxUtterance &U,
                      analysis::SlPick Pick, const SphinxParams &Train);
  static std::vector<float> paramFeature(const SphinxUtterance &U,
                                         analysis::SlPick Pick);
  int Idx(analysis::SlPick Pick) const { return static_cast<int>(Pick); }

  std::vector<SphinxUtterance> TrainSet;
  std::vector<SphinxParams> TrainOracle;
  std::vector<SphinxUtterance> TestSet;
  uint64_t Seed;
  std::vector<std::unique_ptr<Runtime>> Runtimes{3};
  size_t TraceBytesPer[3] = {0, 0, 0};
  size_t ModelBytesPer[3] = {0, 0, 0};
};

} // namespace apps
} // namespace au

#endif // AU_APPS_SPHINX_SPHINX_H
