//===- apps/common/ByteIO.h - State (de)serialization helpers --*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tiny append/read helpers the game environments use to implement
/// Checkpointable (saveState/loadState) over a flat byte buffer.
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_COMMON_BYTEIO_H
#define AU_APPS_COMMON_BYTEIO_H

#include <cassert>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace au {
namespace apps {

/// Appends a trivially copyable value to \p Buf.
template <typename T> void putPod(std::vector<uint8_t> &Buf, const T &V) {
  static_assert(std::is_trivially_copyable_v<T>, "non-POD state");
  size_t Off = Buf.size();
  Buf.resize(Off + sizeof(T));
  std::memcpy(Buf.data() + Off, &V, sizeof(T));
}

/// Reads a trivially copyable value from \p Buf at \p Off, advancing it.
template <typename T>
void getPod(const std::vector<uint8_t> &Buf, size_t &Off, T &V) {
  static_assert(std::is_trivially_copyable_v<T>, "non-POD state");
  assert(Off + sizeof(T) <= Buf.size() && "state buffer underrun");
  std::memcpy(&V, Buf.data() + Off, sizeof(T));
  Off += sizeof(T);
}

/// Appends a vector of trivially copyable elements (length-prefixed).
template <typename T>
void putVec(std::vector<uint8_t> &Buf, const std::vector<T> &V) {
  putPod(Buf, static_cast<uint64_t>(V.size()));
  for (const T &E : V)
    putPod(Buf, E);
}

/// Reads a vector written by putVec.
template <typename T>
void getVec(const std::vector<uint8_t> &Buf, size_t &Off, std::vector<T> &V) {
  uint64_t N = 0;
  getPod(Buf, Off, N);
  V.resize(N);
  for (uint64_t I = 0; I != N; ++I)
    getPod(Buf, Off, V[I]);
}

} // namespace apps
} // namespace au

#endif // AU_APPS_COMMON_BYTEIO_H
