//===- apps/common/GameEnv.cpp - Interactive-program interface -----------===//

#include "apps/common/GameEnv.h"

#include <cassert>

using namespace au;
using namespace au::apps;

GameEnv::~GameEnv() = default;

float au::apps::featureValue(const std::vector<Feature> &Fs,
                             const std::string &Name) {
  for (const Feature &F : Fs)
    if (F.first == Name)
      return F.second;
  assert(false && "unknown feature variable");
  return 0.0f;
}

std::vector<float>
au::apps::selectFeatures(const std::vector<Feature> &Fs,
                         const std::vector<std::string> &Names) {
  std::vector<float> Out;
  Out.reserve(Names.size());
  for (const std::string &N : Names)
    Out.push_back(featureValue(Fs, N));
  return Out;
}
