//===- apps/common/VectorEnv.cpp - Parallel actor pool --------------------===//

#include "apps/common/VectorEnv.h"

#include "support/ThreadPool.h"

#include <cassert>

using namespace au;
using namespace au::apps;

VectorEnv::VectorEnv(const GameEnvFactory &Factory, int NumActors,
                     uint64_t Seed) {
  assert(NumActors > 0 && "actor pool needs at least one actor");
  Envs.reserve(static_cast<size_t>(NumActors));
  Streams.reserve(static_cast<size_t>(NumActors));
  for (int A = 0; A < NumActors; ++A) {
    Envs.push_back(Factory());
    assert(Envs.back() && "factory produced no environment");
    Streams.push_back(Rng::stream(Seed, static_cast<uint64_t>(A)));
  }
}

void VectorEnv::resetAll(const std::function<uint64_t(int)> &SeedOf) {
  ThreadPool::global().parallelFor(
      0, static_cast<size_t>(size()), 1, [&](size_t B, size_t E) {
        for (size_t A = B; A != E; ++A)
          Envs[A]->reset(SeedOf(static_cast<int>(A)));
      });
}

void VectorEnv::stepWhere(const uint8_t *Active, const int *Actions,
                          float *Rewards, uint8_t *Terminals) {
  assert(Actions && Rewards && Terminals && "null step buffers");
  ThreadPool::global().parallelFor(
      0, static_cast<size_t>(size()), 1, [&](size_t B, size_t E) {
        for (size_t A = B; A != E; ++A) {
          if (Active && !Active[A])
            continue;
          Rewards[A] = Envs[A]->step(Actions[A]);
          Terminals[A] = Envs[A]->terminal() ? 1 : 0;
        }
      });
}
