//===- apps/common/VectorEnv.cpp - Parallel actor pool --------------------===//

#include "apps/common/VectorEnv.h"

#include "support/ThreadPool.h"

#include <cassert>
#include <chrono>

namespace {

/// Serial batches estimated under this run inline; the ThreadPool
/// queue/wake/join cycle costs a handful of microseconds, so dispatching
/// cheaper batches than this to the pool is a net loss.
constexpr double SerialCutoffNs = 20000.0;

} // namespace

using namespace au;
using namespace au::apps;

VectorEnv::VectorEnv(const GameEnvFactory &Factory, int NumActors,
                     uint64_t Seed) {
  assert(NumActors > 0 && "actor pool needs at least one actor");
  Envs.reserve(static_cast<size_t>(NumActors));
  Streams.reserve(static_cast<size_t>(NumActors));
  for (int A = 0; A < NumActors; ++A) {
    Envs.push_back(Factory());
    assert(Envs.back() && "factory produced no environment");
    Streams.push_back(Rng::stream(Seed, static_cast<uint64_t>(A)));
  }
}

void VectorEnv::resetAll(const std::function<uint64_t(int)> &SeedOf) {
  ThreadPool::global().parallelFor(
      0, static_cast<size_t>(size()), 1, [&](size_t B, size_t E) {
        for (size_t A = B; A != E; ++A)
          Envs[A]->reset(SeedOf(static_cast<int>(A)));
      });
}

void VectorEnv::stepWhere(const uint8_t *Active, const int *Actions,
                          float *Rewards, uint8_t *Terminals) {
  assert(Actions && Rewards && Terminals && "null step buffers");
  const size_t K = static_cast<size_t>(size());
  size_t NumActive = K;
  if (Active) {
    NumActive = 0;
    for (size_t A = 0; A != K; ++A)
      NumActive += Active[A] ? 1 : 0;
    if (NumActive == 0)
      return;
  }
  auto Body = [&](size_t B, size_t E) {
    for (size_t A = B; A != E; ++A) {
      if (Active && !Active[A])
        continue;
      Rewards[A] = Envs[A]->step(Actions[A]);
      Terminals[A] = Envs[A]->terminal() ? 1 : 0;
    }
  };
  // Inline serial short-circuit (see the header): first batch (AvgStepNs
  // still 0) runs serially to seed the estimate; after escalating, only an
  // estimate under half the cutoff de-escalates (hysteresis).
  const double Est = static_cast<double>(NumActive) * AvgStepNs;
  const bool RunSerial =
      Escalated ? Est < SerialCutoffNs * 0.5 : Est < SerialCutoffNs;
  if (RunSerial) {
    Escalated = false;
    auto T0 = std::chrono::steady_clock::now();
    Body(0, K);
    double Ns = std::chrono::duration<double, std::nano>(
                    std::chrono::steady_clock::now() - T0)
                    .count() /
                static_cast<double>(NumActive);
    AvgStepNs = AvgStepNs == 0.0 ? Ns : 0.875 * AvgStepNs + 0.125 * Ns;
    return;
  }
  Escalated = true;
  ThreadPool::global().parallelFor(0, K, 1, Body);
}
