//===- apps/common/RlHarness.cpp - Autonomization harness for RL ---------===//

#include "apps/common/RlHarness.h"

#include "support/Timer.h"

#include <cassert>

using namespace au;
using namespace au::apps;

/// Level seeds carry the layout in the high bits and a per-episode jitter
/// in the low byte (see GameEnv).
static uint64_t makeSeed(uint64_t LevelSeed, uint64_t Episode) {
  return (LevelSeed << 8) | (Episode & 0xff);
}

std::string au::apps::rlModelName(const GameEnv &Env, RlVariant V) {
  return std::string(Env.name()) + (V == RlVariant::All ? "_all" : "_raw");
}

std::vector<std::string>
au::apps::selectRlFeatures(GameEnv &Env, double Epsilon1, double Epsilon2,
                           int ProfileSteps,
                           analysis::RlExtractionStats *Stats) {
  analysis::Tracer T;
  Env.profile(T, ProfileSteps);
  std::vector<std::string> Selected = analysis::extractRlFeaturesCombined(
      T, Env.targetVariables(), Epsilon1, Epsilon2, Stats);
  // Keep only variables the program can hand to au_extract every frame.
  Env.reset(0);
  std::vector<Feature> Live = Env.features();
  std::vector<std::string> Usable;
  for (const std::string &Name : Selected) {
    bool Found = false;
    for (const Feature &F : Live)
      Found = Found || F.first == Name;
    if (Found)
      Usable.push_back(Name);
  }
  assert(!Usable.empty() && "feature selection produced nothing extractable");
  return Usable;
}

namespace {
/// Interned handles for one drive loop (DESIGN.md §7): names are resolved
/// to NameIds once here, so the per-step extract/serialize/nn/write_back
/// path neither hashes nor copies a string. Feature positions within
/// Env.features() are resolved once too, replacing the per-step linear
/// name search.
struct RlHandles {
  NameId Model = InvalidNameId;
  NameId Img = InvalidNameId;
  WriteBackHandle Output;
  std::vector<NameId> Features;   ///< Parallel to Opt.FeatureNames.
  std::vector<size_t> FeatureIdx; ///< Position in Env.features() (lazy).
};
} // namespace

static RlHandles makeHandles(GameEnv &Env, Runtime &RT,
                             const RlTrainOptions &Opt) {
  RlHandles H;
  H.Model = RT.intern(rlModelName(Env, Opt.Variant));
  H.Output = {RT.intern("output"), Env.numActions()};
  if (Opt.Variant == RlVariant::Raw) {
    H.Img = RT.intern("IMG");
    return H;
  }
  H.Features.reserve(Opt.FeatureNames.size());
  for (const std::string &Name : Opt.FeatureNames)
    H.Features.push_back(RT.intern(Name));
  return H;
}

/// Runs the au_extract / au_serialize prologue of one loop iteration and
/// returns the combined extraction handle to feed au_NN. On the first call
/// the feature positions within Env.features() are resolved and cached in
/// \p H (the env must be reset by then), replacing the per-step linear name
/// search of featureValue().
static NameId extractState(GameEnv &Env, Runtime &RT,
                           const RlTrainOptions &Opt, RlHandles &H) {
  if (Opt.Variant == RlVariant::Raw) {
    Image Frame = Env.renderFrame(Opt.FrameSide);
    RT.extract(H.Img, Frame.size(), Frame.data().data());
    return H.Img;
  }
  std::vector<Feature> Fs = Env.features();
  if (H.FeatureIdx.empty()) {
    H.FeatureIdx.reserve(Opt.FeatureNames.size());
    for (const std::string &Name : Opt.FeatureNames) {
      size_t Idx = Fs.size();
      for (size_t I = 0; I != Fs.size(); ++I)
        if (Fs[I].first == Name) {
          Idx = I;
          break;
        }
      assert(Idx < Fs.size() &&
             "selected feature not exposed by the env");
      H.FeatureIdx.push_back(Idx);
    }
  }
  for (size_t I = 0, E = H.Features.size(); I != E; ++I) {
    assert(Fs[H.FeatureIdx[I]].first == Opt.FeatureNames[I] &&
           "env feature order changed between steps");
    RT.extract(H.Features[I], Fs[H.FeatureIdx[I]].second);
  }
  return RT.serialize(H.Features);
}

/// Configures (or finds) the model for this env/variant pair.
static Model *configureModel(GameEnv &Env, Runtime &RT,
                             const RlTrainOptions &Opt) {
  ModelConfig C;
  C.Name = rlModelName(Env, Opt.Variant);
  C.Type = Opt.Variant == RlVariant::Raw ? ModelType::CNN : ModelType::DNN;
  C.Algo = Algorithm::QLearn;
  C.HiddenLayers = Opt.Hidden;
  C.FrameSide = Opt.FrameSide;
  C.FrameChannels = 1;
  C.Seed = Opt.Seed + (Opt.Variant == RlVariant::Raw ? 1000 : 0);
  Model *M = RT.config(C);
  if (!M->isBuilt())
    static_cast<RlModel *>(M)->setQConfig(Opt.QCfg);
  return M;
}

RlTrainResult au::apps::trainRl(GameEnv &Env, Runtime &RT,
                                const RlTrainOptions &Opt) {
  assert(RT.mode() == Mode::TR && "training requires TR mode");
  RlTrainResult Res;
  Res.ModelName = rlModelName(Env, Opt.Variant);
  Model *M = configureModel(Env, RT, Opt);
  RlHandles H = makeHandles(Env, RT, Opt);

  RT.checkpoints().registerObject(&Env);
  Env.reset(makeSeed(Opt.Seed, 0));
  {
    Timer T;
    RT.checkpoint();
    Res.CheckpointSeconds = T.seconds();
  }

  size_t TraceStart = RT.stats().traceBytes();
  double RestoreTotal = 0.0;
  long Restores = 0;

  Timer TrainTimer;
  float Reward = 0.0f;
  bool Term = false;
  int EpisodeSteps = 0;

  while (Res.StepsRun < Opt.TrainSteps) {
    NameId ExtId = extractState(Env, RT, Opt, H);
    RT.nn(H.Model, ExtId, Reward, Term, H.Output);
    int Action = 0;
    RT.writeBack(H.Output.Name, Env.numActions(), &Action);

    if (Term) {
      ++Res.Episodes;
      EpisodeSteps = 0;
      Reward = 0.0f;
      Term = false;
      if (Res.Episodes % 8 == 0) {
        // Periodically start from a fresh jittered episode (and re-arm the
        // checkpoint) so learning sees level variation.
        Env.reset(makeSeed(Opt.Seed, Res.Episodes));
        RT.checkpoint();
      } else {
        Timer T;
        RT.restore();
        RestoreTotal += T.seconds();
        ++Restores;
      }
      continue;
    }

    Reward = Env.step(Action);
    Term = Env.terminal();
    ++Res.StepsRun;
    if (++EpisodeSteps >= Opt.MaxEpisodeSteps)
      Term = true; // Truncate over-long episodes.

    if (Opt.EvalEvery > 0 && Res.StepsRun % Opt.EvalEvery == 0) {
      RlEvalResult E = evalRl(Env, RT, Opt, Opt.EvalEpisodes);
      Res.Curve.push_back({Res.StepsRun, E.MeanProgress, E.SuccessRate});
    }
  }

  Res.TrainSeconds = TrainTimer.seconds();
  Res.TraceBytes = RT.stats().traceBytes() - TraceStart;
  Res.ModelBytes = M->modelSizeBytes();
  Res.NumParams = M->numParams();
  if (Restores > 0)
    Res.RestoreSeconds = RestoreTotal / static_cast<double>(Restores);
  return Res;
}

RlEvalResult au::apps::evalRl(GameEnv &Env, Runtime &RT,
                              const RlTrainOptions &Opt, int Episodes) {
  assert(Episodes > 0 && "evaluation needs at least one episode");
  RlHandles H = makeHandles(Env, RT, Opt);
  assert(RT.getModel(H.Model) && "evaluating an unconfigured model");

  // Evaluation must not disturb training: stash the env state and switch
  // the runtime to deployment mode for the duration.
  std::vector<uint8_t> Saved;
  Env.saveState(Saved);
  Mode PrevMode = RT.mode();
  RT.switchMode(Mode::TS);

  RlEvalResult Res;
  double StepTime = 0.0;
  long Steps = 0;
  for (int Ep = 0; Ep < Episodes; ++Ep) {
    Env.reset(makeSeed(Opt.Seed, 100 + static_cast<uint64_t>(Ep)));
    int EpSteps = 0;
    while (!Env.terminal() && EpSteps < Opt.MaxEpisodeSteps) {
      Timer T;
      NameId ExtId = extractState(Env, RT, Opt, H);
      RT.nn(H.Model, ExtId, 0.0f, false, H.Output);
      int Action = 0;
      RT.writeBack(H.Output.Name, Env.numActions(), &Action);
      Env.step(Action);
      StepTime += T.seconds();
      ++Steps;
      ++EpSteps;
    }
    Res.MeanProgress += Env.progress();
    Res.SuccessRate += Env.success() ? 1.0 : 0.0;
  }
  Res.MeanProgress /= Episodes;
  Res.SuccessRate /= Episodes;
  Res.MeanStepSeconds = Steps > 0 ? StepTime / static_cast<double>(Steps) : 0;

  RT.switchMode(PrevMode);
  Env.loadState(Saved);
  return Res;
}

/// Shared scripted-policy evaluation loop.
static RlEvalResult evalScripted(GameEnv &Env, const RlTrainOptions &Opt,
                                 int Episodes, bool Random) {
  RlEvalResult Res;
  Rng R(Opt.Seed * 77 + 5);
  double StepTime = 0.0;
  long Steps = 0;
  for (int Ep = 0; Ep < Episodes; ++Ep) {
    Env.reset(makeSeed(Opt.Seed, 100 + static_cast<uint64_t>(Ep)));
    int EpSteps = 0;
    while (!Env.terminal() && EpSteps < Opt.MaxEpisodeSteps) {
      Timer T;
      int Action = Random ? static_cast<int>(R.uniformInt(Env.numActions()))
                          : Env.heuristicAction(R);
      Env.step(Action);
      StepTime += T.seconds();
      ++Steps;
      ++EpSteps;
    }
    Res.MeanProgress += Env.progress();
    Res.SuccessRate += Env.success() ? 1.0 : 0.0;
  }
  Res.MeanProgress /= Episodes;
  Res.SuccessRate /= Episodes;
  Res.MeanStepSeconds = Steps > 0 ? StepTime / static_cast<double>(Steps) : 0;
  return Res;
}

RlEvalResult au::apps::evalHeuristic(GameEnv &Env, const RlTrainOptions &Opt,
                                     int Episodes) {
  return evalScripted(Env, Opt, Episodes, /*Random=*/false);
}

RlEvalResult au::apps::evalRandom(GameEnv &Env, const RlTrainOptions &Opt,
                                  int Episodes) {
  return evalScripted(Env, Opt, Episodes, /*Random=*/true);
}

double au::apps::baselineStepSeconds(GameEnv &Env, const RlTrainOptions &Opt,
                                     int Episodes) {
  RlEvalResult R = evalScripted(Env, Opt, Episodes, /*Random=*/false);
  return R.MeanStepSeconds;
}
