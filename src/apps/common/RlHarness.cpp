//===- apps/common/RlHarness.cpp - Autonomization harness for RL ---------===//

#include "apps/common/RlHarness.h"

#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <memory>

using namespace au;
using namespace au::apps;

/// Level seeds carry the layout in the high bits and a per-episode jitter
/// in the low byte (see GameEnv).
static uint64_t makeSeed(uint64_t LevelSeed, uint64_t Episode) {
  return (LevelSeed << 8) | (Episode & 0xff);
}

std::string au::apps::rlModelName(const GameEnv &Env, RlVariant V) {
  return std::string(Env.name()) + (V == RlVariant::All ? "_all" : "_raw");
}

std::vector<std::string>
au::apps::selectRlFeatures(GameEnv &Env, double Epsilon1, double Epsilon2,
                           int ProfileSteps,
                           analysis::RlExtractionStats *Stats) {
  analysis::Tracer T;
  Env.profile(T, ProfileSteps);
  std::vector<std::string> Selected = analysis::extractRlFeaturesCombined(
      T, Env.targetVariables(), Epsilon1, Epsilon2, Stats);
  // Keep only variables the program can hand to au_extract every frame.
  Env.reset(0);
  std::vector<Feature> Live = Env.features();
  std::vector<std::string> Usable;
  for (const std::string &Name : Selected) {
    bool Found = false;
    for (const Feature &F : Live)
      Found = Found || F.first == Name;
    if (Found)
      Usable.push_back(Name);
  }
  assert(!Usable.empty() && "feature selection produced nothing extractable");
  return Usable;
}

namespace {
/// Interned handles for one drive loop (DESIGN.md §7): names are resolved
/// to NameIds once here, so the per-step extract/serialize/nn/write_back
/// path neither hashes nor copies a string. Handles come from the engine's
/// master name table, so one handle set is valid in every Session of the
/// engine — the lane sessions of the parallel paths included. Feature
/// positions within Env.features() are resolved once too, replacing the
/// per-step linear name search.
struct RlHandles {
  NameId Model = InvalidNameId;
  NameId Img = InvalidNameId;
  WriteBackHandle Output;
  std::vector<NameId> Features;   ///< Parallel to Opt.FeatureNames.
  std::vector<size_t> FeatureIdx; ///< Position in Env.features() (lazy).
};

/// K per-actor Sessions over one Engine (the DESIGN.md §10 shape of the §8
/// actor fleet). Sessions are created mirroring the full master name table,
/// so handles interned beforehand index every lane store. On destruction
/// nothing folds automatically — callers fold the lanes' primitive counters
/// into the session whose stats they report (foldInto).
struct SessionPool {
  std::vector<std::unique_ptr<Session>> Lanes;
  std::vector<Session *> Ptrs; ///< Engine batcher argument form.

  SessionPool(Engine &Eng, Mode M, int K) {
    Lanes.reserve(static_cast<size_t>(K));
    Ptrs.reserve(static_cast<size_t>(K));
    for (int A = 0; A != K; ++A) {
      Lanes.push_back(std::make_unique<Session>(Eng, M));
      Ptrs.push_back(Lanes.back().get());
    }
  }

  Session &lane(int A) { return *Lanes[static_cast<size_t>(A)]; }

  void foldInto(Session &Main) {
    for (auto &L : Lanes)
      Main.foldStats(L->stats());
  }
};
} // namespace

static RlHandles makeHandles(GameEnv &Env, Session &S,
                             const RlTrainOptions &Opt) {
  RlHandles H;
  H.Model = S.intern(rlModelName(Env, Opt.Variant));
  H.Output = {S.intern("output"), Env.numActions()};
  if (Opt.Variant == RlVariant::Raw) {
    H.Img = S.intern("IMG");
    return H;
  }
  H.Features.reserve(Opt.FeatureNames.size());
  for (const std::string &Name : Opt.FeatureNames)
    H.Features.push_back(S.intern(Name));
  return H;
}

/// Resolves the positions of Opt.FeatureNames within Env.features() into
/// \p H.FeatureIdx (the env must be reset). Idempotent; must run serially
/// before any parallel extraction uses \p H.
static void resolveFeatureIdx(GameEnv &Env, const RlTrainOptions &Opt,
                              RlHandles &H) {
  if (!H.FeatureIdx.empty())
    return;
  std::vector<Feature> Fs = Env.features();
  H.FeatureIdx.reserve(Opt.FeatureNames.size());
  for (const std::string &Name : Opt.FeatureNames) {
    size_t Idx = Fs.size();
    for (size_t I = 0; I != Fs.size(); ++I)
      if (Fs[I].first == Name) {
        Idx = I;
        break;
      }
    assert(Idx < Fs.size() && "selected feature not exposed by the env");
    H.FeatureIdx.push_back(Idx);
  }
}

/// Runs the au_extract / au_serialize prologue of one loop iteration and
/// returns the combined extraction handle to feed au_NN. On the first call
/// the feature positions within Env.features() are resolved and cached in
/// \p H (the env must be reset by then), replacing the per-step linear name
/// search of featureValue().
static NameId extractState(GameEnv &Env, Session &S,
                           const RlTrainOptions &Opt, RlHandles &H) {
  if (Opt.Variant == RlVariant::Raw) {
    Image Frame = Env.renderFrame(Opt.FrameSide);
    S.extract(H.Img, Frame.size(), Frame.data().data());
    return H.Img;
  }
  resolveFeatureIdx(Env, Opt, H);
  std::vector<Feature> Fs = Env.features();
  for (size_t I = 0, E = H.Features.size(); I != E; ++I) {
    assert(Fs[H.FeatureIdx[I]].first == Opt.FeatureNames[I] &&
           "env feature order changed between steps");
    S.extract(H.Features[I], Fs[H.FeatureIdx[I]].second);
  }
  return S.serialize(H.Features);
}

/// extractState into lane session \p S. \p H must be fully resolved
/// (resolveFeatureIdx) — this runs concurrently for distinct lanes, so it
/// only reads the shared handle set.
static NameId extractStateLane(GameEnv &Env, Session &S,
                               const RlTrainOptions &Opt,
                               const RlHandles &H) {
  if (Opt.Variant == RlVariant::Raw) {
    Image Frame = Env.renderFrame(Opt.FrameSide);
    S.extract(H.Img, Frame.size(), Frame.data().data());
    return H.Img;
  }
  assert(!H.FeatureIdx.empty() && "feature positions not resolved");
  std::vector<Feature> Fs = Env.features();
  for (size_t I = 0, E = H.Features.size(); I != E; ++I) {
    assert(Fs[H.FeatureIdx[I]].first == Opt.FeatureNames[I] &&
           "env feature order changed between steps");
    S.extract(H.Features[I], Fs[H.FeatureIdx[I]].second);
  }
  return S.serialize(H.Features);
}

/// Configures (or finds) the model for this env/variant pair.
static Model *configureModel(GameEnv &Env, Session &S,
                             const RlTrainOptions &Opt) {
  ModelConfig C;
  C.Name = rlModelName(Env, Opt.Variant);
  C.Type = Opt.Variant == RlVariant::Raw ? ModelType::CNN : ModelType::DNN;
  C.Algo = Algorithm::QLearn;
  C.HiddenLayers = Opt.Hidden;
  C.FrameSide = Opt.FrameSide;
  C.FrameChannels = 1;
  C.Seed = Opt.Seed + (Opt.Variant == RlVariant::Raw ? 1000 : 0);
  Model *M = S.config(C);
  if (!M->isBuilt())
    static_cast<RlModel *>(M)->setQConfig(Opt.QCfg);
  return M;
}

RlTrainResult au::apps::trainRl(GameEnv &Env, Session &S,
                                const RlTrainOptions &Opt) {
  assert(S.mode() == Mode::TR && "training requires TR mode");
  RlTrainResult Res;
  Res.ModelName = rlModelName(Env, Opt.Variant);
  Model *M = configureModel(Env, S, Opt);
  RlHandles H = makeHandles(Env, S, Opt);

  S.checkpoints().registerObject(&Env);
  Env.reset(makeSeed(Opt.Seed, 0));
  {
    Timer T;
    S.checkpoint();
    Res.CheckpointSeconds = T.seconds();
  }

  size_t TraceStart = S.stats().traceBytes();
  double RestoreTotal = 0.0;
  long Restores = 0;

  Timer TrainTimer;
  float Reward = 0.0f;
  bool Term = false;
  int EpisodeSteps = 0;

  while (Res.StepsRun < Opt.TrainSteps) {
    NameId ExtId = extractState(Env, S, Opt, H);
    S.nn(H.Model, ExtId, Reward, Term, H.Output);
    int Action = 0;
    S.writeBack(H.Output.Name, Env.numActions(), &Action);

    if (Term) {
      ++Res.Episodes;
      EpisodeSteps = 0;
      Reward = 0.0f;
      Term = false;
      if (Res.Episodes % 8 == 0) {
        // Periodically start from a fresh jittered episode (and re-arm the
        // checkpoint) so learning sees level variation.
        Env.reset(makeSeed(Opt.Seed, Res.Episodes));
        S.checkpoint();
      } else {
        Timer T;
        S.restore();
        RestoreTotal += T.seconds();
        ++Restores;
      }
      continue;
    }

    Reward = Env.step(Action);
    Term = Env.terminal();
    ++Res.StepsRun;
    if (++EpisodeSteps >= Opt.MaxEpisodeSteps)
      Term = true; // Truncate over-long episodes.

    if (Opt.EvalEvery > 0 && Res.StepsRun % Opt.EvalEvery == 0) {
      RlEvalResult E = evalRl(Env, S, Opt, Opt.EvalEpisodes);
      Res.Curve.push_back({Res.StepsRun, E.MeanProgress, E.SuccessRate});
    }
  }

  Res.TrainSeconds = TrainTimer.seconds();
  Res.TraceBytes = S.stats().traceBytes() - TraceStart;
  Res.ModelBytes = M->modelSizeBytes();
  Res.NumParams = M->numParams();
  if (Restores > 0)
    Res.RestoreSeconds = RestoreTotal / static_cast<double>(Restores);
  return Res;
}

RlTrainResult au::apps::trainRl(GameEnv &Env, Runtime &RT,
                                const RlTrainOptions &Opt) {
  return trainRl(Env, RT.session(), Opt);
}

RlTrainResult au::apps::trainRlParallel(const GameEnvFactory &Factory,
                                        Engine &Eng, Session &Main,
                                        const RlTrainOptions &Opt,
                                        int NumActors) {
  assert(Main.mode() == Mode::TR && "training requires TR mode");
  assert(NumActors > 0 && "need at least one actor");
  const int K = NumActors;
  VectorEnv VE(Factory, K, Opt.Seed);

  RlTrainResult Res;
  Res.ModelName = rlModelName(VE.env(0), Opt.Variant);
  Model *M = configureModel(VE.env(0), Main, Opt);
  static_cast<RlModel *>(M)->configureActors(K);
  RlHandles H = makeHandles(VE.env(0), Main, Opt);

  // The lane sessions come after every name is interned, so each lane store
  // mirrors the full master table from birth.
  SessionPool Pool(Eng, Main.mode(), K);

  // Actor k opens the fleet on episode jitter k; later episodes draw fresh
  // jitters from one global counter, assigned serially in actor order so
  // the seed sequence is thread-count independent. (Unlike trainRl there is
  // no checkpoint/restore rollback — K actors restarting from one shared
  // snapshot would collapse the fleet's level diversity; see DESIGN.md §8.)
  VE.resetAll(
      [&](int A) { return makeSeed(Opt.Seed, static_cast<uint64_t>(A)); });
  uint64_t NextJitter = static_cast<uint64_t>(K);
  if (Opt.Variant == RlVariant::All)
    resolveFeatureIdx(VE.env(0), Opt, H);

  size_t TraceStart = Main.stats().traceBytes();
  Timer TrainTimer;

  std::vector<NameId> ExtIds(static_cast<size_t>(K), InvalidNameId);
  std::vector<float> Rewards(static_cast<size_t>(K), 0.0f);
  std::vector<uint8_t> Terms(static_cast<size_t>(K), 0);
  std::vector<float> StepRewards(static_cast<size_t>(K), 0.0f);
  std::vector<uint8_t> NewTerms(static_cast<size_t>(K), 0);
  std::vector<uint8_t> Stepping(static_cast<size_t>(K), 0);
  std::vector<int> EpSteps(static_cast<size_t>(K), 0);
  ThreadPool &TPool = ThreadPool::global();
  long PrevSteps = 0;

  while (Res.StepsRun < Opt.TrainSteps) {
    // 1. Extract + serialize every actor's state into its own lane session
    // (disjoint stores; parallel).
    TPool.parallelFor(0, static_cast<size_t>(K), 1, [&](size_t B, size_t E) {
      for (size_t A = B; A != E; ++A)
        ExtIds[A] = extractStateLane(VE.env(static_cast<int>(A)),
                                     Pool.lane(static_cast<int>(A)), Opt, H);
    });

    // 2. One fused au_NN for the whole fleet: observe the completed
    // transitions, advance the training schedule, select K actions with a
    // single batched forward.
    Eng.nnRlSessions(H.Model, Pool.Ptrs.data(), ExtIds.data(), Rewards.data(),
                     Terms.data(), K, H.Output, /*Learning=*/true);

    // 3. Write back and step every live actor (disjoint envs; parallel).
    // Actors whose episode just ended skip the step — their au_NN above
    // carried the terminal signal, mirroring trainRl's `continue`.
    for (int A = 0; A < K; ++A)
      Stepping[static_cast<size_t>(A)] = Terms[static_cast<size_t>(A)] ? 0 : 1;
    TPool.parallelFor(0, static_cast<size_t>(K), 1, [&](size_t B, size_t E) {
      for (size_t A = B; A != E; ++A) {
        if (!Stepping[A])
          continue;
        GameEnv &Env = VE.env(static_cast<int>(A));
        int Action = 0;
        Pool.lane(static_cast<int>(A))
            .writeBack(H.Output.Name, Env.numActions(), &Action);
        StepRewards[A] = Env.step(Action);
        NewTerms[A] = Env.terminal() ? 1 : 0;
      }
    });

    // 4. Serial episode bookkeeping in fixed actor order.
    for (int A = 0; A < K; ++A) {
      size_t AI = static_cast<size_t>(A);
      if (!Stepping[AI]) {
        ++Res.Episodes;
        EpSteps[AI] = 0;
        Rewards[AI] = 0.0f;
        Terms[AI] = 0;
        VE.reset(A, makeSeed(Opt.Seed, NextJitter++));
        continue;
      }
      Rewards[AI] = StepRewards[AI];
      Terms[AI] = NewTerms[AI];
      ++Res.StepsRun;
      if (++EpSteps[AI] >= Opt.MaxEpisodeSteps)
        Terms[AI] = 1; // Truncate over-long episodes.
    }

    // Periodic greedy evaluation, once per EvalEvery boundary crossed (a
    // tick advances up to K steps at once).
    if (Opt.EvalEvery > 0 &&
        Res.StepsRun / Opt.EvalEvery > PrevSteps / Opt.EvalEvery) {
      RlEvalResult E = evalRlBatched(Factory, Eng, Main, Opt,
                                     Opt.EvalEpisodes);
      Res.Curve.push_back({Res.StepsRun, E.MeanProgress, E.SuccessRate});
    }
    PrevSteps = Res.StepsRun;
  }

  Res.TrainSeconds = TrainTimer.seconds();
  Pool.foldInto(Main);
  Res.TraceBytes = Main.stats().traceBytes() - TraceStart;
  Res.ModelBytes = M->modelSizeBytes();
  Res.NumParams = M->numParams();
  return Res;
}

RlTrainResult au::apps::trainRlParallel(const GameEnvFactory &Factory,
                                        Runtime &RT,
                                        const RlTrainOptions &Opt,
                                        int NumActors) {
  return trainRlParallel(Factory, RT.engine(), RT.session(), Opt, NumActors);
}

RlEvalResult au::apps::evalRlBatched(const GameEnvFactory &Factory,
                                     Engine &Eng, Session &Main,
                                     const RlTrainOptions &Opt,
                                     int Episodes) {
  assert(Episodes > 0 && "evaluation needs at least one episode");
  VectorEnv VE(Factory, Episodes, Opt.Seed ^ 0xe7a1u);
  RlHandles H = makeHandles(VE.env(0), Main, Opt);
  assert(Main.getModel(H.Model) && "evaluating an unconfigured model");

  // One deployment-mode lane session per episode; learning is off at the
  // engine batcher, so training chains are never disturbed regardless of
  // Main's mode.
  SessionPool Pool(Eng, Mode::TS, Episodes);

  // Same per-episode seeds as the serial evalRl.
  VE.resetAll([&](int Ep) {
    return makeSeed(Opt.Seed, 100 + static_cast<uint64_t>(Ep));
  });
  if (Opt.Variant == RlVariant::All)
    resolveFeatureIdx(VE.env(0), Opt, H);

  RlEvalResult Res;
  ThreadPool &TPool = ThreadPool::global();
  Timer T;
  long Steps = 0;

  // Live lanes run in lockstep; lane i of a tick uses lane session i, so
  // the session mapping is a pure function of which episodes are still
  // running. Finished lanes retire in fixed episode order.
  std::vector<int> Live;
  std::vector<int> EpSteps(static_cast<size_t>(Episodes), 0);
  for (int Ep = 0; Ep < Episodes; ++Ep) {
    if (VE.env(Ep).terminal()) {
      Res.MeanProgress += VE.env(Ep).progress();
      Res.SuccessRate += VE.env(Ep).success() ? 1.0 : 0.0;
    } else {
      Live.push_back(Ep);
    }
  }

  std::vector<NameId> ExtIds;
  std::vector<float> ZeroRewards;
  std::vector<uint8_t> NoTerms;
  while (!Live.empty()) {
    int M = static_cast<int>(Live.size());
    ExtIds.assign(static_cast<size_t>(M), InvalidNameId);
    TPool.parallelFor(0, static_cast<size_t>(M), 1, [&](size_t B, size_t E) {
      for (size_t I = B; I != E; ++I)
        ExtIds[I] = extractStateLane(VE.env(Live[I]),
                                     Pool.lane(static_cast<int>(I)), Opt, H);
    });
    ZeroRewards.assign(static_cast<size_t>(M), 0.0f);
    NoTerms.assign(static_cast<size_t>(M), 0);
    Eng.nnRlSessions(H.Model, Pool.Ptrs.data(), ExtIds.data(),
                     ZeroRewards.data(), NoTerms.data(), M, H.Output,
                     /*Learning=*/false);
    TPool.parallelFor(0, static_cast<size_t>(M), 1, [&](size_t B, size_t E) {
      for (size_t I = B; I != E; ++I) {
        GameEnv &Env = VE.env(Live[I]);
        int Action = 0;
        Pool.lane(static_cast<int>(I))
            .writeBack(H.Output.Name, Env.numActions(), &Action);
        Env.step(Action);
      }
    });
    Steps += M;

    std::vector<int> Next;
    Next.reserve(Live.size());
    for (int I = 0; I < M; ++I) {
      int Ep = Live[static_cast<size_t>(I)];
      ++EpSteps[static_cast<size_t>(Ep)];
      if (VE.env(Ep).terminal() ||
          EpSteps[static_cast<size_t>(Ep)] >= Opt.MaxEpisodeSteps) {
        Res.MeanProgress += VE.env(Ep).progress();
        Res.SuccessRate += VE.env(Ep).success() ? 1.0 : 0.0;
      } else {
        Next.push_back(Ep);
      }
    }
    Live.swap(Next);
  }

  Res.MeanProgress /= Episodes;
  Res.SuccessRate /= Episodes;
  Res.MeanStepSeconds =
      Steps > 0 ? T.seconds() / static_cast<double>(Steps) : 0;
  Pool.foldInto(Main);
  return Res;
}

RlEvalResult au::apps::evalRlBatched(const GameEnvFactory &Factory,
                                     Runtime &RT, const RlTrainOptions &Opt,
                                     int Episodes) {
  return evalRlBatched(Factory, RT.engine(), RT.session(), Opt, Episodes);
}

RlEvalResult au::apps::evalRl(GameEnv &Env, Session &S,
                              const RlTrainOptions &Opt, int Episodes) {
  assert(Episodes > 0 && "evaluation needs at least one episode");
  RlHandles H = makeHandles(Env, S, Opt);
  assert(S.getModel(H.Model) && "evaluating an unconfigured model");

  // Evaluation must not disturb training: stash the env state and switch
  // the session to deployment mode for the duration.
  std::vector<uint8_t> Saved;
  Env.saveState(Saved);
  Mode PrevMode = S.mode();
  S.switchMode(Mode::TS);

  RlEvalResult Res;
  double StepTime = 0.0;
  long Steps = 0;
  for (int Ep = 0; Ep < Episodes; ++Ep) {
    Env.reset(makeSeed(Opt.Seed, 100 + static_cast<uint64_t>(Ep)));
    int EpSteps = 0;
    while (!Env.terminal() && EpSteps < Opt.MaxEpisodeSteps) {
      Timer T;
      NameId ExtId = extractState(Env, S, Opt, H);
      S.nn(H.Model, ExtId, 0.0f, false, H.Output);
      int Action = 0;
      S.writeBack(H.Output.Name, Env.numActions(), &Action);
      Env.step(Action);
      StepTime += T.seconds();
      ++Steps;
      ++EpSteps;
    }
    Res.MeanProgress += Env.progress();
    Res.SuccessRate += Env.success() ? 1.0 : 0.0;
  }
  Res.MeanProgress /= Episodes;
  Res.SuccessRate /= Episodes;
  Res.MeanStepSeconds = Steps > 0 ? StepTime / static_cast<double>(Steps) : 0;

  S.switchMode(PrevMode);
  Env.loadState(Saved);
  return Res;
}

RlEvalResult au::apps::evalRl(GameEnv &Env, Runtime &RT,
                              const RlTrainOptions &Opt, int Episodes) {
  return evalRl(Env, RT.session(), Opt, Episodes);
}

/// Shared scripted-policy evaluation loop.
static RlEvalResult evalScripted(GameEnv &Env, const RlTrainOptions &Opt,
                                 int Episodes, bool Random) {
  RlEvalResult Res;
  Rng R(Opt.Seed * 77 + 5);
  double StepTime = 0.0;
  long Steps = 0;
  for (int Ep = 0; Ep < Episodes; ++Ep) {
    Env.reset(makeSeed(Opt.Seed, 100 + static_cast<uint64_t>(Ep)));
    int EpSteps = 0;
    while (!Env.terminal() && EpSteps < Opt.MaxEpisodeSteps) {
      Timer T;
      int Action = Random ? static_cast<int>(R.uniformInt(Env.numActions()))
                          : Env.heuristicAction(R);
      Env.step(Action);
      StepTime += T.seconds();
      ++Steps;
      ++EpSteps;
    }
    Res.MeanProgress += Env.progress();
    Res.SuccessRate += Env.success() ? 1.0 : 0.0;
  }
  Res.MeanProgress /= Episodes;
  Res.SuccessRate /= Episodes;
  Res.MeanStepSeconds = Steps > 0 ? StepTime / static_cast<double>(Steps) : 0;
  return Res;
}

RlEvalResult au::apps::evalHeuristic(GameEnv &Env, const RlTrainOptions &Opt,
                                     int Episodes) {
  return evalScripted(Env, Opt, Episodes, /*Random=*/false);
}

RlEvalResult au::apps::evalRandom(GameEnv &Env, const RlTrainOptions &Opt,
                                  int Episodes) {
  return evalScripted(Env, Opt, Episodes, /*Random=*/true);
}

double au::apps::baselineStepSeconds(GameEnv &Env, const RlTrainOptions &Opt,
                                     int Episodes) {
  RlEvalResult R = evalScripted(Env, Opt, Episodes, /*Random=*/false);
  return R.MeanStepSeconds;
}
