//===- apps/common/RlHarness.cpp - Autonomization harness for RL ---------===//

#include "apps/common/RlHarness.h"

#include "support/Timer.h"

#include <cassert>

using namespace au;
using namespace au::apps;

/// Level seeds carry the layout in the high bits and a per-episode jitter
/// in the low byte (see GameEnv).
static uint64_t makeSeed(uint64_t LevelSeed, uint64_t Episode) {
  return (LevelSeed << 8) | (Episode & 0xff);
}

std::string au::apps::rlModelName(const GameEnv &Env, RlVariant V) {
  return std::string(Env.name()) + (V == RlVariant::All ? "_all" : "_raw");
}

std::vector<std::string>
au::apps::selectRlFeatures(GameEnv &Env, double Epsilon1, double Epsilon2,
                           int ProfileSteps,
                           analysis::RlExtractionStats *Stats) {
  analysis::Tracer T;
  Env.profile(T, ProfileSteps);
  std::vector<std::string> Selected = analysis::extractRlFeaturesCombined(
      T, Env.targetVariables(), Epsilon1, Epsilon2, Stats);
  // Keep only variables the program can hand to au_extract every frame.
  Env.reset(0);
  std::vector<Feature> Live = Env.features();
  std::vector<std::string> Usable;
  for (const std::string &Name : Selected) {
    bool Found = false;
    for (const Feature &F : Live)
      Found = Found || F.first == Name;
    if (Found)
      Usable.push_back(Name);
  }
  assert(!Usable.empty() && "feature selection produced nothing extractable");
  return Usable;
}

/// Runs the au_extract / au_serialize prologue of one loop iteration and
/// returns the combined extraction name to feed au_NN.
static std::string extractState(GameEnv &Env, Runtime &RT,
                                const RlTrainOptions &Opt) {
  if (Opt.Variant == RlVariant::Raw) {
    Image Frame = Env.renderFrame(Opt.FrameSide);
    RT.extract("IMG", Frame.size(), Frame.data().data());
    return "IMG";
  }
  std::vector<Feature> Fs = Env.features();
  for (const std::string &Name : Opt.FeatureNames)
    RT.extract(Name, featureValue(Fs, Name));
  return RT.serialize(Opt.FeatureNames);
}

/// Configures (or finds) the model for this env/variant pair.
static Model *configureModel(GameEnv &Env, Runtime &RT,
                             const RlTrainOptions &Opt) {
  ModelConfig C;
  C.Name = rlModelName(Env, Opt.Variant);
  C.Type = Opt.Variant == RlVariant::Raw ? ModelType::CNN : ModelType::DNN;
  C.Algo = Algorithm::QLearn;
  C.HiddenLayers = Opt.Hidden;
  C.FrameSide = Opt.FrameSide;
  C.FrameChannels = 1;
  C.Seed = Opt.Seed + (Opt.Variant == RlVariant::Raw ? 1000 : 0);
  Model *M = RT.config(C);
  if (!M->isBuilt())
    static_cast<RlModel *>(M)->setQConfig(Opt.QCfg);
  return M;
}

RlTrainResult au::apps::trainRl(GameEnv &Env, Runtime &RT,
                                const RlTrainOptions &Opt) {
  assert(RT.mode() == Mode::TR && "training requires TR mode");
  RlTrainResult Res;
  Res.ModelName = rlModelName(Env, Opt.Variant);
  Model *M = configureModel(Env, RT, Opt);
  WriteBackSpec Output{"output", Env.numActions()};

  RT.checkpoints().registerObject(&Env);
  Env.reset(makeSeed(Opt.Seed, 0));
  {
    Timer T;
    RT.checkpoint();
    Res.CheckpointSeconds = T.seconds();
  }

  size_t TraceStart = RT.stats().traceBytes();
  double RestoreTotal = 0.0;
  long Restores = 0;

  Timer TrainTimer;
  float Reward = 0.0f;
  bool Term = false;
  int EpisodeSteps = 0;

  while (Res.StepsRun < Opt.TrainSteps) {
    std::string ExtName = extractState(Env, RT, Opt);
    RT.nn(Res.ModelName, ExtName, Reward, Term, Output);
    int Action = 0;
    RT.writeBack("output", Env.numActions(), &Action);

    if (Term) {
      ++Res.Episodes;
      EpisodeSteps = 0;
      Reward = 0.0f;
      Term = false;
      if (Res.Episodes % 8 == 0) {
        // Periodically start from a fresh jittered episode (and re-arm the
        // checkpoint) so learning sees level variation.
        Env.reset(makeSeed(Opt.Seed, Res.Episodes));
        RT.checkpoint();
      } else {
        Timer T;
        RT.restore();
        RestoreTotal += T.seconds();
        ++Restores;
      }
      continue;
    }

    Reward = Env.step(Action);
    Term = Env.terminal();
    ++Res.StepsRun;
    if (++EpisodeSteps >= Opt.MaxEpisodeSteps)
      Term = true; // Truncate over-long episodes.

    if (Opt.EvalEvery > 0 && Res.StepsRun % Opt.EvalEvery == 0) {
      RlEvalResult E = evalRl(Env, RT, Opt, Opt.EvalEpisodes);
      Res.Curve.push_back({Res.StepsRun, E.MeanProgress, E.SuccessRate});
    }
  }

  Res.TrainSeconds = TrainTimer.seconds();
  Res.TraceBytes = RT.stats().traceBytes() - TraceStart;
  Res.ModelBytes = M->modelSizeBytes();
  Res.NumParams = M->numParams();
  if (Restores > 0)
    Res.RestoreSeconds = RestoreTotal / static_cast<double>(Restores);
  return Res;
}

RlEvalResult au::apps::evalRl(GameEnv &Env, Runtime &RT,
                              const RlTrainOptions &Opt, int Episodes) {
  assert(Episodes > 0 && "evaluation needs at least one episode");
  std::string ModelName = rlModelName(Env, Opt.Variant);
  assert(RT.getModel(ModelName) && "evaluating an unconfigured model");
  WriteBackSpec Output{"output", Env.numActions()};

  // Evaluation must not disturb training: stash the env state and switch
  // the runtime to deployment mode for the duration.
  std::vector<uint8_t> Saved;
  Env.saveState(Saved);
  Mode PrevMode = RT.mode();
  RT.switchMode(Mode::TS);

  RlEvalResult Res;
  double StepTime = 0.0;
  long Steps = 0;
  for (int Ep = 0; Ep < Episodes; ++Ep) {
    Env.reset(makeSeed(Opt.Seed, 100 + static_cast<uint64_t>(Ep)));
    int EpSteps = 0;
    while (!Env.terminal() && EpSteps < Opt.MaxEpisodeSteps) {
      Timer T;
      std::string ExtName = extractState(Env, RT, Opt);
      RT.nn(ModelName, ExtName, 0.0f, false, Output);
      int Action = 0;
      RT.writeBack("output", Env.numActions(), &Action);
      Env.step(Action);
      StepTime += T.seconds();
      ++Steps;
      ++EpSteps;
    }
    Res.MeanProgress += Env.progress();
    Res.SuccessRate += Env.success() ? 1.0 : 0.0;
  }
  Res.MeanProgress /= Episodes;
  Res.SuccessRate /= Episodes;
  Res.MeanStepSeconds = Steps > 0 ? StepTime / static_cast<double>(Steps) : 0;

  RT.switchMode(PrevMode);
  Env.loadState(Saved);
  return Res;
}

/// Shared scripted-policy evaluation loop.
static RlEvalResult evalScripted(GameEnv &Env, const RlTrainOptions &Opt,
                                 int Episodes, bool Random) {
  RlEvalResult Res;
  Rng R(Opt.Seed * 77 + 5);
  double StepTime = 0.0;
  long Steps = 0;
  for (int Ep = 0; Ep < Episodes; ++Ep) {
    Env.reset(makeSeed(Opt.Seed, 100 + static_cast<uint64_t>(Ep)));
    int EpSteps = 0;
    while (!Env.terminal() && EpSteps < Opt.MaxEpisodeSteps) {
      Timer T;
      int Action = Random ? static_cast<int>(R.uniformInt(Env.numActions()))
                          : Env.heuristicAction(R);
      Env.step(Action);
      StepTime += T.seconds();
      ++Steps;
      ++EpSteps;
    }
    Res.MeanProgress += Env.progress();
    Res.SuccessRate += Env.success() ? 1.0 : 0.0;
  }
  Res.MeanProgress /= Episodes;
  Res.SuccessRate /= Episodes;
  Res.MeanStepSeconds = Steps > 0 ? StepTime / static_cast<double>(Steps) : 0;
  return Res;
}

RlEvalResult au::apps::evalHeuristic(GameEnv &Env, const RlTrainOptions &Opt,
                                     int Episodes) {
  return evalScripted(Env, Opt, Episodes, /*Random=*/false);
}

RlEvalResult au::apps::evalRandom(GameEnv &Env, const RlTrainOptions &Opt,
                                  int Episodes) {
  return evalScripted(Env, Opt, Episodes, /*Random=*/true);
}

double au::apps::baselineStepSeconds(GameEnv &Env, const RlTrainOptions &Opt,
                                     int Episodes) {
  RlEvalResult R = evalScripted(Env, Opt, Episodes, /*Random=*/false);
  return R.MeanStepSeconds;
}
