//===- apps/common/GameEnv.h - Interactive-program interface ---*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The common surface of the five interactive benchmark programs
/// (Flappybird, Mario, Arkanoid, TORCS, Breakout). Each is a small,
/// deterministic reimplementation of the paper's benchmark family exposing:
///
///  * the game-loop contract (reset / step / terminal / progress),
///  * its *program variables* (the internal state Algorithm 2 mines and the
///    All models consume),
///  * a pixel renderer (the input of the Raw / DeepMind-style baselines),
///  * a scripted near-optimal player standing in for the paper's
///    10-human-player reference,
///  * Checkpointable state so au_checkpoint / au_restore can roll the game
///    back without restarting, exactly as the Mario example in Section 2,
///  * a profiling hook that records dynamic dependence information and
///    value traces into a Tracer (the Valgrind substitute).
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_COMMON_GAMEENV_H
#define AU_APPS_COMMON_GAMEENV_H

#include "analysis/Tracer.h"
#include "core/Checkpoint.h"
#include "support/Image.h"
#include "support/Rng.h"

#include <string>
#include <utility>
#include <vector>

namespace au {
namespace apps {

/// A named program variable exposed to the runtime.
using Feature = std::pair<std::string, float>;

/// Base class for the interactive benchmark programs.
class GameEnv : public Checkpointable {
public:
  ~GameEnv() override;

  /// Short program name ("mario", "torcs", ...).
  virtual const char *name() const = 0;

  /// Starts a fresh episode; \p Seed fixes the level layout.
  virtual void reset(uint64_t Seed) = 0;

  /// Number of discrete actions.
  virtual int numActions() const = 0;

  /// Advances one game-loop iteration; returns the reward.
  virtual float step(int Action) = 0;

  /// True once the episode reached an ending state.
  virtual bool terminal() const = 0;

  /// True when the episode ended in success (flag reached, course
  /// finished, all bricks cleared...).
  virtual bool success() const = 0;

  /// Episode progress in [0, 1] (the per-game score of Table 3).
  virtual double progress() const = 0;

  /// A near-optimal scripted action — the "human players" reference.
  virtual int heuristicAction(Rng &R) const = 0;

  /// Current values of the program variables (names are stable across
  /// steps and match what profile() records).
  virtual std::vector<Feature> features() const = 0;

  /// Renders the current frame as a Side x Side grayscale image.
  virtual Image renderFrame(int Side) const = 0;

  /// Plays a short scripted run, recording the dynamic dependence graph,
  /// use functions and value traces of the program variables into \p T.
  virtual void profile(analysis::Tracer &T, int Steps) = 0;

  /// Target-variable names for Algorithm 2 (the action-selection
  /// variables the user annotates).
  virtual std::vector<std::string> targetVariables() const = 0;
};

/// Looks up \p Name in \p Fs; asserts when missing.
float featureValue(const std::vector<Feature> &Fs, const std::string &Name);

/// Extracts the subset of \p Fs named by \p Names, in that order.
std::vector<float> selectFeatures(const std::vector<Feature> &Fs,
                                  const std::vector<std::string> &Names);

} // namespace apps
} // namespace au

#endif // AU_APPS_COMMON_GAMEENV_H
