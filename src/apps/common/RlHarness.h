//===- apps/common/RlHarness.h - Autonomization harness for RL -*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Drives an interactive benchmark program through the Autonomizer
/// primitives, reproducing the paper's RL training and deployment regime:
///
///   reset -> au_checkpoint once ->
///   loop { au_extract*(state) ; au_serialize ; au_NN(reward, term) ;
///          au_write_back(action) ; act ; if (term) au_restore }
///
/// Two variants mirror the paper's comparison: All feeds the program
/// variables selected by Algorithm 2 into a DNN; Raw feeds rendered frames
/// into the DeepMind-style CNN. The harness measures training time, trace
/// and model sizes (Table 2), periodic evaluation scores (Table 3, Fig. 17)
/// and checkpoint/restore latency.
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_COMMON_RLHARNESS_H
#define AU_APPS_COMMON_RLHARNESS_H

#include "analysis/FeatureExtraction.h"
#include "apps/common/GameEnv.h"
#include "apps/common/VectorEnv.h"
#include "core/Engine.h"
#include "core/Runtime.h"
#include "nn/QLearner.h"

#include <string>
#include <vector>

namespace au {
namespace apps {

/// Which feature source the model consumes.
enum class RlVariant {
  All, ///< Program variables selected by Algorithm 2 (DNN).
  Raw  ///< Rendered pixel frames (DeepMind-style CNN).
};

/// One point of a learning curve.
struct CurvePoint {
  long Steps = 0;
  double Progress = 0.0;
  double SuccessRate = 0.0;
};

/// Training options.
struct RlTrainOptions {
  RlVariant Variant = RlVariant::All;
  /// Feature-variable names for the All variant (from Algorithm 2).
  std::vector<std::string> FeatureNames;
  /// Frame side length for the Raw variant.
  int FrameSide = 20;
  /// Total environment steps of training budget.
  long TrainSteps = 20000;
  /// Episode step cap (truncated episodes count as failures).
  int MaxEpisodeSteps = 400;
  /// Level seed (layout); per-episode jitter varies within it.
  uint64_t Seed = 7;
  /// Hidden layer widths.
  std::vector<int> Hidden = {32, 32};
  /// Q-learning hyperparameters.
  nn::QConfig QCfg;
  /// Evaluate greedily every this many steps (0 = never) for the curve.
  long EvalEvery = 0;
  int EvalEpisodes = 10;
};

/// Training outcome and cost accounting.
struct RlTrainResult {
  std::string ModelName;
  double TrainSeconds = 0.0;
  long StepsRun = 0;
  long Episodes = 0;
  size_t TraceBytes = 0;  ///< Floats extracted during training (Table 2).
  size_t ModelBytes = 0;  ///< Serialized model size (Table 2).
  size_t NumParams = 0;
  double CheckpointSeconds = 0.0; ///< Mean au_checkpoint latency.
  double RestoreSeconds = 0.0;    ///< Mean au_restore latency.
  std::vector<CurvePoint> Curve;  ///< Periodic greedy evaluations.
};

/// Evaluation outcome.
struct RlEvalResult {
  double MeanProgress = 0.0;
  double SuccessRate = 0.0;
  double MeanStepSeconds = 0.0; ///< Per-iteration wall time (Table 3 Exec).
};

/// The model name the harness registers for (env, variant).
std::string rlModelName(const GameEnv &Env, RlVariant V);

/// Runs the full feature-selection pipeline for \p Env: a scripted profile
/// run, Algorithm 2 over its targets, then restriction to the variables the
/// program exposes at runtime (the paper extracts arbitrary program
/// variables via instrumentation; our environments surface a fixed set).
/// \p Stats, when non-null, receives the pruning diagnostics.
std::vector<std::string>
selectRlFeatures(GameEnv &Env, double Epsilon1 = 1e-6,
                 double Epsilon2 = 1e-4, int ProfileSteps = 200,
                 analysis::RlExtractionStats *Stats = nullptr);

/// Trains an agent on \p Env through the primitives of \p S (the native
/// Engine/Session API; DESIGN.md §10). The session must be in TR mode.
RlTrainResult trainRl(GameEnv &Env, Session &S, const RlTrainOptions &Opt);

/// Facade adapter: drives \p RT's main session.
RlTrainResult trainRl(GameEnv &Env, Runtime &RT, const RlTrainOptions &Opt);

/// Parallel-rollout training (DESIGN.md §8): \p NumActors environments from
/// \p Factory run in lockstep ticks. Each actor is its own Session over
/// \p Eng; per tick, feature extraction and env stepping parallelize across
/// actor sessions on the global ThreadPool, the K au_NN calls fuse into one
/// batched model step (Engine::nnRlSessions), transitions land in per-actor
/// replay shards, and the training schedule advances once per tick. The
/// actors' primitive counters fold into \p Main's stats, whose traceBytes()
/// delta becomes the result's TraceBytes. Results are bitwise identical at
/// any AU_NN_THREADS setting.
///
/// Two deliberate departures from trainRl's schedule (documented in
/// DESIGN.md §8): episodes restart with fresh jittered seeds instead of
/// checkpoint/restore rollback, and callers typically set
/// Opt.QCfg.TrainInterval = NumActors so one minibatch runs per tick — the
/// standard vectorized-DQN schedule (same 1-trainStep-per-interval cadence
/// as the serial TrainInterval=1 loop, K env steps per tick).
RlTrainResult trainRlParallel(const GameEnvFactory &Factory, Engine &Eng,
                              Session &Main, const RlTrainOptions &Opt,
                              int NumActors);

/// Facade adapter: drives \p RT's engine and main session.
RlTrainResult trainRlParallel(const GameEnvFactory &Factory, Runtime &RT,
                              const RlTrainOptions &Opt, int NumActors);

/// Greedy evaluation over \p Episodes jittered episodes. Leaves the
/// session's mode as it found it. Works on the in-memory trained model.
RlEvalResult evalRl(GameEnv &Env, Session &S, const RlTrainOptions &Opt,
                    int Episodes);

/// Facade adapter: drives \p RT's main session.
RlEvalResult evalRl(GameEnv &Env, Runtime &RT, const RlTrainOptions &Opt,
                    int Episodes);

/// Greedy evaluation with the episodes run concurrently: each episode is
/// one Session lane over \p Eng, action selection for all live lanes fuses
/// into one batched inference per tick (Engine::nnRlSessions with learning
/// off), and env stepping parallelizes across lanes. Uses the same
/// per-episode seeds as evalRl; with one episode the two produce identical
/// scores (a single-row batch is the serial TS path). Lane stats fold into
/// \p Main; \p Main's mode is never touched.
RlEvalResult evalRlBatched(const GameEnvFactory &Factory, Engine &Eng,
                           Session &Main, const RlTrainOptions &Opt,
                           int Episodes);

/// Facade adapter: drives \p RT's engine and main session.
RlEvalResult evalRlBatched(const GameEnvFactory &Factory, Runtime &RT,
                           const RlTrainOptions &Opt, int Episodes);

/// The scripted near-optimal player ("human players" reference).
RlEvalResult evalHeuristic(GameEnv &Env, const RlTrainOptions &Opt,
                           int Episodes);

/// Uniform-random play (the monkey-testing reference of Section 2).
RlEvalResult evalRandom(GameEnv &Env, const RlTrainOptions &Opt,
                        int Episodes);

/// Plain un-autonomized execution time per game-loop iteration, for the
/// overhead ratio of Table 3.
double baselineStepSeconds(GameEnv &Env, const RlTrainOptions &Opt,
                           int Episodes);

} // namespace apps
} // namespace au

#endif // AU_APPS_COMMON_RLHARNESS_H
