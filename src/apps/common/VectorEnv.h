//===- apps/common/VectorEnv.h - Parallel actor pool -----------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fleet of K independent GameEnv instances stepped in parallel on the
/// global ThreadPool — the actor pool of the parallel rollout engine
/// (DESIGN.md §8). Each actor owns its env plus a counter-based RNG stream
/// derived from (seed, actor-id), so anything an actor draws is a pure
/// function of its identity, never of thread schedule: results are bitwise
/// reproducible at any thread count.
///
/// Parallel stepping is safe because actors are fully disjoint: env k's
/// state, reward slot, terminal slot and stream are touched only by the
/// chunk that owns index k (parallelFor chunk boundaries are
/// thread-count-independent, and here the grain is one actor).
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_COMMON_VECTORENV_H
#define AU_APPS_COMMON_VECTORENV_H

#include "apps/common/GameEnv.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace au {
namespace apps {

/// Creates one fresh environment instance (called K times for K actors).
using GameEnvFactory = std::function<std::unique_ptr<GameEnv>()>;

/// K independent environments stepped as one vectorized environment.
class VectorEnv {
public:
  /// Builds \p NumActors instances via \p Factory; per-actor RNG streams
  /// derive from \p Seed and the actor index.
  VectorEnv(const GameEnvFactory &Factory, int NumActors, uint64_t Seed = 7);

  int size() const { return static_cast<int>(Envs.size()); }
  GameEnv &env(int Actor) { return *Envs[static_cast<size_t>(Actor)]; }
  const GameEnv &env(int Actor) const {
    return *Envs[static_cast<size_t>(Actor)];
  }

  /// Actor \p Actor's private RNG stream (scripted policies, jitter).
  Rng &stream(int Actor) { return Streams[static_cast<size_t>(Actor)]; }

  /// Resets actor \p Actor's episode.
  void reset(int Actor, uint64_t EpisodeSeed) {
    env(Actor).reset(EpisodeSeed);
  }

  /// Resets every actor in parallel; actor k gets \p SeedOf(k). SeedOf must
  /// be safe to call concurrently (it is called once per actor).
  void resetAll(const std::function<uint64_t(int)> &SeedOf);

  /// Steps every actor in parallel: actor k takes \p Actions[k] and fills
  /// \p Rewards[k] and \p Terminals[k] (1 = episode ended at the new
  /// state).
  void stepAll(const int *Actions, float *Rewards, uint8_t *Terminals) {
    stepWhere(nullptr, Actions, Rewards, Terminals);
  }

  /// stepAll restricted to actors with \p Active[k] != 0 (null = all).
  /// Inactive actors' reward/terminal slots are left untouched.
  ///
  /// Dispatch: a batch whose estimated serial cost (active actors times an
  /// EWMA of the measured per-step cost) is below a threshold steps inline
  /// on the calling thread instead of paying the ThreadPool handoff —
  /// cheap-env pools with few actors (BM_RlActOnly at 2 actors) lose more
  /// to the queue/wake/join cycle than they gain from concurrency. Actors
  /// are independent, so serial and parallel stepping produce identical
  /// results. Escalation to the pool is sticky with hysteresis so the
  /// dispatcher does not flap around the threshold.
  void stepWhere(const uint8_t *Active, const int *Actions, float *Rewards,
                 uint8_t *Terminals);

private:
  std::vector<std::unique_ptr<GameEnv>> Envs;
  std::vector<Rng> Streams;

  /// EWMA of one actor-step's measured cost in ns, updated while stepping
  /// serially (0 until the first batch, which therefore runs serially and
  /// seeds it).
  double AvgStepNs = 0.0;
  /// Sticky escalation flag: once a batch estimate crosses SerialCutoffNs
  /// the pool is used until the estimate falls below half the cutoff.
  bool Escalated = false;
};

} // namespace apps
} // namespace au

#endif // AU_APPS_COMMON_VECTORENV_H
