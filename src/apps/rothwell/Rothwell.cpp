//===- apps/rothwell/Rothwell.cpp - Rothwell edge detector ---------------===//

#include "apps/rothwell/Rothwell.h"

#include "support/Ssim.h"
#include "support/Statistics.h"
#include "support/Timer.h"

#include <algorithm>
#include <cmath>
#include <deque>

using namespace au;
using namespace au::apps;
using analysis::SlPick;

/// Box-filter mean of the magnitude over a (2R+1)^2 window.
static Image localMean(const Image &Mag, int R) {
  Image Out(Mag.width(), Mag.height(), 0.0f);
  for (int Y = 0; Y < Mag.height(); ++Y)
    for (int X = 0; X < Mag.width(); ++X) {
      double Acc = 0.0;
      int N = 0;
      for (int J = -R; J <= R; ++J)
        for (int I = -R; I <= R; ++I) {
          Acc += Mag.atClamped(X + I, Y + J);
          ++N;
        }
      Out.at(X, Y) = static_cast<float>(Acc / N);
    }
  return Out;
}

/// Drops connected components smaller than MinLen pixels.
static Image pruneShortChains(const Image &Edges, int MinLen) {
  Image Out = Edges;
  Image Seen(Edges.width(), Edges.height(), 0.0f);
  for (int Y = 0; Y < Edges.height(); ++Y)
    for (int X = 0; X < Edges.width(); ++X) {
      if (Out.at(X, Y) < 0.5f || Seen.at(X, Y) > 0.5f)
        continue;
      // Flood-fill the component.
      std::vector<std::pair<int, int>> Component;
      std::deque<std::pair<int, int>> Work{{X, Y}};
      Seen.at(X, Y) = 1.0f;
      while (!Work.empty()) {
        auto [Cx, Cy] = Work.front();
        Work.pop_front();
        Component.emplace_back(Cx, Cy);
        for (int J = -1; J <= 1; ++J)
          for (int I = -1; I <= 1; ++I) {
            int Nx = Cx + I, Ny = Cy + J;
            if (Out.inBounds(Nx, Ny) && Out.at(Nx, Ny) > 0.5f &&
                Seen.at(Nx, Ny) < 0.5f) {
              Seen.at(Nx, Ny) = 1.0f;
              Work.emplace_back(Nx, Ny);
            }
          }
      }
      if (static_cast<int>(Component.size()) < MinLen)
        for (auto [Cx, Cy] : Component)
          Out.at(Cx, Cy) = 0.0f;
    }
  return Out;
}

Image au::apps::rothwellDetect(const Image &In, const RothwellParams &P,
                               RothwellTrace *Trace) {
  Image SImg = gaussianSmooth(In, P.Sigma);
  Image Gx, Gy;
  sobel(SImg, Gx, Gy);
  Image Mag = gradientMagnitude(Gx, Gy);
  Image Mean = localMean(Mag, /*R=*/3);

  // Dynamic thresholding: keep pixels standing out of their neighborhood.
  Image Edges(In.width(), In.height(), 0.0f);
  std::vector<float> Ratios(RothwellHistBins, 0.0f);
  for (int Y = 0; Y < In.height(); ++Y)
    for (int X = 0; X < In.width(); ++X) {
      float M = Mag.at(X, Y);
      float L = std::max(Mean.at(X, Y), 1e-4f);
      float Ratio = M / L;
      int Bin = std::min(RothwellHistBins - 1,
                         static_cast<int>(Ratio / 4.0f * RothwellHistBins));
      Ratios[Bin] += 1.0f;
      if (Ratio > P.Alpha && M > 0.05f)
        Edges.at(X, Y) = 1.0f;
    }
  float N = static_cast<float>(In.size());
  for (float &RV : Ratios)
    RV /= N;

  if (Trace) {
    Trace->Smoothed = SImg;
    Trace->Magnitude = Mag;
    Trace->LocalMean = Mean;
    Trace->Ratios = Ratios;
  }
  return pruneShortChains(Edges, static_cast<int>(P.MinLen));
}

RothwellParams au::apps::autotuneRothwell(const CannyScene &Scene) {
  static const double Sigmas[] = {0.8, 1.4, 2.0};
  static const double Alphas[] = {1.3, 1.7, 2.1, 2.6};
  static const double Lens[] = {3.0, 6.0, 10.0};
  RothwellParams Best;
  double BestScore = -2.0;
  for (double Sg : Sigmas)
    for (double A : Alphas)
      for (double L : Lens) {
        RothwellParams P{Sg, A, L};
        double Score =
            cannyScore(rothwellDetect(Scene.Input, P), Scene.Truth);
        if (Score > BestScore) {
          BestScore = Score;
          Best = P;
        }
      }
  return Best;
}

void au::apps::rothwellProfile(analysis::Tracer &T,
                               std::vector<std::string> &Inputs,
                               std::vector<std::string> &Targets) {
  CannyScene Scene = makeCannyScene(808);
  RothwellTrace Trace;
  RothwellParams P;
  Image Result = rothwellDetect(Scene.Input, P, &Trace);

  T.markInput("image");
  T.recordDefValue("sigma", {}, "rothwell", P.Sigma);
  T.recordDefValue("alpha", {}, "threshold", P.Alpha);
  T.recordDefValue("minLen", {}, "pruneChains", P.MinLen);
  T.recordDef("sImg", {"image", "sigma"}, "smooth");
  T.recordValue("sImg", Trace.Smoothed.at(0, 0));
  T.recordDef("mag", {"sImg"}, "gradient");
  T.recordValue("mag", Trace.Magnitude.at(0, 0));
  T.recordDef("localMean", {"mag"}, "threshold");
  T.recordValue("localMean", Trace.LocalMean.at(0, 0));
  T.recordDef("ratioHist", {"mag", "localMean"}, "threshold");
  T.recordValue("ratioHist", Trace.Ratios.front());
  T.recordDef("edges", {"ratioHist", "alpha"}, "threshold");
  T.recordDef("result", {"edges", "minLen"}, "pruneChains");
  T.recordValue("result", Result.at(0, 0));

  Inputs = {"image"};
  Targets = {"sigma", "alpha", "minLen"};
}

//===----------------------------------------------------------------------===//
// The experiment driver
//===----------------------------------------------------------------------===//

RothwellExperiment::RothwellExperiment(int NumTrain, int NumTest, uint64_t S)
    : Seed(S) {
  for (int I = 0; I < NumTrain; ++I) {
    TrainScenes.push_back(makeCannyScene(Seed + 5000 + I));
    TrainOracle.push_back(autotuneRothwell(TrainScenes.back()));
  }
  for (int I = 0; I < NumTest; ++I)
    TestScenes.push_back(makeCannyScene(Seed + 20000 + I));
  for (auto &RT : Runtimes)
    RT = std::make_unique<Runtime>(Mode::TR);
}

std::vector<float>
RothwellExperiment::paramFeature(const CannyScene &Scene,
                                 const RothwellTrace &Trace, SlPick Pick) {
  switch (Pick) {
  case SlPick::Min:
    return Trace.Ratios;
  case SlPick::Med: {
    Image Small = resize(Trace.Smoothed, CannyFeatureSide, CannyFeatureSide);
    return Small.data();
  }
  case SlPick::Raw: {
    Image Small = resize(Scene.Input, CannyFeatureSide, CannyFeatureSide);
    return Small.data();
  }
  }
  assert(false && "unknown pick");
  return {};
}

Image RothwellExperiment::runAnnotated(Runtime &RT, const CannyScene &Scene,
                                       SlPick Pick,
                                       const RothwellParams &Train) {
  ModelConfig Cfg;
  Cfg.Name = "RothNN";
  Cfg.HiddenLayers = {48, 24};
  Cfg.Seed = Seed + 3;
  RT.config(Cfg);

  RothwellParams P = Train;
  // Fixed-parameter reference pass so extracted features keep the same
  // distribution in training and deployment.
  RothwellTrace Trace;
  rothwellDetect(Scene.Input, RothwellParams(), &Trace);
  std::vector<float> Feat = paramFeature(Scene, Trace, Pick);
  RT.extract("FEAT", Feat.size(), Feat.data());
  RT.nn("RothNN", "FEAT", {{"SIGMA", 1}, {"ALPHA", 1}, {"MINLEN", 1}});
  float SigmaV = static_cast<float>(P.Sigma);
  float AlphaV = static_cast<float>(P.Alpha);
  float LenV = static_cast<float>(P.MinLen);
  RT.writeBack("SIGMA", 1, &SigmaV);
  RT.writeBack("ALPHA", 1, &AlphaV);
  RT.writeBack("MINLEN", 1, &LenV);
  P.Sigma = clamp(SigmaV, 0.6, 2.6);
  P.Alpha = clamp(AlphaV, 1.0, 3.0);
  P.MinLen = clamp(LenV, 1.0, 14.0);

  return rothwellDetect(Scene.Input, P);
}

double RothwellExperiment::train(SlPick Pick, int Epochs) {
  Runtime &RT = *Runtimes[Idx(Pick)];
  assert(RT.mode() == Mode::TR && "training twice on the same version");
  Timer T;
  for (size_t I = 0; I != TrainScenes.size(); ++I)
    runAnnotated(RT, TrainScenes[I], Pick, TrainOracle[I]);
  RT.trainSupervised("RothNN", Epochs, 16);
  double Secs = T.seconds();
  TraceBytesPer[Idx(Pick)] = RT.stats().traceBytes();
  ModelBytesPer[Idx(Pick)] = RT.getModel("RothNN")->modelSizeBytes();
  RT.switchMode(Mode::TS);
  return Secs;
}

double RothwellExperiment::testScore(SlPick Pick) {
  Runtime &RT = *Runtimes[Idx(Pick)];
  assert(RT.mode() == Mode::TS && "test before train");
  std::vector<double> Scores;
  for (const CannyScene &Scene : TestScenes) {
    Image Edges = runAnnotated(RT, Scene, Pick, RothwellParams());
    Scores.push_back(cannyScore(Edges, Scene.Truth));
  }
  return mean(Scores);
}

double RothwellExperiment::baselineScore() {
  std::vector<double> Scores;
  for (const CannyScene &Scene : TestScenes)
    Scores.push_back(cannyScore(rothwellDetect(Scene.Input, RothwellParams()),
                                Scene.Truth));
  return mean(Scores);
}

double RothwellExperiment::autonomizedExecSeconds(SlPick Pick) {
  Runtime &RT = *Runtimes[Idx(Pick)];
  Timer T;
  for (const CannyScene &Scene : TestScenes)
    runAnnotated(RT, Scene, Pick, RothwellParams());
  return T.seconds() / static_cast<double>(TestScenes.size());
}

double RothwellExperiment::baselineExecSeconds() {
  Timer T;
  for (const CannyScene &Scene : TestScenes)
    rothwellDetect(Scene.Input, RothwellParams());
  return T.seconds() / static_cast<double>(TestScenes.size());
}

size_t RothwellExperiment::traceBytes(SlPick Pick) const {
  return TraceBytesPer[static_cast<int>(Pick)];
}

size_t RothwellExperiment::modelBytes(SlPick Pick) const {
  return ModelBytesPer[static_cast<int>(Pick)];
}
