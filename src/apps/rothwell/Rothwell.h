//===- apps/rothwell/Rothwell.h - Rothwell edge detector -------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature of the Rothwell et al. topology-driven edge detector, the
/// paper's second supervised benchmark. Unlike Canny's global hysteresis it
/// thresholds *dynamically*: each pixel is kept when its gradient magnitude
/// exceeds Alpha times the local mean magnitude, and the surviving chains
/// are filtered by a minimum component length — giving three annotated
/// parameters (Sigma, Alpha, MinLen), matching Table 1's three target
/// variables.
///
/// Scenes and scoring are shared with the Canny benchmark (both papers'
/// programs consume the same edge datasets).
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_ROTHWELL_ROTHWELL_H
#define AU_APPS_ROTHWELL_ROTHWELL_H

#include "analysis/FeatureExtraction.h"
#include "apps/canny/Canny.h"
#include "core/Runtime.h"

namespace au {
namespace apps {

/// The three annotated parameters.
struct RothwellParams {
  double Sigma = 1.2;  ///< Gaussian smoothing width.
  double Alpha = 1.8;  ///< Dynamic threshold factor over the local mean.
  double MinLen = 6.0; ///< Minimum surviving chain length (pixels).
};

/// Intermediates surfaced for feature extraction.
struct RothwellTrace {
  Image Smoothed;
  Image Magnitude;
  Image LocalMean;           ///< Window-averaged magnitude.
  std::vector<float> Ratios; ///< 16-bin histogram of mag / localMean.
};

inline constexpr int RothwellHistBins = 16;

/// Runs the detector; returns a binary edge map.
Image rothwellDetect(const Image &In, const RothwellParams &P,
                     RothwellTrace *Trace = nullptr);

/// Grid-search autotuning oracle.
RothwellParams autotuneRothwell(const CannyScene &Scene);

/// Records the dependence structure of one run (for Table 1 / Alg. 1).
void rothwellProfile(analysis::Tracer &T, std::vector<std::string> &Inputs,
                     std::vector<std::string> &Targets);

/// The Raw / Med / Min comparison experiment (same shape as Canny's).
class RothwellExperiment {
public:
  RothwellExperiment(int NumTrain, int NumTest, uint64_t Seed);

  double train(analysis::SlPick Pick, int Epochs);
  double testScore(analysis::SlPick Pick);
  double baselineScore();
  double autonomizedExecSeconds(analysis::SlPick Pick);
  double baselineExecSeconds();
  size_t traceBytes(analysis::SlPick Pick) const;
  size_t modelBytes(analysis::SlPick Pick) const;

private:
  Image runAnnotated(Runtime &RT, const CannyScene &Scene,
                     analysis::SlPick Pick, const RothwellParams &Train);
  static std::vector<float> paramFeature(const CannyScene &Scene,
                                         const RothwellTrace &Trace,
                                         analysis::SlPick Pick);
  int Idx(analysis::SlPick Pick) const { return static_cast<int>(Pick); }

  std::vector<CannyScene> TrainScenes;
  std::vector<RothwellParams> TrainOracle;
  std::vector<CannyScene> TestScenes;
  uint64_t Seed;
  std::vector<std::unique_ptr<Runtime>> Runtimes{3};
  size_t TraceBytesPer[3] = {0, 0, 0};
  size_t ModelBytesPer[3] = {0, 0, 0};
};

} // namespace apps
} // namespace au

#endif // AU_APPS_ROTHWELL_ROTHWELL_H
