//===- apps/breakout/Breakout.h - Breakout benchmark program ---*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A miniature of the Atari Breakout benchmark (the paper annotates the
/// Stella emulator; we reimplement the game logic). Unlike Arkanoid it has
/// a narrow paddle, brick rows packed at the top of the screen, and a ball
/// that speeds up as bricks fall — the episode ends at the first miss, and
/// the paper's score is the number of bricks hit before missing.
///
//===----------------------------------------------------------------------===//

#ifndef AU_APPS_BREAKOUT_BREAKOUT_H
#define AU_APPS_BREAKOUT_BREAKOUT_H

#include "apps/common/GameEnv.h"

namespace au {
namespace apps {

/// Actions: 0 = left, 1 = stay, 2 = right.
class BreakoutEnv : public GameEnv {
public:
  const char *name() const override { return "breakout"; }
  void reset(uint64_t Seed) override;
  int numActions() const override { return 3; }
  float step(int Action) override;
  bool terminal() const override { return Missed || Hits == NumBricks; }
  bool success() const override { return Hits == NumBricks; }
  double progress() const override {
    return static_cast<double>(Hits) / NumBricks;
  }
  int heuristicAction(Rng &R) const override;
  std::vector<Feature> features() const override;
  Image renderFrame(int Side) const override;
  void profile(analysis::Tracer &T, int Steps) override;
  std::vector<std::string> targetVariables() const override {
    return {"paddleDir", "actionKey"};
  }

  void saveState(std::vector<uint8_t> &Out) const override;
  void loadState(const std::vector<uint8_t> &In) override;

  /// Bricks hit this episode — the paper's Breakout score.
  int bricksHit() const { return Hits; }

  static constexpr double WorldW = 20.0;
  static constexpr double WorldH = 24.0;
  static constexpr double PaddleHalf = 1.6;
  static constexpr int BrickRows = 3;
  static constexpr int BrickCols = 10;
  static constexpr int NumBricks = BrickRows * BrickCols;

private:
  void bounceBricks();

  double PaddleX = WorldW / 2;
  double BallX = WorldW / 2, BallY = 4.0;
  double BallVx = 0.3, BallVy = 0.5;
  double SpeedScale = 1.0;
  int Hits = 0;
  bool Missed = false;
  std::vector<uint8_t> Bricks;
};

} // namespace apps
} // namespace au

#endif // AU_APPS_BREAKOUT_BREAKOUT_H
