//===- apps/breakout/Breakout.cpp - Breakout benchmark program -----------===//

#include "apps/breakout/Breakout.h"

#include "apps/common/ByteIO.h"
#include "support/Statistics.h"

#include <algorithm>
#include <cmath>

using namespace au;
using namespace au::apps;

// Brick band near the top of the screen, world Y in [18, 22).
static constexpr double BrickTop = 22.0;
static constexpr double BrickBottom = 18.0;

void BreakoutEnv::reset(uint64_t Seed) {
  Rng Jitter(Seed);
  Bricks.assign(NumBricks, 1);
  PaddleX = WorldW / 2;
  BallX = WorldW / 2 + Jitter.uniform(-3.0, 3.0);
  BallY = 4.0;
  BallVx = Jitter.chance(0.5) ? 0.3 : -0.3;
  BallVx += Jitter.uniform(-0.05, 0.05);
  BallVy = 0.5;
  SpeedScale = 1.0;
  Hits = 0;
  Missed = false;
}

void BreakoutEnv::bounceBricks() {
  if (BallY < BrickBottom || BallY >= BrickTop)
    return;
  int Row = static_cast<int>((BallY - BrickBottom) / (BrickTop - BrickBottom) *
                             BrickRows);
  int Col = static_cast<int>(BallX / WorldW * BrickCols);
  Row = std::clamp(Row, 0, BrickRows - 1);
  Col = std::clamp(Col, 0, BrickCols - 1);
  uint8_t &B = Bricks[static_cast<size_t>(Row) * BrickCols + Col];
  if (B) {
    B = 0;
    ++Hits;
    BallVy = -BallVy;
    // Atari-style speed-up as the wall is chewed through.
    SpeedScale = std::min(1.6, 1.0 + 0.04 * Hits);
  }
}

float BreakoutEnv::step(int Action) {
  if (terminal())
    return 0.0f;
  if (Action == 0)
    PaddleX = std::max(PaddleHalf, PaddleX - 0.7);
  else if (Action == 2)
    PaddleX = std::min(WorldW - PaddleHalf, PaddleX + 0.7);

  int Before = Hits;
  BallX += BallVx * SpeedScale;
  BallY += BallVy * SpeedScale;

  if (BallX <= 0.0) {
    BallX = -BallX;
    BallVx = -BallVx;
  } else if (BallX >= WorldW) {
    BallX = 2 * WorldW - BallX;
    BallVx = -BallVx;
  }
  if (BallY >= WorldH) {
    BallY = 2 * WorldH - BallY;
    BallVy = -BallVy;
  }

  bounceBricks();

  if (BallY <= 1.0 && BallVy < 0) {
    if (std::abs(BallX - PaddleX) <= PaddleHalf) {
      BallVy = -BallVy;
      BallY = 2.0 - BallY;
      BallVx += 0.3 * (BallX - PaddleX) / PaddleHalf;
      BallVx = clamp(BallVx, -0.65, 0.65);
    } else if (BallY <= 0.0) {
      Missed = true;
      return -10.0f;
    }
  }

  int Gained = Hits - Before;
  if (Hits == NumBricks)
    return 10.0f;
  return Gained > 0 ? 3.0f : 0.01f;
}

int BreakoutEnv::heuristicAction(Rng &R) const {
  (void)R;
  double Diff = BallX - PaddleX;
  if (Diff > 0.35)
    return 2;
  if (Diff < -0.35)
    return 0;
  return 1;
}

std::vector<Feature> BreakoutEnv::features() const {
  return {
      {"ballX", static_cast<float>(BallX / WorldW)},
      {"ballY", static_cast<float>(BallY / WorldH)},
      {"ballVx", static_cast<float>(BallVx)},
      {"ballVy", static_cast<float>(BallVy)},
      {"paddleX", static_cast<float>(PaddleX / WorldW)},
      {"diffX", static_cast<float>((BallX - PaddleX) / WorldW)},
      {"speedScale", static_cast<float>(SpeedScale)},
      {"hitCount", static_cast<float>(Hits) / NumBricks},
      {"ballPosX", static_cast<float>(BallX / WorldW)}, // alias
      {"padX", static_cast<float>(PaddleX / WorldW)},   // alias
      {"paddleHalf", static_cast<float>(PaddleHalf / WorldW)}, // constant
      {"worldW", 1.0f},                                 // constant
      {"lives", 1.0f},                                  // constant
      {"missedFlag", Missed ? 1.0f : 0.0f},
      {"brickBand", static_cast<float>(BrickBottom / WorldH)}, // constant
      {"scoreVal", static_cast<float>(Hits) / NumBricks},      // alias
  };
}

Image BreakoutEnv::renderFrame(int Side) const {
  Image Frame(Side, Side, 0.0f);
  auto PxX = [&](double V) {
    return std::clamp(static_cast<int>(V / WorldW * (Side - 1)), 0, Side - 1);
  };
  auto PxY = [&](double V) {
    return std::clamp(Side - 1 - static_cast<int>(V / WorldH * (Side - 1)), 0,
                      Side - 1);
  };
  for (int Row = 0; Row < BrickRows; ++Row)
    for (int Col = 0; Col < BrickCols; ++Col) {
      if (!Bricks[static_cast<size_t>(Row) * BrickCols + Col])
        continue;
      double Wy = BrickBottom +
                  (Row + 0.5) / BrickRows * (BrickTop - BrickBottom);
      double Wx = (Col + 0.5) / BrickCols * WorldW;
      Frame.at(PxX(Wx), PxY(Wy)) = 0.5f;
    }
  Frame.at(PxX(BallX), PxY(BallY)) = 1.0f;
  int Py = Side - 2;
  for (double Dx = -PaddleHalf; Dx <= PaddleHalf; Dx += 0.5)
    Frame.at(PxX(PaddleX + Dx), Py) = 0.8f;
  return Frame;
}

void BreakoutEnv::profile(analysis::Tracer &T, int Steps) {
  reset(/*Seed=*/0x7777 << 8);
  T.markInput("joystick");
  Rng R(31);
  for (int S = 0; S < Steps && !terminal(); ++S) {
    int Action = heuristicAction(R);
    std::vector<Feature> Fs = features();
    T.recordDefValue("paddleDir", {"joystick"}, "handleInput", Action - 1);
    T.recordDefValue("actionKey", {"joystick"}, "handleInput", Action);
    T.recordDefValue("paddleX", {"paddleX", "paddleDir"}, "updatePaddle",
                     featureValue(Fs, "paddleX"));
    T.recordDefValue("padX", {"paddleX"}, "updatePaddle",
                     featureValue(Fs, "padX"));
    T.recordDefValue("ballX", {"ballX", "ballVx", "speedScale"}, "updateBall",
                     featureValue(Fs, "ballX"));
    T.recordDefValue("ballY", {"ballY", "ballVy", "speedScale"}, "updateBall",
                     featureValue(Fs, "ballY"));
    T.recordDefValue("ballPosX", {"ballX"}, "updateBall",
                     featureValue(Fs, "ballPosX"));
    T.recordDefValue("ballVx", {"ballVx", "diffX"}, "updateBall",
                     featureValue(Fs, "ballVx"));
    T.recordDefValue("ballVy", {"ballVy"}, "updateBall",
                     featureValue(Fs, "ballVy"));
    T.recordDefValue("speedScale", {"hitCount"}, "updateBall",
                     featureValue(Fs, "speedScale"));
    T.recordDefValue("diffX", {"ballX", "paddleX"}, "checkPaddle",
                     featureValue(Fs, "diffX"));
    T.recordDefValue("paddleHalf", {}, "checkPaddle",
                     featureValue(Fs, "paddleHalf"));
    T.recordDefValue("worldW", {}, "checkPaddle", 1.0);
    T.recordDefValue("lives", {}, "gameLoop", 1.0);
    T.recordDefValue("missedFlag", {"diffX", "paddleHalf", "ballY"},
                     "checkPaddle", Missed);
    T.recordDefValue("hitCount", {"ballX", "ballY"}, "checkBricks",
                     featureValue(Fs, "hitCount"));
    T.recordDefValue("scoreVal", {"hitCount"}, "checkBricks",
                     featureValue(Fs, "scoreVal"));
    T.recordDefValue("brickBand", {}, "checkBricks",
                     featureValue(Fs, "brickBand"));
    T.recordDef("reward",
                {"missedFlag", "hitCount", "paddleDir", "actionKey"},
                "gameLoop");
    step(Action);
  }
}

void BreakoutEnv::saveState(std::vector<uint8_t> &Out) const {
  Out.clear();
  putPod(Out, PaddleX);
  putPod(Out, BallX);
  putPod(Out, BallY);
  putPod(Out, BallVx);
  putPod(Out, BallVy);
  putPod(Out, SpeedScale);
  putPod(Out, Hits);
  putPod(Out, Missed);
  putVec(Out, Bricks);
}

void BreakoutEnv::loadState(const std::vector<uint8_t> &In) {
  size_t Off = 0;
  getPod(In, Off, PaddleX);
  getPod(In, Off, BallX);
  getPod(In, Off, BallY);
  getPod(In, Off, BallVx);
  getPod(In, Off, BallVy);
  getPod(In, Off, SpeedScale);
  getPod(In, Off, Hits);
  getPod(In, Off, Missed);
  getVec(In, Off, Bricks);
}
