//===- support/Image.h - Grayscale image container and filters -*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A minimal grayscale floating-point image with the filtering operations the
/// SL benchmark applications need (Canny / Rothwell edge detection): Gaussian
/// smoothing, Sobel gradients, bilinear downsampling, and PGM round-tripping
/// for inspection. Pixel values are in [0, 1].
///
//===----------------------------------------------------------------------===//

#ifndef AU_SUPPORT_IMAGE_H
#define AU_SUPPORT_IMAGE_H

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace au {

/// A row-major grayscale image of float pixels in [0, 1].
class Image {
public:
  Image() = default;
  Image(int Width, int Height, float Fill = 0.0f)
      : W(Width), H(Height),
        Pixels(static_cast<size_t>(Width) * Height, Fill) {
    assert(Width >= 0 && Height >= 0 && "negative image dimensions");
  }

  int width() const { return W; }
  int height() const { return H; }
  size_t size() const { return Pixels.size(); }
  bool empty() const { return Pixels.empty(); }

  float &at(int X, int Y) {
    assert(inBounds(X, Y) && "pixel access out of bounds");
    return Pixels[static_cast<size_t>(Y) * W + X];
  }
  float at(int X, int Y) const {
    assert(inBounds(X, Y) && "pixel access out of bounds");
    return Pixels[static_cast<size_t>(Y) * W + X];
  }

  /// Reads a pixel, clamping coordinates to the border (replicate padding).
  float atClamped(int X, int Y) const;

  bool inBounds(int X, int Y) const {
    return X >= 0 && X < W && Y >= 0 && Y < H;
  }

  const std::vector<float> &data() const { return Pixels; }
  std::vector<float> &data() { return Pixels; }

private:
  int W = 0;
  int H = 0;
  std::vector<float> Pixels;
};

/// Convolves with a Gaussian of the given \p Sigma (separable, replicate
/// border). Sigma <= 0 returns the input unchanged.
Image gaussianSmooth(const Image &In, double Sigma);

/// Horizontal and vertical Sobel derivatives.
void sobel(const Image &In, Image &Gx, Image &Gy);

/// Gradient magnitude sqrt(Gx^2 + Gy^2), not normalized.
Image gradientMagnitude(const Image &Gx, const Image &Gy);

/// Bilinear resample to NewW x NewH (used to produce the small "raw pixel"
/// model inputs of the Raw baselines).
Image resize(const Image &In, int NewW, int NewH);

/// Writes an 8-bit binary PGM; returns false on I/O failure.
bool writePgm(const Image &Img, const std::string &Path);

/// Reads an 8-bit binary PGM written by writePgm; returns an empty image on
/// failure.
Image readPgm(const std::string &Path);

} // namespace au

#endif // AU_SUPPORT_IMAGE_H
