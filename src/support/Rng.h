//===- support/Rng.h - Deterministic random number generation --*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small deterministic pseudo-random generator used everywhere in the
/// repository so that experiments and tests are exactly reproducible across
/// runs and machines. The core is SplitMix64, which has excellent statistical
/// quality for non-cryptographic simulation workloads.
///
//===----------------------------------------------------------------------===//

#ifndef AU_SUPPORT_RNG_H
#define AU_SUPPORT_RNG_H

#include <cassert>
#include <cmath>
#include <cstdint>

namespace au {

/// Deterministic SplitMix64-based random number generator.
///
/// SplitMix64 is counter-based: the state only ever advances by a fixed
/// increment, so the i-th output is a pure function of (seed, i). That makes
/// it cheap to derive decorrelated per-actor streams (see stream()) whose
/// sequences depend only on the base seed and the stream id — never on
/// which thread consumed them first.
class Rng {
public:
  explicit Rng(uint64_t Seed = 0x9e3779b97f4a7c15ull) : State(Seed) {}

  /// Derives stream \p StreamId from \p Seed: the id is folded into the
  /// seed and run through the SplitMix64 output permutation, giving each
  /// stream a well-separated starting counter. Used for per-actor
  /// exploration streams in the parallel rollout engine.
  static Rng stream(uint64_t Seed, uint64_t StreamId) {
    uint64_t Z = Seed + 0x9e3779b97f4a7c15ull * (StreamId + 1);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Rng(Z ^ (Z >> 31));
  }

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ull;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  /// Returns a double uniformly distributed in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Returns a double uniformly distributed in [Lo, Hi).
  double uniform(double Lo, double Hi) {
    assert(Lo <= Hi && "empty uniform range");
    return Lo + (Hi - Lo) * uniform();
  }

  /// Returns an integer uniformly distributed in [0, N). \p N must be > 0.
  uint64_t uniformInt(uint64_t N) {
    assert(N > 0 && "uniformInt over empty range");
    return next() % N;
  }

  /// Returns an integer uniformly distributed in [Lo, Hi] inclusive.
  int64_t uniformInt(int64_t Lo, int64_t Hi) {
    assert(Lo <= Hi && "empty integer range");
    return Lo + static_cast<int64_t>(uniformInt(
                    static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns a sample from the standard normal distribution (Box-Muller).
  double normal() {
    // Draw until U1 is nonzero so log() is finite.
    double U1 = uniform();
    while (U1 == 0.0)
      U1 = uniform();
    double U2 = uniform();
    return std::sqrt(-2.0 * std::log(U1)) * std::cos(6.283185307179586 * U2);
  }

  /// Returns a sample from N(Mean, Stddev^2).
  double normal(double Mean, double Stddev) {
    return Mean + Stddev * normal();
  }

  /// Returns true with probability \p P.
  bool chance(double P) { return uniform() < P; }

private:
  uint64_t State;
};

} // namespace au

#endif // AU_SUPPORT_RNG_H
