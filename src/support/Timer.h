//===- support/Timer.h - Wall-clock timing ---------------------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A simple monotonic wall-clock stopwatch used to report training and
/// execution times in the Table 2/3 harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef AU_SUPPORT_TIMER_H
#define AU_SUPPORT_TIMER_H

#include <chrono>

namespace au {

/// A stopwatch started at construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Elapsed seconds since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Elapsed milliseconds.
  double millis() const { return seconds() * 1e3; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace au

#endif // AU_SUPPORT_TIMER_H
