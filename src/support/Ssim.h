//===- support/Ssim.h - Structural similarity image metric -----*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SSIM (Wang et al., 2004) between two grayscale images, the quality score
/// the paper uses for the Canny case study (Section 6.3). Computed with the
/// standard 8x8 sliding window over [0,1]-valued pixels; the result is the
/// mean SSIM over all windows, in [-1, 1] (1 means identical).
///
//===----------------------------------------------------------------------===//

#ifndef AU_SUPPORT_SSIM_H
#define AU_SUPPORT_SSIM_H

#include "support/Image.h"

namespace au {

/// Mean SSIM between \p A and \p B; both must have identical nonzero size.
double ssim(const Image &A, const Image &B);

/// F1 score of a binary edge map against the ground truth, with tolerance
/// \p Radius (a predicted edge within Radius pixels of a true edge counts as
/// a hit). Used as a secondary edge-quality metric.
double edgeF1(const Image &Pred, const Image &Truth, int Radius = 1);

} // namespace au

#endif // AU_SUPPORT_SSIM_H
