//===- support/Statistics.cpp - Numeric helpers over value traces --------===//

#include "support/Statistics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace au;

double au::mean(const std::vector<double> &Xs) {
  if (Xs.empty())
    return 0.0;
  double Sum = 0.0;
  for (double X : Xs)
    Sum += X;
  return Sum / static_cast<double>(Xs.size());
}

double au::variance(const std::vector<double> &Xs) {
  if (Xs.size() < 2)
    return 0.0;
  double M = mean(Xs);
  double Sum = 0.0;
  for (double X : Xs)
    Sum += (X - M) * (X - M);
  return Sum / static_cast<double>(Xs.size());
}

double au::stddev(const std::vector<double> &Xs) {
  return std::sqrt(variance(Xs));
}

std::vector<double> au::minMaxScale(const std::vector<double> &Xs) {
  if (Xs.empty())
    return {};
  auto [MinIt, MaxIt] = std::minmax_element(Xs.begin(), Xs.end());
  double Min = *MinIt, Max = *MaxIt;
  std::vector<double> Out;
  Out.reserve(Xs.size());
  if (Max == Min) {
    Out.assign(Xs.size(), 0.0);
    return Out;
  }
  for (double X : Xs)
    Out.push_back((X - Min) / (Max - Min));
  return Out;
}

double au::euclideanDistance(const std::vector<double> &A,
                             const std::vector<double> &B) {
  size_t N = std::max(A.size(), B.size());
  double Sum = 0.0;
  for (size_t I = 0; I != N; ++I) {
    double X = I < A.size() ? A[I] : 0.0;
    double Y = I < B.size() ? B[I] : 0.0;
    Sum += (X - Y) * (X - Y);
  }
  return std::sqrt(Sum);
}

double au::percentile(std::vector<double> Xs, double P) {
  assert(P >= 0.0 && P <= 100.0 && "percentile out of range");
  if (Xs.empty())
    return 0.0;
  std::sort(Xs.begin(), Xs.end());
  if (Xs.size() == 1)
    return Xs.front();
  double Rank = P / 100.0 * static_cast<double>(Xs.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Xs.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Xs[Lo] + Frac * (Xs[Hi] - Xs[Lo]);
}

double au::pearson(const std::vector<double> &A, const std::vector<double> &B) {
  if (A.size() != B.size() || A.size() < 2)
    return 0.0;
  double MA = mean(A), MB = mean(B);
  double Num = 0.0, DA = 0.0, DB = 0.0;
  for (size_t I = 0, E = A.size(); I != E; ++I) {
    Num += (A[I] - MA) * (B[I] - MB);
    DA += (A[I] - MA) * (A[I] - MA);
    DB += (B[I] - MB) * (B[I] - MB);
  }
  if (DA == 0.0 || DB == 0.0)
    return 0.0;
  return Num / std::sqrt(DA * DB);
}

double au::clamp(double X, double Lo, double Hi) {
  assert(Lo <= Hi && "invalid clamp range");
  return X < Lo ? Lo : (X > Hi ? Hi : X);
}
