//===- support/Statistics.h - Numeric helpers over value traces -*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics helpers used by the feature-extraction algorithms of the
/// paper (Section 4): min-max scaling of runtime value traces to [0,1],
/// Euclidean distance between traces with zero-padding of the shorter one
/// (the paper's footnote 2), and variance. Also general mean/percentile
/// helpers used by the benchmark harnesses.
///
//===----------------------------------------------------------------------===//

#ifndef AU_SUPPORT_STATISTICS_H
#define AU_SUPPORT_STATISTICS_H

#include <cstddef>
#include <vector>

namespace au {

/// Arithmetic mean; returns 0 for an empty vector.
double mean(const std::vector<double> &Xs);

/// Population variance; returns 0 for vectors with fewer than two elements.
double variance(const std::vector<double> &Xs);

/// Standard deviation (sqrt of population variance).
double stddev(const std::vector<double> &Xs);

/// Scales values linearly into [0, 1] (sklearn minmax_scale, as cited by the
/// paper). A constant trace scales to all zeros.
std::vector<double> minMaxScale(const std::vector<double> &Xs);

/// Euclidean distance between two traces; the shorter trace is padded with
/// zeros, following footnote 2 of the paper.
double euclideanDistance(const std::vector<double> &A,
                         const std::vector<double> &B);

/// Linear-interpolation percentile, \p P in [0, 100]. Sorts a copy.
double percentile(std::vector<double> Xs, double P);

/// Pearson correlation coefficient; returns 0 when either side is constant
/// or the sizes differ.
double pearson(const std::vector<double> &A, const std::vector<double> &B);

/// Clamps \p X into [Lo, Hi].
double clamp(double X, double Lo, double Hi);

} // namespace au

#endif // AU_SUPPORT_STATISTICS_H
