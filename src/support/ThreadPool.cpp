//===- support/ThreadPool.cpp - Deterministic work-sharing pool ----------===//

#include "support/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>

using namespace au;

namespace {

/// Set while a thread is executing chunks of some job; nested parallelFor
/// calls from such a thread run inline instead of re-entering the pool.
thread_local bool InParallelRegion = false;

int defaultThreadCount() {
  if (const char *Env = std::getenv("AU_NN_THREADS")) {
    int N = std::atoi(Env);
    if (N > 0)
      return N;
  }
  unsigned HW = std::thread::hardware_concurrency();
  return HW > 0 ? static_cast<int>(HW) : 1;
}

std::mutex GlobalM;
std::unique_ptr<ThreadPool> Global;

} // namespace

ThreadPool::ThreadPool(int NumThreads) : Threads(std::max(1, NumThreads)) {
  // The calling thread participates in every loop it issues, but workers are
  // what bound concurrency while the caller waits, so spawn Threads workers
  // when parallel execution is requested at all.
  if (Threads > 1) {
    Workers.reserve(Threads);
    for (int I = 0; I < Threads; ++I)
      Workers.emplace_back([this] { workerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> G(QueueM);
    Stop = true;
  }
  QueueCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::help(Job &J) {
  bool Saved = InParallelRegion;
  InParallelRegion = true;
  for (;;) {
    size_t C = J.Next.fetch_add(1, std::memory_order_relaxed);
    if (C >= J.NumChunks)
      break;
    size_t B = J.Begin + C * J.Grain;
    size_t E = std::min(J.End, B + J.Grain);
    J.Body(B, E);
    if (J.Done.fetch_add(1, std::memory_order_acq_rel) + 1 == J.NumChunks) {
      std::lock_guard<std::mutex> G(J.M);
      J.Cv.notify_all();
    }
  }
  InParallelRegion = Saved;
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::shared_ptr<Job> J;
    {
      std::unique_lock<std::mutex> Lk(QueueM);
      QueueCv.wait(Lk, [this] { return Stop || !Queue.empty(); });
      if (Stop)
        return;
      J = Queue.front();
      if (J->Next.load(std::memory_order_relaxed) >= J->NumChunks) {
        // Exhausted job another thread is finishing; retire it.
        Queue.pop_front();
        continue;
      }
    }
    help(*J);
  }
}

ThreadPool::TaskHandle ThreadPool::async(std::function<void()> Fn) {
  TaskHandle H;
  if (Workers.empty()) {
    Fn(); // No workers: run inline; wait() becomes a no-op.
    return H;
  }
  auto J = std::make_shared<Job>();
  J->Body = [F = std::move(Fn)](size_t, size_t) { F(); };
  J->Begin = 0;
  J->End = 1;
  J->Grain = 1;
  J->NumChunks = 1;
  {
    std::lock_guard<std::mutex> G(QueueM);
    Queue.push_back(J);
  }
  QueueCv.notify_one();
  H.J = std::move(J);
  H.Pool = this;
  return H;
}

void ThreadPool::TaskHandle::wait() {
  if (!J)
    return;
  {
    std::unique_lock<std::mutex> Lk(J->M);
    J->Cv.wait(Lk, [&] {
      return J->Done.load(std::memory_order_acquire) == J->NumChunks;
    });
  }
  {
    // Retire the job so workers never observe a stale head entry.
    std::lock_guard<std::mutex> G(Pool->QueueM);
    auto It = std::find(Pool->Queue.begin(), Pool->Queue.end(), J);
    if (It != Pool->Queue.end())
      Pool->Queue.erase(It);
  }
  J.reset();
}

void ThreadPool::parallelFor(size_t Begin, size_t End, size_t Grain,
                             LoopBodyRef Body) {
  if (Begin >= End)
    return;
  assert(Grain > 0 && "parallelFor grain must be positive");
  size_t N = End - Begin;
  if (Workers.empty() || InParallelRegion || N <= Grain) {
    Body(Begin, End);
    return;
  }
  auto J = std::make_shared<Job>();
  // LoopBodyRef is two pointers and trivially copyable, so this capture fits
  // std::function's small-object buffer — no heap allocation here.
  J->Body = [Body](size_t B, size_t E) { Body(B, E); };
  J->Begin = Begin;
  J->End = End;
  J->Grain = Grain;
  J->NumChunks = (N + Grain - 1) / Grain;
  {
    std::lock_guard<std::mutex> G(QueueM);
    Queue.push_back(J);
  }
  QueueCv.notify_all();
  help(*J);
  {
    std::unique_lock<std::mutex> Lk(J->M);
    J->Cv.wait(Lk, [&] {
      return J->Done.load(std::memory_order_acquire) == J->NumChunks;
    });
  }
  {
    // Retire the job so workers never observe a stale head entry.
    std::lock_guard<std::mutex> G(QueueM);
    auto It = std::find(Queue.begin(), Queue.end(), J);
    if (It != Queue.end())
      Queue.erase(It);
  }
}

ThreadPool &ThreadPool::global() {
  std::lock_guard<std::mutex> G(GlobalM);
  if (!Global)
    Global = std::make_unique<ThreadPool>(defaultThreadCount());
  return *Global;
}

void ThreadPool::setGlobalThreads(int NumThreads) {
  std::lock_guard<std::mutex> G(GlobalM);
  Global = std::make_unique<ThreadPool>(NumThreads);
}

void au::parallelShardedSum(size_t Items, size_t ShardGrain, size_t AccSize,
                            ShardBodyRef Body, float *Out) {
  if (Items == 0 || AccSize == 0)
    return;
  assert(ShardGrain > 0 && "shard grain must be positive");
  // Shard structure is a pure function of the workload, never of the thread
  // count, so the reduction tree (and its rounding) is reproducible.
  constexpr size_t MaxShards = 16;
  size_t NumShards = std::min(MaxShards, (Items + ShardGrain - 1) / ShardGrain);
  size_t Span = (Items + NumShards - 1) / NumShards;
  // Reused across calls on this thread; assign() zeroes within the retained
  // capacity, so steady-state training does not allocate here.
  static thread_local std::vector<float> ShardBufs;
  std::vector<float> &Bufs = ShardBufs;
  Bufs.assign(NumShards * AccSize, 0.0f);
  ThreadPool::global().parallelFor(0, NumShards, 1, [&](size_t B, size_t E) {
    for (size_t S = B; S != E; ++S) {
      size_t Lo = S * Span;
      size_t Hi = std::min(Items, Lo + Span);
      if (Lo < Hi)
        Body(Lo, Hi, &Bufs[S * AccSize]);
    }
  });
  // Pairwise tree reduction in fixed order: shard i absorbs shard i + Step.
  for (size_t Step = 1; Step < NumShards; Step *= 2)
    for (size_t I = 0; I + Step < NumShards; I += 2 * Step) {
      float *Dst = &Bufs[I * AccSize];
      const float *Src = &Bufs[(I + Step) * AccSize];
      for (size_t K = 0; K != AccSize; ++K)
        Dst[K] += Src[K];
    }
  for (size_t K = 0; K != AccSize; ++K)
    Out[K] += Bufs[K];
}
