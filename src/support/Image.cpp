//===- support/Image.cpp - Grayscale image container and filters ---------===//

#include "support/Image.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

using namespace au;

float Image::atClamped(int X, int Y) const {
  if (empty())
    return 0.0f;
  X = std::clamp(X, 0, W - 1);
  Y = std::clamp(Y, 0, H - 1);
  return Pixels[static_cast<size_t>(Y) * W + X];
}

/// Builds a normalized 1-D Gaussian kernel with radius ceil(3*sigma).
static std::vector<float> gaussianKernel(double Sigma) {
  int Radius = static_cast<int>(std::ceil(3.0 * Sigma));
  std::vector<float> Kernel(2 * Radius + 1);
  double Sum = 0.0;
  for (int I = -Radius; I <= Radius; ++I) {
    double V = std::exp(-(I * I) / (2.0 * Sigma * Sigma));
    Kernel[I + Radius] = static_cast<float>(V);
    Sum += V;
  }
  for (float &K : Kernel)
    K = static_cast<float>(K / Sum);
  return Kernel;
}

Image au::gaussianSmooth(const Image &In, double Sigma) {
  if (Sigma <= 0.0 || In.empty())
    return In;
  std::vector<float> Kernel = gaussianKernel(Sigma);
  int Radius = static_cast<int>(Kernel.size() / 2);
  Image Tmp(In.width(), In.height());
  // Horizontal pass.
  for (int Y = 0; Y < In.height(); ++Y)
    for (int X = 0; X < In.width(); ++X) {
      float Acc = 0.0f;
      for (int K = -Radius; K <= Radius; ++K)
        Acc += Kernel[K + Radius] * In.atClamped(X + K, Y);
      Tmp.at(X, Y) = Acc;
    }
  // Vertical pass.
  Image Out(In.width(), In.height());
  for (int Y = 0; Y < In.height(); ++Y)
    for (int X = 0; X < In.width(); ++X) {
      float Acc = 0.0f;
      for (int K = -Radius; K <= Radius; ++K)
        Acc += Kernel[K + Radius] * Tmp.atClamped(X, Y + K);
      Out.at(X, Y) = Acc;
    }
  return Out;
}

void au::sobel(const Image &In, Image &Gx, Image &Gy) {
  Gx = Image(In.width(), In.height());
  Gy = Image(In.width(), In.height());
  static const int Kx[3][3] = {{-1, 0, 1}, {-2, 0, 2}, {-1, 0, 1}};
  static const int Ky[3][3] = {{-1, -2, -1}, {0, 0, 0}, {1, 2, 1}};
  for (int Y = 0; Y < In.height(); ++Y)
    for (int X = 0; X < In.width(); ++X) {
      float Sx = 0.0f, Sy = 0.0f;
      for (int J = -1; J <= 1; ++J)
        for (int I = -1; I <= 1; ++I) {
          float P = In.atClamped(X + I, Y + J);
          Sx += Kx[J + 1][I + 1] * P;
          Sy += Ky[J + 1][I + 1] * P;
        }
      Gx.at(X, Y) = Sx;
      Gy.at(X, Y) = Sy;
    }
}

Image au::gradientMagnitude(const Image &Gx, const Image &Gy) {
  assert(Gx.width() == Gy.width() && Gx.height() == Gy.height() &&
         "gradient component size mismatch");
  Image Out(Gx.width(), Gx.height());
  for (int Y = 0; Y < Gx.height(); ++Y)
    for (int X = 0; X < Gx.width(); ++X)
      Out.at(X, Y) = std::sqrt(Gx.at(X, Y) * Gx.at(X, Y) +
                               Gy.at(X, Y) * Gy.at(X, Y));
  return Out;
}

Image au::resize(const Image &In, int NewW, int NewH) {
  assert(NewW > 0 && NewH > 0 && "resize to empty image");
  if (In.empty())
    return Image(NewW, NewH);
  Image Out(NewW, NewH);
  double Sx = static_cast<double>(In.width()) / NewW;
  double Sy = static_cast<double>(In.height()) / NewH;
  for (int Y = 0; Y < NewH; ++Y)
    for (int X = 0; X < NewW; ++X) {
      double Fx = (X + 0.5) * Sx - 0.5;
      double Fy = (Y + 0.5) * Sy - 0.5;
      int X0 = static_cast<int>(std::floor(Fx));
      int Y0 = static_cast<int>(std::floor(Fy));
      double Ax = Fx - X0, Ay = Fy - Y0;
      float V00 = In.atClamped(X0, Y0), V10 = In.atClamped(X0 + 1, Y0);
      float V01 = In.atClamped(X0, Y0 + 1), V11 = In.atClamped(X0 + 1, Y0 + 1);
      double Top = V00 + Ax * (V10 - V00);
      double Bot = V01 + Ax * (V11 - V01);
      Out.at(X, Y) = static_cast<float>(Top + Ay * (Bot - Top));
    }
  return Out;
}

bool au::writePgm(const Image &Img, const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  std::fprintf(F, "P5\n%d %d\n255\n", Img.width(), Img.height());
  for (float P : Img.data()) {
    unsigned char Byte = static_cast<unsigned char>(
        std::clamp(P, 0.0f, 1.0f) * 255.0f + 0.5f);
    std::fputc(Byte, F);
  }
  std::fclose(F);
  return true;
}

Image au::readPgm(const std::string &Path) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return Image();
  int W = 0, H = 0, MaxV = 0;
  if (std::fscanf(F, "P5 %d %d %d", &W, &H, &MaxV) != 3 || W <= 0 || H <= 0 ||
      MaxV != 255) {
    std::fclose(F);
    return Image();
  }
  std::fgetc(F); // Consume the single whitespace after the header.
  Image Img(W, H);
  for (float &P : Img.data()) {
    int C = std::fgetc(F);
    if (C == EOF) {
      std::fclose(F);
      return Image();
    }
    P = static_cast<float>(C) / 255.0f;
  }
  std::fclose(F);
  return Img;
}
