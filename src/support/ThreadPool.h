//===- support/ThreadPool.h - Deterministic work-sharing pool --*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small persistent thread pool exposing a parallelFor primitive, used by
/// the NN compute engine for row-parallel GEMM and minibatch data
/// parallelism. Two properties make results reproducible at any thread
/// count:
///
///  * parallelFor splits the iteration space into chunks whose boundaries
///    depend only on the range and the grain size — never on the number of
///    threads — and every chunk writes disjoint data, so the schedule cannot
///    change any result.
///  * parallelShardedSum gives each fixed shard of the iteration space its
///    own zero-initialized accumulation buffer, then combines the buffers
///    with a pairwise tree reduction in a fixed order, so floating-point
///    rounding is identical for 1, 2, or 64 threads.
///
/// The global pool is sized by the AU_NN_THREADS environment variable
/// (default: the hardware concurrency). Nested parallel regions execute
/// inline on the calling thread.
///
//===----------------------------------------------------------------------===//

#ifndef AU_SUPPORT_THREADPOOL_H
#define AU_SUPPORT_THREADPOOL_H

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace au {

/// Non-owning reference to a `void(size_t, size_t)` loop body. parallelFor
/// joins before returning, so the referenced callable always outlives its
/// use; taking this instead of std::function keeps the steady-state hot path
/// free of type-erasure heap allocations. Two pointers, trivially copyable —
/// it fits std::function's small-object buffer when a Job must store it.
class LoopBodyRef {
public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, LoopBodyRef>>>
  LoopBodyRef(F &&Fn) // NOLINT: implicit by design, mirrors function_ref.
      : Obj(const_cast<void *>(static_cast<const void *>(&Fn))),
        Call([](void *O, size_t B, size_t E) {
          (*static_cast<std::remove_reference_t<F> *>(O))(B, E);
        }) {}

  void operator()(size_t B, size_t E) const { Call(Obj, B, E); }

private:
  void *Obj;
  void (*Call)(void *, size_t, size_t);
};

/// Non-owning reference to a `void(size_t, size_t, float *)` shard body for
/// parallelShardedSum; same rationale as LoopBodyRef.
class ShardBodyRef {
public:
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ShardBodyRef>>>
  ShardBodyRef(F &&Fn) // NOLINT: implicit by design.
      : Obj(const_cast<void *>(static_cast<const void *>(&Fn))),
        Call([](void *O, size_t B, size_t E, float *Acc) {
          (*static_cast<std::remove_reference_t<F> *>(O))(B, E, Acc);
        }) {}

  void operator()(size_t B, size_t E, float *Acc) const {
    Call(Obj, B, E, Acc);
  }

private:
  void *Obj;
  void (*Call)(void *, size_t, size_t, float *);
};

/// A fixed-size pool of worker threads executing chunked parallel loops.
class ThreadPool {
public:
  /// Creates a pool that runs loop bodies on \p NumThreads threads total.
  /// With NumThreads <= 1 no workers are spawned and every parallelFor runs
  /// inline on the calling thread.
  explicit ThreadPool(int NumThreads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  int numThreads() const { return Threads; }

  /// Whether async() can actually overlap work with the caller (a pool of
  /// one thread runs submitted tasks inline).
  bool hasWorkers() const { return !Workers.empty(); }

  struct Job;

  /// Handle for a task submitted with async().
  class TaskHandle {
    friend class ThreadPool;

  public:
    /// Blocks until the task finishes (no-op for a task that ran inline).
    void wait();
    bool valid() const { return J != nullptr; }

  private:
    std::shared_ptr<Job> J;
    ThreadPool *Pool = nullptr;
  };

  /// Submits \p Fn to run once on a worker thread and returns immediately.
  /// With no workers the task runs inline before returning, so callers that
  /// need genuine overlap (producer/consumer pipelines) should check
  /// hasWorkers() and fall back to a serial schedule. Tasks may issue
  /// parallelFor; it runs inline on the worker (nested-region rule), so a
  /// producer can never deadlock the pool.
  TaskHandle async(std::function<void()> Fn);

  /// Runs \p Body over [Begin, End), partitioned into chunks of at most
  /// \p Grain iterations. Body receives half-open sub-ranges. Chunk
  /// boundaries are a pure function of the range and grain, so any
  /// computation whose chunks write disjoint data is deterministic at every
  /// thread count. Nested calls (from inside a Body) run inline. Joins
  /// before returning, so passing a reference to a stack callable is safe.
  void parallelFor(size_t Begin, size_t End, size_t Grain, LoopBodyRef Body);

  /// The process-wide pool, created on first use with AU_NN_THREADS threads
  /// (default: hardware concurrency).
  static ThreadPool &global();

  /// Replaces the global pool with one of \p NumThreads threads. Must not
  /// race with parallel work; intended for tests and benchmarks.
  static void setGlobalThreads(int NumThreads);

  struct Job {
    std::function<void(size_t, size_t)> Body;
    size_t Begin = 0;
    size_t Grain = 1;
    size_t NumChunks = 0;
    size_t End = 0;
    std::atomic<size_t> Next{0};
    std::atomic<size_t> Done{0};
    std::mutex M;
    std::condition_variable Cv;
  };

private:
  void workerLoop();
  static void help(Job &J);

  int Threads;
  std::vector<std::thread> Workers;
  std::mutex QueueM;
  std::condition_variable QueueCv;
  std::deque<std::shared_ptr<Job>> Queue;
  bool Stop = false;
};

/// Data-parallel accumulation over [0, Items) with reproducible rounding:
/// the range is split into at most 16 shards (a pure function of \p Items
/// and \p ShardGrain), \p Body accumulates each shard into its own
/// zero-initialized buffer of \p AccSize floats, and the buffers are folded
/// pairwise in a fixed tree order, then added into \p Out. The shard buffers
/// are thread_local to the issuing thread (reused across calls), so this
/// must not be called recursively from inside its own Body.
void parallelShardedSum(size_t Items, size_t ShardGrain, size_t AccSize,
                        ShardBodyRef Body, float *Out);

} // namespace au

#endif // AU_SUPPORT_THREADPOOL_H
