//===- support/Table.cpp - Aligned-column table printing -----------------===//

#include "support/Table.h"

#include <cassert>
#include <cstdio>

using namespace au;

Table::Table(std::vector<std::string> Hdr) : Header(std::move(Hdr)) {
  assert(!Header.empty() && "table must have at least one column");
}

void Table::addRow(std::vector<std::string> Row) {
  assert(Row.size() == Header.size() && "row arity mismatch");
  Rows.push_back(std::move(Row));
}

std::string Table::render() const {
  std::vector<size_t> Widths(Header.size(), 0);
  for (size_t C = 0; C != Header.size(); ++C)
    Widths[C] = Header[C].size();
  for (const auto &Row : Rows)
    for (size_t C = 0; C != Row.size(); ++C)
      Widths[C] = std::max(Widths[C], Row[C].size());

  auto AppendRow = [&](std::string &Out, const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      Out += Row[C];
      if (C + 1 != Row.size())
        Out += std::string(Widths[C] - Row[C].size() + 2, ' ');
    }
    Out += '\n';
  };

  std::string Out;
  AppendRow(Out, Header);
  size_t RuleLen = 0;
  for (size_t C = 0; C != Widths.size(); ++C)
    RuleLen += Widths[C] + (C + 1 != Widths.size() ? 2 : 0);
  Out += std::string(RuleLen, '-');
  Out += '\n';
  for (const auto &Row : Rows)
    AppendRow(Out, Row);
  return Out;
}

std::string Table::renderCsv() const {
  auto AppendRow = [](std::string &Out, const std::vector<std::string> &Row) {
    for (size_t C = 0; C != Row.size(); ++C) {
      for (char Ch : Row[C])
        Out += Ch == ',' ? ';' : Ch;
      if (C + 1 != Row.size())
        Out += ',';
    }
    Out += '\n';
  };
  std::string Out;
  AppendRow(Out, Header);
  for (const auto &Row : Rows)
    AppendRow(Out, Row);
  return Out;
}

void Table::print() const {
  std::string S = render();
  std::fwrite(S.data(), 1, S.size(), stdout);
}

std::string au::fmt(double Value, int Digits) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.*f", Digits, Value);
  return Buf;
}

std::string au::fmt(long long Value) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%lld", Value);
  return Buf;
}

std::string au::fmtPercent(double Fraction) {
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f%%", Fraction * 100.0);
  return Buf;
}
