//===- support/Ssim.cpp - Structural similarity image metric -------------===//

#include "support/Ssim.h"

#include <cassert>
#include <cmath>

using namespace au;

double au::ssim(const Image &A, const Image &B) {
  assert(A.width() == B.width() && A.height() == B.height() &&
         "SSIM inputs must have equal size");
  assert(!A.empty() && "SSIM of empty images");
  // Standard constants for dynamic range L = 1.
  const double C1 = 0.01 * 0.01;
  const double C2 = 0.03 * 0.03;
  const int Win = 8;
  const int StepX = std::max(1, std::min(Win, A.width()));
  const int StepY = std::max(1, std::min(Win, A.height()));

  double Total = 0.0;
  int Count = 0;
  for (int Y0 = 0; Y0 + StepY <= A.height(); Y0 += StepY)
    for (int X0 = 0; X0 + StepX <= A.width(); X0 += StepX) {
      double MuA = 0.0, MuB = 0.0;
      const int N = StepX * StepY;
      for (int Y = Y0; Y < Y0 + StepY; ++Y)
        for (int X = X0; X < X0 + StepX; ++X) {
          MuA += A.at(X, Y);
          MuB += B.at(X, Y);
        }
      MuA /= N;
      MuB /= N;
      double VarA = 0.0, VarB = 0.0, Cov = 0.0;
      for (int Y = Y0; Y < Y0 + StepY; ++Y)
        for (int X = X0; X < X0 + StepX; ++X) {
          double Da = A.at(X, Y) - MuA;
          double Db = B.at(X, Y) - MuB;
          VarA += Da * Da;
          VarB += Db * Db;
          Cov += Da * Db;
        }
      VarA /= N;
      VarB /= N;
      Cov /= N;
      double Num = (2 * MuA * MuB + C1) * (2 * Cov + C2);
      double Den = (MuA * MuA + MuB * MuB + C1) * (VarA + VarB + C2);
      Total += Num / Den;
      ++Count;
    }
  assert(Count > 0 && "image smaller than one SSIM window");
  return Total / Count;
}

/// Returns true when the ground truth contains an edge pixel within
/// \p Radius of (X, Y).
static bool nearEdge(const Image &Truth, int X, int Y, int Radius) {
  for (int J = -Radius; J <= Radius; ++J)
    for (int I = -Radius; I <= Radius; ++I)
      if (Truth.inBounds(X + I, Y + J) && Truth.at(X + I, Y + J) > 0.5f)
        return true;
  return false;
}

double au::edgeF1(const Image &Pred, const Image &Truth, int Radius) {
  assert(Pred.width() == Truth.width() && Pred.height() == Truth.height() &&
         "edgeF1 inputs must have equal size");
  int Tp = 0, Fp = 0, Fn = 0;
  for (int Y = 0; Y < Pred.height(); ++Y)
    for (int X = 0; X < Pred.width(); ++X) {
      bool P = Pred.at(X, Y) > 0.5f;
      if (P && nearEdge(Truth, X, Y, Radius))
        ++Tp;
      else if (P)
        ++Fp;
      else if (Truth.at(X, Y) > 0.5f && !nearEdge(Pred, X, Y, Radius))
        ++Fn;
    }
  if (Tp == 0)
    return 0.0;
  double Precision = static_cast<double>(Tp) / (Tp + Fp);
  double Recall = static_cast<double>(Tp) / (Tp + Fn);
  return 2.0 * Precision * Recall / (Precision + Recall);
}
