//===- support/Table.h - Aligned-column table printing ---------*- C++ -*-===//
//
// Part of the Autonomizer reproduction (PLDI '19).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small table formatter used by the benchmark harnesses to print rows in
/// the same layout as the paper's tables, plus CSV emission so results can be
/// post-processed. Cells are strings; helpers format numbers consistently.
///
//===----------------------------------------------------------------------===//

#ifndef AU_SUPPORT_TABLE_H
#define AU_SUPPORT_TABLE_H

#include <string>
#include <vector>

namespace au {

/// Collects header + rows and prints them with aligned columns.
class Table {
public:
  explicit Table(std::vector<std::string> Header);

  /// Appends one row; must have the same arity as the header.
  void addRow(std::vector<std::string> Row);

  /// Renders the table with space-padded columns and a separator rule.
  std::string render() const;

  /// Renders as CSV (no escaping beyond comma replacement; cells are simple).
  std::string renderCsv() const;

  /// Prints render() to stdout.
  void print() const;

  size_t numRows() const { return Rows.size(); }

private:
  std::vector<std::string> Header;
  std::vector<std::vector<std::string>> Rows;
};

/// Formats a double with \p Digits fractional digits.
std::string fmt(double Value, int Digits = 3);

/// Formats an integer.
std::string fmt(long long Value);

/// Formats a percentage with one fractional digit, e.g. "84.0%".
std::string fmtPercent(double Fraction);

} // namespace au

#endif // AU_SUPPORT_TABLE_H
