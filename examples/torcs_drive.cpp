//===- examples/torcs_drive.cpp - Autonomized driving (Section 6.3) ------===//
//
// The paper's TORCS case study: annotate `steer` as the target variable,
// let Algorithm 2 mine the sensor variables (watching it prune the `roll`
// alias and the near-constant `accX`, Figs. 15/16), then train the
// steering policy and drive the course.
//
// Build & run:  ./build/examples/torcs_drive [train-steps]
//
//===----------------------------------------------------------------------===//

#include "apps/common/RlHarness.h"
#include "apps/torcs/Torcs.h"
#include "support/Statistics.h"

#include <cstdio>
#include <cstdlib>

using namespace au;
using namespace au::apps;

int main(int Argc, char **Argv) {
  long Steps = Argc > 1 ? std::atol(Argv[1]) : 12000;

  TorcsEnv Car;

  // --- Feature mining with the paper's thresholds. ---
  analysis::RlExtractionStats Stats;
  std::vector<std::string> Features =
      selectRlFeatures(Car, /*Epsilon1=*/0.05, /*Epsilon2=*/0.01, 300,
                       &Stats);
  std::printf("Algorithm 2: %d candidates -> %zu features (pruned %d "
              "redundant, %d unchanging)\n",
              Stats.NumCandidates, Features.size(), Stats.PrunedRedundant,
              Stats.PrunedUnchanging);
  for (const auto &[Kept, Pruned] : Stats.RedundantPairs)
    std::printf("  pruned '%s' (duplicates '%s')\n", Pruned.c_str(),
                Kept.c_str());
  std::printf("\n");

  // --- Train the steering policy. ---
  Runtime RT(Mode::TR);
  RlTrainOptions Opt;
  Opt.FeatureNames = Features;
  Opt.TrainSteps = Steps;
  Opt.MaxEpisodeSteps = 500;
  Opt.Seed = 0x70c5;
  Opt.QCfg.EpsilonDecaySteps = static_cast<int>(Steps * 0.6);
  Opt.QCfg.LearningRateEnd = 1e-4;
  Opt.QCfg.TrainInterval = 2;
  std::printf("Training for %ld control iterations...\n", Steps);
  RlTrainResult Train = trainRl(Car, RT, Opt);

  // --- Drive. ---
  RlEvalResult Drive = evalRl(Car, RT, Opt, 10);
  RlEvalResult Players = evalHeuristic(Car, Opt, 10);
  std::printf("\nTrained in %.1fs over %ld episodes.\n", Train.TrainSeconds,
              Train.Episodes);
  std::printf("Driving score (distance before bumping, 10 runs): %.0f%% "
              "(finish rate %.0f%%)\n",
              Drive.MeanProgress * 100, Drive.SuccessRate * 100);
  std::printf("Players reference:                                %.0f%% "
              "(finish rate %.0f%%)\n",
              Players.MeanProgress * 100, Players.SuccessRate * 100);
  return 0;
}
