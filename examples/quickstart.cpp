//===- examples/quickstart.cpp - Autonomizer in five minutes -------------===//
//
// The smallest end-to-end autonomization. The "legacy program" below is a
// one-line data processor with a quality-critical parameter: it smooths a
// noisy signal with a window whose IDEAL width depends on how noisy the
// input is. Users normally pick the width by hand per input; we autonomize
// it so a model picks it on the fly.
//
// The paper's workflow, in order:
//   1. TR (training) runs: the program executes with known-good parameter
//      choices; au_extract records feature-variable values and
//      au_write_back records the good choices as labels.
//   2. Offline training (trainSupervised) fits the model.
//   3. TS (deployment) runs: au_NN predicts, au_write_back installs the
//      prediction into the program variable, execution continues normally.
//
// Build & run:  ./build/examples/quickstart
//
//===----------------------------------------------------------------------===//

#include "core/Engine.h"
#include "support/Rng.h"
#include "support/Statistics.h"

#include <cmath>
#include <cstdio>
#include <vector>

using namespace au;

//===----------------------------------------------------------------------===//
// The legacy program: a parameterized moving-average smoother.
//===----------------------------------------------------------------------===//

/// Smooths Signal with a centered window of half-width W.
static std::vector<double> smooth(const std::vector<double> &Signal, int W) {
  std::vector<double> Out(Signal.size());
  for (size_t I = 0; I != Signal.size(); ++I) {
    double Acc = 0.0;
    int N = 0;
    for (int K = -W; K <= W; ++K) {
      long J = static_cast<long>(I) + K;
      if (J >= 0 && J < static_cast<long>(Signal.size())) {
        Acc += Signal[J];
        ++N;
      }
    }
    Out[I] = Acc / N;
  }
  return Out;
}

/// One synthetic workload: a sine with seed-dependent noise. The clean
/// signal is the ground truth the smoother tries to recover.
struct Workload {
  std::vector<double> Noisy;
  std::vector<double> Clean;
  double NoiseLevel;
};

static Workload makeWorkload(uint64_t Seed) {
  Rng R(Seed);
  Workload W;
  W.NoiseLevel = R.uniform(0.02, 0.5);
  for (int I = 0; I < 128; ++I) {
    double Clean = std::sin(I * 0.12);
    W.Clean.push_back(Clean);
    W.Noisy.push_back(Clean + R.normal(0.0, W.NoiseLevel));
  }
  return W;
}

/// Output quality: negative mean squared error against the clean signal.
static double quality(const std::vector<double> &Out,
                      const std::vector<double> &Clean) {
  double Err = 0.0;
  for (size_t I = 0; I != Out.size(); ++I)
    Err += (Out[I] - Clean[I]) * (Out[I] - Clean[I]);
  return -Err / static_cast<double>(Out.size());
}

/// The autotuning oracle used to label training runs: tries every width.
static int idealWidth(const Workload &W) {
  int Best = 1;
  double BestQ = -1e30;
  for (int Width = 1; Width <= 12; ++Width) {
    double Q = quality(smooth(W.Noisy, Width), W.Clean);
    if (Q > BestQ) {
      BestQ = Q;
      Best = Width;
    }
  }
  return Best;
}

//===----------------------------------------------------------------------===//
// The autonomized program: the original logic plus five primitive calls.
//===----------------------------------------------------------------------===//

/// Runs the smoother with Autonomizer installed. In TR mode \p TrainWidth
/// is the known-good width being demonstrated; in TS mode the model
/// decides.
static double runAutonomized(Session &S, const Workload &W,
                             int TrainWidth) {
  // au_config: a small DNN trained with AdamOpt (idempotent).
  ModelConfig Cfg;
  Cfg.Name = "WidthNN";
  Cfg.HiddenLayers = {16, 8};
  S.config(Cfg);

  // au_extract: the feature variables — cheap signal statistics the
  // program can compute before choosing the width. (A real deployment
  // would let Algorithm 1 pick these; see the canny example.)
  std::vector<double> Diffs;
  for (size_t I = 1; I < W.Noisy.size(); ++I)
    Diffs.push_back(W.Noisy[I] - W.Noisy[I - 1]);
  S.extract("ROUGHNESS", stddev(Diffs));
  S.extract("SPREAD", stddev(W.Noisy));

  // au_serialize + au_NN: feed the features, declare the output.
  std::string Ext = S.serialize({"ROUGHNESS", "SPREAD"});
  S.nn("WidthNN", Ext, {{"WIDTH", 1}});

  // au_write_back: TR records the demonstrated width as the label;
  // TS overwrites it with the model's prediction.
  float WidthV = static_cast<float>(TrainWidth);
  S.writeBack("WIDTH", 1, &WidthV);
  int Width = static_cast<int>(clamp(std::lround(WidthV), 1, 12));

  return quality(smooth(W.Noisy, Width), W.Clean);
}

int main() {
  // The Engine owns the shared model store; the Session is this
  // execution's private state (DESIGN.md §10).
  Engine Eng;
  Session S(Eng, Mode::TR);

  // --- Phase 1+2: training runs piggyback on normal operation. ---
  std::printf("Training on 80 demonstration runs...\n");
  for (uint64_t Seed = 0; Seed < 80; ++Seed) {
    Workload W = makeWorkload(Seed);
    runAutonomized(S, W, idealWidth(W));
  }
  double Loss = S.trainSupervised("WidthNN", /*Epochs=*/120,
                                   /*BatchSize=*/16);
  std::printf("Final training loss: %.4f\n\n", Loss);

  // --- Phase 3: deployment. ---
  S.switchMode(Mode::TS);
  double FixedQ = 0.0, AutoQ = 0.0, OracleQ = 0.0;
  const int NumTest = 20;
  for (uint64_t Seed = 1000; Seed < 1000 + NumTest; ++Seed) {
    Workload W = makeWorkload(Seed);
    FixedQ += quality(smooth(W.Noisy, /*W=*/4), W.Clean); // One-size default.
    AutoQ += runAutonomized(S, W, /*TrainWidth=*/0);      // Model decides.
    OracleQ += quality(smooth(W.Noisy, idealWidth(W)), W.Clean);
  }
  std::printf("Mean quality over %d unseen inputs (higher is better):\n",
              NumTest);
  std::printf("  fixed default width : %8.5f\n", FixedQ / NumTest);
  std::printf("  autonomized         : %8.5f\n", AutoQ / NumTest);
  std::printf("  per-input oracle    : %8.5f\n", OracleQ / NumTest);
  std::printf("\nThe autonomized program should land between the fixed "
              "default and the oracle.\n");
  return 0;
}
