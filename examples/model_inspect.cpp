//===- examples/model_inspect.cpp - Inspect saved .aumodel files ---------===//
//
// A small utility over the model persistence format: prints the kind,
// architecture, declared outputs and parameter statistics of a model saved
// by Runtime::saveModel / Model::save. Useful when shipping trained models
// between TR and TS deployments.
//
// Usage:  ./build/examples/model_inspect <file.aumodel> [...]
//
//===----------------------------------------------------------------------===//

#include "core/Model.h"

#include <cmath>
#include <cstdio>

using namespace au;

/// Tries to load \p Path as either model kind and prints its description;
/// returns false when the file is not a readable model.
static bool inspect(const char *Path) {
  // The header's kind tag decides which class accepts the file; try both.
  ModelConfig Probe;
  Probe.Name = "inspect";
  std::unique_ptr<Model> M;
  {
    auto Sl = std::make_unique<SlModel>(Probe);
    if (Sl->load(Path))
      M = std::move(Sl);
  }
  if (!M) {
    auto Rl = std::make_unique<RlModel>(Probe);
    if (Rl->load(Path))
      M = std::move(Rl);
  }
  if (!M) {
    std::fprintf(stderr, "error: %s: not a readable .aumodel file\n", Path);
    return false;
  }

  const ModelConfig &C = M->config();
  std::printf("%s:\n", Path);
  std::printf("  kind        : %s\n",
              M->kind() == Model::KindTy::Supervised ? "supervised (AdamOpt)"
                                                     : "reinforcement (Q)");
  std::printf("  model type  : %s\n", modelTypeName(C.Type));
  if (C.Type == ModelType::CNN)
    std::printf("  frame       : %dx%dx%d\n", C.FrameChannels, C.FrameSide,
                C.FrameSide);
  std::printf("  input size  : %d\n", M->inputSize());
  std::printf("  hidden      : ");
  for (int H : C.HiddenLayers)
    std::printf("%d ", H);
  std::printf("\n  outputs     : ");
  for (const WriteBackSpec &O : M->outputs())
    std::printf("%s[%d] ", O.Name.c_str(), O.Size);
  std::printf("\n  parameters  : %zu (%zu bytes serialized)\n",
              M->numParams(), M->modelSizeBytes());
  return true;
}

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    std::fprintf(stderr, "usage: %s <file.aumodel> [...]\n", Argv[0]);
    return 2;
  }
  bool Ok = true;
  for (int I = 1; I < Argc; ++I)
    Ok = inspect(Argv[I]) && Ok;
  return Ok ? 0 : 1;
}
