//===- examples/canny_autonomize.cpp - The Fig. 11 walkthrough -----------===//
//
// Autonomizes the Canny edge detector exactly as the paper's Fig. 11:
// SigmaNN predicts the Gaussian sigma from the image, and the threshold
// model predicts lo/hi from the feature chosen by Algorithm 1. The
// example first shows the automatic feature extraction (Fig. 9's ranking),
// then trains the Min version and writes before/after edge maps as PGM
// files for visual inspection (the paper's Fig. 14).
//
// Build & run:  ./build/examples/canny_autonomize
//
//===----------------------------------------------------------------------===//

#include "apps/canny/Canny.h"
#include "support/Table.h"

#include <cstdio>

using namespace au;
using namespace au::apps;
using analysis::SlPick;

int main() {
  // --- Automatic feature extraction (Section 4, Algorithm 1). ---
  std::printf("Running the dependence profile and Algorithm 1...\n\n");
  analysis::Tracer T;
  std::vector<std::string> Inputs, Targets;
  cannyProfile(T, Inputs, Targets);
  analysis::SlFeatureMap Features = extractSlFeatures(T, Inputs, Targets);

  Table Ranked({"Target", "Ranked features (distance)"});
  for (const std::string &Target : Targets) {
    std::string Row;
    for (const analysis::RankedFeature &F : Features[Target])
      Row += F.Var + "(" + fmt(static_cast<long long>(F.Distance)) + ") ";
    Ranked.addRow({Target, Row});
  }
  Ranked.print();
  std::printf("\n=> Min picks '%s' to predict lo/hi — the paper's Fig. 9.\n\n",
              pickSlFeature(Features["lo"], SlPick::Min).c_str());

  // --- Train the Min version through the primitives. ---
  std::printf("Training the Min version (40 images, 60 epochs)...\n");
  CannyExperiment Exp(/*NumTrain=*/40, /*NumTest=*/6, /*Seed=*/777);
  double TrainSecs = Exp.train(SlPick::Min, /*Epochs=*/60);
  std::printf("Trained in %.1fs. Baseline score %.3f -> autonomized %.3f "
              "(oracle %.3f)\n\n",
              TrainSecs, Exp.baselineScore(), Exp.testScore(SlPick::Min),
              Exp.oracleScore());

  // --- Emit a visual comparison (the paper's Fig. 14). ---
  CannyScene Scene = makeCannyScene(777 + 10000);
  writePgm(Scene.Input, "canny_input.pgm");
  writePgm(Scene.Truth, "canny_truth.pgm");
  writePgm(cannyDetect(Scene.Input, CannyParams()), "canny_baseline.pgm");
  writePgm(cannyDetect(Scene.Input, autotuneCanny(Scene)), "canny_oracle.pgm");
  std::printf("Wrote canny_input.pgm / canny_truth.pgm / canny_baseline.pgm "
              "/ canny_oracle.pgm\n");
  return 0;
}
