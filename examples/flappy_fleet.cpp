//===- examples/flappy_fleet.cpp - Parallel actor rollouts ---------------===//
//
// Trains the Flappy agent with a fleet of actors stepping in lockstep
// (DESIGN.md §8): per tick, K environments extract their feature variables
// into per-actor contexts, the K au_NN calls fuse into ONE batched model
// step, transitions land in per-actor replay shards, and one minibatch
// trains per tick (the vectorized-DQN schedule, TrainInterval = K). The
// whole run is bitwise reproducible at any AU_NN_THREADS setting.
//
// Compares wall-clock and final greedy score against the serial loop of
// examples/mario_selftest-style training.
//
// Build & run:  ./build/examples/flappy_fleet [actors]
//
//===----------------------------------------------------------------------===//

#include "apps/common/RlHarness.h"
#include "apps/flappy/Flappy.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace au;
using namespace au::apps;

int main(int argc, char **argv) {
  const int Actors = argc > 1 ? std::atoi(argv[1]) : 8;

  RlTrainOptions Opt;
  Opt.FeatureNames = {"birdY", "birdV", "pipeDx", "gap1Y", "diffY"};
  Opt.TrainSteps = 20000;
  Opt.MaxEpisodeSteps = 400;
  Opt.Seed = 21;
  Opt.QCfg.EpsilonDecaySteps = 4000;

  // Serial reference: the paper's loop, one minibatch per env step. Each
  // run gets its own Engine (model store θ) and Session (⟨σ, π⟩), the
  // native API of DESIGN.md §10, so the two trained models stay apart.
  std::printf("Serial training (%ld steps)...\n", Opt.TrainSteps);
  FlappyEnv Env;
  Engine SerialEng;
  Session SerialS(SerialEng, Mode::TR);
  RlTrainResult Serial = trainRl(Env, SerialS, Opt);
  RlEvalResult SerialScore = evalRl(Env, SerialS, Opt, 20);

  // Fleet: one minibatch per K-step tick, so spending the throughput win
  // on K-fold experience costs the same number of updates (and about the
  // same wall-clock) as the serial run. Epsilon decays per env step, so
  // its horizon scales too, keeping the explore/exploit profile aligned.
  Opt.TrainSteps *= Actors;
  Opt.QCfg.EpsilonDecaySteps *= Actors;
  Opt.QCfg.TrainInterval = Actors;
  std::printf("Fleet training (%d actors, %ld steps)...\n", Actors,
              Opt.TrainSteps);
  Engine FleetEng;
  Session FleetMain(FleetEng, Mode::TR);
  GameEnvFactory Factory = [] { return std::make_unique<FlappyEnv>(); };
  RlTrainResult Fleet =
      trainRlParallel(Factory, FleetEng, FleetMain, Opt, Actors);
  RlEvalResult FleetScore = evalRlBatched(Factory, FleetEng, FleetMain, Opt, 20);

  std::printf("\n%-22s %12s %12s\n", "", "serial", "fleet");
  std::printf("%-22s %12.2f %12.2f\n", "train seconds",
              Serial.TrainSeconds, Fleet.TrainSeconds);
  std::printf("%-22s %12.0f %12.0f\n", "env steps/sec",
              Serial.StepsRun / Serial.TrainSeconds,
              Fleet.StepsRun / Fleet.TrainSeconds);
  std::printf("%-22s %12ld %12ld\n", "episodes", Serial.Episodes,
              Fleet.Episodes);
  std::printf("%-22s %12.1f %12.1f\n", "eval mean progress",
              SerialScore.MeanProgress, FleetScore.MeanProgress);
  std::printf("%-22s %11.0f%% %11.0f%%\n", "eval success",
              100.0 * SerialScore.SuccessRate,
              100.0 * FleetScore.SuccessRate);
  std::printf("\nspeedup: %.2fx env steps/sec with %d actors\n",
              (Fleet.StepsRun / Fleet.TrainSeconds) /
                  (Serial.StepsRun / Serial.TrainSeconds),
              Actors);
  return 0;
}
