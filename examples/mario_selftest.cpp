//===- examples/mario_selftest.cpp - Self-testing via coverage reward ----===//
//
// The paper's Section 2 twist: "All we need to do is to update the reward
// so that it reflects the code coverage improvement" (Fig. 2 line 38).
// With the +30 new-coverage bonus enabled, the same autonomized Mario
// becomes a test generator that hunts rare branches instead of (only)
// clearing the stage. The example prints the coverage each agent reaches
// in the same interaction budget.
//
// Build & run:  ./build/examples/mario_selftest [train-steps]
//
//===----------------------------------------------------------------------===//

#include "apps/common/RlHarness.h"
#include "apps/mario/Mario.h"

#include <cstdio>
#include <cstdlib>

using namespace au;
using namespace au::apps;

/// Trains one agent and reports the cumulative branch coverage reached.
static double trainAndMeasure(bool CoverageReward, long Steps) {
  MarioEnv Game;
  Game.resetCoverage();
  Game.setCoverageReward(CoverageReward); // Fig. 2 line 38 on/off.
  Runtime RT(Mode::TR);
  RlTrainOptions Opt;
  Opt.FeatureNames = selectRlFeatures(Game);
  Opt.TrainSteps = Steps;
  Opt.MaxEpisodeSteps = 400;
  Opt.Seed = 0x7100;
  Opt.QCfg.EpsilonDecaySteps = static_cast<int>(Steps * 0.5);
  Opt.QCfg.LearningRateEnd = 1e-4;
  Opt.QCfg.TrainInterval = 2;
  trainRl(Game, RT, Opt);
  return Game.coverageFraction();
}

int main(int Argc, char **Argv) {
  long Steps = Argc > 1 ? std::atol(Argv[1]) : 10000;

  std::printf("Mario self-testing (%d instrumented branches, %ld "
              "interactions per agent)\n\n",
              MarioEnv::NumBranches, Steps);

  // The interesting comparison is how FAST coverage is reached; report an
  // early checkpoint too (the full curves live in bench/selftest_coverage).
  double CovEarly = trainAndMeasure(/*CoverageReward=*/true, Steps / 2);
  double ScoreEarly = trainAndMeasure(/*CoverageReward=*/false, Steps / 2);
  std::printf("after %ld interactions:  coverage-rewarded %.0f%%  "
              "score-rewarded %.0f%%\n\n",
              Steps / 2, CovEarly * 100, ScoreEarly * 100);

  double CovAgent = trainAndMeasure(/*CoverageReward=*/true, Steps);
  double ScoreAgent = trainAndMeasure(/*CoverageReward=*/false, Steps);

  // Random (monkey) testing reference.
  MarioEnv Game;
  Game.resetCoverage();
  Rng R(3);
  long Done = 0;
  uint64_t Ep = 0;
  while (Done < Steps) {
    Game.reset((0x7100ull << 8) | (Ep++ & 0xff));
    int EpSteps = 0;
    while (!Game.terminal() && EpSteps++ < 400 && Done++ < Steps)
      Game.step(static_cast<int>(R.uniformInt(5)));
  }

  std::printf("coverage-rewarded agent : %.0f%%\n", CovAgent * 100);
  std::printf("score-rewarded agent    : %.0f%%\n", ScoreAgent * 100);
  std::printf("random (monkey) testing : %.0f%%\n",
              Game.coverageFraction() * 100);
  std::printf("\nBoth trained agents dominate random testing; the coverage "
              "reward's edge is\nreaching rare branches earlier (see "
              "bench/selftest_coverage for curves —\nthe paper reports ~65%% "
              "coverage in 30s of play for its coverage agent).\n");
  return 0;
}
