//===- examples/mario_autonomize.cpp - The Fig. 2 walkthrough ------------===//
//
// Autonomizes the Mario game with the primitives laid out exactly as the
// paper's Fig. 2: a visible game loop with au_checkpoint at the top,
// au_extract for the player/minion state, au_serialize + au_NN carrying
// the reward and terminal flag, au_write_back producing the action key,
// and au_restore at ending states. Feature variables come from
// Algorithm 2 over a profiled run, as in Section 4.
//
// Build & run:  ./build/examples/mario_autonomize [train-steps]
//
//===----------------------------------------------------------------------===//

#include "apps/common/RlHarness.h"
#include "apps/mario/Mario.h"

#include <cstdio>
#include <cstdlib>

using namespace au;
using namespace au::apps;

int main(int Argc, char **Argv) {
  long TrainSteps = Argc > 1 ? std::atol(Argv[1]) : 12000;

  MarioEnv Game;
  // The native Engine/Session split (DESIGN.md §10): the Engine owns the
  // shared model store θ, the Session owns this client's ⟨σ, π⟩ stores.
  Engine Eng;
  Session RT(Eng, Mode::TR);

  // initGame(): au_config (Fig. 2 line 3).
  ModelConfig Cfg;
  Cfg.Name = "Mario";
  Cfg.Type = ModelType::DNN;
  Cfg.Algo = Algorithm::QLearn;
  Cfg.HiddenLayers = {32, 32};
  Cfg.Seed = 4;
  Model *M = RT.config(Cfg);
  nn::QConfig QCfg;
  QCfg.EpsilonDecaySteps = static_cast<int>(TrainSteps * 0.6);
  QCfg.LearningRateEnd = 1e-4;
  QCfg.TrainInterval = 2;
  static_cast<RlModel *>(M)->setQConfig(QCfg);

  // Automatic feature extraction (the paper annotates MnX/MnY/OBJ/PX/PY;
  // Algorithm 2 recovers an equivalent set from the profile).
  std::vector<std::string> Features = selectRlFeatures(Game);
  std::printf("Algorithm 2 selected %zu feature variables:", Features.size());
  for (const std::string &F : Features)
    std::printf(" %s", F.c_str());
  std::printf("\n\n");

  // Intern every name once, outside the game loop: the per-frame
  // primitives then run on dense handles (the DESIGN.md §7 hot path).
  NameId Mario = RT.intern("Mario");
  WriteBackHandle Output{RT.intern("output"), 5};
  std::vector<NameId> FeatureIds;
  for (const std::string &F : Features)
    FeatureIds.push_back(RT.intern(F));

  RT.checkpoints().registerObject(&Game);
  Game.reset(0x4d00);
  RT.checkpoint(); // Fig. 2 line 27 (once; restores return here).

  float Reward = 0.0f;
  bool Terminated = false;
  long Steps = 0, Episodes = 0, EpisodeSteps = 0;
  while (Steps < TrainSteps) { // gameLoop() (Fig. 2 lines 24-50).
    // au_extract for each annotated variable (lines 9-10, 17, 21-22).
    std::vector<Feature> Fs = Game.features();
    for (size_t I = 0; I != Features.size(); ++I)
      RT.extract(FeatureIds[I], featureValue(Fs, Features[I]));

    // au_NN with the serialized state, reward and terminal flag
    // (lines 40-43), then au_write_back of the action key (line 44).
    RT.nn(Mario, RT.serialize(FeatureIds), Reward, Terminated, Output);
    int ActionKey = 0;
    RT.writeBack(Output.Name, 5, &ActionKey);

    if (Terminated) { // Line 48: au_restore at ending states.
      ++Episodes;
      EpisodeSteps = 0;
      Reward = 0.0f;
      Terminated = false;
      if (Episodes % 8 == 0) {
        // Re-arm the checkpoint on a freshly jittered episode now and
        // then, so the policy sees enemy-phase variation rather than
        // memorizing one rollout.
        Game.reset(0x4d00 | (Episodes & 0xff));
        RT.checkpoint();
      } else {
        RT.restore();
      }
      continue;
    }

    Reward = Game.step(ActionKey); // act(actionKey) + reward calculation.
    Terminated = Game.terminal();
    ++Steps;
    if (++EpisodeSteps >= 400)
      Terminated = true;

    if (Steps % (TrainSteps / 10) == 0)
      std::printf("step %6ld  episodes %4ld  epsilon %.2f  progress %.0f%%\n",
                  Steps, Episodes,
                  static_cast<RlModel *>(M)->learner()->epsilon(),
                  Game.progress() * 100);
  }

  // Deployment: greedy play, averaged over 10 fresh runs (the paper's
  // stage-clearance score).
  RT.switchMode(Mode::TS);
  double Progress = 0.0, Wins = 0.0;
  for (uint64_t Ep = 0; Ep < 10; ++Ep) {
    Game.reset(0x4d00 | (100 + Ep));
    int EpSteps = 0;
    while (!Game.terminal() && EpSteps++ < 600) {
      std::vector<Feature> Fs = Game.features();
      for (size_t I = 0; I != Features.size(); ++I)
        RT.extract(FeatureIds[I], featureValue(Fs, Features[I]));
      RT.nn(Mario, RT.serialize(FeatureIds), 0.0f, false, Output);
      int ActionKey = 0;
      RT.writeBack(Output.Name, 5, &ActionKey);
      Game.step(ActionKey);
    }
    Progress += Game.progress();
    Wins += Game.success() ? 1 : 0;
  }
  std::printf("\nAfter %ld training iterations (%ld episodes):\n", TrainSteps,
              Episodes);
  std::printf("  mean progress     : %.0f%%\n", Progress * 10);
  std::printf("  stage clearance   : %.0f%%\n", Wins * 10);
  std::printf("  checkpoints taken : %zu, restores: %zu\n",
              RT.stats().NumCheckpoint, RT.stats().NumRestore);
  return 0;
}
