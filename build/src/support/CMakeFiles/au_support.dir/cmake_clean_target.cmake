file(REMOVE_RECURSE
  "libau_support.a"
)
