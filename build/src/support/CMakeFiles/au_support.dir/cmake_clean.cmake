file(REMOVE_RECURSE
  "CMakeFiles/au_support.dir/Image.cpp.o"
  "CMakeFiles/au_support.dir/Image.cpp.o.d"
  "CMakeFiles/au_support.dir/Ssim.cpp.o"
  "CMakeFiles/au_support.dir/Ssim.cpp.o.d"
  "CMakeFiles/au_support.dir/Statistics.cpp.o"
  "CMakeFiles/au_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/au_support.dir/Table.cpp.o"
  "CMakeFiles/au_support.dir/Table.cpp.o.d"
  "libau_support.a"
  "libau_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/au_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
