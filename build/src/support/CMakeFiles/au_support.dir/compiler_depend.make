# Empty compiler generated dependencies file for au_support.
# This may be replaced when dependencies are built.
