file(REMOVE_RECURSE
  "CMakeFiles/au_semantics.dir/Interp.cpp.o"
  "CMakeFiles/au_semantics.dir/Interp.cpp.o.d"
  "libau_semantics.a"
  "libau_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/au_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
