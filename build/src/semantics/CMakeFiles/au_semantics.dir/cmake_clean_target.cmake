file(REMOVE_RECURSE
  "libau_semantics.a"
)
