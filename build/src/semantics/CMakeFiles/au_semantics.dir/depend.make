# Empty dependencies file for au_semantics.
# This may be replaced when dependencies are built.
