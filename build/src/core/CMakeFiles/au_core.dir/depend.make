# Empty dependencies file for au_core.
# This may be replaced when dependencies are built.
