file(REMOVE_RECURSE
  "CMakeFiles/au_core.dir/Checkpoint.cpp.o"
  "CMakeFiles/au_core.dir/Checkpoint.cpp.o.d"
  "CMakeFiles/au_core.dir/Config.cpp.o"
  "CMakeFiles/au_core.dir/Config.cpp.o.d"
  "CMakeFiles/au_core.dir/DatabaseStore.cpp.o"
  "CMakeFiles/au_core.dir/DatabaseStore.cpp.o.d"
  "CMakeFiles/au_core.dir/Model.cpp.o"
  "CMakeFiles/au_core.dir/Model.cpp.o.d"
  "CMakeFiles/au_core.dir/Runtime.cpp.o"
  "CMakeFiles/au_core.dir/Runtime.cpp.o.d"
  "libau_core.a"
  "libau_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/au_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
