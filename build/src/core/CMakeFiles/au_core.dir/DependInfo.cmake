
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/Checkpoint.cpp" "src/core/CMakeFiles/au_core.dir/Checkpoint.cpp.o" "gcc" "src/core/CMakeFiles/au_core.dir/Checkpoint.cpp.o.d"
  "/root/repo/src/core/Config.cpp" "src/core/CMakeFiles/au_core.dir/Config.cpp.o" "gcc" "src/core/CMakeFiles/au_core.dir/Config.cpp.o.d"
  "/root/repo/src/core/DatabaseStore.cpp" "src/core/CMakeFiles/au_core.dir/DatabaseStore.cpp.o" "gcc" "src/core/CMakeFiles/au_core.dir/DatabaseStore.cpp.o.d"
  "/root/repo/src/core/Model.cpp" "src/core/CMakeFiles/au_core.dir/Model.cpp.o" "gcc" "src/core/CMakeFiles/au_core.dir/Model.cpp.o.d"
  "/root/repo/src/core/Runtime.cpp" "src/core/CMakeFiles/au_core.dir/Runtime.cpp.o" "gcc" "src/core/CMakeFiles/au_core.dir/Runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/au_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/au_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
