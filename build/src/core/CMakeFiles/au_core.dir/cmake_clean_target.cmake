file(REMOVE_RECURSE
  "libau_core.a"
)
