file(REMOVE_RECURSE
  "CMakeFiles/au_apps.dir/arkanoid/Arkanoid.cpp.o"
  "CMakeFiles/au_apps.dir/arkanoid/Arkanoid.cpp.o.d"
  "CMakeFiles/au_apps.dir/breakout/Breakout.cpp.o"
  "CMakeFiles/au_apps.dir/breakout/Breakout.cpp.o.d"
  "CMakeFiles/au_apps.dir/canny/Canny.cpp.o"
  "CMakeFiles/au_apps.dir/canny/Canny.cpp.o.d"
  "CMakeFiles/au_apps.dir/common/GameEnv.cpp.o"
  "CMakeFiles/au_apps.dir/common/GameEnv.cpp.o.d"
  "CMakeFiles/au_apps.dir/common/RlHarness.cpp.o"
  "CMakeFiles/au_apps.dir/common/RlHarness.cpp.o.d"
  "CMakeFiles/au_apps.dir/flappy/Flappy.cpp.o"
  "CMakeFiles/au_apps.dir/flappy/Flappy.cpp.o.d"
  "CMakeFiles/au_apps.dir/mario/Mario.cpp.o"
  "CMakeFiles/au_apps.dir/mario/Mario.cpp.o.d"
  "CMakeFiles/au_apps.dir/phylip/Phylip.cpp.o"
  "CMakeFiles/au_apps.dir/phylip/Phylip.cpp.o.d"
  "CMakeFiles/au_apps.dir/rothwell/Rothwell.cpp.o"
  "CMakeFiles/au_apps.dir/rothwell/Rothwell.cpp.o.d"
  "CMakeFiles/au_apps.dir/sphinx/Sphinx.cpp.o"
  "CMakeFiles/au_apps.dir/sphinx/Sphinx.cpp.o.d"
  "CMakeFiles/au_apps.dir/torcs/Torcs.cpp.o"
  "CMakeFiles/au_apps.dir/torcs/Torcs.cpp.o.d"
  "libau_apps.a"
  "libau_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/au_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
