# Empty compiler generated dependencies file for au_apps.
# This may be replaced when dependencies are built.
