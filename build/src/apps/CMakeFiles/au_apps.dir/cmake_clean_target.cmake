file(REMOVE_RECURSE
  "libau_apps.a"
)
