
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/arkanoid/Arkanoid.cpp" "src/apps/CMakeFiles/au_apps.dir/arkanoid/Arkanoid.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/arkanoid/Arkanoid.cpp.o.d"
  "/root/repo/src/apps/breakout/Breakout.cpp" "src/apps/CMakeFiles/au_apps.dir/breakout/Breakout.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/breakout/Breakout.cpp.o.d"
  "/root/repo/src/apps/canny/Canny.cpp" "src/apps/CMakeFiles/au_apps.dir/canny/Canny.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/canny/Canny.cpp.o.d"
  "/root/repo/src/apps/common/GameEnv.cpp" "src/apps/CMakeFiles/au_apps.dir/common/GameEnv.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/common/GameEnv.cpp.o.d"
  "/root/repo/src/apps/common/RlHarness.cpp" "src/apps/CMakeFiles/au_apps.dir/common/RlHarness.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/common/RlHarness.cpp.o.d"
  "/root/repo/src/apps/flappy/Flappy.cpp" "src/apps/CMakeFiles/au_apps.dir/flappy/Flappy.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/flappy/Flappy.cpp.o.d"
  "/root/repo/src/apps/mario/Mario.cpp" "src/apps/CMakeFiles/au_apps.dir/mario/Mario.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/mario/Mario.cpp.o.d"
  "/root/repo/src/apps/phylip/Phylip.cpp" "src/apps/CMakeFiles/au_apps.dir/phylip/Phylip.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/phylip/Phylip.cpp.o.d"
  "/root/repo/src/apps/rothwell/Rothwell.cpp" "src/apps/CMakeFiles/au_apps.dir/rothwell/Rothwell.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/rothwell/Rothwell.cpp.o.d"
  "/root/repo/src/apps/sphinx/Sphinx.cpp" "src/apps/CMakeFiles/au_apps.dir/sphinx/Sphinx.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/sphinx/Sphinx.cpp.o.d"
  "/root/repo/src/apps/torcs/Torcs.cpp" "src/apps/CMakeFiles/au_apps.dir/torcs/Torcs.cpp.o" "gcc" "src/apps/CMakeFiles/au_apps.dir/torcs/Torcs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/au_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/au_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/au_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/au_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
