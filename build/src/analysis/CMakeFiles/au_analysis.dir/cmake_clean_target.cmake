file(REMOVE_RECURSE
  "libau_analysis.a"
)
