
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analysis/DependenceGraph.cpp" "src/analysis/CMakeFiles/au_analysis.dir/DependenceGraph.cpp.o" "gcc" "src/analysis/CMakeFiles/au_analysis.dir/DependenceGraph.cpp.o.d"
  "/root/repo/src/analysis/FeatureExtraction.cpp" "src/analysis/CMakeFiles/au_analysis.dir/FeatureExtraction.cpp.o" "gcc" "src/analysis/CMakeFiles/au_analysis.dir/FeatureExtraction.cpp.o.d"
  "/root/repo/src/analysis/Tracer.cpp" "src/analysis/CMakeFiles/au_analysis.dir/Tracer.cpp.o" "gcc" "src/analysis/CMakeFiles/au_analysis.dir/Tracer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/au_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
