file(REMOVE_RECURSE
  "CMakeFiles/au_analysis.dir/DependenceGraph.cpp.o"
  "CMakeFiles/au_analysis.dir/DependenceGraph.cpp.o.d"
  "CMakeFiles/au_analysis.dir/FeatureExtraction.cpp.o"
  "CMakeFiles/au_analysis.dir/FeatureExtraction.cpp.o.d"
  "CMakeFiles/au_analysis.dir/Tracer.cpp.o"
  "CMakeFiles/au_analysis.dir/Tracer.cpp.o.d"
  "libau_analysis.a"
  "libau_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/au_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
