# Empty compiler generated dependencies file for au_analysis.
# This may be replaced when dependencies are built.
