file(REMOVE_RECURSE
  "libau_nn.a"
)
