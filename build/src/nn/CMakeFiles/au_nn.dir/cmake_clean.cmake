file(REMOVE_RECURSE
  "CMakeFiles/au_nn.dir/Layers.cpp.o"
  "CMakeFiles/au_nn.dir/Layers.cpp.o.d"
  "CMakeFiles/au_nn.dir/Loss.cpp.o"
  "CMakeFiles/au_nn.dir/Loss.cpp.o.d"
  "CMakeFiles/au_nn.dir/Network.cpp.o"
  "CMakeFiles/au_nn.dir/Network.cpp.o.d"
  "CMakeFiles/au_nn.dir/Optimizer.cpp.o"
  "CMakeFiles/au_nn.dir/Optimizer.cpp.o.d"
  "CMakeFiles/au_nn.dir/QLearner.cpp.o"
  "CMakeFiles/au_nn.dir/QLearner.cpp.o.d"
  "CMakeFiles/au_nn.dir/Supervised.cpp.o"
  "CMakeFiles/au_nn.dir/Supervised.cpp.o.d"
  "CMakeFiles/au_nn.dir/Tensor.cpp.o"
  "CMakeFiles/au_nn.dir/Tensor.cpp.o.d"
  "libau_nn.a"
  "libau_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/au_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
