
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/Layers.cpp" "src/nn/CMakeFiles/au_nn.dir/Layers.cpp.o" "gcc" "src/nn/CMakeFiles/au_nn.dir/Layers.cpp.o.d"
  "/root/repo/src/nn/Loss.cpp" "src/nn/CMakeFiles/au_nn.dir/Loss.cpp.o" "gcc" "src/nn/CMakeFiles/au_nn.dir/Loss.cpp.o.d"
  "/root/repo/src/nn/Network.cpp" "src/nn/CMakeFiles/au_nn.dir/Network.cpp.o" "gcc" "src/nn/CMakeFiles/au_nn.dir/Network.cpp.o.d"
  "/root/repo/src/nn/Optimizer.cpp" "src/nn/CMakeFiles/au_nn.dir/Optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/au_nn.dir/Optimizer.cpp.o.d"
  "/root/repo/src/nn/QLearner.cpp" "src/nn/CMakeFiles/au_nn.dir/QLearner.cpp.o" "gcc" "src/nn/CMakeFiles/au_nn.dir/QLearner.cpp.o.d"
  "/root/repo/src/nn/Supervised.cpp" "src/nn/CMakeFiles/au_nn.dir/Supervised.cpp.o" "gcc" "src/nn/CMakeFiles/au_nn.dir/Supervised.cpp.o.d"
  "/root/repo/src/nn/Tensor.cpp" "src/nn/CMakeFiles/au_nn.dir/Tensor.cpp.o" "gcc" "src/nn/CMakeFiles/au_nn.dir/Tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/au_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
