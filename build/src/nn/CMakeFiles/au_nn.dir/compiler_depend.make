# Empty compiler generated dependencies file for au_nn.
# This may be replaced when dependencies are built.
