# Empty dependencies file for test_apps_rl.
# This may be replaced when dependencies are built.
