file(REMOVE_RECURSE
  "CMakeFiles/test_apps_rl.dir/AppsRlTest.cpp.o"
  "CMakeFiles/test_apps_rl.dir/AppsRlTest.cpp.o.d"
  "test_apps_rl"
  "test_apps_rl.pdb"
  "test_apps_rl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
