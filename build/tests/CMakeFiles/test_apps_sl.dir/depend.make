# Empty dependencies file for test_apps_sl.
# This may be replaced when dependencies are built.
