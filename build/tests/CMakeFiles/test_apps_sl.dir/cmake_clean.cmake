file(REMOVE_RECURSE
  "CMakeFiles/test_apps_sl.dir/AppsSlTest.cpp.o"
  "CMakeFiles/test_apps_sl.dir/AppsSlTest.cpp.o.d"
  "test_apps_sl"
  "test_apps_sl.pdb"
  "test_apps_sl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_sl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
