
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/CoreTest.cpp" "tests/CMakeFiles/test_core.dir/CoreTest.cpp.o" "gcc" "tests/CMakeFiles/test_core.dir/CoreTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/au_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/au_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/au_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/au_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/au_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/au_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
