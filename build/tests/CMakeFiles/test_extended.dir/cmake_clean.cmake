file(REMOVE_RECURSE
  "CMakeFiles/test_extended.dir/ExtendedTest.cpp.o"
  "CMakeFiles/test_extended.dir/ExtendedTest.cpp.o.d"
  "test_extended"
  "test_extended.pdb"
  "test_extended[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extended.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
