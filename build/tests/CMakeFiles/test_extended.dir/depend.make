# Empty dependencies file for test_extended.
# This may be replaced when dependencies are built.
