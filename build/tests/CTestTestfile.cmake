# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_analysis[1]_include.cmake")
include("/root/repo/build/tests/test_core[1]_include.cmake")
include("/root/repo/build/tests/test_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_apps_sl[1]_include.cmake")
include("/root/repo/build/tests/test_apps_rl[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extended[1]_include.cmake")
include("/root/repo/build/tests/test_robustness[1]_include.cmake")
