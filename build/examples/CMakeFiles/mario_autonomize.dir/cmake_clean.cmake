file(REMOVE_RECURSE
  "CMakeFiles/mario_autonomize.dir/mario_autonomize.cpp.o"
  "CMakeFiles/mario_autonomize.dir/mario_autonomize.cpp.o.d"
  "mario_autonomize"
  "mario_autonomize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mario_autonomize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
