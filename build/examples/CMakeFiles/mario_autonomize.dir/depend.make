# Empty dependencies file for mario_autonomize.
# This may be replaced when dependencies are built.
