# Empty dependencies file for mario_selftest.
# This may be replaced when dependencies are built.
