file(REMOVE_RECURSE
  "CMakeFiles/mario_selftest.dir/mario_selftest.cpp.o"
  "CMakeFiles/mario_selftest.dir/mario_selftest.cpp.o.d"
  "mario_selftest"
  "mario_selftest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mario_selftest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
