# Empty compiler generated dependencies file for canny_autonomize.
# This may be replaced when dependencies are built.
