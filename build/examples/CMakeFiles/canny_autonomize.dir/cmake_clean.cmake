file(REMOVE_RECURSE
  "CMakeFiles/canny_autonomize.dir/canny_autonomize.cpp.o"
  "CMakeFiles/canny_autonomize.dir/canny_autonomize.cpp.o.d"
  "canny_autonomize"
  "canny_autonomize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/canny_autonomize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
