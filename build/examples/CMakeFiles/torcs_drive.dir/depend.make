# Empty dependencies file for torcs_drive.
# This may be replaced when dependencies are built.
