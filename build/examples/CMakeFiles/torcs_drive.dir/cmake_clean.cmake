file(REMOVE_RECURSE
  "CMakeFiles/torcs_drive.dir/torcs_drive.cpp.o"
  "CMakeFiles/torcs_drive.dir/torcs_drive.cpp.o.d"
  "torcs_drive"
  "torcs_drive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/torcs_drive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
