# Empty dependencies file for selftest_coverage.
# This may be replaced when dependencies are built.
