file(REMOVE_RECURSE
  "CMakeFiles/selftest_coverage.dir/selftest_coverage.cpp.o"
  "CMakeFiles/selftest_coverage.dir/selftest_coverage.cpp.o.d"
  "selftest_coverage"
  "selftest_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selftest_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
