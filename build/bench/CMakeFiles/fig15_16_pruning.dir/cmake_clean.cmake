file(REMOVE_RECURSE
  "CMakeFiles/fig15_16_pruning.dir/fig15_16_pruning.cpp.o"
  "CMakeFiles/fig15_16_pruning.dir/fig15_16_pruning.cpp.o.d"
  "fig15_16_pruning"
  "fig15_16_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_16_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
