# Empty dependencies file for fig15_16_pruning.
# This may be replaced when dependencies are built.
