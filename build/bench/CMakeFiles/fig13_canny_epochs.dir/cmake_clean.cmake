file(REMOVE_RECURSE
  "CMakeFiles/fig13_canny_epochs.dir/fig13_canny_epochs.cpp.o"
  "CMakeFiles/fig13_canny_epochs.dir/fig13_canny_epochs.cpp.o.d"
  "fig13_canny_epochs"
  "fig13_canny_epochs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_canny_epochs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
