# Empty dependencies file for fig13_canny_epochs.
# This may be replaced when dependencies are built.
