file(REMOVE_RECURSE
  "CMakeFiles/fig12_canny_datasets.dir/fig12_canny_datasets.cpp.o"
  "CMakeFiles/fig12_canny_datasets.dir/fig12_canny_datasets.cpp.o.d"
  "fig12_canny_datasets"
  "fig12_canny_datasets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_canny_datasets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
