# Empty compiler generated dependencies file for fig12_canny_datasets.
# This may be replaced when dependencies are built.
