# Empty dependencies file for table3_sl.
# This may be replaced when dependencies are built.
