file(REMOVE_RECURSE
  "CMakeFiles/table3_sl.dir/table3_sl.cpp.o"
  "CMakeFiles/table3_sl.dir/table3_sl.cpp.o.d"
  "table3_sl"
  "table3_sl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_sl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
