file(REMOVE_RECURSE
  "CMakeFiles/fig17_torcs.dir/fig17_torcs.cpp.o"
  "CMakeFiles/fig17_torcs.dir/fig17_torcs.cpp.o.d"
  "fig17_torcs"
  "fig17_torcs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_torcs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
