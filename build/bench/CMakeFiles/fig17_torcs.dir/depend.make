# Empty dependencies file for fig17_torcs.
# This may be replaced when dependencies are built.
