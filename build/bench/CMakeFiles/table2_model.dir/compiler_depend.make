# Empty compiler generated dependencies file for table2_model.
# This may be replaced when dependencies are built.
