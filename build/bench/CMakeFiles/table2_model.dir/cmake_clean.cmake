file(REMOVE_RECURSE
  "CMakeFiles/table2_model.dir/table2_model.cpp.o"
  "CMakeFiles/table2_model.dir/table2_model.cpp.o.d"
  "table2_model"
  "table2_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
