file(REMOVE_RECURSE
  "CMakeFiles/table3_rl.dir/table3_rl.cpp.o"
  "CMakeFiles/table3_rl.dir/table3_rl.cpp.o.d"
  "table3_rl"
  "table3_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
