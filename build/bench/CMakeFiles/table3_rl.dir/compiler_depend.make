# Empty compiler generated dependencies file for table3_rl.
# This may be replaced when dependencies are built.
